// OCR batch: the image-tools scenario from the paper's motivation. A field
// worker's phone photographs documents and offloads recognition to the
// cloud. The example runs a batch of pages against Rattrap and against the
// VM-based cloud and compares response times, demonstrating the code cache
// (the OCR engine is transferred once) and the shared in-memory offloading
// I/O layer (staged page images never touch the cloud's disk).
package main

import (
	"fmt"
	"log"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/netsim"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

const pages = 6

func runBatch(kind core.Kind) (responses []time.Duration, outputs []string) {
	e := sim.NewEngine(7)
	platform := core.New(e, core.DefaultConfig(kind))
	phone, err := device.New(e, "field-phone", netsim.WANWiFi())
	if err != nil {
		log.Fatal(err)
	}
	app, _ := workload.ByName(workload.NameOCR)
	e.Spawn("batch", func(p *sim.Proc) {
		for i := 0; i < pages; i++ {
			task := phone.NewTask(app)
			ph, res, err := phone.Offload(p, task, app.CodeSize(), platform)
			if err != nil {
				log.Fatal(err)
			}
			responses = append(responses, ph.Response())
			outputs = append(outputs, res.Output)
		}
	})
	e.Run()
	return responses, outputs
}

func main() {
	fmt.Printf("OCR batch: %d document pages over WAN WiFi\n\n", pages)
	rattrap, outputs := runBatch(core.KindRattrap)
	vm, _ := runBatch(core.KindVM)

	fmt.Printf("%-6s  %-14s  %-14s  %s\n", "page", "Rattrap", "VM cloud", "recognized")
	var rTot, vTot time.Duration
	for i := range rattrap {
		fmt.Printf("%-6d  %-14v  %-14v  %s\n", i+1,
			rattrap[i].Round(time.Millisecond), vm[i].Round(time.Millisecond), outputs[i])
		rTot += rattrap[i]
		vTot += vm[i]
	}
	fmt.Printf("\nbatch total: Rattrap %v vs VM cloud %v (%.1fx faster)\n",
		rTot.Round(time.Millisecond), vTot.Round(time.Millisecond), float64(vTot)/float64(rTot))
	fmt.Println("page 1 includes the cold start on both platforms: ~2s for a")
	fmt.Println("Cloud Android Container versus ~30s for an Android-x86 VM.")
}
