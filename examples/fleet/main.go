// Fleet: the full platform comparison in one program. Five handsets run
// all four benchmark workloads against each of the three cloud platforms;
// the example prints the paper's headline numbers — setup time, memory,
// disk, phase means, warehouse behavior — from the Container DB and the
// device-side accounting. This is the §VI evaluation in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/host"
	"rattrap/internal/metrics"
	"rattrap/internal/netsim"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func main() {
	type row struct {
		kind      core.Kind
		meanResp  time.Duration
		meanPrep  time.Duration
		memMB     int
		diskTotal host.Bytes
		runtimes  int
		codeKB    float64
	}
	var rows []row

	for _, kind := range []core.Kind{core.KindRattrap, core.KindRattrapWO, core.KindVM} {
		e := sim.NewEngine(3)
		platform := core.New(e, core.DefaultConfig(kind))
		var resps, preps []float64
		var codeUp host.Bytes

		for i := 0; i < 5; i++ {
			phone, err := device.New(e, fmt.Sprintf("phone-%d", i+1), netsim.LANWiFi())
			if err != nil {
				log.Fatal(err)
			}
			i := i
			e.Spawn(phone.Name, func(p *sim.Proc) {
				p.Sleep(time.Duration(i) * 400 * time.Millisecond)
				for _, app := range workload.Apps() {
					task := phone.NewTask(app)
					ph, _, err := phone.Offload(p, task, app.CodeSize(), platform)
					if err != nil {
						log.Fatal(err)
					}
					resps = append(resps, ph.Response().Seconds())
					preps = append(preps, ph.RuntimePreparation.Seconds())
				}
				codeUp += phone.Traffic().CodeUp
			})
		}
		e.Run()

		snap := platform.DB().Snapshot()
		rows = append(rows, row{
			kind:      kind,
			meanResp:  time.Duration(metrics.Mean(resps) * float64(time.Second)),
			meanPrep:  time.Duration(metrics.Mean(preps) * float64(time.Second)),
			memMB:     snap.TotalMemMB,
			diskTotal: platform.TotalDiskBytes(),
			runtimes:  len(snap.Runtimes),
			codeKB:    float64(codeUp) / 1024,
		})
	}

	fmt.Println("fleet: 5 devices x 4 workloads (20 requests) per platform, LAN WiFi")
	fmt.Println()
	fmt.Printf("%-13s  %-10s  %-10s  %-9s  %-10s  %-9s  %s\n",
		"platform", "mean resp", "mean prep", "runtimes", "cloud mem", "disk", "code sent")
	for _, r := range rows {
		fmt.Printf("%-13s  %-10v  %-10v  %-9d  %-10s  %-9s  %.0f KB\n",
			r.kind, r.meanResp.Round(time.Millisecond), r.meanPrep.Round(time.Millisecond),
			r.runtimes, fmt.Sprintf("%d MB", r.memMB),
			fmt.Sprintf("%.2f GB", float64(r.diskTotal)/float64(host.GB)), r.codeKB)
	}
	fmt.Println()
	fmt.Println("Rattrap serves the same fleet with ~5x less memory, ~20x less disk,")
	fmt.Println("a fraction of the code traffic, and runtime preparation measured in")
	fmt.Println("hundreds of milliseconds instead of tens of seconds.")
}
