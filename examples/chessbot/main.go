// Chessbot: the games scenario. A phone plays chess with the engine
// offloaded to the cloud, across all four network scenarios. The example
// prints, per scenario, the offloading decision the client framework makes,
// the response time, and the battery cost versus thinking locally —
// reproducing in miniature the trade-offs of Figure 10.
package main

import (
	"fmt"
	"log"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/netsim"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

const moves = 4

func main() {
	app, _ := workload.ByName(workload.NameChess)
	fmt.Printf("chessbot: %d engine moves per scenario, Rattrap cloud\n\n", moves)
	fmt.Printf("%-10s  %-9s  %-12s  %-10s  %-10s  %s\n",
		"network", "decision", "mean resp", "energy(J)", "local(J)", "last move")

	for _, profile := range netsim.Profiles() {
		e := sim.NewEngine(11)
		platform := core.New(e, core.DefaultConfig(core.KindRattrap))
		phone, err := device.New(e, "gamer-phone", profile)
		if err != nil {
			log.Fatal(err)
		}
		var (
			total     time.Duration
			offloads  int
			lastMove  string
			localOnly float64
		)
		e.Spawn("game", func(p *sim.Proc) {
			for i := 0; i < moves; i++ {
				task := phone.NewTask(app)
				// The framework decides per move whether the cloud is
				// worth it on this network.
				offloaded, ph, res, err := phone.MaybeOffload(p, task, app.CodeSize(), platform)
				if err != nil {
					log.Fatal(err)
				}
				if offloaded {
					offloads++
					total += ph.Response()
				}
				lastMove = res.Output
				// What the same move would have cost on the handset.
				est, err := phone.Estimate(task, app.CodeSize())
				if err != nil {
					log.Fatal(err)
				}
				localOnly += est.LocalEnergyJ
			}
		})
		e.Run()

		decision := "offload"
		meanResp := "-"
		if offloads == 0 {
			decision = "local"
		} else {
			if offloads < moves {
				decision = "mixed"
			}
			meanResp = (total / time.Duration(offloads)).Round(time.Millisecond).String()
		}
		fmt.Printf("%-10s  %-9s  %-12s  %-10.2f  %-10.2f  %s\n",
			profile.Name, decision, meanResp, phone.Meter.Joules, localOnly, lastMove)
	}
	fmt.Println("\nWiFi: the engine move comes back ~5x faster than local search for")
	fmt.Println("a fraction of the battery; on 3G the framework keeps thinking local.")
}
