// Quickstart: build a Rattrap platform in-process, offload one Linpack
// task from a simulated handset, and print the request's phase breakdown —
// the smallest complete use of the library.
package main

import (
	"fmt"
	"log"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/netsim"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func main() {
	// Everything runs on a deterministic discrete-event engine.
	e := sim.NewEngine(1)

	// The cloud: the full Rattrap design (Cloud Android Containers,
	// Shared Resource Layer, App Warehouse, access control).
	platform := core.New(e, core.DefaultConfig(core.KindRattrap))

	// The client: one phone on LAN WiFi.
	phone, err := device.New(e, "phone-1", netsim.LANWiFi())
	if err != nil {
		log.Fatal(err)
	}

	app, err := workload.ByName(workload.NameLinpack)
	if err != nil {
		log.Fatal(err)
	}

	e.Spawn("quickstart", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			task := phone.NewTask(app)
			ph, res, err := phone.Offload(p, task, app.CodeSize(), platform)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("request %d: %s\n", i+1, res.Output)
			fmt.Printf("  network connection:    %v\n", ph.NetworkConnection)
			fmt.Printf("  data transfer:         %v\n", ph.DataTransfer)
			fmt.Printf("  runtime preparation:   %v\n", ph.RuntimePreparation)
			fmt.Printf("  computation execution: %v\n", ph.ComputationExecution)
			fmt.Printf("  total response:        %v\n\n", ph.Response())
		}
	})
	e.Run()

	snap := platform.DB().Snapshot()
	fmt.Printf("cloud: %d Cloud Android Container(s), %d tasks executed, %d MB resident\n",
		len(snap.Runtimes), snap.TotalExec, snap.TotalMemMB)
	fmt.Println("note: request 1 pays the container boot and the code transfer;")
	fmt.Println("request 2 hits a warm runtime and the App Warehouse.")
}
