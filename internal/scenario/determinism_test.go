package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the current output")

// soakThreshold keeps the double-run sweep affordable: scenarios whose
// declared arrival count exceeds it (the million-device soak) are run by
// `rattrap-bench -scenario`, not doubled inside go test.
const soakThreshold = 50_000

func reportBytes(t *testing.T, scn *Scenario) (*Report, []byte) {
	t.Helper()
	rep, err := Run(scn)
	if err != nil {
		t.Fatalf("Run(%s): %v", scn.Name, err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return rep, append(buf, '\n')
}

func arrivals(scn *Scenario) int {
	total := 0
	for _, c := range scn.Fleet {
		total += c.Devices * c.RequestsPerDevice
	}
	return total
}

// TestScenarioDoubleRunIdentical runs every affordable checked-in
// scenario twice at its declared seed and requires byte-identical
// reports — the whole run is virtual time, so any divergence is a
// nondeterminism bug, not noise. It also requires every checked-in
// scenario's own assertions to pass: the scenarios/ directory is a
// gallery of green gates, not aspirations.
func TestScenarioDoubleRunIdentical(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checked-in scenarios: %v", err)
	}
	for _, file := range files {
		scn, err := Load(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if arrivals(scn) > soakThreshold {
			continue
		}
		t.Run(scn.Name, func(t *testing.T) {
			t.Parallel()
			scnB, _ := Load(file)
			rep, a := reportBytes(t, scn)
			_, b := reportBytes(t, scnB)
			if !bytes.Equal(a, b) {
				t.Errorf("two same-seed runs of %s differ (%d vs %d bytes)", scn.Name, len(a), len(b))
			}
			if !rep.Pass {
				for _, as := range rep.Assertions {
					if !as.Pass {
						t.Errorf("%s: assertion %s failed: want %s, got %s", scn.Name, as.Type, as.Want, as.Got)
					}
				}
			}
		})
	}
}

// TestBaselineReportGolden pins the baseline scenario's full report
// against a checked-in copy. Any intentional change to the runner, the
// platform stack, or the report schema shows up as a reviewable golden
// diff (regenerate with `go test ./internal/scenario -run Golden -update`).
func TestBaselineReportGolden(t *testing.T) {
	scn, err := Load(filepath.Join("..", "..", "scenarios", "baseline.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	_, got := reportBytes(t, scn)
	golden := filepath.Join("testdata", "baseline_report.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("baseline report drifted from %s (%d vs %d bytes); rerun with -update if the change is intentional",
			golden, len(got), len(want))
	}
}
