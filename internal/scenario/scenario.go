// Package scenario is the chaos fleet simulator: a YAML DSL that turns
// "heavy traffic from millions of users" and "as many scenarios as you
// can imagine" into checked-in, asserted artifacts. A scenario declares a
// fleet (device cohorts with network profiles, app mixes, and seeded
// arrival processes), a timeline of chaos events (network profile flips,
// shard kills, fault-plan activation, autoscaler floor changes, load
// spikes), and end-of-run assertions (success rate, latency percentiles,
// lifecycle-census invariants). The runner drives the whole fleet through
// the discrete-event engine against the real cluster/platform stack —
// devices are lightweight per-request state machines, not
// goroutine-per-device objects, so a million-device soak is an ordinary
// scenario file — and emits a machine-readable report that is
// bit-identical across runs at one seed.
package scenario

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/faults"
	"rattrap/internal/netsim"
	"rattrap/internal/workload"
)

// Schema hard limits. Validation rejects anything beyond them with a
// typed *SchemaError, so a malformed or adversarial scenario can neither
// panic the runner nor make it allocate without bound.
const (
	MaxShards        = 64
	MaxCohorts       = 64
	MaxEvents        = 1024
	MaxAssertions    = 256
	MaxCohortDevices = 4_000_000
	MaxTotalArrivals = 16_000_000
	MaxVariants      = 65_536
	MaxVirtual       = 48 * time.Hour
	MaxLinpackOrder  = 512
)

// SchemaError is a semantic error in a syntactically valid scenario: an
// unknown key, an out-of-range value, a reference to a missing cohort.
type SchemaError struct {
	Line int
	Path string // dotted location, e.g. "fleet[0].devices"
	Msg  string
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("scenario: line %d: %s: %s", e.Line, e.Path, e.Msg)
}

// Scenario is one decoded, validated scenario file.
type Scenario struct {
	Name        string
	Description string
	Seed        int64
	Shards      int
	Platform    PlatformSpec
	Client      ClientSpec
	Fleet       []CohortSpec
	Events      []EventSpec
	Assertions  []AssertionSpec
}

// PlatformSpec shapes every shard's core.Platform.
type PlatformSpec struct {
	Kind          core.Kind
	MaxRuntimes   int
	MinRuntimes   int
	MaxQueueDepth int
	IdleTimeout   time.Duration
	Autoscale     bool
	Interval      time.Duration // autoscale control interval
	TemplateBoot  bool          // clone runtimes from the captured template
	// Replicas is the warehouse replica factor R: every pushed entry fans
	// out to the R shards clockwise of its AID, so a shard failure loses
	// no cached code. 1 (the default) is the replica-free PR 5 cluster.
	Replicas int
}

// ClientSpec is the per-request retry policy (mirrors device.RetryPolicy:
// exponential backoff with jitter, overload retry-after floor).
type ClientSpec struct {
	MaxAttempts int // total tries including the first; 1 = no retries
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// ArrivalKind selects a cohort's arrival process.
type ArrivalKind uint8

const (
	// ArrivalUniform spaces arrivals evenly: exactly Devices ×
	// RequestsPerDevice of them over Duration.
	ArrivalUniform ArrivalKind = iota
	// ArrivalPoisson draws exponential inter-arrival gaps at the same
	// mean rate from the cohort's seeded source.
	ArrivalPoisson
)

func (k ArrivalKind) String() string {
	if k == ArrivalPoisson {
		return "poisson"
	}
	return "uniform"
}

// CohortSpec is one device population: how many devices, on what network,
// running which apps, arriving how.
type CohortSpec struct {
	Name              string
	Devices           int
	RequestsPerDevice int
	Network           netsim.Profile
	Apps              []string
	// Variants spreads the cohort's requests over this many distinct AID
	// families per app (distinct code sizes, hence distinct consistent-hash
	// placements) — how a scenario exercises more than len(Apps) shards.
	Variants int
	Arrival  ArrivalKind
	Start    time.Duration
	Duration time.Duration
	// LinpackOrder, when positive, pins every Linpack request in this
	// cohort to one fixed system order (a shared parameter blob) instead
	// of the app's random 110–149 draw — the knob that makes per-request
	// cost, and therefore scenario wall-time at a million devices,
	// a declared quantity.
	LinpackOrder int
}

// Rate is the cohort's mean arrival rate in requests per second.
func (c CohortSpec) Rate() float64 {
	return float64(c.Devices*c.RequestsPerDevice) / c.Duration.Seconds()
}

// EventKind enumerates the chaos timeline vocabulary.
type EventKind uint8

const (
	// EvSetNetwork flips a cohort's network profile; requests arriving
	// after the event use the new profile (in-flight ones keep theirs).
	EvSetNetwork EventKind = iota
	// EvLoadSpike multiplies a cohort's arrival rate by Factor for
	// Duration. The cohort's total request count is unchanged — the spike
	// compresses the remaining schedule, which is exactly a burst.
	EvLoadSpike
	// EvFaultPlan activates a named fault plan on every shard and every
	// device link, replacing any active plan.
	EvFaultPlan
	// EvClearFaults deactivates the active fault plan.
	EvClearFaults
	// EvKillShard cordons every runtime on one shard: in-flight requests
	// finish, then the runtimes drain and the pool rebuilds from cold —
	// the graceful-chaos analog of power-cycling the shard's node.
	EvKillShard
	// EvSetFloor changes every shard's autoscaler floor (MinRuntimes) at
	// runtime via core.Platform.SetPoolBounds.
	EvSetFloor
	// EvAddShard joins a fresh shard to the cluster: it boots, pulls its
	// vnode ranges as chunk deltas, and is commissioned into the ring —
	// live elastic capacity, not a restart.
	EvAddShard
	// EvRemoveShard drains one shard gracefully: it keeps serving while
	// its entries migrate to their next owners, then leaves the ring.
	EvRemoveShard
	// EvFailShard crashes one shard: immediately unroutable, in-flight
	// sessions get ErrShardDown (retryable), and with replicas > 1 the
	// survivors re-replicate its entries.
	EvFailShard
)

func (k EventKind) String() string {
	switch k {
	case EvSetNetwork:
		return "set-network"
	case EvLoadSpike:
		return "load-spike"
	case EvFaultPlan:
		return "fault-plan"
	case EvClearFaults:
		return "clear-faults"
	case EvKillShard:
		return "kill-shard"
	case EvSetFloor:
		return "set-floor"
	case EvAddShard:
		return "add-shard"
	case EvRemoveShard:
		return "remove-shard"
	case EvFailShard:
		return "fail-shard"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// EventSpec is one timed chaos action.
type EventSpec struct {
	At     time.Duration
	Kind   EventKind
	Cohort int            // EvSetNetwork, EvLoadSpike: index into Fleet
	Net    netsim.Profile // EvSetNetwork
	Factor float64        // EvLoadSpike
	Dur    time.Duration  // EvLoadSpike
	Plan   string         // EvFaultPlan
	Shard  int            // EvKillShard, EvRemoveShard, EvFailShard
	Floor  int            // EvSetFloor
}

// AssertionKind enumerates the end-of-run checks.
type AssertionKind uint8

const (
	// AssertSuccessRate: succeeded/arrivals ≥ Min (optionally per cohort).
	AssertSuccessRate AssertionKind = iota
	// AssertP50 / AssertP99 / AssertMax: latency percentile ≤ MaxDur.
	AssertP50
	AssertP99
	AssertMaxLatency
	// AssertCensus: every shard's lifecycle census matches its slot list —
	// idle == slots, and no runtime stuck active, booting, or draining
	// after the engine drained. This is the PR-7 invariant (no stranded
	// slots, no draining capacity leak) as a scenario gate.
	AssertCensus
	// AssertPoolFloor: every shard ends with at least Min runtimes — zero
	// permanent capacity loss under teardown faults.
	AssertPoolFloor
	// AssertFinalPool: the cluster-wide final pool is within [Min, Max].
	AssertFinalPool
	// AssertMinRequests: the fleet generated at least Min arrivals.
	AssertMinRequests
	// AssertWarehouseHitRate: warehouse hits / (hits+misses) ≥ Min.
	AssertWarehouseHitRate
	// AssertOverloads: overload rejections observed are within [Min, Max].
	AssertOverloads
	// AssertBootP50 / AssertBootP99: runtime boot duration percentile
	// across every shard ≤ MaxDur. With template_boot on, this is the
	// gate that the pool really is cloning rather than cold-booting.
	AssertBootP50
	AssertBootP99
	// AssertLiveShards: the final count of routable shards is within
	// [Min, Max] — did the membership end up where the timeline said.
	AssertLiveShards
	// AssertSuccessRateAfter: among requests arriving at or after After,
	// succeeded/arrivals ≥ Min — the post-chaos recovery gate (a shard
	// kill early in the soak must not depress the whole-run rate view).
	AssertSuccessRateAfter
)

func (k AssertionKind) String() string {
	switch k {
	case AssertSuccessRate:
		return "success-rate"
	case AssertP50:
		return "p50"
	case AssertP99:
		return "p99"
	case AssertMaxLatency:
		return "max-latency"
	case AssertCensus:
		return "census"
	case AssertPoolFloor:
		return "pool-floor"
	case AssertFinalPool:
		return "final-pool"
	case AssertMinRequests:
		return "min-requests"
	case AssertWarehouseHitRate:
		return "warehouse-hit-rate"
	case AssertOverloads:
		return "overloads"
	case AssertBootP50:
		return "boot-p50"
	case AssertBootP99:
		return "boot-p99"
	case AssertLiveShards:
		return "live-shards"
	case AssertSuccessRateAfter:
		return "success-rate-after"
	}
	return fmt.Sprintf("AssertionKind(%d)", int(k))
}

// AssertionSpec is one end-of-run check.
type AssertionSpec struct {
	Kind   AssertionKind
	Cohort int // -1 = whole fleet; else index into Fleet
	Min    float64
	Max    float64
	MaxDur time.Duration
	After  time.Duration // AssertSuccessRateAfter: arrival-time cutoff
	HasMin bool
	HasMax bool
}

// Load reads and decodes one scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Decode(data)
}

// Decode parses and validates scenario YAML. Every failure is a typed
// *ParseError (syntax) or *SchemaError (semantics); Decode never panics
// on any input and its allocations are bounded by the schema limits.
func Decode(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	scn := d.scenario(root)
	if d.err != nil {
		return nil, d.err
	}
	return scn, nil
}

// decoder walks the node tree, accumulating the first error. Every read
// marks its key consumed; unconsumed keys are unknown-key errors, so a
// typo in a checked-in scenario fails -scenario-validate instead of
// silently meaning nothing.
type decoder struct {
	err error
}

func (d *decoder) fail(n *yamlNode, path, msg string) {
	if d.err == nil {
		line := 0
		if n != nil {
			line = n.line
		}
		d.err = &SchemaError{Line: line, Path: path, Msg: msg}
	}
}

// used tracks key consumption for one mapping.
type used map[string]bool

func (d *decoder) checkUnknown(n *yamlNode, path string, u used) {
	for _, k := range n.keys {
		if !u[k] {
			d.fail(n.get(k), path+"."+k, "unknown key")
			return
		}
	}
}

func (d *decoder) mapping(n *yamlNode, path string) *yamlNode {
	if d.err != nil {
		return nil
	}
	if n.kind != yMap {
		d.fail(n, path, "expected a mapping")
		return nil
	}
	return n
}

func (d *decoder) str(n *yamlNode, path string, u used, key, def string) string {
	if d.err != nil || n == nil {
		return def
	}
	u[key] = true
	v := n.get(key)
	if v == nil {
		return def
	}
	if v.kind != yScalar {
		d.fail(v, path+"."+key, "expected a scalar")
		return def
	}
	return v.scalar
}

func (d *decoder) requiredStr(n *yamlNode, path string, u used, key string) string {
	s := d.str(n, path, u, key, "")
	if d.err == nil && s == "" {
		d.fail(n, path+"."+key, "required")
	}
	return s
}

func (d *decoder) intVal(n *yamlNode, path string, u used, key string, def, lo, hi int) int {
	if d.err != nil || n == nil {
		return def
	}
	u[key] = true
	v := n.get(key)
	if v == nil {
		return def
	}
	if v.kind != yScalar {
		d.fail(v, path+"."+key, "expected an integer")
		return def
	}
	i, err := strconv.Atoi(v.scalar)
	if err != nil {
		d.fail(v, path+"."+key, fmt.Sprintf("bad integer %q", v.scalar))
		return def
	}
	if i < lo || i > hi {
		d.fail(v, path+"."+key, fmt.Sprintf("%d out of range [%d, %d]", i, lo, hi))
		return def
	}
	return i
}

func (d *decoder) floatVal(n *yamlNode, path string, u used, key string, def, lo, hi float64) float64 {
	if d.err != nil || n == nil {
		return def
	}
	u[key] = true
	v := n.get(key)
	if v == nil {
		return def
	}
	if v.kind != yScalar {
		d.fail(v, path+"."+key, "expected a number")
		return def
	}
	f, err := strconv.ParseFloat(v.scalar, 64)
	if err != nil {
		d.fail(v, path+"."+key, fmt.Sprintf("bad number %q", v.scalar))
		return def
	}
	if f < lo || f > hi {
		d.fail(v, path+"."+key, fmt.Sprintf("%g out of range [%g, %g]", f, lo, hi))
		return def
	}
	return f
}

func (d *decoder) boolVal(n *yamlNode, path string, u used, key string, def bool) bool {
	if d.err != nil || n == nil {
		return def
	}
	u[key] = true
	v := n.get(key)
	if v == nil {
		return def
	}
	switch v.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail(v, path+"."+key, fmt.Sprintf("expected true or false, got %q", v.scalar))
	return def
}

// durVal parses a duration scalar ("30s", "1h30m"). Bare numbers are
// rejected: a unitless time is exactly the ambiguity a DSL should refuse.
func (d *decoder) durVal(n *yamlNode, path string, u used, key string, def, lo, hi time.Duration) time.Duration {
	if d.err != nil || n == nil {
		return def
	}
	u[key] = true
	v := n.get(key)
	if v == nil {
		return def
	}
	if v.kind != yScalar {
		d.fail(v, path+"."+key, "expected a duration")
		return def
	}
	dur, err := time.ParseDuration(v.scalar)
	if err != nil {
		d.fail(v, path+"."+key, fmt.Sprintf("bad duration %q (use Go syntax: 30s, 1m30s)", v.scalar))
		return def
	}
	if dur < lo || dur > hi {
		d.fail(v, path+"."+key, fmt.Sprintf("%v out of range [%v, %v]", dur, lo, hi))
		return def
	}
	return dur
}

// profileByName resolves the DSL's network slugs (plus the paper's
// display names) to netsim profiles.
func profileByName(name string) (netsim.Profile, bool) {
	switch strings.ToLower(name) {
	case "lan-wifi":
		return netsim.LANWiFi(), true
	case "wan-wifi":
		return netsim.WANWiFi(), true
	case "3g":
		return netsim.ThreeG(), true
	case "4g":
		return netsim.FourG(), true
	}
	p, err := netsim.ProfileByName(name)
	return p, err == nil
}

func (d *decoder) network(n *yamlNode, path string, u used, key string) netsim.Profile {
	name := d.requiredStr(n, path, u, key)
	if d.err != nil {
		return netsim.Profile{}
	}
	p, ok := profileByName(name)
	if !ok {
		d.fail(n.get(key), path+"."+key, fmt.Sprintf("unknown network profile %q (lan-wifi, wan-wifi, 3g, 4g)", name))
	}
	return p
}

func (d *decoder) scenario(root *yamlNode) *Scenario {
	path := "scenario"
	u := used{}
	scn := &Scenario{
		Name:        d.requiredStr(root, path, u, "name"),
		Description: d.str(root, path, u, "description", ""),
		Seed:        int64(d.intVal(root, path, u, "seed", 42, 0, 1<<31)),
		Shards:      d.intVal(root, path, u, "shards", 1, 1, MaxShards),
	}
	scn.Platform = d.platform(root, path, u)
	scn.Client = d.client(root, path, u)
	scn.Fleet = d.fleet(root, path, u)
	scn.Events = d.events(root, path, u, scn)
	scn.Assertions = d.assertions(root, path, u, scn)
	if d.err == nil {
		d.checkUnknown(root, path, u)
	}
	if d.err == nil {
		d.crossValidate(root, scn)
	}
	if d.err != nil {
		return nil
	}
	return scn
}

func (d *decoder) platform(root *yamlNode, path string, ru used) PlatformSpec {
	ru["platform"] = true
	spec := PlatformSpec{
		Kind:        core.KindRattrap,
		MaxRuntimes: 5,
		Interval:    200 * time.Millisecond,
	}
	n := root.get("platform")
	if n == nil || d.err != nil {
		return spec
	}
	p := path + ".platform"
	if d.mapping(n, p) == nil {
		return spec
	}
	u := used{}
	switch kind := d.str(n, p, u, "kind", "rattrap"); kind {
	case "rattrap":
		spec.Kind = core.KindRattrap
	case "rattrap-wo":
		spec.Kind = core.KindRattrapWO
	case "vm":
		spec.Kind = core.KindVM
	default:
		d.fail(n.get("kind"), p+".kind", fmt.Sprintf("unknown platform kind %q (rattrap, rattrap-wo, vm)", kind))
	}
	spec.MaxRuntimes = d.intVal(n, p, u, "max_runtimes", 5, 1, 256)
	spec.MinRuntimes = d.intVal(n, p, u, "min_runtimes", 0, 0, 256)
	spec.MaxQueueDepth = d.intVal(n, p, u, "max_queue_depth", 0, 0, 1<<20)
	spec.IdleTimeout = d.durVal(n, p, u, "idle_timeout", 0, 0, MaxVirtual)
	spec.Autoscale = d.boolVal(n, p, u, "autoscale", false)
	spec.TemplateBoot = d.boolVal(n, p, u, "template_boot", false)
	spec.Interval = d.durVal(n, p, u, "autoscale_interval", 200*time.Millisecond, time.Millisecond, time.Minute)
	spec.Replicas = d.intVal(n, p, u, "replicas", 1, 1, MaxShards)
	if d.err == nil && spec.MinRuntimes > spec.MaxRuntimes {
		d.fail(n, p, fmt.Sprintf("min_runtimes %d exceeds max_runtimes %d", spec.MinRuntimes, spec.MaxRuntimes))
	}
	if d.err == nil {
		d.checkUnknown(n, p, u)
	}
	return spec
}

func (d *decoder) client(root *yamlNode, path string, ru used) ClientSpec {
	ru["client"] = true
	spec := ClientSpec{MaxAttempts: 1, BaseDelay: 200 * time.Millisecond, MaxDelay: 5 * time.Second}
	n := root.get("client")
	if n == nil || d.err != nil {
		return spec
	}
	p := path + ".client"
	if d.mapping(n, p) == nil {
		return spec
	}
	u := used{}
	spec.MaxAttempts = d.intVal(n, p, u, "max_attempts", 1, 1, 16)
	spec.BaseDelay = d.durVal(n, p, u, "base_delay", 200*time.Millisecond, time.Millisecond, time.Minute)
	spec.MaxDelay = d.durVal(n, p, u, "max_delay", 5*time.Second, time.Millisecond, time.Hour)
	if d.err == nil {
		d.checkUnknown(n, p, u)
	}
	return spec
}

func (d *decoder) fleet(root *yamlNode, path string, ru used) []CohortSpec {
	ru["fleet"] = true
	n := root.get("fleet")
	if d.err != nil {
		return nil
	}
	if n == nil {
		d.fail(root, path+".fleet", "required")
		return nil
	}
	if n.kind != ySeq {
		d.fail(n, path+".fleet", "expected a sequence of cohorts")
		return nil
	}
	if len(n.items) == 0 || len(n.items) > MaxCohorts {
		d.fail(n, path+".fleet", fmt.Sprintf("need 1..%d cohorts, got %d", MaxCohorts, len(n.items)))
		return nil
	}
	var out []CohortSpec
	for i, item := range n.items {
		p := fmt.Sprintf("%s.fleet[%d]", path, i)
		if d.mapping(item, p) == nil {
			return nil
		}
		u := used{}
		c := CohortSpec{
			Name:              d.requiredStr(item, p, u, "cohort"),
			Devices:           d.intVal(item, p, u, "devices", 0, 1, MaxCohortDevices),
			RequestsPerDevice: d.intVal(item, p, u, "requests_per_device", 1, 1, 1000),
			Network:           d.network(item, p, u, "network"),
			Variants:          d.intVal(item, p, u, "variants", 1, 1, MaxVariants),
			Start:             d.durVal(item, p, u, "start", 0, 0, MaxVirtual),
			Duration:          d.durVal(item, p, u, "duration", 0, time.Millisecond, MaxVirtual),
			LinpackOrder:      d.intVal(item, p, u, "linpack_order", 0, 0, MaxLinpackOrder),
		}
		if d.err == nil && n.items[i].get("devices") == nil {
			d.fail(item, p+".devices", "required")
		}
		if d.err == nil && n.items[i].get("duration") == nil {
			d.fail(item, p+".duration", "required")
		}
		c.Apps = d.apps(item, p, u)
		switch arr := d.str(item, p, u, "arrival", "uniform"); arr {
		case "uniform":
			c.Arrival = ArrivalUniform
		case "poisson":
			c.Arrival = ArrivalPoisson
		default:
			d.fail(item.get("arrival"), p+".arrival", fmt.Sprintf("unknown arrival process %q (uniform, poisson)", arr))
		}
		if d.err == nil {
			d.checkUnknown(item, p, u)
		}
		if d.err != nil {
			return nil
		}
		out = append(out, c)
	}
	return out
}

func (d *decoder) apps(n *yamlNode, path string, u used) []string {
	u["apps"] = true
	v := n.get("apps")
	if d.err != nil {
		return nil
	}
	if v == nil {
		return []string{workload.NameLinpack}
	}
	if v.kind != ySeq || len(v.items) == 0 {
		d.fail(v, path+".apps", "expected a non-empty sequence of app names")
		return nil
	}
	var out []string
	for i, item := range v.items {
		if item.kind != yScalar {
			d.fail(item, fmt.Sprintf("%s.apps[%d]", path, i), "expected an app name")
			return nil
		}
		if _, err := workload.ByName(item.scalar); err != nil {
			d.fail(item, fmt.Sprintf("%s.apps[%d]", path, i), fmt.Sprintf("unknown app %q", item.scalar))
			return nil
		}
		out = append(out, item.scalar)
	}
	return out
}

// cohortIndex resolves a cohort reference by name.
func (d *decoder) cohortIndex(n *yamlNode, path string, u used, key string, scn *Scenario) int {
	name := d.requiredStr(n, path, u, key)
	if d.err != nil {
		return -1
	}
	for i, c := range scn.Fleet {
		if c.Name == name {
			return i
		}
	}
	d.fail(n.get(key), path+"."+key, fmt.Sprintf("unknown cohort %q", name))
	return -1
}

func (d *decoder) events(root *yamlNode, path string, ru used, scn *Scenario) []EventSpec {
	ru["events"] = true
	n := root.get("events")
	if n == nil || d.err != nil {
		return nil
	}
	if n.kind != ySeq {
		d.fail(n, path+".events", "expected a sequence of events")
		return nil
	}
	if len(n.items) > MaxEvents {
		d.fail(n, path+".events", fmt.Sprintf("more than %d events", MaxEvents))
		return nil
	}
	var out []EventSpec
	adds := 0 // add-shard events decoded so far: they extend the shard id space
	for i, item := range n.items {
		p := fmt.Sprintf("%s.events[%d]", path, i)
		if d.mapping(item, p) == nil {
			return nil
		}
		u := used{}
		ev := EventSpec{At: d.durVal(item, p, u, "at", 0, 0, MaxVirtual), Cohort: -1}
		if d.err == nil && item.get("at") == nil {
			d.fail(item, p+".at", "required")
		}
		action := d.requiredStr(item, p, u, "action")
		if d.err != nil {
			return nil
		}
		switch action {
		case "set-network":
			ev.Kind = EvSetNetwork
			ev.Cohort = d.cohortIndex(item, p, u, "cohort", scn)
			ev.Net = d.network(item, p, u, "network")
		case "load-spike":
			ev.Kind = EvLoadSpike
			ev.Cohort = d.cohortIndex(item, p, u, "cohort", scn)
			ev.Factor = d.floatVal(item, p, u, "factor", 0, 0.01, 1000)
			if d.err == nil && item.get("factor") == nil {
				d.fail(item, p+".factor", "required")
			}
			ev.Dur = d.durVal(item, p, u, "duration", 0, time.Millisecond, MaxVirtual)
			if d.err == nil && item.get("duration") == nil {
				d.fail(item, p+".duration", "required")
			}
		case "fault-plan":
			ev.Kind = EvFaultPlan
			ev.Plan = d.requiredStr(item, p, u, "plan")
			if d.err == nil {
				if _, ok := planByName(ev.Plan, 0); !ok {
					d.fail(item.get("plan"), p+".plan", fmt.Sprintf("unknown fault plan %q (%s)", ev.Plan, strings.Join(PlanNames(), ", ")))
				}
			}
		case "clear-faults":
			ev.Kind = EvClearFaults
		case "kill-shard":
			ev.Kind = EvKillShard
			ev.Shard = d.intVal(item, p, u, "shard", 0, 0, MaxShards-1)
			if d.err == nil && ev.Shard >= scn.Shards {
				d.fail(item.get("shard"), p+".shard", fmt.Sprintf("shard %d out of range (scenario has %d)", ev.Shard, scn.Shards))
			}
		case "add-shard":
			ev.Kind = EvAddShard
			adds++
			if d.err == nil && scn.Shards+adds > MaxShards {
				d.fail(item, p, fmt.Sprintf("add-shard would exceed %d shards", MaxShards))
			}
		case "remove-shard", "fail-shard":
			if action == "remove-shard" {
				ev.Kind = EvRemoveShard
			} else {
				ev.Kind = EvFailShard
			}
			ev.Shard = d.intVal(item, p, u, "shard", 0, 0, MaxShards-1)
			// Earlier add-shard events extend the addressable id space:
			// shard ids are assigned in event order, founding shards first.
			if d.err == nil && ev.Shard >= scn.Shards+adds {
				d.fail(item.get("shard"), p+".shard",
					fmt.Sprintf("shard %d out of range (%d founding + %d added)", ev.Shard, scn.Shards, adds))
			}
		case "set-floor":
			ev.Kind = EvSetFloor
			ev.Floor = d.intVal(item, p, u, "min_runtimes", 0, 0, 256)
			if d.err == nil && item.get("min_runtimes") == nil {
				d.fail(item, p+".min_runtimes", "required")
			}
			if d.err == nil && !scn.Platform.Autoscale {
				d.fail(item, p, "set-floor requires platform.autoscale: true")
			}
			if d.err == nil && ev.Floor > scn.Platform.MaxRuntimes {
				d.fail(item.get("min_runtimes"), p+".min_runtimes", fmt.Sprintf("floor %d exceeds max_runtimes %d", ev.Floor, scn.Platform.MaxRuntimes))
			}
		default:
			d.fail(item.get("action"), p+".action", fmt.Sprintf("unknown action %q", action))
		}
		if d.err == nil {
			d.checkUnknown(item, p, u)
		}
		if d.err != nil {
			return nil
		}
		out = append(out, ev)
	}
	return out
}

func (d *decoder) assertions(root *yamlNode, path string, ru used, scn *Scenario) []AssertionSpec {
	ru["assertions"] = true
	n := root.get("assertions")
	if n == nil || d.err != nil {
		return nil
	}
	if n.kind != ySeq {
		d.fail(n, path+".assertions", "expected a sequence of assertions")
		return nil
	}
	if len(n.items) > MaxAssertions {
		d.fail(n, path+".assertions", fmt.Sprintf("more than %d assertions", MaxAssertions))
		return nil
	}
	var out []AssertionSpec
	for i, item := range n.items {
		p := fmt.Sprintf("%s.assertions[%d]", path, i)
		if d.mapping(item, p) == nil {
			return nil
		}
		u := used{}
		a := AssertionSpec{Cohort: -1}
		typ := d.requiredStr(item, p, u, "type")
		if d.err != nil {
			return nil
		}
		needMin := func(lo, hi float64) {
			a.Min = d.floatVal(item, p, u, "min", 0, lo, hi)
			a.HasMin = true
			if d.err == nil && item.get("min") == nil {
				d.fail(item, p+".min", "required")
			}
		}
		switch typ {
		case "success-rate":
			a.Kind = AssertSuccessRate
			needMin(0, 1)
			if item.get("cohort") != nil {
				a.Cohort = d.cohortIndex(item, p, u, "cohort", scn)
			}
		case "p50", "p99", "max-latency":
			switch typ {
			case "p50":
				a.Kind = AssertP50
			case "p99":
				a.Kind = AssertP99
			default:
				a.Kind = AssertMaxLatency
			}
			a.MaxDur = d.durVal(item, p, u, "max", 0, time.Microsecond, MaxVirtual)
			a.HasMax = true
			if d.err == nil && item.get("max") == nil {
				d.fail(item, p+".max", "required")
			}
			if item.get("cohort") != nil {
				a.Cohort = d.cohortIndex(item, p, u, "cohort", scn)
			}
		case "census":
			a.Kind = AssertCensus
		case "pool-floor":
			a.Kind = AssertPoolFloor
			a.Min = float64(d.intVal(item, p, u, "min", scn.Platform.MinRuntimes, 0, 1<<20))
			a.HasMin = true
		case "final-pool":
			a.Kind = AssertFinalPool
			if item.get("min") != nil {
				a.Min = float64(d.intVal(item, p, u, "min", 0, 0, 1<<20))
				a.HasMin = true
			}
			if item.get("max") != nil {
				a.Max = float64(d.intVal(item, p, u, "max", 0, 0, 1<<20))
				a.HasMax = true
			}
			if d.err == nil && !a.HasMin && !a.HasMax {
				d.fail(item, p, "final-pool needs min and/or max")
			}
		case "min-requests":
			a.Kind = AssertMinRequests
			a.Min = float64(d.intVal(item, p, u, "min", 0, 1, MaxTotalArrivals))
			a.HasMin = true
			if d.err == nil && item.get("min") == nil {
				d.fail(item, p+".min", "required")
			}
		case "boot-p50", "boot-p99":
			if typ == "boot-p50" {
				a.Kind = AssertBootP50
			} else {
				a.Kind = AssertBootP99
			}
			a.MaxDur = d.durVal(item, p, u, "max", 0, time.Microsecond, MaxVirtual)
			a.HasMax = true
			if d.err == nil && item.get("max") == nil {
				d.fail(item, p+".max", "required")
			}
		case "warehouse-hit-rate":
			a.Kind = AssertWarehouseHitRate
			needMin(0, 1)
		case "live-shards":
			a.Kind = AssertLiveShards
			if item.get("min") != nil {
				a.Min = float64(d.intVal(item, p, u, "min", 0, 0, MaxShards))
				a.HasMin = true
			}
			if item.get("max") != nil {
				a.Max = float64(d.intVal(item, p, u, "max", 0, 0, MaxShards))
				a.HasMax = true
			}
			if d.err == nil && !a.HasMin && !a.HasMax {
				d.fail(item, p, "live-shards needs min and/or max")
			}
		case "success-rate-after":
			a.Kind = AssertSuccessRateAfter
			a.After = d.durVal(item, p, u, "after", 0, 0, MaxVirtual)
			if d.err == nil && item.get("after") == nil {
				d.fail(item, p+".after", "required")
			}
			needMin(0, 1)
		case "overloads":
			a.Kind = AssertOverloads
			if item.get("min") != nil {
				a.Min = float64(d.intVal(item, p, u, "min", 0, 0, MaxTotalArrivals))
				a.HasMin = true
			}
			if item.get("max") != nil {
				a.Max = float64(d.intVal(item, p, u, "max", 0, 0, MaxTotalArrivals))
				a.HasMax = true
			}
			if d.err == nil && !a.HasMin && !a.HasMax {
				d.fail(item, p, "overloads needs min and/or max")
			}
		default:
			d.fail(item.get("type"), p+".type", fmt.Sprintf("unknown assertion type %q", typ))
		}
		if d.err == nil {
			d.checkUnknown(item, p, u)
		}
		if d.err != nil {
			return nil
		}
		out = append(out, a)
	}
	return out
}

// crossValidate checks whole-scenario bounds that no single field owns.
func (d *decoder) crossValidate(root *yamlNode, scn *Scenario) {
	total := 0
	for i, c := range scn.Fleet {
		arrivals := c.Devices * c.RequestsPerDevice
		if arrivals > MaxTotalArrivals {
			d.fail(root.get("fleet"), fmt.Sprintf("scenario.fleet[%d]", i),
				fmt.Sprintf("%d arrivals exceed the %d cap", arrivals, MaxTotalArrivals))
			return
		}
		total += arrivals
		if end := c.Start + c.Duration; end > MaxVirtual {
			d.fail(root.get("fleet"), fmt.Sprintf("scenario.fleet[%d]", i),
				fmt.Sprintf("start+duration %v exceeds the %v horizon", end, MaxVirtual))
			return
		}
		for j := range scn.Fleet[:i] {
			if scn.Fleet[j].Name == c.Name {
				d.fail(root.get("fleet"), fmt.Sprintf("scenario.fleet[%d].cohort", i),
					fmt.Sprintf("duplicate cohort name %q", c.Name))
				return
			}
		}
	}
	if total > MaxTotalArrivals {
		d.fail(root.get("fleet"), "scenario.fleet",
			fmt.Sprintf("%d total arrivals exceed the %d cap", total, MaxTotalArrivals))
		return
	}
	if scn.Platform.Replicas > scn.Shards {
		d.fail(root.get("platform"), "scenario.platform.replicas",
			fmt.Sprintf("replicas %d exceeds shards %d", scn.Platform.Replicas, scn.Shards))
	}
}

// PlanNames lists the fault plans a scenario's fault-plan event can
// activate: the standard robustness suite plus the scenario-specific
// chaos plans.
func PlanNames() []string {
	names := []string{"healthy"}
	for _, p := range faults.StandardPlans(0) {
		names = append(names, p.Name)
	}
	return append(names, "teardown-storm", "exec-flaky")
}

// planByName instantiates a named fault plan at the given seed.
func planByName(name string, seed int64) (faults.Plan, bool) {
	if name == "healthy" {
		return faults.Healthy(), true
	}
	for _, p := range faults.StandardPlans(seed) {
		if p.Name == name {
			return p, true
		}
	}
	switch name {
	case "teardown-storm":
		// Every other teardown fails at the guest layer: the repaired
		// StopRuntime must still reclaim every slot (zero capacity loss).
		return faults.Plan{Name: name, Seed: seed, Rules: []faults.Rule{
			{Site: faults.SiteTeardown, Kind: faults.Drop, Every: 2},
		}}, true
	case "exec-flaky":
		// One in five executions fails; success clears strikes, so only
		// genuinely sick runtimes reach the cordon threshold.
		return faults.Plan{Name: name, Seed: seed, Rules: []faults.Rule{
			{Site: faults.SiteExec, Kind: faults.Drop, P: 0.2},
		}}, true
	}
	return faults.Plan{}, false
}

// IsScenarioError reports whether err is a typed scenario decode error
// (the fuzz target's never-panic contract).
func IsScenarioError(err error) bool {
	var pe *ParseError
	var se *SchemaError
	return errors.As(err, &pe) || errors.As(err, &se)
}
