package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioDecode pins the decoder's contract on adversarial input:
// Decode never panics, never hangs, and every rejection is a typed
// *ParseError or *SchemaError (IsScenarioError). The corpus seeds every
// checked-in scenario plus a spread of malformed shapes — truncated
// documents, out-of-range values, unknown event kinds, oversize fleets.
func FuzzScenarioDecode(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	for _, file := range files {
		if data, err := os.ReadFile(file); err == nil {
			f.Add(data)
		}
	}
	for _, seed := range []string{
		"",
		"name: x\n",
		minimalScenario,
		minimalScenario + "events:\n  - at: 1s\n    action: warp-core-breach\n",
		minimalScenario + "assertions:\n  - type: success-rate\n    min: 2\n",
		"name: x\nfleet:\n  - cohort: a\n    devices: 99999999999\n    duration: 1s\n",
		"name: x\nfleet:\n  - cohort: a\n    devices: 1\n    duration: 1000000h\n",
		"name: x\nshards: -3\n",
		"name: x\nseed: not-a-number\n",
		"a: [1, [2]]\n",
		"a: {b: 1}\n",
		"\ta: 1\n",
		"%YAML 1.2\n",
		"a: &anchor 1\n",
		"a: \"unterminated\n",
		"- just\n- a\n- sequence\n",
		"name: x\nfleet:\n  - cohort: a\n    devices: 1\n    duration: 1s\n    network: \"\\q\"\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		scn, err := Decode(data)
		if err != nil {
			if !IsScenarioError(err) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			if scn != nil {
				t.Fatal("Decode returned both a scenario and an error")
			}
			return
		}
		// Anything the decoder accepts must already be clamped to the
		// schema limits — the runner trusts these bounds.
		if scn == nil {
			t.Fatal("Decode returned nil, nil")
		}
		if scn.Name == "" {
			t.Error("accepted scenario without a name")
		}
		if scn.Shards < 1 || scn.Shards > MaxShards {
			t.Errorf("accepted shards %d", scn.Shards)
		}
		if len(scn.Fleet) == 0 || len(scn.Fleet) > MaxCohorts {
			t.Errorf("accepted %d cohorts", len(scn.Fleet))
		}
		total := 0
		for _, c := range scn.Fleet {
			if c.Devices < 1 || c.Devices > MaxCohortDevices {
				t.Errorf("accepted cohort %q with %d devices", c.Name, c.Devices)
			}
			if c.Duration <= 0 {
				t.Errorf("accepted cohort %q with duration %v", c.Name, c.Duration)
			}
			if len(c.Apps) == 0 {
				t.Errorf("accepted cohort %q with no apps", c.Name)
			}
			total += c.Devices * c.RequestsPerDevice
		}
		if total > MaxTotalArrivals {
			t.Errorf("accepted %d total arrivals", total)
		}
		for _, ev := range scn.Events {
			if ev.Kind == EvKillShard && ev.Shard >= scn.Shards {
				t.Errorf("accepted kill-shard %d with %d shards", ev.Shard, scn.Shards)
			}
			if ev.Kind == EvFaultPlan {
				if _, ok := planByName(ev.Plan, scn.Seed); !ok {
					t.Errorf("accepted unknown fault plan %q", ev.Plan)
				}
			}
		}
	})
}
