package scenario

import (
	"math"
	"testing"
	"time"
)

func cohort(devices, rpd int, kind ArrivalKind, dur time.Duration) CohortSpec {
	return CohortSpec{
		Name:              "prop",
		Devices:           devices,
		RequestsPerDevice: rpd,
		Arrival:           kind,
		Duration:          dur,
	}
}

// TestScheduleDeterministic pins the generator's reproducibility contract:
// equal (spec, seed, index) gives a byte-identical schedule; changing the
// seed or the cohort's fleet index gives an independent stream.
func TestScheduleDeterministic(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalUniform, ArrivalPoisson} {
		c := cohort(500, 2, kind, 20*time.Second)
		a := Schedule(c, 42, 0)
		b := Schedule(c, 42, 0)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: schedules diverge at arrival %d: %v vs %v", kind, i, a[i], b[i])
			}
		}
	}
	// Poisson streams must actually depend on seed and index.
	c := cohort(500, 2, ArrivalPoisson, 20*time.Second)
	base := Schedule(c, 42, 0)
	for name, other := range map[string][]time.Duration{
		"seed":  Schedule(c, 43, 0),
		"index": Schedule(c, 42, 1),
	} {
		same := true
		for i := range base {
			if base[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("changing the %s left the poisson schedule unchanged", name)
		}
	}
}

// TestScheduleCount: every cohort emits exactly Devices × RequestsPerDevice
// arrivals — the fleet size is a declared quantity, not a sampling outcome.
func TestScheduleCount(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalUniform, ArrivalPoisson} {
		for _, tc := range []struct{ dev, rpd int }{{1, 1}, {7, 3}, {1000, 2}} {
			c := cohort(tc.dev, tc.rpd, kind, 10*time.Second)
			if got, want := len(Schedule(c, 42, 0)), tc.dev*tc.rpd; got != want {
				t.Errorf("%v %d×%d: %d arrivals, want %d", kind, tc.dev, tc.rpd, got, want)
			}
		}
	}
}

// TestScheduleUniformSpacing: uniform arrivals are evenly spaced at
// exactly 1/Rate() and span exactly Duration.
func TestScheduleUniformSpacing(t *testing.T) {
	c := cohort(200, 1, ArrivalUniform, 10*time.Second)
	s := Schedule(c, 42, 0)
	gap := time.Duration(float64(time.Second) / c.Rate())
	for i := 1; i < len(s); i++ {
		d := s[i] - s[i-1]
		if d < gap-time.Microsecond || d > gap+time.Microsecond {
			t.Fatalf("gap %d = %v, want %v", i, d, gap)
		}
	}
	last := s[len(s)-1]
	if last < c.Duration-10*time.Millisecond || last > c.Duration+10*time.Millisecond {
		t.Errorf("last arrival at %v, want ≈%v", last, c.Duration)
	}
}

// TestScheduleStartOffset: arrivals begin after the cohort's start offset.
func TestScheduleStartOffset(t *testing.T) {
	c := cohort(50, 1, ArrivalPoisson, 5*time.Second)
	c.Start = 3 * time.Second
	for i, at := range Schedule(c, 42, 0) {
		if at < c.Start {
			t.Fatalf("arrival %d at %v, before start %v", i, at, c.Start)
		}
	}
}

// TestSchedulePoissonRate: the realized mean inter-arrival gap of a
// poisson cohort converges on 1/Rate(), and the gaps are actually
// dispersed (exponential, not uniform).
func TestSchedulePoissonRate(t *testing.T) {
	c := cohort(20000, 1, ArrivalPoisson, 100*time.Second)
	s := Schedule(c, 42, 0)
	mean := s[len(s)-1].Seconds() / float64(len(s))
	want := 1 / c.Rate()
	if math.Abs(mean-want) > 0.02*want {
		t.Errorf("mean gap %.6fs, want %.6fs ±2%%", mean, want)
	}
	var sumSq float64
	for i := 1; i < len(s); i++ {
		g := (s[i] - s[i-1]).Seconds()
		sumSq += (g - want) * (g - want)
	}
	// Exponential gaps have stddev == mean; uniform spacing would have ~0.
	sd := math.Sqrt(sumSq / float64(len(s)-1))
	if sd < 0.8*want || sd > 1.2*want {
		t.Errorf("gap stddev %.6fs, want ≈%.6fs (exponential)", sd, want)
	}
}

// TestCohortSeedIndependence: the per-cohort seed derivation must not
// collide across adjacent (seed, index) pairs — a collision would make
// two cohorts mirror each other's randomness.
func TestCohortSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 64; seed++ {
		for idx := 0; idx < MaxCohorts; idx++ {
			s := cohortSeed(seed, idx)
			if seen[s] {
				t.Fatalf("cohortSeed collision at seed %d idx %d", seed, idx)
			}
			seen[s] = true
		}
	}
}
