package scenario

import (
	"math/rand"
	"time"
)

// arrivalGen is one cohort's seeded arrival process. The fleet is NOT
// goroutine-per-device: a single generator proc draws inter-arrival gaps
// and spawns a short-lived request proc per arrival, so a million-device
// cohort costs one goroutine plus whatever is concurrently in flight.
//
// The generator emits exactly Devices × RequestsPerDevice arrivals. A
// load spike multiplies the instantaneous rate — gaps shrink while it is
// active — which compresses the remaining schedule without changing the
// total: a burst is the same work arriving faster.
type arrivalGen struct {
	rng     *rand.Rand
	kind    ArrivalKind
	rate    float64 // base arrivals per second
	total   int
	emitted int
}

// cohortSeed derives an independent per-cohort stream from the scenario
// seed, so reordering cohorts in the file or adding a new one does not
// perturb the others' schedules.
func cohortSeed(seed int64, idx int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(idx+1)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return int64(x & (1<<62 - 1))
}

func newArrivalGen(c CohortSpec, seed int64, idx int) *arrivalGen {
	return &arrivalGen{
		rng:   rand.New(rand.NewSource(cohortSeed(seed, idx))),
		kind:  c.Arrival,
		rate:  c.Rate(),
		total: c.Devices * c.RequestsPerDevice,
	}
}

// next returns the gap before the next arrival and whether one remains.
// mult is the current load-spike factor (1 when no spike is active).
func (g *arrivalGen) next(mult float64) (time.Duration, bool) {
	if g.emitted >= g.total {
		return 0, false
	}
	g.emitted++
	u := 1.0
	if g.kind == ArrivalPoisson {
		u = g.rng.ExpFloat64()
	}
	gap := u / (g.rate * mult)
	return time.Duration(gap * float64(time.Second)), true
}

// Schedule returns a cohort's full arrival timeline (offsets from virtual
// t=0, spike-free) for the scenario seed and the cohort's index in the
// fleet. It is the same stream the runner consumes, exported so property
// tests can pin the generator's contract: equal seeds give identical
// schedules, uniform cohorts emit exactly Devices × RequestsPerDevice
// arrivals over Duration, and the realized mean rate matches Rate().
func Schedule(c CohortSpec, seed int64, idx int) []time.Duration {
	g := newArrivalGen(c, seed, idx)
	out := make([]time.Duration, 0, g.total)
	at := c.Start
	for {
		gap, ok := g.next(1)
		if !ok {
			return out
		}
		at += gap
		out = append(out, at)
	}
}
