package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const minimalScenario = `name: mini
fleet:
  - cohort: a
    devices: 4
    network: lan-wifi
    duration: 1s
`

func TestDecodeDefaults(t *testing.T) {
	scn, err := Decode([]byte(minimalScenario))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if scn.Name != "mini" || scn.Seed != 42 || scn.Shards != 1 {
		t.Errorf("header: %+v", scn)
	}
	if scn.Platform.MaxRuntimes != 5 || scn.Platform.Autoscale {
		t.Errorf("platform defaults: %+v", scn.Platform)
	}
	if scn.Client.MaxAttempts != 1 || scn.Client.BaseDelay != 200*time.Millisecond || scn.Client.MaxDelay != 5*time.Second {
		t.Errorf("client defaults: %+v", scn.Client)
	}
	if len(scn.Fleet) != 1 {
		t.Fatalf("fleet: %+v", scn.Fleet)
	}
	c := scn.Fleet[0]
	if c.RequestsPerDevice != 1 || c.Variants != 1 || c.Arrival != ArrivalUniform {
		t.Errorf("cohort defaults: %+v", c)
	}
	if len(c.Apps) != 1 || c.Apps[0] != "Linpack" {
		t.Errorf("default app mix: %v", c.Apps)
	}
	if c.Network.Name != "LAN WiFi" {
		t.Errorf("default network: %q", c.Network.Name)
	}
}

func TestDecodeFullScenario(t *testing.T) {
	scn, err := Decode([]byte(`name: full
description: every knob
seed: 7
shards: 4
platform:
  kind: rattrap
  max_runtimes: 8
  min_runtimes: 1
  max_queue_depth: 16
  autoscale: true
  autoscale_interval: 100ms
client:
  max_attempts: 3
  base_delay: 50ms
  max_delay: 2s
fleet:
  - cohort: phones
    devices: 100
    requests_per_device: 2
    network: 4g
    apps: [OCR, Linpack]
    linpack_order: 48
    variants: 16
    arrival: poisson
    start: 1s
    duration: 30s
events:
  - at: 5s
    action: load-spike
    cohort: phones
    factor: 10
    duration: 2s
  - at: 8s
    action: kill-shard
    shard: 2
  - at: 10s
    action: fault-plan
    plan: drop-uplink
  - at: 12s
    action: set-network
    cohort: phones
    network: lan-wifi
  - at: 14s
    action: clear-faults
  - at: 16s
    action: set-floor
    min_runtimes: 4
assertions:
  - type: success-rate
    min: 0.9
    cohort: phones
  - type: p99
    max: 3s
  - type: census
  - type: final-pool
    min: 4
    max: 8
  - type: overloads
    max: 100
`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if scn.Seed != 7 || scn.Shards != 4 {
		t.Errorf("header: seed %d shards %d", scn.Seed, scn.Shards)
	}
	c := scn.Fleet[0]
	if c.Arrival != ArrivalPoisson || c.Variants != 16 || c.LinpackOrder != 48 || c.Start != time.Second {
		t.Errorf("cohort: %+v", c)
	}
	if want := 200.0 / 30.0; c.Rate() < want-0.01 || c.Rate() > want+0.01 {
		t.Errorf("Rate() = %v, want %v", c.Rate(), want)
	}
	kinds := []EventKind{EvLoadSpike, EvKillShard, EvFaultPlan, EvSetNetwork, EvClearFaults, EvSetFloor}
	if len(scn.Events) != len(kinds) {
		t.Fatalf("events: %+v", scn.Events)
	}
	for i, k := range kinds {
		if scn.Events[i].Kind != k {
			t.Errorf("event[%d] = %v, want %v", i, scn.Events[i].Kind, k)
		}
	}
	if scn.Events[5].Floor != 4 {
		t.Errorf("set-floor floor = %d", scn.Events[5].Floor)
	}
	if len(scn.Assertions) != 5 {
		t.Fatalf("assertions: %+v", scn.Assertions)
	}
	if a := scn.Assertions[0]; a.Kind != AssertSuccessRate || a.Cohort != 0 || a.Min != 0.9 {
		t.Errorf("assertion[0]: %+v", a)
	}
	if a := scn.Assertions[1]; a.Kind != AssertP99 || a.MaxDur != 3*time.Second {
		t.Errorf("assertion[1]: %+v", a)
	}
	if a := scn.Assertions[4]; a.Kind != AssertOverloads || a.HasMin || !a.HasMax {
		t.Errorf("assertion[4]: %+v", a)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"missing-name", "fleet:\n  - cohort: a\n    devices: 1\n    duration: 1s\n", "scenario.name: required"},
		{"missing-fleet", "name: x\n", "scenario.fleet: required"},
		{"unknown-top-key", minimalScenario + "bogus: 1\n", "scenario.bogus: unknown key"},
		{"unknown-platform-key", "name: x\nplatform:\n  cores: 4\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n", "platform.cores: unknown key"},
		{"unknown-cohort-key", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n    color: red\n", "fleet[0].color: unknown key"},
		{"bad-kind", "name: x\nplatform:\n  kind: bare-metal\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n", "unknown platform kind"},
		{"devices-zero", "name: x\nfleet:\n  - cohort: a\n    devices: 0\n    network: lan-wifi\n    duration: 1s\n", "fleet[0].devices"},
		{"devices-over-cap", "name: x\nfleet:\n  - cohort: a\n    devices: 4000001\n    network: lan-wifi\n    duration: 1s\n", "fleet[0].devices"},
		{"missing-devices", "name: x\nfleet:\n  - cohort: a\n    network: lan-wifi\n    duration: 1s\n", "fleet[0].devices: required"},
		{"missing-duration", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n", "fleet[0].duration: required"},
		{"bare-number-duration", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 10\n", "duration"},
		{"unknown-network", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    duration: 1s\n    network: 5g\n", "network"},
		{"unknown-app", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n    apps: [Doom]\n", `unknown app "Doom"`},
		{"bad-arrival", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n    arrival: burst\n", "unknown arrival process"},
		{"dup-cohort", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n", "duplicate cohort name"},
		{"min-over-max", "name: x\nplatform:\n  max_runtimes: 2\n  min_runtimes: 3\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    duration: 1s\n", "min_runtimes 3 exceeds max_runtimes 2"},
		{"unknown-action", minimalScenario + "events:\n  - at: 1s\n    action: reboot\n", "unknown action"},
		{"unknown-plan", minimalScenario + "events:\n  - at: 1s\n    action: fault-plan\n    plan: gremlins\n", "unknown fault plan"},
		{"event-unknown-cohort", minimalScenario + "events:\n  - at: 1s\n    action: set-network\n    cohort: ghosts\n    network: 4g\n", `unknown cohort "ghosts"`},
		{"shard-out-of-range", minimalScenario + "events:\n  - at: 1s\n    action: kill-shard\n    shard: 3\n", "shard 3 out of range"},
		{"floor-without-autoscale", minimalScenario + "events:\n  - at: 1s\n    action: set-floor\n    min_runtimes: 2\n", "requires platform.autoscale"},
		{"unknown-assertion", minimalScenario + "assertions:\n  - type: vibes\n", "unknown assertion type"},
		{"success-rate-no-min", minimalScenario + "assertions:\n  - type: success-rate\n", "min: required"},
		{"success-rate-range", minimalScenario + "assertions:\n  - type: success-rate\n    min: 1.5\n", "min"},
		{"final-pool-empty", minimalScenario + "assertions:\n  - type: final-pool\n", "needs min and/or max"},
		{"horizon", "name: x\nfleet:\n  - cohort: a\n    devices: 1\n    network: lan-wifi\n    start: 47h\n    duration: 2h\n", "horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.src))
			if err == nil {
				t.Fatalf("want error, got nil")
			}
			var se *SchemaError
			if !errors.As(err, &se) {
				t.Fatalf("want *SchemaError, got %T: %v", err, err)
			}
			if !IsScenarioError(err) {
				t.Errorf("IsScenarioError = false for %v", err)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestArrivalCapAcrossCohorts(t *testing.T) {
	// Each cohort is under the per-cohort cap, but together they exceed
	// the total-arrivals cap.
	var b strings.Builder
	b.WriteString("name: x\nfleet:\n")
	for i := 0; i < 5; i++ {
		b.WriteString("  - cohort: c")
		b.WriteByte(byte('0' + i))
		b.WriteString("\n    devices: 3500000\n    network: lan-wifi\n    duration: 1h\n")
	}
	_, err := Decode([]byte(b.String()))
	if err == nil || !strings.Contains(err.Error(), "total arrivals exceed") {
		t.Fatalf("want total-arrivals cap error, got %v", err)
	}
}

func TestPlanNamesAllResolve(t *testing.T) {
	for _, name := range PlanNames() {
		if _, ok := planByName(name, 42); !ok {
			t.Errorf("PlanNames lists %q but planByName cannot build it", name)
		}
	}
	if _, ok := planByName("no-such-plan", 42); ok {
		t.Error("planByName accepted an unknown name")
	}
}

// TestCheckedInScenariosValidate decodes every scenario shipped in
// scenarios/ — the same gate as rattrap-bench -scenario-validate — and
// pins the floor of twelve named scenarios.
func TestCheckedInScenariosValidate(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 12 {
		t.Fatalf("only %d checked-in scenarios, want at least 12", len(files))
	}
	names := map[string]bool{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		scn, err := Decode(data)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(scn.Assertions) == 0 {
			t.Errorf("%s: no assertions — a scenario with nothing to check gates nothing", f)
		}
		base := strings.TrimSuffix(filepath.Base(f), ".yaml")
		if scn.Name != base {
			t.Errorf("%s: name %q does not match the file name", f, scn.Name)
		}
		names[scn.Name] = true
	}
	if len(names) != len(files) {
		t.Errorf("scenario names are not unique: %d names over %d files", len(names), len(files))
	}
}

// TestRunTwoCohortProfiles runs a tiny two-cohort scenario end to end and
// checks that each cohort's declared network profile made it into the
// report, and every arrival was accounted for.
func TestRunTwoCohortProfiles(t *testing.T) {
	scn, err := Decode([]byte(`name: two-cohorts
fleet:
  - cohort: office
    devices: 6
    network: lan-wifi
    linpack_order: 24
    duration: 3s
  - cohort: cellular
    devices: 4
    network: 4g
    linpack_order: 24
    duration: 3s
assertions:
  - type: success-rate
    min: 1.0
  - type: census
`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("assertions failed: %+v", rep.Assertions)
	}
	if rep.Totals.Arrivals != 10 || rep.Totals.Succeeded != 10 {
		t.Errorf("totals: %+v", rep.Totals)
	}
	if len(rep.Cohorts) != 2 {
		t.Fatalf("cohorts: %+v", rep.Cohorts)
	}
	if rep.Cohorts[0].Network != "LAN WiFi" || rep.Cohorts[1].Network != "4G" {
		t.Errorf("cohort networks: %q, %q", rep.Cohorts[0].Network, rep.Cohorts[1].Network)
	}
	if rep.Cohorts[0].Stats.Arrivals != 6 || rep.Cohorts[1].Stats.Arrivals != 4 {
		t.Errorf("per-cohort arrivals: %+v", rep.Cohorts)
	}
	// 4G connect+transfer dwarfs LAN WiFi; the per-cohort split must
	// reflect the profiles actually used.
	if rep.Cohorts[1].Stats.P50Ms <= rep.Cohorts[0].Stats.P50Ms {
		t.Errorf("4G cohort p50 %.1fms not above LAN p50 %.1fms",
			rep.Cohorts[1].Stats.P50Ms, rep.Cohorts[0].Stats.P50Ms)
	}
}
