package scenario

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"
)

// TestStressChaosMix is the race-detector stress: the checked-in
// chaos-mix scenario stands up a 4-shard autoscaled cluster and, while
// the fleet injects load, takes a ×10 spike, a shard kill, a lossy fault
// plan, a network flip, and a floor raise. `go test -race` runs this with
// full interleaving checks; at the end every shard's lifecycle census
// must match its slot list exactly.
func TestStressChaosMix(t *testing.T) {
	scn, err := Load(filepath.Join("..", "..", "scenarios", "chaos-mix.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if scn.Shards != 4 || !scn.Platform.Autoscale {
		t.Fatalf("chaos-mix drifted from the stress shape: %+v", scn)
	}
	rep, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("chaos-mix assertions failed: %+v", rep.Assertions)
	}
	if len(rep.Pool.Shards) != 4 {
		t.Fatalf("pool report has %d shards", len(rep.Pool.Shards))
	}
	for _, sh := range rep.Pool.Shards {
		if !sh.CensusOK {
			t.Errorf("shard %d census mismatch after chaos: %+v", sh.Shard, sh)
		}
	}
	if rep.Pool.Cordoned == 0 {
		t.Error("kill-shard cordoned nothing — the chaos never landed")
	}
	if rep.Pool.InjectedFaults == 0 {
		t.Error("fault plan injected nothing — the chaos never landed")
	}
	if got := len(rep.Events); got != 6 {
		t.Errorf("%d events applied, want 6", got)
	}
}

// TestStressChaosMixTemplateBoot reruns the chaos-mix stress with
// template cloning forced on: the same spike, shard kill, fault plan,
// network flip, and floor raise must leave a clean census when every
// boot after the capture is a COW clone.
func TestStressChaosMixTemplateBoot(t *testing.T) {
	scn, err := Load(filepath.Join("..", "..", "scenarios", "chaos-mix.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	scn.Platform.TemplateBoot = true
	rep, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("chaos-mix assertions failed with template boot: %+v", rep.Assertions)
	}
	for _, sh := range rep.Pool.Shards {
		if !sh.CensusOK {
			t.Errorf("shard %d census mismatch after chaos with template boot: %+v", sh.Shard, sh)
		}
	}
}

// TestStressConcurrentRuns drives several full scenario runs on separate
// engines at once. Each run must stay deterministic and isolated: no
// shared mutable state may leak between concurrently running simulations.
func TestStressConcurrentRuns(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "shard-kill.yaml")
	const n = 3
	outs := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scn, err := Load(path)
			if err != nil {
				t.Error(err)
				return
			}
			rep, err := Run(scn)
			if err != nil {
				t.Error(err)
				return
			}
			buf, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = buf
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Errorf("concurrent run %d diverged from run 0", i)
		}
	}
}
