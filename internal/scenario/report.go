package scenario

import (
	"fmt"
	"sort"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/metrics"
	"rattrap/internal/sim"
)

// Report is the machine-readable outcome of one scenario run
// (BENCH_scenario.json). Every field is a virtual-time quantity, so the
// report is byte-identical across runs at one seed.
type Report struct {
	Scenario    string            `json:"scenario"`
	Description string            `json:"description,omitempty"`
	Seed        int64             `json:"seed"`
	Shards      int               `json:"shards"`
	VirtualSecs float64           `json:"virtual_secs"`
	Totals      Stats             `json:"totals"`
	Cohorts     []CohortReport    `json:"cohorts"`
	Pool        PoolReport        `json:"pool"`
	Resharding  *ReshardReport    `json:"resharding,omitempty"`
	Events      []EventReport     `json:"events,omitempty"`
	Assertions  []AssertionReport `json:"assertions"`
	Pass        bool              `json:"pass"`
}

// ReshardReport is the membership and migration accounting for runs that
// resharded or replicated. It is omitted entirely for static 1-replica
// runs, keeping their reports byte-identical to the pre-resharding era.
type ReshardReport struct {
	Epoch          uint64 `json:"epoch"`
	Replicas       int    `json:"replicas"`
	LiveShards     int    `json:"live_shards"`
	TotalShards    int    `json:"total_shards"`
	Joins          int    `json:"joins"`
	Removals       int    `json:"removals"`
	Failures       int    `json:"failures"`
	EntriesMoved   int    `json:"entries_moved"`
	DeltaBytes     int64  `json:"delta_bytes"`
	FullBytes      int64  `json:"full_bytes"`
	EntriesDropped int    `json:"entries_dropped"`
	ReplicaCopies  int    `json:"replica_copies"`
	ReplicaDelta   int64  `json:"replica_delta_bytes"`
	Repaired       int    `json:"repaired"`
}

// Stats aggregates request outcomes. Latency percentiles are over
// successful requests, measured arrival→completion including retries.
type Stats struct {
	Arrivals    int     `json:"arrivals"`
	Succeeded   int     `json:"succeeded"`
	Failed      int     `json:"failed"`
	Overloads   int     `json:"overloads"`
	Retries     int     `json:"retries"`
	SuccessRate float64 `json:"success_rate"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// CohortReport is one cohort's slice of the totals.
type CohortReport struct {
	Cohort  string `json:"cohort"`
	Network string `json:"network"` // profile at end of run
	Stats   Stats  `json:"stats"`
}

// ShardPool is one shard's end-of-run lifecycle census. CensusOK is the
// PR-7 invariant: after the engine drains, every live slot is idle, the
// census matches the slot list, and nothing is stranded active, booting,
// draining, or queued.
type ShardPool struct {
	Shard    int  `json:"shard"`
	Runtimes int  `json:"runtimes"`
	Idle     int  `json:"idle"`
	Active   int  `json:"active"`
	Booting  int  `json:"booting"`
	Draining int  `json:"draining"`
	QueueLen int  `json:"queue_len"`
	CensusOK bool `json:"census_ok"`
}

// PoolReport is the cluster-wide pool and chaos accounting.
type PoolReport struct {
	Shards           []ShardPool `json:"shards"`
	TotalRuntimes    int         `json:"total_runtimes"`
	Cordoned         int         `json:"cordoned"`
	BootFailures     int         `json:"boot_failures"`
	ExecFailures     int         `json:"exec_failures"`
	TeardownFailures int         `json:"teardown_failures"`
	WarehouseEntries int         `json:"warehouse_entries"`
	WarehouseHits    int         `json:"warehouse_hits"`
	WarehouseMisses  int         `json:"warehouse_misses"`
	InjectedFaults   int         `json:"injected_faults"`
}

// EventReport records one applied timeline event.
type EventReport struct {
	AtMs   float64 `json:"at_ms"`
	Action string  `json:"action"`
	Detail string  `json:"detail,omitempty"`
}

// AssertionReport is one assertion's verdict.
type AssertionReport struct {
	Type   string `json:"type"`
	Cohort string `json:"cohort,omitempty"`
	Want   string `json:"want"`
	Got    string `json:"got"`
	Pass   bool   `json:"pass"`
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// stats reduces a latency sample + counters to a Stats block.
func buildStats(arrivals, succeeded, failed, overloads, retries int, lats []float64) Stats {
	s := Stats{
		Arrivals:  arrivals,
		Succeeded: succeeded,
		Failed:    failed,
		Overloads: overloads,
		Retries:   retries,
	}
	if arrivals > 0 {
		s.SuccessRate = float64(succeeded) / float64(arrivals)
	}
	if len(lats) > 0 {
		sorted := append([]float64(nil), lats...)
		sort.Float64s(sorted)
		s.P50Ms = metrics.Percentile(sorted, 50) * 1000
		s.P99Ms = metrics.Percentile(sorted, 99) * 1000
		s.MaxMs = sorted[len(sorted)-1] * 1000
	}
	return s
}

// report builds the end-of-run Report and evaluates the assertions.
func (r *runner) report() *Report {
	rep := &Report{
		Scenario:    r.scn.Name,
		Description: r.scn.Description,
		Seed:        r.scn.Seed,
		Shards:      r.scn.Shards,
		VirtualSecs: r.e.Now().Seconds(),
		Events:      r.events,
	}

	var allLats []float64
	var tA, tS, tF, tO, tR int
	for _, cs := range r.cohorts {
		rep.Cohorts = append(rep.Cohorts, CohortReport{
			Cohort:  cs.spec.Name,
			Network: cs.profile.Name,
			Stats:   buildStats(cs.arrivals, cs.succeeded, cs.failed, cs.overloads, cs.retries, cs.latencies),
		})
		tA += cs.arrivals
		tS += cs.succeeded
		tF += cs.failed
		tO += cs.overloads
		tR += cs.retries
		allLats = append(allLats, cs.latencies...)
	}
	rep.Totals = buildStats(tA, tS, tF, tO, tR, allLats)

	pool := PoolReport{}
	for i := 0; i < r.cl.Shards(); i++ {
		pl := r.cl.Shard(i)
		db := pl.DB()
		sp := ShardPool{
			Shard:    i,
			Runtimes: pl.RuntimeCount(),
			Idle:     db.StateCount(core.LifecycleIdle),
			Active:   db.StateCount(core.LifecycleActive),
			Booting:  db.StateCount(core.LifecycleBooting),
			Draining: db.StateCount(core.LifecycleDraining),
			QueueLen: pl.QueueLength(),
		}
		sp.CensusOK = sp.Active == 0 && sp.Booting == 0 && sp.Draining == 0 &&
			sp.QueueLen == 0 && sp.Idle == sp.Runtimes && db.Count() == sp.Runtimes
		pool.Shards = append(pool.Shards, sp)
		pool.TotalRuntimes += sp.Runtimes
		pool.Cordoned += pl.Cordoned()
		pool.BootFailures += pl.FailureCount(core.FailBoot)
		pool.ExecFailures += pl.FailureCount(core.FailExec)
		pool.TeardownFailures += pl.FailureCount(core.FailTeardown)
		if wh := pl.Warehouse(); wh != nil {
			e, h, m := wh.Stats()
			pool.WarehouseEntries += e
			pool.WarehouseHits += h
			pool.WarehouseMisses += m
		}
	}
	pool.InjectedFaults = r.retired
	if r.inj != nil {
		pool.InjectedFaults += r.inj.Injected()
	}
	rep.Pool = pool

	if mem := r.cl.Membership(); r.cl.Epoch() > 0 || mem.Replicas() > 1 {
		ms := r.cl.MigrationStats()
		rep.Resharding = &ReshardReport{
			Epoch:          r.cl.Epoch(),
			Replicas:       mem.Replicas(),
			LiveShards:     mem.LiveCount(),
			TotalShards:    mem.Len(),
			Joins:          ms.Joins,
			Removals:       ms.Removals,
			Failures:       ms.Failures,
			EntriesMoved:   ms.EntriesMoved,
			DeltaBytes:     int64(ms.DeltaBytes),
			FullBytes:      int64(ms.FullBytes),
			EntriesDropped: ms.EntriesDropped,
			ReplicaCopies:  ms.ReplicaCopies,
			ReplicaDelta:   int64(ms.ReplicaDelta),
			Repaired:       ms.Repaired,
		}
	}

	rep.Pass = true
	for _, a := range r.scn.Assertions {
		ar := r.evaluate(a, rep)
		rep.Assertions = append(rep.Assertions, ar)
		if !ar.Pass {
			rep.Pass = false
		}
	}
	return rep
}

// cohortStats picks the assertion's scope: one cohort or the whole fleet.
func (rep *Report) cohortStats(idx int) (string, Stats) {
	if idx >= 0 && idx < len(rep.Cohorts) {
		return rep.Cohorts[idx].Cohort, rep.Cohorts[idx].Stats
	}
	return "", rep.Totals
}

// evaluate scores one assertion against the built report.
func (r *runner) evaluate(a AssertionSpec, rep *Report) AssertionReport {
	ar := AssertionReport{Type: a.Kind.String()}
	name, st := rep.cohortStats(a.Cohort)
	ar.Cohort = name
	switch a.Kind {
	case AssertSuccessRate:
		ar.Want = fmt.Sprintf(">= %.4f", a.Min)
		ar.Got = fmt.Sprintf("%.4f", st.SuccessRate)
		ar.Pass = st.SuccessRate >= a.Min
	case AssertP50, AssertP99, AssertMaxLatency:
		got := st.P50Ms
		switch a.Kind {
		case AssertP99:
			got = st.P99Ms
		case AssertMaxLatency:
			got = st.MaxMs
		}
		ar.Want = fmt.Sprintf("<= %.1fms", durMs(a.MaxDur))
		ar.Got = fmt.Sprintf("%.1fms", got)
		ar.Pass = got <= durMs(a.MaxDur)
	case AssertCensus:
		ar.Want = "census == slots on every shard; nothing active/booting/draining/queued"
		ok := true
		for _, sp := range rep.Pool.Shards {
			if !sp.CensusOK {
				ok = false
				ar.Got = fmt.Sprintf("shard %d: runtimes=%d idle=%d active=%d booting=%d draining=%d queue=%d",
					sp.Shard, sp.Runtimes, sp.Idle, sp.Active, sp.Booting, sp.Draining, sp.QueueLen)
				break
			}
		}
		if ok {
			ar.Got = "ok"
		}
		ar.Pass = ok
	case AssertPoolFloor:
		min := rep.Pool.Shards[0].Runtimes
		for _, sp := range rep.Pool.Shards[1:] {
			if sp.Runtimes < min {
				min = sp.Runtimes
			}
		}
		ar.Want = fmt.Sprintf("every shard >= %d runtimes", int(a.Min))
		ar.Got = fmt.Sprintf("min shard pool %d", min)
		ar.Pass = float64(min) >= a.Min
	case AssertFinalPool:
		ar.Want = rangeWant(a)
		ar.Got = fmt.Sprintf("%d", rep.Pool.TotalRuntimes)
		ar.Pass = inRange(float64(rep.Pool.TotalRuntimes), a)
	case AssertMinRequests:
		ar.Want = fmt.Sprintf(">= %d", int(a.Min))
		ar.Got = fmt.Sprintf("%d", rep.Totals.Arrivals)
		ar.Pass = float64(rep.Totals.Arrivals) >= a.Min
	case AssertWarehouseHitRate:
		total := rep.Pool.WarehouseHits + rep.Pool.WarehouseMisses
		rate := 0.0
		if total > 0 {
			rate = float64(rep.Pool.WarehouseHits) / float64(total)
		}
		ar.Want = fmt.Sprintf(">= %.4f", a.Min)
		ar.Got = fmt.Sprintf("%.4f", rate)
		ar.Pass = rate >= a.Min
	case AssertOverloads:
		ar.Want = rangeWant(a)
		ar.Got = fmt.Sprintf("%d", rep.Totals.Overloads)
		ar.Pass = inRange(float64(rep.Totals.Overloads), a)
	case AssertLiveShards:
		live := r.cl.Membership().LiveCount()
		ar.Want = rangeWant(a)
		ar.Got = fmt.Sprintf("%d", live)
		ar.Pass = inRange(float64(live), a)
	case AssertSuccessRateAfter:
		ar.Want = fmt.Sprintf(">= %.4f after %v", a.Min, a.After)
		var ac *afterCounter
		for _, c := range r.afters {
			if c.at == sim.Time(a.After) {
				ac = c
				break
			}
		}
		if ac == nil || ac.arrivals == 0 {
			ar.Got = "no arrivals after threshold"
			ar.Pass = false
			break
		}
		rate := float64(ac.succeeded) / float64(ac.arrivals)
		ar.Got = fmt.Sprintf("%.4f over %d requests", rate, ac.arrivals)
		ar.Pass = rate >= a.Min
	case AssertBootP50, AssertBootP99:
		var boots []float64
		for i := 0; i < r.cl.Shards(); i++ {
			for _, d := range r.cl.Shard(i).BootDurations() {
				boots = append(boots, d.Seconds())
			}
		}
		pct := 50.0
		if a.Kind == AssertBootP99 {
			pct = 99
		}
		ar.Want = fmt.Sprintf("<= %.1fms", durMs(a.MaxDur))
		if len(boots) == 0 {
			ar.Got = "no boots"
			ar.Pass = false
			break
		}
		sort.Float64s(boots)
		got := metrics.Percentile(boots, pct) * 1000
		ar.Got = fmt.Sprintf("%.1fms over %d boots", got, len(boots))
		ar.Pass = got <= durMs(a.MaxDur)
	}
	return ar
}

func rangeWant(a AssertionSpec) string {
	switch {
	case a.HasMin && a.HasMax:
		return fmt.Sprintf("in [%d, %d]", int(a.Min), int(a.Max))
	case a.HasMin:
		return fmt.Sprintf(">= %d", int(a.Min))
	default:
		return fmt.Sprintf("<= %d", int(a.Max))
	}
}

func inRange(v float64, a AssertionSpec) bool {
	if a.HasMin && v < a.Min {
		return false
	}
	if a.HasMax && v > a.Max {
		return false
	}
	return true
}
