package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func mustParseYAML(t *testing.T, src string) *yamlNode {
	t.Helper()
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	return root
}

func scalarAt(t *testing.T, n *yamlNode, key string) string {
	t.Helper()
	v := n.get(key)
	if v == nil {
		t.Fatalf("missing key %q", key)
	}
	if v.kind != yScalar {
		t.Fatalf("key %q: want scalar, got kind %d", key, v.kind)
	}
	return v.scalar
}

func TestParseYAMLBasics(t *testing.T) {
	root := mustParseYAML(t, `# leading comment
name: demo
count: 3
note: "quoted # hash"  # trailing comment
empty_list: []
apps: [OCR, ChessGame, 'Virus Scan']
platform:
  kind: rattrap
  nested:
    deep: yes
fleet:
  - cohort: a
    devices: 10
  - cohort: b
    devices: 20
loose:
  -
    solo: 1
`)
	if got := scalarAt(t, root, "name"); got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got := scalarAt(t, root, "note"); got != "quoted # hash" {
		t.Errorf("note = %q (comment stripping inside quotes broken)", got)
	}
	if el := root.get("empty_list"); el == nil || el.kind != ySeq || len(el.items) != 0 {
		t.Errorf("empty_list: want empty sequence, got %+v", el)
	}
	apps := root.get("apps")
	if apps == nil || apps.kind != ySeq || len(apps.items) != 3 {
		t.Fatalf("apps: want 3-element flow sequence, got %+v", apps)
	}
	if apps.items[2].scalar != "Virus Scan" {
		t.Errorf("apps[2] = %q", apps.items[2].scalar)
	}
	pl := root.get("platform")
	if pl == nil || pl.kind != yMap {
		t.Fatalf("platform: want mapping")
	}
	if got := scalarAt(t, pl.get("nested"), "deep"); got != "yes" {
		t.Errorf("platform.nested.deep = %q", got)
	}
	fleet := root.get("fleet")
	if fleet == nil || fleet.kind != ySeq || len(fleet.items) != 2 {
		t.Fatalf("fleet: want 2-item sequence, got %+v", fleet)
	}
	if got := scalarAt(t, fleet.items[1], "devices"); got != "20" {
		t.Errorf("fleet[1].devices = %q", got)
	}
	loose := root.get("loose")
	if loose == nil || loose.kind != ySeq || len(loose.items) != 1 {
		t.Fatalf("loose: want 1-item sequence (bare dash form), got %+v", loose)
	}
	if got := scalarAt(t, loose.items[0], "solo"); got != "1" {
		t.Errorf("loose[0].solo = %q", got)
	}
}

func TestParseYAMLQuoting(t *testing.T) {
	root := mustParseYAML(t, `dq: "a\"b\\c\nd\te"
sq: 'it''s not doubled here'
plain: a:b
`)
	if got := scalarAt(t, root, "dq"); got != "a\"b\\c\nd\te" {
		t.Errorf("dq = %q", got)
	}
	// Single quotes are literal in this subset (no '' doubling).
	if got := scalarAt(t, root, "sq"); got != "it''s not doubled here" {
		t.Errorf("sq = %q", got)
	}
	// "a:b" with no space after the colon is a plain scalar, not a map.
	if got := scalarAt(t, root, "plain"); got != "a:b" {
		t.Errorf("plain = %q", got)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // substring expected in the error
	}{
		{"tab", "a: 1\n\tb: 2\n", "tab"},
		{"directive", "%YAML 1.2\na: 1\n", "directives"},
		{"doc-marker", "---\na: 1\n", "directives"},
		{"flow-map", "a: {b: 1}\n", "flow mappings"},
		{"anchor", "a: &x 1\n", "anchors"},
		{"alias", "a: *x\n", "anchors"},
		{"dup-key", "a: 1\na: 2\n", "duplicate key"},
		{"no-value", "a:\n", "has no value"},
		{"bad-indent-map", "a: 1\n  b: 2\n", "bad indent"},
		{"bad-indent-seq", "a:\n  - x\n    - y\n", "bad indent"},
		{"not-an-entry", "just a scalar line\n", "expected 'key: value'"},
		{"root-seq", "- a\n- b\n", "root must be a mapping"},
		{"empty", "   \n# only comments\n", "empty document"},
		{"empty-dash", "a:\n  -\n", "no value"},
		{"unterminated-dq", `a: "oops` + "\n", "unterminated"},
		{"unterminated-sq", "a: 'oops\n", "unterminated"},
		{"bad-escape", `a: "\q"` + "\n", "unsupported escape"},
		{"unterminated-flow", "a: [1, 2\n", "unterminated flow"},
		{"empty-flow-elem", "a: [1, , 2]\n", "empty element"},
		{"nested-flow", "a: [[1], 2]\n", "nested flow"},
		{"not-utf8", "a: 1\nb: \xff\xfe\n", "UTF-8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("want error, got nil")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want *ParseError, got %T: %v", err, err)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestParseYAMLLimits(t *testing.T) {
	t.Run("oversize", func(t *testing.T) {
		big := append(bytes.Repeat([]byte{' '}, maxYAMLBytes), []byte("a: 1\n")...)
		_, err := parseYAML(big)
		var pe *ParseError
		if !errors.As(err, &pe) || !strings.Contains(err.Error(), "larger than") {
			t.Fatalf("oversize: got %v", err)
		}
	})
	t.Run("too-deep", func(t *testing.T) {
		var b strings.Builder
		for i := 0; i <= maxYAMLDepth+1; i++ {
			b.WriteString(strings.Repeat("  ", i))
			b.WriteString("k:\n")
		}
		b.WriteString(strings.Repeat("  ", maxYAMLDepth+2))
		b.WriteString("leaf: 1\n")
		_, err := parseYAML([]byte(b.String()))
		var pe *ParseError
		if !errors.As(err, &pe) || !strings.Contains(err.Error(), "nesting too deep") {
			t.Fatalf("too-deep: got %v", err)
		}
	})
	t.Run("too-many-nodes", func(t *testing.T) {
		var b strings.Builder
		b.WriteString("a: [")
		for i := 0; i < maxYAMLNodes+2; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("x")
		}
		b.WriteString("]\n")
		_, err := parseYAML([]byte(b.String()))
		var pe *ParseError
		if !errors.As(err, &pe) || !strings.Contains(err.Error(), "too many nodes") {
			t.Fatalf("too-many-nodes: got %v", err)
		}
	})
}

func TestParseYAMLLineNumbers(t *testing.T) {
	_, err := parseYAML([]byte("a: 1\nb: 2\nc: {bad: 1}\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}
