package scenario

// This file implements the narrow YAML subset the scenario DSL needs —
// block mappings, block sequences (including the compact "- key: value"
// item form), flow sequences of scalars ("[a, b]"), quoted and plain
// scalars, and "#" comments — as a small line-based recursive-descent
// parser. go.mod deliberately has no dependencies, so rather than vendor
// a YAML library the DSL grammar is pinned to exactly what the checked-in
// scenarios use; anything outside the subset is a typed *ParseError with
// a line number, never a panic. Anchors, aliases, multi-document streams,
// flow mappings and tabs are rejected.

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Parser hard limits: decoding adversarial input (the fuzzer, a corrupt
// checked-in file) must fail fast with a typed error instead of
// allocating without bound.
const (
	maxYAMLBytes = 1 << 20 // 1 MiB of scenario text
	maxYAMLNodes = 1 << 16
	maxYAMLDepth = 24
)

// ParseError is a YAML-subset syntax error, pointing at the 1-based
// source line that broke the grammar.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("scenario: yaml line %d: %s", e.Line, e.Msg)
}

// yKind discriminates yamlNode.
type yKind uint8

const (
	yScalar yKind = iota
	yMap
	ySeq
)

// yamlNode is one parsed value: a scalar, an insertion-ordered mapping,
// or a sequence. Every node remembers its source line for schema errors.
type yamlNode struct {
	line   int
	kind   yKind
	scalar string
	keys   []string // yMap
	vals   []*yamlNode
	items  []*yamlNode // ySeq
}

func (n *yamlNode) get(key string) *yamlNode {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// srcLine is one significant source line after comment stripping.
type srcLine struct {
	n      int // 1-based line number
	indent int
	text   string // trimmed content
}

type yparser struct {
	lines []srcLine
	pos   int
	nodes int
}

// parseYAML decodes data into a node tree. The document root must be a
// mapping.
func parseYAML(data []byte) (*yamlNode, error) {
	if len(data) > maxYAMLBytes {
		return nil, &ParseError{0, fmt.Sprintf("document larger than %d bytes", maxYAMLBytes)}
	}
	if !utf8.Valid(data) {
		return nil, &ParseError{0, "document is not valid UTF-8"}
	}
	var lines []srcLine
	for i, raw := range strings.Split(string(data), "\n") {
		text, err := stripComment(raw, i+1)
		if err != nil {
			return nil, err
		}
		body := strings.TrimSpace(text)
		if body == "" {
			continue
		}
		if strings.HasPrefix(body, "%") || body == "---" || body == "..." {
			return nil, &ParseError{i + 1, "directives and document markers are not supported"}
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		lines = append(lines, srcLine{n: i + 1, indent: indent, text: body})
	}
	if len(lines) == 0 {
		return nil, &ParseError{0, "empty document"}
	}
	p := &yparser{lines: lines}
	root, err := p.block(lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, &ParseError{l.n, fmt.Sprintf("content at indent %d after the document root closed", l.indent)}
	}
	if root.kind != yMap {
		return nil, &ParseError{lines[0].n, "document root must be a mapping"}
	}
	return root, nil
}

// stripComment removes a trailing "# ..." comment, honoring quotes, and
// rejects tabs (YAML forbids them in indentation, and allowing them in
// content only invites invisible-whitespace bugs).
func stripComment(raw string, line int) (string, error) {
	if strings.ContainsRune(raw, '\t') {
		return "", &ParseError{line, "tab character (use spaces)"}
	}
	var quote rune
	for i, r := range raw {
		switch {
		case quote != 0:
			if r == quote {
				quote = 0
			}
		case r == '"' || r == '\'':
			quote = r
		case r == '#':
			if i == 0 || raw[i-1] == ' ' {
				return raw[:i], nil
			}
		}
	}
	return raw, nil
}

// block parses the node starting at the current position, whose lines all
// sit at exactly indent.
func (p *yparser) block(indent, depth int) (*yamlNode, error) {
	if depth > maxYAMLDepth {
		return nil, &ParseError{p.lines[p.pos].n, "nesting too deep"}
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.sequence(indent, depth)
	}
	return p.mapping(indent, depth)
}

func (p *yparser) node() (*yamlNode, error) {
	p.nodes++
	if p.nodes > maxYAMLNodes {
		return nil, &ParseError{p.lines[p.pos-1].n, "too many nodes"}
	}
	return &yamlNode{}, nil
}

// sequence parses consecutive "- ..." lines at indent. A non-empty item
// body is re-parsed as a block whose indent is the dash column plus two,
// which is how the compact "- key: value" mapping form nests; its
// continuation lines must use exactly that indent.
func (p *yparser) sequence(indent, depth int) (*yamlNode, error) {
	seq, err := p.node()
	if err != nil {
		return nil, err
	}
	seq.kind = ySeq
	seq.line = p.lines[p.pos].n
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if l.indent > indent {
				return nil, &ParseError{l.n, fmt.Sprintf("bad indent %d inside sequence at indent %d", l.indent, indent)}
			}
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the deeper block on the next lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, &ParseError{l.n, "sequence item has no value"}
			}
			item, err := p.block(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
			continue
		}
		// Compact item: rewrite this line as the first line of a block
		// two columns deeper and parse from it.
		p.lines[p.pos] = srcLine{n: l.n, indent: indent + 2, text: rest}
		item, err := p.itemValue(indent+2, depth+1)
		if err != nil {
			return nil, err
		}
		seq.items = append(seq.items, item)
	}
	return seq, nil
}

// itemValue parses a compact sequence item: a nested block when the first
// line looks like a mapping entry or dash, a scalar otherwise.
func (p *yparser) itemValue(indent, depth int) (*yamlNode, error) {
	l := p.lines[p.pos]
	if key, _, ok := splitKey(l.text); ok && key != "" {
		return p.block(indent, depth)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.block(indent, depth)
	}
	p.pos++
	return p.scalarNode(l)
}

// mapping parses consecutive "key: value" lines at indent.
func (p *yparser) mapping(indent, depth int) (*yamlNode, error) {
	m, err := p.node()
	if err != nil {
		return nil, err
	}
	m.kind = yMap
	m.line = p.lines[p.pos].n
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, &ParseError{l.n, fmt.Sprintf("bad indent %d inside mapping at indent %d", l.indent, indent)}
			}
			break
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, &ParseError{l.n, fmt.Sprintf("expected 'key: value', got %q", l.text)}
		}
		if m.get(key) != nil {
			return nil, &ParseError{l.n, fmt.Sprintf("duplicate key %q", key)}
		}
		p.pos++
		var val *yamlNode
		if rest == "" {
			// Value is the deeper block on the following lines.
			if p.pos >= len(p.lines) || p.pos < len(p.lines) && p.lines[p.pos].indent <= indent {
				return nil, &ParseError{l.n, fmt.Sprintf("key %q has no value", key)}
			}
			val, err = p.block(p.lines[p.pos].indent, depth+1)
		} else {
			val, err = p.inlineValue(rest, l.n)
		}
		if err != nil {
			return nil, err
		}
		m.keys = append(m.keys, key)
		m.vals = append(m.vals, val)
	}
	return m, nil
}

// splitKey splits "key: rest" (or "key:"), requiring the restricted key
// alphabet the DSL uses. Reports ok false when the line is not a mapping
// entry.
func splitKey(text string) (key, rest string, ok bool) {
	i := strings.IndexByte(text, ':')
	if i <= 0 {
		return "", "", false
	}
	key = text[:i]
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return "", "", false
		}
	}
	rest = text[i+1:]
	if rest != "" && rest[0] != ' ' {
		return "", "", false // "a:b" is a plain scalar, not an entry
	}
	return key, strings.TrimSpace(rest), true
}

// inlineValue parses the value part of "key: value": a flow sequence or a
// scalar.
func (p *yparser) inlineValue(text string, line int) (*yamlNode, error) {
	if strings.HasPrefix(text, "[") {
		return p.flowSeq(text, line)
	}
	if strings.HasPrefix(text, "{") {
		return nil, &ParseError{line, "flow mappings are not supported"}
	}
	if strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*") {
		return nil, &ParseError{line, "anchors and aliases are not supported"}
	}
	n, err := p.node()
	if err != nil {
		return nil, err
	}
	n.line = line
	s, err := unquote(text, line)
	if err != nil {
		return nil, err
	}
	n.scalar = s
	return n, nil
}

func (p *yparser) scalarNode(l srcLine) (*yamlNode, error) {
	n, err := p.node()
	if err != nil {
		return nil, err
	}
	n.line = l.n
	s, err := unquote(l.text, l.n)
	if err != nil {
		return nil, err
	}
	n.scalar = s
	return n, nil
}

// flowSeq parses "[a, b, c]" into a sequence of scalars.
func (p *yparser) flowSeq(text string, line int) (*yamlNode, error) {
	if !strings.HasSuffix(text, "]") {
		return nil, &ParseError{line, "unterminated flow sequence"}
	}
	body := strings.TrimSpace(text[1 : len(text)-1])
	seq, err := p.node()
	if err != nil {
		return nil, err
	}
	seq.kind = ySeq
	seq.line = line
	if body == "" {
		return seq, nil
	}
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, &ParseError{line, "empty element in flow sequence"}
		}
		if strings.ContainsAny(part, "[]{}") {
			return nil, &ParseError{line, "nested flow collections are not supported"}
		}
		item, err := p.node()
		if err != nil {
			return nil, err
		}
		item.line = line
		s, err := unquote(part, line)
		if err != nil {
			return nil, err
		}
		item.scalar = s
		seq.items = append(seq.items, item)
	}
	return seq, nil
}

// unquote strips one level of single or double quotes. Double quotes
// support the \" \\ \n \t escapes; single quotes are literal.
func unquote(s string, line int) (string, error) {
	if len(s) == 0 {
		return s, nil
	}
	switch s[0] {
	case '"':
		if len(s) < 2 || s[len(s)-1] != '"' {
			return "", &ParseError{line, "unterminated double-quoted scalar"}
		}
		var b strings.Builder
		body := s[1 : len(s)-1]
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c != '\\' {
				b.WriteByte(c)
				continue
			}
			i++
			if i >= len(body) {
				return "", &ParseError{line, "dangling escape in scalar"}
			}
			switch body[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", &ParseError{line, fmt.Sprintf("unsupported escape \\%c", body[i])}
			}
		}
		return b.String(), nil
	case '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return "", &ParseError{line, "unterminated single-quoted scalar"}
		}
		return s[1 : len(s)-1], nil
	}
	return s, nil
}
