package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"rattrap/internal/cluster"
	"rattrap/internal/core"
	"rattrap/internal/faults"
	"rattrap/internal/host"
	"rattrap/internal/netsim"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// cohortState is one cohort's live state during a run. profile and mult
// are the event-mutable knobs: set-network flips profile (new arrivals
// pick it up, in-flight requests keep the link they opened), load-spike
// raises mult (the generator reads it at every gap draw).
type cohortState struct {
	spec    CohortSpec
	idx     int
	gen     *arrivalGen
	taskRng *rand.Rand
	profile netsim.Profile
	mult    float64
	apps    []workload.App

	arrivals  int
	succeeded int
	failed    int
	overloads int
	retries   int
	latencies []float64 // seconds, successful requests only
}

// runner drives one scenario: a cluster plus per-cohort generators on a
// single engine, with the event timeline scheduled as engine callbacks.
type runner struct {
	e   *sim.Engine
	scn *Scenario
	cl  *cluster.Cluster

	// inj is the active fault injector, nil when none. The shard and link
	// hooks are closures over the runner, so activating a plan mid-run
	// immediately affects in-flight links and future boots/teardowns.
	inj     *faults.Injector
	retired int // faults injected by plans since replaced or cleared

	cohorts []*cohortState
	events  []EventReport

	// afters holds one counter per success-rate-after assertion: requests
	// arriving at or past the threshold are scored separately, so a
	// mid-run membership event can be gated on post-event health alone.
	afters []*afterCounter
}

type afterCounter struct {
	at        sim.Time
	arrivals  int
	succeeded int
}

// Run executes a validated scenario and returns its report. The run is a
// pure function of the scenario file: all randomness descends from
// Scenario.Seed, the engine serializes every process, and the report
// contains only virtual-time quantities — so the same file produces a
// byte-identical report on every run, on every machine.
func Run(scn *Scenario) (*Report, error) {
	r := &runner{e: sim.NewEngine(scn.Seed), scn: scn}

	cfg := core.DefaultConfig(scn.Platform.Kind)
	cfg.MaxRuntimes = scn.Platform.MaxRuntimes
	cfg.MaxQueueDepth = scn.Platform.MaxQueueDepth
	cfg.IdleTimeout = scn.Platform.IdleTimeout
	cfg.TemplateBoot = scn.Platform.TemplateBoot
	if scn.Platform.Autoscale {
		cfg.MinRuntimes = scn.Platform.MinRuntimes
		cfg.Autoscale = core.AutoscaleConfig{Enabled: true, Interval: scn.Platform.Interval}
	}
	replicas := scn.Platform.Replicas
	if replicas < 1 {
		replicas = 1
	}
	r.cl = cluster.NewReplicated(r.e, cfg, scn.Shards, replicas)
	for i := 0; i < r.cl.Shards(); i++ {
		r.installFaultHooks(r.cl.Shard(i))
	}
	// Shards commissioned mid-run by add-shard events get the same fault
	// wiring as founding shards.
	r.cl.OnShardAdded(func(id int, pl *core.Platform) { r.installFaultHooks(pl) })

	for _, a := range scn.Assertions {
		if a.Kind == AssertSuccessRateAfter {
			r.afters = append(r.afters, &afterCounter{at: sim.Time(a.After)})
		}
	}

	for i, c := range scn.Fleet {
		cs := &cohortState{
			spec:    c,
			idx:     i,
			gen:     newArrivalGen(c, scn.Seed, i),
			taskRng: rand.New(rand.NewSource(cohortSeed(scn.Seed, i+MaxCohorts))),
			profile: c.Network,
			mult:    1,
		}
		for _, name := range c.Apps {
			app, err := workload.ByName(name)
			if err != nil {
				return nil, err // unreachable: Decode validated the names
			}
			cs.apps = append(cs.apps, app)
		}
		r.cohorts = append(r.cohorts, cs)
		r.spawnGenerator(cs)
	}

	for _, ev := range scn.Events {
		ev := ev
		r.e.At(sim.Time(ev.At), func() { r.applyEvent(ev) })
	}

	r.e.Run()
	if n := r.e.LiveProcs(); n != 0 {
		return nil, fmt.Errorf("scenario %q: %d processes still live after the engine drained", scn.Name, n)
	}
	return r.report(), nil
}

// installFaultHooks wires one shard's boot/teardown/exec fault points to
// the runner's *current* injector, so fault-plan events swap plans
// without re-wiring anything.
func (r *runner) installFaultHooks(pl *core.Platform) {
	pl.SetBootFault(func(p *sim.Proc, id string) error {
		if r.inj == nil {
			return nil
		}
		return r.inj.Apply(p, faults.SiteBoot, id, 0)
	})
	pl.SetTeardownFault(func(p *sim.Proc, id string) error {
		if r.inj == nil {
			return nil
		}
		return r.inj.Apply(p, faults.SiteTeardown, id, 0)
	})
	pl.SetExecFault(func(p *sim.Proc, id, aid string) error {
		if r.inj == nil {
			return nil
		}
		return r.inj.Apply(p, faults.SiteExec, id, 0)
	})
}

// retireInjector banks the active plan's injected-fault count before the
// plan is replaced or cleared.
func (r *runner) retireInjector() {
	if r.inj != nil {
		r.retired += r.inj.Injected()
		r.inj = nil
	}
}

func (r *runner) applyEvent(ev EventSpec) {
	detail := ""
	switch ev.Kind {
	case EvSetNetwork:
		cs := r.cohorts[ev.Cohort]
		cs.profile = ev.Net
		detail = fmt.Sprintf("%s -> %s", cs.spec.Name, ev.Net.Name)
	case EvLoadSpike:
		cs := r.cohorts[ev.Cohort]
		cs.mult = ev.Factor
		r.e.After(ev.Dur, func() { cs.mult = 1 })
		detail = fmt.Sprintf("%s x%g for %v", cs.spec.Name, ev.Factor, ev.Dur)
	case EvFaultPlan:
		r.retireInjector()
		plan, _ := planByName(ev.Plan, r.scn.Seed)
		r.inj = faults.New(plan)
		detail = ev.Plan
	case EvClearFaults:
		r.retireInjector()
	case EvKillShard:
		// Cordon every runtime on the shard: in-flight work finishes, the
		// runtimes drain, and (under autoscale) the pool rebuilds cold.
		pl := r.cl.Shard(ev.Shard)
		n := 0
		for _, ri := range pl.DB().List() {
			if pl.CordonRuntime(ri.CID) {
				n++
			}
		}
		detail = fmt.Sprintf("shard %d, %d runtimes cordoned", ev.Shard, n)
	case EvAddShard:
		id := r.cl.AddShard()
		detail = fmt.Sprintf("shard %d joining (epoch %d)", id, r.cl.Epoch())
	case EvRemoveShard:
		if r.cl.RemoveShard(ev.Shard) {
			detail = fmt.Sprintf("shard %d draining", ev.Shard)
		} else {
			detail = fmt.Sprintf("shard %d not removable", ev.Shard)
		}
	case EvFailShard:
		if r.cl.FailShard(ev.Shard) {
			detail = fmt.Sprintf("shard %d down (epoch %d)", ev.Shard, r.cl.Epoch())
		} else {
			detail = fmt.Sprintf("shard %d already down", ev.Shard)
		}
	case EvSetFloor:
		for i := 0; i < r.cl.Shards(); i++ {
			r.cl.Shard(i).SetPoolBounds(ev.Floor, r.scn.Platform.MaxRuntimes)
		}
		detail = fmt.Sprintf("min_runtimes=%d", ev.Floor)
	}
	r.events = append(r.events, EventReport{
		AtMs:   durMs(ev.At),
		Action: ev.Kind.String(),
		Detail: detail,
	})
}

// spawnGenerator starts a cohort's arrival process: one proc that sleeps
// gap-to-gap and spawns a request proc per arrival. The fleet's size
// shows up only as in-flight request procs, never as per-device state.
func (r *runner) spawnGenerator(cs *cohortState) {
	r.e.Spawn("gen:"+cs.spec.Name, func(p *sim.Proc) {
		if cs.spec.Start > 0 {
			p.Sleep(cs.spec.Start)
		}
		for k := 0; ; k++ {
			gap, ok := cs.gen.next(cs.mult)
			if !ok {
				return
			}
			if gap > 0 {
				p.Sleep(gap)
			}
			r.spawnRequest(cs, k)
		}
	})
}

// spawnRequest runs one arrival's full offload exchange as its own proc:
// connect, upload, prepare, (push code), execute, download — the lite
// mirror of device.Offload — under the scenario's retry policy.
func (r *runner) spawnRequest(cs *cohortState, k int) {
	arrived := r.e.Now()
	prof := cs.profile
	cs.arrivals++
	r.e.Spawn(fmt.Sprintf("%s.r%d", cs.spec.Name, k), func(p *sim.Proc) {
		dev := fmt.Sprintf("%s-d%d", cs.spec.Name, k%cs.spec.Devices)
		link := netsim.NewLink(r.e, prof)
		link.SetFault(func(p *sim.Proc, op string, size host.Bytes) error {
			if r.inj == nil {
				return nil
			}
			return r.inj.Apply(p, op, dev, size)
		})
		app := cs.apps[k%len(cs.apps)]
		// Distinct code sizes make distinct AIDs: variants spread one
		// app's traffic over Variants consistent-hash placements.
		codeSize := app.CodeSize() + host.Bytes(k%cs.spec.Variants)
		seq := k / cs.spec.Devices // unique per device: the idempotency key half
		task := app.NewTask(cs.taskRng, seq)
		if cs.spec.LinpackOrder > 0 && task.App == workload.NameLinpack {
			task.Params = workload.EncodeLinpackParams(r.scn.Seed, cs.spec.LinpackOrder)
		}
		err := r.offload(p, cs, link, dev, task, codeSize)
		if err == nil {
			cs.succeeded++
			cs.latencies = append(cs.latencies, (r.e.Now() - arrived).Duration().Seconds())
		} else {
			cs.failed++
		}
		for _, ac := range r.afters {
			if arrived >= ac.at {
				ac.arrivals++
				if err == nil {
					ac.succeeded++
				}
			}
		}
	})
}

// offload drives one request with retries: transient transport faults and
// overload rejections back off and try again (device.Retryable's rule);
// everything else is permanent.
func (r *runner) offload(p *sim.Proc, cs *cohortState, link *netsim.Link, dev string, task workload.Task, codeSize host.Bytes) error {
	rp := r.scn.Client
	for attempt := 1; ; attempt++ {
		err := r.attempt(p, link, dev, task, codeSize)
		if err == nil {
			return nil
		}
		if errors.Is(err, offload.ErrOverloaded) {
			cs.overloads++
		}
		// A down shard is retryable like a transient transport fault: the
		// next epoch's ring routes the AID to a surviving replica.
		if attempt >= rp.MaxAttempts || !(faults.IsTransient(err) || errors.Is(err, offload.ErrOverloaded) || errors.Is(err, cluster.ErrShardDown)) {
			return err
		}
		cs.retries++
		p.Sleep(r.backoff(rp, attempt, err))
	}
}

// backoff mirrors device.backoff: exponential from BaseDelay, capped at
// MaxDelay, ±25% jitter from the engine source (the engine serializes
// procs, so the draw order — and hence the schedule — is deterministic),
// floored by an overload rejection's retry-after hint.
func (r *runner) backoff(rp ClientSpec, attempt int, cause error) time.Duration {
	delay := rp.BaseDelay << uint(attempt-1)
	if delay > rp.MaxDelay || delay <= 0 {
		delay = rp.MaxDelay
	}
	delay += time.Duration(float64(delay) * 0.25 * (2*r.e.Rand().Float64() - 1))
	var over *offload.OverloadedError
	if errors.As(cause, &over) && delay < over.RetryAfter {
		delay = over.RetryAfter
	}
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	return delay
}

// attempt is one try of the basic offloading mechanism against the
// cluster gateway.
func (r *runner) attempt(p *sim.Proc, link *netsim.Link, dev string, task workload.Task, codeSize host.Bytes) error {
	req := offload.ExecRequest{
		DeviceID:      dev,
		AID:           offload.AID(task.App, codeSize),
		App:           task.App,
		Method:        task.Method,
		Seq:           task.Seq,
		Params:        task.Params,
		ParamBytes:    task.ParamBytes,
		FileBytes:     task.FileBytes,
		RoundTrips:    task.RoundTrips,
		InteractBytes: task.InteractBytes,
	}
	if _, err := link.Connect(p); err != nil {
		return err
	}
	if _, err := link.Upload(p, task.UploadBytes()+offload.ControlBytes); err != nil {
		return err
	}
	sess, err := r.cl.Prepare(p, req)
	if err != nil {
		return err
	}
	defer sess.Release()
	push := func() error {
		if _, err := link.Download(p, offload.ControlBytes); err != nil {
			return err
		}
		if _, err := link.Upload(p, codeSize); err != nil {
			return err
		}
		return sess.PushCode(p, offload.CodePush{AID: req.AID, App: task.App, Size: codeSize})
	}
	if sess.NeedCode() {
		if err := push(); err != nil {
			return err
		}
	}
	var res offload.Result
	for {
		res, err = sess.Execute(p)
		if errors.Is(err, offload.ErrCodeNeeded) {
			if perr := push(); perr != nil {
				return perr
			}
			continue
		}
		break
	}
	if err != nil {
		return err
	}
	if res.Err != "" {
		return fmt.Errorf("cloud error (%s): %s", res.Code, res.Err)
	}
	if _, err := link.Download(p, res.ResultBytes+offload.ControlBytes); err != nil {
		return err
	}
	return nil
}
