package android

import (
	"fmt"

	"rattrap/internal/host"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// CodeLoaded reports whether the ClassLoader already holds the app's code
// (the AID in the warehouse's cache table). A dispatcher that routes
// same-app requests to the same runtime skips the load entirely.
func (r *Runtime) CodeLoaded(aid string) bool {
	_, ok := r.loaded[aid]
	return ok
}

// LoadedCodes returns the AIDs the ClassLoader currently holds, in
// unspecified order. The dispatcher uses it to index idle runtimes by the
// code they can run without a load.
func (r *Runtime) LoadedCodes() []string {
	out := make([]string, 0, len(r.loaded))
	for aid := range r.loaded {
		out = append(out, aid)
	}
	return out
}

// EachLoadedCode visits every held AID without building a slice — the
// scheduler indexes idle runtimes on every release, which sits on the
// zero-alloc request path.
func (r *Runtime) EachLoadedCode(fn func(aid string)) {
	for aid := range r.loaded {
		fn(aid)
	}
}

// LoadCode runs the ClassLoader over a mobile code blob of the given size,
// blocking p for the dex parse/verify CPU. fromWarehouse adds the read of
// the blob out of the App Warehouse store; freshly received code is
// already in memory.
func (r *Runtime) LoadCode(p *sim.Proc, aid string, size host.Bytes, fromWarehouse bool) error {
	if !r.up {
		return fmt.Errorf("android: %s: runtime not up", r.env.Name())
	}
	if r.CodeLoaded(aid) {
		return nil
	}
	if fromWarehouse {
		// The warehouse keeps code on the shared offloading layer.
		path := "/warehouse/" + aid + ".apk"
		if _, ok := r.offload.Stat(path); ok {
			if _, _, err := r.offload.Read(p, path, r.env.IOEff()); err != nil {
				return err
			}
		} else {
			// No staged copy: charge a plain read of the blob.
			r.env.Host().DiskRead(p, "code:"+aid, size, true, r.env.IOEff())
		}
	}
	work := classLoadWorkPerMB * host.Work(float64(size)/float64(host.MB))
	r.env.Host().Compute(p, work, r.env.CPUEff())
	r.loaded[aid] = size
	r.log("ClassLoader", "loaded "+aid)
	return nil
}

// ExecResult is the outcome of one offloaded task.
type ExecResult struct {
	Metrics workload.Metrics
	// ComputeTime / IOTime split the execution phase for the harness.
	ComputeSeconds float64
	IOSeconds      float64
}

// Execute runs the offloaded task whose code was loaded under aid,
// blocking p for the modeled execution time:
//
//   - Binder traffic between the offload controller and the app process;
//   - staging the transferred input files on the offloading I/O mount
//     ("burn after reading": inputs are deleted afterwards);
//   - the real computation (the workload algorithm actually runs), with
//     modeled work charged to the host at the environment's efficiency;
//   - offloading I/O (reads of staged files and databases).
func (r *Runtime) Execute(p *sim.Proc, aid string, task workload.Task, reg *workload.Registry) (ExecResult, error) {
	if !r.up {
		return ExecResult{}, fmt.Errorf("android: %s: runtime not up", r.env.Name())
	}
	if !r.CodeLoaded(aid) {
		return ExecResult{}, fmt.Errorf("android: %s: code %s not loaded", r.env.Name(), aid)
	}
	h := r.env.Host()
	e := p.E

	// Dispatch through Binder: am -> offloadcontroller -> app process.
	for i := 0; i < 2; i++ {
		if _, err := r.CallService("offloadcontroller", 1, task.Params); err != nil {
			return ExecResult{}, err
		}
		h.Compute(p, binderTxnWork, r.env.CPUEff())
	}

	// Stage input files on the offloading I/O mount.
	ioStart := e.Now()
	stagePath := fmt.Sprintf("/offload/%s/task-%d", r.env.Name(), r.executed)
	if task.FileBytes > 0 {
		if err := r.offload.Write(p, stagePath, task.FileBytes, nil, r.env.IOEff()); err != nil {
			return ExecResult{}, err
		}
	}
	ioStaged := (e.Now() - ioStart).Duration().Seconds()

	// Run the real workload. The algorithm executes here and now (its
	// wall-clock cost is real host CPU, not simulated time); its metered
	// Work and I/O drive the simulated clock below.
	m, err := reg.Execute(task)
	if err != nil {
		return ExecResult{}, fmt.Errorf("android: %s: %s.%s: %w", r.env.Name(), task.App, task.Method, err)
	}

	computeStart := e.Now()
	h.Compute(p, m.Work, r.env.CPUEff())
	computeSec := (e.Now() - computeStart).Duration().Seconds()

	// Offloading I/O: re-read staged inputs, stream databases. The part
	// covered by the staged file goes through the offload mount; the
	// remainder (databases and app data) is a per-runtime disk read that
	// the page cache naturally absorbs on repeat scans.
	ioStart2 := e.Now()
	remaining := m.IORead
	if task.FileBytes > 0 && remaining > 0 {
		if _, ok := r.offload.Stat(stagePath); ok {
			if _, _, err := r.offload.Read(p, stagePath, r.env.IOEff()); err != nil {
				return ExecResult{}, err
			}
			remaining -= task.FileBytes
		}
	}
	if extra := m.IOWrite - task.FileBytes; extra > 0 {
		if err := r.offload.Write(p, stagePath+".tmp", extra, nil, r.env.IOEff()); err != nil {
			return ExecResult{}, err
		}
		_ = r.offload.Remove(stagePath + ".tmp")
	}
	if remaining > 0 {
		// Database/app-data streaming; too large to stay page-cached under
		// memory pressure, so it pays disk bandwidth every scan.
		h.DiskRead(p, "", remaining, true, r.env.IOEff())
	}
	// Burn after reading: drop the staged input.
	if task.FileBytes > 0 {
		_ = r.offload.Remove(stagePath)
	}
	ioSec := ioStaged + (e.Now() - ioStart2).Duration().Seconds()

	// Server side of mid-execution interaction: each client exchange
	// crosses the environment's network path and bounces through the
	// offload controller. (The client adds its own RTT per exchange.)
	for i := 0; i < task.RoundTrips; i++ {
		if _, err := r.CallService("offloadcontroller", 3, nil); err != nil {
			return ExecResult{}, err
		}
		h.Compute(p, binderTxnWork, r.env.CPUEff())
		p.Sleep(r.env.NetOverhead())
	}

	// Reply transaction.
	if _, err := r.CallService("offloadcontroller", 2, nil); err != nil {
		return ExecResult{}, err
	}
	h.Compute(p, binderTxnWork, r.env.CPUEff())

	r.executed++
	r.log("offload", fmt.Sprintf("task %s.%s done: %s", task.App, task.Method, m.Output))
	return ExecResult{Metrics: m, ComputeSeconds: computeSec, IOSeconds: ioSec}, nil
}

// TouchOnDemand lazily faults in i-th of the image's on-demand core files
// (class loading and dlopen during offloaded execution). The experiment
// harness spreads these touches across a run, which is how the
// Observation-4 access profile converges to "everything except the
// strippable set".
func (r *Runtime) TouchOnDemand(p *sim.Proc, idx int) error {
	files := r.cfg.Manifest.OnDemandFiles()
	if len(files) == 0 {
		return nil
	}
	f := files[idx%len(files)]
	_, _, err := r.env.FS().Read(p, f.Path, r.env.IOEff())
	return err
}

// OnDemandCount reports how many on-demand files the image has.
func (r *Runtime) OnDemandCount() int { return len(r.cfg.Manifest.OnDemandFiles()) }
