// Package android models the Android user space that runs inside a code
// runtime environment (an Android-x86 VM or a Cloud Android Container):
// the boot sequence of Figure 6, init and its daemons, zygote's class
// preloading, system-service startup over Binder, and the Dalvik-style
// executor that runs offloaded code through a ClassLoader.
//
// The same Boot runs everywhere; the environment (package container or
// package vm) supplies efficiencies, the filesystem, devices, and any
// pre-/init/ stages (bootloader, kernel, ramdisk — VM only), so the 28.7 s
// VM boot and the 1.75 s optimized container boot both *emerge* from what
// each environment actually does rather than from per-platform constants.
package android

import (
	"fmt"
	"strings"
	"time"

	"rattrap/internal/acd"
	"rattrap/internal/binder"
	"rattrap/internal/host"
	"rattrap/internal/image"
	"rattrap/internal/kernel"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

// Env is what a code runtime environment provides to the Android user
// space. Containers and VMs both implement it.
type Env interface {
	// Name identifies the environment (container/VM id).
	Name() string
	// Host is the physical machine the environment runs on.
	Host() *host.Host
	// FS is the environment's root filesystem view.
	FS() *unionfs.Mount
	// OpenDevice opens a /dev node through the environment's device
	// namespace; it fails with kernel.ErrNoDevice when the backing
	// driver is not loaded.
	OpenDevice(dev string) (*kernel.Handle, error)
	// CPUEff / IOEff are steady-state virtualization efficiencies.
	CPUEff() float64
	IOEff() float64
	// NetOverhead is the per-exchange cost of the environment's network
	// path (emulated NIC + vCPU wakeup for VMs, veth bridge for
	// containers). Interactive workloads pay it on every round trip.
	NetOverhead() time.Duration
	// BootCPUEff / BootIOEff are boot-path efficiencies; VM boots are
	// disproportionately expensive (device emulation, no paravirtual
	// I/O during early boot), so these may be lower than steady state.
	BootCPUEff() float64
	BootIOEff() float64
	// AllocMem/FreeMem account guest memory. A VM's pages are already
	// reserved at create time, so its implementation only tracks RSS;
	// a container's RSS lands directly on the host.
	AllocMem(mb int) error
	FreeMem(mb int)
}

// BootConfig selects what kind of Android comes up.
type BootConfig struct {
	// Manifest is the OS image the runtime boots from.
	Manifest image.Manifest
	// Customized enables the §IV-B3 offloading OS: modified init, no
	// UI/telephony services (their interfaces are faked with direct
	// returns), reduced zygote preload.
	Customized bool
	// PreInitFixed is dead time before /init that only device-style
	// boots pay: BIOS POST, emulated-device probing, DHCP timeouts.
	PreInitFixed time.Duration
	// PreInitWork is bootloader + kernel init + filesystem preparation
	// CPU, charged at the boot CPU efficiency.
	PreInitWork host.Work
}

// Process is one running user-space process (for the Monitor & Scheduler).
type Process struct {
	Name  string
	MemMB int
}

// Runtime is a booted Android user space.
type Runtime struct {
	env    Env
	cfg    BootConfig
	binder *binder.Context
	devs   []*kernel.Handle
	logger *acd.Logger

	procs    []Process
	memMB    int
	bootTime time.Duration
	loaded   map[string]host.Bytes // ClassLoader cache: AID -> code size
	offload  *unionfs.Mount        // where offloading I/O lands (may be FS)
	executed int

	up bool
}

// Boot brings up Android inside env, blocking p for the whole sequence of
// Figure 6. It fails if any required Android device (Binder, Alarm,
// Logger, Ashmem) is missing — the kernel-incompatibility failure that
// motivates the Android Container Driver.
func Boot(p *sim.Proc, env Env, cfg BootConfig) (*Runtime, error) {
	r := &Runtime{env: env, cfg: cfg, loaded: make(map[string]host.Bytes), offload: env.FS()}
	h := env.Host()
	start := p.E.Now()

	// Stage 0 (device/VM boots only): bootloader, kernel, ramdisk, fsck.
	if cfg.PreInitFixed > 0 {
		p.Sleep(cfg.PreInitFixed)
	}
	if cfg.PreInitWork > 0 {
		h.Compute(p, cfg.PreInitWork, env.BootCPUEff())
	}

	// Stage 1: /init. First action: open the Android devices. Without the
	// Android Container Driver this is where a container boot dies.
	for _, dev := range acd.RequiredDevices() {
		hnd, err := env.OpenDevice(dev)
		if err != nil {
			r.closeDevices()
			return nil, fmt.Errorf("android: %s: init: opening %s: %w", env.Name(), dev, err)
		}
		r.devs = append(r.devs, hnd)
		switch dev {
		case acd.DevBinder:
			r.binder = hnd.State().(*binder.Context)
		case acd.DevLogMain:
			r.logger = hnd.State().(*acd.Logger)
		}
	}
	initSpec := initDaemons(cfg.Customized)
	for _, d := range initSpec {
		h.Compute(p, d.cpu, env.BootCPUEff())
		if err := r.grow(d.name, d.mem); err != nil {
			r.teardown()
			return nil, err
		}
	}
	r.log("init", "daemons started")

	// Stage 2: zygote preload — reads the boot working set (framework
	// jars, core libraries) through the union filesystem and burns
	// preload CPU. This is the stage OS customization shrinks the most.
	for _, f := range cfg.Manifest.BootFiles() {
		if _, _, err := env.FS().Read(p, f.Path, env.BootIOEff()); err != nil {
			r.teardown()
			return nil, fmt.Errorf("android: %s: zygote preload: %w", env.Name(), err)
		}
	}
	zy := zygoteSpec(cfg.Customized)
	h.Compute(p, zy.cpu, env.BootCPUEff())
	if err := r.grow("zygote", zy.mem); err != nil {
		r.teardown()
		return nil, err
	}
	r.log("zygote", "preloaded classes and resources")

	// Stage 3: package manager scan (dexopt bookkeeping).
	h.Compute(p, packageScanWork(cfg.Customized), env.BootCPUEff())
	if err := r.grow("installd", packageScanMem); err != nil {
		r.teardown()
		return nil, err
	}

	// Stage 4: system_server starts services; each registers with the
	// per-namespace Binder context.
	for _, s := range services(cfg.Customized) {
		h.Compute(p, s.cpu, env.BootCPUEff())
		if err := r.grow(s.name, s.mem); err != nil {
			r.teardown()
			return nil, err
		}
		if _, err := r.binder.Register(s.name, r.serviceHandler(s.name)); err != nil {
			r.teardown()
			return nil, fmt.Errorf("android: %s: %w", env.Name(), err)
		}
	}

	// Stage 5: the offload controller, the process that receives
	// dispatched requests, plus per-runtime I/O buffers.
	h.Compute(p, offloadCtlWork, env.BootCPUEff())
	if err := r.grow("offloadcontroller", offloadCtlMem(cfg.Customized)); err != nil {
		r.teardown()
		return nil, err
	}
	if _, err := r.binder.Register("offloadcontroller", r.serviceHandler("offloadcontroller")); err != nil {
		r.teardown()
		return nil, err
	}
	r.log("offloadcontroller", "ready")

	// Boot writes: dalvik-cache for the runtime package, properties,
	// logs. This is the container's private on-disk delta — Table I's
	// "less than 7.1 MB" per optimized Cloud Android Container.
	for _, w := range []struct {
		path string
		size host.Bytes
	}{
		{"/data/dalvik-cache/system@offloadruntime.dex", 6 * host.MB},
		{"/data/local.prop", 300 * host.KB},
		{"/data/misc/boot.log", 500 * host.KB},
	} {
		if err := env.FS().Write(p, w.path, w.size, nil, env.BootIOEff()); err != nil {
			r.teardown()
			return nil, fmt.Errorf("android: %s: boot writes: %w", env.Name(), err)
		}
	}

	r.bootTime = (p.E.Now() - start).Duration()
	r.up = true

	// Post-boot background initialization: Android's media scanner,
	// background dexopt and lazy class loading fault in the rest of the
	// core OS files over the first minute of uptime. This — not the
	// request path — is what leaves only the strippable set untouched in
	// the §III-E profiling.
	onDemand := cfg.Manifest.OnDemandFiles()
	p.E.Spawn(env.Name()+"-bgscan", func(bp *sim.Proc) {
		bp.Sleep(2 * time.Second)
		for _, f := range onDemand {
			if !r.up {
				return
			}
			if _, _, err := env.FS().Read(bp, f.Path, env.IOEff()); err != nil {
				return // runtime torn down mid-scan
			}
			bp.Sleep(400 * time.Millisecond)
		}
	})
	return r, nil
}

// Template is a captured boot: the process census, memory footprint and
// boot flavor of a fully booted runtime, frozen at the post-driver-load,
// post-zygote point. CloneBoot thaws it into a fresh environment without
// re-running the Figure 6 sequence.
type Template struct {
	cfg   BootConfig
	procs []Process
	memMB int
}

// CaptureTemplate freezes this runtime's booted user-space state for
// CloneBoot. The source runtime keeps serving; the capture shares nothing
// mutable with it.
func (r *Runtime) CaptureTemplate() *Template {
	return &Template{cfg: r.cfg, procs: append([]Process(nil), r.procs...), memMB: r.memMB}
}

// MemMB reports the template image's resident footprint.
func (t *Template) MemMB() int { return t.memMB }

// cloneThawWork is the fixed CPU a clone pays to thaw the frozen process
// image and re-key it to its own namespace (CRIU-style restore: remap
// Binder handles, fix up pids, resume threads).
const cloneThawWork host.Work = 24

// CloneBoot brings up Android inside env by thawing tmpl instead of
// booting. The environment's rootfs already carries the template's boot
// artifacts (dalvik-cache, properties, logs) through its cloned union
// mount, so the clone skips the zygote preload reads, the init/zygote/
// service compute, and the boot writes. It still opens the Android
// devices in its own namespace and registers its services on its own
// Binder context — per-namespace kernel state cannot be cloned from user
// space — and its memory is charged as one frozen image.
func CloneBoot(p *sim.Proc, env Env, tmpl *Template) (*Runtime, error) {
	r := &Runtime{env: env, cfg: tmpl.cfg, loaded: make(map[string]host.Bytes), offload: env.FS()}
	h := env.Host()
	start := p.E.Now()

	for _, dev := range acd.RequiredDevices() {
		hnd, err := env.OpenDevice(dev)
		if err != nil {
			r.closeDevices()
			return nil, fmt.Errorf("android: %s: clone: opening %s: %w", env.Name(), dev, err)
		}
		r.devs = append(r.devs, hnd)
		switch dev {
		case acd.DevBinder:
			r.binder = hnd.State().(*binder.Context)
		case acd.DevLogMain:
			r.logger = hnd.State().(*acd.Logger)
		}
	}

	// One allocation for the whole frozen image; the per-process split is
	// restored from the capture.
	if err := env.AllocMem(tmpl.memMB); err != nil {
		r.closeDevices()
		return nil, fmt.Errorf("android: %s: clone: %w", env.Name(), err)
	}
	r.memMB = tmpl.memMB
	r.procs = append([]Process(nil), tmpl.procs...)
	h.Compute(p, cloneThawWork, env.BootCPUEff())

	for _, s := range services(tmpl.cfg.Customized) {
		if _, err := r.binder.Register(s.name, r.serviceHandler(s.name)); err != nil {
			r.teardown()
			return nil, fmt.Errorf("android: %s: %w", env.Name(), err)
		}
	}
	if _, err := r.binder.Register("offloadcontroller", r.serviceHandler("offloadcontroller")); err != nil {
		r.teardown()
		return nil, fmt.Errorf("android: %s: %w", env.Name(), err)
	}
	r.log("offloadcontroller", "thawed from template")

	r.bootTime = (p.E.Now() - start).Duration()
	r.up = true
	return r, nil
}

// serviceHandler returns a trivial Binder handler for a system service.
// The customized OS "fakes the key interfaces with direct returns" for
// removed services; present services answer with a small parcel.
func (r *Runtime) serviceHandler(name string) binder.TxnHandler {
	reply := []byte(name + ":ok") // handlers answer every call with the
	// same parcel; building it once keeps service calls off the heap
	return func(code uint32, data []byte) ([]byte, error) {
		return reply, nil
	}
}

func (r *Runtime) grow(proc string, mb int) error {
	if err := r.env.AllocMem(mb); err != nil {
		return fmt.Errorf("android: %s: starting %s: %w", r.env.Name(), proc, err)
	}
	r.memMB += mb
	r.procs = append(r.procs, Process{Name: proc, MemMB: mb})
	return nil
}

func (r *Runtime) log(tag, msg string) {
	if r.logger != nil {
		r.logger.Write(acd.LogEntry{Tag: tag, Msg: msg})
	}
}

// CallService performs a Binder transaction against a named service in
// this runtime. Removed UI services answer with a faked direct return.
func (r *Runtime) CallService(name string, code uint32, data []byte) ([]byte, error) {
	if r.cfg.Customized {
		if _, removed := removedServiceSet[name]; removed {
			// Faked interface: direct return, no service behind it.
			return []byte(name + ":faked"), nil
		}
	}
	return r.binder.Call(name, code, data)
}

// Binder exposes the runtime's Binder context (its device namespace view).
func (r *Runtime) Binder() *binder.Context { return r.binder }

// BootTime reports how long Boot took.
func (r *Runtime) BootTime() time.Duration { return r.bootTime }

// MemMB reports the runtime's resident memory.
func (r *Runtime) MemMB() int { return r.memMB }

// Processes lists running processes.
func (r *Runtime) Processes() []Process {
	out := make([]Process, len(r.procs))
	copy(out, r.procs)
	return out
}

// Up reports whether the runtime is serving.
func (r *Runtime) Up() bool { return r.up }

// Executed reports how many offloaded tasks this runtime has run.
func (r *Runtime) Executed() int { return r.executed }

// SetOffloadFS redirects offloading I/O (transferred files, staged inputs)
// to the given mount — the shared in-memory offloading I/O layer in
// optimized Rattrap (Figure 7b); by default it is the runtime's own rootfs
// (Figure 7a, "Exclusive Offloading I/O").
func (r *Runtime) SetOffloadFS(m *unionfs.Mount) { r.offload = m }

// OffloadFS returns where offloading I/O currently lands.
func (r *Runtime) OffloadFS() *unionfs.Mount { return r.offload }

func (r *Runtime) closeDevices() {
	for _, d := range r.devs {
		d.Close()
	}
	r.devs = nil
}

func (r *Runtime) teardown() {
	r.closeDevices()
	r.env.FreeMem(r.memMB)
	r.memMB = 0
	r.procs = nil
}

// Shutdown stops the runtime, releasing memory and device handles (which
// lets the platform unload idle Android Container Driver modules).
func (r *Runtime) Shutdown() {
	if !r.up {
		return
	}
	r.up = false
	for _, s := range services(r.cfg.Customized) {
		_ = r.binder.Unregister(s.name)
	}
	_ = r.binder.Unregister("offloadcontroller")
	r.teardown()
}

// Describe summarizes the runtime for logs and the Container DB.
func (r *Runtime) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: boot=%v mem=%dMB procs=%d", r.env.Name(), r.bootTime, r.memMB, len(r.procs))
	return b.String()
}
