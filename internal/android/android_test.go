package android_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"rattrap/internal/acd"
	"rattrap/internal/android"
	"rattrap/internal/container"
	"rattrap/internal/host"
	"rattrap/internal/image"
	"rattrap/internal/kernel"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
	"rattrap/internal/vm"
	"rattrap/internal/workload"
)

type harness struct {
	e *sim.Engine
	h *host.Host
	k *kernel.Kernel
}

func newHarness() *harness {
	e := sim.NewEngine(1)
	h := host.New(e, host.CloudServer())
	return &harness{e: e, h: h, k: kernel.New(e, h, "3.18.0")}
}

// bootVM provisions and boots an Android-x86 VM.
func bootVM(t *testing.T, hn *harness, p *sim.Proc, name string) (*vm.VM, *android.Runtime) {
	t.Helper()
	manifest := image.AndroidX86()
	v, err := vm.Create(p, hn.h, hn.e, vm.DefaultConfig(name), manifest)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := android.Boot(p, v, v.BootConfig(manifest))
	if err != nil {
		t.Fatal(err)
	}
	return v, rt
}

// bootWO creates a non-optimized Cloud Android Container: private full
// rootfs, stock Android, ACD loaded.
func bootWO(t *testing.T, hn *harness, p *sim.Proc, name string) (*container.Container, *android.Runtime) {
	t.Helper()
	if err := acd.LoadAll(p, hn.k, hn.e); err != nil {
		t.Fatal(err)
	}
	manifest := image.AndroidX86().ForContainer()
	// The rootfs copy was just provisioned from the base image, so its
	// pages are cache-resident (as on the measured testbed).
	rootfs := manifest.BuildLayer("rootfs:"+name, true)
	rootfs.WarmCacheOn(hn.h)
	c, err := container.Create(p, hn.h, hn.k, container.DefaultConfig(name, 128), unionfs.NewLayer(name+"-delta", false), rootfs)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := android.Boot(p, c, android.BootConfig{Manifest: manifest, Customized: false})
	if err != nil {
		t.Fatal(err)
	}
	return c, rt
}

// bootOptimized creates an optimized Cloud Android Container over a warmed
// shared layer.
func bootOptimized(t *testing.T, hn *harness, p *sim.Proc, name string, shared *unionfs.Layer) (*container.Container, *android.Runtime) {
	t.Helper()
	if err := acd.LoadAll(p, hn.k, hn.e); err != nil {
		t.Fatal(err)
	}
	manifest := image.AndroidX86().Customized()
	c, err := container.Create(p, hn.h, hn.k, container.DefaultConfig(name, 96), unionfs.NewLayer(name+"-delta", false), shared)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := android.Boot(p, c, android.BootConfig{Manifest: manifest, Customized: true})
	if err != nil {
		t.Fatal(err)
	}
	return c, rt
}

func sharedLayer(hn *harness) *unionfs.Layer {
	shared := image.AndroidX86().Customized().BuildLayer("shared-android", true)
	shared.WarmCacheOn(hn.h) // platform warms the shared layer at startup
	return shared
}

func TestVMBootAround28s(t *testing.T) {
	hn := newHarness()
	var boot time.Duration
	var reserved int
	hn.e.Spawn("test", func(p *sim.Proc) {
		v, rt := bootVM(t, hn, p, "vm-1")
		boot = rt.BootTime() + v.CreateTime()
		reserved = v.MemReservedMB()
	})
	hn.e.Run()
	if boot < 25*time.Second || boot > 33*time.Second {
		t.Fatalf("VM boot = %v, want ≈28.7s (Table I)", boot)
	}
	if reserved != 512 {
		t.Fatalf("VM reservation = %d MB, want 512", reserved)
	}
}

func TestContainerWOBootAround7s(t *testing.T) {
	hn := newHarness()
	var boot time.Duration
	var peak int
	hn.e.Spawn("test", func(p *sim.Proc) {
		c, rt := bootWO(t, hn, p, "cac-wo-1")
		boot = rt.BootTime() + c.CreateTime()
		peak = c.MemPeakMB()
	})
	hn.e.Run()
	if boot < 5500*time.Millisecond || boot > 8*time.Second {
		t.Fatalf("CAC(W/O) boot = %v, want ≈6.8s (Table I)", boot)
	}
	// Paper: maximum memory usage 110.56 MB during boot -> 128 MB limit.
	if peak < 105 || peak > 118 {
		t.Fatalf("CAC(W/O) peak memory = %d MB, want ≈110.56", peak)
	}
}

func TestOptimizedCACBootUnder2s(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	var boot time.Duration
	var peak int
	hn.e.Spawn("test", func(p *sim.Proc) {
		c, rt := bootOptimized(t, hn, p, "cac-1", shared)
		boot = rt.BootTime() + c.CreateTime()
		peak = c.MemPeakMB()
	})
	hn.e.Run()
	if boot < 1200*time.Millisecond || boot > 2100*time.Millisecond {
		t.Fatalf("optimized CAC boot = %v, want ≈1.75s (Table I)", boot)
	}
	// Paper: maximum memory usage 96.35 MB -> 96 MB configured.
	if peak < 92 || peak > 100 {
		t.Fatalf("optimized CAC peak memory = %d MB, want ≈96.35", peak)
	}
}

func TestTableIRatios(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	var vmBoot, woBoot, optBoot time.Duration
	hn.e.Spawn("test", func(p *sim.Proc) {
		v, rt := bootVM(t, hn, p, "vm-1")
		vmBoot = rt.BootTime() + v.CreateTime()
		c1, rt1 := bootWO(t, hn, p, "wo-1")
		woBoot = rt1.BootTime() + c1.CreateTime()
		c2, rt2 := bootOptimized(t, hn, p, "opt-1", shared)
		optBoot = rt2.BootTime() + c2.CreateTime()
	})
	hn.e.Run()
	woSpeedup := float64(vmBoot) / float64(woBoot)
	optSpeedup := float64(vmBoot) / float64(optBoot)
	if woSpeedup < 3.5 || woSpeedup > 5.2 {
		t.Errorf("W/O setup speedup = %.2fx, paper reports 4.22x", woSpeedup)
	}
	if optSpeedup < 13 || optSpeedup > 21 {
		t.Errorf("optimized setup speedup = %.2fx, paper reports 16.41x", optSpeedup)
	}
}

func TestContainerBootFailsWithoutACD(t *testing.T) {
	hn := newHarness() // no LoadAll
	manifest := image.AndroidX86().ForContainer()
	rootfs := manifest.BuildLayer("rootfs", true)
	var bootErr error
	hn.e.Spawn("test", func(p *sim.Proc) {
		c, err := container.Create(p, hn.h, hn.k, container.DefaultConfig("c1", 128), unionfs.NewLayer("d", false), rootfs)
		if err != nil {
			t.Fatal(err)
		}
		_, bootErr = android.Boot(p, c, android.BootConfig{Manifest: manifest})
	})
	hn.e.Run()
	if !errors.Is(bootErr, kernel.ErrNoDevice) {
		t.Fatalf("boot without Android Container Driver: err = %v, want ErrNoDevice", bootErr)
	}
	if hn.h.MemUsedMB() != 0 {
		t.Fatalf("failed boot leaked %d MB", hn.h.MemUsedMB())
	}
}

func TestBinderServicesPerContainer(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, rt1 := bootOptimized(t, hn, p, "c1", shared)
		_, rt2 := bootOptimized(t, hn, p, "c2", shared)
		// Both runtimes registered "offloadcontroller" in their own
		// namespaces with no collision.
		if _, err := rt1.CallService("offloadcontroller", 0, nil); err != nil {
			t.Error(err)
		}
		if _, err := rt2.CallService("offloadcontroller", 0, nil); err != nil {
			t.Error(err)
		}
		if rt1.Binder() == rt2.Binder() {
			t.Error("containers share a Binder context")
		}
	})
	hn.e.Run()
}

func TestCustomizedFakesRemovedServices(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, opt := bootOptimized(t, hn, p, "c1", shared)
		reply, err := opt.CallService("surfaceflinger", 0, nil)
		if err != nil {
			t.Errorf("faked UI service errored: %v", err)
		}
		if !strings.Contains(string(reply), "faked") {
			t.Errorf("reply = %q, want faked direct return", reply)
		}
		// A full boot really runs the service.
		_, wo := bootWO(t, hn, p, "c2")
		reply, err = wo.CallService("surfaceflinger", 0, nil)
		if err != nil || !strings.Contains(string(reply), "ok") {
			t.Errorf("full boot surfaceflinger: %q, %v", reply, err)
		}
	})
	hn.e.Run()
}

func TestExecuteRunsRealWorkload(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	reg := workload.NewRegistry()
	rng := rand.New(rand.NewSource(4))
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		app, _ := workload.ByName(workload.NameLinpack)
		task := app.NewTask(rng, 0)
		if err := rt.LoadCode(p, task.App, app.CodeSize(), false); err != nil {
			t.Fatal(err)
		}
		res, err := rt.Execute(p, task.App, task, reg)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Metrics.Output, "residual=") {
			t.Errorf("output = %q", res.Metrics.Output)
		}
		if res.ComputeSeconds <= 0 {
			t.Error("no compute time charged")
		}
		if rt.Executed() != 1 {
			t.Errorf("executed = %d", rt.Executed())
		}
	})
	hn.e.Run()
}

func TestExecuteRequiresLoadedCode(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	reg := workload.NewRegistry()
	rng := rand.New(rand.NewSource(4))
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		app, _ := workload.ByName(workload.NameChess)
		if _, err := rt.Execute(p, app.Name(), app.NewTask(rng, 0), reg); err == nil {
			t.Error("execute without loaded code succeeded")
		}
	})
	hn.e.Run()
}

func TestCodeLoadCachedPerRuntime(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		app, _ := workload.ByName(workload.NameChess)
		t0 := hn.e.Now()
		rt.LoadCode(p, "ChessGame", app.CodeSize(), false)
		first := hn.e.Now() - t0
		t0 = hn.e.Now()
		rt.LoadCode(p, "ChessGame", app.CodeSize(), false)
		second := hn.e.Now() - t0
		if first <= 0 {
			t.Error("first load free")
		}
		if second != 0 {
			t.Errorf("reload of cached code cost %v", second)
		}
	})
	hn.e.Run()
}

func TestTmpfsOffloadIOFasterThanRootfs(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	reg := workload.NewRegistry()
	rng := rand.New(rand.NewSource(7))
	app, _ := workload.ByName(workload.NameVirusScan)
	task := app.NewTask(rng, 0)
	var exclusive, sharedIO float64
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, rt1 := bootOptimized(t, hn, p, "c1", shared)
		rt1.LoadCode(p, task.App, app.CodeSize(), false)
		r1, err := rt1.Execute(p, task.App, task, reg) // offload I/O on rootfs upper (disk)
		if err != nil {
			t.Fatal(err)
		}
		exclusive = r1.IOSeconds

		_, rt2 := bootOptimized(t, hn, p, "c2", shared)
		rt2.LoadCode(p, task.App, app.CodeSize(), false)
		tmp := unionfs.NewTmpfs("offload-io")
		m, _ := unionfs.NewMount(hn.h, "offload-io", tmp)
		rt2.SetOffloadFS(m) // Sharing Offloading I/O on tmpfs
		r2, err := rt2.Execute(p, task.App, task, reg)
		if err != nil {
			t.Fatal(err)
		}
		sharedIO = r2.IOSeconds
	})
	hn.e.Run()
	if sharedIO >= exclusive {
		t.Fatalf("tmpfs offloading I/O (%.3fs) not faster than exclusive (%.3fs)", sharedIO, exclusive)
	}
}

func TestShutdownReleasesEverything(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		if rt.MemMB() == 0 {
			t.Fatal("no memory while up")
		}
		rt.Shutdown()
		if rt.Up() {
			t.Error("runtime still up")
		}
		// With handles closed, ACD modules can unload.
		if err := acd.UnloadAll(hn.k); err != nil {
			t.Errorf("UnloadAll after shutdown: %v", err)
		}
	})
	hn.e.Run()
	if hn.h.MemUsedMB() != 0 {
		t.Fatalf("host memory leaked: %d MB", hn.h.MemUsedMB())
	}
}

func TestExecutionDeterministicAcrossEnvironments(t *testing.T) {
	// A task offloaded to a VM and to a container returns identical output.
	hn := newHarness()
	shared := sharedLayer(hn)
	reg := workload.NewRegistry()
	rng := rand.New(rand.NewSource(12))
	app, _ := workload.ByName(workload.NameOCR)
	task := app.NewTask(rng, 0)
	var out1, out2 string
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, vrt := bootVM(t, hn, p, "vm-1")
		vrt.LoadCode(p, task.App, app.CodeSize(), false)
		r1, err := vrt.Execute(p, task.App, task, reg)
		if err != nil {
			t.Fatal(err)
		}
		out1 = r1.Metrics.Output

		_, crt := bootOptimized(t, hn, p, "c1", shared)
		crt.LoadCode(p, task.App, app.CodeSize(), false)
		r2, err := crt.Execute(p, task.App, task, reg)
		if err != nil {
			t.Fatal(err)
		}
		out2 = r2.Metrics.Output
	})
	hn.e.Run()
	if out1 != out2 || out1 == "" {
		t.Fatalf("divergent outputs: %q vs %q", out1, out2)
	}
}

func TestVMExecSlowerThanContainer(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	reg := workload.NewRegistry()
	rng := rand.New(rand.NewSource(3))
	app, _ := workload.ByName(workload.NameVirusScan)
	task := app.NewTask(rng, 0)
	var vmT, cT float64
	hn.e.Spawn("test", func(p *sim.Proc) {
		_, vrt := bootVM(t, hn, p, "vm-1")
		vrt.LoadCode(p, task.App, app.CodeSize(), false)
		r1, _ := vrt.Execute(p, task.App, task, reg)
		vmT = r1.ComputeSeconds + r1.IOSeconds
		_, crt := bootOptimized(t, hn, p, "c1", shared)
		crt.LoadCode(p, task.App, app.CodeSize(), false)
		tmp := unionfs.NewTmpfs("oio")
		m, _ := unionfs.NewMount(hn.h, "oio", tmp)
		crt.SetOffloadFS(m)
		r2, _ := crt.Execute(p, task.App, task, reg)
		cT = r2.ComputeSeconds + r2.IOSeconds
	})
	hn.e.Run()
	ratio := vmT / cT
	if ratio < 1.05 || ratio > 1.9 {
		t.Fatalf("VirusScan exec speedup container vs VM = %.2fx, want within paper band (≈1.4x)", ratio)
	}
}
