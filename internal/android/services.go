package android

import "rattrap/internal/host"

// Cost tables for the Android boot stages. These are the calibration
// constants behind Table I: a full (non-customized) boot burns
// ≈9600 mops of CPU and ≈195 MB of image reads; the customized boot burns
// ≈3300 mops and reads the much smaller customized boot set, mostly from
// the shared-layer page cache. Memory numbers are tuned so the resident
// footprints land at the paper's measurements (110.56 MB full,
// 96.35 MB customized).

type procSpec struct {
	name string
	cpu  host.Work
	mem  int // MB
}

// initDaemons are the native daemons /init launches (Figure 4's init,
// netd, vold, servicemanager, ...). The modified init of a customized
// boot starts fewer of them and skips device-specific probing.
func initDaemons(customized bool) []procSpec {
	core := []procSpec{
		{"init", 200, 3},
		{"ueventd", 100, 1},
		{"servicemanager", 120, 2},
		{"netd", 250, 3},
		{"vold", 230, 3},
	}
	if customized {
		// vold (volume manager) is unnecessary without removable media;
		// ueventd has no hardware to enumerate.
		return []procSpec{
			{"init", 80, 3},
			{"servicemanager", 60, 2},
			{"netd", 80, 3},
		}
	}
	return core
}

// zygoteSpec is the class/resource preload stage.
func zygoteSpec(customized bool) procSpec {
	if customized {
		// Reduced preload list: no UI toolkit, no telephony stack.
		return procSpec{"zygote", 700, 34}
	}
	return procSpec{"zygote", 3600, 38}
}

// packageScanWork is the package-manager scan / dexopt bookkeeping.
func packageScanWork(customized bool) host.Work {
	if customized {
		return 300 // only the offload runtime package remains (vs 2200 full)
	}
	return 2200
}

const packageScanMem = 5

// coreServices run in every boot: they are what offloaded code actually
// needs (activity/package/alarm managers, power, network...).
var coreServices = []procSpec{
	{"activity", 340, 5},
	{"package", 390, 6},
	{"alarm", 120, 2},
	{"power", 100, 2},
	{"connectivity", 220, 4},
	{"content", 160, 3},
	{"appops", 90, 2},
	{"batterystats", 120, 2},
	{"jobscheduler", 140, 2},
	{"netstats", 130, 2},
}

// uiServices only start in a full boot; the customized OS removes them and
// fakes their interfaces with direct returns (§IV-B3: "without system UI,
// telephony, user interact").
var uiServices = []procSpec{
	{"window", 750, 2},
	{"surfaceflinger", 920, 3},
	{"inputmethod", 410, 1},
	{"telephony", 680, 2},
	{"wallpaper", 270, 1},
	{"audio", 460, 2},
	{"notification", 340, 1},
	{"statusbar", 280, 1},
	{"accessibility", 250, 1},
	{"launcher", 1000, 3},
	{"systemui", 870, 3},
}

// removedServiceSet names the services a customized runtime fakes.
var removedServiceSet = func() map[string]struct{} {
	m := make(map[string]struct{}, len(uiServices))
	for _, s := range uiServices {
		m[s.name] = struct{}{}
	}
	return m
}()

// services returns the system services for the boot flavor.
func services(customized bool) []procSpec {
	if customized {
		return coreServices
	}
	return append(append([]procSpec{}, coreServices...), uiServices...)
}

// Offload controller process costs. The customized runtime gives it larger
// staging buffers (part of the in-memory offloading I/O design), which is
// why the optimized footprint is not simply "full minus UI".
const offloadCtlWork host.Work = 280

func offloadCtlMem(customized bool) int {
	if customized {
		return 19
	}
	return 6
}

// ClassLoader costs: loading 1 MB of dex through ClassLoader.
const classLoadWorkPerMB host.Work = 160

// Binder transaction CPU cost per call (marshalling + context switches).
const binderTxnWork host.Work = 0.4
