package android_test

import (
	"errors"
	"strings"
	"testing"

	"rattrap/internal/acd"
	"rattrap/internal/android"
	"rattrap/internal/container"
	"rattrap/internal/image"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

func TestBootFailsUnderTightMemoryLimit(t *testing.T) {
	// A 48 MB cgroup cannot hold the customized runtime (≈96 MB): the boot
	// must fail with the container's limit error and release everything it
	// had already allocated.
	hn := newHarness()
	shared := sharedLayer(hn)
	var bootErr error
	hn.e.Spawn("t", func(p *sim.Proc) {
		if err := acd.LoadAll(p, hn.k, hn.e); err != nil {
			t.Fatal(err)
		}
		c, err := container.Create(p, hn.h, hn.k, container.DefaultConfig("tiny", 48),
			unionfs.NewLayer("tiny-delta", false), shared)
		if err != nil {
			t.Fatal(err)
		}
		_, bootErr = android.Boot(p, c, android.BootConfig{
			Manifest: image.AndroidX86().Customized(), Customized: true,
		})
	})
	hn.e.Run()
	if !errors.Is(bootErr, container.ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", bootErr)
	}
	if hn.h.MemUsedMB() != 0 {
		t.Fatalf("failed boot leaked %d MB on the host", hn.h.MemUsedMB())
	}
	// With all device handles closed by the teardown, ACD can unload.
	if err := acd.UnloadAll(hn.k); err != nil {
		t.Fatalf("UnloadAll after failed boot: %v", err)
	}
}

func TestProcessesAndDescribe(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("t", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		procs := rt.Processes()
		names := make(map[string]bool, len(procs))
		for _, pr := range procs {
			names[pr.Name] = true
		}
		for _, want := range []string{"zygote", "servicemanager", "offloadcontroller", "activity"} {
			if !names[want] {
				t.Errorf("process %s missing from %v", want, procs)
			}
		}
		// The customized boot must NOT run UI services as processes.
		for _, removed := range []string{"surfaceflinger", "launcher", "telephony"} {
			if names[removed] {
				t.Errorf("customized boot runs removed service %s", removed)
			}
		}
		desc := rt.Describe()
		if !strings.Contains(desc, "c1") || !strings.Contains(desc, "mem=") {
			t.Errorf("describe = %q", desc)
		}
	})
	hn.e.Run()
}

func TestFullBootRunsUIServices(t *testing.T) {
	hn := newHarness()
	hn.e.Spawn("t", func(p *sim.Proc) {
		_, rt := bootWO(t, hn, p, "full")
		names := make(map[string]bool)
		for _, pr := range rt.Processes() {
			names[pr.Name] = true
		}
		if !names["surfaceflinger"] || !names["launcher"] {
			t.Error("full boot missing UI services")
		}
	})
	hn.e.Run()
}

func TestTouchOnDemandMarksAccess(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("t", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		n := rt.OnDemandCount()
		if n == 0 {
			t.Fatal("customized image has no on-demand files")
		}
		for i := 0; i < n; i++ {
			if err := rt.TouchOnDemand(p, i); err != nil {
				t.Fatalf("touch %d: %v", i, err)
			}
		}
	})
	hn.e.Run()
}

func TestExecuteOnDownedRuntimeFails(t *testing.T) {
	hn := newHarness()
	shared := sharedLayer(hn)
	hn.e.Spawn("t", func(p *sim.Proc) {
		_, rt := bootOptimized(t, hn, p, "c1", shared)
		rt.Shutdown()
		if err := rt.LoadCode(p, "x", 1000, false); err == nil {
			t.Error("LoadCode on downed runtime succeeded")
		}
		rt.Shutdown() // second shutdown is a no-op
	})
	hn.e.Run()
}
