package unionfs

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

func newTestHost(e *sim.Engine) *host.Host {
	return host.New(e, host.Config{
		Name: "t", Cores: 2, CoreMops: 1000, MemMB: 4096,
		DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000,
	})
}

func TestUnionPrecedence(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	lower := NewLayer("system", true)
	lower.AddFile("/system/lib/libc.so", 100, nil)
	lower.AddFile("/system/app/browser.apk", 200, nil)
	upper := NewLayer("delta", false)
	upper.AddFile("/system/lib/libc.so", 50, nil) // container-local override
	m, err := NewMount(h, "c1", upper, lower)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := m.Stat("/system/lib/libc.so")
	if !ok || f.Layer != "delta" || f.Size != 50 {
		t.Fatalf("stat = %+v, want upper copy of 50 bytes", f)
	}
	f, ok = m.Stat("/system/app/browser.apk")
	if !ok || f.Layer != "system" {
		t.Fatalf("stat = %+v, want lower copy", f)
	}
}

func TestReadOnlyUpperRejected(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	if _, err := NewMount(h, "bad", NewLayer("ro", true)); err == nil {
		t.Fatal("mount with read-only upper succeeded")
	}
}

func TestCopyOnWrite(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	lower := NewLayer("system", true)
	lower.AddFile("/etc/hosts", 10*host.KB, nil)
	upper := NewLayer("delta", false)
	m, _ := NewMount(h, "c1", upper, lower)
	e.Spawn("w", func(p *sim.Proc) {
		if err := m.Write(p, "/etc/hosts", 12*host.KB, nil, 1.0); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if !upper.Has("/etc/hosts") {
		t.Fatal("write did not land in upper layer")
	}
	if lower.files["/etc/hosts"].size != 10*host.KB {
		t.Fatal("lower layer was modified")
	}
	f, _ := m.Stat("/etc/hosts")
	if f.Size != 12*host.KB || f.Layer != "delta" {
		t.Fatalf("stat after COW = %+v", f)
	}
}

func TestWhiteout(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	lower := NewLayer("system", true)
	lower.AddFile("/system/app/camera.apk", 100, nil)
	upper := NewLayer("delta", false)
	m, _ := NewMount(h, "c1", upper, lower)
	if err := m.Remove("/system/app/camera.apk"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Stat("/system/app/camera.apk"); ok {
		t.Fatal("removed file still visible")
	}
	if !lower.Has("/system/app/camera.apk") {
		t.Fatal("remove modified the read-only lower layer")
	}
	// Re-creating the file drops the whiteout.
	e.Spawn("w", func(p *sim.Proc) {
		if err := m.Write(p, "/system/app/camera.apk", 5, nil, 1.0); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if f, ok := m.Stat("/system/app/camera.apk"); !ok || f.Size != 5 {
		t.Fatalf("recreate after whiteout: %+v %v", f, ok)
	}
}

func TestRemoveUpperOnlyNoWhiteout(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	upper := NewLayer("delta", false)
	upper.AddFile("/tmp/x", 1, nil)
	m, _ := NewMount(h, "c1", upper)
	if err := m.Remove("/tmp/x"); err != nil {
		t.Fatal(err)
	}
	if upper.wh["/tmp/x"] {
		t.Fatal("needless whiteout created")
	}
	if err := m.Remove("/tmp/x"); err == nil {
		t.Fatal("removing a missing file succeeded")
	}
}

func TestSharedLayerAcrossMounts(t *testing.T) {
	// Two containers share a lower layer: bytes are stored once; each
	// upper holds only its delta — the 50x size reduction of §IV-C.
	e := sim.NewEngine(1)
	h := newTestHost(e)
	shared := NewLayer("shared-system", true)
	shared.AddFile("/system/framework/framework.jar", 300*host.MB, nil)
	u1 := NewLayer("c1-delta", false)
	u2 := NewLayer("c2-delta", false)
	m1, _ := NewMount(h, "c1", u1, shared)
	m2, _ := NewMount(h, "c2", u2, shared)
	e.Spawn("w", func(p *sim.Proc) {
		m1.Write(p, "/data/local.prop", 4*host.KB, nil, 1.0)
		m2.Write(p, "/data/local.prop", 4*host.KB, nil, 1.0)
	})
	e.Run()
	if m1.VisibleSize() != 300*host.MB+4*host.KB {
		t.Fatalf("visible size = %d", m1.VisibleSize())
	}
	total := shared.Size() + u1.Size() + u2.Size()
	if total != 300*host.MB+8*host.KB {
		t.Fatalf("stored total = %d, want shared data stored once", total)
	}
}

func TestSharedLayerPageCacheAcrossContainers(t *testing.T) {
	// Container 2 reading a shared-layer file after container 1 must hit
	// the page cache — the mechanism behind fast optimized-CAC boots.
	e := sim.NewEngine(1)
	h := newTestHost(e)
	shared := NewLayer("shared-system", true)
	shared.AddFile("/system/lib/libandroid.so", 50*host.MB, nil)
	m1, _ := NewMount(h, "c1", NewLayer("u1", false), shared)
	m2, _ := NewMount(h, "c2", NewLayer("u2", false), shared)
	var first, second time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := e.Now()
		m1.Read(p, "/system/lib/libandroid.so", 1.0)
		first = (e.Now() - t0).Duration()
		t0 = e.Now()
		m2.Read(p, "/system/lib/libandroid.so", 1.0)
		second = (e.Now() - t0).Duration()
	})
	e.Run()
	if second >= first/5 {
		t.Fatalf("cross-container cached read %v vs cold %v: cache not shared", second, first)
	}
}

func TestTmpfsFasterThanDisk(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	diskL := NewLayer("disk", false)
	memL := NewTmpfs("offload-io")
	md, _ := NewMount(h, "d", diskL)
	mm, _ := NewMount(h, "m", memL)
	var dDisk, dMem time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := e.Now()
		md.Write(p, "/f", 50*host.MB, nil, 1.0)
		dDisk = (e.Now() - t0).Duration()
		t0 = e.Now()
		mm.Write(p, "/f", 50*host.MB, nil, 1.0)
		dMem = (e.Now() - t0).Duration()
	})
	e.Run()
	if dMem >= dDisk {
		t.Fatalf("tmpfs write %v not faster than disk write %v", dMem, dDisk)
	}
}

func TestAccessTracking(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	l := NewLayer("system", true)
	l.AddFile("/system/lib/used.so", 700, nil)
	l.AddFile("/system/lib/unused.so", 300, nil)
	m, _ := NewMount(h, "c", NewLayer("u", false), l)
	e.Spawn("w", func(p *sim.Proc) {
		if _, _, err := m.Read(p, "/system/lib/used.so", 1.0); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if l.AccessedSize() != 700 || l.NeverAccessedSize() != 300 {
		t.Fatalf("accessed=%d never=%d, want 700/300", l.AccessedSize(), l.NeverAccessedSize())
	}
	l.ResetAccess()
	if l.AccessedSize() != 0 {
		t.Fatal("ResetAccess did not clear marks")
	}
}

func TestReadMissingFile(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	m, _ := NewMount(h, "c", NewLayer("u", false))
	e.Spawn("w", func(p *sim.Proc) {
		if _, _, err := m.Read(p, "/nope", 1.0); err == nil {
			t.Error("read of missing file succeeded")
		}
	})
	e.Run()
}

func TestDataRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	m, _ := NewMount(h, "c", NewTmpfs("t"))
	blob := []byte("dex bytecode")
	e.Spawn("w", func(p *sim.Proc) {
		m.Write(p, "/warehouse/a.apk", host.Bytes(len(blob)), blob, 1.0)
		_, data, err := m.Read(p, "/warehouse/a.apk", 1.0)
		if err != nil || string(data) != string(blob) {
			t.Errorf("read back %q, %v", data, err)
		}
	})
	e.Run()
}

func TestSizeUnder(t *testing.T) {
	l := NewLayer("sys", true)
	l.AddFile("/system/a", 10, nil)
	l.AddFile("/system/b", 20, nil)
	l.AddFile("/data/c", 40, nil)
	if got := l.SizeUnder("/system"); got != 30 {
		t.Fatalf("SizeUnder(/system) = %d, want 30", got)
	}
	if got := l.Size(); got != 70 {
		t.Fatalf("Size = %d, want 70", got)
	}
}

func TestListDeterministicAndWhiteoutAware(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	lower := NewLayer("sys", true)
	lower.AddFile("/b", 1, nil)
	lower.AddFile("/a", 1, nil)
	lower.AddFile("/c", 1, nil)
	upper := NewLayer("u", false)
	m, _ := NewMount(h, "c", upper, lower)
	m.Remove("/b")
	files := m.List()
	if len(files) != 2 || files[0].Path != "/a" || files[1].Path != "/c" {
		t.Fatalf("List = %+v", files)
	}
}

// Property: for any sequence of writes then reads through a single-layer
// mount, Stat always reports the last written size.
func TestPropertyLastWriteWins(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		e := sim.NewEngine(1)
		h := newTestHost(e)
		m, _ := NewMount(h, "c", NewTmpfs("t"))
		ok := true
		e.Spawn("w", func(p *sim.Proc) {
			for _, s := range sizes {
				m.Write(p, "/x", host.Bytes(s), nil, 1.0)
			}
			got, _ := m.Stat("/x")
			ok = got.Size == host.Bytes(sizes[len(sizes)-1])
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: VisibleSize equals the sum of sizes returned by List.
func TestPropertyVisibleSizeMatchesList(t *testing.T) {
	f := func(paths []uint8, remove []uint8) bool {
		e := sim.NewEngine(1)
		h := newTestHost(e)
		lower := NewLayer("sys", true)
		for _, b := range paths {
			lower.AddFile("/f"+string(rune('a'+b%16)), host.Bytes(b)+1, nil)
		}
		m, _ := NewMount(h, "c", NewLayer("u", false), lower)
		for _, b := range remove {
			m.Remove("/f" + string(rune('a'+b%16))) // may fail; fine
		}
		var sum host.Bytes
		for _, f := range m.List() {
			sum += f.Size
		}
		return sum == m.VisibleSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFaultHook(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	m, err := NewMount(h, "w", NewTmpfs("scratch"))
	if err != nil {
		t.Fatal(err)
	}
	failing := true
	m.SetFault(func(p *sim.Proc, path string, size host.Bytes) error {
		if failing {
			return errInjected
		}
		p.Sleep(250 * time.Millisecond) // stall, then let the write land
		return nil
	})
	var stallEnd sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		if err := m.Write(p, "/a", 100, nil, 1.0); err == nil {
			t.Error("faulted write succeeded")
		}
		if _, ok := m.Stat("/a"); ok {
			t.Error("failed write landed in the layer")
		}
		failing = false
		if err := m.Write(p, "/a", 100, nil, 1.0); err != nil {
			t.Errorf("stalled write failed: %v", err)
		}
		stallEnd = e.Now()
	})
	e.Run()
	if stallEnd < sim.Time(250*time.Millisecond) {
		t.Fatalf("stall hook did not delay the write: finished at %v", stallEnd)
	}
	if _, ok := m.Stat("/a"); !ok {
		t.Fatal("stalled write never landed")
	}
}

var errInjected = fmt.Errorf("test: injected write fault")
