package unionfs

import (
	"testing"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

// buildBootedMount assembles the template-capture shape: a shared read-only
// lower plus a booted upper holding boot artifacts and one whiteout hiding
// a shared file.
func buildBootedMount(t *testing.T, e *sim.Engine, h *host.Host) (*Mount, *Layer, *Layer) {
	t.Helper()
	shared := NewLayer("shared", true)
	shared.AddFile("/system/lib/libc.so", 100*host.KB, nil)
	shared.AddFile("/system/app/camera.apk", 200*host.KB, nil)
	upper := NewLayer("src-delta", false)
	m, err := NewMount(h, "src", upper, shared)
	if err != nil {
		t.Fatal(err)
	}
	e.Spawn("boot", func(p *sim.Proc) {
		if err := m.Write(p, "/data/dalvik-cache/boot.art", 6*host.MB, []byte("art"), 1.0); err != nil {
			t.Error(err)
		}
		if err := m.Remove("/system/app/camera.apk"); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	return m, upper, shared
}

func TestSnapshotCloneCOW(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	src, upper, _ := buildBootedMount(t, e, h)

	tmpl := upper.Snapshot("template")
	if !tmpl.ReadOnly() {
		t.Fatal("snapshot is not read-only")
	}
	clone, err := src.CloneFrom("clone", NewLayer("clone-delta", false), tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// The clone sees the template's boot artifacts and the shared layer.
	if f, ok := clone.Stat("/data/dalvik-cache/boot.art"); !ok || f.Layer != "template" {
		t.Fatalf("clone stat boot.art = %+v, %v; want template copy", f, ok)
	}
	if f, ok := clone.Stat("/system/lib/libc.so"); !ok || f.Layer != "shared" {
		t.Fatalf("clone stat libc = %+v, %v; want shared copy", f, ok)
	}

	// Whiteouts frozen into the template keep hiding shared files.
	if _, ok := clone.Stat("/system/app/camera.apk"); ok {
		t.Fatal("whiteout did not survive cloning")
	}

	// Writes to the clone land in its own upper, never in the template or
	// the source mount.
	e.Spawn("w", func(p *sim.Proc) {
		if err := clone.Write(p, "/data/dalvik-cache/boot.art", 7*host.MB, nil, 1.0); err != nil {
			t.Error(err)
		}
		if err := clone.Write(p, "/data/local.prop", 1*host.KB, nil, 1.0); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if tmpl.Has("/data/local.prop") || tmpl.files["/data/dalvik-cache/boot.art"].size != 6*host.MB {
		t.Fatal("clone write leaked into the template layer")
	}
	if upper.Has("/data/local.prop") || upper.files["/data/dalvik-cache/boot.art"].size != 6*host.MB {
		t.Fatal("clone write leaked into the source upper layer")
	}
	if f, _ := clone.Stat("/data/dalvik-cache/boot.art"); f.Layer != "clone-delta" || f.Size != 7*host.MB {
		t.Fatalf("clone COW stat = %+v", f)
	}
	// The source mount still sees its own copy.
	if f, _ := src.Stat("/data/dalvik-cache/boot.art"); f.Layer != "src-delta" || f.Size != 6*host.MB {
		t.Fatalf("source stat after clone write = %+v", f)
	}
}

func TestSnapshotFrozenAgainstSourceWrites(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	src, upper, _ := buildBootedMount(t, e, h)
	tmpl := upper.Snapshot("template")
	clone, err := src.CloneFrom("clone", NewLayer("clone-delta", false), tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// Post-capture writes to the source (code staging etc.) must not show
	// through the snapshot.
	e.Spawn("w", func(p *sim.Proc) {
		if err := src.Write(p, "/data/app/code.apk", 3*host.MB, nil, 1.0); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if tmpl.Has("/data/app/code.apk") {
		t.Fatal("source write after capture showed up in the snapshot")
	}
	if _, ok := clone.Stat("/data/app/code.apk"); ok {
		t.Fatal("source write after capture visible through the clone")
	}

	// Reads through the clone mark template nodes, not source nodes.
	e.Spawn("r", func(p *sim.Proc) {
		if _, _, err := clone.Read(p, "/data/dalvik-cache/boot.art", 1.0); err != nil {
			t.Error(err)
		}
	})
	upper.ResetAccess()
	e.Run()
	if upper.files["/data/dalvik-cache/boot.art"].accessed {
		t.Fatal("clone read marked the source upper's node accessed")
	}
	if !tmpl.files["/data/dalvik-cache/boot.art"].accessed {
		t.Fatal("clone read did not mark the template node accessed")
	}
}

// Shared bytes are charged once: N clones over one template account the
// template's size a single time, with each clone adding only its delta.
func TestCloneAccountingCountsSharedOnce(t *testing.T) {
	e := sim.NewEngine(1)
	h := newTestHost(e)
	src, upper, shared := buildBootedMount(t, e, h)
	tmpl := upper.Snapshot("template")

	var clones []*Mount
	for i := 0; i < 3; i++ {
		u := NewLayer("clone-delta", false)
		c, err := src.CloneFrom("clone", u, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		clones = append(clones, c)
	}
	e.Spawn("w", func(p *sim.Proc) {
		for _, c := range clones {
			if err := c.Write(p, "/data/scratch", 1*host.KB, nil, 1.0); err != nil {
				t.Error(err)
			}
		}
	})
	e.Run()

	// Platform-style accounting: shared + template charged once, each
	// clone charged only its upper.
	var perClone host.Bytes
	for _, c := range clones {
		perClone += c.Upper().Size()
	}
	total := shared.Size() + tmpl.Size() + perClone
	want := shared.Size() + tmpl.Size() + 3*host.KB
	if total != want {
		t.Fatalf("accounting = %d, want %d (shared chunks counted once)", total, want)
	}
	// Sanity: the naive sum (VisibleSize per clone) would charge the
	// template and shared layers three times.
	var naive host.Bytes
	for _, c := range clones {
		naive += c.VisibleSize()
	}
	if naive <= total {
		t.Fatalf("naive per-clone sum %d should exceed deduplicated total %d", naive, total)
	}
}
