// Package unionfs implements an AUFS-like layered copy-on-write filesystem
// plus tmpfs (in-memory) layers. It is the storage substrate for Cloud
// Android Containers: read-only lower layers carry the shared Android
// /system (the Shared Resource Layer of §IV-C), a small writable upper
// layer holds per-container state, and a shared tmpfs layer carries
// offloading I/O ("Sharing Offloading I/O", Figure 7b).
//
// Reads and writes are timed through the owning host: disk-backed layers
// pay HDD cost (with page caching), tmpfs layers move at memory bandwidth.
// Every file records its last access time, which is how the §III-E
// redundancy profiling (Observation 4: 68.4% of the OS never touched) is
// reproduced.
package unionfs

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

// File describes one entry as seen through a mount.
type File struct {
	Path  string
	Size  host.Bytes
	Layer string // name of the layer that provides the visible copy
}

type node struct {
	size       host.Bytes
	data       []byte // optional real content (code blobs, small files)
	accessed   bool
	lastAccess sim.Time
}

// Layer is one stratum of a union mount. A layer may back many mounts at
// once; that sharing is exactly what the Shared Resource Layer exploits.
type Layer struct {
	name     string
	readOnly bool
	inMemory bool
	files    map[string]*node
	wh       map[string]bool // whiteouts (only meaningful on writable layers)
}

// NewLayer creates a disk-backed layer. readOnly layers reject writes
// through any mount.
func NewLayer(name string, readOnly bool) *Layer {
	return &Layer{name: name, readOnly: readOnly, files: make(map[string]*node), wh: make(map[string]bool)}
}

// NewTmpfs creates an in-memory (tmpfs) layer. Its content occupies RAM and
// moves at memory bandwidth.
func NewTmpfs(name string) *Layer {
	l := NewLayer(name, false)
	l.inMemory = true
	return l
}

// Name returns the layer's identifier.
func (l *Layer) Name() string { return l.name }

// ReadOnly reports whether the layer rejects writes.
func (l *Layer) ReadOnly() bool { return l.readOnly }

// InMemory reports whether the layer is a tmpfs.
func (l *Layer) InMemory() bool { return l.inMemory }

// AddFile places a file directly into the layer (image construction; not a
// timed operation). data may be nil when only the size matters.
func (l *Layer) AddFile(p string, size host.Bytes, data []byte) {
	if size < 0 {
		panic("unionfs: negative file size")
	}
	l.files[clean(p)] = &node{size: size, data: data}
}

// RemoveFile deletes a file directly from the layer (image construction).
func (l *Layer) RemoveFile(p string) { delete(l.files, clean(p)) }

// Has reports whether the layer itself contains the path.
func (l *Layer) Has(p string) bool {
	_, ok := l.files[clean(p)]
	return ok
}

// FileCount returns the number of files stored in the layer.
func (l *Layer) FileCount() int { return len(l.files) }

// Size returns the total bytes stored in the layer.
func (l *Layer) Size() host.Bytes {
	var total host.Bytes
	for _, n := range l.files {
		total += n.size
	}
	return total
}

// AccessedSize returns total bytes of files that have been read at least
// once, and NeverAccessedSize the complement.
func (l *Layer) AccessedSize() host.Bytes {
	var total host.Bytes
	for _, n := range l.files {
		if n.accessed {
			total += n.size
		}
	}
	return total
}

// NeverAccessedSize returns total bytes of files never read.
func (l *Layer) NeverAccessedSize() host.Bytes { return l.Size() - l.AccessedSize() }

// ResetAccess clears all access marks (a fresh profiling run).
func (l *Layer) ResetAccess() {
	for _, n := range l.files {
		n.accessed = false
		n.lastAccess = 0
	}
}

// SizeUnder returns total bytes of files whose path begins with prefix.
func (l *Layer) SizeUnder(prefix string) host.Bytes {
	prefix = clean(prefix)
	var total host.Bytes
	for p, n := range l.files {
		if strings.HasPrefix(p, prefix) {
			total += n.size
		}
	}
	return total
}

// Paths returns all paths in the layer, sorted (deterministic iteration).
func (l *Layer) Paths() []string {
	out := make([]string, 0, len(l.files))
	for p := range l.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a frozen read-only copy of the layer under a new name:
// the node table and whiteout set are copied (so later writes to l never
// show through the snapshot and reads through the snapshot never mark l's
// nodes accessed), while file content slices are shared — a snapshot costs
// metadata, not data. This is the capture half of template-clone boot: the
// upper layer of a fully booted container is snapshotted once and then
// spliced beneath every clone's fresh upper as an extra lower layer.
func (l *Layer) Snapshot(name string) *Layer {
	s := &Layer{
		name:     name,
		readOnly: true,
		inMemory: l.inMemory,
		files:    make(map[string]*node, len(l.files)),
		wh:       make(map[string]bool, len(l.wh)),
	}
	for p, n := range l.files {
		s.files[p] = &node{size: n.size, data: n.data, accessed: n.accessed, lastAccess: n.lastAccess}
	}
	for p := range l.wh {
		s.wh[p] = true
	}
	return s
}

// WarmCacheOn marks every file of the layer resident in h's page cache
// without simulated reads. Rattrap warms the Shared Resource Layer when the
// platform starts, so every container boot after the first reads /system at
// memory speed.
func (l *Layer) WarmCacheOn(h *host.Host) {
	for p, n := range l.files {
		h.WarmCache(l.name+":"+p, n.size)
	}
}

// FaultHook is consulted before each write through a mount. A hook may
// sleep p to stall the write (a saturated disk); returning a non-nil
// error fails the write before it lands.
type FaultHook func(p *sim.Proc, path string, size host.Bytes) error

// Mount is a union view: a writable upper layer over read-only lowers.
// Lookups go top-down; writes land in the upper via copy-on-write.
type Mount struct {
	h        *host.Host
	name     string
	layers   []*Layer // [0] = upper, rest lower in priority order
	directIO bool
	fault    FaultHook
}

// SetFault installs a write fault hook (nil removes it). Typically wired
// to a faults.Injector via its FSHook adapter.
func (m *Mount) SetFault(h FaultHook) { m.fault = h }

// SetDirectIO makes the mount bypass the host page cache. A hypervisor's
// virtual-disk path (VirtualBox VDI) reads media directly, so two VMs
// never share cached blocks the way containers sharing a layer do.
func (m *Mount) SetDirectIO(v bool) { m.directIO = v }

// NewMount assembles a union mount on h. upper must be writable; it is the
// container's private delta. lowers are searched in order after upper.
func NewMount(h *host.Host, name string, upper *Layer, lowers ...*Layer) (*Mount, error) {
	if upper == nil {
		return nil, fmt.Errorf("unionfs: mount %q: nil upper layer", name)
	}
	if upper.readOnly {
		return nil, fmt.Errorf("unionfs: mount %q: upper layer %q is read-only", name, upper.name)
	}
	layers := append([]*Layer{upper}, lowers...)
	return &Mount{h: h, name: name, layers: layers}, nil
}

// CloneFrom assembles a COW clone of this mount: a fresh writable upper
// over tmpl (a Snapshot of this mount's upper at capture time) followed by
// this mount's existing lower stack. Clones share every byte below their
// upper — the template and the shared lowers are charged once host-wide —
// and writes land only in the clone's own upper. Whiteouts frozen into
// tmpl keep hiding lower-layer files for the clone, exactly as they did
// for the source mount at capture time.
func (m *Mount) CloneFrom(name string, upper, tmpl *Layer) (*Mount, error) {
	if tmpl == nil {
		return nil, fmt.Errorf("unionfs: clone %q: nil template layer", name)
	}
	lowers := append([]*Layer{tmpl}, m.layers[1:]...)
	nm, err := NewMount(m.h, name, upper, lowers...)
	if err != nil {
		return nil, err
	}
	nm.directIO = m.directIO
	return nm, nil
}

// Name returns the mount identifier.
func (m *Mount) Name() string { return m.name }

// Upper returns the writable top layer.
func (m *Mount) Upper() *Layer { return m.layers[0] }

// Layers returns the stack, upper first.
func (m *Mount) Layers() []*Layer { return m.layers }

func clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// resolve finds the visible copy of p, honoring whiteouts in upper layers.
func (m *Mount) resolve(p string) (*Layer, *node, bool) {
	p = clean(p)
	for _, l := range m.layers {
		if l.wh[p] {
			return nil, nil, false
		}
		if n, ok := l.files[p]; ok {
			return l, n, true
		}
	}
	return nil, nil, false
}

// Stat returns metadata for p through the union view.
func (m *Mount) Stat(p string) (File, bool) {
	l, n, ok := m.resolve(p)
	if !ok {
		return File{}, false
	}
	return File{Path: clean(p), Size: n.size, Layer: l.name}, true
}

// cacheKey identifies a file's backing blocks host-wide. It is layer-
// scoped, so two containers reading the same shared-layer file share cache.
func (m *Mount) cacheKey(l *Layer, p string) string {
	if m.directIO {
		return ""
	}
	return l.name + ":" + p
}

// Read reads the whole file at p, blocking proc for the I/O time.
// efficiency models the runtime's I/O virtualization cost (VMs ≪ 1,
// containers ≈ 1). It returns the file's size and content (nil if the
// image only recorded a size).
func (m *Mount) Read(proc *sim.Proc, p string, efficiency float64) (host.Bytes, []byte, error) {
	l, n, ok := m.resolve(p)
	if !ok {
		return 0, nil, fmt.Errorf("unionfs: %s: %s: no such file", m.name, clean(p))
	}
	n.accessed = true
	n.lastAccess = proc.E.Now()
	if l.inMemory {
		m.h.MemCopy(proc, n.size)
	} else {
		m.h.DiskRead(proc, m.cacheKey(l, clean(p)), n.size, true, efficiency)
	}
	return n.size, n.data, nil
}

// Write creates or replaces p with size bytes (and optional content),
// blocking proc for the I/O time. If the visible copy lives in a lower
// layer, the write copies up into the upper layer first (COW).
func (m *Mount) Write(proc *sim.Proc, p string, size host.Bytes, data []byte, efficiency float64) error {
	p = clean(p)
	if m.fault != nil {
		if err := m.fault(proc, p, size); err != nil {
			return fmt.Errorf("unionfs: %s: writing %s: %w", m.name, p, err)
		}
	}
	upper := m.layers[0]
	if l, n, ok := m.resolve(p); ok && l != upper {
		// Copy-up: read the lower copy, then write the new version.
		if l.inMemory {
			m.h.MemCopy(proc, n.size)
		} else {
			m.h.DiskRead(proc, m.cacheKey(l, p), n.size, true, efficiency)
		}
	}
	if upper.inMemory {
		m.h.MemCopy(proc, size)
	} else {
		m.h.DiskWrite(proc, size, true, efficiency)
		m.h.WarmCache(m.cacheKey(upper, p), size)
	}
	delete(upper.wh, p)
	upper.files[p] = &node{size: size, data: data, accessed: true, lastAccess: proc.E.Now()}
	return nil
}

// Remove deletes p from the union view. If a lower layer still holds the
// file, a whiteout in the upper layer hides it ("burn after reading" for
// offloading I/O uses this).
func (m *Mount) Remove(p string) error {
	p = clean(p)
	upper := m.layers[0]
	_, _, visible := m.resolve(p)
	if !visible {
		return fmt.Errorf("unionfs: %s: %s: no such file", m.name, p)
	}
	delete(upper.files, p)
	// Still visible through a lower layer? Whiteout.
	for _, l := range m.layers[1:] {
		if _, ok := l.files[p]; ok {
			upper.wh[p] = true
			break
		}
	}
	return nil
}

// VisibleSize returns the total size of the union view.
func (m *Mount) VisibleSize() host.Bytes {
	seen := make(map[string]bool)
	var total host.Bytes
	for _, l := range m.layers {
		for p, n := range l.files {
			if seen[p] {
				continue
			}
			seen[p] = true
			if !m.whiteoutAbove(l, p) {
				total += n.size
			}
		}
	}
	return total
}

func (m *Mount) whiteoutAbove(target *Layer, p string) bool {
	for _, l := range m.layers {
		if l == target {
			return false
		}
		if l.wh[p] {
			return true
		}
		if _, ok := l.files[p]; ok {
			return false // shadowed, but not whited out; still visible via upper copy
		}
	}
	return false
}

// List returns the union view's files, sorted by path.
func (m *Mount) List() []File {
	seen := make(map[string]File)
	hidden := make(map[string]bool)
	for _, l := range m.layers {
		for p := range l.wh {
			if _, taken := seen[p]; !taken {
				hidden[p] = true
			}
		}
		for p, n := range l.files {
			if hidden[p] {
				continue
			}
			if _, taken := seen[p]; !taken {
				seen[p] = File{Path: p, Size: n.size, Layer: l.name}
			}
		}
	}
	out := make([]File, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
