package realtime

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"rattrap/internal/cluster"
	"rattrap/internal/offload"
	"rattrap/internal/workload"
)

// helloOverWire dials addr and completes a hello on the given client
// codec, returning the connection pair for the rest of the exchange.
func helloOverWire(t *testing.T, addr string, wire offload.Wire, dev string) (net.Conn, *offload.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := offload.NewConnWire(conn, wire)
	if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: dev}}); err != nil {
		t.Fatal(err)
	}
	return conn, c
}

// execOnce runs one warehouse exchange (pushing code if asked) on an
// already-helloed connection and returns the result.
func execOnce(t *testing.T, c *offload.Conn, app workload.App, seq int) offload.Result {
	t.Helper()
	task := app.NewTask(testRng(seq), seq)
	aid := offload.AID(app.Name(), app.CodeSize())
	if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		AID: aid, App: task.App, Method: task.Method, Seq: task.Seq,
		Params: task.Params, ParamBytes: task.ParamBytes,
		FileBytes: task.FileBytes, RoundTrips: task.RoundTrips, InteractBytes: task.InteractBytes,
	}}); err != nil {
		t.Fatal(err)
	}
	f, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind == offload.KindNeedCode {
		if err := c.Send(offload.Frame{Kind: offload.KindCode, Code: &offload.CodePush{
			AID: aid, App: app.Name(), Size: app.CodeSize(),
		}}); err != nil {
			t.Fatal(err)
		}
		if f, err = c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Kind != offload.KindResult {
		t.Fatalf("expected result, got %s", f.Kind)
	}
	return *f.Result
}

// TestServerWireNegotiation covers the handshake matrix the ISSUE pins:
// binary and gob clients against an auto server, a binary client against
// a gob-pinned server (typed refusal, not a dropped connection), an
// unknown wire version (same), and a mid-handshake disconnect.
func TestServerWireNegotiation(t *testing.T) {
	app, _ := workload.ByName(workload.NameLinpack)

	t.Run("binary client, auto server", func(t *testing.T) {
		_, ln := startServerOpts(t, Options{})
		_, c := helloOverWire(t, ln.Addr().String(), offload.WireBinary, "bin-dev")
		res := execOnce(t, c, app, 0)
		if res.Err != "" || res.Output == "" {
			t.Fatalf("binary request failed: %+v", res)
		}
		// The server mirrored the sniffed codec, so the frames we received
		// negotiated this connection's receive side to binary too — after
		// which our own send codec is what we chose at dial time.
		if got := c.WireName(); got != "binary" {
			t.Fatalf("client WireName = %q, want binary", got)
		}
	})

	t.Run("gob client, auto server", func(t *testing.T) {
		_, ln := startServerOpts(t, Options{})
		_, c := helloOverWire(t, ln.Addr().String(), offload.WireGob, "gob-dev")
		res := execOnce(t, c, app, 0)
		if res.Err != "" || res.Output == "" {
			t.Fatalf("gob request failed: %+v", res)
		}
		if got := c.WireName(); got != "gob" {
			t.Fatalf("client WireName = %q, want gob", got)
		}
	})

	t.Run("binary client, gob-pinned server", func(t *testing.T) {
		_, ln := startServerOpts(t, Options{Wire: offload.WireGob})
		conn, c := helloOverWire(t, ln.Addr().String(), offload.WireBinary, "bin-dev")
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		// The refusal comes back as a gob frame; the binary client's
		// receive side sniffs and reads it.
		f, err := c.Recv()
		if err != nil {
			t.Fatalf("expected a typed protocol error frame, got recv error %v", err)
		}
		if f.Kind != offload.KindResult || f.Result.Code != offload.CodeProtocol {
			t.Fatalf("expected protocol-error result, got %+v", f)
		}
		if !strings.Contains(f.Result.Err, "gob only") {
			t.Fatalf("refusal does not name the policy: %q", f.Result.Err)
		}
	})

	t.Run("unknown wire version", func(t *testing.T) {
		_, ln := startServerOpts(t, Options{})
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Hand-framed binary hello advertising wire version 9.
		payload := []byte{0xB1, 0x09, 0x01, 0x00, 0x01, 'd', 0x09}
		if _, err := conn.Write(append([]byte{byte(len(payload))}, payload...)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := offload.NewConnWire(conn, offload.WireAuto).Recv()
		if err != nil {
			t.Fatalf("expected a typed protocol error frame, got recv error %v", err)
		}
		if f.Kind != offload.KindResult || f.Result.Code != offload.CodeProtocol {
			t.Fatalf("expected protocol-error result, got %+v", f)
		}
		if !strings.Contains(f.Result.Err, "version 9") {
			t.Fatalf("refusal does not name the version: %q", f.Result.Err)
		}
	})

	t.Run("mid-handshake disconnect", func(t *testing.T) {
		srv, ln := startServerOpts(t, Options{})
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		// Declare a 40-byte hello, deliver 2 bytes, hang up.
		if _, err := conn.Write([]byte{40, 0xB1, 0x01}); err != nil {
			t.Fatal(err)
		}
		conn.Close()
		// The server must shrug it off and keep serving.
		_, c := helloOverWire(t, ln.Addr().String(), offload.WireBinary, "after-dc")
		if res := execOnce(t, c, app, 0); res.Err != "" {
			t.Fatalf("request after disconnect: %+v", res)
		}
		// The observation lands just after the result write, so give the
		// writer goroutine a beat before asserting.
		deadline := time.Now().Add(2 * time.Second)
		for srv.Latency().Count() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := srv.Latency().Count(); n != 1 {
			t.Fatalf("latency observations = %d, want only the completed request", n)
		}
	})
}

// TestServerBinaryPipelineAliasing is the -race gate on the zero-copy
// contract: a depth-8 binary pipeline sends requests whose Params all
// alias the connection's recycled read buffers, each with a distinct
// parameter blob. If the server recycled a buffer before its worker
// consumed the params, a worker would decode some other request's
// parameters and return the wrong output (or a decode error) — and the
// race detector would flag the unsynchronized reuse.
func TestServerBinaryPipelineAliasing(t *testing.T) {
	const depth, requests = 8, 48
	_, ln := startServerOpts(t, Options{PipelineDepth: depth})

	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())
	reg := workload.NewRegistry()

	// Distinct params per seq, with the expected output computed locally.
	params := make([][]byte, requests)
	want := make([]string, requests)
	for i := range params {
		params[i] = workload.EncodeLinpackParams(int64(1000+i), 24+i%5)
		m, err := reg.Execute(workload.Task{App: app.Name(), Method: "solve", Params: params[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m.Output
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := make([]string, requests)
	errs := make([]string, requests)
	pc := offload.NewPipelineClient(offload.NewConnWire(conn, offload.WireBinary), depth,
		func(need offload.NeedCode) (offload.CodePush, error) {
			return offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}, nil
		},
		func(res offload.Result) {
			if res.Seq < 0 || res.Seq >= requests {
				t.Errorf("result for unknown seq %d", res.Seq)
				return
			}
			got[res.Seq], errs[res.Seq] = res.Output, res.Err
		})
	if err := pc.Hello("alias-dev"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < requests; i++ {
		if err := pc.Submit(offload.ExecRequest{
			AID: aid, App: app.Name(), Method: "solve", Seq: i,
			Params: params[i], ParamBytes: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < requests; i++ {
		if errs[i] != "" {
			t.Fatalf("request %d failed: %s", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("request %d: output %q, want %q — params were clobbered by buffer reuse", i, got[i], want[i])
		}
	}
}

// repeatStream endlessly replays one encoded frame as the read side and
// discards writes — a loopback stand-in that keeps the hot-path gate
// single-goroutine (testing.AllocsPerRun reads global heap stats, so a
// live server's background goroutines would pollute the measurement).
type repeatStream struct {
	data []byte
	pos  int
}

func (r *repeatStream) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		r.pos = 0
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func (r *repeatStream) Write(p []byte) (int, error) { return len(p), nil }

// TestServerHotPathZeroAlloc extends the zero-alloc gate from frame
// encode to the server's warehouse-hit steady-state frame handling:
// decode an exec frame (binary), route its AID through the shard ring,
// look it up in the dedup window, and encode the result reply — all
// without touching the heap. The full request path including the engine
// dispatch is gated end-to-end (<100 allocs/op) by `rattrap-bench
// -allocs` in ci.sh; this test pins the codec-and-lookup layer to zero.
func TestServerHotPathZeroAlloc(t *testing.T) {
	var enc bytes.Buffer
	params := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := offload.NewConnWire(&enc, offload.WireBinary).Send(offload.Frame{
		Kind: offload.KindExec, Exec: &offload.ExecRequest{
			AID: "a1b2c3d4", App: "Linpack", Method: "solve", Seq: 3,
			Params: params, ParamBytes: 500,
		}}); err != nil {
		t.Fatal(err)
	}
	c := offload.NewConnWire(&repeatStream{data: enc.Bytes()}, offload.WireAuto)
	mem := cluster.NewMembership(4, 0, 1)
	dedup := newDedupCache(64)
	res := offload.Result{Output: "n=64 residual=1.08e-13", ResultBytes: 550}

	hot := func() {
		f, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		req := *f.Exec
		if mem.Primary(req.AID) < 0 {
			t.Fatal("membership routed nowhere")
		}
		key := dedupKey{dev: "phone-1", aid: req.AID, seq: req.Seq}
		if _, hit := dedup.lookup(key); hit {
			t.Fatal("unexpected dedup hit")
		}
		res.Seq = req.Seq
		if err := c.SendResult(&res); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		hot() // warm: intern strings, seat buffers, settle the gob side
	}
	if avg := testing.AllocsPerRun(200, hot); avg != 0 {
		t.Fatalf("warehouse-hit frame path allocates %.1f times per request, want 0", avg)
	}
}

// TestPrecomputeMatchesEngineExecution pins the determinism assumption
// the precompute fast path rests on: for every app, executing a task
// ahead of time yields byte-identical metrics to executing it at
// dispatch, so attaching the precomputed result cannot change outputs.
func TestPrecomputeMatchesEngineExecution(t *testing.T) {
	reg := workload.NewRegistry()
	for _, app := range workload.Apps() {
		for seq := 0; seq < 3; seq++ {
			task := app.NewTask(testRng(seq), seq)
			direct, err := reg.Execute(task)
			if err != nil {
				t.Fatalf("%s: %v", app.Name(), err)
			}
			pre := task
			pre.SetPrecomputed(&workload.Precomputed{Metrics: direct})
			viaPre, err := reg.Execute(pre)
			if err != nil {
				t.Fatalf("%s precomputed: %v", app.Name(), err)
			}
			if fmt.Sprintf("%+v", direct) != fmt.Sprintf("%+v", viaPre) {
				t.Fatalf("%s: precomputed metrics diverge:\n%+v\n%+v", app.Name(), direct, viaPre)
			}
			again, err := reg.Execute(task)
			if err != nil {
				t.Fatalf("%s re-run: %v", app.Name(), err)
			}
			if direct.Output != again.Output || direct.Work != again.Work {
				t.Fatalf("%s: execution not deterministic: %+v vs %+v", app.Name(), direct, again)
			}
		}
	}
}

var _ io.ReadWriter = (*repeatStream)(nil)
