package realtime

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func startServerCfg(t *testing.T, cfg core.Config, opts Options) (*Server, net.Listener) {
	t.Helper()
	srv := NewServerOpts(cfg, 200, nil, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	return srv, ln
}

// TestConnTeardownAbortsQueuedWaiters pins the abort wiring end to end
// under -race: with a single runtime pinned by a slow-loris device, a
// pack of devices parks in the dispatcher's wait ring — then every one of
// them hangs up. Their connection teardowns must fire the per-connection
// abort signal, so the queued waiters return ErrAborted instead of each
// taking a turn executing for a caller that is gone. When the loris is
// finally cut off by its read deadline, the release must skip the corpse
// waiters and a fresh device must be served at once — not after a parade
// of ghost executions.
func TestConnTeardownAbortsQueuedWaiters(t *testing.T) {
	cfg := core.DefaultConfig(core.KindRattrap)
	cfg.MaxRuntimes = 1
	srv, ln := startServerCfg(t, cfg, Options{ReadTimeout: 600 * time.Millisecond})
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())

	// The loris claims the only runtime, is told to push code, and goes
	// silent until the server's read deadline cuts it off.
	loris, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	lc := offload.NewConn(loris)
	task := app.NewTask(testRng(0), 0)
	if err := lc.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: "loris"}}); err != nil {
		t.Fatal(err)
	}
	if err := lc.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		DeviceID: "loris", AID: aid, App: task.App, Method: task.Method,
		Params: task.Params, ParamBytes: task.ParamBytes,
	}}); err != nil {
		t.Fatal(err)
	}
	loris.SetReadDeadline(time.Now().Add(5 * time.Second))
	if f, err := lc.Recv(); err != nil || f.Kind != offload.KindNeedCode {
		t.Fatalf("expected NEED_CODE, got %v / %v", f.Kind, err)
	}

	// The pack queues behind the pinned slot, then vanishes.
	const doomed = 6
	pack := make([]net.Conn, 0, doomed)
	for i := 0; i < doomed; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := offload.NewConn(conn)
		dev := fmt.Sprintf("doomed-%d", i)
		dtask := app.NewTask(testRng(i+1), i+1)
		if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: dev}}); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
			DeviceID: dev, AID: aid, App: dtask.App, Method: dtask.Method,
			Seq: i + 1, Params: dtask.Params, ParamBytes: dtask.ParamBytes,
		}}); err != nil {
			t.Fatal(err)
		}
		pack = append(pack, conn)
	}
	// Wait until the whole pack is parked in the wait ring.
	pl := srv.Platform()
	deadline := time.Now().Add(10 * time.Second)
	for {
		qlen := 0
		srv.Driver().Do("probe-queue", func(p *sim.Proc) { qlen = pl.QueueLength() })
		if qlen >= doomed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pack never queued: queue length %d", qlen)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var wg sync.WaitGroup
	for _, conn := range pack {
		conn := conn
		wg.Add(1)
		go func() { defer wg.Done(); conn.Close() }()
	}
	wg.Wait()

	// A fresh device must get served once the loris deadline frees the
	// slot — one release, straight past the aborted corpses.
	res, _ := runClient(t, ln.Addr().String(), "fresh", app, 99)
	if res.Err != "" || res.Output == "" {
		t.Fatalf("fresh request after the abort storm failed: %+v", res)
	}

	// The ring must fully drain and nothing may be left busy.
	deadline = time.Now().Add(10 * time.Second)
	for {
		qlen, busy := 0, 0
		srv.Driver().Do("probe-drain", func(p *sim.Proc) {
			qlen = pl.QueueLength()
			busy = pl.DB().StateCount(core.LifecycleActive)
		})
		if qlen == 0 && busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue/busy never drained: queue %d, active %d", qlen, busy)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardedAutoscaleConcurrent is the elastic-pool -race stress: a
// 4-shard server with the control loop running on every shard, driven by
// 8 concurrent pipelined devices with unique AIDs. All requests must
// succeed while the loops grow the pools, and once the load stops every
// shard must shrink back to zero.
func TestShardedAutoscaleConcurrent(t *testing.T) {
	cfg := core.DefaultConfig(core.KindRattrap)
	cfg.MaxRuntimes = 2
	cfg.MinRuntimes = 0
	cfg.Autoscale = core.AutoscaleConfig{Enabled: true, Interval: 100 * time.Millisecond}
	srv, ln := startServerCfg(t, cfg, Options{PipelineDepth: 2, Shards: 4})
	app, _ := workload.ByName(workload.NameLinpack)
	baseAID := offload.AID(app.Name(), app.CodeSize())

	const (
		devices  = 8
		requests = 6
	)
	var wg sync.WaitGroup
	errs := make([]error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = driveShardedDevice(ln.Addr().String(), fmt.Sprintf("as-dev-%d", i),
				fmt.Sprintf("%s#d%d", baseAID, i), app, requests)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
	}
	// The DB census is no good for counting here — the control loops
	// reclaim idle runtimes (and their records) as soon as the load
	// stops — so count served requests at the server's histogram.
	if n := srv.Latency().Count(); n != devices*requests {
		t.Fatalf("latency observations = %d, want %d", n, devices*requests)
	}

	// Load gone: every shard's control loop must scale its pool to zero.
	// Virtual time is paced at 200x, so the shrink hysteresis elapses in
	// wall milliseconds.
	deadline := time.Now().Add(15 * time.Second)
	for {
		total := 0
		for s := 0; s < srv.Shards(); s++ {
			s := s
			srv.shards[s].drv.Do("probe-pool", func(p *sim.Proc) {
				total += srv.ShardPlatform(s).RuntimeCount()
			})
		}
		if total == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pools never scaled to zero: %d runtime(s) left", total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
