package realtime

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rattrap/internal/offload"
	"rattrap/internal/workload"
)

// TestServerShardedConcurrent is the cluster -race stress: a 4-shard
// server driven by 8 concurrent device connections, each offloading its
// own app (unique AID) through a pipelined client. Every shard runs its
// own engine and pacing driver, so this exercises the shard routing, the
// per-shard drivers and the shared output path under real goroutine
// concurrency; `go test -race` is the configuration CI runs it in.
func TestServerShardedConcurrent(t *testing.T) {
	srv, ln := startServerOpts(t, Options{PipelineDepth: 2, Shards: 4})
	if got := srv.Shards(); got != 4 {
		t.Fatalf("Shards() = %d", got)
	}
	app, _ := workload.ByName(workload.NameLinpack)
	baseAID := offload.AID(app.Name(), app.CodeSize())

	const (
		devices  = 8
		requests = 6
	)
	var wg sync.WaitGroup
	errs := make([]error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = driveShardedDevice(ln.Addr().String(), fmt.Sprintf("sh-dev-%d", i),
				fmt.Sprintf("%s#d%d", baseAID, i), app, requests)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
	}

	if n := srv.Latency().Count(); n != devices*requests {
		t.Fatalf("latency observations = %d, want %d", n, devices*requests)
	}
	// The unique AIDs must have spread the pool over several shards, and
	// every runtime must carry its shard's CID prefix.
	used, execs := 0, 0
	for s := 0; s < srv.Shards(); s++ {
		snap := srv.ShardPlatform(s).DB().Snapshot()
		execs += snap.TotalExec
		if len(snap.Runtimes) == 0 {
			continue
		}
		used++
		for _, rt := range srv.ShardPlatform(s).DB().List() {
			if want := fmt.Sprintf("s%d-", s); len(rt.CID) < len(want) || rt.CID[:len(want)] != want {
				t.Fatalf("shard %d runtime %q missing CID prefix %q", s, rt.CID, want)
			}
		}
	}
	if used < 2 {
		t.Fatalf("all load landed on %d shard(s)", used)
	}
	if execs != devices*requests {
		t.Fatalf("executions across shards = %d, want %d", execs, devices*requests)
	}
}

// driveShardedDevice pumps `requests` pipelined execs for one device under
// a synthetic per-device AID (code pushes answer with the same AID, so the
// warehouse stores one entry per device on its owning shard).
func driveShardedDevice(addr, deviceID, aid string, app workload.App, requests int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	var badResult error
	pc := offload.NewPipelineClient(offload.NewConn(conn), 2,
		func(need offload.NeedCode) (offload.CodePush, error) {
			return offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}, nil
		},
		func(res offload.Result) {
			if res.Err != "" && badResult == nil {
				badResult = fmt.Errorf("seq %d: cloud error: %s", res.Seq, res.Err)
			}
		})
	if err := pc.Hello(deviceID); err != nil {
		return err
	}
	for seq := 0; seq < requests; seq++ {
		task := app.NewTask(testRng(seq), seq)
		if err := pc.Submit(offload.ExecRequest{
			DeviceID: deviceID, AID: aid, App: task.App, Method: task.Method,
			Seq: seq, Params: task.Params, ParamBytes: task.ParamBytes,
		}); err != nil {
			return fmt.Errorf("submit %d: %w", seq, err)
		}
	}
	if err := pc.Flush(); err != nil {
		return err
	}
	return badResult
}
