// Package realtime runs the Rattrap platform against the wall clock: a
// Driver paces the discrete-event engine so one virtual second takes one
// real second, and a Server speaks the offload wire protocol over real TCP
// connections. The exact same core.Platform code serves both the
// evaluation harness (pure virtual time) and this path — the Clock/
// Transport split promised in DESIGN.md.
package realtime

import (
	"sync"
	"time"

	"rattrap/internal/sim"
)

// Driver advances an engine in step with the wall clock. All interaction
// with the engine (and anything living on it) must go through Inject.
type Driver struct {
	mu      sync.Mutex
	e       *sim.Engine
	started time.Time
	stop    chan struct{}
	done    chan struct{}
	// Speed scales virtual time: 2.0 runs the platform at twice real time
	// (useful for demos that would otherwise wait out a 30 s VM boot).
	speed float64
}

// NewDriver wraps e. speed < = 0 defaults to 1 (real time).
func NewDriver(e *sim.Engine, speed float64) *Driver {
	if speed <= 0 {
		speed = 1
	}
	return &Driver{e: e, speed: speed, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start begins pacing. The engine's virtual time zero is "now".
func (d *Driver) Start() {
	d.started = time.Now()
	go d.loop()
}

func (d *Driver) loop() {
	defer close(d.done)
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			target := sim.Time(float64(time.Since(d.started)) * d.speed)
			d.mu.Lock()
			if d.e.Now() < target {
				d.e.RunUntil(target)
			}
			d.mu.Unlock()
		}
	}
}

// Stop halts pacing and waits for the loop to exit.
func (d *Driver) Stop() {
	close(d.stop)
	<-d.done
}

// Inject runs fn as a simulated process and returns a channel that closes
// when the process finishes. Callers block on the channel from ordinary
// goroutines; the process itself runs under the driver's pacing, so its
// virtual-time costs (boots, transfers, compute) take real time.
func (d *Driver) Inject(name string, fn func(p *sim.Proc)) <-chan struct{} {
	ch := make(chan struct{})
	d.mu.Lock()
	d.e.Spawn(name, func(p *sim.Proc) {
		defer close(ch)
		fn(p)
	})
	d.mu.Unlock()
	return ch
}

// Do injects fn and waits for it to complete.
func (d *Driver) Do(name string, fn func(p *sim.Proc)) {
	<-d.Inject(name, fn)
}

// Now returns the engine's current virtual time (paced).
func (d *Driver) Now() sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.e.Now()
}
