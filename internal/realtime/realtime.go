// Package realtime runs the Rattrap platform against the wall clock: a
// Driver paces the discrete-event engine so one virtual second takes one
// real second, and a Server speaks the offload wire protocol over real TCP
// connections. The exact same core.Platform code serves both the
// evaluation harness (pure virtual time) and this path — the Clock/
// Transport split promised in DESIGN.md.
//
// # Pacing architecture
//
// The driver is event-driven, not tick-driven. Its loop asks the engine
// for the next pending event (sim.Engine.NextEventAt), converts that
// virtual instant into a wall deadline, and sleeps on a timer armed for
// exactly that deadline. Injecting work wakes the loop immediately, and
// the injector itself drains all work that is already due — so a request
// whose engine-side cost is zero virtual time (e.g. a warehouse-hit
// dispatch) completes synchronously on the caller's goroutine with no
// timer involved at all. When the engine is idle and nothing is being
// injected, the driver holds no timer and performs no wakeups: idle CPU
// is zero.
//
// # Engine ownership
//
// The Driver owns its engine. After Start, every interaction with the
// engine (and with anything living on it: the platform, sessions,
// signals) must happen either inside the driver's loop or inside a
// function passed to Inject/Do — all of which run with the driver's mutex
// held. Calling Driver methods (Inject, Do, Now, Stop) from *inside* an
// injected function deadlocks by construction; injected code must use the
// sim.Proc it is handed instead.
package realtime

import (
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rattrap/internal/sim"
)

// clock abstracts the wall clock so driver tests can run on a fake one.
type clock interface {
	Now() time.Time
	// Timer returns a channel that delivers once after d, plus a cancel
	// function releasing the timer early.
	Timer(d time.Duration) (<-chan time.Time, func())
}

// syncSleepMax is the longest wait realClock serves with a blocking
// nanosleep on the caller's goroutine instead of a Go timer. Go's timer
// machinery wakes through the netpoller, whose granularity on shared
// vCPUs overshoots sub-millisecond deadlines by 0.2–1 ms — more than the
// deadline itself for the gaps the pacer plans between pipelined
// completions. A raw nanosleep rides the kernel's hrtimers and comes
// back in tens of microseconds. Past this threshold the relative error
// of the timer path is small and the loop stays interruptible.
const syncSleepMax = 2 * time.Millisecond

// realClock reuses one timer across rounds — the pacer plans a sleep per
// event, and a fresh time.Timer each round puts two heap objects on the
// steady-state request path. Reuse makes Timer single-owner: only the
// driver loop may call it, and never with a previous round's timer still
// armed (the loop always receives or cancels before re-planning). A tick
// that races cancel can leave a stale value in the channel; the drains
// below sweep it, and at worst the loop wakes early once and re-plans,
// which is harmless by design.
//
// Short waits (≤ syncSleepMax) are served synchronously: Timer blocks in
// a raw nanosleep right here, on the loop's goroutine, then returns a
// channel that already holds the tick. The loop was about to park on
// that channel anyway, so blocking it early costs nothing; what it buys
// is the kernel's hrtimer precision instead of the netpoller's. The
// trade is interruptibility — a stop or wake arriving mid-sleep waits it
// out — which syncSleepMax bounds below the overshoot the netpoller path
// imposed on every short wake regardless. The idle case is untouched: no
// pending event, no Timer call, zero CPU.
type realClock struct {
	t *time.Timer
	// tick carries the pre-fired tick of a synchronous sleep; capacity 1,
	// swept by cancel, so at most one stale value can exist and the loop
	// shrugs off a spurious wake by re-planning.
	tick chan time.Time
}

func (c *realClock) Now() time.Time { return time.Now() }

func (c *realClock) Timer(d time.Duration) (<-chan time.Time, func()) {
	if d <= syncSleepMax {
		ts := syscall.NsecToTimespec(int64(d))
		_ = syscall.Nanosleep(&ts, nil)
		if c.tick == nil {
			c.tick = make(chan time.Time, 1)
		}
		select {
		case c.tick <- time.Now():
		default:
		}
		return c.tick, func() {
			select {
			case <-c.tick:
			default:
			}
		}
	}
	if c.t == nil {
		c.t = time.NewTimer(d)
	} else {
		if !c.t.Stop() {
			select {
			case <-c.t.C:
			default:
			}
		}
		c.t.Reset(d)
	}
	return c.t.C, func() {
		if !c.t.Stop() {
			select {
			case <-c.t.C:
			default:
			}
		}
	}
}

// Driver advances an engine in step with the wall clock. All interaction
// with the engine (and anything living on it) must go through Inject/Do;
// see the package comment for the ownership invariant.
type Driver struct {
	mu      sync.Mutex
	e       *sim.Engine
	started time.Time
	clk     clock
	// Speed scales virtual time: 2.0 runs the platform at twice real time
	// (useful for demos that would otherwise wait out a 30 s VM boot).
	speed float64

	wake     chan struct{} // capacity 1: kicks the loop to re-plan its sleep
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// ticker selects the legacy poll-based loop (2 ms quantum). It is kept
	// only as the baseline for BenchmarkRealtimeRoundtrip and
	// `rattrap-bench -realtime`; new code should never set it.
	ticker bool

	// timerWakeups counts loop iterations caused by a timer firing —
	// the observable for "no wakeups while idle".
	timerWakeups atomic.Int64
}

// NewDriver wraps e with the event-driven pacing loop. speed <= 0
// defaults to 1 (real time).
func NewDriver(e *sim.Engine, speed float64) *Driver {
	if speed <= 0 {
		speed = 1
	}
	return &Driver{
		e:     e,
		speed: speed,
		clk:   &realClock{},
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// NewTickerDriver wraps e with the legacy 2 ms polling loop. It exists so
// benchmarks can measure the event-driven loop against the architecture
// it replaced; it quantizes every engine interaction to the tick and
// burns a wakeup every 2 ms even when idle.
func NewTickerDriver(e *sim.Engine, speed float64) *Driver {
	d := NewDriver(e, speed)
	d.ticker = true
	return d
}

// Start begins pacing. The engine's virtual time zero is "now".
func (d *Driver) Start() {
	d.started = d.clk.Now()
	if d.ticker {
		go d.tickerLoop()
		return
	}
	go d.loop()
}

// wallTarget converts the current wall clock into the virtual instant the
// engine should have reached. Callers must hold d.mu.
func (d *Driver) wallTarget() sim.Time {
	return sim.Time(float64(d.clk.Now().Sub(d.started)) * d.speed)
}

// wallDeadline converts a virtual instant into the wall-clock moment it
// is due. Callers must hold d.mu.
func (d *Driver) wallDeadline(t sim.Time) time.Time {
	return d.started.Add(time.Duration(float64(t) / d.speed))
}

// advanceLocked runs the engine up to the current wall target, draining
// every event that is already due. Callers must hold d.mu.
func (d *Driver) advanceLocked() {
	target := d.wallTarget()
	if target < d.e.Now() {
		target = d.e.Now()
	}
	d.e.RunUntil(target)
}

// loop is the event-driven pacer: advance, peek the next event, sleep
// until exactly its wall deadline (or until an inject re-plans it).
func (d *Driver) loop() {
	defer close(d.done)
	for {
		d.mu.Lock()
		d.advanceLocked()
		next, ok := d.e.NextEventAt()
		d.mu.Unlock()

		var timerC <-chan time.Time // nil (blocks forever) while idle
		var cancel func()
		if ok {
			// started/speed/clk are immutable after Start, so the deadline
			// math needs no lock.
			wait := d.wallDeadline(next).Sub(d.clk.Now())
			if wait <= 0 {
				// Already due: advance again without sleeping.
				continue
			}
			timerC, cancel = d.clk.Timer(wait)
		}
		select {
		case <-d.stop:
			if cancel != nil {
				cancel()
			}
			return
		case <-d.wake:
			if cancel != nil {
				cancel()
			}
		case <-timerC:
			d.timerWakeups.Add(1)
		}
	}
}

// tickerLoop is the legacy poll-based pacer (baseline only).
func (d *Driver) tickerLoop() {
	defer close(d.done)
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.timerWakeups.Add(1)
			d.mu.Lock()
			d.advanceLocked()
			d.mu.Unlock()
		}
	}
}

// kick wakes the loop so it re-plans its sleep after the event queue
// changed. The channel has capacity 1; a pending kick already covers us.
func (d *Driver) kick() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Stop halts pacing and waits for the loop to exit. Stop is idempotent.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// TimerWakeups reports how many times the pacing loop woke because a
// timer fired. An idle event-driven driver holds at zero; the ticker
// baseline accumulates ~500/s regardless of load.
func (d *Driver) TimerWakeups() int64 { return d.timerWakeups.Load() }

// inject spawns fn under the mutex and synchronously drains all work that
// is due at the current wall target — including fn itself and everything
// it does in zero virtual time. The critical section covers exactly the
// engine interaction; channel/closure setup stays outside it.
func (d *Driver) inject(name string, fn func(p *sim.Proc)) {
	d.mu.Lock()
	d.e.Spawn(name, fn)
	if !d.ticker {
		d.advanceLocked()
	}
	d.mu.Unlock()
	if !d.ticker {
		// The spawned proc may have scheduled future events; make the loop
		// re-plan its sleep around them.
		d.kick()
	}
}

// Inject runs fn as a simulated process and returns a channel that closes
// when the process finishes. Callers block on the channel from ordinary
// goroutines; the process itself runs under the driver's pacing, so its
// virtual-time costs (boots, transfers, compute) take real time. Work
// that is due immediately runs before Inject returns, on the calling
// goroutine.
func (d *Driver) Inject(name string, fn func(p *sim.Proc)) <-chan struct{} {
	ch := make(chan struct{})
	d.inject(name, func(p *sim.Proc) {
		defer close(ch)
		fn(p)
	})
	return ch
}

// donePool recycles completion channels across Do calls. A channel is
// signalled with a buffered send (not a close), received exactly once,
// and is then empty again — safe to reuse.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Do injects fn and waits for it to complete. Unlike Inject it allocates
// nothing on the hot path: the completion channel comes from a pool.
func (d *Driver) Do(name string, fn func(p *sim.Proc)) {
	ch := donePool.Get().(chan struct{})
	d.inject(name, func(p *sim.Proc) {
		defer func() { ch <- struct{}{} }()
		fn(p)
	})
	<-ch
	donePool.Put(ch)
}

// Now returns the engine's current virtual time, advancing the engine to
// the present wall target first so the reading tracks the wall clock even
// while the loop sleeps toward a distant event. Like Inject, it must not
// be called from inside an injected function.
func (d *Driver) Now() sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.ticker {
		d.advanceLocked()
	}
	return d.e.Now()
}
