package realtime

import (
	"log"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func TestDriverPacesVirtualTime(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDriver(e, 50) // 50x so the test stays fast
	d.Start()
	defer d.Stop()
	done := d.Inject("sleeper", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond) // 10ms wall at 50x
	})
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("paced proc never completed")
	}
	if d.Now() < sim.Time(500*time.Millisecond) {
		t.Fatalf("virtual clock %v did not reach the sleep end", d.Now())
	}
}

func TestDriverDoRunsInOrder(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDriver(e, 100)
	d.Start()
	defer d.Stop()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		d.Do("step", func(p *sim.Proc) { got = append(got, i) })
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Do calls out of order: %v", got)
		}
	}
}

// runClient drives one full offload exchange against addr.
func runClient(t *testing.T, addr, deviceID string, app workload.App, seq int) (offload.Result, bool) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := offload.NewConn(conn)
	if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: deviceID}}); err != nil {
		t.Fatal(err)
	}
	task := app.NewTask(testRng(seq), seq)
	aid := offload.AID(app.Name(), app.CodeSize())
	req := offload.ExecRequest{
		DeviceID: deviceID, AID: aid, App: task.App, Method: task.Method,
		Seq: task.Seq, Params: task.Params, ParamBytes: task.ParamBytes,
		FileBytes: task.FileBytes, RoundTrips: task.RoundTrips, InteractBytes: task.InteractBytes,
	}
	if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &req}); err != nil {
		t.Fatal(err)
	}
	f, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	neededCode := false
	if f.Kind == offload.KindNeedCode {
		neededCode = true
		if err := c.Send(offload.Frame{Kind: offload.KindCode, Code: &offload.CodePush{
			AID: aid, App: app.Name(), Size: app.CodeSize(),
		}}); err != nil {
			t.Fatal(err)
		}
		f, err = c.Recv()
		if err != nil {
			t.Fatal(err)
		}
	}
	if f.Kind != offload.KindResult {
		t.Fatalf("expected result, got %s", f.Kind)
	}
	return *f.Result, neededCode
}

func testRng(seq int) *rand.Rand { return rand.New(rand.NewSource(int64(seq + 1))) }

func TestServerEndToEndOverTCP(t *testing.T) {
	cfg := core.DefaultConfig(core.KindRattrap)
	srv := NewServer(cfg, 200, log.New(testWriter{t}, "rattrapd: ", 0)) // 200x time for a fast boot
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer ln.Close()

	app, _ := workload.ByName(workload.NameLinpack)
	res, needed := runClient(t, ln.Addr().String(), "phone-1", app, 0)
	if res.Err != "" {
		t.Fatalf("cloud error: %s", res.Err)
	}
	if !needed {
		t.Fatal("first request should transfer code")
	}
	if !strings.Contains(res.Output, "residual=") {
		t.Fatalf("output = %q", res.Output)
	}
	// Second request from another device: the code is already on the
	// platform (warehouse + affinity), so no duplicate transfer.
	res, needed = runClient(t, ln.Addr().String(), "phone-2", app, 1)
	if res.Err != "" || res.Output == "" {
		t.Fatalf("second request: %+v", res)
	}
	if needed {
		t.Fatal("second request re-transferred code despite the warehouse")
	}
	if entries, _, _ := srv.Platform().Warehouse().Stats(); entries != 1 {
		t.Fatalf("warehouse entries=%d, want 1", entries)
	}
}

func TestServerRejectsProtocolViolations(t *testing.T) {
	srv := NewServer(core.DefaultConfig(core.KindRattrap), 200, nil)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := offload.NewConn(conn)
	// Exec before Hello: the server must explain the violation in an
	// error Result frame, then drop the connection.
	app, _ := workload.ByName(workload.NameChess)
	task := app.NewTask(testRng(0), 0)
	c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		AID: "x", App: task.App, Method: task.Method, Params: task.Params,
	}})
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := c.Recv()
	if err != nil {
		t.Fatalf("expected a protocol-error result frame, got %v", err)
	}
	if f.Kind != offload.KindResult || f.Result.Code != offload.CodeProtocol || f.Result.Err == "" {
		t.Fatalf("violation reply = %+v, want a CodeProtocol result", f)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("server kept the connection open after a protocol violation")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// TestServerCloseDrainsInflightHandlers: Close must wait for connection
// handlers that are mid-request (inside driver injections) before it
// stops the driver — otherwise the handler's deferred release would race
// a dead driver.
func TestServerCloseDrainsInflightHandlers(t *testing.T) {
	srv := NewServer(core.DefaultConfig(core.KindRattrap), 200, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer ln.Close()

	app, _ := workload.ByName(workload.NameLinpack)
	inFlight := make(chan struct{})
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Error(err)
			close(inFlight)
			return
		}
		defer conn.Close()
		c := offload.NewConn(conn)
		c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: "d"}})
		task := app.NewTask(testRng(0), 0)
		aid := offload.AID(app.Name(), app.CodeSize())
		c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
			AID: aid, App: task.App, Method: task.Method, Seq: task.Seq,
			Params: task.Params, ParamBytes: task.ParamBytes,
		}})
		close(inFlight)
		// The server is being closed under us; any outcome (result,
		// error, EOF) is acceptable — the point is that Close copes with
		// a handler mid-request.
		c.Recv()
	}()

	<-inFlight
	time.Sleep(3 * time.Millisecond) // let the handler enter the platform

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(20 * time.Second):
		t.Fatal("Close did not return: in-flight handler drain hangs")
	}
	ln.Close() // the listener belongs to the caller; Accept unblocks now
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after Close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	<-clientDone
}

// TestServerRecordsLatency: every exec request lands one observation in
// the server's latency histogram.
func TestServerRecordsLatency(t *testing.T) {
	srv := NewServer(core.DefaultConfig(core.KindRattrap), 500, nil)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer ln.Close()

	app, _ := workload.ByName(workload.NameLinpack)
	for i := 0; i < 3; i++ {
		if res, _ := runClient(t, ln.Addr().String(), "phone-1", app, i); res.Err != "" {
			t.Fatalf("request %d: %s", i, res.Err)
		}
	}
	h := srv.Latency()
	if h.Count() != 3 {
		t.Fatalf("latency observations = %d, want 3", h.Count())
	}
	if h.Quantile(0.5) <= 0 || h.Max() <= 0 {
		t.Fatalf("degenerate histogram: %s", h)
	}
}
