package realtime

import (
	"sync"
	"testing"
	"time"

	"rattrap/internal/sim"
)

// fakeClock is a manually advanced wall clock: tests freeze time, inspect
// the timers the driver arms, and fire them by advancing.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Time
	ch      chan time.Time
	fired   bool
	stopped bool
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Timer(d time.Duration) (<-chan time.Time, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t.ch, func() {
		c.mu.Lock()
		t.stopped = true
		c.mu.Unlock()
	}
}

// Advance moves the clock and fires every due timer.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.timers {
		if !t.fired && !t.stopped && !t.at.After(c.now) {
			t.fired = true
			t.ch <- c.now
		}
	}
}

// armed reports how many live timers are pending.
func (c *fakeClock) armed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			n++
		}
	}
	return n
}

// TestDriverWakeOnInjectNotTickQuantized is the fake-clock pacing test:
// with the wall clock frozen solid — no tick, no timer can ever fire — a
// zero-virtual-time injection must still complete, because the injector
// drains due work synchronously. Under the old 2 ms ticker loop this
// would hang forever.
func TestDriverWakeOnInjectNotTickQuantized(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDriver(e, 1)
	d.clk = newFakeClock()
	d.Start()
	defer d.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Do("warehouse-hit", func(p *sim.Proc) {}) // zero virtual time
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("zero-virtual-time Do did not complete with the clock frozen: inject latency is tick-quantized")
	}
	if w := d.TimerWakeups(); w != 0 {
		t.Fatalf("timer wakeups = %d, want 0 (clock never moved)", w)
	}
}

// TestDriverPacesSleepOnFakeClock proves the loop sleeps until exactly
// the next event's wall deadline: a 300 ms virtual sleep completes when —
// and only when — the fake clock crosses 300 ms.
func TestDriverPacesSleepOnFakeClock(t *testing.T) {
	e := sim.NewEngine(1)
	fc := newFakeClock()
	d := NewDriver(e, 1)
	d.clk = fc
	d.Start()
	defer d.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Do("sleeper", func(p *sim.Proc) { p.Sleep(300 * time.Millisecond) })
	}()

	// The loop must arm a timer for the sleep's deadline.
	deadline := time.Now().Add(5 * time.Second)
	for fc.armed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("driver never armed a timer for the pending event")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("virtual sleep completed before the wall clock reached it")
	default:
	}

	fc.Advance(300 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("virtual sleep did not complete after the clock crossed its deadline")
	}
	if d.Now() < sim.Time(300*time.Millisecond) {
		t.Fatalf("virtual clock %v did not reach the sleep end", d.Now())
	}
}

// TestDriverIdleHoldsNoTimer: an idle event-driven driver performs zero
// timer wakeups — the "no ticker" acceptance criterion. The ticker
// baseline burns them constantly, which keeps the comparison honest.
func TestDriverIdleHoldsNoTimer(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDriver(e, 1)
	d.Start()
	time.Sleep(60 * time.Millisecond)
	_ = d.Now()
	time.Sleep(20 * time.Millisecond)
	if w := d.TimerWakeups(); w != 0 {
		t.Fatalf("idle driver fired %d timer wakeups, want 0", w)
	}
	d.Stop()

	te := sim.NewEngine(1)
	td := NewTickerDriver(te, 1)
	td.Start()
	time.Sleep(60 * time.Millisecond)
	td.Stop()
	if td.TimerWakeups() == 0 {
		t.Fatal("ticker baseline reported no wakeups; instrumentation broken")
	}
}

// TestDriverZeroTimeDoLatency: 100 back-to-back zero-virtual-time Do
// calls must complete far faster than one tick each (the old loop's
// floor was ~2 ms per engine interaction).
func TestDriverZeroTimeDoLatency(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDriver(e, 1)
	d.Start()
	defer d.Stop()
	start := time.Now()
	for i := 0; i < 100; i++ {
		d.Do("noop", func(p *sim.Proc) {})
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("100 zero-time Do calls took %v; inject latency looks tick-quantized", el)
	}
}

// TestDriverConcurrentInjectNowStop exercises the mutex discipline under
// -race: parallel injectors, Now pollers, and an idempotent Stop.
func TestDriverConcurrentInjectNowStop(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDriver(e, 2000) // fast pacing keeps the virtual sleeps cheap
	d.Start()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				d.Do("w", func(p *sim.Proc) {
					p.Sleep(time.Duration(i%3) * time.Millisecond)
				})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last sim.Time
			for i := 0; i < 200; i++ {
				now := d.Now()
				if now < last {
					t.Error("virtual time went backwards")
					return
				}
				last = now
			}
		}()
	}
	wg.Wait()
	d.Stop()
	d.Stop() // idempotent
}
