package realtime

import (
	"testing"

	"rattrap/internal/core"
	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/workload"
)

// chunkExchange runs one delta-push request on an already-helloed
// connection: exec, NEED_CODE, chunk offer, chunk-need reply, code frame,
// result. It returns the negotiated need and the final result.
func chunkExchange(t *testing.T, c *offload.Conn, app workload.App, seq int, size host.Bytes) (offload.ChunkOffer, offload.ChunkNeed, offload.Result) {
	t.Helper()
	return chunkExchangeHashes(t, c, app, seq, size, offload.SyntheticManifest(app.Name(), size))
}

// chunkExchangeHashes is chunkExchange with an explicit offered hash list,
// letting tests send degenerate offers a real device never would.
func chunkExchangeHashes(t *testing.T, c *offload.Conn, app workload.App, seq int, size host.Bytes, hashes []uint64) (offload.ChunkOffer, offload.ChunkNeed, offload.Result) {
	t.Helper()
	task := app.NewTask(testRng(seq), seq)
	aid := offload.AID(app.Name(), size)
	if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		AID: aid, App: task.App, Method: task.Method, Seq: task.Seq,
		Params: task.Params, ParamBytes: task.ParamBytes,
		FileBytes: task.FileBytes, RoundTrips: task.RoundTrips, InteractBytes: task.InteractBytes,
	}}); err != nil {
		t.Fatal(err)
	}
	f, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != offload.KindNeedCode {
		t.Fatalf("expected NEED_CODE, got %s", f.Kind)
	}
	offer := offload.ChunkOffer{
		AID: aid, App: app.Name(), Size: size, Seq: task.Seq,
		Hashes: hashes,
	}
	if err := c.Send(offload.ChunkOfferFrame(&offer)); err != nil {
		t.Fatal(err)
	}
	if f, err = c.Recv(); err != nil {
		t.Fatal(err)
	}
	need, err := offload.DecodeChunkNeed(f)
	if err != nil {
		t.Fatalf("expected chunk-need reply: %v (kind %s)", err, f.Kind)
	}
	if err := c.Send(offload.Frame{Kind: offload.KindCode, Code: &offload.CodePush{
		AID: aid, App: app.Name(), Size: size, Seq: task.Seq,
	}}); err != nil {
		t.Fatal(err)
	}
	if f, err = c.Recv(); err != nil {
		t.Fatal(err)
	}
	if f.Kind != offload.KindResult {
		t.Fatalf("expected result, got %s", f.Kind)
	}
	return offer, need, *f.Result
}

// TestServerChunkedDeltaPush drives the content-addressed delta push over
// a real connection: the first family member uploads every chunk, the
// second (same app, different code size) is told to send only its unique
// tail — under 30% of the full blob, the ISSUE's delta criterion.
func TestServerChunkedDeltaPush(t *testing.T) {
	app, _ := workload.ByName(workload.NameLinpack)
	cfg := core.DefaultConfig(core.KindRattrap)
	cfg.ChunkedPush = true
	_, ln := startServerCfg(t, cfg, Options{})
	_, c := helloOverWire(t, ln.Addr().String(), offload.WireBinary, "delta-dev")

	size1 := 5 * host.MB
	offer1, need1, res1 := chunkExchange(t, c, app, 0, size1)
	if res1.Err != "" {
		t.Fatalf("first request failed: %+v", res1)
	}
	if !need1.Supported {
		t.Fatal("server declined chunk negotiation with ChunkedPush on")
	}
	if got, want := len(need1.Missing), len(offer1.Hashes); got != want {
		t.Fatalf("cold store missing %d chunks, offered %d", got, want)
	}

	size2 := size1 + 512*host.KB
	offer2, need2, res2 := chunkExchange(t, c, app, 1, size2)
	if res2.Err != "" {
		t.Fatalf("family request failed: %+v", res2)
	}
	if !need2.Supported {
		t.Fatal("server declined the second negotiation")
	}
	delta := offload.DeltaBytes(offer2, need2.Missing)
	if ratio := float64(delta) / float64(size2); ratio >= 0.30 {
		t.Fatalf("family delta ratio %.2f, want < 0.30 (%d of %d bytes)", ratio, delta, size2)
	}
}

// TestServerDegenerateChunkOffer pins the review-found crash: an offer
// whose hash list cannot describe its size — empty Params (which the wire
// codec accepts) or a truncated manifest — must be answered
// Supported=false rather than reach the warehouse's chunk staging, and
// the full code push that follows still completes the request.
func TestServerDegenerateChunkOffer(t *testing.T) {
	app, _ := workload.ByName(workload.NameLinpack)
	cfg := core.DefaultConfig(core.KindRattrap)
	cfg.ChunkedPush = true
	_, ln := startServerCfg(t, cfg, Options{})
	_, c := helloOverWire(t, ln.Addr().String(), offload.WireBinary, "degen-dev")

	// No hashes at all.
	size1 := 5 * host.MB
	_, need, res := chunkExchangeHashes(t, c, app, 0, size1, nil)
	if need.Supported {
		t.Fatal("server accepted an empty chunk offer")
	}
	if res.Err != "" || res.Output == "" {
		t.Fatalf("fallback after empty offer failed: %+v", res)
	}

	// A hash list too short for the offered size.
	size2 := size1 + 512*host.KB
	short := offload.SyntheticManifest(app.Name(), size2)[:1]
	_, need, res = chunkExchangeHashes(t, c, app, 1, size2, short)
	if need.Supported {
		t.Fatal("server accepted a truncated chunk offer")
	}
	if res.Err != "" || res.Output == "" {
		t.Fatalf("fallback after truncated offer failed: %+v", res)
	}
}

// TestServerChunkOfferFallback pins the downgrade path: a server without
// ChunkedPush answers the offer Supported=false, and the device's full
// code push that follows still completes the request.
func TestServerChunkOfferFallback(t *testing.T) {
	app, _ := workload.ByName(workload.NameLinpack)
	_, ln := startServerOpts(t, Options{}) // default config: ChunkedPush off
	_, c := helloOverWire(t, ln.Addr().String(), offload.WireGob, "fallback-dev")

	_, need, res := chunkExchange(t, c, app, 0, app.CodeSize())
	if need.Supported {
		t.Fatal("server claimed chunk support with ChunkedPush off")
	}
	if len(need.Missing) != 0 {
		t.Fatalf("unsupported reply carries %d missing chunks", len(need.Missing))
	}
	if res.Err != "" || res.Output == "" {
		t.Fatalf("fallback request failed: %+v", res)
	}
}
