package realtime

import (
	"net"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func startServerOpts(t *testing.T, opts Options) (*Server, net.Listener) {
	t.Helper()
	srv := NewServerOpts(core.DefaultConfig(core.KindRattrap), 200, nil, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	return srv, ln
}

// TestSlowLorisReleasesSlot pins the tentpole's deadline behavior: a
// device that asks for a slot, is told to push code, and then goes silent
// must be cut off by the read deadline and its runtime slot released —
// other devices keep being served instead of queueing behind a corpse.
func TestSlowLorisReleasesSlot(t *testing.T) {
	srv, ln := startServerOpts(t, Options{ReadTimeout: 300 * time.Millisecond})
	cfg := srv.Platform() // MaxRuntimes is the default (>1); the stall pins one slot

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := offload.NewConn(conn)
	app, _ := workload.ByName(workload.NameChess)
	task := app.NewTask(testRng(0), 0)
	aid := offload.AID(app.Name(), app.CodeSize())
	if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: "loris"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		DeviceID: "loris", AID: aid, App: task.App, Method: task.Method,
		Params: task.Params, ParamBytes: task.ParamBytes,
	}}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := c.Recv()
	if err != nil || f.Kind != offload.KindNeedCode {
		t.Fatalf("expected NEED_CODE, got %v / %v", f.Kind, err)
	}
	// Go silent: never push the code. The server must hit its read
	// deadline and release the pinned slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		busy := false
		srv.Driver().Do("probe", func(p *sim.Proc) {
			for _, r := range cfg.DB().List() {
				busy = busy || r.Busy
			}
		})
		if !busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled device still pins a busy runtime after the read deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The latency histogram must not have recorded the aborted request:
	// no result frame was produced.
	if n := srv.Latency().Count(); n != 0 {
		t.Fatalf("latency observations = %d for a request that produced no result", n)
	}
	// A healthy device is served normally afterwards.
	res, _ := runClient(t, ln.Addr().String(), "healthy", app, 1)
	if res.Err != "" || res.Output == "" {
		t.Fatalf("healthy request after loris cleanup: %+v", res)
	}
	if n := srv.Latency().Count(); n != 1 {
		t.Fatalf("latency observations = %d, want exactly the healthy request", n)
	}
}

// TestIdempotentRetryDoesNotReExecute pins the retry-safety contract: a
// second exec frame with the same (DeviceID, AID, Seq) — a client retry
// after a lost reply — is answered from the dedup window without running
// the workload again.
func TestIdempotentRetryDoesNotReExecute(t *testing.T) {
	srv, ln := startServerOpts(t, Options{})
	app, _ := workload.ByName(workload.NameLinpack)

	res1, _ := runClient(t, ln.Addr().String(), "phone-r", app, 0)
	if res1.Err != "" || res1.Output == "" {
		t.Fatalf("first attempt: %+v", res1)
	}
	execs := srv.Platform().DB().Snapshot().TotalExec

	// Same device, same seq — as a retry would send after a lost reply
	// (fresh connection, like a client reconnecting after a fault).
	res2, needed := runClient(t, ln.Addr().String(), "phone-r", app, 0)
	if needed {
		t.Fatal("retry was asked to re-push code")
	}
	if res2.Output != res1.Output || res2.ResultBytes != res1.ResultBytes {
		t.Fatalf("retry result %+v differs from original %+v", res2, res1)
	}
	if after := srv.Platform().DB().Snapshot().TotalExec; after != execs {
		t.Fatalf("retry re-executed: %d -> %d executions", execs, after)
	}

	// A genuinely new sequence number still executes.
	res3, _ := runClient(t, ln.Addr().String(), "phone-r", app, 1)
	if res3.Err != "" {
		t.Fatalf("new seq: %+v", res3)
	}
	if after := srv.Platform().DB().Snapshot().TotalExec; after != execs+1 {
		t.Fatalf("new seq executions = %d, want %d", after, execs+1)
	}
}

// TestDedupCacheEviction pins the window's FIFO bound.
func TestDedupCacheEviction(t *testing.T) {
	key := func(dev string) dedupKey { return dedupKey{dev: dev, aid: "app", seq: 0} }
	dc := newDedupCache(2)
	dc.store(key("a"), offload.Result{Output: "a"})
	dc.store(key("b"), offload.Result{Output: "b"})
	dc.store(key("c"), offload.Result{Output: "c"}) // evicts a
	if _, ok := dc.lookup(key("a")); ok {
		t.Fatal("oldest entry not evicted")
	}
	for _, k := range []string{"b", "c"} {
		if r, ok := dc.lookup(key(k)); !ok || r.Output != k {
			t.Fatalf("entry %q missing after eviction", k)
		}
	}
	dc.store(key("b"), offload.Result{Output: "b2"}) // overwrite, no growth
	if r, _ := dc.lookup(key("b")); r.Output != "b2" {
		t.Fatal("overwrite did not take")
	}
	var nilCache *dedupCache
	nilCache.store(key("x"), offload.Result{})
	if _, ok := nilCache.lookup(key("x")); ok {
		t.Fatal("nil cache should be inert")
	}
}

// TestDedupZeroAlloc gates the idempotency window's hot path: lookup
// (hit and miss) and store — including the at-capacity eviction path —
// must not allocate.
func TestDedupZeroAlloc(t *testing.T) {
	const capacity = 64
	dc := newDedupCache(capacity)
	// Fill to capacity so store exercises FIFO eviction, its steady state
	// on a busy server.
	for i := 0; i < capacity; i++ {
		dc.store(dedupKey{dev: "phone", aid: "app", seq: i}, offload.Result{Output: "x", Seq: i})
	}
	seq := capacity
	if avg := testing.AllocsPerRun(500, func() {
		dc.store(dedupKey{dev: "phone", aid: "app", seq: seq}, offload.Result{Output: "x", Seq: seq})
		seq++
	}); avg != 0 {
		t.Fatalf("store at capacity allocates %.1f times per op, want 0", avg)
	}
	hit := dedupKey{dev: "phone", aid: "app", seq: seq - 1}
	miss := dedupKey{dev: "phone", aid: "app", seq: -1}
	if avg := testing.AllocsPerRun(500, func() {
		dc.lookup(hit)
		dc.lookup(miss)
	}); avg != 0 {
		t.Fatalf("lookup allocates %.1f times per op, want 0", avg)
	}
}

// TestOptionsDefaults pins the zero/negative semantics.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ReadTimeout != 15*time.Second || o.WriteTimeout != 15*time.Second {
		t.Fatalf("default read/write timeouts: %+v", o)
	}
	if o.RequestTimeout != 2*time.Minute || o.IdleTimeout != 0 {
		t.Fatalf("default request/idle timeouts: %+v", o)
	}
	if o.MaxFrame != offload.DefaultMaxFrame || o.DedupWindow != 256 {
		t.Fatalf("default frame/dedup: %+v", o)
	}
	if o.PipelineDepth != 1 {
		t.Fatalf("default pipeline depth: %+v", o)
	}
	d := Options{ReadTimeout: -1, WriteTimeout: -1, RequestTimeout: -1, IdleTimeout: -1, PipelineDepth: -3}.withDefaults()
	if d.ReadTimeout != 0 || d.WriteTimeout != 0 || d.RequestTimeout != 0 || d.IdleTimeout != 0 {
		t.Fatalf("negative should disable: %+v", d)
	}
	if d.PipelineDepth != 1 {
		t.Fatalf("negative pipeline depth should clamp to 1: %+v", d)
	}
}
