package realtime

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/metrics"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// Server serves the offload wire protocol over real connections, backed by
// a paced core.Platform.
type Server struct {
	drv *Driver
	pl  *core.Platform
	log *log.Logger
	lat *metrics.LatencyHistogram

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup // in-flight connection handlers
}

// NewServer builds a platform of the given kind and starts its pacing
// driver. speed scales virtual time (1 = real time).
func NewServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	return newServer(cfg, speed, logger, false)
}

// NewTickerServer is NewServer on the legacy poll-based driver. It exists
// only so benchmarks can compare the event-driven pacing against the
// architecture it replaced.
func NewTickerServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	return newServer(cfg, speed, logger, true)
}

func newServer(cfg core.Config, speed float64, logger *log.Logger, ticker bool) *Server {
	e := sim.NewEngine(1)
	pl := core.New(e, cfg)
	var drv *Driver
	if ticker {
		drv = NewTickerDriver(e, speed)
	} else {
		drv = NewDriver(e, speed)
	}
	drv.Start()
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		drv:   drv,
		pl:    pl,
		log:   logger,
		lat:   metrics.NewLatencyHistogram(),
		conns: make(map[net.Conn]struct{}),
	}
}

// Platform exposes the underlying platform (status endpoints, tests).
func (s *Server) Platform() *core.Platform { return s.pl }

// Driver exposes the pacing driver.
func (s *Server) Driver() *Driver { return s.drv }

// Latency exposes the wall-clock request-latency histogram: one
// observation per exec request, measured from frame receipt to result
// send.
func (s *Server) Latency() *metrics.LatencyHistogram { return s.lat }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close() // lost the race with Close
			return nil
		}
		go func() {
			defer s.untrack(conn)
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				s.log.Printf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// track registers a connection and its handler; it refuses (returning
// false) once the server is closed, so Close's drain can't miss a handler
// started after it swept the connection table.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close closes live connections, waits for every in-flight handler to
// drain, and only then stops the driver — so no handler can touch the
// driver after Stop.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.drv.Stop()
}

// handle speaks the protocol with one device.
func (s *Server) handle(conn net.Conn) error {
	c := offload.NewConn(conn)
	hello, err := c.Recv()
	if err != nil {
		return err
	}
	if hello.Kind != offload.KindHello {
		return fmt.Errorf("realtime: expected hello, got %s", hello.Kind)
	}
	dev := hello.Hello.DeviceID
	s.log.Printf("device %s connected", dev)

	for {
		f, err := c.Recv()
		if err != nil {
			return err
		}
		if f.Kind != offload.KindExec {
			return fmt.Errorf("realtime: expected exec, got %s", f.Kind)
		}
		start := time.Now()
		err = s.serveRequest(c, dev, *f.Exec)
		s.lat.Observe(time.Since(start))
		if err != nil {
			return err
		}
	}
}

// serveRequest runs one request through the platform. Engine-bound steps
// run as injected processes so runtime preparation and execution consume
// real (paced) time; protocol I/O runs between them on the connection's
// goroutine. When no code transfer is needed — the warehouse-hit fast
// path — prepare, execute, and release are batched into a single injected
// process, so the whole request costs one engine interaction instead of
// four.
func (s *Server) serveRequest(c *offload.Conn, dev string, req offload.ExecRequest) error {
	req.DeviceID = dev
	var (
		sess    offload.Session
		prepErr error
		res     offload.Result
		execErr error
		fast    bool
	)
	s.drv.Do("request:"+dev, func(p *sim.Proc) {
		sess, prepErr = s.pl.Prepare(p, req)
		if prepErr != nil || sess.NeedCode() {
			return // code transfer needs protocol I/O; finish below
		}
		res, execErr = sess.Execute(p)
		sess.Release()
		fast = true
	})
	if prepErr != nil {
		return c.Send(offload.Frame{Kind: offload.KindResult, Result: &offload.Result{Err: prepErr.Error()}})
	}
	if fast {
		if execErr != nil {
			res = offload.Result{Err: execErr.Error()}
		}
		return c.Send(offload.Frame{Kind: offload.KindResult, Result: &res})
	}

	// Slow path: the device must transfer the mobile code first.
	released := false
	defer func() {
		if !released {
			s.drv.Do("release:"+dev, func(p *sim.Proc) { sess.Release() })
		}
	}()

	if err := c.Send(offload.Frame{Kind: offload.KindNeedCode}); err != nil {
		return err
	}
	codeFrame, err := c.Recv()
	if err != nil {
		return err
	}
	if codeFrame.Kind != offload.KindCode {
		return fmt.Errorf("realtime: expected code, got %s", codeFrame.Kind)
	}
	var pushErr error
	s.drv.Do("push:"+dev, func(p *sim.Proc) {
		pushErr = sess.PushCode(p, *codeFrame.Code)
	})
	if pushErr != nil {
		return c.Send(offload.Frame{Kind: offload.KindResult, Result: &offload.Result{Err: pushErr.Error()}})
	}

	// Execute and release in one injected process.
	s.drv.Do("exec:"+dev, func(p *sim.Proc) {
		res, execErr = sess.Execute(p)
		sess.Release()
	})
	released = true
	if execErr != nil {
		res = offload.Result{Err: execErr.Error()}
	}
	return c.Send(offload.Frame{Kind: offload.KindResult, Result: &res})
}
