package realtime

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"rattrap/internal/cluster"
	"rattrap/internal/core"
	"rattrap/internal/metrics"
	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// Options tunes the server's robustness envelope. Zero values select the
// defaults below; negative values disable the corresponding guard.
type Options struct {
	// ReadTimeout bounds each intra-request frame read (the hello and the
	// code push). This is the slow-loris guard: a device that goes silent
	// mid-exchange is cut off and its pinned runtime slot released,
	// instead of the handler blocking in Recv forever. Default 15s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (a device that stops draining
	// its socket). Default 15s.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the next exec frame on an open
	// connection. Disabled by default: devices legitimately idle between
	// requests and hold no platform resources while they do.
	IdleTimeout time.Duration
	// RequestTimeout is the wall-clock budget for one request's protocol
	// exchange, from exec-frame receipt to result send. It tightens the
	// read deadline of the code-push exchange. Default 2min.
	RequestTimeout time.Duration
	// MaxFrame caps the decoded size of any received frame (default
	// offload.DefaultMaxFrame).
	MaxFrame int
	// DedupWindow is how many completed results the server remembers for
	// idempotent retries, keyed by (DeviceID, AID, Seq). A retry of a
	// request whose result was computed but lost in transit is answered
	// from this window without re-executing. Default 256 entries.
	DedupWindow int
	// PipelineDepth is how many exec requests one connection may have in
	// flight at once. The connection's decode loop keeps reading frames
	// while requests execute, and results are sent as they complete —
	// possibly out of order, matched by Result.Seq. 1 (the default)
	// preserves strictly serial per-connection behavior. A client must not
	// pipeline deeper than the server's depth: once the decode loop blocks
	// on admission it stops reading frames (including code pushes) until a
	// slot frees.
	PipelineDepth int
	// Wire selects the frame codec policy for accepted connections.
	// The default (offload.WireAuto) sniffs each connection's first frame
	// and mirrors the client's codec, so binary and legacy gob clients
	// coexist. offload.WireGob pins the server to gob and refuses binary
	// hellos with a typed protocol-error frame.
	Wire offload.Wire
	// Shards is how many platform shards the server runs (default 1).
	// Each shard is a full single-node platform — its own engine, pacing
	// driver, runtime pool, warehouse and admission bounds — and requests
	// route to shards by consistent-hashing their AID (cluster.Ring), so
	// each app's warehouse entry lives on exactly one shard. Separate
	// engines mean separate pacing: shards overlap in wall-clock time the
	// way separate servers would. Shard instruments share the server's
	// registry under "shardN." prefixes, and runtime CIDs get "sN-".
	Shards int
}

func (o Options) withDefaults() Options {
	def := func(v *time.Duration, d time.Duration) {
		switch {
		case *v == 0:
			*v = d
		case *v < 0:
			*v = 0 // disabled
		}
	}
	def(&o.ReadTimeout, 15*time.Second)
	def(&o.WriteTimeout, 15*time.Second)
	def(&o.RequestTimeout, 2*time.Minute)
	if o.IdleTimeout < 0 {
		o.IdleTimeout = 0
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = offload.DefaultMaxFrame
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = 256
	}
	if o.PipelineDepth < 1 {
		o.PipelineDepth = 1
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Wire != offload.WireGob && o.Wire != offload.WireBinary {
		o.Wire = offload.WireAuto
	}
	return o
}

// serverShard is one platform with its own engine and pacing driver. All
// cross-goroutine access to the shard's engine goes through drv.Do.
type serverShard struct {
	drv *Driver
	pl  *core.Platform
}

// Server serves the offload wire protocol over real connections, backed by
// one or more paced core.Platform shards (Options.Shards) with requests
// routed by consistent-hashed AID.
type Server struct {
	shards []serverShard
	mem    *cluster.Membership // static membership: epoch-0 routing only
	drv    *Driver             // shard 0 (single-shard accessors, tests)
	pl     *core.Platform      // shard 0
	log    *log.Logger
	lat    *metrics.LatencyHistogram
	opts   Options
	dedup  *dedupCache

	// wreg executes workloads ahead of dispatch, on the request's own
	// goroutine. Apps are deterministic and their shared state is
	// read-only after construction, so one registry serves all
	// connections' workers concurrently; the engine-injected dispatch
	// then returns the precomputed result instead of computing under the
	// serialized driver lock.
	wreg *workload.Registry

	// Observability: the server always carries a registry (it is the
	// platform's observable entry point). Counters are pre-resolved here so
	// the request path never touches the registry's maps.
	reg        *obs.Registry
	cRequests  *obs.Counter // exec frames accepted
	cDedupHits *obs.Counter // requests answered from the idempotency window
	cResults   *obs.Counter // result frames sent (success or typed error)

	mu       sync.Mutex
	closed   bool
	closedCh chan struct{} // closed by Close; unblocks admission waits
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup // in-flight connection handlers
}

// NewServer builds a platform of the given kind and starts its pacing
// driver with default Options. speed scales virtual time (1 = real time).
func NewServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	return newServer(cfg, speed, logger, false, Options{})
}

// NewServerOpts is NewServer with explicit robustness Options.
func NewServerOpts(cfg core.Config, speed float64, logger *log.Logger, opts Options) *Server {
	return newServer(cfg, speed, logger, false, opts)
}

// NewTickerServer is NewServer on the legacy poll-based driver. It exists
// only so benchmarks can compare the event-driven pacing against the
// architecture it replaced.
func NewTickerServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	return newServer(cfg, speed, logger, true, Options{})
}

func newServer(cfg core.Config, speed float64, logger *log.Logger, ticker bool, opts Options) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	opts = opts.withDefaults()
	var dedup *dedupCache
	if opts.DedupWindow > 0 {
		dedup = newDedupCache(opts.DedupWindow)
	}
	reg := obs.NewRegistry()
	shards := make([]serverShard, opts.Shards)
	for i := range shards {
		// Per-shard engines: seed i+1 keeps shard 0 identical to the
		// historical single-engine server.
		e := sim.NewEngine(int64(i) + 1)
		scfg := cfg
		if opts.Shards > 1 {
			scfg.CIDPrefix = cluster.CIDPrefix(i)
		}
		pl := core.New(e, scfg)
		var drv *Driver
		if ticker {
			drv = NewTickerDriver(e, speed)
		} else {
			drv = NewDriver(e, speed)
		}
		drv.Start()
		if opts.Shards > 1 {
			pl.SetObsPrefixed(reg, cluster.ShardPrefix(i))
		} else {
			pl.SetObs(reg)
		}
		shards[i] = serverShard{drv: drv, pl: pl}
	}
	s := &Server{
		shards:     shards,
		mem:        cluster.NewMembership(opts.Shards, 0, 1),
		drv:        shards[0].drv,
		pl:         shards[0].pl,
		log:        logger,
		lat:        metrics.NewLatencyHistogram(),
		opts:       opts,
		dedup:      dedup,
		wreg:       workload.NewRegistry(),
		reg:        reg,
		cRequests:  reg.Counter("server.requests"),
		cDedupHits: reg.Counter("server.dedup_hits"),
		cResults:   reg.Counter("server.results"),
		closedCh:   make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	reg.RegisterHistogram("server.request_wall", s.lat)
	return s
}

// Platform exposes shard 0's platform (status endpoints, tests; the whole
// platform on a single-shard server).
func (s *Server) Platform() *core.Platform { return s.pl }

// Driver exposes shard 0's pacing driver.
func (s *Server) Driver() *Driver { return s.drv }

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// ShardPlatform returns shard i's platform.
func (s *Server) ShardPlatform(i int) *core.Platform { return s.shards[i].pl }

// shardFor routes an AID to its owning shard. The server's membership is
// static (its shards are fixed per-process engines), so this is always an
// epoch-0 route — but it goes through the same Membership type the sim
// cluster reshards, so placement agrees between the two modes.
func (s *Server) shardFor(aid string) (int, serverShard) {
	i := s.mem.Primary(aid)
	return i, s.shards[i]
}

// shardErr tags an error with its shard on multi-shard servers; with one
// shard errors pass through untouched, preserving the single-node
// messages. The wrap keeps errors.Is / errors.As working (ShardError
// unwraps), so typed overload and blocked classification survive routing.
func (s *Server) shardErr(shard int, err error) error {
	if err == nil || len(s.shards) == 1 {
		return err
	}
	return &cluster.ShardError{Shard: shard, Err: err}
}

// Metrics exposes the server's observability registry: platform counters
// and gauges (dispatch.*, warehouse.*, core.*), virtual-time stage
// histograms (stage.*), per-request span folds (server.stage.*), and the
// wall-clock request histogram (server.request_wall).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Latency exposes the wall-clock request-latency histogram: one
// observation per exec request that produced a result frame, measured
// from frame receipt to result send. Requests cut off by timeouts or
// protocol violations are not observed — they would poison the tail with
// connection-failure artifacts that are not request latencies.
func (s *Server) Latency() *metrics.LatencyHistogram { return s.lat }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close() // lost the race with Close
			return nil
		}
		go func() {
			defer s.untrack(conn)
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				s.log.Printf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// track registers a connection and its handler; it refuses (returning
// false) once the server is closed, so Close's drain can't miss a handler
// started after it swept the connection table.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close closes live connections, waits for every in-flight handler to
// drain, and only then stops the driver — so no handler can touch the
// driver after Stop. Closing conns alone cannot unpark a decode loop
// blocked on pipeline admission (it is waiting on a channel, not a read),
// so Close also closes closedCh, which every admission wait selects on.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closedCh)
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, sh := range s.shards {
		sh.drv.Stop()
	}
}

// recv reads one frame, bounding the wait with a read deadline when
// timeout is positive.
func (s *Server) recv(conn net.Conn, c *offload.Conn, timeout time.Duration) (offload.Frame, error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	return c.Recv()
}

// send writes one frame under the configured write deadline.
func (s *Server) send(conn net.Conn, c *offload.Conn, f offload.Frame) error {
	if d := s.opts.WriteTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return c.Send(f)
}

// sendResult writes a result frame under the configured write deadline,
// without building a Frame (the reply hot path; see Conn.SendResult).
func (s *Server) sendResult(conn net.Conn, c *offload.Conn, r *offload.Result) error {
	if d := s.opts.WriteTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return c.SendResult(r)
}

// sendProtocolError tells the device why the server is hanging up, on a
// best-effort basis, before the connection closes. Without this frame a
// misbehaving client sees only a reset and retries the same violation.
func (s *Server) sendProtocolError(conn net.Conn, c *offload.Conn, msg string) {
	_ = s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &offload.Result{
		Err: msg, Code: offload.CodeProtocol,
	}})
}

// handle speaks the protocol with one device. The hello doubles as codec
// negotiation: the connection sniffs the client's codec from the first
// frame and (under WireAuto) mirrors it for replies. A hello the server
// cannot speak — unknown binary wire version, or a binary hello against a
// gob-pinned server — is answered with a typed protocol-error frame in
// gob (the codec every client decodes) rather than a silent hangup.
// After the hello the connection is handed to a connHandler, which
// pipelines up to PipelineDepth requests concurrently.
func (s *Server) handle(conn net.Conn) error {
	c := offload.NewConnWireLimit(conn, s.opts.Wire, s.opts.MaxFrame)
	hello, err := s.recv(conn, c, s.opts.ReadTimeout)
	if err != nil {
		var wve *offload.WireVersionError
		if errors.As(err, &wve) {
			s.sendProtocolError(conn, c, wve.Error())
		}
		return err
	}
	if hello.Kind != offload.KindHello {
		msg := fmt.Sprintf("realtime: expected hello, got %s", hello.Kind)
		s.sendProtocolError(conn, c, msg)
		return errors.New(msg)
	}
	dev := hello.Hello.DeviceID
	s.log.Printf("device %s connected (wire %s)", dev, c.WireName())
	// One abort signal per shard, fired when this connection tears down:
	// any of the connection's requests still parked in a dispatcher wait
	// ring returns ErrAborted instead of eventually claiming a runtime
	// for a device that is gone. Constructing a Signal only records the
	// engine pointer — no engine state is touched off-driver.
	aborts := make([]*sim.Signal, len(s.shards))
	for i := range aborts {
		aborts[i] = sim.NewSignal(s.shards[i].pl.E)
	}
	h := &connHandler{
		s:          s,
		conn:       conn,
		c:          c,
		dev:        dev,
		aborts:     aborts,
		sem:        make(chan struct{}, s.opts.PipelineDepth),
		out:        make(chan outMsg, s.opts.PipelineDepth+2),
		connDone:   make(chan struct{}),
		writerDone: make(chan struct{}),
		codeWait:   make(map[int]chan codeMsg),
	}
	return h.run()
}

// outMsg is one frame queued for the connection's writer goroutine.
// Results travel by value (res/isResult) so the per-reply *Result never
// escapes to the heap; other frames (NEED_CODE, protocol errors) use the
// frame field.
type outMsg struct {
	frame    offload.Frame
	res      offload.Result
	isResult bool
	// start, when set, marks the frame as a request's result: on a
	// successful send the writer observes the wall-clock latency, counts
	// the result, and folds span (if any) into server.stage.*. Results
	// are observed only when actually delivered.
	start time.Time
	span  *obs.Span
	// fatal, when non-empty, is a protocol violation: the writer delivers
	// the frame best-effort and then tears the connection down.
	fatal string
}

// connHandler pipelines one device connection: a decode loop (the
// connection handler's own goroutine) admits exec frames and routes code
// pushes, per-request worker goroutines drive the platform, and a single
// writer goroutine owns the send side of the codec. Responses may leave
// out of order; clients match them by Result.Seq.
type connHandler struct {
	s    *Server
	conn net.Conn
	c    *offload.Conn
	dev  string

	aborts     []*sim.Signal // per-shard request-abort signals, fired at teardown
	sem        chan struct{} // pipeline admission tokens (cap = PipelineDepth)
	out        chan outMsg   // workers/decode loop -> writer
	connDone   chan struct{} // closed when the decode loop exits
	writerDone chan struct{} // closed when the writer exits

	workers sync.WaitGroup

	mu       sync.Mutex
	inflight int
	codeWait map[int]chan codeMsg // seq -> worker awaiting a push or chunk offer
	codeFIFO []int                // arrival order, for pushes without a Seq

	errOnce sync.Once
	err     error
}

// run owns the shutdown sequence: when the decode loop exits (read error,
// protocol violation, or server close), connDone aborts workers parked on
// code waits, the workers drain through the platform, and only then is
// the writer's queue closed — every queued frame gets its send attempt.
func (h *connHandler) run() error {
	go h.writer()
	loopErr := h.decodeLoop()
	close(h.connDone)
	// Fire the per-shard abort signals so workers parked in a dispatcher
	// wait ring (waiting for a runtime that may never free up now that no
	// more releases are coming from this connection) unblock instead of
	// deadlocking workers.Wait. Signal state belongs to each shard's
	// engine, so both the check and the fire run under its driver.
	for i := range h.aborts {
		sig := h.aborts[i]
		h.s.shards[i].drv.Do("abort:"+h.dev, func(p *sim.Proc) {
			if !sig.Fired() {
				sig.Fire()
			}
		})
	}
	h.workers.Wait()
	close(h.out)
	<-h.writerDone
	if h.err != nil {
		// A worker or the writer failed first; the decode loop's error is
		// just the fallout of the conn being torn down under it.
		return h.err
	}
	return loopErr
}

// decodeLoop reads frames for the connection's whole life. Exec frames
// are admitted against the pipeline semaphore (and the server's close
// signal); code frames are routed to the worker that asked for them.
func (h *connHandler) decodeLoop() error {
	s := h.s
	for {
		h.armIdleDeadline()
		f, err := h.c.Recv()
		if err != nil {
			return err
		}
		switch f.Kind {
		case offload.KindExec:
			req := *f.Exec
			req.DeviceID = h.dev
			start := time.Now()
			s.cRequests.Inc()
			key := dedupKey{dev: h.dev, aid: req.AID, seq: req.Seq}
			if res, ok := s.dedup.lookup(key); ok {
				// Idempotent retry: the result was computed on a previous
				// attempt and the reply was lost. Answer inline from the
				// window — no admission token, no worker, no re-execution.
				s.cDedupHits.Inc()
				h.out <- outMsg{res: res, isResult: true, start: start}
				continue
			}
			// On a binary connection req.Params aliases the codec's read
			// buffer; take ownership so the next Recv cannot recycle it
			// under the worker. The worker releases it when done.
			pin := h.c.TakeRecvBuf()
			select {
			case h.sem <- struct{}{}:
			case <-s.closedCh:
				pin.Release()
				return errors.New("realtime: server shutting down")
			}
			h.beginRequest()
			h.workers.Add(1)
			go func() {
				defer h.workers.Done()
				defer h.endRequest()
				defer pin.Release()
				h.serveRequest(req, start)
			}()
		case offload.KindCode:
			if !h.routeCodeMsg(f.Code.Seq, codeMsg{push: *f.Code}) {
				msg := "realtime: code frame with no code transfer pending"
				h.enqueueProtocolError(msg)
				return errors.New(msg)
			}
		case offload.KindChunkOffer:
			// A device opening a delta push instead of sending the full
			// blob. Routed to the worker awaiting this seq's code; it
			// negotiates against the warehouse and answers KindChunkNeed.
			offer, derr := offload.DecodeChunkOffer(f)
			if derr != nil {
				msg := "realtime: " + derr.Error()
				h.enqueueProtocolError(msg)
				return errors.New(msg)
			}
			if !h.routeCodeMsg(offer.Seq, codeMsg{offer: &offer}) {
				msg := "realtime: chunk offer with no code transfer pending"
				h.enqueueProtocolError(msg)
				return errors.New(msg)
			}
		default:
			msg := fmt.Sprintf("realtime: expected exec, got %s", f.Kind)
			h.enqueueProtocolError(msg)
			return errors.New(msg)
		}
	}
}

// armIdleDeadline applies IdleTimeout to the next read, but only while no
// request is in flight: devices idle between requests hold no platform
// resources, and mid-request reads are guarded by the workers' own
// code-wait timeouts instead.
func (h *connHandler) armIdleDeadline() {
	h.mu.Lock()
	if h.inflight == 0 {
		if d := h.s.opts.IdleTimeout; d > 0 {
			h.conn.SetReadDeadline(time.Now().Add(d))
		} else {
			h.conn.SetReadDeadline(time.Time{})
		}
	}
	h.mu.Unlock()
}

func (h *connHandler) beginRequest() {
	h.mu.Lock()
	h.inflight++
	// Requests in flight: the decode loop must be free to block in Recv
	// indefinitely (code pushes can legitimately arrive late).
	h.conn.SetReadDeadline(time.Time{})
	h.mu.Unlock()
}

// endRequest releases the worker's admission token. When the last
// in-flight request drains it re-arms the idle deadline directly on the
// conn — the decode loop may already be parked inside Recv with no
// deadline, and a deadline set here fires through that blocked read.
func (h *connHandler) endRequest() {
	<-h.sem
	h.mu.Lock()
	h.inflight--
	if h.inflight == 0 && h.s.opts.IdleTimeout > 0 {
		h.conn.SetReadDeadline(time.Now().Add(h.s.opts.IdleTimeout))
	}
	h.mu.Unlock()
}

// writer is the connection's single sender. On the first send failure it
// records the error, tears the connection down, and drains (discarding)
// the rest of the queue so workers never block on a dead writer.
//
// Sends coalesce: the connection buffers framed replies and the writer
// flushes only when the queue goes empty, so a burst of pipelined results
// leaves in one syscall instead of one per reply. Latency is observed at
// enqueue-to-kernel time as before; the flush it rides on is at most the
// encode time of the replies queued behind it away.
func (h *connHandler) writer() {
	defer close(h.writerDone)
	h.c.CoalesceSends()
	broken := false
	for m := range h.out {
		if broken {
			continue
		}
		var err error
		if m.isResult {
			err = h.s.sendResult(h.conn, h.c, &m.res)
		} else {
			err = h.s.send(h.conn, h.c, m.frame)
		}
		if err == nil && len(h.out) == 0 {
			err = h.c.FlushSend()
		}
		if err != nil {
			h.fail(err)
			broken = true
			continue
		}
		if !m.start.IsZero() {
			h.s.lat.Observe(time.Since(m.start))
			h.s.cResults.Inc()
			if m.span != nil {
				h.s.reg.ObserveSpan("server.stage.", m.span)
			}
		}
		if m.fatal != "" {
			h.fail(errors.New(m.fatal))
			broken = true
		}
	}
	if !broken {
		// The queue can close between a skipped flush and the next
		// receive; nothing pending survives past the loop.
		_ = h.c.FlushSend()
	}
}

// fail records the connection's first fatal error and closes the socket,
// which unblocks the decode loop's pending read. Safe from any goroutine.
func (h *connHandler) fail(err error) {
	h.errOnce.Do(func() {
		h.err = err
		h.conn.Close()
	})
}

func (h *connHandler) enqueueProtocolError(msg string) {
	h.out <- outMsg{
		frame: offload.Frame{Kind: offload.KindResult, Result: &offload.Result{
			Err: msg, Code: offload.CodeProtocol,
		}},
		fatal: msg,
	}
}

// codeMsg is one frame routed to a worker mid-code-exchange: either the
// code push itself or a chunk offer opening a delta push.
type codeMsg struct {
	push  offload.CodePush
	offer *offload.ChunkOffer
}

// routeCodeMsg hands a code-exchange frame to the worker waiting for it:
// by Seq when the frame carries one that matches a waiter, else to the
// oldest waiter (serial clients predate CodePush.Seq and leave it zero).
// Returns false when no worker is waiting for code at all.
func (h *connHandler) routeCodeMsg(seq int, msg codeMsg) bool {
	h.mu.Lock()
	ch, ok := h.codeWait[seq]
	if !ok {
		if len(h.codeFIFO) == 0 {
			h.mu.Unlock()
			return false
		}
		seq = h.codeFIFO[0]
		ch = h.codeWait[seq]
	}
	delete(h.codeWait, seq)
	h.dropCodeFIFO(seq)
	h.mu.Unlock()
	ch <- msg // buffered; never blocks
	return true
}

func (h *connHandler) dropCodeFIFO(seq int) {
	for i, s := range h.codeFIFO {
		if s == seq {
			h.codeFIFO = append(h.codeFIFO[:i], h.codeFIFO[i+1:]...)
			return
		}
	}
}

// registerCodeWait installs this worker as the receiver of the next
// code-exchange frame for seq. The waiter is registered before whatever
// frame prompts the device (NEED_CODE, or a chunk-need reply) is queued,
// so the device's answer can never race past it.
func (h *connHandler) registerCodeWait(seq int) (chan codeMsg, error) {
	ch := make(chan codeMsg, 1)
	h.mu.Lock()
	if _, dup := h.codeWait[seq]; dup {
		h.mu.Unlock()
		return nil, fmt.Errorf("realtime: duplicate in-flight seq %d awaiting code", seq)
	}
	h.codeWait[seq] = ch
	h.codeFIFO = append(h.codeFIFO, seq)
	h.mu.Unlock()
	return ch, nil
}

// waitCodeMsg blocks for the routed frame, bounded by the per-read
// timeout, the request's remaining wall budget, and the connection's life.
func (h *connHandler) waitCodeMsg(seq int, ch chan codeMsg, start time.Time) (codeMsg, error) {
	timeout, err := h.s.requestRead(start)
	if err != nil {
		h.cancelCodeWait(seq)
		return codeMsg{}, err
	}
	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case msg := <-ch:
		return msg, nil
	case <-timerC:
		h.cancelCodeWait(seq)
		return codeMsg{}, fmt.Errorf("realtime: timed out waiting for code push (seq %d)", seq)
	case <-h.connDone:
		h.cancelCodeWait(seq)
		return codeMsg{}, errors.New("realtime: connection closed during code transfer")
	}
}

// awaitCode asks the device for the mobile code and waits for its answer:
// the code push itself, or a chunk offer opening a delta push.
func (h *connHandler) awaitCode(seq int, aid string, start time.Time) (codeMsg, error) {
	ch, err := h.registerCodeWait(seq)
	if err != nil {
		return codeMsg{}, err
	}
	h.out <- outMsg{frame: offload.Frame{Kind: offload.KindNeedCode, NeedCode: &offload.NeedCode{Seq: seq, AID: aid}}}
	return h.waitCodeMsg(seq, ch, start)
}

func (h *connHandler) cancelCodeWait(seq int) {
	h.mu.Lock()
	delete(h.codeWait, seq)
	h.dropCodeFIFO(seq)
	h.mu.Unlock()
}

// requestRead caps an intra-request read by both the per-read timeout and
// the request's remaining wall-clock budget.
func (s *Server) requestRead(start time.Time) (time.Duration, error) {
	timeout := s.opts.ReadTimeout
	if s.opts.RequestTimeout > 0 {
		remaining := s.opts.RequestTimeout - time.Since(start)
		if remaining <= 0 {
			return 0, fmt.Errorf("realtime: request exceeded its %v budget", s.opts.RequestTimeout)
		}
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
	}
	return timeout, nil
}

// errorResult classifies a platform error into a typed Result frame so
// clients can distinguish retryable overload from permanent failures.
func errorResult(err error) offload.Result {
	res := offload.Result{Err: err.Error(), Code: offload.CodeInternal}
	var over *offload.OverloadedError
	switch {
	case errors.As(err, &over):
		res.Code = offload.CodeOverloaded
		res.RetryAfterMs = over.RetryAfter.Milliseconds()
	case errors.Is(err, core.ErrBlocked):
		res.Code = offload.CodeBlocked
	}
	return res
}

// serveRequest runs one request through the platform on a worker
// goroutine and queues its result for the writer. Engine-bound steps run
// as injected processes so runtime preparation and execution consume real
// (paced) time; protocol I/O happens through the decode loop and writer.
// When no code transfer is needed — the warehouse-hit fast path —
// prepare, execute, and release are batched into a single injected
// process, so the whole request costs one engine interaction instead of
// four. Request-fatal errors (code-exchange timeout, duplicate seq) tear
// the connection down via fail, matching the serial server's behavior.
func (h *connHandler) serveRequest(req offload.ExecRequest, start time.Time) {
	s := h.s
	key := dedupKey{dev: h.dev, aid: req.AID, seq: req.Seq}
	// Attach a request-scoped span: the platform records its dispatcher,
	// warehouse and runtime sub-stages (virtual time) into it, and the span
	// is folded into server.stage.* histograms once the result is sent.
	// Only this worker and processes injected on its behalf touch the span
	// (the driver serializes injected fns with happens-before on Do
	// boundaries, and the channel send to the writer orders the final fold),
	// so no lock is needed.
	sp := obs.NewSpan()
	req.SetSpan(sp)
	// Run the real computation here, on this worker goroutine, before
	// entering the serialized engine: apps are deterministic in the task
	// parameters, so the dispatch inside the driver charges the modeled
	// virtual cost and returns this result without holding every other
	// request's engine interaction hostage to the actual CPU work. This
	// also consumes req.Params before the worker's read-buffer pin could
	// matter to anyone downstream of the engine.
	req.SetPrecomputed(s.precompute(&req))
	// Route the request to the shard owning its AID; every engine
	// interaction for this request happens on that shard's driver. The
	// connection's abort signal for that shard rides along so a teardown
	// mid-queue-wait cannot strand this worker (or a runtime slot).
	shardID, shard := s.shardFor(req.AID)
	req.SetAbort(h.aborts[shardID])
	var (
		sess    offload.Session
		prepErr error
		res     offload.Result
		execErr error
		fast    bool
	)
	shard.drv.Do("request:"+h.dev, func(p *sim.Proc) {
		sess, prepErr = shard.pl.Prepare(p, req)
		if prepErr != nil || sess.NeedCode() {
			return // code transfer needs protocol I/O; finish below
		}
		res, execErr = sess.Execute(p)
		if errors.Is(execErr, offload.ErrCodeNeeded) {
			return // re-claimed an aborted push; code exchange below
		}
		sess.Release()
		fast = true
	})
	if prepErr != nil {
		r := errorResult(s.shardErr(shardID, prepErr))
		r.Seq = req.Seq
		h.out <- outMsg{res: r, isResult: true, start: start, span: sp}
		return
	}
	if fast {
		h.finishRequest(key, req.Seq, res, s.shardErr(shardID, execErr), start, sp)
		return
	}

	// Slow path: the device must transfer the mobile code first — either
	// Prepare asked for it up front, or Execute re-claimed a push another
	// device abandoned. Every early return releases the session, so a
	// device that stalls mid-exchange cannot pin a runtime slot past the
	// code-wait timeout.
	released := false
	defer func() {
		if !released {
			shard.drv.Do("release:"+h.dev, func(p *sim.Proc) { sess.Release() })
		}
	}()

	for {
		msg, err := h.awaitCode(req.Seq, req.AID, start)
		if err != nil {
			h.fail(err)
			return
		}
		// Delta-push negotiation: answer chunk offers with the warehouse's
		// missing set until the device sends the (delta or full) code frame.
		// The negotiated offer is remembered so the code frame that follows
		// stages chunks instead of a full blob.
		var negotiated *offload.ChunkOffer
		var negotiatedMissing []uint64
		for msg.offer != nil {
			var need offload.ChunkNeed
			var negErr error
			cs, chunked := sess.(offload.ChunkedSession)
			if chunked {
				shard.drv.Do("chunks:"+h.dev, func(p *sim.Proc) {
					need, negErr = cs.NegotiateChunks(p, *msg.offer)
				})
			} else {
				need = offload.ChunkNeed{Seq: msg.offer.Seq, AID: msg.offer.AID}
			}
			if negErr != nil {
				r := errorResult(s.shardErr(shardID, negErr))
				r.Seq = req.Seq
				h.out <- outMsg{res: r, isResult: true, start: start, span: sp}
				return
			}
			if need.Supported {
				negotiated = msg.offer
				negotiatedMissing = need.Missing
			}
			// Re-register before the need reply leaves: the device answers
			// it with the code frame, which must find a waiter.
			ch, rerr := h.registerCodeWait(req.Seq)
			if rerr != nil {
				h.fail(rerr)
				return
			}
			h.out <- outMsg{frame: offload.ChunkNeedFrame(&need)}
			msg, err = h.waitCodeMsg(req.Seq, ch, start)
			if err != nil {
				h.fail(err)
				return
			}
		}
		push := msg.push
		var pushErr error
		shard.drv.Do("push:"+h.dev, func(p *sim.Proc) {
			if negotiated != nil {
				pushErr = sess.(offload.ChunkedSession).PushChunks(p, *negotiated, negotiatedMissing)
			} else {
				pushErr = sess.PushCode(p, push)
			}
		})
		if pushErr != nil {
			r := errorResult(s.shardErr(shardID, pushErr))
			r.Seq = req.Seq
			h.out <- outMsg{res: r, isResult: true, start: start, span: sp}
			return
		}

		// Execute and release in one injected process.
		shard.drv.Do("exec:"+h.dev, func(p *sim.Proc) {
			res, execErr = sess.Execute(p)
			if errors.Is(execErr, offload.ErrCodeNeeded) {
				return
			}
			sess.Release()
		})
		if !errors.Is(execErr, offload.ErrCodeNeeded) {
			released = true
			break
		}
	}
	h.finishRequest(key, req.Seq, res, s.shardErr(shardID, execErr), start, sp)
}

// finishRequest stores a successful result in the idempotency window and
// queues the reply (typed error result on execErr) for the writer.
func (h *connHandler) finishRequest(key dedupKey, seq int, res offload.Result, execErr error, start time.Time, sp *obs.Span) {
	if execErr != nil {
		res = errorResult(execErr)
	}
	res.Seq = seq
	if execErr == nil {
		h.s.dedup.store(key, res)
	}
	h.out <- outMsg{res: res, isResult: true, start: start, span: sp}
}

// precompute executes the request's task for real, ahead of its engine
// dispatch, and packages the outcome for the runtime's short-circuit
// (workload.Registry.Execute). It runs on the request's worker goroutine,
// concurrently with every other request — the registry's apps are
// read-only after construction.
func (s *Server) precompute(req *offload.ExecRequest) *workload.Precomputed {
	t := workload.Task{
		App: req.App, Method: req.Method, Seq: req.Seq, Params: req.Params,
		ParamBytes: req.ParamBytes, FileBytes: req.FileBytes,
		RoundTrips: req.RoundTrips, InteractBytes: req.InteractBytes,
	}
	m, err := s.wreg.Execute(t)
	return &workload.Precomputed{Metrics: m, Err: err}
}

// dedupKey identifies a request for the idempotency window. A comparable
// struct (not a concatenated string) so lookup and store never allocate.
type dedupKey struct {
	dev, aid string
	seq      int
}

// dedupCache is a bounded map of completed results, FIFO-evicted. A nil
// cache (DedupWindow < 0) is inert. The order ring is pre-sized to the
// window capacity so store never grows it — both paths are zero-alloc
// (gated by TestDedupZeroAlloc).
type dedupCache struct {
	mu    sync.Mutex
	cap   int
	res   map[dedupKey]offload.Result
	order []dedupKey
	head  int
}

func newDedupCache(capacity int) *dedupCache {
	return &dedupCache{
		cap:   capacity,
		res:   make(map[dedupKey]offload.Result, capacity),
		order: make([]dedupKey, 0, capacity),
	}
}

func (dc *dedupCache) lookup(key dedupKey) (offload.Result, bool) {
	if dc == nil {
		return offload.Result{}, false
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	r, ok := dc.res[key]
	return r, ok
}

func (dc *dedupCache) store(key dedupKey, r offload.Result) {
	if dc == nil {
		return
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, exists := dc.res[key]; exists {
		dc.res[key] = r
		return
	}
	if len(dc.res) >= dc.cap {
		old := dc.order[dc.head]
		delete(dc.res, old)
		dc.order[dc.head] = key
		dc.head = (dc.head + 1) % dc.cap
	} else {
		dc.order = append(dc.order, key)
	}
	dc.res[key] = r
}
