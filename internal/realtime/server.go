package realtime

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/metrics"
	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// Options tunes the server's robustness envelope. Zero values select the
// defaults below; negative values disable the corresponding guard.
type Options struct {
	// ReadTimeout bounds each intra-request frame read (the hello and the
	// code push). This is the slow-loris guard: a device that goes silent
	// mid-exchange is cut off and its pinned runtime slot released,
	// instead of the handler blocking in Recv forever. Default 15s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (a device that stops draining
	// its socket). Default 15s.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the next exec frame on an open
	// connection. Disabled by default: devices legitimately idle between
	// requests and hold no platform resources while they do.
	IdleTimeout time.Duration
	// RequestTimeout is the wall-clock budget for one request's protocol
	// exchange, from exec-frame receipt to result send. It tightens the
	// read deadline of the code-push exchange. Default 2min.
	RequestTimeout time.Duration
	// MaxFrame caps the decoded size of any received frame (default
	// offload.DefaultMaxFrame).
	MaxFrame int
	// DedupWindow is how many completed results the server remembers for
	// idempotent retries, keyed by (DeviceID, AID, Seq). A retry of a
	// request whose result was computed but lost in transit is answered
	// from this window without re-executing. Default 256 entries.
	DedupWindow int
}

func (o Options) withDefaults() Options {
	def := func(v *time.Duration, d time.Duration) {
		switch {
		case *v == 0:
			*v = d
		case *v < 0:
			*v = 0 // disabled
		}
	}
	def(&o.ReadTimeout, 15*time.Second)
	def(&o.WriteTimeout, 15*time.Second)
	def(&o.RequestTimeout, 2*time.Minute)
	if o.IdleTimeout < 0 {
		o.IdleTimeout = 0
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = offload.DefaultMaxFrame
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = 256
	}
	return o
}

// Server serves the offload wire protocol over real connections, backed by
// a paced core.Platform.
type Server struct {
	drv   *Driver
	pl    *core.Platform
	log   *log.Logger
	lat   *metrics.LatencyHistogram
	opts  Options
	dedup *dedupCache

	// Observability: the server always carries a registry (it is the
	// platform's observable entry point). Counters are pre-resolved here so
	// the request path never touches the registry's maps.
	reg        *obs.Registry
	cRequests  *obs.Counter // exec frames accepted
	cDedupHits *obs.Counter // requests answered from the idempotency window
	cResults   *obs.Counter // result frames sent (success or typed error)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup // in-flight connection handlers
}

// NewServer builds a platform of the given kind and starts its pacing
// driver with default Options. speed scales virtual time (1 = real time).
func NewServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	return newServer(cfg, speed, logger, false, Options{})
}

// NewServerOpts is NewServer with explicit robustness Options.
func NewServerOpts(cfg core.Config, speed float64, logger *log.Logger, opts Options) *Server {
	return newServer(cfg, speed, logger, false, opts)
}

// NewTickerServer is NewServer on the legacy poll-based driver. It exists
// only so benchmarks can compare the event-driven pacing against the
// architecture it replaced.
func NewTickerServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	return newServer(cfg, speed, logger, true, Options{})
}

func newServer(cfg core.Config, speed float64, logger *log.Logger, ticker bool, opts Options) *Server {
	e := sim.NewEngine(1)
	pl := core.New(e, cfg)
	var drv *Driver
	if ticker {
		drv = NewTickerDriver(e, speed)
	} else {
		drv = NewDriver(e, speed)
	}
	drv.Start()
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	opts = opts.withDefaults()
	var dedup *dedupCache
	if opts.DedupWindow > 0 {
		dedup = newDedupCache(opts.DedupWindow)
	}
	reg := obs.NewRegistry()
	pl.SetObs(reg)
	s := &Server{
		drv:        drv,
		pl:         pl,
		log:        logger,
		lat:        metrics.NewLatencyHistogram(),
		opts:       opts,
		dedup:      dedup,
		reg:        reg,
		cRequests:  reg.Counter("server.requests"),
		cDedupHits: reg.Counter("server.dedup_hits"),
		cResults:   reg.Counter("server.results"),
		conns:      make(map[net.Conn]struct{}),
	}
	reg.RegisterHistogram("server.request_wall", s.lat)
	return s
}

// Platform exposes the underlying platform (status endpoints, tests).
func (s *Server) Platform() *core.Platform { return s.pl }

// Driver exposes the pacing driver.
func (s *Server) Driver() *Driver { return s.drv }

// Metrics exposes the server's observability registry: platform counters
// and gauges (dispatch.*, warehouse.*, core.*), virtual-time stage
// histograms (stage.*), per-request span folds (server.stage.*), and the
// wall-clock request histogram (server.request_wall).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Latency exposes the wall-clock request-latency histogram: one
// observation per exec request that produced a result frame, measured
// from frame receipt to result send. Requests cut off by timeouts or
// protocol violations are not observed — they would poison the tail with
// connection-failure artifacts that are not request latencies.
func (s *Server) Latency() *metrics.LatencyHistogram { return s.lat }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close() // lost the race with Close
			return nil
		}
		go func() {
			defer s.untrack(conn)
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				s.log.Printf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// track registers a connection and its handler; it refuses (returning
// false) once the server is closed, so Close's drain can't miss a handler
// started after it swept the connection table.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close closes live connections, waits for every in-flight handler to
// drain, and only then stops the driver — so no handler can touch the
// driver after Stop.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.drv.Stop()
}

// recv reads one frame, bounding the wait with a read deadline when
// timeout is positive.
func (s *Server) recv(conn net.Conn, c *offload.Conn, timeout time.Duration) (offload.Frame, error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	return c.Recv()
}

// send writes one frame under the configured write deadline.
func (s *Server) send(conn net.Conn, c *offload.Conn, f offload.Frame) error {
	if d := s.opts.WriteTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return c.Send(f)
}

// sendProtocolError tells the device why the server is hanging up, on a
// best-effort basis, before the connection closes. Without this frame a
// misbehaving client sees only a reset and retries the same violation.
func (s *Server) sendProtocolError(conn net.Conn, c *offload.Conn, msg string) {
	_ = s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &offload.Result{
		Err: msg, Code: offload.CodeProtocol,
	}})
}

// handle speaks the protocol with one device.
func (s *Server) handle(conn net.Conn) error {
	c := offload.NewConnLimit(conn, s.opts.MaxFrame)
	hello, err := s.recv(conn, c, s.opts.ReadTimeout)
	if err != nil {
		return err
	}
	if hello.Kind != offload.KindHello {
		msg := fmt.Sprintf("realtime: expected hello, got %s", hello.Kind)
		s.sendProtocolError(conn, c, msg)
		return errors.New(msg)
	}
	dev := hello.Hello.DeviceID
	s.log.Printf("device %s connected", dev)

	for {
		f, err := s.recv(conn, c, s.opts.IdleTimeout)
		if err != nil {
			return err
		}
		if f.Kind != offload.KindExec {
			msg := fmt.Sprintf("realtime: expected exec, got %s", f.Kind)
			s.sendProtocolError(conn, c, msg)
			return errors.New(msg)
		}
		start := time.Now()
		sent, err := s.serveRequest(conn, c, dev, *f.Exec, start)
		if sent {
			s.lat.Observe(time.Since(start))
			s.cResults.Inc()
		}
		if err != nil {
			return err
		}
	}
}

// requestRead caps an intra-request read by both the per-read timeout and
// the request's remaining wall-clock budget.
func (s *Server) requestRead(start time.Time) (time.Duration, error) {
	timeout := s.opts.ReadTimeout
	if s.opts.RequestTimeout > 0 {
		remaining := s.opts.RequestTimeout - time.Since(start)
		if remaining <= 0 {
			return 0, fmt.Errorf("realtime: request exceeded its %v budget", s.opts.RequestTimeout)
		}
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
	}
	return timeout, nil
}

// errorResult classifies a platform error into a typed Result frame so
// clients can distinguish retryable overload from permanent failures.
func errorResult(err error) offload.Result {
	res := offload.Result{Err: err.Error(), Code: offload.CodeInternal}
	var over *offload.OverloadedError
	switch {
	case errors.As(err, &over):
		res.Code = offload.CodeOverloaded
		res.RetryAfterMs = over.RetryAfter.Milliseconds()
	case errors.Is(err, core.ErrBlocked):
		res.Code = offload.CodeBlocked
	}
	return res
}

// serveRequest runs one request through the platform and reports whether
// a result frame was sent (the caller observes latency only then).
// Engine-bound steps run as injected processes so runtime preparation and
// execution consume real (paced) time; protocol I/O runs between them on
// the connection's goroutine. When no code transfer is needed — the
// warehouse-hit fast path — prepare, execute, and release are batched
// into a single injected process, so the whole request costs one engine
// interaction instead of four.
func (s *Server) serveRequest(conn net.Conn, c *offload.Conn, dev string, req offload.ExecRequest, start time.Time) (sent bool, err error) {
	req.DeviceID = dev
	s.cRequests.Inc()
	key := dedupKey(dev, req.AID, req.Seq)
	if res, ok := s.dedup.lookup(key); ok {
		// Idempotent retry: the result was computed on a previous attempt
		// and the reply was lost. Answer from the window, don't re-execute.
		s.cDedupHits.Inc()
		return true, s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &res})
	}
	// Attach a request-scoped span: the platform records its dispatcher,
	// warehouse and runtime sub-stages (virtual time) into it, and the span
	// is folded into server.stage.* histograms once the request completes.
	// Only this handler goroutine and processes injected on its behalf
	// (which the driver serializes, with happens-before on Do/Inject
	// boundaries) touch the span, so no lock is needed.
	sp := obs.NewSpan()
	req.SetSpan(sp)
	defer func() {
		if sent {
			s.reg.ObserveSpan("server.stage.", sp)
		}
	}()
	var (
		sess    offload.Session
		prepErr error
		res     offload.Result
		execErr error
		fast    bool
	)
	s.drv.Do("request:"+dev, func(p *sim.Proc) {
		sess, prepErr = s.pl.Prepare(p, req)
		if prepErr != nil || sess.NeedCode() {
			return // code transfer needs protocol I/O; finish below
		}
		res, execErr = sess.Execute(p)
		if errors.Is(execErr, offload.ErrCodeNeeded) {
			return // re-claimed an aborted push; code exchange below
		}
		sess.Release()
		fast = true
	})
	if prepErr != nil {
		r := errorResult(prepErr)
		return true, s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &r})
	}
	if fast {
		if execErr != nil {
			res = errorResult(execErr)
		} else {
			s.dedup.store(key, res)
		}
		return true, s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &res})
	}

	// Slow path: the device must transfer the mobile code first — either
	// Prepare asked for it up front, or Execute re-claimed a push another
	// device abandoned. Every early return releases the session, so a
	// device that stalls mid-exchange cannot pin a runtime slot past the
	// read deadline.
	released := false
	defer func() {
		if !released {
			s.drv.Do("release:"+dev, func(p *sim.Proc) { sess.Release() })
		}
	}()

	for {
		if err := s.send(conn, c, offload.Frame{Kind: offload.KindNeedCode}); err != nil {
			return false, err
		}
		timeout, err := s.requestRead(start)
		if err != nil {
			return false, err
		}
		codeFrame, err := s.recv(conn, c, timeout)
		if err != nil {
			return false, err
		}
		if codeFrame.Kind != offload.KindCode {
			msg := fmt.Sprintf("realtime: expected code, got %s", codeFrame.Kind)
			s.sendProtocolError(conn, c, msg)
			return false, errors.New(msg)
		}
		var pushErr error
		s.drv.Do("push:"+dev, func(p *sim.Proc) {
			pushErr = sess.PushCode(p, *codeFrame.Code)
		})
		if pushErr != nil {
			r := errorResult(pushErr)
			return true, s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &r})
		}

		// Execute and release in one injected process.
		s.drv.Do("exec:"+dev, func(p *sim.Proc) {
			res, execErr = sess.Execute(p)
			if errors.Is(execErr, offload.ErrCodeNeeded) {
				return
			}
			sess.Release()
		})
		if !errors.Is(execErr, offload.ErrCodeNeeded) {
			released = true
			break
		}
	}
	if execErr != nil {
		res = errorResult(execErr)
	} else {
		s.dedup.store(key, res)
	}
	return true, s.send(conn, c, offload.Frame{Kind: offload.KindResult, Result: &res})
}

// dedupKey identifies a request for the idempotency window.
func dedupKey(dev, aid string, seq int) string {
	return dev + "\x00" + aid + "\x00" + strconv.Itoa(seq)
}

// dedupCache is a bounded map of completed results, FIFO-evicted. A nil
// cache (DedupWindow < 0) is inert.
type dedupCache struct {
	mu    sync.Mutex
	cap   int
	res   map[string]offload.Result
	order []string
	head  int
}

func newDedupCache(capacity int) *dedupCache {
	return &dedupCache{cap: capacity, res: make(map[string]offload.Result, capacity)}
}

func (dc *dedupCache) lookup(key string) (offload.Result, bool) {
	if dc == nil {
		return offload.Result{}, false
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	r, ok := dc.res[key]
	return r, ok
}

func (dc *dedupCache) store(key string, r offload.Result) {
	if dc == nil {
		return
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, exists := dc.res[key]; exists {
		dc.res[key] = r
		return
	}
	if len(dc.res) >= dc.cap {
		old := dc.order[dc.head]
		delete(dc.res, old)
		dc.order[dc.head] = key
		dc.head = (dc.head + 1) % dc.cap
	} else {
		dc.order = append(dc.order, key)
	}
	dc.res[key] = r
}
