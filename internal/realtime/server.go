package realtime

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// Server serves the offload wire protocol over real connections, backed by
// a paced core.Platform.
type Server struct {
	drv *Driver
	pl  *core.Platform
	log *log.Logger

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer builds a platform of the given kind and starts its pacing
// driver. speed scales virtual time (1 = real time).
func NewServer(cfg core.Config, speed float64, logger *log.Logger) *Server {
	e := sim.NewEngine(1)
	pl := core.New(e, cfg)
	drv := NewDriver(e, speed)
	drv.Start()
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{drv: drv, pl: pl, log: logger, conns: make(map[net.Conn]struct{})}
}

// Platform exposes the underlying platform (status endpoints, tests).
func (s *Server) Platform() *core.Platform { return s.pl }

// Driver exposes the pacing driver.
func (s *Server) Driver() *Driver { return s.drv }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.track(conn, true)
		go func() {
			defer s.track(conn, false)
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				s.log.Printf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops the driver and closes live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.drv.Stop()
}

// handle speaks the protocol with one device.
func (s *Server) handle(conn net.Conn) error {
	c := offload.NewConn(conn)
	hello, err := c.Recv()
	if err != nil {
		return err
	}
	if hello.Kind != offload.KindHello {
		return fmt.Errorf("realtime: expected hello, got %s", hello.Kind)
	}
	dev := hello.Hello.DeviceID
	s.log.Printf("device %s connected", dev)

	for {
		f, err := c.Recv()
		if err != nil {
			return err
		}
		if f.Kind != offload.KindExec {
			return fmt.Errorf("realtime: expected exec, got %s", f.Kind)
		}
		if err := s.serveRequest(c, dev, *f.Exec); err != nil {
			return err
		}
	}
}

// serveRequest runs one request through the platform. Engine-bound steps
// (prepare, push, execute) run as injected processes, so runtime
// preparation and execution consume real (paced) time; protocol I/O runs
// between them on the connection's goroutine.
func (s *Server) serveRequest(c *offload.Conn, dev string, req offload.ExecRequest) error {
	req.DeviceID = dev
	var (
		sess offload.Session
		err  error
	)
	s.drv.Do("prepare:"+dev, func(p *sim.Proc) {
		sess, err = s.pl.Prepare(p, req)
	})
	if err != nil {
		return c.Send(offload.Frame{Kind: offload.KindResult, Result: &offload.Result{Err: err.Error()}})
	}
	defer s.drv.Do("release:"+dev, func(p *sim.Proc) { sess.Release() })

	if sess.NeedCode() {
		if err := c.Send(offload.Frame{Kind: offload.KindNeedCode}); err != nil {
			return err
		}
		codeFrame, err := c.Recv()
		if err != nil {
			return err
		}
		if codeFrame.Kind != offload.KindCode {
			return fmt.Errorf("realtime: expected code, got %s", codeFrame.Kind)
		}
		var pushErr error
		s.drv.Do("push:"+dev, func(p *sim.Proc) {
			pushErr = sess.PushCode(p, *codeFrame.Code)
		})
		if pushErr != nil {
			return c.Send(offload.Frame{Kind: offload.KindResult, Result: &offload.Result{Err: pushErr.Error()}})
		}
	}

	var res offload.Result
	var execErr error
	s.drv.Do("exec:"+dev, func(p *sim.Proc) {
		res, execErr = sess.Execute(p)
	})
	if execErr != nil {
		res = offload.Result{Err: execErr.Error()}
	}
	return c.Send(offload.Frame{Kind: offload.KindResult, Result: &res})
}
