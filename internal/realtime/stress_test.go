package realtime

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// TestDedupCacheConcurrentEviction hammers the idempotency window from
// many goroutines with far more keys than the cache holds, forcing the
// FIFO eviction path to run concurrently with lookups and overwrites.
// Run with -race; afterwards the cache must hold exactly its capacity
// and every surviving entry must map to its own payload.
func TestDedupCacheConcurrentEviction(t *testing.T) {
	const (
		capacity = 32
		writers  = 8
		keys     = 400 // per writer; ~100x the capacity in total
	)
	dc := newDedupCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := dedupKey{dev: fmt.Sprintf("dev%d", w), aid: "app", seq: i}
				want := fmt.Sprintf("dev%d/app/%d", w, i)
				dc.store(key, offload.Result{Output: want})
				// Immediate read-back may already be evicted by another
				// writer — but if present it must carry our payload.
				if r, ok := dc.lookup(key); ok && r.Output != want {
					t.Errorf("lookup(%v) returned %q", key, r.Output)
					return
				}
				// Re-store an older key: the overwrite path must not grow
				// the window past its capacity.
				if i > 0 {
					old := dedupKey{dev: key.dev, aid: "app", seq: i - 1}
					dc.store(old, offload.Result{Output: fmt.Sprintf("dev%d/app/%d", w, i-1)})
				}
			}
		}()
	}
	wg.Wait()

	dc.mu.Lock()
	defer dc.mu.Unlock()
	if len(dc.res) > capacity {
		t.Fatalf("window grew to %d entries, cap %d", len(dc.res), capacity)
	}
	live := 0
	for i := dc.head; i < len(dc.order); i++ {
		key := dc.order[i]
		r, ok := dc.res[key]
		if !ok {
			t.Fatalf("order entry %v missing from result map", key)
		}
		if want := fmt.Sprintf("%s/%s/%d", key.dev, key.aid, key.seq); r.Output != want {
			t.Fatalf("entry %v holds foreign payload %q", key, r.Output)
		}
		live++
	}
	if live != len(dc.res) {
		t.Fatalf("order tracks %d live keys, map holds %d", live, len(dc.res))
	}
}

// TestConcurrentAbortedPushesReuseSlots pins dispatcher slot reuse under
// client failure at the worst moment: many devices ask for the same cold
// application, are told NEED_CODE, and then vanish before pushing — while
// healthy devices race them for the same slots. Every abort must release
// its slot (via the read deadline) and every healthy device must still
// get a result; at the end no runtime may be left busy.
func TestConcurrentAbortedPushesReuseSlots(t *testing.T) {
	srv, ln := startServerOpts(t, Options{ReadTimeout: 200 * time.Millisecond})
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())

	const aborters = 6
	var abortWG sync.WaitGroup
	for i := 0; i < aborters; i++ {
		i := i
		abortWG.Add(1)
		go func() {
			defer abortWG.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("aborter %d dial: %v", i, err)
				return
			}
			c := offload.NewConn(conn)
			dev := fmt.Sprintf("aborter-%d", i)
			task := app.NewTask(testRng(i), i)
			if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: dev}}); err != nil {
				conn.Close()
				return
			}
			if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
				DeviceID: dev, AID: aid, App: task.App, Method: task.Method,
				Seq: i, Params: task.Params, ParamBytes: task.ParamBytes,
			}}); err != nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			// Whether we were queued, told to push, or raced a concurrent
			// push to a result, hang up without completing the exchange.
			c.Recv()
			conn.Close()
		}()
	}

	const healthy = 4
	var healthyWG sync.WaitGroup
	errs := make([]error, healthy)
	for i := 0; i < healthy; i++ {
		i := i
		healthyWG.Add(1)
		go func() {
			defer healthyWG.Done()
			res, _ := runClient(t, ln.Addr().String(), fmt.Sprintf("healthy-%d", i), app, 100+i)
			if res.Err != "" || res.Output == "" {
				errs[i] = fmt.Errorf("healthy-%d: %+v", i, res)
			}
		}()
	}
	abortWG.Wait()
	healthyWG.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Aborted pushes must not pin slots: once the read deadlines fire,
	// every runtime returns to idle and a fresh device is served at once.
	cfg := srv.Platform()
	deadline := time.Now().Add(10 * time.Second)
	for {
		busy := false
		srv.Driver().Do("probe", func(p *sim.Proc) {
			for _, r := range cfg.DB().List() {
				busy = busy || r.Busy
			}
		})
		if !busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aborted pushes left runtimes busy past the read deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, _ := runClient(t, ln.Addr().String(), "after-storm", app, 999)
	if res.Err != "" || res.Output == "" {
		t.Fatalf("request after abort storm failed: %+v", res)
	}
}
