package realtime

import (
	"net"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/workload"
)

// TestServerPipelinedRequests drives one connection with more requests
// than the pipeline window and checks that every one resolves correctly:
// cold-start code transfer routed by seq, results matched by Result.Seq,
// one latency observation per result, and no re-execution.
func TestServerPipelinedRequests(t *testing.T) {
	const (
		depth = 4
		total = 12
	)
	srv, ln := startServerOpts(t, Options{PipelineDepth: depth})
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	results := make(map[int]offload.Result)
	var order []int
	pc := offload.NewPipelineClient(offload.NewConn(conn), depth,
		func(need offload.NeedCode) (offload.CodePush, error) {
			if need.AID != aid {
				t.Errorf("NEED_CODE for AID %q, want %q", need.AID, aid)
			}
			return offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}, nil
		},
		func(r offload.Result) {
			results[r.Seq] = r
			order = append(order, r.Seq)
		})
	if err := pc.Hello("pipedev"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		task := app.NewTask(testRng(i), i)
		if err := pc.Submit(offload.ExecRequest{
			DeviceID: "pipedev", AID: aid, App: task.App, Method: task.Method,
			Seq: i, Params: task.Params, ParamBytes: task.ParamBytes,
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(results) != total {
		t.Fatalf("resolved %d of %d requests (order %v)", len(results), total, order)
	}
	for seq, r := range results {
		if r.Err != "" || r.Output == "" {
			t.Fatalf("seq %d failed: %+v", seq, r)
		}
		if r.Seq != seq {
			t.Fatalf("seq mismatch: %d vs %+v", seq, r)
		}
	}
	if n := srv.Latency().Count(); n != total {
		t.Fatalf("latency observations = %d, want %d", n, total)
	}
	if execs := srv.Platform().DB().Snapshot().TotalExec; execs != total {
		t.Fatalf("executions = %d, want %d", execs, total)
	}
}

// TestServerPipelineDepthOne pins that the pipelined machinery at depth 1
// behaves exactly like the old serial handler from a client's view: a
// serial client (no Seq on its code pushes) completes a cold-start
// exchange through the FIFO routing fallback.
func TestServerPipelineDepthOne(t *testing.T) {
	srv, ln := startServerOpts(t, Options{PipelineDepth: 1})
	app, _ := workload.ByName(workload.NameChess)
	res, needed := runClient(t, ln.Addr().String(), "serial-dev", app, 0)
	if res.Err != "" || res.Output == "" {
		t.Fatalf("serial client on pipelined server: %+v", res)
	}
	if !needed {
		t.Fatal("cold start should have asked for code")
	}
	if n := srv.Latency().Count(); n != 1 {
		t.Fatalf("latency observations = %d, want 1", n)
	}
}

// TestServerCloseUnblocksAdmission pins the Close fix for pipelined
// connections: a decode loop parked on the per-connection admission
// semaphore (window full of in-flight requests) is not blocked in a read,
// so closing the socket alone cannot unpark it. Close must still return
// promptly — the close signal has to reach the admission wait directly.
func TestServerCloseUnblocksAdmission(t *testing.T) {
	srv := NewServerOpts(core.DefaultConfig(core.KindRattrap), 200, nil, Options{
		PipelineDepth: 1,
		// Long read timeout: if Close relied on the code-wait timer to
		// free the admission slot, this test would take 30s and fail.
		ReadTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	c := offload.NewConn(conn)
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())
	if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: "parked"}}); err != nil {
		t.Fatal(err)
	}
	// First request goes cold: the worker parks in its code wait, holding
	// the only admission token.
	task := app.NewTask(testRng(0), 0)
	if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		DeviceID: "parked", AID: aid, App: task.App, Method: task.Method,
		Seq: 0, Params: task.Params, ParamBytes: task.ParamBytes,
	}}); err != nil {
		t.Fatal(err)
	}
	if f, err := c.Recv(); err != nil || f.Kind != offload.KindNeedCode {
		t.Fatalf("expected NEED_CODE, got %v / %v", f.Kind, err)
	}
	// Second request parks the decode loop on the admission semaphore.
	task2 := app.NewTask(testRng(1), 1)
	if err := c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		DeviceID: "parked", AID: aid, App: task2.App, Method: task2.Method,
		Seq: 1, Params: task2.Params, ParamBytes: task2.ParamBytes,
	}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the decode loop reach the park

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not unblock the admission-parked decode loop")
	}
}
