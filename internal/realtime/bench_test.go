package realtime

import (
	"net"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/workload"
)

// benchClient drives warehouse-hit roundtrips over one loopback TCP
// connection, mirroring a device that re-offloads an app already staged
// in the App Warehouse.
type benchClient struct {
	conn   net.Conn
	c      *offload.Conn
	app    workload.App
	aid    string
	params []byte
}

func newBenchClient(b *testing.B, addr string) *benchClient {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	c := offload.NewConn(conn)
	if err := c.Send(offload.Frame{Kind: offload.KindHello, Hello: &offload.Hello{DeviceID: "bench-dev"}}); err != nil {
		b.Fatal(err)
	}
	app, _ := workload.ByName(workload.NameLinpack)
	return &benchClient{
		conn: conn, c: c, app: app,
		aid:    offload.AID(app.Name(), app.CodeSize()),
		params: tinyParams(b),
	}
}

// linpackParams encodes an order-n Linpack system in the flat param
// format the zero-alloc path decodes.
func linpackParams(b *testing.B, n int) []byte {
	b.Helper()
	return workload.EncodeLinpackParams(7, n)
}

// tinyParams is a deliberately small system: the real factorization costs
// microseconds, so the measurement isolates dispatch latency instead of
// payload compute.
func tinyParams(b *testing.B) []byte { return linpackParams(b, 8) }

func (bc *benchClient) roundtrip(b *testing.B, seq int) {
	if err := bc.c.Send(offload.Frame{Kind: offload.KindExec, Exec: &offload.ExecRequest{
		AID: bc.aid, App: bc.app.Name(), Method: "solve", Seq: seq,
		Params: bc.params, ParamBytes: 500,
	}}); err != nil {
		b.Fatal(err)
	}
	f, err := bc.c.Recv()
	if err != nil {
		b.Fatal(err)
	}
	if f.Kind == offload.KindNeedCode {
		if err := bc.c.Send(offload.Frame{Kind: offload.KindCode, Code: &offload.CodePush{
			AID: bc.aid, App: bc.app.Name(), Size: bc.app.CodeSize(),
		}}); err != nil {
			b.Fatal(err)
		}
		if f, err = bc.c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	if f.Kind != offload.KindResult {
		b.Fatalf("expected result, got %s", f.Kind)
	}
	if f.Result.Err != "" {
		b.Fatalf("cloud error: %s", f.Result.Err)
	}
}

// benchSpeed runs virtual time fast enough that the engine-side task cost
// is small and the measured number is dominated by dispatch latency —
// the quantity the event-driven driver exists to fix.
const benchSpeed = 20000

func benchmarkRoundtrip(b *testing.B, ticker bool) {
	cfg := core.DefaultConfig(core.KindRattrap)
	var srv *Server
	if ticker {
		srv = NewTickerServer(cfg, benchSpeed, nil)
	} else {
		srv = NewServer(cfg, benchSpeed, nil)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer ln.Close()

	bc := newBenchClient(b, ln.Addr().String())
	defer bc.conn.Close()
	bc.roundtrip(b, 0) // warm-up: boots the runtime and stages the code

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.roundtrip(b, i+1)
	}
	b.StopTimer()
	p50, p95, p99 := srv.Latency().Percentiles()
	b.ReportMetric(float64(p50.Microseconds()), "p50-us")
	b.ReportMetric(float64(p95.Microseconds()), "p95-us")
	b.ReportMetric(float64(p99.Microseconds()), "p99-us")
}

// BenchmarkRealtimeRoundtrip measures a warehouse-hit exec request over
// loopback TCP: event-driven pacing versus the legacy 2 ms ticker.
func BenchmarkRealtimeRoundtrip(b *testing.B) {
	b.Run("event", func(b *testing.B) { benchmarkRoundtrip(b, false) })
	b.Run("ticker", func(b *testing.B) { benchmarkRoundtrip(b, true) })
}

// The throughput benchmark wants a request whose *paced* virtual cost
// (the exec sleep, which overlapping requests share) dominates its
// serialized dispatch overhead, while the real factorization stays cheap:
// an order-64 system is ~0.15 s virtual but only ~80k real flops. At 200x
// (still well past the 100x floor) the paced portion is a few hundred µs
// of wall time — the window pipelining exists to overlap. At benchSpeed
// it would round to zero and every depth would measure only the
// serialized dispatch path.
const (
	throughputSpeed = 200
	throughputOrder = 64
)

func benchmarkThroughput(b *testing.B, depth int, wire offload.Wire) {
	cfg := core.DefaultConfig(core.KindRattrap)
	cfg.IdleTimeout = 0
	srv := NewServerOpts(cfg, throughputSpeed, nil, Options{PipelineDepth: depth})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())
	params := linpackParams(b, throughputOrder)
	pc := offload.NewPipelineClient(offload.NewConnWire(conn, wire), depth,
		func(need offload.NeedCode) (offload.CodePush, error) {
			return offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}, nil
		},
		func(res offload.Result) {
			if res.Err != "" {
				b.Errorf("request %d: cloud error: %s", res.Seq, res.Err)
			}
		})
	if err := pc.Hello("bench-dev"); err != nil {
		b.Fatal(err)
	}
	submit := func(seq int) {
		if err := pc.Submit(offload.ExecRequest{
			AID: aid, App: app.Name(), Method: "solve", Seq: seq,
			Params: params, ParamBytes: 500,
		}); err != nil {
			b.Fatal(err)
		}
	}
	submit(0) // warm-up: boots the runtime and stages the code
	if err := pc.Flush(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		submit(i + 1)
	}
	if err := pc.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
}

// BenchmarkServerThroughput measures closed-loop requests/sec over one
// connection: serial (depth 1) versus pipelined (depth 8), on each wire
// codec. Pipelining overlaps the dispatch injections and wire I/O of up
// to 8 requests, so depth 8 should sustain a multiple of the serial
// request rate; the binary codec strips the gob reflection and per-frame
// allocation off the same path.
func BenchmarkServerThroughput(b *testing.B) {
	for _, wire := range []offload.Wire{offload.WireGob, offload.WireBinary} {
		b.Run(string(wire), func(b *testing.B) {
			b.Run("depth1", func(b *testing.B) { benchmarkThroughput(b, 1, wire) })
			b.Run("depth8", func(b *testing.B) { benchmarkThroughput(b, 8, wire) })
		})
	}
}
