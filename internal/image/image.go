// Package image models the Android-x86 4.4 (KitKat) system image used as
// the mobile OS in both the VM baseline and Cloud Android Containers, with
// the composition the paper measured (§III-E, §IV-B3):
//
//   - entire OS ≈ 1.1 GB, of which /system is 985 MB (87.4%);
//   - 771 MB (68.4%) is never accessed by offloaded code: 20 built-in apps,
//     197 hardware .so libraries, 4372 kernel modules (.ko), 396 firmware
//     blobs (.bin), plus media and dormant vendor files;
//   - the customized OS for offloading additionally drops the UI/telephony
//     services (which a full boot does touch), keeping ~31.6% of the image.
//
// A Manifest is a recipe: BuildLayer materializes it as a unionfs layer,
// BootFiles/OnDemandFiles enumerate what a boot and subsequent offloading
// execution read. Sizes are per category with even per-file split, so the
// aggregate numbers above are exact while individual files stay plausible.
package image

import (
	"fmt"

	"rattrap/internal/host"
	"rattrap/internal/unionfs"
)

// Category is one family of files in the image.
type Category struct {
	Name  string
	Dir   string
	Ext   string
	Files int
	Total host.Bytes
	// Strippable files are never accessed by boot or offloaded code and
	// are removed by OS customization (§IV-B3).
	Strippable bool
	// UIService files are read by a *full* Android boot (system UI,
	// telephony, rendering) but removed by customization, which fakes
	// their interfaces with direct returns instead.
	UIService bool
	// VMOnly files exist only in the VM disk image (kernel, ramdisk,
	// recovery, swap); containers share the host kernel instead.
	VMOnly bool
	// BootFrac is the fraction of the category's files a boot reads.
	// The rest are loaded on demand by offloaded code.
	BootFrac float64
}

// Manifest is an ordered set of categories describing one OS image.
type Manifest struct {
	Name string
	Cats []Category
}

// FileRef names one file and its size.
type FileRef struct {
	Path string
	Size host.Bytes
}

// AndroidX86 returns the full Android-x86 4.4 r2 image. The category sizes
// reproduce the paper's measurements exactly: total 1126 MB (≈1.1 GB),
// /system 985 MB (87.4%), never-accessed 771 MB (68.4%).
func AndroidX86() Manifest {
	return Manifest{
		Name: "android-x86-4.4-r2",
		Cats: []Category{
			{Name: "boot", Dir: "/boot", Ext: ".img", Files: 62, Total: 82 * host.MB, VMOnly: true, BootFrac: 0.2},
			{Name: "framework", Dir: "/system/framework", Ext: ".jar", Files: 30, Total: 100 * host.MB, BootFrac: 0.75},
			{Name: "corelib", Dir: "/system/lib", Ext: ".so", Files: 150, Total: 50 * host.MB, BootFrac: 0.7},
			{Name: "coresvc", Dir: "/system/priv-app", Ext: ".apk", Files: 12, Total: 24 * host.MB, BootFrac: 0.9},
			{Name: "uisvc", Dir: "/system/ui", Ext: ".apk", Files: 10, Total: 40 * host.MB, UIService: true, BootFrac: 0.9},
			{Name: "hwlib", Dir: "/system/lib/hw", Ext: ".so", Files: 197, Total: 88 * host.MB, Strippable: true},
			{Name: "modules", Dir: "/system/lib/modules", Ext: ".ko", Files: 4372, Total: 175 * host.MB, Strippable: true},
			{Name: "firmware", Dir: "/system/etc/firmware", Ext: ".bin", Files: 396, Total: 130 * host.MB, Strippable: true},
			{Name: "apps", Dir: "/system/app", Ext: ".apk", Files: 20, Total: 168 * host.MB, Strippable: true},
			{Name: "media", Dir: "/system/media", Ext: ".dat", Files: 240, Total: 145 * host.MB, Strippable: true},
			{Name: "vendor", Dir: "/system/vendor", Ext: ".so", Files: 60, Total: 65 * host.MB, Strippable: true},
			{Name: "data", Dir: "/data", Ext: ".db", Files: 40, Total: 45 * host.MB, BootFrac: 0.3},
			{Name: "binetc", Dir: "/etc", Ext: "", Files: 60, Total: 14 * host.MB, BootFrac: 1.0},
		},
	}
}

// ForContainer drops the VM-only categories: containers share the host
// kernel and need no boot/recovery partitions. This is the non-optimized
// Cloud Android Container rootfs (1.02 GB in Table I).
func (m Manifest) ForContainer() Manifest {
	out := Manifest{Name: m.Name + "-container"}
	for _, c := range m.Cats {
		if !c.VMOnly {
			out.Cats = append(out.Cats, c)
		}
	}
	return out
}

// Customized applies the §IV-B3 OS customization: strippable categories
// (hardware drivers, firmware, built-in apps, media) and the UI/telephony
// services are removed; calls into the removed services are faked with
// direct returns by the modified runtime. The result is the shared-layer
// content for optimized Cloud Android Containers.
func (m Manifest) Customized() Manifest {
	out := Manifest{Name: m.Name + "-custom"}
	for _, c := range m.Cats {
		if c.VMOnly || c.Strippable || c.UIService {
			continue
		}
		out.Cats = append(out.Cats, c)
	}
	return out
}

// Category returns the named category.
func (m Manifest) Category(name string) (Category, bool) {
	for _, c := range m.Cats {
		if c.Name == name {
			return c, true
		}
	}
	return Category{}, false
}

// TotalBytes is the size of the whole image.
func (m Manifest) TotalBytes() host.Bytes {
	var t host.Bytes
	for _, c := range m.Cats {
		t += c.Total
	}
	return t
}

// SystemBytes is the size under /system.
func (m Manifest) SystemBytes() host.Bytes {
	var t host.Bytes
	for _, c := range m.Cats {
		if len(c.Dir) >= 7 && c.Dir[:7] == "/system" {
			t += c.Total
		}
	}
	return t
}

// StrippableBytes is the size of categories never accessed by offloading.
func (m Manifest) StrippableBytes() host.Bytes {
	var t host.Bytes
	for _, c := range m.Cats {
		if c.Strippable {
			t += c.Total
		}
	}
	return t
}

// filePath names the i-th file of a category.
func filePath(c Category, i int) string {
	return fmt.Sprintf("%s/%s_%04d%s", c.Dir, c.Name, i, c.Ext)
}

// fileSize returns the size of the i-th file: an even split with the
// remainder assigned to file 0, so category totals are exact.
func fileSize(c Category, i int) host.Bytes {
	base := c.Total / host.Bytes(c.Files)
	if i == 0 {
		return base + c.Total%host.Bytes(c.Files)
	}
	return base
}

// BuildLayer materializes the manifest as a unionfs layer.
func (m Manifest) BuildLayer(name string, readOnly bool) *unionfs.Layer {
	l := unionfs.NewLayer(name, readOnly)
	for _, c := range m.Cats {
		for i := 0; i < c.Files; i++ {
			l.AddFile(filePath(c, i), fileSize(c, i), nil)
		}
	}
	return l
}

// BootFiles enumerates the files a boot of this image reads: the first
// BootFrac of each non-strippable category (UI services included when
// present, i.e. a full, non-customized boot).
func (m Manifest) BootFiles() []FileRef {
	var out []FileRef
	for _, c := range m.Cats {
		if c.Strippable || c.BootFrac <= 0 {
			continue
		}
		n := int(float64(c.Files)*c.BootFrac + 0.5)
		for i := 0; i < n; i++ {
			out = append(out, FileRef{Path: filePath(c, i), Size: fileSize(c, i)})
		}
	}
	return out
}

// OnDemandFiles enumerates the non-strippable files a boot does not read.
// The post-boot background scan (media scanner, background dexopt, lazy
// class loads) touches them over the first minute of uptime, which is why
// Observation 4 finds exactly the strippable set untouched. Files are
// interleaved round-robin across categories so the scan's load is even.
func (m Manifest) OnDemandFiles() []FileRef {
	var perCat [][]FileRef
	for _, c := range m.Cats {
		if c.Strippable {
			continue
		}
		n := int(float64(c.Files)*c.BootFrac + 0.5)
		var refs []FileRef
		for i := n; i < c.Files; i++ {
			refs = append(refs, FileRef{Path: filePath(c, i), Size: fileSize(c, i)})
		}
		if len(refs) > 0 {
			perCat = append(perCat, refs)
		}
	}
	var out []FileRef
	for len(perCat) > 0 {
		kept := perCat[:0]
		for _, refs := range perCat {
			out = append(out, refs[0])
			if rest := refs[1:]; len(rest) > 0 {
				kept = append(kept, rest)
			}
		}
		perCat = kept
	}
	return out
}

// BootBytes is the total size of BootFiles.
func (m Manifest) BootBytes() host.Bytes {
	var t host.Bytes
	for _, f := range m.BootFiles() {
		t += f.Size
	}
	return t
}
