package image

import (
	"strings"
	"testing"

	"rattrap/internal/host"
)

func TestPaperComposition(t *testing.T) {
	m := AndroidX86()
	// Entire OS ≈ 1.1 GB.
	if got := m.TotalBytes(); got != 1126*host.MB {
		t.Fatalf("total = %d MB, want 1126", got/host.MB)
	}
	// /system occupies 985 MB = 87.4% of the image.
	if got := m.SystemBytes(); got != 985*host.MB {
		t.Fatalf("/system = %d MB, want 985", got/host.MB)
	}
	frac := float64(m.SystemBytes()) / float64(m.TotalBytes())
	if frac < 0.870 || frac > 0.878 {
		t.Fatalf("/system fraction = %.3f, want ≈0.874", frac)
	}
	// 771 MB (68.4%) never accessed by offloading.
	if got := m.StrippableBytes(); got != 771*host.MB {
		t.Fatalf("strippable = %d MB, want 771", got/host.MB)
	}
	never := float64(m.StrippableBytes()) / float64(m.TotalBytes())
	if never < 0.68 || never > 0.69 {
		t.Fatalf("never-accessed fraction = %.3f, want ≈0.684", never)
	}
}

func TestPaperRedundancyCounts(t *testing.T) {
	m := AndroidX86()
	for _, tc := range []struct {
		cat   string
		files int
	}{
		{"apps", 20},      // 20 built-in Android apps
		{"hwlib", 197},    // 197 shared library files (.so)
		{"modules", 4372}, // 4372 kernel modules (.ko)
		{"firmware", 396}, // 396 firmware libraries (.bin)
	} {
		c, ok := m.Category(tc.cat)
		if !ok || c.Files != tc.files {
			t.Errorf("category %s: files = %d, want %d", tc.cat, c.Files, tc.files)
		}
		if !c.Strippable {
			t.Errorf("category %s should be strippable", tc.cat)
		}
	}
}

func TestForContainerDropsVMOnly(t *testing.T) {
	full := AndroidX86()
	cont := full.ForContainer()
	if _, ok := cont.Category("boot"); ok {
		t.Fatal("container manifest still has /boot")
	}
	// Table I: container rootfs ≈ 1.02 GB.
	gb := float64(cont.TotalBytes()) / float64(host.GB)
	if gb < 1.0 || gb > 1.04 {
		t.Fatalf("container image = %.3f GB, want ≈1.02", gb)
	}
}

func TestCustomizedKeepsOnlyCore(t *testing.T) {
	cust := AndroidX86().Customized()
	for _, c := range cust.Cats {
		if c.Strippable || c.UIService || c.VMOnly {
			t.Fatalf("customized manifest still contains %s", c.Name)
		}
	}
	// Accessed set = total - strippable = 355 MB ≈ 31.6% of the image.
	full := AndroidX86()
	accessed := full.TotalBytes() - full.StrippableBytes()
	if accessed != 355*host.MB {
		t.Fatalf("accessed set = %d MB, want 355", accessed/host.MB)
	}
	frac := float64(accessed) / float64(full.TotalBytes())
	if frac < 0.31 || frac > 0.32 {
		t.Fatalf("needed fraction = %.3f, want ≈0.316", frac)
	}
	// Customized = core minus VM-only minus UI services.
	want := accessed - 82*host.MB - 40*host.MB
	if cust.TotalBytes() != want {
		t.Fatalf("customized = %d MB, want %d", cust.TotalBytes()/host.MB, want/host.MB)
	}
}

func TestBuildLayerExactSizes(t *testing.T) {
	m := AndroidX86()
	l := m.BuildLayer("img", true)
	if l.Size() != m.TotalBytes() {
		t.Fatalf("layer size %d != manifest %d", l.Size(), m.TotalBytes())
	}
	wantFiles := 0
	for _, c := range m.Cats {
		wantFiles += c.Files
	}
	if l.FileCount() != wantFiles {
		t.Fatalf("layer files = %d, want %d", l.FileCount(), wantFiles)
	}
	if got := l.SizeUnder("/system"); got != m.SystemBytes() {
		t.Fatalf("/system in layer = %d, want %d", got, m.SystemBytes())
	}
}

func TestBootAndOnDemandPartitionCore(t *testing.T) {
	m := AndroidX86().ForContainer()
	boot := m.BootFiles()
	onDemand := m.OnDemandFiles()
	var bootB, odB host.Bytes
	seen := make(map[string]bool)
	for _, f := range boot {
		bootB += f.Size
		if seen[f.Path] {
			t.Fatalf("duplicate boot file %s", f.Path)
		}
		seen[f.Path] = true
	}
	for _, f := range onDemand {
		odB += f.Size
		if seen[f.Path] {
			t.Fatalf("file %s in both boot and on-demand sets", f.Path)
		}
		seen[f.Path] = true
	}
	core := m.TotalBytes() - m.StrippableBytes()
	if bootB+odB != core {
		t.Fatalf("boot %d + on-demand %d != core %d", bootB, odB, core)
	}
	if bootB <= 0 || odB <= 0 {
		t.Fatal("expected both boot and on-demand sets to be non-empty")
	}
}

func TestCustomizedBootSmallerThanFull(t *testing.T) {
	full := AndroidX86().ForContainer()
	cust := AndroidX86().Customized()
	if cust.BootBytes() >= full.BootBytes() {
		t.Fatalf("customized boot set %d MB not smaller than full %d MB",
			cust.BootBytes()/host.MB, full.BootBytes()/host.MB)
	}
}

func TestNoStrippableFilesInBootSet(t *testing.T) {
	m := AndroidX86()
	for _, f := range m.BootFiles() {
		for _, dir := range []string{"/system/lib/hw", "/system/lib/modules", "/system/etc/firmware", "/system/app/", "/system/media", "/system/vendor"} {
			if strings.HasPrefix(f.Path, dir) {
				t.Fatalf("boot reads strippable file %s", f.Path)
			}
		}
	}
}

func TestFileSizesSumExactly(t *testing.T) {
	m := AndroidX86()
	for _, c := range m.Cats {
		var sum host.Bytes
		for i := 0; i < c.Files; i++ {
			sum += fileSize(c, i)
		}
		if sum != c.Total {
			t.Fatalf("category %s: files sum to %d, want %d", c.Name, sum, c.Total)
		}
	}
}
