package offload

import (
	"encoding/binary"
	"fmt"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

// Content-addressed code chunking: the delta half of the warehouse. A code
// blob is split into fixed-size chunks, each named by its content hash
// (FNV-1a with a murmur fmix64 finalizer — the same hash discipline as the
// cluster ring, which already learned that raw FNV clusters related keys).
// A device offers the hash list of its blob; the server answers with the
// subset its chunk store is missing; only those chunks cross the network.
// App families sharing libraries (the same app at different code sizes)
// therefore transfer their common prefix exactly once, ever.

// ChunkSize is the fixed content-addressing granularity. 64 KiB keeps the
// hash list small (8 bytes per 64 KiB ≈ 0.012% overhead) while still
// splitting a multi-megabyte app into enough chunks to dedup libraries.
const ChunkSize = 64 * host.KB

// fmix64 is the murmur3 64-bit avalanche finalizer.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ChunkHash names a chunk by its content: 64-bit FNV-1a, finalized with
// fmix64 so related chunks (shared prefixes, counter-stamped tails) spread
// over the full hash space. 64 bits keeps birthday collisions negligible
// at fleet scale (a 32-bit hash reaches ~50% collision odds at only ~77k
// unique chunks — a few GiB of unique code — and a collision silently
// aliases two distinct chunks); at 8 B per 64 KiB the wire cost is noise.
func ChunkHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return fmix64(h)
}

// SplitBlob cuts data into ChunkSize chunks; the last chunk may be short.
// The chunks alias data (no copying). An empty blob has no chunks.
func SplitBlob(data []byte) [][]byte {
	if len(data) == 0 {
		return nil
	}
	n := (len(data) + int(ChunkSize) - 1) / int(ChunkSize)
	out := make([][]byte, 0, n)
	for off := 0; off < len(data); off += int(ChunkSize) {
		end := off + int(ChunkSize)
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end:end])
	}
	return out
}

// ChunkBlob returns the content hashes of data's chunks, in order.
func ChunkBlob(data []byte) []uint64 {
	chunks := SplitBlob(data)
	if chunks == nil {
		return nil
	}
	out := make([]uint64, len(chunks))
	for i, c := range chunks {
		out[i] = ChunkHash(c)
	}
	return out
}

// ChunkCount returns how many chunks a blob of the given size splits into.
func ChunkCount(size host.Bytes) int {
	if size <= 0 {
		return 0
	}
	return int((size + ChunkSize - 1) / ChunkSize)
}

// ChunkSpan returns the byte size of chunk i of a blob of the given total
// size: ChunkSize for every chunk but a short last one.
func ChunkSpan(size host.Bytes, i int) host.Bytes {
	n := ChunkCount(size)
	if i < 0 || i >= n {
		return 0
	}
	if i == n-1 {
		return size - host.Bytes(n-1)*ChunkSize
	}
	return ChunkSize
}

// SyntheticManifest derives the chunk-hash list of a modeled code blob
// (the simulated path carries sizes, not bytes). Hashes are a pure
// function of (app, size), so every holder of the same blob derives the
// same manifest. The leading ~7/8 of chunks are salted only by the app
// name and chunk index — the shared library segment that all code sizes
// of one app family have in common — while the tail ~1/8 is additionally
// salted by the exact size: the variant's unique code.
func SyntheticManifest(app string, size host.Bytes) []uint64 {
	n := ChunkCount(size)
	if n == 0 {
		return nil
	}
	uniq := (n + 7) / 8
	shared := n - uniq
	out := make([]uint64, n)
	for i := range out {
		var seed string
		if i < shared {
			seed = fmt.Sprintf("%s:lib:%d", app, i)
		} else {
			seed = fmt.Sprintf("%s:%d:uniq:%d", app, size, i)
		}
		out[i] = ChunkHash([]byte(seed))
	}
	return out
}

// PackHashes flattens a hash list to 8-byte little-endian words — the
// payload format chunk offers and need-replies carry on the wire.
func PackHashes(hs []uint64) []byte {
	if len(hs) == 0 {
		return nil
	}
	out := make([]byte, 8*len(hs))
	for i, h := range hs {
		binary.LittleEndian.PutUint64(out[8*i:], h)
	}
	return out
}

// UnpackHashes parses a packed hash list.
func UnpackHashes(b []byte) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("offload: packed hash list of %d bytes is not a multiple of 8", len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out, nil
}

// DeltaBytes sums the payload bytes of the missing chunks of an offer —
// what a delta push actually moves over the network.
func DeltaBytes(offer ChunkOffer, missing []uint64) host.Bytes {
	if len(missing) == 0 {
		return 0
	}
	idx := make(map[uint64]host.Bytes, len(offer.Hashes))
	for i, h := range offer.Hashes {
		if _, ok := idx[h]; !ok {
			idx[h] = ChunkSpan(offer.Size, i)
		}
	}
	var total host.Bytes
	for _, h := range missing {
		total += idx[h]
	}
	return total
}

// ChunkOffer is a device's delta-push opening: the identity of the blob it
// wants to push and the content hashes of its chunks.
type ChunkOffer struct {
	AID    string
	App    string
	Size   host.Bytes
	Seq    int
	Hashes []uint64
}

// ChunkNeed is the server's answer: the subset of offered chunks its
// store is missing. Supported=false means the server does not speak delta
// push (chunking disabled, or no warehouse) and the device must fall back
// to a full push.
type ChunkNeed struct {
	Seq       int
	AID       string
	Missing   []uint64
	Supported bool
}

// ChunkedSession is a Session that can negotiate a content-addressed delta
// push instead of a full code transfer.
type ChunkedSession interface {
	Session
	// NegotiateChunks answers an offer with the chunks the server is
	// missing. A Supported=false reply tells the device to fall back to
	// PushCode.
	NegotiateChunks(p *sim.Proc, offer ChunkOffer) (ChunkNeed, error)
	// PushChunks completes a negotiated delta push: only the missing
	// chunks were transferred; the warehouse stages them and binds the
	// reassembled blob under the offer's AID.
	PushChunks(p *sim.Proc, offer ChunkOffer, missing []uint64) error
}

// Wire carriers: chunk frames ride the existing exported Frame shape (an
// ExecRequest payload) so the legacy gob stream's type descriptors — and
// therefore its golden bytes — are untouched; the binary codec gives the
// same carriers first-class discriminators. Field mapping:
//
//	Exec.AID        = offer/need AID
//	Exec.App        = offer App (offers only)
//	Exec.ParamBytes = offer Size (offers only)
//	Exec.Seq        = Seq
//	Exec.RoundTrips = need Supported (1/0; need replies only)
//	Exec.Params     = packed hash list (offered / missing)

// ChunkOfferFrame packs an offer into its wire frame.
func ChunkOfferFrame(o *ChunkOffer) Frame {
	return Frame{Kind: KindChunkOffer, Exec: &ExecRequest{
		AID:        o.AID,
		App:        o.App,
		ParamBytes: o.Size,
		Seq:        o.Seq,
		Params:     PackHashes(o.Hashes),
	}}
}

// DecodeChunkOffer unpacks a KindChunkOffer frame.
func DecodeChunkOffer(f Frame) (ChunkOffer, error) {
	if f.Kind != KindChunkOffer || f.Exec == nil {
		return ChunkOffer{}, fmt.Errorf("offload: not a chunk offer frame (kind %q)", f.Kind)
	}
	hs, err := UnpackHashes(f.Exec.Params)
	if err != nil {
		return ChunkOffer{}, err
	}
	return ChunkOffer{
		AID:    f.Exec.AID,
		App:    f.Exec.App,
		Size:   f.Exec.ParamBytes,
		Seq:    f.Exec.Seq,
		Hashes: hs,
	}, nil
}

// ChunkNeedFrame packs a need-reply into its wire frame.
func ChunkNeedFrame(n *ChunkNeed) Frame {
	sup := 0
	if n.Supported {
		sup = 1
	}
	return Frame{Kind: KindChunkNeed, Exec: &ExecRequest{
		AID:        n.AID,
		Seq:        n.Seq,
		RoundTrips: sup,
		Params:     PackHashes(n.Missing),
	}}
}

// DecodeChunkNeed unpacks a KindChunkNeed frame.
func DecodeChunkNeed(f Frame) (ChunkNeed, error) {
	if f.Kind != KindChunkNeed || f.Exec == nil {
		return ChunkNeed{}, fmt.Errorf("offload: not a chunk need frame (kind %q)", f.Kind)
	}
	hs, err := UnpackHashes(f.Exec.Params)
	if err != nil {
		return ChunkNeed{}, err
	}
	return ChunkNeed{
		AID:       f.Exec.AID,
		Seq:       f.Exec.Seq,
		Supported: f.Exec.RoundTrips != 0,
		Missing:   hs,
	}, nil
}
