package offload

import (
	"bytes"
	"encoding/hex"
	"io"
	"os"
	"strings"
	"testing"

	"rattrap/internal/host"
)

// goldenFrames is the canonical frame sequence pinned by
// testdata/gob_stream.golden. The golden bytes were captured from the
// pre-binary-codec release, so this test proves the gob fallback stayed
// byte-identical across the codec split: a legacy client sees exactly
// the wire it always saw.
func goldenFrames() []Frame {
	return []Frame{
		{Kind: KindHello, Hello: &Hello{DeviceID: "phone-1"}},
		{Kind: KindExec, Exec: &ExecRequest{
			DeviceID: "phone-1", AID: "a1b2c3d4", App: "Linpack", Method: "solve",
			Seq: 7, Params: []byte{0x01, 0x02, 0x03, 0xfe}, ParamBytes: 500,
			FileBytes: 122 * host.KB, RoundTrips: 3, InteractBytes: 64,
		}},
		{Kind: KindNeedCode, NeedCode: &NeedCode{Seq: 7, AID: "a1b2c3d4"}},
		{Kind: KindNeedCode},
		{Kind: KindCode, Code: &CodePush{AID: "a1b2c3d4", App: "Linpack", Size: 152 * host.KB, Seq: 7}},
		{Kind: KindResult, Result: &Result{Output: "n=64 residual=1.08e-13", ResultBytes: 550, Seq: 7}},
		{Kind: KindResult, Result: &Result{Err: "queue full", Code: CodeOverloaded, RetryAfterMs: 450, Seq: 8}},
	}
}

func readGolden(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile("testdata/gob_stream.golden")
	if err != nil {
		t.Fatal(err)
	}
	want, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("golden file is not hex: %v", err)
	}
	return want
}

// TestGobWireGolden encodes the canonical sequence on one connection and
// compares the stream byte-for-byte with the checked-in golden, then
// decodes the golden bytes back and compares frames semantically.
func TestGobWireGolden(t *testing.T) {
	want := readGolden(t)

	t.Run("encode", func(t *testing.T) {
		var buf bytes.Buffer
		c := NewConn(&buf)
		for i, f := range goldenFrames() {
			if err := c.Send(f); err != nil {
				t.Fatalf("frame %d (%s): %v", i, f.Kind, err)
			}
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("gob stream diverged from the pre-codec-split golden:\n got %d bytes: %x\nwant %d bytes: %x",
				buf.Len(), buf.Bytes(), len(want), want)
		}
	})

	t.Run("decode", func(t *testing.T) {
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(want), io.Discard})
		for i, f := range goldenFrames() {
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("frame %d (%s): %v", i, f.Kind, err)
			}
			if !framesEqual(f, got) {
				t.Fatalf("frame %d (%s): decoded mismatch:\nwant %+v\ngot  %+v", i, f.Kind, f, got)
			}
		}
	})
}
