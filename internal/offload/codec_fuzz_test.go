package offload

import (
	"bytes"
	"io"
	"testing"

	"rattrap/internal/host"
)

// FuzzFrameCodec throws arbitrary bytes at Conn.Recv. The codec must
// never panic, never allocate beyond the frame limit, and — when the
// input happens to be a valid frame — survive a re-encode round trip.
// Run with `go test -fuzz FuzzFrameCodec ./internal/offload/`
// (ci.sh runs a short smoke pass).
func FuzzFrameCodec(f *testing.F) {
	// Seed corpus: one valid encoding of each frame kind, plus broken
	// prefixes and garbage.
	valid := []Frame{
		{Kind: KindHello, Hello: &Hello{DeviceID: "phone-1"}},
		{Kind: KindExec, Exec: &ExecRequest{
			DeviceID: "phone-1", AID: "abc", App: "ChessGame", Method: "bestMove",
			Seq: 3, Params: []byte{1, 2, 3}, ParamBytes: 122 * host.KB,
		}},
		{Kind: KindNeedCode},
		{Kind: KindCode, Code: &CodePush{AID: "abc", App: "ChessGame", Size: 2300 * host.KB}},
		{Kind: KindResult, Result: &Result{Output: "ok", ResultBytes: 7600, Code: CodeOverloaded, RetryAfterMs: 100}},
	}
	for _, fr := range valid {
		var buf bytes.Buffer
		if err := NewConn(&buf).Send(fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// The same frame in the binary codec, so the corpus explores both
		// wire formats from the start.
		var bbuf bytes.Buffer
		if err := NewConnWire(&bbuf, WireBinary).Send(fr); err != nil {
			f.Fatal(err)
		}
		f.Add(bbuf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge uvarint
	f.Add([]byte{0x05, 0x01, 0x02})                                           // truncated payload
	f.Add([]byte{0x00})                                                       // zero-length frame
	f.Add([]byte{0x04, binMagic, BinaryWireVersion, binKindHello, 0x00})      // short binary hello
	f.Add([]byte{0x02, binMagic, 0x07})                                       // unknown binary version
	f.Add([]byte{0x03, binMagic, BinaryWireVersion, 0x63})                    // unknown binary kind

	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		c := NewConnWireLimit(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard}, WireAuto, limit)
		fr, err := c.Recv()
		if err != nil {
			return // malformed input must error, not panic
		}
		if err := fr.Validate(); err != nil {
			t.Fatalf("Recv returned an invalid frame: %v", err)
		}
		// A binary frame's payload aliases the connection's scratch; copy
		// it out so the replays below can't invalidate it.
		fr = cloneFrame(fr)

		// Cross-codec semantic equality: whatever decoded — from either
		// codec — must round-trip through gob AND through the binary codec
		// to frames that compare equal. This pins the two codecs to one
		// semantic model of Frame.
		crossCheck := func(w Wire) Frame {
			var buf bytes.Buffer
			cc := NewConnWireLimit(&buf, w, limit)
			if err := cc.Send(fr); err != nil {
				t.Fatalf("%s re-encode failed: %v", w, err)
			}
			got, err := NewConnWireLimit(struct {
				io.Reader
				io.Writer
			}{&buf, io.Discard}, WireAuto, limit).Recv()
			if err != nil {
				t.Fatalf("%s re-decode failed: %v", w, err)
			}
			return cloneFrame(got)
		}
		viaGob := crossCheck(WireGob)
		viaBin := crossCheck(WireBinary)
		if !framesEqual(fr, viaGob) {
			t.Fatalf("gob round trip changed the frame:\nin  %+v\nout %+v", fr, viaGob)
		}
		if !framesEqual(fr, viaBin) {
			t.Fatalf("binary round trip changed the frame:\nin  %+v\nout %+v", fr, viaBin)
		}
		if !framesEqual(viaGob, viaBin) {
			t.Fatalf("codecs disagree after round trip:\ngob    %+v\nbinary %+v", viaGob, viaBin)
		}
		// Round trip: what decoded must re-encode and decode identically
		// at the kind level.
		var buf bytes.Buffer
		rt := NewConnLimit(&buf, limit)
		if err := rt.Send(fr); err != nil {
			t.Fatalf("re-encoding a decoded frame failed: %v", err)
		}
		back, err := rt.Recv()
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if back.Kind != fr.Kind {
			t.Fatalf("round trip changed kind: %s -> %s", fr.Kind, back.Kind)
		}

		// Pooled-path exercise: run the same frame through one persistent
		// connection several times. Each Recv returns its scratch buffer to
		// the pool and each Send reuses the encoder scratch, so a frame
		// corrupted by buffer recycling (a payload aliasing a recycled
		// buffer, stale bytes from a larger previous frame) would surface
		// as a decode error or a kind flip on the later iterations.
		var stream bytes.Buffer
		pc := NewConnLimit(&stream, limit)
		const rounds = 3
		for i := 0; i < rounds; i++ {
			if err := pc.Send(fr); err != nil {
				t.Fatalf("pooled send %d failed: %v", i, err)
			}
		}
		for i := 0; i < rounds; i++ {
			got, err := pc.Recv()
			if err != nil {
				t.Fatalf("pooled recv %d failed: %v", i, err)
			}
			if got.Kind != fr.Kind {
				t.Fatalf("pooled recv %d changed kind: %s -> %s", i, fr.Kind, got.Kind)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("pooled recv %d returned an invalid frame: %v", i, err)
			}
			if fr.Kind == KindExec && !bytes.Equal(got.Exec.Params, fr.Exec.Params) {
				t.Fatalf("pooled recv %d corrupted params: %x -> %x", i, fr.Exec.Params, got.Exec.Params)
			}
		}
	})
}
