package offload

import (
	"bytes"
	"testing"
	"time"

	"rattrap/internal/host"
)

func TestAIDStableAndDistinct(t *testing.T) {
	a1 := AID("ChessGame", 2300*host.KB)
	a2 := AID("ChessGame", 2300*host.KB)
	if a1 != a2 {
		t.Fatal("AID not stable")
	}
	if a1 == AID("Linpack", 152*host.KB) {
		t.Fatal("different apps share an AID")
	}
	if a1 == AID("ChessGame", 2301*host.KB) {
		t.Fatal("different code sizes share an AID")
	}
	if len(a1) != 16 {
		t.Fatalf("AID %q has unexpected length", a1)
	}
}

func TestPhasesResponse(t *testing.T) {
	p := Phases{
		NetworkConnection:    10 * time.Millisecond,
		DataTransfer:         20 * time.Millisecond,
		RuntimePreparation:   30 * time.Millisecond,
		ComputationExecution: 40 * time.Millisecond,
	}
	if p.Response() != 100*time.Millisecond {
		t.Fatalf("response = %v", p.Response())
	}
}

func TestTrafficAccumulate(t *testing.T) {
	var tr Traffic
	tr.Add(Traffic{CodeUp: 100, FileParamUp: 200, ControlUp: 10, Down: 5})
	tr.Add(Traffic{FileParamUp: 300, ControlUp: 10, Down: 5})
	if tr.Up() != 620 {
		t.Fatalf("up = %d, want 620", tr.Up())
	}
	if tr.Down != 10 {
		t.Fatalf("down = %d", tr.Down)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	frames := []Frame{
		{Kind: KindHello, Hello: &Hello{DeviceID: "phone-1"}},
		{Kind: KindExec, Exec: &ExecRequest{
			DeviceID: "phone-1", AID: "abc", App: "ChessGame", Method: "bestMove",
			Seq: 3, Params: []byte{1, 2, 3}, ParamBytes: 122 * host.KB,
		}},
		{Kind: KindNeedCode},
		{Kind: KindCode, Code: &CodePush{AID: "abc", App: "ChessGame", Size: 2300 * host.KB}},
		{Kind: KindResult, Result: &Result{Output: "bestmove=e2e4", ResultBytes: 7600}},
	}
	for _, f := range frames {
		if err := c.Send(f); err != nil {
			t.Fatalf("send %s: %v", f.Kind, err)
		}
	}
	for _, want := range frames {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Kind, err)
		}
		if got.Kind != want.Kind {
			t.Fatalf("kind = %s, want %s", got.Kind, want.Kind)
		}
		switch want.Kind {
		case KindExec:
			if got.Exec.App != want.Exec.App || got.Exec.Seq != want.Exec.Seq ||
				got.Exec.ParamBytes != want.Exec.ParamBytes || len(got.Exec.Params) != 3 {
				t.Fatalf("exec round trip: %+v", got.Exec)
			}
		case KindResult:
			if got.Result.Output != want.Result.Output {
				t.Fatalf("result round trip: %+v", got.Result)
			}
		}
	}
}

func TestCodecRejectsMalformedFrames(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(Frame{Kind: KindExec}); err == nil {
		t.Fatal("exec frame without payload accepted")
	}
	if err := c.Send(Frame{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
