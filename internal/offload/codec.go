package offload

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The real-time wire protocol used by cmd/rattrapd and cmd/rattrap-client:
// length-prefixed gob messages over a stream. The simulated path models
// the same exchange with netsim transfer sizes; the message *types* are
// shared so both paths speak the identical protocol.
//
// Each frame is one uvarint byte length followed by that many bytes of
// gob-encoded Frame. The explicit length prefix exists so the receiver
// can reject an oversize frame *before* allocating for it: a bare gob
// stream accepts an attacker-controlled declared message size and
// allocates up to its internal 1 GiB ceiling from a single malicious
// frame. With the prefix, anything above the connection's frame limit is
// refused with ErrFrameTooLarge at the cost of one uvarint read.
//
// # Pooled wire path
//
// The codec is allocation-lean on the per-frame hot path:
//
//   - One gob.Encoder and one gob.Decoder persist for the Conn's lifetime.
//     Gob streams carry their type definitions once up front, so the first
//     frame in each direction pays the descriptor bytes and every later
//     frame is value-only — smaller on the wire and cheaper to code. A
//     fresh encoder per frame (the old scheme) re-sent the descriptors and
//     re-allocated the engine state on every Send.
//   - The encode scratch buffer (sendBuf) lives on the Conn and is Reset
//     between frames; a warm Send performs zero heap allocations (gated by
//     TestFrameEncodeZeroAlloc).
//   - Recv payload buffers come from a package-level sync.Pool shared by
//     all connections. Gob copies decoded data out of the scratch buffer,
//     so the buffer is recycled as soon as Decode returns.
//
// The price of the persistent stream state: a Conn whose Send or Recv
// returned an error is poisoned (the two sides' descriptor state may have
// diverged) and must be dropped, not reused. Every caller in this repo
// already treats codec errors as connection-fatal.

// DefaultMaxFrame bounds a single frame's encoded size. Code pushes carry
// metadata (the blob itself is modeled by size), and Params payloads are
// small; 4 MiB leaves two orders of magnitude of headroom.
const DefaultMaxFrame = 4 << 20

// ErrFrameTooLarge reports a frame whose declared size exceeds the
// connection's limit. Matches with errors.Is.
var ErrFrameTooLarge = errors.New("offload: frame exceeds size limit")

// Kind discriminates frames.
type Kind string

// Frame kinds.
const (
	KindHello    Kind = "hello"
	KindExec     Kind = "exec"
	KindNeedCode Kind = "needcode"
	KindCode     Kind = "code"
	KindResult   Kind = "result"
)

// Hello opens a device connection.
type Hello struct {
	DeviceID string
}

// NeedCode asks the device to transfer mobile code. Seq identifies which
// in-flight request the ask belongs to, so pipelined clients can route it;
// serial clients may ignore the payload (and old-style NEED_CODE frames
// without one are still valid).
type NeedCode struct {
	Seq int
	AID string
}

// Frame is one protocol message.
type Frame struct {
	Kind     Kind
	Hello    *Hello
	Exec     *ExecRequest
	NeedCode *NeedCode
	Code     *CodePush
	Result   *Result
}

// Validate checks that the frame's payload matches its kind.
func (f *Frame) Validate() error {
	switch f.Kind {
	case KindHello:
		if f.Hello == nil {
			return fmt.Errorf("offload: hello frame without payload")
		}
	case KindExec:
		if f.Exec == nil {
			return fmt.Errorf("offload: exec frame without payload")
		}
	case KindCode:
		if f.Code == nil {
			return fmt.Errorf("offload: code frame without payload")
		}
	case KindResult:
		if f.Result == nil {
			return fmt.Errorf("offload: result frame without payload")
		}
	case KindNeedCode:
		// Payload optional: it routes the ask under pipelining.
	default:
		return fmt.Errorf("offload: unknown frame kind %q", f.Kind)
	}
	return nil
}

// recvBufPool recycles Recv payload scratch buffers across all
// connections. It stores *[]byte (not []byte) so Put does not box a fresh
// slice header per call. Buffers are capacity-capped on return so a single
// oversized frame does not pin its worst-case allocation forever.
var recvBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledBuf caps the capacity of buffers returned to recvBufPool.
const maxPooledBuf = 64 << 10

// frameReader serves one frame's payload bytes to the persistent gob
// decoder. It implements io.ByteReader so gob does not wrap it in a
// bufio.Reader (which would read ahead across frame boundaries).
type frameReader struct {
	buf []byte
	pos int
}

func (r *frameReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.pos:])
	r.pos += n
	return n, nil
}

func (r *frameReader) ReadByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, io.EOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// Conn frames protocol messages over a byte stream. Conn methods are not
// safe for concurrent use: pipelined callers must funnel all Sends through
// one writer goroutine and all Recvs through one reader goroutine (the
// two directions are independent).
type Conn struct {
	r        *bufio.Reader
	w        io.Writer
	maxFrame int

	// Send-side persistent state: the gob stream encoder, its scratch
	// buffer, and a scratch Frame that keeps the encoded value off the
	// heap (passing a stack &f to Encode would escape per call).
	enc        *gob.Encoder
	sendBuf    bytes.Buffer
	sendFrame  Frame
	lenBuf     [binary.MaxVarintLen64]byte
	sendBroken bool

	// Recv-side persistent state: the gob stream decoder and the reader
	// it drains the current frame from.
	dec        *gob.Decoder
	recvSrc    frameReader
	recvBroken bool
}

// NewConn wraps a stream (e.g. a net.Conn) in the protocol codec with the
// default frame-size limit.
func NewConn(rw io.ReadWriter) *Conn { return NewConnLimit(rw, DefaultMaxFrame) }

// NewConnLimit wraps a stream with an explicit frame-size limit.
// maxFrame <= 0 selects DefaultMaxFrame.
func NewConnLimit(rw io.ReadWriter, maxFrame int) *Conn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	c := &Conn{r: bufio.NewReader(rw), w: rw, maxFrame: maxFrame}
	c.enc = gob.NewEncoder(&c.sendBuf)
	c.dec = gob.NewDecoder(&c.recvSrc)
	return c
}

// Send writes one frame. After a non-nil error the Conn's send side is
// poisoned and the connection must be dropped: the persistent gob stream
// state may no longer agree with the receiver's.
func (c *Conn) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if c.sendBroken {
		return errors.New("offload: send on poisoned connection")
	}
	c.sendBuf.Reset()
	c.sendFrame = f
	if err := c.enc.Encode(&c.sendFrame); err != nil {
		c.sendBroken = true
		return err
	}
	c.sendFrame = Frame{} // don't pin payload pointers between sends
	if c.sendBuf.Len() > c.maxFrame {
		c.sendBroken = true
		return fmt.Errorf("%w: encoding %d bytes, limit %d", ErrFrameTooLarge, c.sendBuf.Len(), c.maxFrame)
	}
	n := binary.PutUvarint(c.lenBuf[:], uint64(c.sendBuf.Len()))
	if _, err := c.w.Write(c.lenBuf[:n]); err != nil {
		c.sendBroken = true
		return err
	}
	if _, err := c.w.Write(c.sendBuf.Bytes()); err != nil {
		c.sendBroken = true
		return err
	}
	return nil
}

// Recv reads one frame. A frame whose declared size exceeds the
// connection's limit is rejected with ErrFrameTooLarge before any
// payload-sized allocation happens. After a non-nil error (other than a
// clean io.EOF at a frame boundary) the Conn's receive side is poisoned
// and the connection must be dropped.
func (c *Conn) Recv() (Frame, error) {
	if c.recvBroken {
		return Frame{}, errors.New("offload: recv on poisoned connection")
	}
	size, err := binary.ReadUvarint(c.r)
	if err != nil {
		return Frame{}, err
	}
	if size > uint64(c.maxFrame) {
		c.recvBroken = true
		return Frame{}, fmt.Errorf("%w: declared %d bytes, limit %d", ErrFrameTooLarge, size, c.maxFrame)
	}
	bp := recvBufPool.Get().(*[]byte)
	if cap(*bp) < int(size) {
		*bp = make([]byte, size)
	}
	buf := (*bp)[:size]
	putBuf := func() {
		if cap(buf) <= maxPooledBuf {
			*bp = buf[:0]
			recvBufPool.Put(bp)
		}
	}
	if _, err := io.ReadFull(c.r, buf); err != nil {
		putBuf()
		c.recvBroken = true
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	c.recvSrc.buf, c.recvSrc.pos = buf, 0
	var f Frame
	err = c.dec.Decode(&f)
	c.recvSrc.buf = nil
	putBuf()
	if err != nil {
		c.recvBroken = true
		return Frame{}, err
	}
	if err := f.Validate(); err != nil {
		c.recvBroken = true
		return Frame{}, err
	}
	return f, nil
}
