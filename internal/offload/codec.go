package offload

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// The real-time wire protocol used by cmd/rattrapd and cmd/rattrap-client:
// length-prefixed gob messages over a stream. The simulated path models
// the same exchange with netsim transfer sizes; the message *types* are
// shared so both paths speak the identical protocol.
//
// Each frame is one uvarint byte length followed by that many bytes of
// gob-encoded Frame. The explicit length prefix exists so the receiver
// can reject an oversize frame *before* allocating for it: a bare gob
// stream accepts an attacker-controlled declared message size and
// allocates up to its internal 1 GiB ceiling from a single malicious
// frame. With the prefix, anything above the connection's frame limit is
// refused with ErrFrameTooLarge at the cost of one uvarint read.

// DefaultMaxFrame bounds a single frame's encoded size. Code pushes carry
// metadata (the blob itself is modeled by size), and Params payloads are
// small; 4 MiB leaves two orders of magnitude of headroom.
const DefaultMaxFrame = 4 << 20

// ErrFrameTooLarge reports a frame whose declared size exceeds the
// connection's limit. Matches with errors.Is.
var ErrFrameTooLarge = errors.New("offload: frame exceeds size limit")

// Kind discriminates frames.
type Kind string

// Frame kinds.
const (
	KindHello    Kind = "hello"
	KindExec     Kind = "exec"
	KindNeedCode Kind = "needcode"
	KindCode     Kind = "code"
	KindResult   Kind = "result"
)

// Hello opens a device connection.
type Hello struct {
	DeviceID string
}

// Frame is one protocol message.
type Frame struct {
	Kind   Kind
	Hello  *Hello
	Exec   *ExecRequest
	Code   *CodePush
	Result *Result
}

// Validate checks that the frame's payload matches its kind.
func (f *Frame) Validate() error {
	switch f.Kind {
	case KindHello:
		if f.Hello == nil {
			return fmt.Errorf("offload: hello frame without payload")
		}
	case KindExec:
		if f.Exec == nil {
			return fmt.Errorf("offload: exec frame without payload")
		}
	case KindCode:
		if f.Code == nil {
			return fmt.Errorf("offload: code frame without payload")
		}
	case KindResult:
		if f.Result == nil {
			return fmt.Errorf("offload: result frame without payload")
		}
	case KindNeedCode:
		// No payload.
	default:
		return fmt.Errorf("offload: unknown frame kind %q", f.Kind)
	}
	return nil
}

// Conn frames protocol messages over a byte stream.
type Conn struct {
	r        *bufio.Reader
	w        io.Writer
	maxFrame int
	sendBuf  bytes.Buffer
	lenBuf   [binary.MaxVarintLen64]byte
}

// NewConn wraps a stream (e.g. a net.Conn) in the protocol codec with the
// default frame-size limit.
func NewConn(rw io.ReadWriter) *Conn { return NewConnLimit(rw, DefaultMaxFrame) }

// NewConnLimit wraps a stream with an explicit frame-size limit.
// maxFrame <= 0 selects DefaultMaxFrame.
func NewConnLimit(rw io.ReadWriter, maxFrame int) *Conn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Conn{r: bufio.NewReader(rw), w: rw, maxFrame: maxFrame}
}

// Send writes one frame.
func (c *Conn) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	c.sendBuf.Reset()
	if err := gob.NewEncoder(&c.sendBuf).Encode(&f); err != nil {
		return err
	}
	if c.sendBuf.Len() > c.maxFrame {
		return fmt.Errorf("%w: encoding %d bytes, limit %d", ErrFrameTooLarge, c.sendBuf.Len(), c.maxFrame)
	}
	n := binary.PutUvarint(c.lenBuf[:], uint64(c.sendBuf.Len()))
	if _, err := c.w.Write(c.lenBuf[:n]); err != nil {
		return err
	}
	_, err := c.w.Write(c.sendBuf.Bytes())
	return err
}

// Recv reads one frame. A frame whose declared size exceeds the
// connection's limit is rejected with ErrFrameTooLarge before any
// payload-sized allocation happens.
func (c *Conn) Recv() (Frame, error) {
	size, err := binary.ReadUvarint(c.r)
	if err != nil {
		return Frame{}, err
	}
	if size > uint64(c.maxFrame) {
		return Frame{}, fmt.Errorf("%w: declared %d bytes, limit %d", ErrFrameTooLarge, size, c.maxFrame)
	}
	buf := make([]byte, int(size))
	if _, err := io.ReadFull(c.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&f); err != nil {
		return Frame{}, err
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
