package offload

import (
	"encoding/gob"
	"fmt"
	"io"
)

// The real-time wire protocol used by cmd/rattrapd and cmd/rattrap-client:
// gob-framed messages over a stream. The simulated path models the same
// exchange with netsim transfer sizes; the message *types* are shared so
// both paths speak the identical protocol.

// Kind discriminates frames.
type Kind string

// Frame kinds.
const (
	KindHello    Kind = "hello"
	KindExec     Kind = "exec"
	KindNeedCode Kind = "needcode"
	KindCode     Kind = "code"
	KindResult   Kind = "result"
)

// Hello opens a device connection.
type Hello struct {
	DeviceID string
}

// Frame is one protocol message.
type Frame struct {
	Kind   Kind
	Hello  *Hello
	Exec   *ExecRequest
	Code   *CodePush
	Result *Result
}

// Validate checks that the frame's payload matches its kind.
func (f *Frame) Validate() error {
	switch f.Kind {
	case KindHello:
		if f.Hello == nil {
			return fmt.Errorf("offload: hello frame without payload")
		}
	case KindExec:
		if f.Exec == nil {
			return fmt.Errorf("offload: exec frame without payload")
		}
	case KindCode:
		if f.Code == nil {
			return fmt.Errorf("offload: code frame without payload")
		}
	case KindResult:
		if f.Result == nil {
			return fmt.Errorf("offload: result frame without payload")
		}
	case KindNeedCode:
		// No payload.
	default:
		return fmt.Errorf("offload: unknown frame kind %q", f.Kind)
	}
	return nil
}

// Conn frames protocol messages over a byte stream.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn wraps a stream (e.g. a net.Conn) in the protocol codec.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// Send writes one frame.
func (c *Conn) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	return c.enc.Encode(&f)
}

// Recv reads one frame.
func (c *Conn) Recv() (Frame, error) {
	var f Frame
	if err := c.dec.Decode(&f); err != nil {
		return Frame{}, err
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
