package offload

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The real-time wire protocol used by cmd/rattrapd and cmd/rattrap-client:
// length-prefixed gob messages over a stream. The simulated path models
// the same exchange with netsim transfer sizes; the message *types* are
// shared so both paths speak the identical protocol.
//
// Each frame is one uvarint byte length followed by that many bytes of
// gob-encoded Frame. The explicit length prefix exists so the receiver
// can reject an oversize frame *before* allocating for it: a bare gob
// stream accepts an attacker-controlled declared message size and
// allocates up to its internal 1 GiB ceiling from a single malicious
// frame. With the prefix, anything above the connection's frame limit is
// refused with ErrFrameTooLarge at the cost of one uvarint read.
//
// # Pooled wire path
//
// The codec is allocation-lean on the per-frame hot path:
//
//   - One gob.Encoder and one gob.Decoder persist for the Conn's lifetime.
//     Gob streams carry their type definitions once up front, so the first
//     frame in each direction pays the descriptor bytes and every later
//     frame is value-only — smaller on the wire and cheaper to code. A
//     fresh encoder per frame (the old scheme) re-sent the descriptors and
//     re-allocated the engine state on every Send.
//   - The encode scratch buffer (sendBuf) lives on the Conn and is Reset
//     between frames; a warm Send performs zero heap allocations (gated by
//     TestFrameEncodeZeroAlloc).
//   - Recv payload buffers come from a package-level sync.Pool shared by
//     all connections. Gob copies decoded data out of the scratch buffer,
//     so the buffer is recycled as soon as Decode returns.
//
// The price of the persistent stream state: a Conn whose Send or Recv
// returned an error is poisoned (the two sides' descriptor state may have
// diverged) and must be dropped, not reused. Every caller in this repo
// already treats codec errors as connection-fatal.

// DefaultMaxFrame bounds a single frame's encoded size. Code pushes carry
// metadata (the blob itself is modeled by size), and Params payloads are
// small; 4 MiB leaves two orders of magnitude of headroom.
const DefaultMaxFrame = 4 << 20

// ErrFrameTooLarge reports a frame whose declared size exceeds the
// connection's limit. Matches with errors.Is.
var ErrFrameTooLarge = errors.New("offload: frame exceeds size limit")

// Kind discriminates frames.
type Kind string

// Frame kinds.
const (
	KindHello    Kind = "hello"
	KindExec     Kind = "exec"
	KindNeedCode Kind = "needcode"
	KindCode     Kind = "code"
	KindResult   Kind = "result"

	// Chunked delta-push negotiation (PushCode's content-addressed fast
	// path). Both ride the Exec carrier — see the wire-carrier notes in
	// chunk.go — so the gob stream's type descriptors stay frozen.
	KindChunkOffer Kind = "chunkoffer"
	KindChunkNeed  Kind = "chunkneed"
)

// Hello opens a device connection.
type Hello struct {
	DeviceID string

	// wireVersion is the binary wire version the client advertises in its
	// handshake. Unexported so it never enters the gob encoding: gob type
	// descriptors cover every exported field, and adding one would change
	// the bytes of the legacy stream (the golden test pins them). The
	// binary codec carries it explicitly; on the gob fallback it is
	// implicitly zero ("gob only").
	wireVersion int
}

// SetWireVersion records the advertised binary wire version. The binary
// encoder fills in BinaryWireVersion automatically when unset, so only
// tests exercising version skew need this.
func (h *Hello) SetWireVersion(v int) { h.wireVersion = v }

// WireVersion reports the binary wire version the peer advertised in its
// hello: 0 for a gob handshake, BinaryWireVersion for a current binary
// client.
func (h Hello) WireVersion() int { return h.wireVersion }

// NeedCode asks the device to transfer mobile code. Seq identifies which
// in-flight request the ask belongs to, so pipelined clients can route it;
// serial clients may ignore the payload (and old-style NEED_CODE frames
// without one are still valid).
type NeedCode struct {
	Seq int
	AID string
}

// Frame is one protocol message.
type Frame struct {
	Kind     Kind
	Hello    *Hello
	Exec     *ExecRequest
	NeedCode *NeedCode
	Code     *CodePush
	Result   *Result
}

// Validate checks that the frame's payload matches its kind.
func (f *Frame) Validate() error {
	switch f.Kind {
	case KindHello:
		if f.Hello == nil {
			return fmt.Errorf("offload: hello frame without payload")
		}
	case KindExec:
		if f.Exec == nil {
			return fmt.Errorf("offload: exec frame without payload")
		}
	case KindChunkOffer, KindChunkNeed:
		if f.Exec == nil {
			return fmt.Errorf("offload: %s frame without payload", f.Kind)
		}
	case KindCode:
		if f.Code == nil {
			return fmt.Errorf("offload: code frame without payload")
		}
	case KindResult:
		if f.Result == nil {
			return fmt.Errorf("offload: result frame without payload")
		}
	case KindNeedCode:
		// Payload optional: it routes the ask under pipelining.
	default:
		return fmt.Errorf("offload: unknown frame kind %q", f.Kind)
	}
	return nil
}

// recvBufPool recycles Recv payload scratch buffers across all
// connections. It stores *[]byte (not []byte) so Put does not box a fresh
// slice header per call. Buffers are capacity-capped on return so a single
// oversized frame does not pin its worst-case allocation forever.
var recvBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledBuf caps the capacity of buffers returned to recvBufPool.
const maxPooledBuf = 64 << 10

// frameReader serves one frame's payload bytes to the persistent gob
// decoder. It implements io.ByteReader so gob does not wrap it in a
// bufio.Reader (which would read ahead across frame boundaries).
type frameReader struct {
	buf []byte
	pos int
}

func (r *frameReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.pos:])
	r.pos += n
	return n, nil
}

func (r *frameReader) ReadByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, io.EOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// Conn frames protocol messages over a byte stream. Conn methods are not
// safe for concurrent use: pipelined callers must funnel all Sends through
// one writer goroutine and all Recvs through one reader goroutine (the
// two directions are independent).
type Conn struct {
	r        *bufio.Reader
	w        io.Writer
	maxFrame int

	// wire is the constructor's codec selection; see the Wire constants.
	// sendBinary resolves the send codec (for WireAuto it flips to true
	// when the peer's first frame sniffs as binary). recvWire pins the
	// receive codec after the first frame: 0 unsniffed, 'g' gob, 'b'
	// binary.
	wire       Wire
	sendBinary bool
	recvWire   byte

	// Send-side persistent state: the gob stream encoder, its scratch
	// buffer, and a scratch Frame that keeps the encoded value off the
	// heap (passing a stack &f to Encode would escape per call).
	enc        *gob.Encoder
	sendBuf    bytes.Buffer
	sendFrame  Frame
	lenBuf     [binary.MaxVarintLen64]byte
	sendBroken bool

	// wbuf assembles the length prefix and payload of one outgoing frame
	// into a single contiguous Write — two small writes per frame double
	// the per-frame syscall bill. pend holds framed bytes awaiting an
	// explicit FlushSend when coalescing is on (see CoalesceSends).
	wbuf     []byte
	pend     []byte
	coalesce bool

	// Recv-side persistent state: the gob stream decoder and the reader
	// it drains the current frame from.
	dec        *gob.Decoder
	recvSrc    frameReader
	recvBroken bool

	// Binary-codec receive state: the buffer backing the last binary
	// frame's byte views (nil once taken via TakeRecvBuf or in gob mode),
	// the scratch payload structs the decoded frame points into, and the
	// string intern table.
	held       *[]byte
	intern     map[string]string
	recvHello  Hello
	recvExec   ExecRequest
	recvNeed   NeedCode
	recvCode   CodePush
	recvResult Result
}

// NewConn wraps a stream (e.g. a net.Conn) in the protocol codec with the
// default frame-size limit, speaking the legacy gob codec (WireGob) — the
// bytes it produces are identical to every pre-binary-codec release.
func NewConn(rw io.ReadWriter) *Conn { return NewConnLimit(rw, DefaultMaxFrame) }

// NewConnLimit wraps a stream with an explicit frame-size limit.
// maxFrame <= 0 selects DefaultMaxFrame.
func NewConnLimit(rw io.ReadWriter, maxFrame int) *Conn {
	return NewConnWireLimit(rw, WireGob, maxFrame)
}

// NewConnWire wraps a stream with an explicit codec selection and the
// default frame-size limit.
func NewConnWire(rw io.ReadWriter, w Wire) *Conn {
	return NewConnWireLimit(rw, w, DefaultMaxFrame)
}

// NewConnWireLimit wraps a stream with an explicit codec selection and
// frame-size limit. maxFrame <= 0 selects DefaultMaxFrame; an empty or
// unknown Wire selects WireAuto.
func NewConnWireLimit(rw io.ReadWriter, w Wire, maxFrame int) *Conn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if w != WireGob && w != WireBinary {
		w = WireAuto
	}
	c := &Conn{r: bufio.NewReader(rw), w: rw, maxFrame: maxFrame, wire: w}
	c.sendBinary = w == WireBinary
	c.enc = gob.NewEncoder(&c.sendBuf)
	c.dec = gob.NewDecoder(&c.recvSrc)
	return c
}

// WireName reports the codec this connection currently sends with:
// "gob" or "binary". For WireAuto it reads "gob" until the peer's first
// frame negotiates binary.
func (c *Conn) WireName() string {
	if c.sendBinary {
		return string(WireBinary)
	}
	return string(WireGob)
}

// TakeRecvBuf transfers ownership of the read buffer backing the most
// recently received binary frame's byte views out of the connection's
// recycle path. Without it the views are invalidated by the next Recv;
// see RecvBuf. Returns the zero RecvBuf when there is nothing to hand
// over (gob frame, or no byte views outstanding).
func (c *Conn) TakeRecvBuf() RecvBuf {
	b := RecvBuf{bp: c.held}
	c.held = nil
	return b
}

// Send writes one frame using the connection's send codec. After a
// non-nil error the Conn's send side is poisoned and the connection must
// be dropped: the persistent gob stream state may no longer agree with
// the receiver's.
func (c *Conn) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if c.sendBroken {
		return errors.New("offload: send on poisoned connection")
	}
	c.sendBuf.Reset()
	if c.sendBinary {
		if err := c.encodeBinary(&f); err != nil {
			// Nothing was written to the stream; the frame was merely
			// unencodable. State is still consistent, but poison anyway:
			// callers treat codec errors as connection-fatal.
			c.sendBroken = true
			return err
		}
	} else {
		c.sendFrame = f
		if err := c.enc.Encode(&c.sendFrame); err != nil {
			c.sendBroken = true
			return err
		}
		c.sendFrame = Frame{} // don't pin payload pointers between sends
	}
	return c.flushSendBuf()
}

// SendResult writes a result frame without going through a Frame value.
// It exists for the server's hot reply path: building a Frame there would
// force &Result to escape per reply. Same poisoning rules as Send.
func (c *Conn) SendResult(r *Result) error {
	if c.sendBroken {
		return errors.New("offload: send on poisoned connection")
	}
	if !c.sendBinary {
		return c.Send(Frame{Kind: KindResult, Result: r})
	}
	c.sendBuf.Reset()
	c.sendBuf.Write([]byte{binMagic, BinaryWireVersion, binKindResult, 0})
	c.putString(r.Output)
	c.putZig(int64(r.ResultBytes))
	c.putString(r.Err)
	c.putString(r.Code)
	c.putZig(int64(r.RetryAfterMs))
	c.putZig(int64(r.Seq))
	return c.flushSendBuf()
}

// sendCoalesceLimit bounds how much framed data a coalescing connection
// holds in memory before forcing a flush mid-batch.
const sendCoalesceLimit = 32 << 10

// CoalesceSends switches the send side to explicit flushing: framed
// messages accumulate in memory and reach the stream only on FlushSend
// (or when the pending buffer hits sendCoalesceLimit). A reply path that
// drains a queue can batch every result that is already waiting into one
// syscall. Single-sender connections only, and the sender owns the flush
// schedule — a frame is not on the wire until FlushSend returns.
func (c *Conn) CoalesceSends() { c.coalesce = true }

// FlushSend writes out all frames buffered by a coalescing connection.
// A no-op on write-through connections and when nothing is pending.
func (c *Conn) FlushSend() error {
	if len(c.pend) == 0 {
		return nil
	}
	_, err := c.w.Write(c.pend)
	c.pend = c.pend[:0]
	if err != nil {
		c.sendBroken = true
	}
	return err
}

// flushSendBuf frames the encoded payload in sendBuf onto the stream —
// prefix and payload as one Write — or parks it in pend when coalescing.
func (c *Conn) flushSendBuf() error {
	if c.sendBuf.Len() > c.maxFrame {
		c.sendBroken = true
		return fmt.Errorf("%w: encoding %d bytes, limit %d", ErrFrameTooLarge, c.sendBuf.Len(), c.maxFrame)
	}
	n := binary.PutUvarint(c.lenBuf[:], uint64(c.sendBuf.Len()))
	if c.coalesce {
		c.pend = append(c.pend, c.lenBuf[:n]...)
		c.pend = append(c.pend, c.sendBuf.Bytes()...)
		if len(c.pend) >= sendCoalesceLimit {
			return c.FlushSend()
		}
		return nil
	}
	c.wbuf = append(c.wbuf[:0], c.lenBuf[:n]...)
	c.wbuf = append(c.wbuf, c.sendBuf.Bytes()...)
	if _, err := c.w.Write(c.wbuf); err != nil {
		c.sendBroken = true
		return err
	}
	return nil
}

// Recv reads one frame. A frame whose declared size exceeds the
// connection's limit is rejected with ErrFrameTooLarge before any
// payload-sized allocation happens. The first received frame sniffs the
// peer's codec (binary frames open with a magic byte no gob stream can
// produce) and pins it for the connection's lifetime; under WireAuto the
// send side mirrors the sniffed codec. After a non-nil error (other than
// a clean io.EOF at a frame boundary) the Conn's receive side is
// poisoned and the connection must be dropped.
//
// Binary frames decode zero-copy: the returned payload structs and byte
// views are valid only until the next Recv (see TakeRecvBuf). Gob frames
// are freshly allocated and independent of the connection.
func (c *Conn) Recv() (Frame, error) {
	if c.recvBroken {
		return Frame{}, errors.New("offload: recv on poisoned connection")
	}
	size, err := binary.ReadUvarint(c.r)
	if err != nil {
		return Frame{}, err
	}
	if size > uint64(c.maxFrame) {
		c.recvBroken = true
		return Frame{}, fmt.Errorf("%w: declared %d bytes, limit %d", ErrFrameTooLarge, size, c.maxFrame)
	}
	// Buffer acquisition: reuse the connection's held buffer when its
	// views were not taken (they are invalidated now, per contract), else
	// draw from the shared pool.
	bp := c.held
	c.held = nil
	if bp == nil {
		bp = recvBufPool.Get().(*[]byte)
	}
	if cap(*bp) < int(size) {
		*bp = make([]byte, size)
	}
	buf := (*bp)[:size]
	putBuf := func() {
		if cap(buf) <= maxPooledBuf {
			*bp = buf[:0]
			recvBufPool.Put(bp)
		}
	}
	if _, err := io.ReadFull(c.r, buf); err != nil {
		putBuf()
		c.recvBroken = true
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if c.recvWire == 0 {
		if err := c.sniffWire(buf); err != nil {
			putBuf()
			c.recvBroken = true
			return Frame{}, err
		}
	}
	if c.recvWire == 'b' {
		f, err := c.decodeBinary(buf)
		if err != nil {
			putBuf()
			c.recvBroken = true
			return Frame{}, err
		}
		// Keep the buffer: the frame's byte views alias it. It is
		// recycled on the next Recv unless the caller takes it.
		c.held = bp
		if err := f.Validate(); err != nil {
			c.recvBroken = true
			return Frame{}, err
		}
		return f, nil
	}
	c.recvSrc.buf, c.recvSrc.pos = buf, 0
	var f Frame
	err = c.dec.Decode(&f)
	c.recvSrc.buf = nil
	putBuf()
	if err != nil {
		c.recvBroken = true
		return Frame{}, err
	}
	if err := f.Validate(); err != nil {
		c.recvBroken = true
		return Frame{}, err
	}
	return f, nil
}

// sniffWire pins the connection's receive codec from the first frame's
// payload. A gob message can never start with the binary magic byte (see
// binary.go), so one byte decides. WireGob connections refuse binary
// frames with a typed *WireVersionError, as does any frame advertising a
// wire version this build does not speak — the server turns both into a
// protocol-error reply instead of a dropped connection.
func (c *Conn) sniffWire(buf []byte) error {
	if len(buf) >= 1 && buf[0] == binMagic {
		var ver byte
		if len(buf) >= 2 {
			ver = buf[1]
		}
		if c.wire == WireGob {
			return &WireVersionError{Version: ver, Refused: true}
		}
		if ver != BinaryWireVersion {
			return &WireVersionError{Version: ver}
		}
		c.recvWire = 'b'
		if c.wire == WireAuto {
			c.sendBinary = true
		}
		return nil
	}
	c.recvWire = 'g'
	return nil
}
