package offload

import (
	"bytes"
	"reflect"
	"testing"

	"rattrap/internal/host"
)

func TestSplitBlobReassembly(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte{7}, int(ChunkSize)),
		bytes.Repeat([]byte{7}, int(ChunkSize)+1),
		bytes.Repeat([]byte{9}, 3*int(ChunkSize)),
	}
	for _, data := range cases {
		chunks := SplitBlob(data)
		var re []byte
		for _, c := range chunks {
			re = append(re, c...)
		}
		if !bytes.Equal(re, data) && len(data) > 0 {
			t.Fatalf("reassembly of %d bytes produced %d bytes", len(data), len(re))
		}
		if len(chunks) != ChunkCount(host.Bytes(len(data))) {
			t.Fatalf("SplitBlob len %d != ChunkCount %d", len(chunks), ChunkCount(host.Bytes(len(data))))
		}
		if got := ChunkBlob(data); len(got) != len(chunks) {
			t.Fatalf("ChunkBlob len %d != SplitBlob len %d", len(got), len(chunks))
		}
	}
}

func TestChunkSpanSums(t *testing.T) {
	for _, size := range []host.Bytes{0, 1, ChunkSize, ChunkSize + 1, 5*ChunkSize - 3} {
		var total host.Bytes
		for i := 0; i < ChunkCount(size); i++ {
			sp := ChunkSpan(size, i)
			if sp <= 0 || sp > ChunkSize {
				t.Fatalf("ChunkSpan(%d, %d) = %d", size, i, sp)
			}
			total += sp
		}
		if total != size {
			t.Fatalf("chunk spans of %d sum to %d", size, total)
		}
	}
}

// An app family (same app, different code sizes) must share its library
// prefix: the ISSUE's delta criterion is <30% of full-push bytes when
// ≥70% of chunks are shared.
func TestSyntheticManifestFamilySharing(t *testing.T) {
	const app = "ChessGame"
	a := SyntheticManifest(app, 5*host.MB)
	b := SyntheticManifest(app, 5*host.MB+512*host.KB)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different sizes produced identical manifests")
	}
	have := make(map[uint64]bool, len(a))
	for _, h := range a {
		have[h] = true
	}
	var missing []uint64
	for _, h := range b {
		if !have[h] {
			missing = append(missing, h)
		}
	}
	offer := ChunkOffer{App: app, Size: 5*host.MB + 512*host.KB, Hashes: b}
	delta := DeltaBytes(offer, missing)
	if ratio := float64(delta) / float64(offer.Size); ratio >= 0.30 {
		t.Fatalf("family delta ratio %.2f, want < 0.30 (delta %d of %d)", ratio, delta, offer.Size)
	}
	// Unrelated apps share nothing.
	c := SyntheticManifest("Linpack", 5*host.MB)
	for _, h := range c {
		if have[h] {
			t.Fatalf("unrelated app shares chunk %016x", h)
		}
	}
	// Determinism: same inputs, same manifest.
	if !reflect.DeepEqual(a, SyntheticManifest(app, 5*host.MB)) {
		t.Fatal("manifest not deterministic")
	}
}

func TestPackHashesRoundTrip(t *testing.T) {
	hs := []uint64{0, 1, 0xdeadbeef, 0xdeadbeefcafef00d, 0xffffffffffffffff}
	got, err := UnpackHashes(PackHashes(hs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, hs) {
		t.Fatalf("round trip = %v, want %v", got, hs)
	}
	if _, err := UnpackHashes([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length hash list accepted")
	}
	if got, err := UnpackHashes(nil); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
}

// Chunk frames must round-trip over both wire codecs.
func TestChunkFramesRoundTrip(t *testing.T) {
	offer := ChunkOffer{AID: "abc12345", App: "ChessGame", Size: 2300 * host.KB, Seq: 7,
		Hashes: SyntheticManifest("ChessGame", 2300*host.KB)}
	need := ChunkNeed{Seq: 7, AID: "abc12345", Supported: true, Missing: offer.Hashes[:3]}
	for _, wire := range []Wire{WireGob, WireBinary} {
		var buf bytes.Buffer
		send := NewConnWire(&buf, wire)
		recv := NewConnWire(&buf, WireAuto)
		if err := send.Send(ChunkOfferFrame(&offer)); err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		f, err := recv.Recv()
		if err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		got, err := DecodeChunkOffer(f)
		if err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		if !reflect.DeepEqual(got, offer) {
			t.Fatalf("%s: offer round trip = %+v, want %+v", wire, got, offer)
		}
		if err := send.Send(ChunkNeedFrame(&need)); err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		f, err = recv.Recv()
		if err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		gotNeed, err := DecodeChunkNeed(f)
		if err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		if !reflect.DeepEqual(gotNeed, need) {
			t.Fatalf("%s: need round trip = %+v, want %+v", wire, gotNeed, need)
		}
	}
	// An unsupported reply must survive with nil Missing.
	no := ChunkNeed{Seq: 3, AID: "x"}
	var buf bytes.Buffer
	c := NewConnWire(&buf, WireBinary)
	if err := c.Send(ChunkNeedFrame(&no)); err != nil {
		t.Fatal(err)
	}
	f, err := NewConnWire(&buf, WireAuto).Recv()
	if err != nil {
		t.Fatal(err)
	}
	gotNo, err := DecodeChunkNeed(f)
	if err != nil {
		t.Fatal(err)
	}
	if gotNo.Supported || gotNo.Missing != nil {
		t.Fatalf("unsupported reply = %+v", gotNo)
	}
}

// FuzzChunker: the chunker must never panic and must preserve identity
// under split-and-reassemble for any input — empty blobs, chunk-aligned
// sizes and 1-byte blobs included (seeded below).
// Run with `go test -fuzz FuzzChunker ./internal/offload/`.
func FuzzChunker(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xab}, int(ChunkSize)))
	f.Add(bytes.Repeat([]byte{0xcd}, 2*int(ChunkSize)+17))
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks := SplitBlob(data)
		hashes := ChunkBlob(data)
		if len(chunks) != len(hashes) || len(chunks) != ChunkCount(host.Bytes(len(data))) {
			t.Fatalf("chunk census disagrees: %d chunks, %d hashes, count %d",
				len(chunks), len(hashes), ChunkCount(host.Bytes(len(data))))
		}
		var re []byte
		var spanned host.Bytes
		for i, c := range chunks {
			re = append(re, c...)
			if ChunkHash(c) != hashes[i] {
				t.Fatal("ChunkBlob hash disagrees with ChunkHash of the split chunk")
			}
			if sp := ChunkSpan(host.Bytes(len(data)), i); sp != host.Bytes(len(c)) {
				t.Fatalf("ChunkSpan(%d) = %d, chunk is %d bytes", i, sp, len(c))
			} else {
				spanned += sp
			}
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("reassembly changed the blob: %d -> %d bytes", len(data), len(re))
		}
		if spanned != host.Bytes(len(data)) {
			t.Fatalf("spans sum to %d, blob is %d", spanned, len(data))
		}
		// Packed hash lists round-trip.
		got, err := UnpackHashes(PackHashes(hashes))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(hashes) {
			t.Fatalf("packed round trip lost hashes: %d -> %d", len(hashes), len(got))
		}
		for i := range got {
			if got[i] != hashes[i] {
				t.Fatalf("hash %d changed in packing", i)
			}
		}
	})
}
