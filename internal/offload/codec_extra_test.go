package offload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// TestCodecCapsDecodedFrameSize: a frame whose length prefix declares
// more than the connection limit must be rejected with ErrFrameTooLarge
// before any payload-sized allocation, not fed to the gob decoder.
func TestCodecCapsDecodedFrameSize(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [binary.MaxVarintLen64]byte
	// Declare a 1 TiB frame; write no payload at all. The cap check must
	// fire on the prefix alone.
	n := binary.PutUvarint(lenBuf[:], 1<<40)
	buf.Write(lenBuf[:n])
	c := NewConn(&buf)
	_, err := c.Recv()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestCodecSendRefusesOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewConnLimit(&buf, 1024)
	err := c.Send(Frame{Kind: KindExec, Exec: &ExecRequest{
		AID: "a", App: "x", Params: make([]byte, 4096),
	}})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversize send wrote %d bytes to the stream", buf.Len())
	}
}

func TestCodecCustomLimitRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConnLimit(&buf, 64*1024)
	want := Frame{Kind: KindExec, Exec: &ExecRequest{
		AID: "a", App: "x", Params: make([]byte, 8192), ParamBytes: 8192,
	}}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Exec.Params) != 8192 {
		t.Fatalf("params round trip: %d bytes", len(got.Exec.Params))
	}
}

func TestCodecTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: "d"}}); err != nil {
		t.Fatal(err)
	}
	// Chop the stream mid-payload: Recv must fail cleanly, not block or
	// return a half frame.
	trunc := bytes.NewBuffer(buf.Bytes()[:buf.Len()-3])
	tc := NewConnLimit(struct {
		io.Reader
		io.Writer
	}{trunc, io.Discard}, 0)
	if _, err := tc.Recv(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestCodecGarbagePayloadErrors(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], 5)
	buf.Write(lenBuf[:n])
	buf.Write([]byte{0xff, 0x00, 0xaa, 0x12, 0x7f})
	c := NewConn(&buf)
	if _, err := c.Recv(); err == nil {
		t.Fatal("garbage payload decoded without error")
	}
}

func TestResultErrorCodes(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(Frame{Kind: KindResult, Result: &Result{
		Err: "queue full", Code: CodeOverloaded, RetryAfterMs: 450,
	}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Code != CodeOverloaded || got.Result.RetryAfter() != 450*time.Millisecond {
		t.Fatalf("result codes round trip: %+v", got.Result)
	}
}

func TestOverloadedErrorMatches(t *testing.T) {
	err := error(&OverloadedError{QueueDepth: 7, RetryAfter: 200 * time.Millisecond})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadedError must match ErrOverloaded")
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.QueueDepth != 7 {
		t.Fatalf("errors.As failed: %v", err)
	}
}
