package offload

import (
	"errors"
	"fmt"
)

// PipelineClient drives the wire protocol with up to depth exec requests
// in flight on one connection. It is single-goroutine by construction:
// Submit and Flush process incoming frames inline while they wait, so the
// Conn is never touched concurrently. Results arrive in completion order,
// not submission order, matched by Result.Seq — every in-flight request
// must therefore carry a distinct Seq.
//
// A server-side NEED_CODE is answered through the code callback; the
// returned push is stamped with the asking request's Seq so the server
// routes it to the right in-flight exchange.
type PipelineClient struct {
	c       *Conn
	depth   int
	code    func(NeedCode) (CodePush, error)
	onRes   func(Result)
	pending map[int]struct{}
	err     error
}

// NewPipelineClient wraps an established protocol connection. depth < 1
// is treated as 1 (serial). code supplies the mobile code when the cloud
// asks for it; nil fails the pipeline on any NEED_CODE. onResult, if
// non-nil, is called for every result as it arrives.
func NewPipelineClient(c *Conn, depth int, code func(NeedCode) (CodePush, error), onResult func(Result)) *PipelineClient {
	if depth < 1 {
		depth = 1
	}
	return &PipelineClient{
		c:       c,
		depth:   depth,
		code:    code,
		onRes:   onResult,
		pending: make(map[int]struct{}, depth),
	}
}

// Hello opens the session.
func (p *PipelineClient) Hello(deviceID string) error {
	if p.err != nil {
		return p.err
	}
	if err := p.c.Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: deviceID}}); err != nil {
		p.err = err
		return err
	}
	return nil
}

// InFlight reports how many submitted requests have not yet produced a
// result.
func (p *PipelineClient) InFlight() int { return len(p.pending) }

// Submit sends one exec request, first draining incoming frames until the
// pipeline window has room. The request's Seq must be unique among
// in-flight requests.
func (p *PipelineClient) Submit(req ExecRequest) error {
	if p.err != nil {
		return p.err
	}
	if _, dup := p.pending[req.Seq]; dup {
		return fmt.Errorf("offload: seq %d already in flight", req.Seq)
	}
	for len(p.pending) >= p.depth {
		if err := p.step(); err != nil {
			return err
		}
	}
	if err := p.c.Send(Frame{Kind: KindExec, Exec: &req}); err != nil {
		p.err = err
		return err
	}
	p.pending[req.Seq] = struct{}{}
	return nil
}

// Flush processes incoming frames until every in-flight request has
// resolved.
func (p *PipelineClient) Flush() error {
	if p.err != nil {
		return p.err
	}
	for len(p.pending) > 0 {
		if err := p.step(); err != nil {
			return err
		}
	}
	return nil
}

// step handles one incoming frame: a NEED_CODE triggers the code
// callback, a result completes its request.
func (p *PipelineClient) step() error {
	f, err := p.c.Recv()
	if err != nil {
		p.err = err
		return err
	}
	switch f.Kind {
	case KindNeedCode:
		var need NeedCode
		if f.NeedCode != nil {
			need = *f.NeedCode
		}
		if p.code == nil {
			p.err = errors.New("offload: cloud asked for code but no code source configured")
			return p.err
		}
		push, err := p.code(need)
		if err != nil {
			p.err = err
			return err
		}
		push.Seq = need.Seq
		if err := p.c.Send(Frame{Kind: KindCode, Code: &push}); err != nil {
			p.err = err
			return err
		}
	case KindResult:
		res := *f.Result
		if _, ok := p.pending[res.Seq]; !ok {
			p.err = fmt.Errorf("offload: result for unknown seq %d", res.Seq)
			return p.err
		}
		delete(p.pending, res.Seq)
		if p.onRes != nil {
			p.onRes(res)
		}
	default:
		p.err = fmt.Errorf("offload: unexpected %s frame from the cloud", f.Kind)
		return p.err
	}
	return nil
}
