package offload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"rattrap/internal/host"
)

// framesEqual compares two frames semantically: field-wise on the payload
// structs, with byte slices compared by content (nil and empty are equal,
// matching gob's zero-value omission) and codec-level fields (the hello's
// advertised wire version) ignored.
func framesEqual(a, b Frame) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch {
	case (a.Hello == nil) != (b.Hello == nil):
		return false
	case a.Hello != nil && a.Hello.DeviceID != b.Hello.DeviceID:
		return false
	}
	switch {
	case (a.Exec == nil) != (b.Exec == nil):
		return false
	case a.Exec != nil:
		x, y := a.Exec, b.Exec
		if x.DeviceID != y.DeviceID || x.AID != y.AID || x.App != y.App ||
			x.Method != y.Method || x.Seq != y.Seq || !bytes.Equal(x.Params, y.Params) ||
			x.ParamBytes != y.ParamBytes || x.FileBytes != y.FileBytes ||
			x.RoundTrips != y.RoundTrips || x.InteractBytes != y.InteractBytes {
			return false
		}
	}
	switch {
	case (a.NeedCode == nil) != (b.NeedCode == nil):
		return false
	case a.NeedCode != nil && *a.NeedCode != *b.NeedCode:
		return false
	}
	switch {
	case (a.Code == nil) != (b.Code == nil):
		return false
	case a.Code != nil && *a.Code != *b.Code:
		return false
	}
	switch {
	case (a.Result == nil) != (b.Result == nil):
		return false
	case a.Result != nil && *a.Result != *b.Result:
		return false
	}
	return true
}

// cloneFrame deep-copies a frame out of the connection-owned scratch a
// binary Recv returns, so it survives the connection's next Recv.
func cloneFrame(f Frame) Frame {
	c := Frame{Kind: f.Kind}
	if f.Hello != nil {
		h := *f.Hello
		c.Hello = &h
	}
	if f.Exec != nil {
		e := *f.Exec
		e.Params = append([]byte(nil), e.Params...)
		if len(e.Params) == 0 {
			e.Params = nil
		}
		c.Exec = &e
	}
	if f.NeedCode != nil {
		n := *f.NeedCode
		c.NeedCode = &n
	}
	if f.Code != nil {
		p := *f.Code
		c.Code = &p
	}
	if f.Result != nil {
		r := *f.Result
		c.Result = &r
	}
	return c
}

// binaryTestFrames covers every kind, negative scalars (zigzag), empty
// and non-empty byte payloads, and the optional needcode payload.
func binaryTestFrames() []Frame {
	return []Frame{
		{Kind: KindHello, Hello: &Hello{DeviceID: "phone-1"}},
		{Kind: KindExec, Exec: &ExecRequest{
			DeviceID: "phone-1", AID: "a1b2c3d4", App: "Linpack", Method: "solve",
			Seq: 7, Params: []byte{0x01, 0x02, 0x03, 0xfe}, ParamBytes: 500,
			FileBytes: 122 * host.KB, RoundTrips: 3, InteractBytes: 64,
		}},
		{Kind: KindExec, Exec: &ExecRequest{
			DeviceID: "d", AID: "x", App: "ChessGame", Method: "bestMove",
			Seq: -9, ParamBytes: -1, FileBytes: -(1 << 40), RoundTrips: -2, InteractBytes: -64,
		}},
		{Kind: KindNeedCode},
		{Kind: KindNeedCode, NeedCode: &NeedCode{Seq: 12, AID: "a1b2c3d4"}},
		{Kind: KindNeedCode, NeedCode: &NeedCode{}},
		{Kind: KindCode, Code: &CodePush{AID: "a1b2c3d4", App: "Linpack", Size: 152 * host.KB, Seq: 7}},
		{Kind: KindResult, Result: &Result{Output: "n=64 residual=1.08e-13", ResultBytes: 550, Seq: 7}},
		{Kind: KindResult, Result: &Result{Err: "queue full", Code: CodeOverloaded, RetryAfterMs: 450, Seq: -8}},
		{Kind: KindResult, Result: &Result{}},
	}
}

// TestBinaryRoundTrip sends every test frame over the binary codec and
// checks semantic equality after decode — including that a WireAuto
// receiver sniffs the codec and mirrors it for its own sends.
func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sender := NewConnWire(&buf, WireBinary)
	receiver := NewConnWire(&buf, WireAuto)
	if got := receiver.WireName(); got != "gob" {
		t.Fatalf("pre-negotiation WireName = %q, want gob", got)
	}
	for i, f := range binaryTestFrames() {
		if err := sender.Send(f); err != nil {
			t.Fatalf("frame %d (%s): send: %v", i, f.Kind, err)
		}
		got, err := receiver.Recv()
		if err != nil {
			t.Fatalf("frame %d (%s): recv: %v", i, f.Kind, err)
		}
		if !framesEqual(f, got) {
			t.Fatalf("frame %d (%s): round trip mismatch:\nsent %+v\ngot  %+v", i, f.Kind, f, got)
		}
	}
	if got := sender.WireName(); got != "binary" {
		t.Fatalf("sender WireName = %q, want binary", got)
	}
	if got := receiver.WireName(); got != "binary" {
		t.Fatalf("negotiated receiver WireName = %q, want binary (mirrored)", got)
	}
}

// TestBinaryHelloAdvertisesVersion: a binary hello carries the wire
// version explicitly (defaulted to the spoken version when unset), and a
// gob hello leaves it zero.
func TestBinaryHelloAdvertisesVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := NewConnWire(&buf, WireBinary).Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: "d"}}); err != nil {
		t.Fatal(err)
	}
	got, err := NewConnWire(&buf, WireAuto).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Hello.WireVersion(); v != BinaryWireVersion {
		t.Fatalf("binary hello WireVersion = %d, want %d", v, BinaryWireVersion)
	}

	buf.Reset()
	if err := NewConn(&buf).Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: "d"}}); err != nil {
		t.Fatal(err)
	}
	got, err = NewConnWire(&buf, WireAuto).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Hello.WireVersion(); v != 0 {
		t.Fatalf("gob hello WireVersion = %d, want 0", v)
	}
}

// repeatWriter feeds everything written to it back as an endless repeated
// read stream once switched to replay mode.
type repeatReader struct {
	data []byte
	pos  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	if r.pos >= len(r.data) {
		r.pos = 0
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// TestBinaryZeroAlloc gates the tentpole: a warm binary connection must
// encode (Send, SendResult) and decode (Recv) exec and result frames with
// zero heap allocations per frame.
func TestBinaryZeroAlloc(t *testing.T) {
	exec := &ExecRequest{
		DeviceID: "phone-1", AID: "a1b2c3d4", App: "Linpack", Method: "solve",
		Seq: 3, Params: []byte{1, 2, 3, 4, 5, 6, 7, 8}, ParamBytes: 500,
	}
	f := Frame{Kind: KindExec, Exec: exec}

	t.Run("send", func(t *testing.T) {
		c := NewConnWire(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(nil), io.Discard}, WireBinary)
		for i := 0; i < 4; i++ {
			if err := c.Send(f); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(200, func() {
			exec.Seq++
			if err := c.Send(f); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("warm binary Send allocates %.1f times per frame, want 0", avg)
		}
	})

	t.Run("sendResult", func(t *testing.T) {
		c := NewConnWire(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(nil), io.Discard}, WireBinary)
		r := Result{Output: "n=64 residual=1.08e-13", ResultBytes: 550, Seq: 9}
		for i := 0; i < 4; i++ {
			if err := c.SendResult(&r); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(200, func() {
			r.Seq++
			if err := c.SendResult(&r); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("warm binary SendResult allocates %.1f times per frame, want 0", avg)
		}
	})

	t.Run("recv", func(t *testing.T) {
		var enc bytes.Buffer
		if err := NewConnWire(&enc, WireBinary).Send(f); err != nil {
			t.Fatal(err)
		}
		c := NewConnWire(struct {
			io.Reader
			io.Writer
		}{&repeatReader{data: enc.Bytes()}, io.Discard}, WireAuto)
		// Warm-up interns the strings and seats the held buffer.
		for i := 0; i < 4; i++ {
			if _, err := c.Recv(); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(200, func() {
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.Exec.Seq != exec.Seq {
				t.Fatalf("seq %d, want %d", got.Exec.Seq, exec.Seq)
			}
		}); avg != 0 {
			t.Fatalf("warm binary Recv allocates %.1f times per frame, want 0", avg)
		}
	})
}

// TestWireGobRefusesBinary: a WireGob connection (gob-pinned server or
// legacy client) answers a binary first frame with a typed
// *WireVersionError instead of a garbled gob decode.
func TestWireGobRefusesBinary(t *testing.T) {
	var buf bytes.Buffer
	if err := NewConnWire(&buf, WireBinary).Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: "d"}}); err != nil {
		t.Fatal(err)
	}
	_, err := NewConn(&buf).Recv()
	var wve *WireVersionError
	if !errors.As(err, &wve) {
		t.Fatalf("err = %v, want *WireVersionError", err)
	}
	if !wve.Refused || wve.Version != BinaryWireVersion {
		t.Fatalf("WireVersionError = %+v, want Refused=true Version=%d", wve, BinaryWireVersion)
	}
}

// TestUnknownWireVersion: a binary frame advertising a future wire
// version yields a typed *WireVersionError carrying that version.
func TestUnknownWireVersion(t *testing.T) {
	payload := []byte{binMagic, 0x7e, binKindHello, 0x00, 0x01, 'd', 0x7e}
	var buf bytes.Buffer
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))])
	buf.Write(payload)

	_, err := NewConnWire(&buf, WireAuto).Recv()
	var wve *WireVersionError
	if !errors.As(err, &wve) {
		t.Fatalf("err = %v, want *WireVersionError", err)
	}
	if wve.Refused || wve.Version != 0x7e {
		t.Fatalf("WireVersionError = %+v, want Refused=false Version=0x7e", wve)
	}
}

// TestBinaryMalformed: truncated varints, overrunning byte strings,
// unknown kinds, and trailing garbage must all error without panicking,
// and must poison the receive side like any other codec error.
func TestBinaryMalformed(t *testing.T) {
	frame := func(payload []byte) *bytes.Buffer {
		var buf bytes.Buffer
		var lenBuf [binary.MaxVarintLen64]byte
		buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))])
		buf.Write(payload)
		return &buf
	}
	cases := map[string][]byte{
		"short header":   {binMagic, BinaryWireVersion, binKindHello},
		"unknown kind":   {binMagic, BinaryWireVersion, 0x63, 0x00},
		"zero kind":      {binMagic, BinaryWireVersion, 0x00, 0x00},
		"overrun string": {binMagic, BinaryWireVersion, binKindHello, 0x00, 0x7f, 'd'},
		"truncated int":  {binMagic, BinaryWireVersion, binKindHello, 0x00, 0x01, 'd', 0xff},
		"trailing bytes": {binMagic, BinaryWireVersion, binKindHello, 0x00, 0x01, 'd', 0x01, 0xaa},
	}
	for name, payload := range cases {
		c := NewConnWire(frame(payload), WireAuto)
		if _, err := c.Recv(); err == nil {
			t.Errorf("%s: decoded without error", name)
			continue
		}
		if _, err := c.Recv(); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: recv side not poisoned after decode error", name)
		}
	}
}

// TestBinaryOversizeRejectedBeforeAlloc: the shared length-prefixed
// framing rejects an oversize declared size on the prefix alone — before
// any payload-sized allocation — for binary exactly as for gob (the cap
// check precedes the buffer draw in Recv). Per-frame allocations are
// separately pinned to zero by TestBinaryZeroAlloc.
func TestBinaryOversizeRejectedBeforeAlloc(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [binary.MaxVarintLen64]byte
	// Declare a 1 TiB binary frame; write only the sniffable header bytes.
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], 1<<40)])
	buf.Write([]byte{binMagic, BinaryWireVersion})

	c := NewConnWireLimit(&buf, WireBinary, 1<<10)
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestTakeRecvBuf demonstrates the aliasing hazard and its fix. Binary
// byte views alias the connection's read buffer, which is reused by the
// next Recv: without TakeRecvBuf the first frame's params are clobbered
// (deterministically — the held buffer is recycled in place); with it
// they survive until Release.
func TestTakeRecvBuf(t *testing.T) {
	encode := func(seqs ...byte) *bytes.Buffer {
		var buf bytes.Buffer
		c := NewConnWire(&buf, WireBinary)
		for _, s := range seqs {
			err := c.Send(Frame{Kind: KindExec, Exec: &ExecRequest{
				App: "Linpack", Params: bytes.Repeat([]byte{s}, 32), Seq: int(s),
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
		return &buf
	}

	t.Run("hazard", func(t *testing.T) {
		c := NewConnWire(encode(1, 2), WireAuto)
		f1, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		view := f1.Exec.Params
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(view, bytes.Repeat([]byte{1}, 32)) {
			t.Fatal("expected the un-taken view to be clobbered by the next Recv; " +
				"if buffer reuse changed, update the TakeRecvBuf contract docs")
		}
	})

	t.Run("take", func(t *testing.T) {
		c := NewConnWire(encode(1, 2), WireAuto)
		f1, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		view := f1.Exec.Params
		pin := c.TakeRecvBuf()
		defer pin.Release()
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(view, bytes.Repeat([]byte{1}, 32)) {
			t.Fatalf("taken view corrupted: %x", view)
		}
	})

	t.Run("zero-value release", func(t *testing.T) {
		var pin RecvBuf
		pin.Release()           // must be a no-op
		c := NewConn(encode(1)) // gob conn: nothing to take
		if pin := c.TakeRecvBuf(); pin.bp != nil {
			t.Fatal("gob connection handed out a buffer")
		}
	})
}
