package offload

import (
	"encoding/binary"
	"fmt"

	"rattrap/internal/host"
)

// The flat binary wire codec: the negotiated fast path that replaces gob
// frame payloads on hot connections. The outer framing (one uvarint byte
// length, then that many payload bytes, capped by the connection's frame
// limit *before* any payload-sized allocation) is shared with the gob
// codec; only the payload encoding differs.
//
// # Payload layout (wire version 1)
//
//	[0] magic 0xB1
//	[1] wire version (1)
//	[2] kind (1 hello, 2 exec, 3 needcode, 4 code, 5 result, 6 chunkoffer, 7 chunkneed)
//	[3] flags (kind-specific; bit0 of a needcode frame: payload present)
//	[4:] fields in fixed per-kind order
//
// Scalar fields are zigzag varints (all wire integers are signed Go types;
// zigzag keeps negative values round-trippable so the codec cross-check
// against gob is exact). Strings and byte slices are a uvarint length
// followed by the raw bytes. Every field is always present — no omission
// of zero values — and a decoder that does not consume the payload exactly
// rejects the frame.
//
// The magic byte is chosen from the range a gob stream can never emit as
// its first payload byte: gob's unsigned-int wire encoding starts every
// message with either a small literal count (0x00..0x7F) or a negated
// byte-length marker (0xF8..0xFF), so 0x80..0xF7 is free for sniffing.
// A server reads the first frame's payload and pins the connection's
// codec from that one byte: 0xB1 means binary, anything else is the gob
// fallback — which is how old gob-only clients keep connecting unchanged.
//
// # Zero-copy contract
//
// Binary decode does not copy: the returned Frame's payload structs are
// connection-owned scratch, string fields are served from a per-connection
// intern table, and byte-slice fields (Exec.Params) alias the connection's
// read buffer. Everything is valid only until the next Recv. A caller that
// hands the frame to another goroutine must either copy the aliased bytes
// or take ownership of the buffer with TakeRecvBuf and release it when
// done — see the RecvBuf docs for the hazard this closes.

// Wire names a frame-payload codec for NewConnWire and the -wire flags.
type Wire string

// Wire codec selections.
const (
	// WireAuto mirrors the peer: receive either codec, send gob until the
	// first received frame reveals the peer speaks binary. Servers use it.
	WireAuto Wire = "auto"
	// WireGob sends gob and accepts only gob; a binary frame is refused
	// with a typed *WireVersionError instead of a garbled decode.
	WireGob Wire = "gob"
	// WireBinary sends binary frames; the receive side still sniffs, so a
	// gob-speaking peer's typed error frames stay readable.
	WireBinary Wire = "binary"
)

// ParseWire maps a -wire flag value to a Wire selection.
func ParseWire(s string) (Wire, error) {
	switch Wire(s) {
	case WireAuto, WireGob, WireBinary:
		return Wire(s), nil
	}
	return "", fmt.Errorf("offload: unknown wire codec %q (want auto, gob or binary)", s)
}

const (
	// binMagic is the first payload byte of every binary frame.
	binMagic = 0xB1
	// BinaryWireVersion is the wire version this codec speaks.
	BinaryWireVersion = 1
	// binHeaderLen is magic + version + kind + flags.
	binHeaderLen = 4
	// needCodeHasPayload marks a needcode frame carrying Seq+AID.
	needCodeHasPayload = 0x01
)

// Wire discriminator bytes for frame kinds.
const (
	binKindHello      = 1
	binKindExec       = 2
	binKindNeedCode   = 3
	binKindCode       = 4
	binKindResult     = 5
	binKindChunkOffer = 6
	binKindChunkNeed  = 7
)

// binKinds maps Kind to its wire discriminator byte; binKindNames is the
// inverse (the zero Kind marks an unassigned byte).
var binKinds = map[Kind]byte{
	KindHello:      binKindHello,
	KindExec:       binKindExec,
	KindNeedCode:   binKindNeedCode,
	KindCode:       binKindCode,
	KindResult:     binKindResult,
	KindChunkOffer: binKindChunkOffer,
	KindChunkNeed:  binKindChunkNeed,
}

var binKindNames = [...]Kind{
	binKindHello:      KindHello,
	binKindExec:       KindExec,
	binKindNeedCode:   KindNeedCode,
	binKindCode:       KindCode,
	binKindResult:     KindResult,
	binKindChunkOffer: KindChunkOffer,
	binKindChunkNeed:  KindChunkNeed,
}

// WireVersionError reports a failed codec negotiation: the peer opened
// with a binary frame the connection cannot serve, either because the
// advertised wire version is unknown or because the connection is pinned
// to gob (WireGob). Servers answer it with a typed protocol-error result
// frame in gob — the one codec every client speaks — instead of dropping
// the connection. Match with errors.As.
type WireVersionError struct {
	// Version is the wire version byte the peer sent.
	Version byte
	// Refused reports a policy rejection: the version is known but this
	// connection accepts only gob.
	Refused bool
}

func (e *WireVersionError) Error() string {
	if e.Refused {
		return fmt.Sprintf("offload: binary wire v%d refused: connection accepts gob only", e.Version)
	}
	return fmt.Sprintf("offload: unsupported wire version %d (have %d)", e.Version, BinaryWireVersion)
}

// RecvBuf is ownership of the read buffer backing the byte-slice views of
// the most recently received binary frame. The pooled read path makes the
// aliasing hazard easy to hit silently: by default the buffer is recycled
// on the next Recv, so a payload view (Exec.Params) handed to a pipeline
// worker would be overwritten mid-flight by the connection's next frame.
// TakeRecvBuf transfers the buffer out of the recycle path; the taker
// must call Release exactly once, after the last use of the views.
//
// The zero RecvBuf (gob mode, or a frame without byte views) releases as
// a no-op, so callers can take-and-release unconditionally.
type RecvBuf struct {
	bp *[]byte
}

// Release returns the buffer to the shared pool. Safe on the zero value.
func (b RecvBuf) Release() {
	if b.bp == nil {
		return
	}
	if buf := *b.bp; cap(buf) <= maxPooledBuf {
		*b.bp = buf[:0]
		recvBufPool.Put(b.bp)
	}
}

// maxInternEntries bounds a connection's string intern table. Hot fields
// (device, AID, app, method, result codes and repeated outputs) intern
// within a handful of requests; past the cap, decode falls back to a plain
// per-frame allocation instead of growing without bound.
const maxInternEntries = 1024

// internStr returns a stable string for b, served from the connection's
// intern table. The map lookup keyed by string(b) does not allocate; only
// the first sighting of a value pays for the copy.
func (c *Conn) internStr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.intern[string(b)]; ok {
		return s
	}
	if c.intern == nil {
		c.intern = make(map[string]string, 16)
	}
	s := string(b)
	if len(c.intern) < maxInternEntries {
		c.intern[s] = s
	}
	return s
}

// --- encoding ---

// putZig appends a zigzag varint to the send buffer.
func (c *Conn) putZig(v int64) {
	n := binary.PutUvarint(c.lenBuf[:], uint64(v)<<1^uint64(v>>63))
	c.sendBuf.Write(c.lenBuf[:n])
}

// putUint appends a uvarint to the send buffer.
func (c *Conn) putUint(v uint64) {
	n := binary.PutUvarint(c.lenBuf[:], v)
	c.sendBuf.Write(c.lenBuf[:n])
}

// putBytes appends a length-prefixed byte string to the send buffer.
func (c *Conn) putBytes(b []byte) {
	c.putUint(uint64(len(b)))
	c.sendBuf.Write(b)
}

// putString appends a length-prefixed string without copying it first.
func (c *Conn) putString(s string) {
	c.putUint(uint64(len(s)))
	c.sendBuf.WriteString(s)
}

// encodeBinary writes f's binary payload into the send buffer. The frame
// must already be validated.
func (c *Conn) encodeBinary(f *Frame) error {
	kind, ok := binKinds[f.Kind]
	if !ok {
		return fmt.Errorf("offload: binary codec cannot encode kind %q", f.Kind)
	}
	flags := byte(0)
	if f.Kind == KindNeedCode && f.NeedCode != nil {
		flags |= needCodeHasPayload
	}
	c.sendBuf.Write([]byte{binMagic, BinaryWireVersion, kind, flags})
	switch f.Kind {
	case KindHello:
		c.putString(f.Hello.DeviceID)
		ver := f.Hello.wireVersion
		if ver == 0 {
			// A binary-encoded hello advertises the codec by existing;
			// default the explicit field to the version being spoken.
			ver = BinaryWireVersion
		}
		c.putUint(uint64(ver))
	case KindExec:
		e := f.Exec
		c.putString(e.DeviceID)
		c.putString(e.AID)
		c.putString(e.App)
		c.putString(e.Method)
		c.putZig(int64(e.Seq))
		c.putBytes(e.Params)
		c.putZig(int64(e.ParamBytes))
		c.putZig(int64(e.FileBytes))
		c.putZig(int64(e.RoundTrips))
		c.putZig(int64(e.InteractBytes))
	case KindNeedCode:
		if f.NeedCode != nil {
			c.putZig(int64(f.NeedCode.Seq))
			c.putString(f.NeedCode.AID)
		}
	case KindCode:
		c.putString(f.Code.AID)
		c.putString(f.Code.App)
		c.putZig(int64(f.Code.Size))
		c.putZig(int64(f.Code.Seq))
	case KindResult:
		r := f.Result
		c.putString(r.Output)
		c.putZig(int64(r.ResultBytes))
		c.putString(r.Err)
		c.putString(r.Code)
		c.putZig(int64(r.RetryAfterMs))
		c.putZig(int64(r.Seq))
	case KindChunkOffer, KindChunkNeed:
		// Chunk negotiation rides the Exec carrier (see chunk.go): only
		// the carrier fields the two payloads actually use hit the wire.
		e := f.Exec
		c.putString(e.AID)
		c.putString(e.App)
		c.putZig(int64(e.ParamBytes))
		c.putZig(int64(e.Seq))
		c.putZig(int64(e.RoundTrips))
		c.putBytes(e.Params)
	}
	return nil
}

// --- decoding ---

// binReader walks a binary payload. Decode errors poison the whole frame,
// so it latches the first error instead of threading returns.
type binReader struct {
	buf []byte
	pos int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("offload: binary frame: "+format, args...)
	}
}

func (r *binReader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) zig() int64 {
	u := r.uint()
	return int64(u>>1) ^ -int64(u&1)
}

// bytes returns a view of the next length-prefixed byte string, aliasing
// the payload buffer (capacity-clamped so appends cannot bleed into the
// following bytes). Zero length decodes as nil, matching gob's omission
// of empty slices.
func (r *binReader) bytes() []byte {
	n := r.uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("byte string of %d at %d overruns payload", n, r.pos)
		return nil
	}
	if n == 0 {
		return nil
	}
	v := r.buf[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return v
}

// decodeBinary decodes a binary payload into the connection's scratch
// structs and returns a Frame whose payload pointers alias them. buf must
// already have been sniffed as binary (magic + supported version).
func (c *Conn) decodeBinary(buf []byte) (Frame, error) {
	if len(buf) < binHeaderLen {
		return Frame{}, fmt.Errorf("offload: binary frame of %d bytes is shorter than its header", len(buf))
	}
	if buf[0] != binMagic {
		return Frame{}, fmt.Errorf("offload: binary frame without magic (got 0x%02x)", buf[0])
	}
	if buf[1] != BinaryWireVersion {
		return Frame{}, &WireVersionError{Version: buf[1]}
	}
	kindByte, flags := buf[2], buf[3]
	if int(kindByte) >= len(binKindNames) || binKindNames[kindByte] == "" {
		return Frame{}, fmt.Errorf("offload: binary frame with unknown kind %d", kindByte)
	}
	r := binReader{buf: buf, pos: binHeaderLen}
	f := Frame{Kind: binKindNames[kindByte]}
	switch f.Kind {
	case KindHello:
		c.recvHello = Hello{
			DeviceID:    c.internStr(r.bytes()),
			wireVersion: int(r.uint()),
		}
		f.Hello = &c.recvHello
	case KindExec:
		c.recvExec = ExecRequest{
			DeviceID: c.internStr(r.bytes()),
			AID:      c.internStr(r.bytes()),
			App:      c.internStr(r.bytes()),
			Method:   c.internStr(r.bytes()),
			Seq:      int(r.zig()),
			Params:   r.bytes(),
		}
		c.recvExec.ParamBytes = host.Bytes(r.zig())
		c.recvExec.FileBytes = host.Bytes(r.zig())
		c.recvExec.RoundTrips = int(r.zig())
		c.recvExec.InteractBytes = host.Bytes(r.zig())
		f.Exec = &c.recvExec
	case KindNeedCode:
		if flags&needCodeHasPayload != 0 {
			c.recvNeed = NeedCode{
				Seq: int(r.zig()),
				AID: c.internStr(r.bytes()),
			}
			f.NeedCode = &c.recvNeed
		}
	case KindCode:
		c.recvCode = CodePush{
			AID:  c.internStr(r.bytes()),
			App:  c.internStr(r.bytes()),
			Size: host.Bytes(r.zig()),
			Seq:  int(r.zig()),
		}
		f.Code = &c.recvCode
	case KindResult:
		c.recvResult = Result{
			Output:       c.internStr(r.bytes()),
			ResultBytes:  host.Bytes(r.zig()),
			Err:          c.internStr(r.bytes()),
			Code:         c.internStr(r.bytes()),
			RetryAfterMs: r.zig(),
			Seq:          int(r.zig()),
		}
		f.Result = &c.recvResult
	case KindChunkOffer, KindChunkNeed:
		c.recvExec = ExecRequest{
			AID: c.internStr(r.bytes()),
			App: c.internStr(r.bytes()),
		}
		c.recvExec.ParamBytes = host.Bytes(r.zig())
		c.recvExec.Seq = int(r.zig())
		c.recvExec.RoundTrips = int(r.zig())
		c.recvExec.Params = r.bytes()
		f.Exec = &c.recvExec
	}
	if r.err != nil {
		return Frame{}, r.err
	}
	if r.pos != len(buf) {
		return Frame{}, fmt.Errorf("offload: binary frame has %d trailing bytes", len(buf)-r.pos)
	}
	return f, nil
}
