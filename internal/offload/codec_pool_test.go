package offload

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"rattrap/internal/host"
)

// TestFrameEncodeZeroAlloc gates the pooled wire path: once the gob
// stream is warm (type descriptors sent), encoding a frame must not touch
// the heap.
func TestFrameEncodeZeroAlloc(t *testing.T) {
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(nil), io.Discard})
	exec := &ExecRequest{
		DeviceID: "phone-1", AID: "abc", App: "ChessGame", Method: "bestMove",
		Seq: 3, Params: []byte{1, 2, 3}, ParamBytes: 122 * host.KB,
	}
	f := Frame{Kind: KindExec, Exec: exec}
	// Warm-up: first Send carries the type descriptors and may allocate.
	for i := 0; i < 4; i++ {
		if err := c.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		exec.Seq++
		if err := c.Send(f); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm Send allocates %.1f times per frame, want 0", avg)
	}
}

// TestCodecPersistentStream pushes many frames of every kind through one
// connection in both directions. The persistent encoder/decoder pair must
// stay frame-aligned for the stream's whole life, and recycled pool
// buffers must never leak one frame's bytes into another's decode.
func TestCodecPersistentStream(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	for i := 0; i < 100; i++ {
		frames := []Frame{
			{Kind: KindHello, Hello: &Hello{DeviceID: fmt.Sprintf("dev-%d", i)}},
			{Kind: KindExec, Exec: &ExecRequest{
				DeviceID: fmt.Sprintf("dev-%d", i), AID: "abc", App: "Linpack",
				Seq: i, Params: bytes.Repeat([]byte{byte(i)}, i%97),
			}},
			{Kind: KindNeedCode, NeedCode: &NeedCode{Seq: i, AID: "abc"}},
			{Kind: KindCode, Code: &CodePush{AID: "abc", App: "Linpack", Size: host.Bytes(i), Seq: i}},
			{Kind: KindResult, Result: &Result{Output: fmt.Sprintf("out-%d", i), Seq: i}},
		}
		for _, f := range frames {
			if err := c.Send(f); err != nil {
				t.Fatalf("frame %d %s: send: %v", i, f.Kind, err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("frame %d %s: recv: %v", i, f.Kind, err)
			}
			if got.Kind != f.Kind {
				t.Fatalf("frame %d: kind %s -> %s", i, f.Kind, got.Kind)
			}
			switch f.Kind {
			case KindExec:
				if got.Exec.Seq != i || !bytes.Equal(got.Exec.Params, f.Exec.Params) {
					t.Fatalf("frame %d: exec corrupted: %+v", i, got.Exec)
				}
			case KindNeedCode:
				if got.NeedCode == nil || got.NeedCode.Seq != i {
					t.Fatalf("frame %d: needcode payload lost: %+v", i, got.NeedCode)
				}
			case KindResult:
				if got.Result.Seq != i || got.Result.Output != f.Result.Output {
					t.Fatalf("frame %d: result corrupted: %+v", i, got.Result)
				}
			}
		}
	}
}

// TestCodecPoisonedAfterError: a Conn that returned a codec error must
// refuse further use on that side — the persistent stream state may have
// diverged from the peer's.
func TestCodecPoisonedAfterError(t *testing.T) {
	t.Run("send", func(t *testing.T) {
		var buf bytes.Buffer
		c := NewConnLimit(&buf, 256)
		if err := c.Send(Frame{Kind: KindExec, Exec: &ExecRequest{Params: make([]byte, 4096)}}); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
		if err := c.Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: "d"}}); err == nil {
			t.Fatal("send after poisoning succeeded")
		}
	})
	t.Run("recv", func(t *testing.T) {
		buf := bytes.NewBuffer([]byte{0x03, 0xff, 0xff, 0xff, 0x01, 0x00})
		c := NewConn(buf)
		if _, err := c.Recv(); err == nil {
			t.Fatal("garbage frame decoded")
		}
		if _, err := c.Recv(); err == nil || errors.Is(err, io.EOF) {
			t.Fatal("recv after poisoning must fail with a poisoned-connection error")
		}
	})
}

// TestCodecCleanEOFNotPoisoned: io.EOF at a frame boundary is the normal
// way a stream ends; it must not poison the connection (a caller may
// legitimately poll again, e.g. after a timeout-driven retry).
func TestCodecCleanEOFNotPoisoned(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if _, err := c.Recv(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
	if err := c.Send(Frame{Kind: KindHello, Hello: &Hello{DeviceID: "d"}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("recv after clean EOF: %v", err)
	}
	if got.Hello.DeviceID != "d" {
		t.Fatalf("frame corrupted after clean EOF: %+v", got)
	}
}
