// Package offload defines the offloading framework shared by the client
// (mobile device) and the cloud platform: the wire protocol messages, the
// four-phase timing breakdown of §III-B, per-request traffic accounting
// (Figure 3 / Table II), and the Gateway interface through which a device
// drives a cloud platform. Rattrap "leaves the offloading details in
// clients to existing offloading frameworks and only cares about the cloud
// side" — this package is that framework boundary.
package offload

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/obs"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// ControlBytes is the modeled size of per-request control messages
// (headers, method descriptors, acks) — the third slice of Figure 3.
const ControlBytes host.Bytes = 350

// AID identifies a mobile code blob (the App Warehouse cache key): the
// hash of the code, app-stable across devices.
func AID(app string, codeSize host.Bytes) string {
	sum := sha1.Sum([]byte(fmt.Sprintf("%s:%d", app, codeSize)))
	return hex.EncodeToString(sum[:8])
}

// ExecRequest asks the cloud to run one offloaded task.
type ExecRequest struct {
	DeviceID string
	AID      string
	App      string
	Method   string
	Seq      int
	Params   []byte
	// Modeled wire sizes at paper scale.
	ParamBytes host.Bytes
	FileBytes  host.Bytes
	// Interactive exchanges during execution (games).
	RoundTrips    int
	InteractBytes host.Bytes

	// span carries the request's observability span through the platform.
	// Unexported so it never crosses the gob wire — each side of a real
	// connection owns its own span; in-process calls (simulations, the
	// realtime server handing a decoded request to core) pass it through.
	span *obs.Span

	// pre carries an ahead-of-time execution of the request's task (see
	// workload.Precomputed). Unexported for the same reason as span: it is
	// cloud-internal and must never change the wire encoding. The realtime
	// server runs the real computation on the request's own goroutine —
	// outside the serialized engine — and the runtime returns this result
	// instead of recomputing under the engine lock.
	pre *workload.Precomputed

	// abort is the request's cancellation signal: when it fires, a
	// dispatcher parked waiting for a runtime abandons the wait instead
	// of eventually claiming a slot for a caller that is gone (the
	// realtime server fires one per connection at teardown). Unexported
	// for the same reason as span: cloud-internal, never on the wire.
	abort *sim.Signal
}

// SetPrecomputed attaches an ahead-of-time execution outcome for the
// request's task. A nil value (the default) means the runtime computes
// for real at dispatch.
func (r *ExecRequest) SetPrecomputed(p *workload.Precomputed) { r.pre = p }

// Precomputed returns the attached outcome, nil when the request has not
// been pre-executed.
func (r ExecRequest) Precomputed() *workload.Precomputed { return r.pre }

// SetSpan attaches an observability span to the request. The platform
// records dispatcher/warehouse/runtime sub-stages into it. A nil span
// (the default) disables per-request recording.
func (r *ExecRequest) SetSpan(sp *obs.Span) { r.span = sp }

// Span returns the attached span, nil when observability is disabled.
func (r ExecRequest) Span() *obs.Span { return r.span }

// SetAbort attaches a cancellation signal. The signal must belong to the
// engine that will serve the request; firing it aborts any queued wait
// the request holds in the dispatcher.
func (r *ExecRequest) SetAbort(sig *sim.Signal) { r.abort = sig }

// Abort returns the attached cancellation signal, nil when the request
// cannot be aborted.
func (r ExecRequest) Abort() *sim.Signal { return r.abort }

// CodePush carries mobile code to the cloud (first offload of an app).
// Seq echoes the exec request the push answers so a pipelined server can
// route it to the right in-flight worker; serial clients may leave it 0.
type CodePush struct {
	AID  string
	App  string
	Size host.Bytes
	Seq  int
}

// Machine-readable error classes carried by Result.Code so clients can
// tell a retryable condition from their own bug without parsing Err.
const (
	// CodeOverloaded: the Dispatcher's wait queue is full; retry after
	// Result.RetryAfterMs.
	CodeOverloaded = "overloaded"
	// CodeProtocol: the client violated the wire protocol (wrong frame
	// kind, exec before hello, AID mismatch). Not retryable.
	CodeProtocol = "protocol"
	// CodeBlocked: the access controller rejected the app. Not retryable.
	CodeBlocked = "blocked"
	// CodeInternal: any other cloud-side failure.
	CodeInternal = "internal"
)

// Result is the cloud's reply.
type Result struct {
	Output      string
	ResultBytes host.Bytes
	Err         string
	// Code classifies Err ("" on success); see the Code* constants.
	Code string
	// RetryAfterMs is the cloud's backoff hint for CodeOverloaded.
	RetryAfterMs int64
	// Seq echoes ExecRequest.Seq so pipelined clients can match responses
	// that arrive out of order. Serial clients may ignore it.
	Seq int
}

// RetryAfter returns the overload backoff hint as a duration.
func (r Result) RetryAfter() time.Duration {
	return time.Duration(r.RetryAfterMs) * time.Millisecond
}

// ErrCodeNeeded is returned by Session.Execute when the session became
// responsible for delivering the mobile code after all: the device that
// claimed the first push aborted before completing it, and this session
// re-claimed. The caller must push the code and call Execute again.
var ErrCodeNeeded = errors.New("offload: mobile code needed")

// ErrOverloaded matches (via errors.Is) an OverloadedError: the platform
// refused admission because its wait queue is full.
var ErrOverloaded = errors.New("offload: platform overloaded")

// OverloadedError is the typed admission rejection, carrying the queue
// state and a retry-after hint derived from observed service times.
type OverloadedError struct {
	QueueDepth int
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("offload: platform overloaded (queue depth %d, retry after %v)", e.QueueDepth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Phases is the paper's decomposition of one offloading request (§III-B).
type Phases struct {
	// NetworkConnection: establishing the device↔cloud connection.
	NetworkConnection time.Duration
	// DataTransfer: moving params, files, code and results.
	DataTransfer time.Duration
	// RuntimePreparation: setting up the mobile code runtime after the
	// request arrives (the phase Rattrap attacks).
	RuntimePreparation time.Duration
	// ComputationExecution: pure execution of the offloaded task.
	ComputationExecution time.Duration
}

// Response is the total offloading response time.
func (p Phases) Response() time.Duration {
	return p.NetworkConnection + p.DataTransfer + p.RuntimePreparation + p.ComputationExecution
}

// Traffic accounts migrated data by kind (Figure 3's composition) and
// direction (Table II's totals).
type Traffic struct {
	CodeUp      host.Bytes
	FileParamUp host.Bytes
	ControlUp   host.Bytes
	Down        host.Bytes
}

// Up is total upload.
func (t Traffic) Up() host.Bytes { return t.CodeUp + t.FileParamUp + t.ControlUp }

// Add accumulates another record.
func (t *Traffic) Add(o Traffic) {
	t.CodeUp += o.CodeUp
	t.FileParamUp += o.FileParamUp
	t.ControlUp += o.ControlUp
	t.Down += o.Down
}

// Gateway is the cloud platform as seen by a device inside a simulation.
type Gateway interface {
	// Prepare allocates (possibly booting) a code runtime environment for
	// the request and returns a session plus nothing else; the runtime-
	// preparation time is observable as the virtual time Prepare consumes.
	Prepare(p *sim.Proc, req ExecRequest) (Session, error)
}

// Session is one request's binding to a prepared runtime.
type Session interface {
	// NeedCode reports whether the device must push the mobile code
	// (neither the runtime nor the App Warehouse has it).
	NeedCode() bool
	// PushCode delivers the code blob; the platform stores and loads it.
	PushCode(p *sim.Proc, push CodePush) error
	// Execute runs the task and returns the result.
	Execute(p *sim.Proc) (Result, error)
	// Release ends the session (the runtime stays warm for reuse).
	Release()
}
