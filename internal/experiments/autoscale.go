package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/faults"
	"rattrap/internal/metrics"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// The autoscale experiment answers the elastic-pool question in virtual
// time: under bursty open-loop arrivals, does a pool that grows and
// shrinks itself beat a fixed pool of the same *average* size? Every cell
// replays one precomputed arrival schedule — bursts of requests landing
// on an idle platform, then nothing for most of the cycle — against its
// own engine, so the only variable is the pool policy. A sampler proc
// integrates pool size over the serving window, which is what makes
// "equal average size" a measured quantity rather than a knob.
//
// Cells drive core.Platform directly (Prepare / PushCode / Execute /
// Release) with no modeled network, so latency is queueing + runtime
// preparation + execution — exactly the costs pool sizing moves. All
// numbers are virtual-time deterministic per seed.

// AutoscaleConfig parameterizes the sweep. The zero value is unusable;
// use DefaultAutoscaleConfig.
type AutoscaleConfig struct {
	Seed int64
	// Order is the Linpack system order (sets per-request compute).
	Order int
	// Bursts arrive every BurstEvery starting at FirstBurst; each is
	// BurstSize requests spread over BurstSpread.
	Bursts      int
	BurstSize   int
	FirstBurst  time.Duration
	BurstEvery  time.Duration
	BurstSpread time.Duration
	// MaxRuntimes caps every cell; FixedSizes lists the static pools to
	// race the autoscaler against.
	MaxRuntimes int
	FixedSizes  []int
	// SamplePeriod is the pool-size integration step.
	SamplePeriod time.Duration
}

// AutoscaleFaultFloor is MinRuntimes in the teardown-fault cell: the pool
// size the remediation gate requires the cell to settle back at.
const AutoscaleFaultFloor = 2

// DefaultAutoscaleConfig is the full sweep; short trims it for CI.
func DefaultAutoscaleConfig(seed int64, short bool) AutoscaleConfig {
	cfg := AutoscaleConfig{
		Seed:         seed,
		Order:        96, // ~0.5 s virtual execution on the cloud host
		Bursts:       4,
		BurstSize:    24,
		FirstBurst:   5 * time.Second,
		BurstEvery:   20 * time.Second,
		BurstSpread:  500 * time.Millisecond,
		MaxRuntimes:  8,
		FixedSizes:   []int{1, 2, 3, 4, 8},
		SamplePeriod: 250 * time.Millisecond,
	}
	if short {
		cfg.Bursts = 2
		cfg.BurstSize = 20
		cfg.BurstEvery = 15 * time.Second
		cfg.FixedSizes = []int{1, 2, 3}
	}
	return cfg
}

// horizon is the sampling window: first arrival to one full cycle past
// the last burst, covering the autoscaler's post-burst shrink.
func (c AutoscaleConfig) horizon() time.Duration {
	return c.FirstBurst + time.Duration(c.Bursts)*c.BurstEvery
}

// schedule precomputes the arrival offsets all cells replay. Jitter
// within a burst comes from the config seed, never from a cell's engine,
// so every cell sees byte-identical arrivals.
func (c AutoscaleConfig) schedule() []time.Duration {
	rng := rand.New(rand.NewSource(c.Seed))
	var at []time.Duration
	for b := 0; b < c.Bursts; b++ {
		base := c.FirstBurst + time.Duration(b)*c.BurstEvery
		for i := 0; i < c.BurstSize; i++ {
			at = append(at, base+time.Duration(rng.Int63n(int64(c.BurstSpread))))
		}
	}
	return at
}

// AutoscaleCell is one pool policy's run over the shared schedule.
type AutoscaleCell struct {
	Name string `json:"name"`
	// FixedSize is the static pool size; 0 marks an autoscaled cell.
	FixedSize int `json:"fixed_size,omitempty"`
	Requests  int `json:"requests"`
	Succeeded int `json:"succeeded"`
	// Virtual-time latency over successful requests, arrival to result.
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
	// Pool-size integral over the sampling window.
	AvgPool  float64 `json:"avg_pool"`
	PeakPool int     `json:"peak_pool"`
	// FinalPool is the census after the engine drains (autoscaled cells
	// settle at MinRuntimes).
	FinalPool int `json:"final_pool"`
	// DrainingFinal must be zero: a non-zero value is the capacity leak
	// the draining-slot bugfix closed.
	DrainingFinal int `json:"draining_final"`
	// Remediation counters (autoscaled cells only).
	TeardownFailures int `json:"teardown_failures,omitempty"`
	InjectedFaults   int `json:"injected_faults,omitempty"`
}

// AutoscaleReport is BENCH_autoscale.json. Everything in it is virtual
// time, so the file is bit-identical across runs at one seed.
type AutoscaleReport struct {
	Workload  string          `json:"workload"`
	Seed      int64           `json:"seed"`
	Short     bool            `json:"short"`
	Bursts    int             `json:"bursts"`
	BurstSize int             `json:"burst_size"`
	BurstSecs float64         `json:"burst_every_s"`
	Max       int             `json:"max_runtimes"`
	Auto      AutoscaleCell   `json:"auto"`
	Fixed     []AutoscaleCell `json:"fixed"`
	Fault     AutoscaleCell   `json:"teardown_fault"`
	// KStar is round(Auto.AvgPool) clamped to the swept fixed sizes: the
	// fixed pool "of equal average size" the headline compares against.
	KStar int `json:"k_star"`
	// Headline: autoscaled p99 over fixed-KStar p99 (< 1 is a win).
	P99VsKStar float64 `json:"p99_vs_k_star"`
}

// RunAutoscale races the autoscaled pool against each fixed size over the
// shared schedule, plus one autoscaled cell with injected teardown faults
// (the zero-permanent-capacity-loss check).
func RunAutoscale(cfg AutoscaleConfig) (*AutoscaleReport, error) {
	if cfg.Bursts <= 0 || cfg.BurstSize <= 0 || cfg.MaxRuntimes <= 0 {
		return nil, fmt.Errorf("experiments: bad autoscale config %+v", cfg)
	}
	arrivals := cfg.schedule()
	rep := &AutoscaleReport{
		Workload:  fmt.Sprintf("%s (n=%d)", workload.NameLinpack, cfg.Order),
		Seed:      cfg.Seed,
		Bursts:    cfg.Bursts,
		BurstSize: cfg.BurstSize,
		BurstSecs: cfg.BurstEvery.Seconds(),
		Max:       cfg.MaxRuntimes,
	}

	auto, err := runAutoscaleCell(cfg, arrivals, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("auto cell: %w", err)
	}
	rep.Auto = *auto

	for _, k := range cfg.FixedSizes {
		cell, err := runAutoscaleCell(cfg, arrivals, k, nil)
		if err != nil {
			return nil, fmt.Errorf("fixed-%d cell: %w", k, err)
		}
		rep.Fixed = append(rep.Fixed, *cell)
	}

	// Remediation cell: every other teardown fails at the Destroy/Stop
	// layer. The repaired StopRuntime still reclaims the slot, so the
	// pool must settle back at its floor with a clean census.
	plan := faults.Plan{Name: "teardown-fault", Seed: cfg.Seed, Rules: []faults.Rule{
		{Site: faults.SiteTeardown, Kind: faults.Drop, Every: 2},
	}}
	fault, err := runAutoscaleCell(cfg, arrivals, 0, &plan)
	if err != nil {
		return nil, fmt.Errorf("teardown-fault cell: %w", err)
	}
	rep.Fault = *fault

	rep.KStar = int(rep.Auto.AvgPool + 0.5)
	if rep.KStar < 1 {
		rep.KStar = 1
	}
	if n := len(cfg.FixedSizes); n > 0 && rep.KStar > cfg.FixedSizes[n-1] {
		rep.KStar = cfg.FixedSizes[n-1]
	}
	for _, cell := range rep.Fixed {
		if cell.FixedSize == rep.KStar && cell.P99Millis > 0 {
			rep.P99VsKStar = rep.Auto.P99Millis / cell.P99Millis
		}
	}
	return rep, nil
}

// runAutoscaleCell replays the schedule against one pool policy. fixed
// > 0 runs a prewarmed static pool with the autoscaler off; fixed == 0
// runs the elastic pool (scale-to-zero, or floor 2 when a fault plan
// makes this the remediation cell).
func runAutoscaleCell(cfg AutoscaleConfig, arrivals []time.Duration, fixed int, plan *faults.Plan) (*AutoscaleCell, error) {
	app, err := workload.ByName(workload.NameLinpack)
	if err != nil {
		return nil, err
	}
	aid := offload.AID(app.Name(), app.CodeSize())
	params := workload.EncodeLinpackParams(cfg.Seed, cfg.Order)

	e := sim.NewEngine(cfg.Seed)
	pcfg := core.DefaultConfig(core.KindRattrap)
	cell := &AutoscaleCell{}
	if fixed > 0 {
		cell.Name = fmt.Sprintf("fixed-%d", fixed)
		cell.FixedSize = fixed
		pcfg.MaxRuntimes = fixed
		pcfg.IdleTimeout = 0 // prewarmed and kept warm: the classic regime
	} else {
		cell.Name = "autoscale"
		pcfg.MaxRuntimes = cfg.MaxRuntimes
		pcfg.MinRuntimes = 0
		pcfg.Autoscale = core.AutoscaleConfig{
			Enabled:     true,
			Interval:    200 * time.Millisecond,
			GrowPerTick: 2,
			ShrinkAfter: 3,
		}
		if plan != nil {
			cell.Name = "autoscale+" + plan.Name
			// A floor keeps churn going after the bursts, so the cell
			// exercises teardown faults on the way back down to it.
			pcfg.MinRuntimes = AutoscaleFaultFloor
		}
	}
	pl := core.New(e, pcfg)

	var inj *faults.Injector
	if plan != nil {
		inj = faults.New(*plan)
		pl.SetTeardownFault(inj.TeardownHook())
	}

	if fixed > 0 {
		// Prewarm the static pool before any arrival, matching the
		// pre-started pools the paper's §III-B critique targets. Boots
		// run in parallel so even the largest pool is warm well before
		// the first burst; a sequential prewarm would still be booting
		// when arrivals land, and the request path would boot extras.
		for i := 0; i < fixed; i++ {
			e.Spawn(fmt.Sprintf("prewarm-%d", i), func(p *sim.Proc) {
				if _, err := pl.BootRuntime(p); err != nil {
					panic(fmt.Sprintf("prewarm boot: %v", err))
				}
			})
		}
	}

	latencies := make([]float64, 0, len(arrivals))
	for i, at := range arrivals {
		i, at := i, at
		e.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
			p.Sleep(at)
			start := e.Now()
			req := offload.ExecRequest{
				DeviceID: fmt.Sprintf("dev-%d", i),
				AID:      aid,
				App:      app.Name(),
				Method:   "solve",
				Params:   params,
			}
			sess, err := pl.Prepare(p, req)
			if err != nil {
				return
			}
			defer sess.Release()
			push := offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}
			if sess.NeedCode() {
				if err := sess.PushCode(p, push); err != nil {
					return
				}
			}
			res, err := sess.Execute(p)
			if errors.Is(err, offload.ErrCodeNeeded) {
				if err = sess.PushCode(p, push); err == nil {
					res, err = sess.Execute(p)
				}
			}
			if err != nil || res.Err != "" {
				return
			}
			cell.Succeeded++
			latencies = append(latencies, (e.Now() - start).Duration().Seconds())
		})
	}

	// The sampler integrates pool size over the fixed horizon; its
	// bounded loop is what lets the engine's event queue drain.
	samples := int(cfg.horizon() / cfg.SamplePeriod)
	var sum, peak int
	e.Spawn("pool-sampler", func(p *sim.Proc) {
		for s := 0; s < samples; s++ {
			p.Sleep(cfg.SamplePeriod)
			n := pl.RuntimeCount()
			sum += n
			if n > peak {
				peak = n
			}
		}
	})

	e.Run()
	if live := e.LiveProcs(); live != 0 {
		return nil, fmt.Errorf("%d procs deadlocked", live)
	}

	cell.Requests = len(arrivals)
	if samples > 0 {
		cell.AvgPool = float64(sum) / float64(samples)
	}
	cell.PeakPool = peak
	cell.FinalPool = pl.RuntimeCount()
	cell.DrainingFinal = pl.DB().StateCount(core.LifecycleDraining)
	cell.TeardownFailures = pl.FailureCount(core.FailTeardown)
	if inj != nil {
		cell.InjectedFaults = inj.Injected()
	}
	if len(latencies) > 0 {
		ms := func(s float64) float64 { return s * 1e3 }
		cell.P50Millis = ms(metrics.Percentile(latencies, 50))
		cell.P99Millis = ms(metrics.Percentile(latencies, 99))
		cell.MaxMillis = ms(metrics.Percentile(latencies, 100))
	}
	return cell, nil
}
