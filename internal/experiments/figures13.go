package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/host"
	"rattrap/internal/metrics"
	"rattrap/internal/netsim"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// Figure1 reproduces "Phase details and offloading speedups when running
// different workloads with the existing cloud platform. The first 20
// offloading requests are investigated": per-workload request phase
// breakdowns against the VM-based cloud over LAN WiFi.
type Figure1 struct {
	PerWorkload map[string]*RunResult
	Order       []string
}

// RunFigure1 executes the §III-B characterization. The four per-workload
// runs are independent simulations and run on the RunCells worker pool.
func RunFigure1(seed int64) (*Figure1, error) {
	f := &Figure1{PerWorkload: make(map[string]*RunResult), Order: workloadOrder()}
	results := make([]*RunResult, len(f.Order))
	err := RunCells(len(f.Order), func(i int) error {
		app := f.Order[i]
		r, err := Run(DefaultRun(core.KindVM, netsim.LANWiFi(), app, seed))
		if err != nil {
			return fmt.Errorf("figure 1 (%s): %w", app, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range f.Order {
		f.PerWorkload[app] = results[i]
	}
	return f, nil
}

func workloadOrder() []string {
	return []string{workload.NameOCR, workload.NameChess, workload.NameVirusScan, workload.NameLinpack}
}

// Tables builds one sub-table per workload, requests in start order.
func (f *Figure1) Tables() []*metrics.Table {
	var out []*metrics.Table
	for _, app := range f.Order {
		r := f.PerWorkload[app]
		recs := append([]RequestRecord(nil), r.Records...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
		tb := metrics.NewTable(fmt.Sprintf("Figure 1(%s) — VM-based cloud, LAN WiFi", app),
			"req", "device", "conn(ms)", "transfer(ms)", "prep(ms)", "compute(ms)", "speedup", "failure")
		for i, rec := range recs {
			fail := ""
			if rec.Failed() {
				fail = "FAIL"
			}
			tb.AddRow(
				fmt.Sprintf("%d", i+1), rec.Device,
				metrics.F(rec.Phases.NetworkConnection.Seconds()*1000, 0),
				metrics.F(rec.Phases.DataTransfer.Seconds()*1000, 0),
				metrics.F(rec.Phases.RuntimePreparation.Seconds()*1000, 0),
				metrics.F(rec.Phases.ComputationExecution.Seconds()*1000, 0),
				metrics.F(rec.Speedup, 2), fail)
		}
		out = append(out, tb)
	}
	return out
}

// Render formats the sub-tables.
func (f *Figure1) Render() string { return renderTables(f.Tables()) }

// Figure2 reproduces "System load in offloading process of different
// applications": per-second server CPU utilization and disk I/O timelines
// during the Figure 1 runs.
type Figure2 struct {
	PerWorkload map[string]*RunResult
	Order       []string
}

// RunFigure2 executes the server-load characterization.
func RunFigure2(seed int64) (*Figure2, error) {
	f1, err := RunFigure1(seed)
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}
	return &Figure2{PerWorkload: f1.PerWorkload, Order: f1.Order}, nil
}

// Tables builds 10-second-bucket averages of the per-second series.
func (f *Figure2) Tables() []*metrics.Table {
	var out []*metrics.Table
	for _, app := range f.Order {
		r := f.PerWorkload[app]
		tb := metrics.NewTable(fmt.Sprintf("Figure 2(%s) — server load timeline", app),
			"t(s)", "CPU(%)", "read(MB/s)", "write(MB/s)")
		for t := 0; t < len(r.ServerCPU); t += 10 {
			end := t + 10
			if end > len(r.ServerCPU) {
				end = len(r.ServerCPU)
			}
			window := func(xs []float64) float64 { return metrics.Mean(xs[t:end]) }
			tb.AddRow(fmt.Sprintf("%d", t),
				metrics.F(window(r.ServerCPU), 1),
				metrics.F(window(r.ServerIORead), 1),
				metrics.F(window(r.ServerIOWrite), 1))
		}
		out = append(out, tb)
	}
	return out
}

// Render formats the sub-tables.
func (f *Figure2) Render() string { return renderTables(f.Tables()) }

// Figure3 reproduces "Composition of migrated data with different
// workloads": per-VM upload composition (mobile code / files+parameters /
// control messages), normalized per VM.
type Figure3 struct {
	PerWorkload map[string]*RunResult
	Order       []string
}

// RunFigure3 executes the duplicate-code-transfer characterization.
func RunFigure3(seed int64) (*Figure3, error) {
	f1, err := RunFigure1(seed)
	if err != nil {
		return nil, fmt.Errorf("figure 3: %w", err)
	}
	return &Figure3{PerWorkload: f1.PerWorkload, Order: f1.Order}, nil
}

// Tables builds each VM's composition fractions.
func (f *Figure3) Tables() []*metrics.Table {
	var out []*metrics.Table
	for _, app := range f.Order {
		r := f.PerWorkload[app]
		tb := metrics.NewTable(fmt.Sprintf("Figure 3(%s) — migrated data per VM", app),
			"vm", "code(KB)", "file+param(KB)", "control(KB)", "code frac")
		for _, info := range r.Runtimes {
			up := info.Traffic.Up()
			frac := 0.0
			if up > 0 {
				frac = float64(info.Traffic.CodeUp) / float64(up)
			}
			tb.AddRow(info.CID,
				metrics.F(float64(info.Traffic.CodeUp)/1024, 0),
				metrics.F(float64(info.Traffic.FileParamUp)/1024, 0),
				metrics.F(float64(info.Traffic.ControlUp)/1024, 1),
				metrics.F(frac, 2))
		}
		out = append(out, tb)
	}
	return out
}

// Render formats the sub-tables.
func (f *Figure3) Render() string { return renderTables(f.Tables()) }

// CodeFraction returns mobile code's share of a workload's per-VM upload,
// averaged over VMs — ">50% for ChessGame and Linpack" in Observation 3.
func (f *Figure3) CodeFraction(app string) float64 {
	r := f.PerWorkload[app]
	var fracs []float64
	for _, info := range r.Runtimes {
		if up := info.Traffic.Up(); up > 0 {
			fracs = append(fracs, float64(info.Traffic.CodeUp)/float64(up))
		}
	}
	return metrics.Mean(fracs)
}

// Observation4 reproduces the §III-E redundancy profiling: after a mixed
// offloading run against a single Android VM, how much of the OS image was
// never accessed.
type Observation4 struct {
	TotalBytes         host.Bytes
	SystemBytes        host.Bytes
	NeverAccessedBytes host.Bytes
	NeverFraction      float64
	SystemFraction     float64
}

// RunObservation4 executes the profiling run.
func RunObservation4(seed int64) (*Observation4, error) {
	e := sim.NewEngine(seed)
	cfg := core.DefaultConfig(core.KindVM)
	cfg.MaxRuntimes = 1
	pl := core.New(e, cfg)

	// 20 mixed requests through one VM, then inspect file access times.
	rcfg := RunConfig{
		Kind: core.KindVM, Profile: netsim.LANWiFi(), Devices: 1,
		RequestsPerDevice: 20, Apps: workloadOrder(), Seed: seed,
	}
	_ = rcfg
	var runErr error
	e.Spawn("profiler", func(p *sim.Proc) {
		dev, err := newDevice(e, "phone-1")
		if err != nil {
			runErr = err
			return
		}
		for r := 0; r < 20; r++ {
			appName := workloadOrder()[r%4]
			app, _ := workload.ByName(appName)
			task := dev.NewTask(app)
			if _, _, err := dev.Offload(p, task, app.CodeSize(), pl); err != nil {
				runErr = err
				return
			}
		}
	})
	e.Run() // drain everything, including the guest's background scan
	if runErr != nil {
		return nil, runErr
	}

	// "After the experiments above are finished, we check the last access
	// time of each part of Android OS."
	infos := pl.DB().List()
	if len(infos) != 1 {
		return nil, fmt.Errorf("observation 4: %d runtimes, want 1", len(infos))
	}
	fs, ok := pl.RuntimeFS(infos[0].CID)
	if !ok {
		return nil, fmt.Errorf("observation 4: runtime fs missing")
	}
	disk := fs.Layers()[0] // the VM's private image
	obs := &Observation4{
		TotalBytes:         disk.Size(),
		SystemBytes:        disk.SizeUnder("/system"),
		NeverAccessedBytes: disk.NeverAccessedSize(),
	}
	obs.NeverFraction = float64(obs.NeverAccessedBytes) / float64(obs.TotalBytes)
	obs.SystemFraction = float64(obs.SystemBytes) / float64(obs.TotalBytes)
	return obs, nil
}

// Tables builds the observation against the paper's numbers.
func (o *Observation4) Tables() []*metrics.Table {
	tb := metrics.NewTable("Observation 4 — OS redundancy profiling (paper: 771MB/1.1GB = 68.4% never accessed; /system 87.4%)",
		"metric", "measured", "paper")
	tb.AddRow("image size (MB)", metrics.F(float64(o.TotalBytes)/float64(host.MB), 0), "~1126")
	tb.AddRow("/system (MB)", metrics.F(float64(o.SystemBytes)/float64(host.MB), 0), "985")
	tb.AddRow("never accessed (MB)", metrics.F(float64(o.NeverAccessedBytes)/float64(host.MB), 0), "771")
	tb.AddRow("never accessed (%)", metrics.F(o.NeverFraction*100, 1), "68.4")
	tb.AddRow("/system share (%)", metrics.F(o.SystemFraction*100, 1), "87.4")
	return []*metrics.Table{tb}
}

// Render formats the observation.
func (o *Observation4) Render() string { return renderTables(o.Tables()) }

// TableI reproduces "Overheads of code runtime environments".
type TableI struct {
	Rows []TableIRow
}

// TableIRow is one runtime environment's overheads.
type TableIRow struct {
	Runtime  string
	Setup    time.Duration
	MemoryMB int
	VCPUs    int
	Disk     host.Bytes
}

// RunTableI boots one runtime of each kind and measures.
func RunTableI(seed int64) (*TableI, error) {
	t := &TableI{}
	for _, kind := range []core.Kind{core.KindVM, core.KindRattrapWO, core.KindRattrap} {
		e := sim.NewEngine(seed)
		pl := core.New(e, core.DefaultConfig(kind))
		var row TableIRow
		var runErr error
		e.Spawn("boot", func(p *sim.Proc) {
			info, err := pl.BootRuntime(p)
			if err != nil {
				runErr = err
				return
			}
			row = TableIRow{
				Runtime: label(kind), Setup: info.BootTime,
				MemoryMB: info.MemMB, VCPUs: 1, Disk: info.DiskBytes,
			}
		})
		e.Run()
		if runErr != nil {
			return nil, fmt.Errorf("table I (%v): %w", kind, runErr)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func label(kind core.Kind) string {
	switch kind {
	case core.KindVM:
		return "Android VM"
	case core.KindRattrapWO:
		return "CAC (non-optimized)"
	default:
		return "CAC"
	}
}

// Tables builds Table I.
func (t *TableI) Tables() []*metrics.Table {
	tb := metrics.NewTable("Table I — overheads of code runtime environments (paper: 28.72s/512MB/1.1GB, 6.80s/128MB/1.02GB, 1.75s/96MB/7.1MB)",
		"Code Runtime", "Setup Time", "Memory Footprint", "CPU Allocation", "Disk Usage")
	for _, r := range t.Rows {
		disk := fmt.Sprintf("%.2fGB", float64(r.Disk)/float64(host.GB))
		if r.Disk < 100*host.MB {
			disk = fmt.Sprintf("%.1fMB", float64(r.Disk)/float64(host.MB))
		}
		tb.AddRow(r.Runtime, fmt.Sprintf("%.2fs", r.Setup.Seconds()),
			fmt.Sprintf("%dMB", r.MemoryMB), fmt.Sprintf("%dvCPU", r.VCPUs), disk)
	}
	return []*metrics.Table{tb}
}

// Render formats Table I.
func (t *TableI) Render() string { return renderTables(t.Tables()) }

// renderTables joins table renders with blank lines.
func renderTables(ts []*metrics.Table) string {
	var b strings.Builder
	for i, tb := range ts {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(tb.Render())
	}
	return b.String()
}
