package experiments

import (
	"reflect"
	"testing"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/faults"
	"rattrap/internal/netsim"
	"rattrap/internal/workload"
)

// TestFaultRunDeterministic pins the acceptance criterion that a fixed-
// seed fault plan produces bit-identical results across runs.
func TestFaultRunDeterministic(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.WANWiFi(), workload.NameChess, 42)
	for _, plan := range faults.StandardPlans(42) {
		run := func() *FaultRunResult {
			r, err := RunFaults(cfg, plan, device.RetryPolicy{}, true)
			if err != nil {
				t.Fatalf("%s: %v", plan.Name, err)
			}
			return r
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plan %s not deterministic:\n  %+v\n  %+v", plan.Name, a, b)
		}
	}
}

// TestHealthyPlanIsLossless pins the baseline: no plan rules, no faults,
// every request succeeds in one attempt.
func TestHealthyPlanIsLossless(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.LANWiFi(), workload.NameChess, 7)
	r, err := RunFaults(cfg, faults.Healthy(), device.RetryPolicy{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.SuccessRate != 1 || r.Injected != 0 {
		t.Fatalf("healthy run: %+v", r)
	}
	if r.Attempts != r.Requests {
		t.Fatalf("healthy run retried: %d attempts for %d requests", r.Attempts, r.Requests)
	}
}

// TestRetriesRecoverInjectedLoss pins the headline robustness claim:
// under a lossy plan, single-attempt clients measurably fail while
// retrying clients recover to (near-)full success.
func TestRetriesRecoverInjectedLoss(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.WANWiFi(), workload.NameChess, 11)
	cfg.RequestsPerDevice = 6
	plan := faults.Plan{Name: "drop-uplink", Seed: 11, Rules: []faults.Rule{
		{Site: faults.SiteUpload, Kind: faults.Drop, Every: 5},
	}}

	bare, err := RunFaults(cfg, plan, device.RetryPolicy{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if bare.SuccessRate >= 1 {
		t.Fatalf("plan injected no loss without retries: %+v", bare)
	}
	if bare.Attempts != bare.Requests {
		t.Fatalf("retry disabled but attempts %d != requests %d", bare.Attempts, bare.Requests)
	}

	robust, err := RunFaults(cfg, plan, device.RetryPolicy{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if robust.SuccessRate < 0.99 {
		t.Fatalf("retries should recover ≥99%%: %+v", robust)
	}
	if robust.Attempts <= robust.Requests {
		t.Fatalf("recovery without extra attempts is impossible: %+v", robust)
	}
	if robust.Injected == 0 {
		t.Fatal("plan fired no faults in the retry run")
	}
}

// TestStalledDevicePlanReleasesSlots pins that the stalled-device plan
// completes: stalls delay but never wedge, and the dispatcher's slots all
// come back (RunFaults errors on deadlocked procs, so success implies
// every slot was reclaimed within the run).
func TestStalledDevicePlanReleasesSlots(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.FourG(), workload.NameChess, 5)
	var plan faults.Plan
	for _, p := range faults.StandardPlans(5) {
		if p.Name == "stalled-device" {
			plan = p
		}
	}
	if plan.Name == "" {
		t.Fatal("stalled-device plan missing from the standard suite")
	}
	r, err := RunFaults(cfg, plan, device.RetryPolicy{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.SuccessRate < 0.99 {
		t.Fatalf("stalled-device with retries: %+v", r)
	}
	if r.FaultStats["net.download:stall"] == 0 {
		t.Fatalf("no stalls fired: %+v", r.FaultStats)
	}
}
