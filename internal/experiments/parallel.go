package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sweepWorkers caps how many experiment cells run concurrently in
// RunCells. 0 (the default) means GOMAXPROCS; tests pin it to 1 to check
// the parallel merge against a sequential golden.
var sweepWorkers = 0

// RunCells executes n independent experiment cells on a bounded worker
// pool. Each cell must be self-contained — its own sim.Engine, platform
// and devices — which is what every runner in this package already builds
// per Run call; the engines themselves stay single-threaded. The callback
// writes its result into index-addressed storage, so the caller merges in
// index order and every derived artifact is bit-identical to a sequential
// sweep; only wall-clock time changes. On failure the lowest-indexed
// cell error is returned — again what a sequential loop would have
// reported first.
func RunCells(n int, run func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := sweepWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
