package experiments

import (
	"testing"

	"rattrap/internal/core"
	"rattrap/internal/netsim"
	"rattrap/internal/workload"
)

// TestOneShardClusterGolden pins the tentpole's backward-compatibility
// contract at the Run level: serving an experiment through a 1-shard
// cluster.Cluster must reproduce the bare Platform's output byte for byte —
// every record, span stage, registry counter and warehouse stat. The
// cluster layer may only change behavior when it actually shards.
func TestOneShardClusterGolden(t *testing.T) {
	bare := goldenRunShards(t, 42, 0)
	one := goldenRunShards(t, 42, 1)
	if bare != one {
		t.Fatalf("1-shard cluster diverged from bare platform:\n--- bare\n%s\n--- 1 shard\n%s", bare, one)
	}
}

// TestComparisonOneShardCluster pins the same contract on the paper's
// headline artifact: the Figure 9 and Table II renderings of a seed-42
// comparison served through a 1-shard cluster must be byte-identical to the
// pre-refactor Platform path.
func TestComparisonOneShardCluster(t *testing.T) {
	base, err := RunComparison(42)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := RunComparisonShards(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := base.Figure9Render(), clustered.Figure9Render(); a != b {
		t.Fatalf("figure 9 diverged through 1-shard cluster:\n--- platform\n%s\n--- cluster\n%s", a, b)
	}
	if a, b := base.TableIIRender(), clustered.TableIIRender(); a != b {
		t.Fatalf("table II diverged through 1-shard cluster:\n--- platform\n%s\n--- cluster\n%s", a, b)
	}
	for _, app := range base.Order {
		be, bh := base.WarehouseStats(app)
		ce, ch := clustered.WarehouseStats(app)
		if be != ce || bh != ch {
			t.Fatalf("%s warehouse stats diverged: platform %d/%d, cluster %d/%d", app, be, bh, ce, ch)
		}
	}
}

// TestMultiShardRunCompletes exercises the sharded path end to end inside
// the simulation: more devices than the paper's five so multiple shards
// see traffic, every request must succeed, and the merged Container DB must
// carry the per-shard CID prefixes that keep IDs unique cluster-wide.
func TestMultiShardRunCompletes(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.LANWiFi(), workload.NameLinpack, 42)
	cfg.Devices = 8
	cfg.Shards = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Err != "" {
			t.Fatalf("request %s/%d failed: %s", rec.Device, rec.Index, rec.Err)
		}
	}
	if len(res.Runtimes) == 0 {
		t.Fatal("no runtimes recorded")
	}
	prefixed := 0
	for _, info := range res.Runtimes {
		if len(info.CID) > 2 && info.CID[0] == 's' {
			prefixed++
		}
	}
	if prefixed != len(res.Runtimes) {
		t.Fatalf("%d/%d runtimes missing the shard CID prefix: %+v", len(res.Runtimes)-prefixed, len(res.Runtimes), res.Runtimes)
	}
}
