package experiments

import (
	"errors"
	"fmt"
	"time"

	"rattrap/internal/cluster"
	"rattrap/internal/core"
	"rattrap/internal/host"
	"rattrap/internal/metrics"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// The reshard experiment is the live-membership stress test: a steady
// open-loop sweep runs against a replicated cluster while one shard
// crashes mid-sweep and a fresh shard joins a few seconds later. Three
// properties are on trial, and the cmd wrapper turns each into a hard
// gate:
//
//  1. Availability — every request succeeds, counting retries. A crash
//     surfaces as ErrShardDown only until the epoch advances; the retry
//     re-routes onto the surviving replica.
//  2. Recovery — the completion rate in the post-event window comes back
//     to within 10% of the pre-event window.
//  3. Delta migration — the join transfers only chunks the new shard is
//     missing, so migrated delta bytes stay strictly under the entries'
//     full size.
//
// Requests drive cluster.Prepare directly (no modeled device network),
// so the measured rate isolates routing + queueing + execution — the
// costs membership changes perturb. Deterministic per seed.

// ReshardConfig parameterizes the sweep. Zero value is unusable; use
// DefaultReshardConfig.
type ReshardConfig struct {
	Seed int64
	// Order is the Linpack system order (per-request compute).
	Order int
	// Requests arrive uniformly over Horizon; Variants spreads them over
	// that many distinct AIDs (consistent-hash placements).
	Requests int
	Variants int
	Devices  int
	Horizon  time.Duration
	// Shards/Replicas shape the founding cluster.
	Shards   int
	Replicas int
	// FailAt crashes shard 1; AddAt joins a fresh shard.
	FailAt time.Duration
	AddAt  time.Duration
	// The pre window is [MeasureStart, FailAt); the post window is
	// [PostStart, Horizon). MeasureStart skips the cold-boot backlog drain, PostStart
	// gives the join time to finish migrating.
	MeasureStart time.Duration
	PostStart    time.Duration
	// MaxAttempts bounds per-request retries (shard-down + overload).
	MaxAttempts int
	// MaxRuntimes caps each shard's pool.
	MaxRuntimes int
}

// DefaultReshardConfig is the full sweep; short trims it for CI.
func DefaultReshardConfig(seed int64, short bool) ReshardConfig {
	cfg := ReshardConfig{
		Seed:         seed,
		Order:        48,
		Requests:     600,
		Variants:     48,
		Devices:      128,
		Horizon:      24 * time.Second,
		Shards:       3,
		Replicas:     2,
		FailAt:       8 * time.Second,
		AddAt:        12 * time.Second,
		MeasureStart: 5 * time.Second,
		PostStart:    16 * time.Second,
		MaxAttempts:  6,
		MaxRuntimes:  4,
	}
	if short {
		cfg.Requests = 300
		cfg.Variants = 32
	}
	return cfg
}

// ReshardReport is BENCH_reshard.json. All quantities are virtual time,
// so the file is byte-identical across runs at one seed.
type ReshardReport struct {
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	Short    bool   `json:"short"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`

	Requests         int `json:"requests"`
	Succeeded        int `json:"succeeded"`
	Retries          int `json:"retries"`
	ShardDownRetries int `json:"shard_down_retries"`

	FailAtS float64 `json:"fail_at_s"`
	AddAtS  float64 `json:"add_at_s"`

	// Completion rates in the pre-event and post-recovery windows, and
	// their ratio (>= 0.9 is the recovery gate).
	PreReqS       float64 `json:"pre_req_s"`
	PostReqS      float64 `json:"post_req_s"`
	RecoveryRatio float64 `json:"recovery_ratio"`

	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`

	// End-of-run membership and migration accounting.
	Epoch         uint64 `json:"epoch"`
	LiveShards    int    `json:"live_shards"`
	Joins         int    `json:"joins"`
	Failures      int    `json:"failures"`
	EntriesMoved  int    `json:"entries_moved"`
	DeltaBytes    int64  `json:"delta_bytes"`
	FullBytes     int64  `json:"full_bytes"`
	ReplicaCopies int    `json:"replica_copies"`
	Repaired      int    `json:"repaired"`
}

// RunReshard executes the kill-one-add-one sweep and reports.
func RunReshard(cfg ReshardConfig) (*ReshardReport, error) {
	if cfg.Requests <= 0 || cfg.Shards < 2 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("experiments: bad reshard config %+v", cfg)
	}
	app, err := workload.ByName(workload.NameLinpack)
	if err != nil {
		return nil, err
	}
	params := workload.EncodeLinpackParams(cfg.Seed, cfg.Order)

	e := sim.NewEngine(cfg.Seed)
	pcfg := core.DefaultConfig(core.KindRattrap)
	pcfg.MaxRuntimes = cfg.MaxRuntimes
	cl := cluster.NewReplicated(e, pcfg, cfg.Shards, cfg.Replicas)

	rep := &ReshardReport{
		Workload: fmt.Sprintf("%s (n=%d)", workload.NameLinpack, cfg.Order),
		Seed:     cfg.Seed,
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
		Requests: cfg.Requests,
		FailAtS:  cfg.FailAt.Seconds(),
		AddAtS:   cfg.AddAt.Seconds(),
	}

	e.At(sim.Time(cfg.FailAt), func() { cl.FailShard(1) })
	e.At(sim.Time(cfg.AddAt), func() { cl.AddShard() })

	var latencies []float64
	var preDone, postDone int
	gap := cfg.Horizon / time.Duration(cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		i := i
		at := time.Duration(i) * gap
		e.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
			p.Sleep(at)
			start := e.Now()
			codeSize := app.CodeSize() + host.Bytes(i%cfg.Variants)
			req := offload.ExecRequest{
				DeviceID: fmt.Sprintf("dev-%d", i%cfg.Devices),
				AID:      offload.AID(app.Name(), codeSize),
				App:      app.Name(),
				Method:   "solve",
				Seq:      i / cfg.Devices,
				Params:   params,
			}
			if err := offloadWithRetry(p, cl, cfg, rep, req, app.Name(), codeSize); err != nil {
				return
			}
			rep.Succeeded++
			done := e.Now()
			latencies = append(latencies, (done - start).Duration().Seconds())
			if done >= sim.Time(cfg.MeasureStart) && done < sim.Time(cfg.FailAt) {
				preDone++
			}
			if done >= sim.Time(cfg.PostStart) && done < sim.Time(cfg.Horizon) {
				postDone++
			}
		})
	}

	e.Run()
	if live := e.LiveProcs(); live != 0 {
		return nil, fmt.Errorf("%d procs deadlocked", live)
	}

	preWin := (cfg.FailAt - cfg.MeasureStart).Seconds()
	postWin := (cfg.Horizon - cfg.PostStart).Seconds()
	if preWin > 0 {
		rep.PreReqS = float64(preDone) / preWin
	}
	if postWin > 0 {
		rep.PostReqS = float64(postDone) / postWin
	}
	if rep.PreReqS > 0 {
		rep.RecoveryRatio = rep.PostReqS / rep.PreReqS
	}
	if len(latencies) > 0 {
		sorted := append([]float64(nil), latencies...)
		rep.P50Millis = metrics.Percentile(sorted, 50) * 1e3
		rep.P99Millis = metrics.Percentile(sorted, 99) * 1e3
	}

	mem := cl.Membership()
	ms := cl.MigrationStats()
	rep.Epoch = cl.Epoch()
	rep.LiveShards = mem.LiveCount()
	rep.Joins = ms.Joins
	rep.Failures = ms.Failures
	rep.EntriesMoved = ms.EntriesMoved
	rep.DeltaBytes = int64(ms.DeltaBytes)
	rep.FullBytes = int64(ms.FullBytes)
	rep.ReplicaCopies = ms.ReplicaCopies
	rep.Repaired = ms.Repaired
	return rep, nil
}

// offloadWithRetry drives one request: shard-down and overload errors
// back off and retry (the next epoch's ring routes around the crash);
// anything else is permanent.
func offloadWithRetry(p *sim.Proc, cl *cluster.Cluster, cfg ReshardConfig, rep *ReshardReport, req offload.ExecRequest, appName string, codeSize host.Bytes) error {
	for attempt := 1; ; attempt++ {
		err := reshardAttempt(p, cl, req, appName, codeSize)
		if err == nil {
			return nil
		}
		retryable := errors.Is(err, cluster.ErrShardDown) || errors.Is(err, offload.ErrOverloaded)
		if attempt >= cfg.MaxAttempts || !retryable {
			return err
		}
		if errors.Is(err, cluster.ErrShardDown) {
			rep.ShardDownRetries++
		}
		rep.Retries++
		p.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
	}
}

func reshardAttempt(p *sim.Proc, cl *cluster.Cluster, req offload.ExecRequest, appName string, codeSize host.Bytes) error {
	sess, err := cl.Prepare(p, req)
	if err != nil {
		return err
	}
	defer sess.Release()
	push := offload.CodePush{AID: req.AID, App: appName, Size: codeSize}
	if sess.NeedCode() {
		if err := sess.PushCode(p, push); err != nil {
			return err
		}
	}
	for {
		res, err := sess.Execute(p)
		if errors.Is(err, offload.ErrCodeNeeded) {
			if perr := sess.PushCode(p, push); perr != nil {
				return perr
			}
			continue
		}
		if err != nil {
			return err
		}
		if res.Err != "" {
			return fmt.Errorf("cloud error (%s): %s", res.Code, res.Err)
		}
		return nil
	}
}
