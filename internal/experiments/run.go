// Package experiments implements the evaluation harness: one runner per
// table and figure of the paper (§III and §VI). Every runner assembles a
// deterministic simulation — cloud platform, five devices, a request
// schedule — executes it on the discrete-event engine, and reduces the
// records to the rows/series the paper reports. Absolute numbers depend on
// the calibrated substrate; the shapes (who wins, by what factor, where
// crossovers fall) are asserted in this package's tests.
package experiments

import (
	"fmt"
	"time"

	"rattrap/internal/cluster"
	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/host"
	"rattrap/internal/metrics"
	"rattrap/internal/netsim"
	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/power"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// RunConfig describes one experiment run.
type RunConfig struct {
	Kind    core.Kind
	Profile netsim.Profile
	// Devices is the number of client handsets (5 in the paper).
	Devices int
	// RequestsPerDevice is the closed-loop request count per device
	// (5 devices × 4 = the paper's "first 20 offloading requests").
	RequestsPerDevice int
	// Apps are drawn round-robin per device request; a single entry runs
	// one workload throughout.
	Apps []string
	// Stagger separates device start times.
	Stagger time.Duration
	// Seed drives all randomness.
	Seed int64
	// Spans, when true, collects a per-request observability span on every
	// device (RequestRecord.Span): the four top-level stages mirror the
	// phase accumulation exactly, and the platform's dispatcher/warehouse/
	// runtime sub-stages nest under them. All durations are virtual time,
	// bit-deterministic per seed.
	Spans bool
	// Obs, when non-nil, is installed on the platform (core.SetObs) so the
	// run populates aggregate counters, gauges and stage histograms.
	Obs *obs.Registry
	// Shards, when positive, serves the run through a cluster.Cluster of
	// that many Platform shards (consistent-hash AID routing) instead of a
	// bare Platform. A 1-shard cluster is pinned byte-identical to the
	// bare Platform by the goldens in this package's tests.
	Shards int
}

// DefaultRun returns the paper's standard setup for one workload.
func DefaultRun(kind core.Kind, profile netsim.Profile, app string, seed int64) RunConfig {
	return RunConfig{
		Kind: kind, Profile: profile, Devices: 5, RequestsPerDevice: 4,
		Apps: []string{app}, Stagger: 300 * time.Millisecond, Seed: seed,
	}
}

// RequestRecord is one offloading request's measurements.
type RequestRecord struct {
	Device  string
	App     string
	Index   int // per-device request index
	Start   sim.Time
	End     sim.Time
	Phases  offload.Phases
	Local   time.Duration // local-execution time of the same task
	Speedup float64       // Local / offloading response
	// Offloaded is false when the client framework's decision engine
	// predicted offloading unprofitable and ran locally instead.
	Offloaded bool
	// EnergyJ is device energy for the offloaded request; LocalEnergyJ is
	// the energy running it on the handset instead.
	EnergyJ      float64
	LocalEnergyJ float64
	Err          string
	// Span is the request's stage breakdown (nil unless RunConfig.Spans;
	// also nil for requests the decision engine ran locally).
	Span *obs.Span
}

// Failed reports an offloading failure (speedup below 1, §III-B).
func (r RequestRecord) Failed() bool { return r.Err != "" || r.Speedup < 1 }

// RunResult is everything a run produced.
type RunResult struct {
	Cfg     RunConfig
	Records []RequestRecord
	// Runtimes snapshots the Container DB at the end of the run.
	Runtimes []*core.RuntimeInfo
	// DeviceTraffic sums all devices' migrated-data accounting.
	DeviceTraffic offload.Traffic
	// Server timelines, one sample per second from time zero to Horizon.
	ServerCPU     []float64
	ServerIORead  []float64
	ServerIOWrite []float64
	Horizon       time.Duration
	// Warehouse stats (zero for baselines).
	WarehouseEntries, WarehouseHits int
}

// newDevice creates a LAN-attached device (the common case in runners).
func newDevice(e *sim.Engine, name string) (*device.Device, error) {
	return device.New(e, name, netsim.LANWiFi())
}

// localTime models running the task on the reference handset: its work at
// device speed plus its I/O on device flash.
func localTime(m workload.Metrics) time.Duration {
	cfg := host.MobileDevice("ref")
	secs := float64(m.Work)/cfg.CoreMops +
		float64(m.IORead+m.IOWrite)/float64(host.MB)/cfg.DiskSeqMBps
	return time.Duration(secs * float64(time.Second))
}

// Run executes the experiment.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Devices <= 0 || cfg.RequestsPerDevice <= 0 || len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("experiments: bad config %+v", cfg)
	}
	for _, a := range cfg.Apps {
		if _, err := workload.ByName(a); err != nil {
			return nil, err
		}
	}
	e := sim.NewEngine(cfg.Seed)
	var (
		gw offload.Gateway
		pl *core.Platform   // shard 0 (server-timeline vantage point)
		cl *cluster.Cluster // nil unless cfg.Shards > 0
	)
	if cfg.Shards > 0 {
		cl = cluster.New(e, core.DefaultConfig(cfg.Kind), cfg.Shards)
		if cfg.Obs != nil {
			cl.SetObs(cfg.Obs)
		}
		gw, pl = cl, cl.Shard(0)
	} else {
		pl = core.New(e, core.DefaultConfig(cfg.Kind))
		if cfg.Obs != nil {
			pl.SetObs(cfg.Obs)
		}
		gw = pl
	}
	refReg := workload.NewRegistry() // reference executions for local time

	res := &RunResult{Cfg: cfg}
	var runErr error
	for i := 0; i < cfg.Devices; i++ {
		i := i
		dev, err := device.New(e, fmt.Sprintf("phone-%d", i+1), cfg.Profile)
		if err != nil {
			return nil, err
		}
		dev.EnableSpans(cfg.Spans)
		e.Spawn(dev.Name, func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * cfg.Stagger)
			for r := 0; r < cfg.RequestsPerDevice; r++ {
				appName := cfg.Apps[r%len(cfg.Apps)]
				app, _ := workload.ByName(appName)
				task := dev.NewTask(app)
				m, err := refReg.Execute(task)
				if err != nil {
					runErr = err
					return
				}
				local := localTime(m)
				rec := RequestRecord{
					Device: dev.Name, App: appName, Index: r,
					Start: e.Now(), Local: local,
					LocalEnergyJ: power.LocalEnergy(local),
				}
				before := dev.Meter.Joules
				offloaded, ph, result, err := dev.MaybeOffload(p, task, app.CodeSize(), gw)
				rec.End = e.Now()
				rec.Phases = ph
				rec.Offloaded = offloaded
				if offloaded {
					rec.Span = dev.LastSpan()
				}
				rec.EnergyJ = dev.Meter.Joules - before
				if err != nil {
					rec.Err = err.Error()
				} else if resp := ph.Response(); offloaded && resp > 0 {
					rec.Speedup = float64(local) / float64(resp)
					rec.Err = result.Err
				}
				res.Records = append(res.Records, rec)
			}
			res.DeviceTraffic.Add(dev.Traffic())
		})
	}
	e.Run()
	if runErr != nil {
		return nil, runErr
	}
	if live := e.LiveProcs(); live != 0 {
		return nil, fmt.Errorf("experiments: %d procs deadlocked", live)
	}

	if cl != nil {
		res.Runtimes = cl.Runtimes()
		res.WarehouseEntries, res.WarehouseHits = cl.WarehouseStats()
	} else {
		res.Runtimes = pl.DB().List()
		if wh := pl.Warehouse(); wh != nil {
			res.WarehouseEntries, res.WarehouseHits, _ = wh.Stats()
		}
	}
	res.Horizon = e.Now().Duration().Truncate(time.Second) + time.Second
	end := sim.Time(res.Horizon)
	// Server timelines come from shard 0: in cluster mode each shard is its
	// own server host, and the figures only chart the single-server story.
	res.ServerCPU = pl.Server.CPUUtilization(0, end, time.Second)
	res.ServerIORead = pl.Server.DiskReadMBps(0, end, time.Second)
	res.ServerIOWrite = pl.Server.DiskWriteMBps(0, end, time.Second)
	return res, nil
}

// MeanPhases averages phase durations (seconds) over successful records.
func (r *RunResult) MeanPhases() (conn, transfer, prep, comp float64) {
	var cs, ts, ps, es []float64
	for _, rec := range r.Records {
		if rec.Err != "" || !rec.Offloaded {
			continue
		}
		cs = append(cs, rec.Phases.NetworkConnection.Seconds())
		ts = append(ts, rec.Phases.DataTransfer.Seconds())
		ps = append(ps, rec.Phases.RuntimePreparation.Seconds())
		es = append(es, rec.Phases.ComputationExecution.Seconds())
	}
	return metrics.Mean(cs), metrics.Mean(ts), metrics.Mean(ps), metrics.Mean(es)
}

// Speedups lists per-request speedups (errors excluded).
func (r *RunResult) Speedups() []float64 {
	var out []float64
	for _, rec := range r.Records {
		if rec.Err == "" && rec.Offloaded {
			out = append(out, rec.Speedup)
		}
	}
	return out
}

// FailureRate is the fraction of requests that did not beat local
// execution.
func (r *RunResult) FailureRate() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	n, offloaded := 0, 0
	for _, rec := range r.Records {
		if !rec.Offloaded {
			continue // the framework chose local execution: not a failure
		}
		offloaded++
		if rec.Failed() {
			n++
		}
	}
	if offloaded == 0 {
		return 0
	}
	return float64(n) / float64(offloaded)
}

// MeanEnergyNormalized is mean offload energy divided by mean local energy
// (Figure 10's normalization).
func (r *RunResult) MeanEnergyNormalized() float64 {
	var off, loc []float64
	for _, rec := range r.Records {
		if rec.Err != "" {
			continue
		}
		off = append(off, rec.EnergyJ)
		loc = append(loc, rec.LocalEnergyJ)
	}
	l := metrics.Mean(loc)
	if l == 0 {
		return 0
	}
	return metrics.Mean(off) / l
}
