package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rattrap/internal/trace"
)

// withWorkers runs fn with the sweep worker count pinned, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := sweepWorkers
	sweepWorkers = n
	defer func() { sweepWorkers = old }()
	fn()
}

// TestRunCellsRunsEveryCell: every index is executed exactly once and
// index-addressed results land where the caller put them.
func TestRunCellsRunsEveryCell(t *testing.T) {
	const n = 37
	var calls atomic.Int64
	got := make([]int, n)
	if err := RunCells(n, func(i int) error {
		calls.Add(1)
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("ran %d cells, want %d", calls.Load(), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cell %d result %d, want %d", i, v, i*i)
		}
	}
}

// TestRunCellsLowestError: with several failing cells, the reported error
// is the lowest-indexed one — what a sequential sweep would have hit
// first — regardless of completion order.
func TestRunCellsLowestError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers, func() {
			err := RunCells(20, func(i int) error {
				switch i {
				case 3:
					return errLow
				case 17:
					return errHigh
				}
				return nil
			})
			if err != errLow {
				t.Fatalf("workers=%d: got %v, want the lowest-indexed error", workers, err)
			}
		})
	}
}

// TestRunCellsZero: an empty sweep is a no-op, not a hang.
func TestRunCellsZero(t *testing.T) {
	if err := RunCells(0, func(i int) error { t.Fatal("cell ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelComparisonMatchesSequential is the golden gate for the
// parallel sweeps: the full workload × platform comparison run on the
// worker pool must render Figure 9 and Table II bit-identically to the
// sequential sweep. Each cell owns its engine, so only merge order could
// diverge — this pins it.
func TestParallelComparisonMatchesSequential(t *testing.T) {
	var seq, par string
	withWorkers(t, 1, func() {
		c, err := RunComparison(11)
		if err != nil {
			t.Fatal(err)
		}
		seq = c.Figure9Render() + "\n" + c.TableIIRender()
	})
	withWorkers(t, 8, func() {
		c, err := RunComparison(11)
		if err != nil {
			t.Fatal(err)
		}
		par = c.Figure9Render() + "\n" + c.TableIIRender()
	})
	if seq != par {
		t.Fatalf("parallel comparison diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
}

// TestParallelTraceMatchesSequential: same golden gate for the trace
// replay (Figure 11), whose three platform replays share the generated
// event list read-only. A scaled-down trace keeps the double run fast;
// the full-scale replay is covered by TestFigure11ReproducesPaper.
func TestParallelTraceMatchesSequential(t *testing.T) {
	tcfg := trace.DefaultConfig(11)
	tcfg.Duration = 20 * time.Minute
	var seq, par string
	withWorkers(t, 1, func() {
		f, err := RunTrace(tcfg)
		if err != nil {
			t.Fatal(err)
		}
		seq = f.Render()
	})
	withWorkers(t, 3, func() {
		f, err := RunTrace(tcfg)
		if err != nil {
			t.Fatal(err)
		}
		par = f.Render()
	})
	if seq != par {
		t.Fatalf("parallel trace replay diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
}
