package experiments

import (
	"fmt"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/faults"
	"rattrap/internal/metrics"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// FaultRunResult summarizes one run under a fault plan: how many requests
// ultimately succeeded, how many attempts that took, and the tail of the
// (virtual) response-time distribution. All numbers are deterministic per
// (plan, seed, config).
type FaultRunResult struct {
	Plan      string
	Retry     bool
	Requests  int
	Succeeded int
	// SuccessRate is Succeeded/Requests.
	SuccessRate float64
	// Attempts is the total offload attempts across all requests
	// (Requests when nothing was retried).
	Attempts int
	// Injected is the number of faults the plan fired; FaultStats breaks
	// it down by "site:kind".
	Injected   int
	FaultStats map[string]int
	// Response-time distribution over successful requests, in virtual
	// time, end-to-end including retries and backoff.
	Mean, P50, P95, P99, Max time.Duration
}

// RunFaults executes cfg's request schedule under the given fault plan.
// The plan's injector is wired into every device link, the platform's
// shared offloading-I/O mount, and the container boot path. When retry
// is false every request gets exactly one attempt (the pre-robustness
// behavior); otherwise policy governs backoff and attempt budget.
func RunFaults(cfg RunConfig, plan faults.Plan, policy device.RetryPolicy, retry bool) (*FaultRunResult, error) {
	if cfg.Devices <= 0 || cfg.RequestsPerDevice <= 0 || len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("experiments: bad config %+v", cfg)
	}
	for _, a := range cfg.Apps {
		if _, err := workload.ByName(a); err != nil {
			return nil, err
		}
	}
	e := sim.NewEngine(cfg.Seed)
	pl := core.New(e, core.DefaultConfig(cfg.Kind))
	inj := faults.New(plan)
	pl.SetBootFault(inj.BootHook())
	if m := pl.OffloadIO(); m != nil {
		m.SetFault(inj.FSHook())
	}

	res := &FaultRunResult{Plan: plan.Name, Retry: retry}
	var latencies []float64
	for i := 0; i < cfg.Devices; i++ {
		i := i
		dev, err := device.New(e, fmt.Sprintf("phone-%d", i+1), cfg.Profile)
		if err != nil {
			return nil, err
		}
		dev.Link.SetFault(inj.NetHook(dev.Name))
		e.Spawn(dev.Name, func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * cfg.Stagger)
			for r := 0; r < cfg.RequestsPerDevice; r++ {
				appName := cfg.Apps[r%len(cfg.Apps)]
				app, _ := workload.ByName(appName)
				task := dev.NewTask(app)
				pol := policy
				if !retry {
					pol.MaxAttempts = 1
				}
				start := e.Now()
				attempts, _, result, err := dev.OffloadRetry(p, task, app.CodeSize(), pl, pol)
				res.Requests++
				res.Attempts += attempts
				if err == nil && result.Err == "" {
					res.Succeeded++
					latencies = append(latencies, (e.Now() - start).Duration().Seconds())
				}
			}
		})
	}
	e.Run()
	if live := e.LiveProcs(); live != 0 {
		return nil, fmt.Errorf("experiments: %d procs deadlocked under plan %s", live, plan.Name)
	}

	if res.Requests > 0 {
		res.SuccessRate = float64(res.Succeeded) / float64(res.Requests)
	}
	res.Injected = inj.Injected()
	res.FaultStats = inj.Stats()
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	if len(latencies) > 0 {
		res.Mean = secs(metrics.Mean(latencies))
		res.P50 = secs(metrics.Percentile(latencies, 50))
		res.P95 = secs(metrics.Percentile(latencies, 95))
		res.P99 = secs(metrics.Percentile(latencies, 99))
		res.Max = secs(metrics.Percentile(latencies, 100))
	}
	return res, nil
}
