package experiments

import (
	"strings"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/trace"
	"rattrap/internal/workload"
)

// TestRendersContainEveryRow exercises the text renderers end to end on
// one shared run (they are the harness's user-visible output).
func TestRendersContainEveryRow(t *testing.T) {
	f3, err := RunFigure3(seed)
	if err != nil {
		t.Fatal(err)
	}
	f1 := &Figure1{PerWorkload: f3.PerWorkload, Order: f3.Order}
	f2 := &Figure2{PerWorkload: f3.PerWorkload, Order: f3.Order}

	out1 := f1.Render()
	for _, app := range f3.Order {
		if !strings.Contains(out1, "Figure 1("+app+")") {
			t.Errorf("figure 1 render missing %s", app)
		}
	}
	if !strings.Contains(out1, "FAIL") {
		t.Error("figure 1 render shows no offloading failures")
	}
	out2 := f2.Render()
	if !strings.Contains(out2, "CPU(%)") || !strings.Contains(out2, "read(MB/s)") {
		t.Error("figure 2 render missing columns")
	}
	out3 := f3.Render()
	if !strings.Contains(out3, "code frac") || !strings.Contains(out3, "vm-1") {
		t.Errorf("figure 3 render incomplete:\n%s", out3)
	}
}

func TestFigure10Render(t *testing.T) {
	f := &Figure10{
		Norm: map[string]map[string]map[core.Kind]float64{
			workload.NameChess: {
				"LAN WiFi": {core.KindRattrap: 0.15, core.KindRattrapWO: 0.38, core.KindVM: 0.52},
			},
		},
		Order:    []string{workload.NameChess},
		Profiles: []string{"LAN WiFi"},
		Kinds:    []core.Kind{core.KindRattrap, core.KindRattrapWO, core.KindVM},
	}
	out := f.Render()
	if !strings.Contains(out, "Local") || !strings.Contains(out, "0.150") {
		t.Fatalf("render:\n%s", out)
	}
	if adv := f.EnergyAdvantage(workload.NameChess, "LAN WiFi"); adv < 3.4 || adv > 3.5 {
		t.Fatalf("advantage = %v, want 0.52/0.15", adv)
	}
}

func TestObservation4Render(t *testing.T) {
	o, err := RunObservation4(seed)
	if err != nil {
		t.Fatal(err)
	}
	out := o.Render()
	for _, want := range []string{"771", "68.", "87."} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceWithReclamationDegradesVMMost(t *testing.T) {
	// The just-in-time ablation: with idle reclamation on, the VM cloud's
	// failure rate explodes while Rattrap stays moderate.
	run := func(idle bool) (*Figure11, error) {
		var mod func(*core.Config)
		if idle {
			mod = func(c *core.Config) { c.IdleTimeout = 2 * time.Minute }
		}
		return RunTraceOpts(trace.DefaultConfig(seed), mod)
	}
	warm, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FailureRate[core.KindVM] <= warm.FailureRate[core.KindVM] {
		t.Errorf("reclamation did not hurt the VM cloud: %.2f vs %.2f",
			cold.FailureRate[core.KindVM], warm.FailureRate[core.KindVM])
	}
	if cold.FailureRate[core.KindVM] < 2*cold.FailureRate[core.KindRattrap] {
		t.Errorf("VM cold-session failures (%.2f) should dwarf Rattrap's (%.2f)",
			cold.FailureRate[core.KindVM], cold.FailureRate[core.KindRattrap])
	}
}
