package experiments

import (
	"fmt"

	"rattrap/internal/core"
	"rattrap/internal/metrics"
	"rattrap/internal/netsim"
)

// Comparison holds the three-platform runs behind Figure 9 and Table II:
// for each workload, the same request inflow against Rattrap,
// Rattrap(W/O) and the VM-based cloud over LAN WiFi.
type Comparison struct {
	// Runs[app][kind] is that cell's run.
	Runs  map[string]map[core.Kind]*RunResult
	Order []string
	Kinds []core.Kind
}

// RunComparison executes the §VI-C experiment ("to model the user
// behavior, we use 5 Android devices running offloading workloads, and the
// same inflow of requests is used for both Rattrap and VM-based cloud").
// The workload × platform cells are independent simulations, so they run
// on the RunCells worker pool and merge in sweep order.
func RunComparison(seed int64) (*Comparison, error) {
	return RunComparisonShards(seed, 0)
}

// RunComparisonShards is RunComparison served through a cluster of the
// given shard count (0 = bare Platform). The shards=1 output is pinned
// byte-identical to shards=0 by TestComparisonOneShardCluster.
func RunComparisonShards(seed int64, shards int) (*Comparison, error) {
	c := &Comparison{
		Runs:  make(map[string]map[core.Kind]*RunResult),
		Order: workloadOrder(),
		Kinds: []core.Kind{core.KindRattrap, core.KindRattrapWO, core.KindVM},
	}
	type cell struct {
		app  string
		kind core.Kind
	}
	var cells []cell
	for _, app := range c.Order {
		c.Runs[app] = make(map[core.Kind]*RunResult)
		for _, kind := range c.Kinds {
			cells = append(cells, cell{app, kind})
		}
	}
	results := make([]*RunResult, len(cells))
	err := RunCells(len(cells), func(i int) error {
		cl := cells[i]
		cfg := DefaultRun(cl.kind, netsim.LANWiFi(), cl.app, seed)
		cfg.Shards = shards
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("comparison (%s, %v): %w", cl.app, cl.kind, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		c.Runs[cl.app][cl.kind] = results[i]
	}
	return c, nil
}

// PhaseMeans returns the mean phase seconds for one cell.
func (c *Comparison) PhaseMeans(app string, kind core.Kind) (transfer, prep, comp float64) {
	conn, t, p, e := c.Runs[app][kind].MeanPhases()
	_ = conn
	return t, p, e
}

// Figure9Tables builds "Average performance of offloading requests":
// per-workload phase means normalized to the VM platform's total.
func (c *Comparison) Figure9Tables() []*metrics.Table {
	var out []*metrics.Table
	for _, app := range c.Order {
		_, vt, vp, ve := c.Runs[app][core.KindVM].MeanPhases()
		vmTotal := vt + vp + ve
		tb := metrics.NewTable(fmt.Sprintf("Figure 9(%s) — normalized average request time (VM = 1.0)", app),
			"platform", "compute", "prep", "transfer", "total")
		for _, kind := range c.Kinds {
			_, t, p, e := c.Runs[app][kind].MeanPhases()
			tb.AddRow(kind.String(),
				metrics.F(e/vmTotal, 3), metrics.F(p/vmTotal, 3),
				metrics.F(t/vmTotal, 3), metrics.F((t+p+e)/vmTotal, 3))
		}
		out = append(out, tb)
	}
	return out
}

// Figure9Render formats the sub-tables.
func (c *Comparison) Figure9Render() string { return renderTables(c.Figure9Tables()) }

// PrepSpeedup returns mean VM runtime-preparation time divided by the
// platform's (the 4.14–4.71x and 16.29–16.98x numbers).
func (c *Comparison) PrepSpeedup(app string, kind core.Kind) float64 {
	_, _, vp, _ := c.Runs[app][core.KindVM].MeanPhases()
	_, _, p, _ := c.Runs[app][kind].MeanPhases()
	if p == 0 {
		return 0
	}
	return vp / p
}

// ComputeSpeedup returns mean VM computation time divided by the
// platform's (1.02–1.13x W/O, 1.05–1.40x Rattrap).
func (c *Comparison) ComputeSpeedup(app string, kind core.Kind) float64 {
	_, _, _, ve := c.Runs[app][core.KindVM].MeanPhases()
	_, _, _, e := c.Runs[app][kind].MeanPhases()
	if e == 0 {
		return 0
	}
	return ve / e
}

// TransferSpeedup returns mean VM data-transfer time divided by the
// platform's (1.17–2.04x for Rattrap; ≈1 for W/O).
func (c *Comparison) TransferSpeedup(app string, kind core.Kind) float64 {
	_, vt, _, _ := c.Runs[app][core.KindVM].MeanPhases()
	_, t, _, _ := c.Runs[app][kind].MeanPhases()
	if t == 0 {
		return 0
	}
	return vt / t
}

// TableIITables builds "Total number of data transmitted with different
// benchmarks": download/upload KB per workload per platform.
func (c *Comparison) TableIITables() []*metrics.Table {
	tb := metrics.NewTable("Table II — total migrated data (KB); paper: e.g. ChessGame upload 4788 / 14011 / 13301",
		"workload", "direction", "Rattrap", "W/O", "VM")
	for _, app := range c.Order {
		cell := func(kind core.Kind, up bool) string {
			tr := c.Runs[app][kind].DeviceTraffic
			if up {
				return metrics.F(float64(tr.Up())/1024, 0)
			}
			return metrics.F(float64(tr.Down)/1024, 0)
		}
		tb.AddRow(app, "download", cell(core.KindRattrap, false), cell(core.KindRattrapWO, false), cell(core.KindVM, false))
		tb.AddRow(app, "upload", cell(core.KindRattrap, true), cell(core.KindRattrapWO, true), cell(core.KindVM, true))
	}
	return []*metrics.Table{tb}
}

// TableIIRender formats Table II.
func (c *Comparison) TableIIRender() string { return renderTables(c.TableIITables()) }

// Upload returns one Table II upload cell in KB.
func (c *Comparison) Upload(app string, kind core.Kind) float64 {
	return float64(c.Runs[app][kind].DeviceTraffic.Up()) / 1024
}

// Figure10 reproduces "Average power consumption of offloading requests in
// various network scenarios": per-workload, per-scenario, per-platform
// mean device energy normalized to local execution.
type Figure10 struct {
	// Norm[app][profile][kind] = normalized energy (local = 1.0).
	Norm  map[string]map[string]map[core.Kind]float64
	Order []string
	// Profiles in the paper's presentation order: Local, LAN, WAN, 4G, 3G.
	Profiles []string
	Kinds    []core.Kind
}

// RunFigure10 executes the energy evaluation. The paper records request
// streams with Rattrap and replays them for the baselines; the engine's
// fixed seed achieves the same identical-inflow property.
func RunFigure10(seed int64) (*Figure10, error) {
	f := &Figure10{
		Norm:     make(map[string]map[string]map[core.Kind]float64),
		Order:    workloadOrder(),
		Profiles: []string{"LAN WiFi", "WAN WiFi", "4G", "3G"},
		Kinds:    []core.Kind{core.KindRattrap, core.KindRattrapWO, core.KindVM},
	}
	type cell struct {
		app, prof string
		kind      core.Kind
	}
	var cells []cell
	for _, app := range f.Order {
		f.Norm[app] = make(map[string]map[core.Kind]float64)
		for _, profName := range f.Profiles {
			f.Norm[app][profName] = make(map[core.Kind]float64)
			for _, kind := range f.Kinds {
				cells = append(cells, cell{app, profName, kind})
			}
		}
	}
	norms := make([]float64, len(cells))
	err := RunCells(len(cells), func(i int) error {
		cl := cells[i]
		prof, err := netsim.ProfileByName(cl.prof)
		if err != nil {
			return err
		}
		// The paper replays recorded request streams, long enough that
		// cold starts amortize; 20 requests per device keeps that
		// property while still including the cold phase.
		cfg := DefaultRun(cl.kind, prof, cl.app, seed)
		cfg.RequestsPerDevice = 20
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("figure 10 (%s, %s, %v): %w", cl.app, cl.prof, cl.kind, err)
		}
		norms[i] = r.MeanEnergyNormalized()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		f.Norm[cl.app][cl.prof][cl.kind] = norms[i]
	}
	return f, nil
}

// Tables builds the four sub-figures.
func (f *Figure10) Tables() []*metrics.Table {
	var out []*metrics.Table
	for _, app := range f.Order {
		tb := metrics.NewTable(fmt.Sprintf("Figure 10(%s) — normalized energy (local execution = 1.0)", app),
			"scenario", "Rattrap", "Rattrap(W/O)", "VM")
		tb.AddRow("Local", "1.000", "1.000", "1.000")
		for _, prof := range f.Profiles {
			row := []string{prof}
			for _, kind := range f.Kinds {
				row = append(row, metrics.F(f.Norm[app][prof][kind], 3))
			}
			tb.AddRow(row...)
		}
		out = append(out, tb)
	}
	return out
}

// Render formats the sub-figures.
func (f *Figure10) Render() string { return renderTables(f.Tables()) }

// EnergyAdvantage returns VM energy divided by Rattrap energy for a cell —
// the paper's "Rattrap outperforms VM by 1.37x with ChessGame".
func (f *Figure10) EnergyAdvantage(app, profile string) float64 {
	r := f.Norm[app][profile][core.KindRattrap]
	v := f.Norm[app][profile][core.KindVM]
	if r == 0 {
		return 0
	}
	return v / r
}

// WarehouseStats exposes the Rattrap run's warehouse totals for one
// workload (entries should be 1: code transferred "once and for all").
func (c *Comparison) WarehouseStats(app string) (entries, hits int) {
	r := c.Runs[app][core.KindRattrap]
	return r.WarehouseEntries, r.WarehouseHits
}
