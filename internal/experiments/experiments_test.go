package experiments

import (
	"strings"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/host"
	"rattrap/internal/metrics"
	"rattrap/internal/netsim"
	"rattrap/internal/workload"
)

const seed = 42

func TestTableIReproducesPaper(t *testing.T) {
	tab, err := RunTableI(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	vm, wo, cac := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	// Paper: 28.72 s / 6.80 s / 1.75 s.
	if vm.Setup < 25*time.Second || vm.Setup > 33*time.Second {
		t.Errorf("VM setup %v, want ≈28.72s", vm.Setup)
	}
	if wo.Setup < 5500*time.Millisecond || wo.Setup > 8*time.Second {
		t.Errorf("CAC(W/O) setup %v, want ≈6.80s", wo.Setup)
	}
	if cac.Setup < 1400*time.Millisecond || cac.Setup > 2100*time.Millisecond {
		t.Errorf("CAC setup %v, want ≈1.75s", cac.Setup)
	}
	// Paper: 512 / 128-limit / 96 MB and 1.1 GB / 1.02 GB / 7.1 MB.
	if vm.MemoryMB != 512 || cac.MemoryMB > 96 || cac.MemoryMB < 90 {
		t.Errorf("memory: vm=%d cac=%d", vm.MemoryMB, cac.MemoryMB)
	}
	if float64(cac.Disk) > 7.1*float64(host.MB) {
		t.Errorf("CAC disk = %d bytes, want <7.1MB", cac.Disk)
	}
	if sav := 1 - float64(cac.Disk)/float64(vm.Disk); sav < 0.79 {
		t.Errorf("disk saving %.2f, want ≥0.79", sav)
	}
	if !strings.Contains(tab.Render(), "Android VM") {
		t.Error("render missing VM row")
	}
}

func TestFigure1ColdStartFailures(t *testing.T) {
	f, err := RunFigure1(seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range f.Order {
		r := f.PerWorkload[app]
		if len(r.Records) != 20 {
			t.Fatalf("%s: %d records, want the first 20 requests", app, len(r.Records))
		}
		cold, warm, warmOK := 0, 0, 0
		for _, rec := range r.Records {
			if rec.Phases.RuntimePreparation > 20*time.Second {
				cold++
				if !rec.Failed() {
					t.Errorf("%s: cold request with ~30s prep did not fail (speedup %.2f)", app, rec.Speedup)
				}
			} else {
				warm++
				if !rec.Failed() {
					warmOK++
				}
			}
		}
		// Observation 1: each of the 5 VMs fails its first request.
		if cold != 5 {
			t.Errorf("%s: %d cold starts, want 5 (one per VM)", app, cold)
		}
		if warmOK < warm*3/4 {
			t.Errorf("%s: only %d/%d warm requests beat local execution", app, warmOK, warm)
		}
	}
}

func TestFigure2ServerLoadShape(t *testing.T) {
	f, err := RunFigure2(seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range f.Order {
		r := f.PerWorkload[app]
		if len(r.ServerCPU) < 30 {
			t.Fatalf("%s: horizon too short: %d s", app, len(r.ServerCPU))
		}
		// Observation 2: during VM boot (0-30 s) the server shows load in
		// every workload — both CPU and disk reads.
		bootCPU := metrics.Mean(r.ServerCPU[:30])
		bootRead := metrics.Mean(r.ServerIORead[:30])
		if bootCPU < 5 {
			t.Errorf("%s: boot-phase CPU %.1f%%, want visible load", app, bootCPU)
		}
		if bootRead < 5 {
			t.Errorf("%s: boot-phase disk read %.1f MB/s, want image streaming", app, bootRead)
		}
	}
	// I/O-heavy VirusScan shows more post-boot reading than Linpack.
	vs := f.PerWorkload[workload.NameVirusScan]
	lp := f.PerWorkload[workload.NameLinpack]
	vsRead := metrics.Sum(vs.ServerIORead[31:])
	lpRead := metrics.Sum(lp.ServerIORead[31:min(len(lp.ServerIORead), len(vs.ServerIORead))])
	if vsRead <= lpRead {
		t.Errorf("VirusScan post-boot reads (%.0f) not above Linpack (%.0f)", vsRead, lpRead)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFigure3CodeDominatesForPureCompute(t *testing.T) {
	f, err := RunFigure3(seed)
	if err != nil {
		t.Fatal(err)
	}
	// Observation 3: for workloads with no file transfer, mobile code is
	// more than 50% of migrated data; for file-heavy ones it is not.
	for _, app := range []string{workload.NameChess, workload.NameLinpack} {
		if frac := f.CodeFraction(app); frac <= 0.5 {
			t.Errorf("%s: code fraction %.2f, want >0.5", app, frac)
		}
	}
	for _, app := range []string{workload.NameOCR, workload.NameVirusScan} {
		if frac := f.CodeFraction(app); frac >= 0.5 {
			t.Errorf("%s: code fraction %.2f, want <0.5", app, frac)
		}
	}
	// Every VM received its own copy of the code.
	for _, app := range f.Order {
		for _, info := range f.PerWorkload[app].Runtimes {
			if info.Traffic.CodeUp == 0 {
				t.Errorf("%s: VM %s never received code", app, info.CID)
			}
		}
	}
}

func TestObservation4ReproducesPaper(t *testing.T) {
	o, err := RunObservation4(seed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 771 MB of 1.1 GB (68.4%) never accessed; /system 87.4%.
	if o.NeverAccessedBytes != 771*host.MB {
		t.Errorf("never accessed = %d MB, want exactly 771", o.NeverAccessedBytes/host.MB)
	}
	if o.NeverFraction < 0.67 || o.NeverFraction > 0.70 {
		t.Errorf("never fraction = %.3f, want ≈0.684", o.NeverFraction)
	}
	if o.SystemFraction < 0.86 || o.SystemFraction > 0.88 {
		t.Errorf("/system fraction = %.3f, want ≈0.874", o.SystemFraction)
	}
}

func TestComparisonReproducesFigure9AndTableII(t *testing.T) {
	c, err := RunComparison(seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range c.Order {
		// Runtime preparation: 4.14–4.71x (W/O), 16.29–16.98x (Rattrap).
		if sp := c.PrepSpeedup(app, core.KindRattrapWO); sp < 3.5 || sp > 5.5 {
			t.Errorf("%s: W/O prep speedup %.2f, paper 4.14-4.71", app, sp)
		}
		if sp := c.PrepSpeedup(app, core.KindRattrap); sp < 13 || sp > 21 {
			t.Errorf("%s: Rattrap prep speedup %.2f, paper 16.29-16.98", app, sp)
		}
		// Data transfer improves only with the code cache.
		if sp := c.TransferSpeedup(app, core.KindRattrapWO); sp < 0.85 || sp > 1.25 {
			t.Errorf("%s: W/O transfer speedup %.2f, want ≈1 (no code cache)", app, sp)
		}
	}
	// Computation execution: batch workloads 1.02–1.13x for W/O; Rattrap
	// up to 1.40x with VirusScan profiting most (in-memory offloading I/O).
	for _, app := range []string{workload.NameOCR, workload.NameVirusScan, workload.NameLinpack} {
		if sp := c.ComputeSpeedup(app, core.KindRattrapWO); sp < 1.0 || sp > 1.30 {
			t.Errorf("%s: W/O compute speedup %.2f, paper 1.02-1.13", app, sp)
		}
	}
	vsR := c.ComputeSpeedup(workload.NameVirusScan, core.KindRattrap)
	lpR := c.ComputeSpeedup(workload.NameLinpack, core.KindRattrap)
	if vsR < 1.10 || vsR > 1.65 {
		t.Errorf("VirusScan Rattrap compute speedup %.2f, paper ≈1.40", vsR)
	}
	if lpR >= vsR {
		t.Errorf("Linpack compute speedup (%.2f) should be smaller than VirusScan's (%.2f)", lpR, vsR)
	}
	// Transfer speedups with the code cache: 1.17–2.04x band (chess can
	// exceed it slightly since code dominates its migrated data).
	for _, app := range c.Order {
		sp := c.TransferSpeedup(app, core.KindRattrap)
		if sp < 1.05 || sp > 3.2 {
			t.Errorf("%s: Rattrap transfer speedup %.2f, want within the code-cache band", app, sp)
		}
	}
	// Table II: ChessGame uploads ≈ 4788 / ≈14011 / ≈13301 KB.
	chR := c.Upload(workload.NameChess, core.KindRattrap)
	chV := c.Upload(workload.NameChess, core.KindVM)
	if chR < 4200 || chR > 5400 {
		t.Errorf("ChessGame Rattrap upload %.0f KB, paper 4788", chR)
	}
	if chV < 12000 || chV > 15500 {
		t.Errorf("ChessGame VM upload %.0f KB, paper 13301", chV)
	}
	// Linpack: ≈169 vs ≈776 KB.
	lpRu := c.Upload(workload.NameLinpack, core.KindRattrap)
	lpV := c.Upload(workload.NameLinpack, core.KindVM)
	if lpRu < 140 || lpRu > 210 {
		t.Errorf("Linpack Rattrap upload %.0f KB, paper 169", lpRu)
	}
	if lpV < 650 || lpV > 900 {
		t.Errorf("Linpack VM upload %.0f KB, paper 776", lpV)
	}
	// "Once and for all": exactly one warehouse entry per app run.
	for _, app := range c.Order {
		if entries, _ := c.WarehouseStats(app); entries != 1 {
			t.Errorf("%s: %d warehouse entries, want 1", app, entries)
		}
	}
	if !strings.Contains(c.TableIIRender(), "upload") || !strings.Contains(c.Figure9Render(), "Rattrap(W/O)") {
		t.Error("render output incomplete")
	}
}

func TestEnergyOrderingOnWiFi(t *testing.T) {
	// One representative Figure 10 cell per claim, kept small for test
	// speed: chess on LAN, energy must order Rattrap < W/O < VM, all
	// cheaper than local.
	norm := make(map[core.Kind]float64)
	for _, kind := range []core.Kind{core.KindRattrap, core.KindRattrapWO, core.KindVM} {
		cfg := DefaultRun(kind, netsim.LANWiFi(), workload.NameChess, seed)
		cfg.RequestsPerDevice = 12
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		norm[kind] = r.MeanEnergyNormalized()
	}
	if !(norm[core.KindRattrap] < norm[core.KindRattrapWO] && norm[core.KindRattrapWO] < norm[core.KindVM]) {
		t.Fatalf("energy ordering violated: %+v", norm)
	}
	if norm[core.KindVM] >= 1 {
		t.Fatalf("VM offloading energy %.2f should still beat local on LAN over a long run", norm[core.KindVM])
	}
	if adv := norm[core.KindVM] / norm[core.KindRattrap]; adv < 1.2 {
		t.Fatalf("Rattrap energy advantage %.2fx, paper reports 1.37x for ChessGame", adv)
	}
}

func TestEnergyGapShrinksOnBadNetworks(t *testing.T) {
	// Paper: for OCR, the VM-vs-Rattrap gap narrows as the network
	// degrades; on 3G the decision engine sends file-heavy work local.
	gap := func(profile netsim.Profile) float64 {
		var r, v float64
		for _, kind := range []core.Kind{core.KindRattrap, core.KindVM} {
			cfg := DefaultRun(kind, profile, workload.NameOCR, seed)
			cfg.RequestsPerDevice = 8
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if kind == core.KindRattrap {
				r = res.MeanEnergyNormalized()
			} else {
				v = res.MeanEnergyNormalized()
			}
		}
		return v - r
	}
	lan := gap(netsim.LANWiFi())
	threeG := gap(netsim.ThreeG())
	if threeG >= lan {
		t.Fatalf("OCR energy gap on 3G (%.3f) not smaller than on LAN (%.3f)", threeG, lan)
	}
	if threeG != 0 {
		t.Fatalf("on 3G the decision engine should run OCR locally on all platforms (gap %.3f)", threeG)
	}
}

func TestFigure11ReproducesPaper(t *testing.T) {
	f, err := RunFigure11(seed)
	if err != nil {
		t.Fatal(err)
	}
	r, wo, vm := core.KindRattrap, core.KindRattrapWO, core.KindVM
	if f.Events == 0 || len(f.Speedups[r]) < 30 {
		t.Fatalf("trace too small: %d chess requests", len(f.Speedups[r]))
	}
	// Failure rates: 1.3% / 7.7% / 9.7% — ordering and magnitudes.
	if !(f.FailureRate[r] <= f.FailureRate[wo] && f.FailureRate[wo] <= f.FailureRate[vm]) {
		t.Errorf("failure ordering violated: %v / %v / %v", f.FailureRate[r], f.FailureRate[wo], f.FailureRate[vm])
	}
	if f.FailureRate[r] > 0.03 {
		t.Errorf("Rattrap failures %.1f%%, paper 1.3%%", f.FailureRate[r]*100)
	}
	if f.FailureRate[vm] < 0.03 || f.FailureRate[vm] > 0.15 {
		t.Errorf("VM failures %.1f%%, paper 9.7%%", f.FailureRate[vm]*100)
	}
	// Fraction above 3.0x: 54.0% / 50.8% / 11.5%. Rattrap and W/O close
	// together and far above VM.
	if f.Above3[r] < 0.40 || f.Above3[r] > 0.65 {
		t.Errorf("Rattrap >3x = %.1f%%, paper 54.0%%", f.Above3[r]*100)
	}
	if diff := f.Above3[r] - f.Above3[wo]; diff < -0.08 || diff > 0.12 {
		t.Errorf("Rattrap (%.2f) and W/O (%.2f) should be close", f.Above3[r], f.Above3[wo])
	}
	if f.Above3[vm] > f.Above3[r]-0.15 {
		t.Errorf("VM >3x = %.1f%%, want well below Rattrap's %.1f%%", f.Above3[vm]*100, f.Above3[r]*100)
	}
	if !strings.Contains(f.Render(), "failure rate") {
		t.Error("render incomplete")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	run := func() string {
		r, err := Run(DefaultRun(core.KindRattrap, netsim.LANWiFi(), workload.NameChess, 7))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, rec := range r.Records {
			b.WriteString(rec.Device)
			b.WriteString(rec.End.String())
			b.WriteString(metrics.F(rec.Speedup, 6))
		}
		return b.String()
	}
	if run() != run() {
		t.Fatal("identical seeds produced different runs")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := DefaultRun(core.KindRattrap, netsim.LANWiFi(), "NotAnApp", 1)
	if _, err := Run(bad); err == nil {
		t.Error("unknown app accepted")
	}
}
