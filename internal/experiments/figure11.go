package experiments

import (
	"fmt"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/metrics"
	"rattrap/internal/netsim"
	"rattrap/internal/sim"
	"rattrap/internal/trace"
	"rattrap/internal/workload"
)

// Figure11 reproduces "Rattrap improvements with real-world access
// traces": the same LiveLab-style trace replayed (open loop) against all
// three platforms, reduced to a CDF of ChessGame speedups plus the
// offloading-failure rates.
type Figure11 struct {
	// Speedups[kind] are the per-request ChessGame speedups.
	Speedups map[core.Kind][]float64
	// FailureRate[kind] is the fraction of ChessGame requests with
	// speedup below 1 (paper: 9.7% VM, 7.7% W/O, 1.3% Rattrap).
	FailureRate map[core.Kind]float64
	// Above3 is the fraction of requests with speedup over 3.0x
	// (paper: 11.5% / 50.8% / 54.0%).
	Above3 map[core.Kind]float64
	Kinds  []core.Kind
	Events int
}

// traceProfiles maps trace devices to network scenarios: real users sit on
// a mix of WiFi and cellular, which is what spreads the CDF.
func traceProfiles() []netsim.Profile {
	return []netsim.Profile{
		netsim.LANWiFi(), netsim.WANWiFi(), netsim.FourG(), netsim.WANWiFi(), netsim.FourG(),
	}
}

// RunFigure11 replays the default LiveLab-style trace on each platform.
func RunFigure11(seed int64) (*Figure11, error) {
	return RunTrace(trace.DefaultConfig(seed))
}

// RunTrace replays an arbitrary trace configuration on each platform
// (cmd/rattrap-trace exposes this for custom scales).
func RunTrace(tcfg trace.Config) (*Figure11, error) {
	return RunTraceOpts(tcfg, nil)
}

// RunTraceOpts is RunTrace with a platform-config hook (e.g. enabling the
// Monitor & Scheduler's idle reclamation to study just-in-time
// provisioning). mod may be called from concurrent replays, one per
// platform; it receives a per-replay Config copy and must not mutate
// shared state.
func RunTraceOpts(tcfg trace.Config, mod func(*core.Config)) (*Figure11, error) {
	events, err := trace.Generate(tcfg)
	if err != nil {
		return nil, err
	}
	seed := tcfg.Seed
	f := &Figure11{
		Speedups:    make(map[core.Kind][]float64),
		FailureRate: make(map[core.Kind]float64),
		Above3:      make(map[core.Kind]float64),
		Kinds:       []core.Kind{core.KindRattrap, core.KindRattrapWO, core.KindVM},
		Events:      len(events),
	}
	// One replay per platform; each builds its own engine and devices, so
	// the three run concurrently on the RunCells pool (events are shared
	// read-only input).
	perKind := make([][]float64, len(f.Kinds))
	err = RunCells(len(f.Kinds), func(i int) error {
		speedups, err := replay(seed, f.Kinds[i], events, mod)
		if err != nil {
			return fmt.Errorf("figure 11 (%v): %w", f.Kinds[i], err)
		}
		perKind[i] = speedups
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, kind := range f.Kinds {
		speedups := perKind[i]
		f.Speedups[kind] = speedups
		cdf := metrics.NewCDF(speedups)
		f.FailureRate[kind] = cdf.FractionBelow(1.0)
		f.Above3[kind] = cdf.FractionAbove(3.0)
	}
	return f, nil
}

// replay runs the trace open-loop against one platform and returns the
// ChessGame speedups. "For fair comparison, we use a separate experiment
// to obtain the local execution time for calculating speedup" — local
// times come from the reference registry, not the loaded server.
func replay(seed int64, kind core.Kind, events []trace.Event, mod func(*core.Config)) ([]float64, error) {
	e := sim.NewEngine(seed)
	cfg := core.DefaultConfig(kind)
	if mod != nil {
		mod(&cfg)
	}
	pl := core.New(e, cfg)
	profiles := traceProfiles()
	refReg := workload.NewRegistry()

	devices := make([]*device.Device, len(profiles))
	for i := range devices {
		d, err := device.New(e, fmt.Sprintf("phone-%d", i+1), profiles[i%len(profiles)])
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}

	var speedups []float64
	var runErr error
	for _, ev := range events {
		ev := ev
		dev := devices[ev.Device%len(devices)]
		e.At(sim.Time(ev.At), func() {
			e.Spawn("req", func(p *sim.Proc) {
				app, err := workload.ByName(ev.App)
				if err != nil {
					runErr = err
					return
				}
				task := dev.NewTask(app)
				m, err := refReg.Execute(task)
				if err != nil {
					runErr = err
					return
				}
				local := localTime(m)
				offloaded, ph, _, err := dev.MaybeOffload(p, task, app.CodeSize(), pl)
				if ev.App != workload.NameChess || !offloaded {
					return // the paper presents the ChessGame CDF
				}
				if err != nil {
					speedups = append(speedups, 0) // hard failure
					return
				}
				speedups = append(speedups, float64(local)/float64(ph.Response()))
			})
		})
	}
	e.Run()
	if runErr != nil {
		return nil, runErr
	}
	return speedups, nil
}

// Tables builds the CDF and the headline fractions.
func (f *Figure11) Tables() []*metrics.Table {
	tb := metrics.NewTable("Figure 11 — trace-based simulation, ChessGame speedup CDF",
		"speedup", "Rattrap", "Rattrap(W/O)", "VM")
	for _, x := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5} {
		row := []string{metrics.F(x, 1)}
		for _, kind := range f.Kinds {
			row = append(row, metrics.F(metrics.NewCDF(f.Speedups[kind]).At(x), 3))
		}
		tb.AddRow(row...)
	}
	sum := metrics.NewTable("Figure 11 — summary (paper: failures 1.3%/7.7%/9.7%; >3.0x 54.0%/50.8%/11.5%)",
		"platform", "requests", "failure rate", ">3.0x")
	for _, kind := range f.Kinds {
		sum.AddRow(kind.String(), fmt.Sprintf("%d", len(f.Speedups[kind])),
			metrics.F(f.FailureRate[kind]*100, 1)+"%",
			metrics.F(f.Above3[kind]*100, 1)+"%")
	}
	return []*metrics.Table{tb, sum}
}

// Render formats the CDF and summary.
func (f *Figure11) Render() string { return renderTables(f.Tables()) }
