package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rattrap/internal/core"
	"rattrap/internal/device"
	"rattrap/internal/faults"
	"rattrap/internal/netsim"
	"rattrap/internal/obs"
	"rattrap/internal/workload"
)

// goldenRun serializes a run — every record field, every span stage
// record in order, and the final registry counters — into one string.
// Two runs with the same seed must produce identical bytes.
func goldenRun(t *testing.T, seed int64) string {
	t.Helper()
	return goldenRunShards(t, seed, 0)
}

// goldenRunShards is goldenRun served through cfg.Shards (0 = bare
// Platform). TestOneShardClusterGolden pins shards=1 byte-identical to
// shards=0.
func goldenRunShards(t *testing.T, seed int64, shards int) string {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := DefaultRun(core.KindRattrap, netsim.LANWiFi(), workload.NameLinpack, seed)
	cfg.Spans = true
	cfg.Obs = reg
	cfg.Shards = shards
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, rec := range res.Records {
		fmt.Fprintf(&b, "%s/%s #%d start=%d end=%d ph=%+v off=%v err=%q energy=%.9f\n",
			rec.Device, rec.App, rec.Index, rec.Start, rec.End, rec.Phases,
			rec.Offloaded, rec.Err, rec.EnergyJ)
		for _, sr := range rec.Span.Stages() {
			fmt.Fprintf(&b, "  %s %d\n", sr.Stage, sr.Dur.Nanoseconds())
		}
	}
	snap := reg.Snapshot()
	fmt.Fprintf(&b, "counters=%v gauges=%v\n", snap.Counters, snap.Gauges)
	for _, name := range []string{
		"stage." + obs.StageQueueWait, "stage." + obs.StageBoot,
		"stage." + obs.StageCodeStage, "stage." + obs.StageWarehouseLoad,
		"stage." + obs.StageRun,
	} {
		h := snap.Histograms[name]
		// Stripe assignment in sharded histograms is random, but the merged
		// aggregates must still be deterministic.
		fmt.Fprintf(&b, "hist %s count=%d mean=%d max=%d\n", name, h.Count, h.MeanNs, h.MaxNs)
	}
	fmt.Fprintf(&b, "traffic=%+v warehouse=%d/%d\n", res.DeviceTraffic, res.WarehouseEntries, res.WarehouseHits)
	return b.String()
}

// TestRunDeterministicWithSpans: bit-identical output for the same seed,
// spans and registry included; a different seed must differ (the test
// would otherwise pass on constant output).
func TestRunDeterministicWithSpans(t *testing.T) {
	a := goldenRun(t, 42)
	b := goldenRun(t, 42)
	if a != b {
		t.Fatalf("two runs with seed 42 differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if c := goldenRun(t, 43); c == a {
		t.Fatal("seed 43 reproduced seed 42's output — golden serialization is not sensitive")
	}
}

// TestRunSpansReconcile: per request, the span's top-level stages must sum
// to exactly the phase total, and sub-stages must not exceed their parent.
func TestRunSpansReconcile(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.LANWiFi(), workload.NameLinpack, 7)
	cfg.Spans = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, rec := range res.Records {
		if !rec.Offloaded || rec.Err != "" {
			continue
		}
		if rec.Span == nil {
			t.Fatalf("%s #%d: offloaded without a span", rec.Device, rec.Index)
		}
		checked++
		if got, want := rec.Span.TopLevelTotal(), rec.Phases.Response(); got != want {
			t.Errorf("%s #%d: stage sum %v != phase total %v", rec.Device, rec.Index, got, want)
		}
		agg := rec.Span.ByStage()
		if got, want := agg[obs.StageConnect], rec.Phases.NetworkConnection; got != want {
			t.Errorf("%s #%d: connect %v != %v", rec.Device, rec.Index, got, want)
		}
		if got, want := agg[obs.StageTransfer], rec.Phases.DataTransfer; got != want {
			t.Errorf("%s #%d: transfer %v != %v", rec.Device, rec.Index, got, want)
		}
		if got, want := agg[obs.StagePrepare], rec.Phases.RuntimePreparation; got != want {
			t.Errorf("%s #%d: prepare %v != %v", rec.Device, rec.Index, got, want)
		}
		if got, want := agg[obs.StageExecute], rec.Phases.ComputationExecution; got != want {
			t.Errorf("%s #%d: execute %v != %v", rec.Device, rec.Index, got, want)
		}
		// Sub-stages nest inside their parent window.
		if sub := agg[obs.StageQueueWait] + agg[obs.StageBoot] + agg[obs.StageCodeStage]; sub > agg[obs.StagePrepare] {
			t.Errorf("%s #%d: prepare sub-stages %v exceed prepare %v", rec.Device, rec.Index, sub, agg[obs.StagePrepare])
		}
		if sub := agg[obs.StageWarehouseLoad] + agg[obs.StageRun]; sub > agg[obs.StageExecute] {
			t.Errorf("%s #%d: execute sub-stages %v exceed execute %v", rec.Device, rec.Index, sub, agg[obs.StageExecute])
		}
	}
	if checked == 0 {
		t.Fatal("no successful offloaded records to check")
	}
}

// TestRunSpansDisabledByDefault: without cfg.Spans the records carry no
// spans (and no span allocation happened on the hot path).
func TestRunSpansDisabledByDefault(t *testing.T) {
	res, err := Run(DefaultRun(core.KindRattrap, netsim.LANWiFi(), workload.NameLinpack, 42))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Span != nil {
			t.Fatalf("%s #%d: span present with Spans=false", rec.Device, rec.Index)
		}
	}
}

// TestRunFaultsDeterministic: the fault-injected run — where retries,
// backoff jitter, and injected failures all draw randomness — must also be
// bit-identical per seed, plan by plan.
func TestRunFaultsDeterministic(t *testing.T) {
	cfg := DefaultRun(core.KindRattrap, netsim.WANWiFi(), workload.NameLinpack, 42)
	cfg.RequestsPerDevice = 2 // keep the sweep fast; every plan still injects
	for _, plan := range faults.StandardPlans(42) {
		a, err := RunFaults(cfg, plan, device.RetryPolicy{}, true)
		if err != nil {
			t.Fatalf("plan %s: %v", plan.Name, err)
		}
		b, err := RunFaults(cfg, plan, device.RetryPolicy{}, true)
		if err != nil {
			t.Fatalf("plan %s (second): %v", plan.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plan %s: two runs differ:\n%+v\n%+v", plan.Name, a, b)
		}
	}
}
