// Package binder implements the semantics of Android's Binder IPC: a
// service manager (context manager), per-process handle tables, and
// synchronous transactions. One Context corresponds to one Binder device
// instance; with device namespaces (package kernel), every Cloud Android
// Container gets its own Context, so services registered inside one
// container are invisible to every other — the isolation property the
// paper gets from the Cells device-namespace framework.
//
// The package is pure logic (no simulated time): callers account for
// transaction CPU/copy costs. That keeps it independently testable and
// reusable from both the simulated and real-time paths.
package binder

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by Binder operations.
var (
	ErrNoService     = errors.New("binder: no such service")
	ErrDuplicate     = errors.New("binder: service already registered")
	ErrBadHandle     = errors.New("binder: bad handle")
	ErrDeadBinder    = errors.New("binder: dead binder")
	ErrEmptyName     = errors.New("binder: empty service name")
	ErrNilTransactFn = errors.New("binder: nil transaction handler")
)

// TxnHandler serves incoming transactions: code selects the method, data is
// the marshalled parcel; it returns the reply parcel.
type TxnHandler func(code uint32, data []byte) ([]byte, error)

// Service is a registered Binder node.
type Service struct {
	name    string
	handler TxnHandler
	dead    bool
	deathFn []func()
}

// Name returns the service's registered name.
func (s *Service) Name() string { return s.name }

// Stats records Binder activity for a context.
type Stats struct {
	Transactions int
	BytesIn      int64
	BytesOut     int64
	Lookups      int
}

// Context is one Binder device instance: the service-manager registry plus
// a handle table.
type Context struct {
	services map[string]*Service
	handles  map[uint32]*Service
	next     uint32
	stats    Stats
}

// NewContext returns an empty Binder context (as created when the binder
// module initializes a device namespace).
func NewContext() *Context {
	return &Context{services: make(map[string]*Service), handles: make(map[uint32]*Service)}
}

// Register adds a named service, as servicemanager.addService would.
func (c *Context) Register(name string, h TxnHandler) (*Service, error) {
	if name == "" {
		return nil, ErrEmptyName
	}
	if h == nil {
		return nil, ErrNilTransactFn
	}
	if _, ok := c.services[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	s := &Service{name: name, handler: h}
	c.services[name] = s
	return s, nil
}

// Unregister removes a service and marks it dead; pending handles to it
// start returning ErrDeadBinder and death recipients fire.
func (c *Context) Unregister(name string) error {
	s, ok := c.services[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoService, name)
	}
	delete(c.services, name)
	s.dead = true
	for _, fn := range s.deathFn {
		fn()
	}
	s.deathFn = nil
	return nil
}

// Lookup resolves a service name to a handle (servicemanager.getService).
func (c *Context) Lookup(name string) (uint32, error) {
	c.stats.Lookups++
	s, ok := c.services[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoService, name)
	}
	// Reuse an existing handle for the same service if present.
	for h, svc := range c.handles {
		if svc == s {
			return h, nil
		}
	}
	c.next++
	c.handles[c.next] = s
	return c.next, nil
}

// Transact performs a synchronous transaction against a handle.
func (c *Context) Transact(handle uint32, code uint32, data []byte) ([]byte, error) {
	s, ok := c.handles[handle]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, handle)
	}
	if s.dead {
		return nil, fmt.Errorf("%w: %s", ErrDeadBinder, s.name)
	}
	c.stats.Transactions++
	c.stats.BytesIn += int64(len(data))
	reply, err := s.handler(code, data)
	c.stats.BytesOut += int64(len(reply))
	return reply, err
}

// Call is Lookup+Transact in one step, the common client pattern.
func (c *Context) Call(service string, code uint32, data []byte) ([]byte, error) {
	h, err := c.Lookup(service)
	if err != nil {
		return nil, err
	}
	return c.Transact(h, code, data)
}

// LinkToDeath registers fn to run when the named service dies.
func (c *Context) LinkToDeath(name string, fn func()) error {
	s, ok := c.services[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoService, name)
	}
	s.deathFn = append(s.deathFn, fn)
	return nil
}

// Services lists registered service names, sorted.
func (c *Context) Services() []string {
	out := make([]string, 0, len(c.services))
	for n := range c.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns accumulated activity counters.
func (c *Context) Stats() Stats { return c.stats }
