package binder

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func echo(code uint32, data []byte) ([]byte, error) { return data, nil }

func TestRegisterLookupTransact(t *testing.T) {
	c := NewContext()
	if _, err := c.Register("activity", echo); err != nil {
		t.Fatal(err)
	}
	h, err := c.Lookup("activity")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Transact(h, 1, []byte("ping"))
	if err != nil || string(reply) != "ping" {
		t.Fatalf("transact = %q, %v", reply, err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	c := NewContext()
	c.Register("svc", echo)
	if _, err := c.Register("svc", echo); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewContext()
	if _, err := c.Register("", echo); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("err = %v, want ErrEmptyName", err)
	}
	if _, err := c.Register("x", nil); !errors.Is(err, ErrNilTransactFn) {
		t.Fatalf("err = %v, want ErrNilTransactFn", err)
	}
}

func TestLookupMissing(t *testing.T) {
	c := NewContext()
	if _, err := c.Lookup("ghost"); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want ErrNoService", err)
	}
}

func TestBadHandle(t *testing.T) {
	c := NewContext()
	if _, err := c.Transact(99, 0, nil); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
}

func TestHandleReuse(t *testing.T) {
	c := NewContext()
	c.Register("svc", echo)
	h1, _ := c.Lookup("svc")
	h2, _ := c.Lookup("svc")
	if h1 != h2 {
		t.Fatalf("same service got different handles: %d vs %d", h1, h2)
	}
}

func TestDeadBinderAndDeathRecipient(t *testing.T) {
	c := NewContext()
	c.Register("svc", echo)
	h, _ := c.Lookup("svc")
	died := false
	if err := c.LinkToDeath("svc", func() { died = true }); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("svc"); err != nil {
		t.Fatal(err)
	}
	if !died {
		t.Fatal("death recipient did not fire")
	}
	if _, err := c.Transact(h, 0, nil); !errors.Is(err, ErrDeadBinder) {
		t.Fatalf("err = %v, want ErrDeadBinder", err)
	}
	// The name is free for re-registration.
	if _, err := c.Register("svc", echo); err != nil {
		t.Fatal(err)
	}
}

func TestUnregisterMissing(t *testing.T) {
	c := NewContext()
	if err := c.Unregister("ghost"); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want ErrNoService", err)
	}
}

func TestCall(t *testing.T) {
	c := NewContext()
	c.Register("math", func(code uint32, data []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("code=%d len=%d", code, len(data))), nil
	})
	reply, err := c.Call("math", 7, []byte("abc"))
	if err != nil || string(reply) != "code=7 len=3" {
		t.Fatalf("call = %q, %v", reply, err)
	}
}

func TestContextIsolation(t *testing.T) {
	// Two contexts (= two containers' device namespaces) do not see each
	// other's services.
	a, b := NewContext(), NewContext()
	a.Register("offloadcontroller", echo)
	if _, err := b.Lookup("offloadcontroller"); !errors.Is(err, ErrNoService) {
		t.Fatalf("context b sees context a's service: %v", err)
	}
}

func TestStats(t *testing.T) {
	c := NewContext()
	c.Register("svc", func(code uint32, data []byte) ([]byte, error) {
		return []byte("abcdef"), nil
	})
	c.Call("svc", 0, []byte("abc"))
	c.Call("svc", 0, []byte("de"))
	s := c.Stats()
	if s.Transactions != 2 || s.BytesIn != 5 || s.BytesOut != 12 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestServicesSorted(t *testing.T) {
	c := NewContext()
	for _, n := range []string{"zygote", "activity", "package"} {
		c.Register(n, echo)
	}
	got := c.Services()
	want := []string{"activity", "package", "zygote"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("services = %v, want %v", got, want)
		}
	}
}

// Property: any registered service can be looked up and transacted with,
// and payloads round-trip through an echo handler unchanged.
func TestPropertyEchoRoundTrip(t *testing.T) {
	f := func(name string, payload []byte) bool {
		if name == "" {
			return true
		}
		c := NewContext()
		if _, err := c.Register(name, echo); err != nil {
			return false
		}
		reply, err := c.Call(name, 0, payload)
		if err != nil {
			return false
		}
		if len(reply) != len(payload) {
			return false
		}
		for i := range reply {
			if reply[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
