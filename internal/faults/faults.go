// Package faults provides deterministic, seed-driven fault injection for
// the simulated testbed. A Plan is a named set of rules — drop, stall,
// disconnect, corrupt — matched against operation sites (network
// transfers, unionfs writes, container boots); an Injector instantiates
// the plan and is wired into the model through the small function hooks
// each package exposes (netsim.Link.SetFault, unionfs.Mount.SetFault,
// core.Platform.SetBootFault).
//
// Determinism: an Injector draws all randomness from its own source,
// seeded by the plan. Because the discrete-event engine dispatches one
// event at a time, the sequence of Apply calls — and therefore every
// fault decision — is identical across runs with the same seed, and a
// fault plan produces bit-identical virtual-time results.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

// Kind classifies a fault.
type Kind int

// The four fault kinds of the plan vocabulary.
const (
	// Drop loses an in-flight operation: the transfer is charged partial
	// airtime and the caller sees ErrDropped.
	Drop Kind = iota
	// Stall delays the operation without failing it (a radio fade, a
	// saturated disk); the caller just observes the extra latency.
	Stall
	// Disconnect severs the device's path mid-operation: the caller sees
	// ErrDisconnected and must reconnect before retrying.
	Disconnect
	// Corrupt delivers the operation damaged; the caller sees ErrCorrupt
	// and must resend the payload.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case Disconnect:
		return "disconnect"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Error is a fault surfaced to model code. It is transient by
// construction: every fault models a condition a retry can outlive.
type Error struct {
	Kind   Kind
	Site   string
	Target string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: %s at %s (%s)", e.Kind, e.Site, e.Target)
}

// IsTransient reports whether err (anywhere in its chain) is an injected
// fault — the class of errors clients should retry with backoff.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Well-known operation sites. Rules match sites by prefix, so "net."
// covers all three network sites.
const (
	SiteConnect  = "net.connect"
	SiteUpload   = "net.upload"
	SiteDownload = "net.download"
	SiteFSWrite  = "fs.write"
	SiteBoot     = "boot"
	SiteExec     = "exec"
	SiteTeardown = "teardown"
)

// Rule injects one fault kind at matching operations. A rule fires either
// deterministically (Every: each Nth matching operation) or
// probabilistically (P per operation, drawn from the plan's seeded
// source). Exactly one of Every/P should be set.
type Rule struct {
	// Site is a prefix match on the operation site ("net." matches every
	// network operation; "" matches everything).
	Site string
	// Target, when non-empty, is a substring match on the operation
	// target (device name, path, or runtime ID).
	Target string
	// Kind is the fault to inject.
	Kind Kind
	// Every fires the rule on each Nth matching operation (1-based: the
	// Nth, 2Nth, ... matches fire). 0 means use P instead.
	Every int
	// P is the per-operation firing probability when Every is 0.
	P float64
	// After skips the first N matching operations entirely.
	After int
	// MaxHits stops the rule after it fired this many times (0 = no cap).
	MaxHits int
	// Stall is the injected delay for Kind == Stall.
	Stall time.Duration
}

func (r Rule) matches(site, target string) bool {
	if !strings.HasPrefix(site, r.Site) {
		return false
	}
	return r.Target == "" || strings.Contains(target, r.Target)
}

// Plan is a named, seeded set of fault rules.
type Plan struct {
	Name  string
	Seed  int64
	Rules []Rule
}

// Healthy is the empty plan: no faults.
func Healthy() Plan { return Plan{Name: "healthy"} }

// StandardPlans is the fault suite the bench harness sweeps: one plan
// per failure mode the robustness layer defends against. All plans share
// the given seed so a fixed-seed sweep is bit-identical across runs.
func StandardPlans(seed int64) []Plan {
	return []Plan{
		{Name: "drop-uplink", Seed: seed, Rules: []Rule{
			{Site: SiteUpload, Kind: Drop, Every: 7},
		}},
		{Name: "flaky-connect", Seed: seed, Rules: []Rule{
			{Site: SiteConnect, Kind: Disconnect, P: 0.2},
		}},
		{Name: "stalled-device", Seed: seed, Rules: []Rule{
			{Site: SiteDownload, Kind: Stall, Every: 4, Stall: 400 * time.Millisecond},
			{Site: SiteDownload, Kind: Drop, Every: 9},
		}},
		{Name: "flaky-boot", Seed: seed, Rules: []Rule{
			{Site: SiteBoot, Kind: Drop, Every: 2, MaxHits: 3},
		}},
		{Name: "slow-fs", Seed: seed, Rules: []Rule{
			{Site: SiteFSWrite, Kind: Stall, Every: 5, Stall: 150 * time.Millisecond},
		}},
	}
}

// Injector evaluates a plan. It is not safe for concurrent use; in the
// simulated testbed the engine serializes all model code, which is
// exactly what keeps decisions deterministic.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	seen  []int // matching-op count per rule
	fired []int // fire count per rule
	stats map[string]int
}

// New instantiates a plan.
func New(plan Plan) *Injector {
	return &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		seen:  make([]int, len(plan.Rules)),
		fired: make([]int, len(plan.Rules)),
		stats: make(map[string]int),
	}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Apply evaluates the plan at one operation. Stalls sleep p in virtual
// time and return nil; drop/disconnect/corrupt return a typed *Error
// (after charging a stall, if a stall rule also fired). The first
// erroring rule wins; rules are evaluated in plan order.
func (in *Injector) Apply(p *sim.Proc, site, target string, size host.Bytes) error {
	var failure *Error
	for i, r := range in.plan.Rules {
		if !r.matches(site, target) {
			continue
		}
		in.seen[i]++
		if in.seen[i] <= r.After {
			continue
		}
		if r.MaxHits > 0 && in.fired[i] >= r.MaxHits {
			continue
		}
		fire := false
		if r.Every > 0 {
			fire = (in.seen[i]-r.After)%r.Every == 0
		} else if r.P > 0 {
			fire = in.rng.Float64() < r.P
		}
		if !fire {
			continue
		}
		in.fired[i]++
		in.stats[site+":"+r.Kind.String()]++
		if r.Kind == Stall {
			if r.Stall > 0 && p != nil {
				p.Sleep(r.Stall)
			}
			continue
		}
		if failure == nil {
			failure = &Error{Kind: r.Kind, Site: site, Target: target}
		}
	}
	if failure != nil {
		return failure
	}
	return nil
}

// Stats returns fired-fault counts keyed "site:kind".
func (in *Injector) Stats() map[string]int {
	out := make(map[string]int, len(in.stats))
	for k, v := range in.stats {
		out[k] = v
	}
	return out
}

// Injected reports the total number of injected faults (stalls included).
func (in *Injector) Injected() int {
	n := 0
	for _, v := range in.stats {
		n += v
	}
	return n
}

// NetHook adapts the injector to netsim.Link.SetFault for one device.
func (in *Injector) NetHook(target string) func(p *sim.Proc, op string, size host.Bytes) error {
	return func(p *sim.Proc, op string, size host.Bytes) error {
		return in.Apply(p, op, target, size)
	}
}

// FSHook adapts the injector to unionfs.Mount.SetFault.
func (in *Injector) FSHook() func(p *sim.Proc, path string, size host.Bytes) error {
	return func(p *sim.Proc, path string, size host.Bytes) error {
		return in.Apply(p, SiteFSWrite, path, size)
	}
}

// BootHook adapts the injector to core.Platform.SetBootFault.
func (in *Injector) BootHook() func(p *sim.Proc, id string) error {
	return func(p *sim.Proc, id string) error {
		return in.Apply(p, SiteBoot, id, 0)
	}
}

// TeardownHook adapts the injector to core.Platform.SetTeardownFault.
func (in *Injector) TeardownHook() func(p *sim.Proc, id string) error {
	return func(p *sim.Proc, id string) error {
		return in.Apply(p, SiteTeardown, id, 0)
	}
}

// ExecHook adapts the injector to core.Platform.SetExecFault. The rule
// target matches the runtime ID, so a plan can fail every execution on
// one specific runtime (the health tracker's cordon scenario).
func (in *Injector) ExecHook() func(p *sim.Proc, id, aid string) error {
	return func(p *sim.Proc, id, aid string) error {
		return in.Apply(p, SiteExec, id, 0)
	}
}
