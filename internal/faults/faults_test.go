package faults

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rattrap/internal/sim"
)

func TestEveryRuleFiresDeterministically(t *testing.T) {
	in := New(Plan{Name: "t", Rules: []Rule{
		{Site: SiteUpload, Kind: Drop, Every: 3},
	}})
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, in.Apply(nil, SiteUpload, "phone-1", 100) != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fire pattern = %v, want %v", got, want)
	}
}

func TestAfterAndMaxHits(t *testing.T) {
	in := New(Plan{Rules: []Rule{
		{Site: SiteBoot, Kind: Drop, Every: 1, After: 2, MaxHits: 2},
	}})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, in.Apply(nil, SiteBoot, "cac-1", 0) != nil)
	}
	want := []bool{false, false, true, true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fire pattern = %v, want %v", got, want)
	}
}

func TestSitePrefixAndTargetMatch(t *testing.T) {
	in := New(Plan{Rules: []Rule{
		{Site: "net.", Target: "phone-2", Kind: Disconnect, Every: 1},
	}})
	if err := in.Apply(nil, SiteDownload, "phone-1", 10); err != nil {
		t.Fatalf("rule fired for wrong target: %v", err)
	}
	if err := in.Apply(nil, SiteFSWrite, "phone-2", 10); err != nil {
		t.Fatalf("rule fired for wrong site: %v", err)
	}
	err := in.Apply(nil, SiteConnect, "phone-2", 10)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Disconnect {
		t.Fatalf("err = %v, want disconnect fault", err)
	}
	if !IsTransient(err) {
		t.Fatal("fault errors must be transient")
	}
	if IsTransient(errors.New("boring")) {
		t.Fatal("plain errors must not be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("wrapped fault errors must stay transient")
	}
}

func TestStallSleepsVirtualTime(t *testing.T) {
	e := sim.NewEngine(1)
	in := New(Plan{Rules: []Rule{
		{Site: SiteUpload, Kind: Stall, Every: 2, Stall: 700 * time.Millisecond},
	}})
	var first, second sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		if err := in.Apply(p, SiteUpload, "d", 1); err != nil {
			t.Errorf("stall returned error: %v", err)
		}
		first = e.Now()
		if err := in.Apply(p, SiteUpload, "d", 1); err != nil {
			t.Errorf("stall returned error: %v", err)
		}
		second = e.Now()
	})
	e.Run()
	if first != 0 {
		t.Fatalf("first op stalled at %v, want no stall", first)
	}
	if second != sim.Time(700*time.Millisecond) {
		t.Fatalf("second op ended at %v, want 700ms stall", second)
	}
}

func TestProbabilisticRulesAreSeedStable(t *testing.T) {
	run := func() []bool {
		in := New(Plan{Seed: 99, Rules: []Rule{
			{Site: SiteUpload, Kind: Drop, P: 0.3},
		}})
		var got []bool
		for i := 0; i < 50; i++ {
			got = append(got, in.Apply(nil, SiteUpload, "d", 1) != nil)
		}
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("P=0.3 fired %d/%d times: degenerate", fired, len(a))
	}
}

func TestStatsAccounting(t *testing.T) {
	in := New(Plan{Rules: []Rule{
		{Site: SiteUpload, Kind: Drop, Every: 2},
		{Site: SiteUpload, Kind: Stall, Every: 3},
	}})
	for i := 0; i < 6; i++ {
		in.Apply(nil, SiteUpload, "d", 1)
	}
	st := in.Stats()
	if st[SiteUpload+":drop"] != 3 || st[SiteUpload+":stall"] != 2 {
		t.Fatalf("stats = %v, want 3 drops and 2 stalls", st)
	}
	if in.Injected() != 5 {
		t.Fatalf("Injected() = %d, want 5", in.Injected())
	}
}
