package power

import (
	"testing"
	"time"

	"rattrap/internal/netsim"
	"rattrap/internal/offload"
)

func TestLocalEnergy(t *testing.T) {
	if got := LocalEnergy(10 * time.Second); got != 9.0 {
		t.Fatalf("local energy = %v J, want 9.0 (0.9 W × 10 s)", got)
	}
}

func TestRadioForAllProfiles(t *testing.T) {
	for _, prof := range netsim.Profiles() {
		r, err := RadioFor(prof.Name)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if r.TxW <= 0 || r.RxW <= 0 {
			t.Fatalf("%s: non-positive radio powers %+v", prof.Name, r)
		}
	}
	if _, err := RadioFor("carrier-pigeon"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestCellularCostlierThanWiFi(t *testing.T) {
	wifi, _ := RadioFor(netsim.LANWiFi().Name)
	threeG, _ := RadioFor(netsim.ThreeG().Name)
	fourG, _ := RadioFor(netsim.FourG().Name)
	b := OffloadBreakdown{
		Phases: offload.Phases{
			NetworkConnection:    50 * time.Millisecond,
			DataTransfer:         2 * time.Second,
			RuntimePreparation:   1 * time.Second,
			ComputationExecution: 1 * time.Second,
		},
		UpAirtime:   1500 * time.Millisecond,
		DownAirtime: 500 * time.Millisecond,
	}
	eWiFi := OffloadEnergy(wifi, b)
	e3G := OffloadEnergy(threeG, b)
	e4G := OffloadEnergy(fourG, b)
	if !(eWiFi < e4G && e4G < e3G*1.5) || e3G < eWiFi {
		t.Fatalf("energy ordering wifi=%.2f 4G=%.2f 3G=%.2f, want wifi cheapest", eWiFi, e4G, e3G)
	}
}

func TestLongRuntimePreparationCostsEnergy(t *testing.T) {
	// The VM's 28 s runtime preparation burns idle-CPU + radio-tail energy
	// on the device: the mechanism behind Figure 10's Rattrap advantage.
	wifi, _ := RadioFor(netsim.LANWiFi().Name)
	fast := OffloadBreakdown{Phases: offload.Phases{
		RuntimePreparation:   2 * time.Second,
		ComputationExecution: time.Second,
	}}
	slow := fast
	slow.Phases.RuntimePreparation = 28 * time.Second
	eFast := OffloadEnergy(wifi, fast)
	eSlow := OffloadEnergy(wifi, slow)
	if eSlow <= eFast {
		t.Fatalf("slow prep %v J not costlier than fast %v J", eSlow, eFast)
	}
	// The extra 26 s should cost ≈26 × (CPUIdle + radio idle) joules.
	extra := eSlow - eFast
	if extra < 26*CPUIdleW || extra > 26*(CPUIdleW+0.2) {
		t.Fatalf("extra energy %v J outside the idle-wait band", extra)
	}
}

func TestOffloadingChessSavesEnergyOnLAN(t *testing.T) {
	// Chess locally: ≈2 s at 0.9 W = 1.8 J. Offloaded on LAN with a warm
	// runtime: well under half of that.
	wifi, _ := RadioFor(netsim.LANWiFi().Name)
	local := LocalEnergy(2 * time.Second)
	off := OffloadEnergy(wifi, OffloadBreakdown{
		Phases: offload.Phases{
			NetworkConnection:    5 * time.Millisecond,
			DataTransfer:         40 * time.Millisecond,
			RuntimePreparation:   10 * time.Millisecond,
			ComputationExecution: 300 * time.Millisecond,
		},
		UpAirtime:   30 * time.Millisecond,
		DownAirtime: 10 * time.Millisecond,
	})
	if off >= local/2 {
		t.Fatalf("offload energy %v J not well below local %v J", off, local)
	}
}

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.AddLocal(time.Second)
	wifi, _ := RadioFor(netsim.LANWiFi().Name)
	m.AddOffload(wifi, OffloadBreakdown{Phases: offload.Phases{ComputationExecution: time.Second}}, 0, time.Second)
	if m.Joules <= 0.9 {
		t.Fatalf("meter = %v J", m.Joules)
	}
}

func TestMeterTailMerging(t *testing.T) {
	// Two back-to-back requests on 3G must cost less than two isolated
	// ones: the radio never demotes between them, so the first request's
	// tail is mostly refunded.
	threeG, _ := RadioFor(netsim.ThreeG().Name)
	b := OffloadBreakdown{Phases: offload.Phases{ComputationExecution: time.Second}}
	var isolated Meter
	isolated.AddOffload(threeG, b, 0, 2*time.Second)
	isolated.AddOffload(threeG, b, 100*time.Second, 102*time.Second)
	var backToBack Meter
	backToBack.AddOffload(threeG, b, 0, 2*time.Second)
	backToBack.AddOffload(threeG, b, 2500*time.Millisecond, 4500*time.Millisecond)
	if backToBack.Joules >= isolated.Joules {
		t.Fatalf("back-to-back %v J not cheaper than isolated %v J", backToBack.Joules, isolated.Joules)
	}
	// The refund is bounded by one full tail.
	maxRefund := threeG.TailW * threeG.TailTime.Seconds()
	if diff := isolated.Joules - backToBack.Joules; diff > maxRefund+1e-9 {
		t.Fatalf("refund %v J exceeds a full tail %v J", diff, maxRefund)
	}
}
