// Package power implements a PowerTutor-style energy model for the mobile
// device (the paper measures with PowerTutor [22]): component power states
// for the CPU and for each radio (WiFi, 3G, 4G), integrated over the
// phases of an offloading request. Energies are reported in joules and,
// for Figure 10, normalized to running the same workload entirely on the
// device.
package power

import (
	"fmt"
	"time"

	"rattrap/internal/netsim"
	"rattrap/internal/offload"
)

// CPU power states of the handset (big core active vs. idle-with-screen).
const (
	CPUActiveW = 0.90
	CPUIdleW   = 0.30
)

// Radio characterizes one network interface's power behaviour.
type Radio struct {
	Name string
	// TxW / RxW are transmit/receive powers.
	TxW float64
	RxW float64
	// PromoW/PromoTime model connection setup (cellular radio promotion
	// from IDLE to a dedicated channel; association for WiFi).
	PromoW    float64
	PromoTime time.Duration
	// TailW/TailTime model the post-transfer tail (cellular radios hold
	// the channel before demoting).
	TailW    float64
	TailTime time.Duration
	// IdleW is the radio's baseline while connected but quiet.
	IdleW float64
}

// RadioFor returns the PowerTutor parameters for a network scenario.
// WiFi numbers follow PowerTutor's low/high states; 3G follows its
// IDLE/FACH/DCH model; 4G (LTE) follows later measurements of the same
// methodology.
func RadioFor(profile string) (Radio, error) {
	switch profile {
	case netsim.LANWiFi().Name, netsim.WANWiFi().Name:
		return Radio{
			Name: "WiFi", TxW: 0.72, RxW: 0.34,
			PromoW: 0.40, PromoTime: 0,
			TailW: 0.12, TailTime: 200 * time.Millisecond,
			IdleW: 0.03,
		}, nil
	case netsim.ThreeG().Name:
		return Radio{
			Name: "3G", TxW: 0.80, RxW: 0.60,
			PromoW: 0.46, PromoTime: 1500 * time.Millisecond, // IDLE->DCH
			TailW: 0.46, TailTime: 6 * time.Second, // DCH/FACH tail
			IdleW: 0.01,
		}, nil
	case netsim.FourG().Name:
		return Radio{
			Name: "4G", TxW: 1.20, RxW: 0.90,
			PromoW: 0.55, PromoTime: 260 * time.Millisecond,
			TailW: 0.60, TailTime: 1500 * time.Millisecond, // LTE DRX tail
			IdleW: 0.02,
		}, nil
	}
	return Radio{}, fmt.Errorf("power: no radio model for profile %q", profile)
}

// LocalEnergy is the joules spent running the workload on the device for
// execTime (CPU fully active; radios quiet).
func LocalEnergy(execTime time.Duration) float64 {
	return CPUActiveW * execTime.Seconds()
}

// OffloadBreakdown carries the measured durations of one offloaded request
// needed to integrate device power.
type OffloadBreakdown struct {
	Phases offload.Phases
	// UpAirtime / DownAirtime are the radio-active portions of
	// DataTransfer (the rest of the request the radio only idles/tails).
	UpAirtime   time.Duration
	DownAirtime time.Duration
}

// OffloadEnergy integrates device power over one offloaded request:
//
//   - connection: radio promotion power;
//   - transfers: TxW/RxW while bytes are in flight;
//   - cloud wait (runtime preparation + computation): CPU idle with the
//     radio holding its tail/idle state — the term that makes long VM
//     runtime preparation expensive in battery, not just latency;
//   - post-request tail: the radio's demotion tail.
func OffloadEnergy(r Radio, b OffloadBreakdown) float64 {
	e := 0.0
	// Connection establishment.
	e += r.PromoW * b.Phases.NetworkConnection.Seconds()
	// Transfers.
	e += r.TxW * b.UpAirtime.Seconds()
	e += r.RxW * b.DownAirtime.Seconds()
	// Waiting on the cloud: CPU idles, radio idles (it demotes during
	// long waits; approximate with idle power past the tail window).
	wait := b.Phases.RuntimePreparation + b.Phases.ComputationExecution
	e += CPUIdleW * wait.Seconds()
	tailDuring := wait
	if tailDuring > r.TailTime {
		tailDuring = r.TailTime
	}
	e += r.TailW*tailDuring.Seconds() + r.IdleW*(wait-tailDuring).Seconds()
	// Final tail after the result arrives.
	e += r.TailW * r.TailTime.Seconds()
	// CPU idles through all transfer time too.
	e += CPUIdleW * (b.Phases.NetworkConnection + b.Phases.DataTransfer).Seconds()
	return e
}

// Meter accumulates energy over a run. It tracks the radio's tail state so
// that back-to-back requests do not each pay the full demotion tail: when a
// new request starts inside the previous request's tail window, the unused
// part of that tail is refunded (the radio never demoted).
type Meter struct {
	Joules float64

	lastEnd      time.Duration // virtual time the previous offload finished
	lastTailW    float64
	lastTailTime time.Duration
	tailValid    bool
}

// AddLocal charges a local execution.
func (m *Meter) AddLocal(execTime time.Duration) {
	m.Joules += LocalEnergy(execTime)
}

// AddOffload charges an offloaded request that ran from start to end on
// the virtual clock.
func (m *Meter) AddOffload(r Radio, b OffloadBreakdown, start, end time.Duration) {
	if m.tailValid && start >= m.lastEnd {
		tailEnd := m.lastEnd + m.lastTailTime
		if start < tailEnd {
			// The radio was still in its tail: refund the part of the
			// previously charged tail that this request's activity covers.
			m.Joules -= m.lastTailW * (tailEnd - start).Seconds()
		}
	}
	m.Joules += OffloadEnergy(r, b)
	m.lastEnd = end
	m.lastTailW = r.TailW
	m.lastTailTime = r.TailTime
	m.tailValid = true
}
