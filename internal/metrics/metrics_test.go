package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 || Sum(xs) != 10 || Min(xs) != 1 || Max(xs) != 4 {
		t.Fatalf("mean=%v sum=%v min=%v max=%v", Mean(xs), Sum(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty not NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 4})
	if got := c.At(2); got != 0.6 {
		t.Fatalf("At(2) = %v, want 0.6", got)
	}
	if got := c.FractionAbove(3); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("FractionAbove(3) = %v, want 0.2", got)
	}
	if got := c.FractionBelow(1); got != 0 {
		t.Fatalf("FractionBelow(1) = %v, want 0 (strictly below)", got)
	}
	if got := c.FractionBelow(2); got != 0.2 {
		t.Fatalf("FractionBelow(2) = %v, want 0.2", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][1] != 0.5 { // at x=0: P(X<=0) = 0.5
		t.Fatalf("first point = %v", pts[0])
	}
	if pts[10][0] != 10 || pts[10][1] != 1 {
		t.Fatalf("last point = %v", pts[10])
	}
}

// Property: CDF is monotone and bounded in [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(xs []float64, probes []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		c := NewCDF(xs)
		prev := -1.0
		for _, p := range probes {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			_ = prev
			v := c.At(p)
			if v < 0 || v > 1 {
				return false
			}
		}
		// Monotonicity over sorted probes.
		last := 0.0
		for _, x := range []float64{-1e9, -1, 0, 1, 1e9} {
			v := c.At(x)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table I", "Runtime", "Setup", "Memory")
	tb.AddRow("Android VM", "28.72s", "512MB")
	tb.AddRow("CAC", "1.75s", "96MB")
	out := tb.Render()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Android VM") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatalf("F = %q", F(3.14159, 2))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Table I — overheads", "Runtime", "Setup")
	tb.AddRow("Android VM", "28.72s")
	tb.AddRow(`CAC, "optimized"`, "1.75s")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "Runtime,Setup" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"CAC, ""optimized""",1.75s` {
		t.Fatalf("quoted row = %q", lines[2])
	}
}

func TestTableSlug(t *testing.T) {
	for _, tc := range []struct{ title, want string }{
		{"Table I — overheads of code runtime environments", "table-i"},
		{"Figure 1(OCR) — VM-based cloud, LAN WiFi", "figure-1-ocr"},
		{"Figure 10(ChessGame) — normalized energy (local execution = 1.0)", "figure-10-chessgame"},
		{"", "table"},
	} {
		tb := NewTable(tc.title, "a")
		if got := tb.Slug(); got != tc.want {
			t.Errorf("Slug(%q) = %q, want %q", tc.title, got, tc.want)
		}
	}
}
