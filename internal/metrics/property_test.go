package metrics

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Property-based sweep over the statistics kernels. Every generator is
// seeded, so a failure reproduces exactly; cases print their seed.

const propSeeds = 50

// genSamples draws a random sample slice: mixed magnitudes, duplicates,
// occasional NaN when withNaN is set.
func genSamples(rng *rand.Rand, n int, withNaN bool) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.Intn(6) {
		case 0:
			xs[i] = rng.Float64() * 1e-6
		case 1:
			xs[i] = rng.Float64() * 1e6
		case 2:
			xs[i] = -rng.Float64() * 100
		case 3:
			xs[i] = float64(rng.Intn(5)) // duplicates
		default:
			xs[i] = rng.NormFloat64() * 10
		}
		if withNaN && rng.Intn(10) == 0 {
			xs[i] = math.NaN()
		}
	}
	return xs
}

// TestPercentileMonotone: for fixed samples, Percentile must be
// non-decreasing in p, bounded by min/max, and exact at p=0 and p=100.
func TestPercentileMonotone(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		xs := genSamples(rng, 1+rng.Intn(200), true)
		clean := dropNaN(xs)
		if len(clean) == 0 {
			continue
		}
		sort.Float64s(clean)
		lo, hi := clean[0], clean[len(clean)-1]

		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 0.5 {
			v, err := PercentileErr(xs, p)
			if err != nil {
				t.Fatalf("seed %d: PercentileErr(%v): %v", seed, p, err)
			}
			if v < prev {
				t.Fatalf("seed %d: percentile not monotone: p=%v gave %v after %v", seed, p, v, prev)
			}
			if v < lo || v > hi {
				t.Fatalf("seed %d: percentile %v = %v outside sample range [%v, %v]", seed, p, v, lo, hi)
			}
			prev = v
		}
		if v := Percentile(xs, 0); v != lo {
			t.Fatalf("seed %d: P0 = %v, want min %v", seed, v, lo)
		}
		if v := Percentile(xs, 100); v != hi {
			t.Fatalf("seed %d: P100 = %v, want max %v", seed, v, hi)
		}
		// Every returned percentile is an actual sample (nearest-rank).
		for _, p := range []float64{10, 25, 50, 75, 90, 99} {
			v := Percentile(xs, p)
			if i := sort.SearchFloat64s(clean, v); i >= len(clean) || clean[i] != v {
				t.Fatalf("seed %d: P%v = %v is not a sample", seed, p, v)
			}
		}
	}
}

// TestPercentileEdgeCases pins the empty/singleton/NaN behavior and the
// typed range error.
func TestPercentileEdgeCases(t *testing.T) {
	if v, err := PercentileErr(nil, 50); err != nil || !math.IsNaN(v) {
		t.Fatalf("empty: got (%v, %v), want (NaN, nil)", v, err)
	}
	if v, err := PercentileErr([]float64{math.NaN(), math.NaN()}, 50); err != nil || !math.IsNaN(v) {
		t.Fatalf("all-NaN: got (%v, %v), want (NaN, nil)", v, err)
	}
	for _, p := range []float64{0, 37.5, 100} {
		if v := Percentile([]float64{7}, p); v != 7 {
			t.Fatalf("singleton: P%v = %v, want 7", p, v)
		}
	}
	if v := Percentile([]float64{3, math.NaN(), 1}, 100); v != 3 {
		t.Fatalf("NaN mixed in: P100 = %v, want 3", v)
	}
	for _, p := range []float64{-1, 101, math.NaN()} {
		_, err := PercentileErr([]float64{1, 2}, p)
		if !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("p=%v: err = %v, want ErrOutOfRange", p, err)
		}
		var re *RangeError
		if !errors.As(err, &re) || re.Op != "percentile" {
			t.Fatalf("p=%v: err = %#v, want *RangeError{Op: percentile}", p, err)
		}
	}
	// The panicking form still panics for in-process misuse.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Percentile(xs, 200) did not panic")
			}
		}()
		Percentile([]float64{1}, 200)
	}()
}

// TestCDFBounds: At is within [0,1], non-decreasing, 0 below the min,
// 1 at and above the max; FractionAbove/Below complement it.
func TestCDFBounds(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		xs := genSamples(rng, rng.Intn(150), true)
		c := NewCDF(xs)
		clean := dropNaN(xs)
		sort.Float64s(clean)

		if len(clean) == 0 {
			if v := c.At(0); v != 0 {
				t.Fatalf("seed %d: empty CDF At(0) = %v", seed, v)
			}
			continue
		}
		prev := -1.0
		for i := 0; i < 50; i++ {
			x := clean[0] - 1 + rng.Float64()*(clean[len(clean)-1]-clean[0]+2)
			v := c.At(x)
			if v < 0 || v > 1 {
				t.Fatalf("seed %d: At(%v) = %v outside [0,1]", seed, x, v)
			}
			if got := c.FractionAbove(x); math.Abs(got-(1-v)) > 1e-12 {
				t.Fatalf("seed %d: FractionAbove(%v) = %v, want %v", seed, x, got, 1-v)
			}
		}
		// Monotone over a sorted probe grid.
		for i := 0; i <= 100; i++ {
			x := clean[0] - 1 + float64(i)/100*(clean[len(clean)-1]-clean[0]+2)
			v := c.At(x)
			if v < prev {
				t.Fatalf("seed %d: CDF not monotone at x=%v: %v after %v", seed, x, v, prev)
			}
			prev = v
		}
		if v := c.At(clean[0] - 0.5); v != 0 {
			t.Fatalf("seed %d: At(below min) = %v, want 0", seed, v)
		}
		if v := c.At(clean[len(clean)-1]); v != 1 {
			t.Fatalf("seed %d: At(max) = %v, want 1", seed, v)
		}
		// Exactness: At(x) counts samples ≤ x.
		probe := clean[rng.Intn(len(clean))]
		n := 0
		for _, x := range clean {
			if x <= probe {
				n++
			}
		}
		if v := c.At(probe); math.Abs(v-float64(n)/float64(len(clean))) > 1e-12 {
			t.Fatalf("seed %d: At(%v) = %v, want %v", seed, probe, v, float64(n)/float64(len(clean)))
		}
	}
}

// genDurations draws positive durations across the histogram's range.
func genDurations(rng *rand.Rand, n int) []time.Duration {
	ds := make([]time.Duration, n)
	for i := range ds {
		ds[i] = time.Duration(rng.Int63n(int64(5 * time.Second)))
	}
	return ds
}

// TestHistogramQuantileMonotone: quantiles are non-decreasing in q and
// never exceed the observed max.
func TestHistogramQuantileMonotone(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		h := NewLatencyHistogram()
		var maxD time.Duration
		for _, d := range genDurations(rng, 1+rng.Intn(500)) {
			h.Observe(d)
			if d > maxD {
				maxD = d
			}
		}
		prev := time.Duration(-1)
		for q := 0.01; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: quantile not monotone at q=%v: %v after %v", seed, q, v, prev)
			}
			if v > maxD {
				t.Fatalf("seed %d: quantile %v = %v beyond max %v", seed, q, v, maxD)
			}
			prev = v
		}
		if got := h.Quantile(1); got != maxD {
			t.Fatalf("seed %d: Q1 = %v, want max %v", seed, got, maxD)
		}
	}
}

// TestHistogramQuantileEdgeCases pins the empty/singleton behavior and the
// typed error at the boundary form.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewLatencyHistogram()
	if v := h.Quantile(0.5); v != 0 {
		t.Fatalf("empty histogram Q0.5 = %v, want 0", v)
	}
	h.Observe(123 * time.Millisecond)
	for _, q := range []float64{0.001, 0.5, 1} {
		if v := h.Quantile(q); v != 123*time.Millisecond {
			t.Fatalf("singleton Q%v = %v, want 123ms", q, v)
		}
	}
	for _, q := range []float64{0, -0.1, 1.1, math.NaN()} {
		_, err := h.QuantileErr(q)
		if !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("q=%v: err = %v, want ErrOutOfRange", q, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Quantile(2) did not panic")
			}
		}()
		h.Quantile(2)
	}()
	// Negative durations clamp to the zero bucket, never corrupt counts.
	h2 := NewLatencyHistogram()
	h2.Observe(-5 * time.Second)
	if h2.Count() != 1 || h2.Max() != 0 {
		t.Fatalf("negative observe: count=%d max=%v, want 1, 0", h2.Count(), h2.Max())
	}
}

// histEqual compares two histograms' complete observable state.
func histEqual(a, b *LatencyHistogram) bool {
	if a.Count() != b.Count() || a.Max() != b.Max() || a.Mean() != b.Mean() {
		return false
	}
	for i := 0; i < latBuckets; i++ {
		if a.counts[i].Load() != b.counts[i].Load() {
			return false
		}
	}
	return a.sum.Load() == b.sum.Load()
}

// TestHistogramMergeAssociativeCommutative: (a⊕b)⊕c == a⊕(b⊕c) and
// a⊕b == b⊕a over the full bucket state.
func TestHistogramMergeAssociativeCommutative(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		mk := func() *LatencyHistogram {
			h := NewLatencyHistogram()
			for _, d := range genDurations(rng, rng.Intn(100)) {
				h.Observe(d)
			}
			return h
		}
		a, b, c := mk(), mk(), mk()

		// (a ⊕ b) ⊕ c
		left := a.Snapshot()
		left.Merge(b)
		left.Merge(c)
		// a ⊕ (b ⊕ c)
		bc := b.Snapshot()
		bc.Merge(c)
		right := a.Snapshot()
		right.Merge(bc)
		if !histEqual(left, right) {
			t.Fatalf("seed %d: merge not associative: %v vs %v", seed, left, right)
		}

		ab := a.Snapshot()
		ab.Merge(b)
		ba := b.Snapshot()
		ba.Merge(a)
		if !histEqual(ab, ba) {
			t.Fatalf("seed %d: merge not commutative: %v vs %v", seed, ab, ba)
		}

		// Identity: merging an empty histogram changes nothing.
		id := a.Snapshot()
		id.Merge(NewLatencyHistogram())
		id.Merge(nil)
		if !histEqual(id, a.Snapshot()) {
			t.Fatalf("seed %d: empty/nil merge is not the identity", seed)
		}
	}
}

// TestShardedHistogramAggregates: regardless of stripe assignment, the
// merged view must match a plain histogram fed the same observations.
func TestShardedHistogramAggregates(t *testing.T) {
	for seed := int64(0); seed < propSeeds; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		sh := NewShardedHistogram()
		ref := NewLatencyHistogram()
		for _, d := range genDurations(rng, 1+rng.Intn(300)) {
			sh.Observe(d)
			ref.Observe(d)
		}
		if sh.Count() != ref.Count() {
			t.Fatalf("seed %d: sharded count %d != %d", seed, sh.Count(), ref.Count())
		}
		if !histEqual(sh.Snapshot(), ref) {
			t.Fatalf("seed %d: sharded snapshot differs from reference", seed)
		}
	}
}

// TestSnapshotDetached: a snapshot must not see later observations.
func TestSnapshotDetached(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	h.Observe(time.Second)
	if s.Count() != 1 || s.Max() != time.Millisecond {
		t.Fatalf("snapshot mutated: count=%d max=%v", s.Count(), s.Max())
	}
}
