// Package metrics provides the statistics and rendering helpers shared by
// the experiment harness: means, percentiles, CDFs (Figure 11), and plain-
// text tables matching the paper's presentation.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrOutOfRange matches (via errors.Is) any *RangeError: a percentile or
// quantile argument outside its legal domain.
var ErrOutOfRange = errors.New("metrics: argument out of range")

// RangeError is the typed out-of-domain rejection for Percentile/Quantile
// arguments. Boundary code (e.g. a /metrics scrape handler parsing an
// untrusted q parameter) checks for it with errors.Is(err, ErrOutOfRange)
// instead of recovering from a panic.
type RangeError struct {
	Op     string  // "percentile" or "quantile"
	Value  float64 // the rejected argument
	Lo, Hi float64 // the legal interval, for the message
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("metrics: %s %v outside %v..%v", e.Op, e.Value, e.Lo, e.Hi)
}

// Is makes errors.Is(err, ErrOutOfRange) match.
func (e *RangeError) Is(target error) bool { return target == ErrOutOfRange }

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the total.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest value (NaN for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (NaN for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using nearest-rank
// on a sorted copy. NaN samples are ignored (sorting them would leave the
// slice effectively unsorted and break rank selection); the result is NaN
// only when no finite-ordered samples remain. Out-of-range p panics;
// boundary code should use PercentileErr.
func Percentile(xs []float64, p float64) float64 {
	v, err := PercentileErr(xs, p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// PercentileErr is Percentile returning a typed *RangeError (matching
// ErrOutOfRange via errors.Is) instead of panicking when p is outside
// [0, 100] or NaN.
func PercentileErr(xs []float64, p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, &RangeError{Op: "percentile", Value: p, Lo: 0, Hi: 100}
	}
	s := dropNaN(xs)
	if len(s) == 0 {
		return math.NaN(), nil
	}
	sort.Float64s(s)
	if p == 0 {
		return s[0], nil
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank], nil
}

// dropNaN copies xs without its NaN entries.
func dropNaN(xs []float64) []float64 {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	return s
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF over the samples. NaN samples are dropped: they have
// no place in a total order, and sorting a slice containing NaN leaves it
// unsorted for binary search, which would make At non-monotone.
func NewCDF(xs []float64) CDF {
	s := dropNaN(xs)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// FractionAbove returns P(X > x) — e.g. "54.0% of requests get speedup
// higher than 3.0x".
func (c CDF) FractionAbove(x float64) float64 { return 1 - c.At(x) }

// FractionBelow returns P(X < x) — e.g. the offloading-failure rate
// P(speedup < 1).
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	return float64(i) / float64(len(c.sorted))
}

// Points samples the CDF at n evenly spaced x positions across the data
// range, for plotting as "x value, cumulative fraction" rows.
func (c CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		if n == 1 {
			x = hi
		}
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Table renders aligned plain-text tables for the harness output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// Render formats the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c + strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first; cells with
// commas or quotes are quoted). The title is not included.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Slug derives a filesystem-friendly name from the table title.
func (t *Table) Slug() string {
	s := strings.ToLower(t.Title)
	if i := strings.Index(s, " — "); i > 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, " ", "-")
	s = strings.ReplaceAll(s, "(", "-")
	var b strings.Builder
	for _, r := range s {
		if r == '-' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "table"
	}
	return b.String()
}

// F formats a float at the given precision — table-cell helper.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
