package metrics

import (
	"fmt"
	"math"
	"math/bits"
	mrand "math/rand/v2"
	"sync/atomic"
	"time"
)

// latBuckets covers [1ns, ~9.2s] in power-of-two buckets; bucket i holds
// durations in [2^i ns, 2^(i+1) ns). Observations beyond the range clamp
// into the edge buckets.
const latBuckets = 64

// LatencyHistogram records durations into exponentially spaced buckets and
// reports approximate quantiles (error bounded by the 2x bucket width,
// tightened by linear interpolation within a bucket). All methods are safe
// for concurrent use — the realtime server records every request into one
// while connection handlers run in parallel.
type LatencyHistogram struct {
	counts [latBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram { return &LatencyHistogram{} }

func latBucket(ns int64) int {
	if ns < 1 {
		return 0
	}
	idx := bits.Len64(uint64(ns)) - 1 // floor(log2 ns)
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[latBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count reports how many durations were observed.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation (0 when empty).
func (h *LatencyHistogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the approximate q-quantile (0 < q ≤ 1) using
// nearest-rank over the buckets with linear interpolation inside the
// resolved bucket. It returns 0 when the histogram is empty. Out-of-range
// q panics (programmer error); boundary code handling untrusted input
// should use QuantileErr instead.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	d, err := h.QuantileErr(q)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// QuantileErr is Quantile returning a typed *RangeError (matching
// ErrOutOfRange via errors.Is) instead of panicking on a q outside
// (0, 1] — the server boundary form: a bad scrape query must not crash
// the process.
func (h *LatencyHistogram) QuantileErr(q float64) (time.Duration, error) {
	if math.IsNaN(q) || q <= 0 || q > 1 {
		return 0, &RangeError{Op: "quantile", Value: q, Lo: 0, Hi: 1}
	}
	total := h.count.Load()
	if total == 0 {
		return 0, nil
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i := 0; i < latBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(1) << uint(i) // bucket lower bound, ns
			hi := lo << 1
			if i == 0 {
				lo = 0
			}
			frac := float64(rank-cum) / float64(c)
			ns := float64(lo) + frac*float64(hi-lo)
			if m := h.max.Load(); int64(ns) > m {
				return time.Duration(m), nil
			}
			return time.Duration(ns), nil
		}
		cum += c
	}
	return time.Duration(h.max.Load()), nil
}

// Merge folds o's observations into h. Merging is associative and
// commutative (bucket counts, totals and maxima are sums/maxima), so a
// sharded histogram's shards can be combined in any order with identical
// results. Merging is safe against concurrent Observe on either side.
func (h *LatencyHistogram) Merge(o *LatencyHistogram) {
	if o == nil {
		return
	}
	for i := 0; i < latBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Snapshot returns a point-in-time copy. The copy is detached: further
// observations on h do not affect it, so scrape handlers can compute
// several quantiles from one consistent state.
func (h *LatencyHistogram) Snapshot() *LatencyHistogram {
	s := NewLatencyHistogram()
	s.Merge(h)
	return s
}

// Snapshotter is anything that can produce a consistent histogram copy —
// a plain LatencyHistogram or a ShardedHistogram. The obs registry stores
// histograms behind this interface.
type Snapshotter interface {
	Snapshot() *LatencyHistogram
}

// shardedStripes is the stripe count for ShardedHistogram, a power of two
// so the stripe pick is a mask. Sixteen stripes keeps worst-case scrape
// merge cost trivial while removing most cross-core contention.
const shardedStripes = 16

// ShardedHistogram stripes observations across several LatencyHistograms
// so concurrent hot-path writers do not contend on one set of atomics.
// The stripe is picked with the runtime's per-P cheap random source —
// stripe assignment is not deterministic, but every aggregate read goes
// through Snapshot, which merges stripes with commutative sums, so the
// observable state is independent of the assignment.
type ShardedHistogram struct {
	stripes [shardedStripes]LatencyHistogram
}

// NewShardedHistogram returns an empty sharded histogram.
func NewShardedHistogram() *ShardedHistogram { return &ShardedHistogram{} }

// Observe records one duration into one stripe.
func (s *ShardedHistogram) Observe(d time.Duration) {
	s.stripes[mrand.Uint32()&(shardedStripes-1)].Observe(d)
}

// Count reports the total observation count across stripes.
func (s *ShardedHistogram) Count() int64 {
	var n int64
	for i := range s.stripes {
		n += s.stripes[i].Count()
	}
	return n
}

// Snapshot merges all stripes into a detached LatencyHistogram.
func (s *ShardedHistogram) Snapshot() *LatencyHistogram {
	m := NewLatencyHistogram()
	for i := range s.stripes {
		m.Merge(&s.stripes[i])
	}
	return m
}

// Percentiles returns the p50/p95/p99 trio the realtime benchmarks report.
func (h *LatencyHistogram) Percentiles() (p50, p95, p99 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// String summarizes the histogram for logs and benchmark output.
func (h *LatencyHistogram) String() string {
	p50, p95, p99 := h.Percentiles()
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.Count(), p50, p95, p99, h.Max())
}
