package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latBuckets covers [1ns, ~9.2s] in power-of-two buckets; bucket i holds
// durations in [2^i ns, 2^(i+1) ns). Observations beyond the range clamp
// into the edge buckets.
const latBuckets = 64

// LatencyHistogram records durations into exponentially spaced buckets and
// reports approximate quantiles (error bounded by the 2x bucket width,
// tightened by linear interpolation within a bucket). All methods are safe
// for concurrent use — the realtime server records every request into one
// while connection handlers run in parallel.
type LatencyHistogram struct {
	counts [latBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram { return &LatencyHistogram{} }

func latBucket(ns int64) int {
	if ns < 1 {
		return 0
	}
	idx := bits.Len64(uint64(ns)) - 1 // floor(log2 ns)
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[latBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count reports how many durations were observed.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation (0 when empty).
func (h *LatencyHistogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the approximate q-quantile (0 < q ≤ 1) using
// nearest-rank over the buckets with linear interpolation inside the
// resolved bucket. It returns 0 when the histogram is empty.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of range", q))
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i := 0; i < latBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(1) << uint(i) // bucket lower bound, ns
			hi := lo << 1
			if i == 0 {
				lo = 0
			}
			frac := float64(rank-cum) / float64(c)
			ns := float64(lo) + frac*float64(hi-lo)
			if m := h.max.Load(); int64(ns) > m {
				return time.Duration(m)
			}
			return time.Duration(ns)
		}
		cum += c
	}
	return time.Duration(h.max.Load())
}

// Percentiles returns the p50/p95/p99 trio the realtime benchmarks report.
func (h *LatencyHistogram) Percentiles() (p50, p95, p99 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// String summarizes the histogram for logs and benchmark output.
func (h *LatencyHistogram) String() string {
	p50, p95, p99 := h.Percentiles()
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.Count(), p50, p95, p99, h.Max())
}
