package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	// 100 observations spread over two decades: 1..100 ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	p50, p95, p99 := h.Percentiles()
	// Power-of-two buckets: the answer is approximate but must stay within
	// a factor of 2 of the exact percentile.
	check := func(name string, got, exact time.Duration) {
		if got < exact/2 || got > exact*2 {
			t.Fatalf("%s = %v, want within 2x of %v", name, got, exact)
		}
	}
	check("p50", p50, 50*time.Millisecond)
	check("p95", p95, 95*time.Millisecond)
	check("p99", p99, 99*time.Millisecond)
	if p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("q100 %v exceeds max %v", h.Quantile(1), h.Max())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", mean)
	}
}

func TestLatencyHistogramEdges(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0)
	h.Observe(-time.Second) // clamped, not a crash
	h.Observe(time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > time.Nanosecond {
		t.Fatalf("q50 of sub-ns observations = %v", q)
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}
