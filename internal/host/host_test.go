package host

import (
	"testing"
	"time"

	"rattrap/internal/sim"
)

func TestComputeDuration(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 2, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var done sim.Time
	e.Spawn("w", func(p *sim.Proc) {
		h.Compute(p, 200, 1.0) // 200 mops at 100 mops/s = 2s
		done = e.Now()
	})
	e.Run()
	if done != sim.Time(2*time.Second) {
		t.Fatalf("compute took %v, want 2s", done)
	}
}

func TestComputeEfficiency(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 1, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var done sim.Time
	e.Spawn("w", func(p *sim.Proc) {
		h.Compute(p, 100, 0.5) // half speed -> 2s
		done = e.Now()
	})
	e.Run()
	if done != sim.Time(2*time.Second) {
		t.Fatalf("compute took %v, want 2s", done)
	}
}

func TestCPUContention(t *testing.T) {
	// 3 single-core 1s jobs on 2 cores: makespan 2s, not 1s or 3s.
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 2, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var last sim.Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *sim.Proc) {
			h.Compute(p, 100, 1.0)
			if e.Now() > last {
				last = e.Now()
			}
		})
	}
	e.Run()
	if last != sim.Time(2*time.Second) {
		t.Fatalf("makespan %v, want 2s", last)
	}
}

func TestDiskSequentialAndRandom(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 1, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var seq, rnd time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := e.Now()
		h.DiskRead(p, "", 200*MB, true, 1.0) // 200MB at 100MB/s = 2s
		seq = (e.Now() - t0).Duration()
		t0 = e.Now()
		h.DiskRead(p, "", 400*KB, false, 1.0) // 100 random 4K ops at 100 IOPS = 1s
		rnd = (e.Now() - t0).Duration()
	})
	e.Run()
	if seq != 2*time.Second {
		t.Fatalf("sequential read took %v, want 2s", seq)
	}
	if rnd != time.Second {
		t.Fatalf("random read took %v, want 1s", rnd)
	}
}

func TestPageCache(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, CloudServer())
	var cold, warm time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := e.Now()
		h.DiskRead(p, "system.img", 110*MB, true, 1.0)
		cold = (e.Now() - t0).Duration()
		t0 = e.Now()
		h.DiskRead(p, "system.img", 110*MB, true, 1.0)
		warm = (e.Now() - t0).Duration()
	})
	e.Run()
	if !h.Cached("system.img") {
		t.Fatal("file not cached after read")
	}
	if warm >= cold/10 {
		t.Fatalf("cached read %v not much faster than cold %v", warm, cold)
	}
}

func TestDropCaches(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, CloudServer())
	h.WarmCache("f", 10*MB)
	if !h.Cached("f") {
		t.Fatal("WarmCache did not cache")
	}
	h.DropCaches()
	if h.Cached("f") {
		t.Fatal("DropCaches left file cached")
	}
}

func TestMemAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 1, CoreMops: 100, MemMB: 1000, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	if err := h.AllocMem(600); err != nil {
		t.Fatal(err)
	}
	if err := h.AllocMem(600); err == nil {
		t.Fatal("overcommit allocation succeeded")
	}
	if err := h.AllocMem(400); err != nil {
		t.Fatal(err)
	}
	h.FreeMem(500)
	if h.MemUsedMB() != 500 {
		t.Fatalf("used = %d, want 500", h.MemUsedMB())
	}
	if h.MemPeakMB() != 1000 {
		t.Fatalf("peak = %d, want 1000", h.MemPeakMB())
	}
}

func TestCPUUtilizationTimeline(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 4, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	// Two cores busy for the first 2 seconds.
	for i := 0; i < 2; i++ {
		e.Spawn("w", func(p *sim.Proc) { h.Compute(p, 200, 1.0) })
	}
	e.Spawn("idle", func(p *sim.Proc) { p.Sleep(4 * time.Second) })
	e.Run()
	u := h.CPUUtilization(0, sim.Time(4*time.Second), time.Second)
	if u[0] != 50 || u[1] != 50 {
		t.Fatalf("util[0:2] = %v, want 50%%", u[:2])
	}
	if u[2] != 0 || u[3] != 0 {
		t.Fatalf("util[2:4] = %v, want 0%%", u[2:])
	}
}

func TestDiskTimeline(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 1, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	e.Spawn("w", func(p *sim.Proc) {
		h.DiskRead(p, "", 300*MB, true, 1.0) // 3s at 100MB/s
	})
	e.Run()
	rates := h.DiskReadMBps(0, sim.Time(3*time.Second), time.Second)
	for i, r := range rates {
		if r < 90 || r > 110 {
			t.Fatalf("read rate bucket %d = %v MB/s, want ~100", i, r)
		}
	}
}

func TestDiskFIFOContention(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 1, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("w", func(p *sim.Proc) {
			h.DiskRead(p, "", 100*MB, true, 1.0)
			ends = append(ends, e.Now())
		})
	}
	e.Run()
	if ends[0] != sim.Time(time.Second) || ends[1] != sim.Time(2*time.Second) {
		t.Fatalf("ends = %v, want serialized [1s 2s]", ends)
	}
}

func TestMemCopyFasterThanDisk(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, CloudServer())
	var mem, dsk time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := e.Now()
		h.MemCopy(p, 100*MB)
		mem = (e.Now() - t0).Duration()
		t0 = e.Now()
		h.DiskRead(p, "", 100*MB, true, 1.0)
		dsk = (e.Now() - t0).Duration()
	})
	e.Run()
	if mem >= dsk {
		t.Fatalf("memcopy %v not faster than disk %v", mem, dsk)
	}
}

func TestConfigs(t *testing.T) {
	s := CloudServer()
	if s.Cores != 12 || s.MemMB != 16384 {
		t.Fatalf("CloudServer = %+v, want 12 cores / 16 GB", s)
	}
	d := MobileDevice("phone-1")
	if d.CoreMops >= s.CoreMops {
		t.Fatal("mobile core should be slower than server core")
	}
}
