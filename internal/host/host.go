// Package host models the physical machines in the testbed: the cloud
// server (2 six-core Xeon X5650, 16 GB DRAM, 300 GB HDD in the paper) and,
// with a different Config, the mobile devices.
//
// The model is deliberately simple but structural: compute time comes from
// abstract work units divided by per-core speed, disk time from bytes
// divided by sequential bandwidth (or an IOPS budget for random access),
// and both CPU and disk are FIFO sim.Resources, so contention between
// concurrently booting runtimes emerges naturally. A page cache shared by
// everything on the host makes re-reads of shared-layer files memory-speed,
// which is the mechanism behind the fast boot of optimized Cloud Android
// Containers.
package host

import (
	"fmt"
	"time"

	"rattrap/internal/sim"
)

// Work is an abstract amount of computation in millions of operations
// (mops). Workload implementations meter their real algorithms in Work.
type Work float64

// Bytes is a data size in bytes.
type Bytes int64

// Common sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// Config describes a machine.
type Config struct {
	Name string
	// Cores is the number of CPU cores.
	Cores int
	// CoreMops is per-core speed in millions of work units per second.
	CoreMops float64
	// MemMB is installed DRAM in MiB.
	MemMB int
	// DiskSeqMBps is sequential HDD throughput.
	DiskSeqMBps float64
	// DiskRandIOPS is the random 4 KiB operation budget per second.
	DiskRandIOPS float64
	// MemBWMBps is page-cache / tmpfs throughput.
	MemBWMBps float64
}

// CloudServer returns the paper's server configuration: 2 six-core Intel
// Xeon X5650 2.66 GHz, 16 GB DRAM, 300 GB HDD, Ubuntu 15.04.
func CloudServer() Config {
	return Config{
		Name:         "cloud-server",
		Cores:        12,
		CoreMops:     2400, // X5650 core, ~8x the phone core below
		MemMB:        16384,
		DiskSeqMBps:  110, // 7.2k rpm HDD
		DiskRandIOPS: 160,
		MemBWMBps:    2400, // tmpfs / page cache
	}
}

// MobileDevice returns a 2016-era Android handset configuration.
func MobileDevice(name string) Config {
	return Config{
		Name:         name,
		Cores:        4,
		CoreMops:     300, // one big core of a mid-range SoC
		MemMB:        2048,
		DiskSeqMBps:  80, // eMMC
		DiskRandIOPS: 1500,
		MemBWMBps:    1600,
	}
}

// Host is a machine instance inside a simulation.
type Host struct {
	E   *sim.Engine
	cfg Config

	cpu     *sim.Resource
	cpuBusy *sim.StepSeries

	disk      *sim.Resource
	diskRead  *sim.CountSeries
	diskWrite *sim.CountSeries

	memUsedMB int
	memPeakMB int

	pageCache map[string]bool
	cachedMB  int
}

// New creates a host on engine e.
func New(e *sim.Engine, cfg Config) *Host {
	h := &Host{
		E:         e,
		cfg:       cfg,
		cpu:       sim.NewResource(e, cfg.Name+"/cpu", cfg.Cores),
		disk:      sim.NewResource(e, cfg.Name+"/disk", 1),
		diskRead:  sim.NewCountSeries(e),
		diskWrite: sim.NewCountSeries(e),
		pageCache: make(map[string]bool),
	}
	h.cpuBusy = sim.NewStepSeries(e)
	h.cpu.OnChange(func(n int) { h.cpuBusy.Set(float64(n)) })
	return h
}

// Config returns the machine description.
func (h *Host) Config() Config { return h.cfg }

// Compute occupies one core for work/(CoreMops*efficiency) and blocks p for
// that long. efficiency < 1 models virtualization overhead (e.g. a VM's
// binary-translation/VMEXIT cost); 1 is bare metal.
func (h *Host) Compute(p *sim.Proc, work Work, efficiency float64) {
	if work <= 0 {
		return
	}
	if efficiency <= 0 || efficiency > 1 {
		panic(fmt.Sprintf("host: efficiency %v out of (0,1]", efficiency))
	}
	d := time.Duration(float64(work) / (h.cfg.CoreMops * efficiency) * float64(time.Second))
	h.cpu.Acquire(p, 1)
	p.Sleep(d)
	h.cpu.Release(1)
}

// ComputeOn occupies n cores (a parallel region) for the same duration.
func (h *Host) ComputeOn(p *sim.Proc, cores int, work Work, efficiency float64) {
	if work <= 0 {
		return
	}
	if cores <= 0 || cores > h.cfg.Cores {
		panic(fmt.Sprintf("host: %d cores of %d", cores, h.cfg.Cores))
	}
	d := time.Duration(float64(work) / (h.cfg.CoreMops * efficiency * float64(cores)) * float64(time.Second))
	h.cpu.Acquire(p, cores)
	p.Sleep(d)
	h.cpu.Release(cores)
}

// DiskRead reads size bytes, blocking p. key identifies the data for page
// caching: a cached key is served from memory without touching the disk.
// An empty key bypasses the cache. sequential selects streaming bandwidth
// versus the random-IOPS budget.
//
// efficiency models the caller's I/O-virtualization cost. Crucially, only
// the raw media time occupies the (FIFO) disk; the virtualization penalty
// is served in the caller's own emulation path (trap-and-emulate CPU, not
// spindle time), so five booting VMs stretch their own boots without
// multiplying each other's disk queueing by the emulation slowdown.
func (h *Host) DiskRead(p *sim.Proc, key string, size Bytes, sequential bool, efficiency float64) {
	if size <= 0 {
		return
	}
	if key != "" && h.pageCache[key] {
		h.memCopy(p, size)
		return
	}
	h.diskOp(p, h.diskRead, size, sequential, efficiency)
	if key != "" {
		h.pageCache[key] = true
		h.cachedMB += int(size / MB)
	}
}

// DiskWrite writes size bytes, blocking p.
func (h *Host) DiskWrite(p *sim.Proc, size Bytes, sequential bool, efficiency float64) {
	if size <= 0 {
		return
	}
	h.diskOp(p, h.diskWrite, size, sequential, efficiency)
}

func (h *Host) diskOp(p *sim.Proc, rec *sim.CountSeries, size Bytes, sequential bool, efficiency float64) {
	raw := h.diskTime(size, sequential, 1.0)
	total := h.diskTime(size, sequential, efficiency)
	rec.AddSpread(float64(size), total)
	h.disk.Acquire(p, 1)
	p.Sleep(raw)
	h.disk.Release(1)
	if total > raw {
		p.Sleep(total - raw)
	}
}

// MemCopy moves size bytes at memory bandwidth (tmpfs reads/writes,
// page-cache hits). It does not occupy the disk.
func (h *Host) MemCopy(p *sim.Proc, size Bytes) { h.memCopy(p, size) }

func (h *Host) memCopy(p *sim.Proc, size Bytes) {
	if size <= 0 {
		return
	}
	d := time.Duration(float64(size) / float64(MB) / h.cfg.MemBWMBps * float64(time.Second))
	p.Sleep(d)
}

func (h *Host) diskTime(size Bytes, sequential bool, efficiency float64) time.Duration {
	if efficiency <= 0 || efficiency > 1 {
		panic(fmt.Sprintf("host: efficiency %v out of (0,1]", efficiency))
	}
	var secs float64
	if sequential {
		secs = float64(size) / float64(MB) / (h.cfg.DiskSeqMBps * efficiency)
	} else {
		ops := float64((size + 4*KB - 1) / (4 * KB))
		secs = ops / (h.cfg.DiskRandIOPS * efficiency)
	}
	return time.Duration(secs * float64(time.Second))
}

// Cached reports whether key is resident in the page cache.
func (h *Host) Cached(key string) bool { return h.pageCache[key] }

// WarmCache marks key as resident without simulating a read (used when a
// file was just written and is therefore hot).
func (h *Host) WarmCache(key string, size Bytes) {
	if key == "" {
		return
	}
	if !h.pageCache[key] {
		h.pageCache[key] = true
		h.cachedMB += int(size / MB)
	}
}

// DropCaches empties the page cache (echo 3 > /proc/sys/vm/drop_caches).
func (h *Host) DropCaches() {
	h.pageCache = make(map[string]bool)
	h.cachedMB = 0
}

// AllocMem reserves mb MiB of DRAM, failing if the machine would exceed
// its installed memory.
func (h *Host) AllocMem(mb int) error {
	if mb < 0 {
		panic("host: negative allocation")
	}
	if h.memUsedMB+mb > h.cfg.MemMB {
		return fmt.Errorf("host %s: out of memory: %d MiB used + %d requested > %d installed",
			h.cfg.Name, h.memUsedMB, mb, h.cfg.MemMB)
	}
	h.memUsedMB += mb
	if h.memUsedMB > h.memPeakMB {
		h.memPeakMB = h.memUsedMB
	}
	return nil
}

// FreeMem releases mb MiB reserved with AllocMem.
func (h *Host) FreeMem(mb int) {
	if mb < 0 || mb > h.memUsedMB {
		panic(fmt.Sprintf("host %s: freeing %d MiB with %d in use", h.cfg.Name, mb, h.memUsedMB))
	}
	h.memUsedMB -= mb
}

// MemUsedMB returns currently reserved DRAM in MiB.
func (h *Host) MemUsedMB() int { return h.memUsedMB }

// MemPeakMB returns the high-water mark of reserved DRAM in MiB.
func (h *Host) MemPeakMB() int { return h.memPeakMB }

// CPUUtilization returns per-bucket CPU utilization in percent over
// [from, to), one value per width.
func (h *Host) CPUUtilization(from, to sim.Time, width time.Duration) []float64 {
	raw := h.cpuBusy.Buckets(from, to, width)
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v / float64(h.cfg.Cores) * 100
	}
	return out
}

// DiskReadMBps returns the per-bucket disk read rate in MB/s.
func (h *Host) DiskReadMBps(from, to sim.Time, width time.Duration) []float64 {
	return h.diskRate(h.diskRead, from, to, width)
}

// DiskWriteMBps returns the per-bucket disk write rate in MB/s.
func (h *Host) DiskWriteMBps(from, to sim.Time, width time.Duration) []float64 {
	return h.diskRate(h.diskWrite, from, to, width)
}

func (h *Host) diskRate(c *sim.CountSeries, from, to sim.Time, width time.Duration) []float64 {
	raw := c.Buckets(from, to, width)
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v / float64(MB) / width.Seconds()
	}
	return out
}

// BusyCores returns the number of cores currently executing.
func (h *Host) BusyCores() int { return h.cpu.InUse() }
