package host

import (
	"testing"
	"testing/quick"
	"time"

	"rattrap/internal/sim"
)

func TestComputeOnParallelRegion(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 4, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var par, seq time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := e.Now()
		h.ComputeOn(p, 4, 400, 1.0) // 400 mops over 4 cores = 1s
		par = (e.Now() - t0).Duration()
		t0 = e.Now()
		h.Compute(p, 400, 1.0) // 4s on one core
		seq = (e.Now() - t0).Duration()
	})
	e.Run()
	if par != time.Second || seq != 4*time.Second {
		t.Fatalf("parallel %v / sequential %v, want 1s / 4s", par, seq)
	}
}

func TestEfficiencyValidation(t *testing.T) {
	e := sim.NewEngine(1)
	h := New(e, CloudServer())
	e.Spawn("w", func(p *sim.Proc) {
		for _, bad := range []float64{0, -1, 1.5} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("efficiency %v did not panic", bad)
					}
				}()
				h.Compute(p, 10, bad)
			}()
		}
	})
	e.Run()
}

func TestDirectIOReadsDoNotPollute(t *testing.T) {
	// Empty cache keys must never populate the cache.
	e := sim.NewEngine(1)
	h := New(e, CloudServer())
	e.Spawn("w", func(p *sim.Proc) {
		h.DiskRead(p, "", 50*MB, true, 1.0)
	})
	e.Run()
	if h.Cached("") {
		t.Fatal("empty key cached")
	}
}

func TestVirtualizationPenaltyDoesNotOccupyDisk(t *testing.T) {
	// Two concurrent reads at efficiency 0.5: the physical disk serializes
	// only the raw media time; emulation latency overlaps. Makespan must
	// be well under 2 × (size/bw/eff).
	e := sim.NewEngine(1)
	h := New(e, Config{Name: "m", Cores: 4, CoreMops: 100, MemMB: 1024, DiskSeqMBps: 100, DiskRandIOPS: 100, MemBWMBps: 1000})
	var last sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("r", func(p *sim.Proc) {
			h.DiskRead(p, "", 100*MB, true, 0.5) // raw 1s, total 2s each
			if e.Now() > last {
				last = e.Now()
			}
		})
	}
	e.Run()
	// Fully serialized at inflated time would be 4s; overlap gives ≤3s.
	if last > sim.Time(3*time.Second) {
		t.Fatalf("makespan %v: emulation latency serialized on the disk", last)
	}
}

// Property: disk read time is monotone in size for any efficiency.
func TestPropertyDiskTimeMonotone(t *testing.T) {
	f := func(a, b uint32, effRaw uint8) bool {
		eff := 0.1 + float64(effRaw%90)/100.0
		sa, sb := Bytes(a%(1<<26))+1, Bytes(b%(1<<26))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		e := sim.NewEngine(1)
		h := New(e, CloudServer())
		var da, db time.Duration
		e.Spawn("w", func(p *sim.Proc) {
			t0 := e.Now()
			h.DiskRead(p, "", sa, true, eff)
			da = (e.Now() - t0).Duration()
			t0 = e.Now()
			h.DiskRead(p, "", sb, true, eff)
			db = (e.Now() - t0).Duration()
		})
		e.Run()
		return da <= db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory accounting never goes negative or above installed.
func TestPropertyMemAccountingBounded(t *testing.T) {
	f := func(ops []int16) bool {
		e := sim.NewEngine(1)
		h := New(e, Config{Name: "m", Cores: 1, CoreMops: 1, MemMB: 1000, DiskSeqMBps: 1, DiskRandIOPS: 1, MemBWMBps: 1})
		held := 0
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				if err := h.AllocMem(n % 400); err == nil {
					held += n % 400
				}
			} else {
				free := (-n) % 400
				if free > held {
					free = held
				}
				h.FreeMem(free)
				held -= free
			}
			if h.MemUsedMB() != held || held < 0 || held > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
