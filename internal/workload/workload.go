// Package workload implements the four benchmark applications of §III-A as
// real algorithms with deterministic work metering:
//
//   - OCR (image tools): glyph template matching over a rendered bitmap,
//     standing in for Tesseract — compute-intensive with file transfer;
//   - ChessGame (games): an alpha-beta chess engine in the spirit of
//     CuckooChess — small, chatty, interaction-heavy requests;
//   - VirusScan (anti-virus): Aho-Corasick multi-pattern search over a
//     signature database — more I/O than the other benchmarks;
//   - Linpack (mathematical tools): LU decomposition with partial
//     pivoting — pure computation.
//
// Each Execute call really runs the algorithm on a scaled-down instance and
// verifies its own output; the counted real operations are multiplied by a
// documented per-app OpScale to obtain the modeled device-scale work
// (host.Work), and wire sizes are modeled at paper scale (Table II /
// Figure 3). Instances are derived entirely from the task parameters, so a
// task executes identically on the device, in a VM, or in a container —
// the property the App Warehouse's code cache relies on.
package workload

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"rattrap/internal/host"
)

// Task is one offloadable invocation of an app method.
type Task struct {
	// App and Method name the code to run, resolved through the registry
	// (the analog of the Java-reflection dispatch in the paper's client).
	App    string
	Method string
	// Seq is the request's sequence number at its device.
	Seq int
	// Params is the real, decodable parameter blob.
	Params []byte
	// ParamBytes is the modeled wire size of parameters + control
	// metadata at paper scale.
	ParamBytes host.Bytes
	// FileBytes is the modeled size of input files that accompany the
	// request (OCR images, VirusScan targets); zero for file-less apps.
	FileBytes host.Bytes
	// RoundTrips is the number of mid-execution client↔cloud exchanges
	// (games "interact with user continually"); zero for batch apps.
	RoundTrips int
	// InteractBytes is the payload of each such exchange, per direction.
	InteractBytes host.Bytes
}

// UploadBytes is the modeled size of everything the request pushes to the
// cloud except mobile code.
func (t Task) UploadBytes() host.Bytes { return t.ParamBytes + t.FileBytes }

// Metrics describes what executing a task consumed and produced.
type Metrics struct {
	// Work is the modeled device-scale computation.
	Work host.Work
	// IORead/IOWrite are modeled offloading-I/O volumes (reads of
	// transferred files and databases, writes of staged inputs).
	IORead  host.Bytes
	IOWrite host.Bytes
	// ResultBytes is the modeled size of the reply payload.
	ResultBytes host.Bytes
	// RealOps counts operations the real scaled-down instance performed.
	RealOps int64
	// Output is the human-checkable result of the real computation.
	Output string
}

// App is one benchmark application.
type App interface {
	// Name is the app identifier ("OCR", "ChessGame", ...).
	Name() string
	// CodeSize is the modeled APK size pushed on first offload.
	CodeSize() host.Bytes
	// NewTask draws the seq-th request for this app from rng.
	NewTask(rng *rand.Rand, seq int) Task
	// Execute runs the task for real and returns its metrics. It must be
	// deterministic in the task parameters.
	Execute(t Task) (Metrics, error)
}

// Names of the four benchmark apps.
const (
	NameOCR       = "OCR"
	NameChess     = "ChessGame"
	NameVirusScan = "VirusScan"
	NameLinpack   = "Linpack"
)

// Apps returns fresh instances of all four benchmarks in the paper's order.
func Apps() []App {
	return []App{NewOCR(), NewChess(), NewVirusScan(), NewLinpack()}
}

// ByName returns a fresh instance of the named benchmark.
func ByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown app %q", name)
}

// Registry resolves app names to instances, caching one instance per app so
// expensive per-app state (the VirusScan automaton) is built once. It is
// the cloud-side "reflection" table mapping offloaded class names to code.
type Registry struct {
	apps map[string]App
}

// NewRegistry returns a registry over the four benchmarks.
func NewRegistry() *Registry {
	r := &Registry{apps: make(map[string]App)}
	for _, a := range Apps() {
		r.apps[a.Name()] = a
	}
	return r
}

// Get resolves an app by name.
func (r *Registry) Get(name string) (App, error) {
	a, ok := r.apps[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown app %q", name)
	}
	return a, nil
}

// Execute dispatches a task to its app.
func (r *Registry) Execute(t Task) (Metrics, error) {
	a, err := r.Get(t.App)
	if err != nil {
		return Metrics{}, err
	}
	return a.Execute(t)
}

// encodeParams gob-encodes app parameters.
func encodeParams(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("workload: encoding params: %v", err))
	}
	return buf.Bytes()
}

// decodeParams gob-decodes app parameters.
func decodeParams(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
