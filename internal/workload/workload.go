// Package workload implements the four benchmark applications of §III-A as
// real algorithms with deterministic work metering:
//
//   - OCR (image tools): glyph template matching over a rendered bitmap,
//     standing in for Tesseract — compute-intensive with file transfer;
//   - ChessGame (games): an alpha-beta chess engine in the spirit of
//     CuckooChess — small, chatty, interaction-heavy requests;
//   - VirusScan (anti-virus): Aho-Corasick multi-pattern search over a
//     signature database — more I/O than the other benchmarks;
//   - Linpack (mathematical tools): LU decomposition with partial
//     pivoting — pure computation.
//
// Each Execute call really runs the algorithm on a scaled-down instance and
// verifies its own output; the counted real operations are multiplied by a
// documented per-app OpScale to obtain the modeled device-scale work
// (host.Work), and wire sizes are modeled at paper scale (Table II /
// Figure 3). Instances are derived entirely from the task parameters, so a
// task executes identically on the device, in a VM, or in a container —
// the property the App Warehouse's code cache relies on.
package workload

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math/rand"

	"rattrap/internal/host"
)

// Task is one offloadable invocation of an app method.
type Task struct {
	// App and Method name the code to run, resolved through the registry
	// (the analog of the Java-reflection dispatch in the paper's client).
	App    string
	Method string
	// Seq is the request's sequence number at its device.
	Seq int
	// Params is the real, decodable parameter blob.
	Params []byte
	// ParamBytes is the modeled wire size of parameters + control
	// metadata at paper scale.
	ParamBytes host.Bytes
	// FileBytes is the modeled size of input files that accompany the
	// request (OCR images, VirusScan targets); zero for file-less apps.
	FileBytes host.Bytes
	// RoundTrips is the number of mid-execution client↔cloud exchanges
	// (games "interact with user continually"); zero for batch apps.
	RoundTrips int
	// InteractBytes is the payload of each such exchange, per direction.
	InteractBytes host.Bytes

	// pre carries an ahead-of-time execution of this task (see
	// Precomputed). Unexported: it is an in-process optimization handle,
	// never part of the task's wire or cache identity.
	pre *Precomputed
}

// Precomputed is the outcome of running a task ahead of its scheduled
// execution. Apps are deterministic in the task parameters ("a task
// executes identically on the device, in a VM, or in a container"), so a
// result computed early — e.g. by the realtime server on the request's
// own goroutine, outside the serialized engine — is byte-for-byte the
// result the runtime would have produced.
type Precomputed struct {
	Metrics Metrics
	Err     error
}

// SetPrecomputed attaches an ahead-of-time execution outcome. A registry
// executing the task then returns it instead of running the app again.
func (t *Task) SetPrecomputed(p *Precomputed) { t.pre = p }

// PrecomputedResult returns the attached outcome, nil when the task has
// not been pre-executed.
func (t Task) PrecomputedResult() *Precomputed { return t.pre }

// UploadBytes is the modeled size of everything the request pushes to the
// cloud except mobile code.
func (t Task) UploadBytes() host.Bytes { return t.ParamBytes + t.FileBytes }

// Metrics describes what executing a task consumed and produced.
type Metrics struct {
	// Work is the modeled device-scale computation.
	Work host.Work
	// IORead/IOWrite are modeled offloading-I/O volumes (reads of
	// transferred files and databases, writes of staged inputs).
	IORead  host.Bytes
	IOWrite host.Bytes
	// ResultBytes is the modeled size of the reply payload.
	ResultBytes host.Bytes
	// RealOps counts operations the real scaled-down instance performed.
	RealOps int64
	// Output is the human-checkable result of the real computation.
	Output string
}

// App is one benchmark application.
type App interface {
	// Name is the app identifier ("OCR", "ChessGame", ...).
	Name() string
	// CodeSize is the modeled APK size pushed on first offload.
	CodeSize() host.Bytes
	// NewTask draws the seq-th request for this app from rng.
	NewTask(rng *rand.Rand, seq int) Task
	// Execute runs the task for real and returns its metrics. It must be
	// deterministic in the task parameters.
	Execute(t Task) (Metrics, error)
}

// Names of the four benchmark apps.
const (
	NameOCR       = "OCR"
	NameChess     = "ChessGame"
	NameVirusScan = "VirusScan"
	NameLinpack   = "Linpack"
)

// Apps returns fresh instances of all four benchmarks in the paper's order.
func Apps() []App {
	return []App{NewOCR(), NewChess(), NewVirusScan(), NewLinpack()}
}

// ByName returns a fresh instance of the named benchmark.
func ByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown app %q", name)
}

// Registry resolves app names to instances, caching one instance per app so
// expensive per-app state (the VirusScan automaton) is built once. It is
// the cloud-side "reflection" table mapping offloaded class names to code.
type Registry struct {
	apps map[string]App
}

// NewRegistry returns a registry over the four benchmarks.
func NewRegistry() *Registry {
	r := &Registry{apps: make(map[string]App)}
	for _, a := range Apps() {
		r.apps[a.Name()] = a
	}
	return r
}

// Get resolves an app by name.
func (r *Registry) Get(name string) (App, error) {
	a, ok := r.apps[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown app %q", name)
	}
	return a, nil
}

// Execute dispatches a task to its app. A task carrying a Precomputed
// outcome returns it directly — determinism makes the two
// indistinguishable, and the short-circuit lets callers hoist the real
// computation out of serialized sections.
func (r *Registry) Execute(t Task) (Metrics, error) {
	if p := t.pre; p != nil {
		return p.Metrics, p.Err
	}
	a, err := r.Get(t.App)
	if err != nil {
		return Metrics{}, err
	}
	return a.Execute(t)
}

// Flat parameter codec. Param blobs used to be gob, which costs ~200
// heap allocations per decode: each blob is its own gob stream, so every
// Execute re-compiles the decoder engine from the embedded type
// descriptors. The flat format is the same idea as the wire codec one
// layer down — a magic byte, a version, then the struct's fields as
// zigzag varints in declaration order — and decodes with zero
// allocations. Legacy gob blobs still decode: gob's first byte is a
// type-descriptor length in 0x01..0x7F or an extension byte ≥ 0xF8, so
// paramMagic can never open a gob stream and sniffing is unambiguous.
const (
	paramMagic   = 0xB2 // distinct from the wire codec's 0xB1
	paramVersion = 1
)

func appendParamZig(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// encodeParams encodes known app parameter structs in the flat format
// and anything else as gob.
func encodeParams(v any) []byte {
	b := make([]byte, 2, 24)
	b[0], b[1] = paramMagic, paramVersion
	switch p := v.(type) {
	case linpackParams:
		b = appendParamZig(b, p.Seed)
		b = appendParamZig(b, int64(p.N))
	case chessParams:
		b = appendParamZig(b, p.Seed)
		b = appendParamZig(b, int64(p.Prefix))
		b = appendParamZig(b, int64(p.Depth))
	case ocrParams:
		b = appendParamZig(b, p.Seed)
		b = appendParamZig(b, int64(p.Chars))
	case virusParams:
		b = appendParamZig(b, p.Seed)
		b = appendParamZig(b, int64(p.SizeKB))
		b = appendParamZig(b, int64(p.Planted))
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			panic(fmt.Sprintf("workload: encoding params: %v", err))
		}
		return buf.Bytes()
	}
	return b
}

// paramReader consumes zigzag varints from a flat param blob.
type paramReader struct {
	buf []byte
	err error
}

func (r *paramReader) zig() int64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("workload: truncated param varint")
		return 0
	}
	r.buf = r.buf[n:]
	return int64(u>>1) ^ -int64(u&1)
}

func (r *paramReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("workload: %d trailing param bytes", len(r.buf))
	}
	return nil
}

// decodeParams decodes an app parameter blob: flat when it opens with
// paramMagic, gob otherwise (blobs from clients predating the flat
// format). The flat path never touches the heap — it is on the
// zero-alloc request path gated by `rattrap-bench -allocs`.
func decodeParams(data []byte, v any) error {
	if len(data) < 2 || data[0] != paramMagic {
		return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
	}
	if data[1] != paramVersion {
		return fmt.Errorf("workload: unsupported param version %d (have %d)", data[1], paramVersion)
	}
	r := paramReader{buf: data[2:]}
	switch p := v.(type) {
	case *linpackParams:
		p.Seed = r.zig()
		p.N = int(r.zig())
	case *chessParams:
		p.Seed = r.zig()
		p.Prefix = int(r.zig())
		p.Depth = int(r.zig())
	case *ocrParams:
		p.Seed = r.zig()
		p.Chars = int(r.zig())
	case *virusParams:
		p.Seed = r.zig()
		p.SizeKB = int(r.zig())
		p.Planted = int(r.zig())
	default:
		return fmt.Errorf("workload: no flat decoder for %T", v)
	}
	return r.done()
}

// EncodeLinpackParams builds a flat parameter blob for an order-n
// Linpack solve — the warehouse-hit request the benchmarks pump.
func EncodeLinpackParams(seed int64, n int) []byte {
	return encodeParams(linpackParams{Seed: seed, N: n})
}
