package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"rattrap/internal/host"
)

// OCR is the image-tools benchmark: optical character recognition, the most
// common offloading benchmark in prior work (Tesseract via JNI in the
// paper) — compute-intensive with file transfer.
//
// The embedded recognizer is real: the task's text is rendered into a
// bitmap with a fixed 5×7 glyph font, and recognition runs nearest-template
// matching of every character cell against the whole alphabet, then the
// result is verified against the original text. The font is procedurally
// generated (35 deterministic bits per glyph) with a minimum pairwise
// Hamming distance enforced at init, which makes it behave exactly like a
// hand-drawn font for matching purposes.
type OCR struct {
	font map[byte][glyphPixels]byte
}

// Glyph geometry.
const (
	glyphW      = 5
	glyphH      = 7
	glyphPixels = glyphW * glyphH
)

// Calibration constants: Table II gives a 1.4 MB APK, ≈1.4 MB of migrated
// image per request and tiny text replies; the per-op scale models a
// megapixel camera image rather than the embedded strip.
const (
	ocrCodeSize    = 1400 * host.KB
	ocrParamBytes  = 8 * host.KB
	ocrFileBytes   = 1392 * host.KB
	ocrResultBytes = 1700
	ocrOpsPerOp    = 3500
	ocrAlphabet    = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 "
	ocrFontSeed    = 0x0c7_f0_47
)

var ocrWords = []string{
	"OFFLOAD", "CLOUD", "ANDROID", "CONTAINER", "BINDER", "KERNEL",
	"MOBILE", "RATTRAP", "ZYGOTE", "DRIVER", "IMAGE", "TEXT", "SCAN",
	"PHONE", "SERVER", "CACHE", "LAYER", "SHARED", "BOOT", "FAST",
}

type ocrParams struct {
	Seed  int64
	Chars int // approximate length of the rendered text
}

// NewOCR builds the benchmark, generating and validating the font.
func NewOCR() *OCR {
	o := &OCR{font: make(map[byte][glyphPixels]byte, len(ocrAlphabet))}
	rng := rand.New(rand.NewSource(ocrFontSeed))
	for _, c := range []byte(ocrAlphabet) {
		var g [glyphPixels]byte
		if c != ' ' { // space stays blank
			for i := range g {
				g[i] = byte(rng.Intn(2))
			}
		}
		o.font[c] = g
	}
	// A usable font needs well-separated glyphs; with 35 random bits the
	// minimum distance is comfortably high, but verify so a bad seed can
	// never silently break recognition.
	letters := []byte(ocrAlphabet)
	for i := 0; i < len(letters); i++ {
		for j := i + 1; j < len(letters); j++ {
			if hamming(o.font[letters[i]], o.font[letters[j]]) < 5 {
				panic(fmt.Sprintf("workload: ocr font glyphs %q and %q too similar", letters[i], letters[j]))
			}
		}
	}
	return o
}

func hamming(a, b [glyphPixels]byte) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

func (o *OCR) Name() string         { return NameOCR }
func (o *OCR) CodeSize() host.Bytes { return ocrCodeSize }

// NewTask draws a request: a 400–800 character document image.
func (o *OCR) NewTask(rng *rand.Rand, seq int) Task {
	p := ocrParams{Seed: rng.Int63(), Chars: 400 + rng.Intn(401)}
	scale := float64(p.Chars) / 600.0
	return Task{
		App:        NameOCR,
		Method:     "recognize",
		Seq:        seq,
		Params:     encodeParams(p),
		ParamBytes: ocrParamBytes,
		FileBytes:  host.Bytes(float64(ocrFileBytes) * scale),
	}
}

// genText builds deterministic text of roughly n characters.
func genText(rng *rand.Rand, n int) string {
	var b strings.Builder
	for b.Len() < n {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(ocrWords[rng.Intn(len(ocrWords))])
	}
	return b.String()
}

// render draws text as a horizontal strip, one glyph cell per character.
func (o *OCR) render(text string) []byte {
	img := make([]byte, len(text)*glyphPixels)
	for i := 0; i < len(text); i++ {
		g := o.font[text[i]]
		copy(img[i*glyphPixels:], g[:])
	}
	return img
}

// recognize matches every cell against the whole alphabet and returns the
// recognized text plus the number of pixel comparisons performed.
func (o *OCR) recognize(img []byte) (string, int64) {
	cells := len(img) / glyphPixels
	var out strings.Builder
	var ops int64
	for c := 0; c < cells; c++ {
		var cell [glyphPixels]byte
		copy(cell[:], img[c*glyphPixels:])
		bestChar := byte('?')
		bestDist := glyphPixels + 1
		for _, ch := range []byte(ocrAlphabet) {
			d := hamming(cell, o.font[ch])
			ops += glyphPixels
			if d < bestDist {
				bestDist = d
				bestChar = ch
			}
		}
		out.WriteByte(bestChar)
	}
	return out.String(), ops
}

// Execute renders the document, recognizes it, and verifies the round trip.
func (o *OCR) Execute(t Task) (Metrics, error) {
	var p ocrParams
	if err := decodeParams(t.Params, &p); err != nil {
		return Metrics{}, fmt.Errorf("ocr: %w", err)
	}
	if p.Chars <= 0 || p.Chars > 100000 {
		return Metrics{}, fmt.Errorf("ocr: %d chars out of range", p.Chars)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	text := genText(rng, p.Chars)
	img := o.render(text)
	got, ops := o.recognize(img)
	if got != text {
		return Metrics{}, fmt.Errorf("ocr: recognition mismatch (%d chars)", len(text))
	}
	scale := float64(p.Chars) / 600.0
	fileBytes := host.Bytes(float64(ocrFileBytes) * scale)
	preview := got
	if len(preview) > 24 {
		preview = preview[:24]
	}
	return Metrics{
		Work:        host.Work(float64(ops) * ocrOpsPerOp / 1e6),
		IOWrite:     fileBytes, // stage the uploaded image
		IORead:      fileBytes, // read it back for recognition
		ResultBytes: ocrResultBytes,
		RealOps:     ops,
		Output:      fmt.Sprintf("chars=%d text=%q...", len(got), preview),
	}, nil
}
