package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"

	"rattrap/internal/host"
)

// Linpack is the mathematical-tools benchmark: dense LU decomposition with
// partial pivoting followed by triangular solves, "implemented in ordinary
// Android Java" in the paper — the pure-computation workload with almost
// no data transfer.
//
// Execute really factorizes an n×n system and checks the residual; the
// analytic flop count (2/3·n³ + 2·n²) scaled by linpackOpsPerFlop models a
// phone-scale problem (~1650×1650).
type Linpack struct{}

// NewLinpack returns the Linpack benchmark.
func NewLinpack() *Linpack { return &Linpack{} }

// Calibration constants: Table II gives a 152 KB APK and under 1 KB of
// migrated data per request; the flop scale makes a typical solve cost
// ≈3000 device-mops (≈10 s locally on the phone).
const (
	linpackCodeSize    = 152 * host.KB
	linpackParamBytes  = 500
	linpackResultBytes = 550
	linpackOpsPerFlop  = 2000
)

type linpackParams struct {
	Seed int64
	N    int
}

func (l *Linpack) Name() string         { return NameLinpack }
func (l *Linpack) CodeSize() host.Bytes { return linpackCodeSize }

// NewTask draws a request: a random system of order 110–149.
func (l *Linpack) NewTask(rng *rand.Rand, seq int) Task {
	p := linpackParams{Seed: rng.Int63(), N: 110 + rng.Intn(40)}
	return Task{
		App:        NameLinpack,
		Method:     "solve",
		Seq:        seq,
		Params:     encodeParams(p),
		ParamBytes: linpackParamBytes,
	}
}

// lpFill is the memoized expansion of one (seed, n) input system: the
// n×n matrix followed by the right-hand side, in PRNG draw order. The
// expansion is a pure function of the seed — reseeding the generator and
// redrawing n²+n values costs ~40 µs per request at n=64, all of it
// spent reproducing floats this snapshot already holds. Entries are
// immutable after insertion; Execute copies out of them.
type lpFill struct {
	seed int64
	n    int
	data []float64 // len n*n+n: matrix (row-major), then b
}

// The fill cache is a tiny move-to-front LRU. Offload traffic repeats
// (seed, n) pairs heavily — a device retrying, a benchmark's fixed
// system — and lpFillCacheMax bounds it to a few snapshots. Systems
// larger than lpFillCacheMaxOrder skip the cache entirely so one
// n=2000 request cannot pin ~32 MB.
const (
	lpFillCacheMax      = 8
	lpFillCacheMaxOrder = 256
)

var (
	lpFillMu sync.Mutex
	lpFills  []*lpFill
)

// lpFillFor returns the fill snapshot for (seed, n), generating and
// caching it on first use. The returned slice is shared and must only
// be read.
func lpFillFor(seed int64, n int) []float64 {
	if n > lpFillCacheMaxOrder {
		return lpGenFill(seed, n)
	}
	lpFillMu.Lock()
	defer lpFillMu.Unlock()
	for i, f := range lpFills {
		if f.seed == seed && f.n == n {
			if i > 0 {
				copy(lpFills[1:i+1], lpFills[:i])
				lpFills[0] = f
			}
			return f.data
		}
	}
	f := &lpFill{seed: seed, n: n, data: lpGenFill(seed, n)}
	if len(lpFills) < lpFillCacheMax {
		lpFills = append(lpFills, nil)
	}
	copy(lpFills[1:], lpFills)
	lpFills[0] = f
	return f.data
}

// lpGenFill draws the system exactly as the pre-cache fill loops did:
// n² matrix elements row by row, then the n-element right-hand side,
// every value rng.Float64()*2-1 off a fresh source.
func lpGenFill(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*n+n)
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	return data
}

// lpScratch is the per-solve working set: one contiguous float backing
// (A, the original copy of A, b and x) plus the row-header slices. The
// pool recycles them across solves — the realtime server runs a solve on
// every warehouse-hit request, and a fresh 2·n²+2·n float allocation per
// request is both allocs/op and a mandatory memclr of ~64 KB the fill
// loop immediately overwrites. Every cell is written before it is read
// (the fill assigns all of A and b, x is copied from b, row headers are
// reassigned), so recycled contents can never leak between solves.
type lpScratch struct {
	back []float64
	rows [][]float64
}

var lpPool = sync.Pool{New: func() any { return new(lpScratch) }}

// Execute factorizes A, solves Ax=b, and verifies the residual.
func (l *Linpack) Execute(t Task) (Metrics, error) {
	var p linpackParams
	if err := decodeParams(t.Params, &p); err != nil {
		return Metrics{}, fmt.Errorf("linpack: %w", err)
	}
	if p.N < 2 || p.N > 2000 {
		return Metrics{}, fmt.Errorf("linpack: order %d out of range", p.N)
	}
	n := p.N
	fill := lpFillFor(p.Seed, n)
	scratch := lpPool.Get().(*lpScratch)
	defer lpPool.Put(scratch)
	if need := 2*n*n + 2*n; cap(scratch.back) < need {
		scratch.back = make([]float64, need)
	}
	if cap(scratch.rows) < 2*n {
		scratch.rows = make([][]float64, 2*n)
	}
	back, rows := scratch.back, scratch.rows
	aBack := back[0 : n*n : n*n]
	origBack := back[n*n : 2*n*n : 2*n*n]
	b := back[2*n*n : 2*n*n+n : 2*n*n+n]
	x := back[2*n*n+n : 2*n*n+2*n : 2*n*n+2*n]
	a := rows[0:n:n]
	orig := rows[n : 2*n : 2*n]
	copy(aBack, fill[:n*n])
	copy(origBack, fill[:n*n])
	copy(b, fill[n*n:])
	copy(x, b)
	for i := range a {
		a[i] = aBack[i*n : (i+1)*n : (i+1)*n]
		orig[i] = origBack[i*n : (i+1)*n : (i+1)*n]
	}

	// LU with partial pivoting, in place, solving as we go. Row slices
	// are hoisted out of the inner loops (bounds-check elimination); the
	// arithmetic — values, order, pivot choice — is bit-identical to the
	// textbook nested-index form.
	for k := 0; k < n; k++ {
		// Pivot.
		piv := k
		maxv := math.Abs(a[k][k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i][k]); v > maxv {
				piv, maxv = i, v
			}
		}
		if a[piv][k] == 0 {
			return Metrics{}, fmt.Errorf("linpack: singular matrix (n=%d seed=%d)", n, p.Seed)
		}
		if piv != k {
			a[piv], a[k] = a[k], a[piv]
			x[piv], x[k] = x[k], x[piv]
		}
		// Eliminate. a[k] is only read below row k, so its row slice and
		// diagonal are loop-invariant after the swap.
		ak := a[k]
		akk := ak[k]
		xk := x[k]
		rowK := ak[k+1 : n]
		for i := k + 1; i < n; i++ {
			ai := a[i]
			f := ai[k] / akk
			ai[k] = f
			// 4-way unroll of rowA[j] -= f*rowK[j]. Each element's
			// update is independent and unchanged, so results stay
			// bit-identical to the rolled loop; the unroll just drops
			// loop overhead on the O(n³) kernel.
			rowA := ai[k+1 : n]
			rowA = rowA[:len(rowK)]
			j := 0
			for ; j+3 < len(rowK); j += 4 {
				rowA[j] -= f * rowK[j]
				rowA[j+1] -= f * rowK[j+1]
				rowA[j+2] -= f * rowK[j+2]
				rowA[j+3] -= f * rowK[j+3]
			}
			for ; j < len(rowK); j++ {
				rowA[j] -= f * rowK[j]
			}
			x[i] -= f * xk
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ai := a[i]
		xi := x[i]
		for j := i + 1; j < n; j++ {
			xi -= ai[j] * x[j]
		}
		x[i] = xi / ai[i]
	}
	// Residual check against the original system.
	var resid, norm float64
	for i := 0; i < n; i++ {
		oi := orig[i]
		sum := -b[i]
		for j := range oi {
			sum += oi[j] * x[j]
			norm += math.Abs(oi[j])
		}
		resid += math.Abs(sum)
	}
	relResid := resid / (norm / float64(n))
	if relResid > 1e-6 {
		return Metrics{}, fmt.Errorf("linpack: residual %g too large (n=%d)", relResid, n)
	}

	nf := float64(n)
	flops := int64(2.0/3.0*nf*nf*nf + 2*nf*nf)
	// Same string fmt.Sprintf("n=%d residual=%.2e", ...) renders, built
	// with strconv to keep the interface boxing and verb parsing off the
	// hot path ('e' with two digits is exactly what %.2e prints).
	out := make([]byte, 0, 32)
	out = append(out, "n="...)
	out = strconv.AppendInt(out, int64(n), 10)
	out = append(out, " residual="...)
	out = strconv.AppendFloat(out, relResid, 'e', 2, 64)
	return Metrics{
		Work:        host.Work(float64(flops) * linpackOpsPerFlop / 1e6),
		ResultBytes: linpackResultBytes,
		RealOps:     flops,
		Output:      string(out),
	}, nil
}
