package workload

import (
	"fmt"
	"math"
	"math/rand"

	"rattrap/internal/host"
)

// Linpack is the mathematical-tools benchmark: dense LU decomposition with
// partial pivoting followed by triangular solves, "implemented in ordinary
// Android Java" in the paper — the pure-computation workload with almost
// no data transfer.
//
// Execute really factorizes an n×n system and checks the residual; the
// analytic flop count (2/3·n³ + 2·n²) scaled by linpackOpsPerFlop models a
// phone-scale problem (~1650×1650).
type Linpack struct{}

// NewLinpack returns the Linpack benchmark.
func NewLinpack() *Linpack { return &Linpack{} }

// Calibration constants: Table II gives a 152 KB APK and under 1 KB of
// migrated data per request; the flop scale makes a typical solve cost
// ≈3000 device-mops (≈10 s locally on the phone).
const (
	linpackCodeSize    = 152 * host.KB
	linpackParamBytes  = 500
	linpackResultBytes = 550
	linpackOpsPerFlop  = 2000
)

type linpackParams struct {
	Seed int64
	N    int
}

func (l *Linpack) Name() string         { return NameLinpack }
func (l *Linpack) CodeSize() host.Bytes { return linpackCodeSize }

// NewTask draws a request: a random system of order 110–149.
func (l *Linpack) NewTask(rng *rand.Rand, seq int) Task {
	p := linpackParams{Seed: rng.Int63(), N: 110 + rng.Intn(40)}
	return Task{
		App:        NameLinpack,
		Method:     "solve",
		Seq:        seq,
		Params:     encodeParams(p),
		ParamBytes: linpackParamBytes,
	}
}

// Execute factorizes A, solves Ax=b, and verifies the residual.
func (l *Linpack) Execute(t Task) (Metrics, error) {
	var p linpackParams
	if err := decodeParams(t.Params, &p); err != nil {
		return Metrics{}, fmt.Errorf("linpack: %w", err)
	}
	if p.N < 2 || p.N > 2000 {
		return Metrics{}, fmt.Errorf("linpack: order %d out of range", p.N)
	}
	n := p.N
	rng := rand.New(rand.NewSource(p.Seed))
	a := make([][]float64, n)
	orig := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		orig[i] = make([]float64, n)
		for j := range a[i] {
			v := rng.Float64()*2 - 1
			a[i][j] = v
			orig[i][j] = v
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	x := append([]float64(nil), b...)

	// LU with partial pivoting, in place, solving as we go.
	for k := 0; k < n; k++ {
		// Pivot.
		piv := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[piv][k]) {
				piv = i
			}
		}
		if a[piv][k] == 0 {
			return Metrics{}, fmt.Errorf("linpack: singular matrix (n=%d seed=%d)", n, p.Seed)
		}
		if piv != k {
			a[piv], a[k] = a[k], a[piv]
			x[piv], x[k] = x[k], x[piv]
		}
		// Eliminate.
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			a[i][k] = f
			for j := k + 1; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
			x[i] -= f * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= a[i][j] * x[j]
		}
		x[i] /= a[i][i]
	}
	// Residual check against the original system.
	var resid, norm float64
	for i := 0; i < n; i++ {
		sum := -b[i]
		for j := 0; j < n; j++ {
			sum += orig[i][j] * x[j]
			norm += math.Abs(orig[i][j])
		}
		resid += math.Abs(sum)
	}
	relResid := resid / (norm / float64(n))
	if relResid > 1e-6 {
		return Metrics{}, fmt.Errorf("linpack: residual %g too large (n=%d)", relResid, n)
	}

	nf := float64(n)
	flops := int64(2.0/3.0*nf*nf*nf + 2*nf*nf)
	return Metrics{
		Work:        host.Work(float64(flops) * linpackOpsPerFlop / 1e6),
		ResultBytes: linpackResultBytes,
		RealOps:     flops,
		Output:      fmt.Sprintf("n=%d residual=%.2e", n, relResid),
	}, nil
}
