package workload

import "testing"

func BenchmarkLinpackExecute(b *testing.B) {
	l := NewLinpack()
	task := Task{App: NameLinpack, Method: "solve", Params: EncodeLinpackParams(7, 64)}
	want, err := l.Execute(task)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := l.Execute(task)
		if err != nil {
			b.Fatal(err)
		}
		if m.Output != want.Output {
			b.Fatalf("output drifted: %q vs %q", m.Output, want.Output)
		}
	}
}
