package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rattrap/internal/host"
)

func TestRegistryResolvesAllApps(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{NameOCR, NameChess, NameVirusScan, NameLinpack} {
		a, err := r.Get(name)
		if err != nil || a.Name() != name {
			t.Fatalf("Get(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := r.Get("Minesweeper"); err == nil {
		t.Fatal("unknown app resolved")
	}
}

func TestAllAppsExecuteAndVerify(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(11))
	for _, app := range Apps() {
		for seq := 0; seq < 3; seq++ {
			task := app.NewTask(rng, seq)
			m, err := r.Execute(task)
			if err != nil {
				t.Fatalf("%s: %v", app.Name(), err)
			}
			if m.Work <= 0 {
				t.Errorf("%s: non-positive work %v", app.Name(), m.Work)
			}
			if m.RealOps <= 0 {
				t.Errorf("%s: no real ops", app.Name())
			}
			if m.ResultBytes <= 0 {
				t.Errorf("%s: no result bytes", app.Name())
			}
			if m.Output == "" {
				t.Errorf("%s: empty output", app.Name())
			}
		}
	}
}

func TestExecutionDeterministicAcrossSites(t *testing.T) {
	// The same task must produce identical output wherever it executes —
	// the property the App Warehouse's code cache relies on.
	rng := rand.New(rand.NewSource(5))
	for _, app := range Apps() {
		task := app.NewTask(rng, 0)
		device, cloud := NewRegistry(), NewRegistry() // two independent sites
		m1, err1 := device.Execute(task)
		m2, err2 := cloud.Execute(task)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", app.Name(), err1, err2)
		}
		if m1.Output != m2.Output || m1.Work != m2.Work || m1.RealOps != m2.RealOps {
			t.Fatalf("%s: divergent execution: %+v vs %+v", app.Name(), m1, m2)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	// §III's characterization: Linpack is pure compute (no I/O), VirusScan
	// is the most I/O-heavy, Chess has the smallest per-request compute,
	// OCR and VirusScan carry files.
	rng := rand.New(rand.NewSource(42))
	r := NewRegistry()
	avg := make(map[string]Metrics)
	files := make(map[string]host.Bytes)
	const n = 12
	for _, app := range Apps() {
		var sum Metrics
		for i := 0; i < n; i++ {
			task := app.NewTask(rng, i)
			m, err := r.Execute(task)
			if err != nil {
				t.Fatal(err)
			}
			sum.Work += m.Work
			sum.IORead += m.IORead
			sum.IOWrite += m.IOWrite
			files[app.Name()] += task.FileBytes
		}
		sum.Work /= n
		avg[app.Name()] = sum
	}
	if avg[NameLinpack].IORead != 0 || avg[NameLinpack].IOWrite != 0 {
		t.Error("Linpack should do no offloading I/O")
	}
	if files[NameLinpack] != 0 || files[NameChess] != 0 {
		t.Error("Linpack/Chess should transfer no files")
	}
	if avg[NameVirusScan].IORead <= avg[NameOCR].IORead {
		t.Error("VirusScan should be the most I/O-bound workload")
	}
	if files[NameOCR] == 0 || files[NameVirusScan] == 0 {
		t.Error("OCR/VirusScan should transfer files")
	}
	for _, other := range []string{NameOCR, NameVirusScan, NameLinpack} {
		if avg[NameChess].Work >= avg[other].Work {
			t.Errorf("Chess compute (%v) should be smaller than %s (%v)",
				avg[NameChess].Work, other, avg[other].Work)
		}
	}
}

func TestCalibratedWorkMagnitudes(t *testing.T) {
	// Mean modeled work should be in the calibrated band (device-seconds
	// at 300 mops/s): Chess ≈2s, OCR ≈9s, VirusScan ≈6s, Linpack ≈10s.
	rng := rand.New(rand.NewSource(9))
	r := NewRegistry()
	bands := map[string][2]float64{ // [min,max] mops
		NameChess:     {150, 2000},
		NameOCR:       {1700, 4000},
		NameVirusScan: {1100, 2600},
		NameLinpack:   {2000, 4500},
	}
	for _, app := range Apps() {
		var sum float64
		const n = 15
		for i := 0; i < n; i++ {
			m, err := r.Execute(app.NewTask(rng, i))
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(m.Work)
		}
		mean := sum / n
		b := bands[app.Name()]
		if mean < b[0] || mean > b[1] {
			t.Errorf("%s mean work = %.0f mops, want in [%v, %v]", app.Name(), mean, b[0], b[1])
		}
	}
}

func TestTableIICodeSizes(t *testing.T) {
	// Derived from Table II: VM upload − Rattrap upload ≈ 4 extra code
	// pushes (5 VMs vs 1 warehouse copy).
	want := map[string]host.Bytes{
		NameOCR:       1400 * host.KB,
		NameChess:     2300 * host.KB,
		NameVirusScan: 1730 * host.KB,
		NameLinpack:   152 * host.KB,
	}
	for _, app := range Apps() {
		if app.CodeSize() != want[app.Name()] {
			t.Errorf("%s code size = %d KB, want %d KB",
				app.Name(), app.CodeSize()/host.KB, want[app.Name()]/host.KB)
		}
	}
}

// --- chess engine ---

func TestChessInitialPosition(t *testing.T) {
	b := newBoard()
	moves := b.legalMoves()
	if len(moves) != 20 {
		t.Fatalf("initial position has %d legal moves, want 20", len(moves))
	}
	if b.inCheck(1) || b.inCheck(-1) {
		t.Fatal("initial position reports check")
	}
	if b.eval() != 0 {
		t.Fatalf("initial eval = %d, want 0 (symmetric)", b.eval())
	}
}

func TestChessPerft2(t *testing.T) {
	// Without castling/en passant, depth-2 node count from the start is
	// exactly 20*20 = 400 (no captures or checks possible yet).
	b := newBoard()
	count := 0
	for _, m := range b.legalMoves() {
		b.make(m)
		count += len(b.legalMoves())
		b.unmake(m)
	}
	if count != 400 {
		t.Fatalf("perft(2) = %d, want 400", count)
	}
}

func TestChessMakeUnmakeRoundTrip(t *testing.T) {
	b := newBoard()
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 40; step++ {
		before := b.sq
		side := b.white
		moves := b.legalMoves()
		if len(moves) == 0 {
			break
		}
		m := moves[rng.Intn(len(moves))]
		b.make(m)
		b.unmake(m)
		if b.sq != before || b.white != side {
			t.Fatalf("make/unmake not inverse at step %d (move %s)", step, m)
		}
		b.make(m) // advance for real
	}
}

func TestChessFindsHangingQueen(t *testing.T) {
	// Place a hanging black queen; a depth-2 search must capture it.
	b := newBoard()
	// Clear a path: put the black queen on d4 (rank 3, file 3 -> 0x33),
	// reachable by the white knight after Nb1-c3? Simpler: white rook on
	// d1 with an open file and black queen on d4.
	var empty [128]int8
	b.sq = empty
	b.white = true
	b.sq[4] = wk       // white king e1
	b.sq[7*16+4] = -wk // black king e8
	b.sq[3] = wr       // white rook d1
	b.sq[3*16+3] = -wq // black queen d4
	best, score, nodes := b.search(2)
	if got := best.String(); got != "d1d4" {
		t.Fatalf("best move = %s (score %d), want d1d4 capturing the queen", got, score)
	}
	if nodes <= 0 {
		t.Fatal("search visited no nodes")
	}
}

func TestChessPromotion(t *testing.T) {
	b := &board{white: true}
	b.sq[4] = wk
	b.sq[7*16+0] = -wk // black king a8... keep far from promotion square h8
	b.sq[6*16+7] = wp  // white pawn h7
	found := false
	for _, m := range b.legalMoves() {
		if m.promo == wq && m.to == 7*16+7 {
			found = true
			b.make(m)
			if b.sq[7*16+7] != wq {
				t.Fatal("promotion did not place a queen")
			}
			b.unmake(m)
			if b.sq[6*16+7] != wp {
				t.Fatal("unmake did not restore the pawn")
			}
		}
	}
	if !found {
		t.Fatal("promotion move not generated")
	}
}

func TestChessCheckmateDetection(t *testing.T) {
	// Back-rank mate: black king h8, white rook a8, white king g6 guards.
	b := &board{white: false}
	b.sq[7*16+7] = -wk // h8
	b.sq[7*16+0] = wr  // a8
	b.sq[5*16+6] = wk  // g6
	if len(b.legalMoves()) != 0 {
		t.Fatalf("mated side has legal moves: %v", b.legalMoves())
	}
	if !b.inCheck(-1) {
		t.Fatal("mated king not in check")
	}
}

// Property: search never returns an illegal move, for random positions.
func TestPropertyChessSearchReturnsLegalMove(t *testing.T) {
	f := func(seed int64, prefix uint8) bool {
		b := newBoard()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(prefix%30); i++ {
			moves := b.legalMoves()
			if len(moves) == 0 {
				return true
			}
			b.make(moves[rng.Intn(len(moves))])
		}
		legal := b.legalMoves()
		if len(legal) == 0 {
			return true
		}
		best, _, _ := b.search(2)
		for _, m := range legal {
			if m == best {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- linpack ---

func TestLinpackSolvesAndChecksResidual(t *testing.T) {
	l := NewLinpack()
	rng := rand.New(rand.NewSource(2))
	m, err := l.Execute(l.NewTask(rng, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Output, "residual=") {
		t.Fatalf("output %q lacks residual", m.Output)
	}
}

func TestLinpackFlopCount(t *testing.T) {
	l := NewLinpack()
	p := linpackParams{Seed: 1, N: 100}
	task := Task{App: NameLinpack, Params: encodeParams(p)}
	m, err := l.Execute(task)
	if err != nil {
		t.Fatal(err)
	}
	nf := 100.0
	want := int64(2.0/3.0*nf*nf*nf + 2*nf*nf)
	if m.RealOps != want {
		t.Fatalf("flops = %d, want %d", m.RealOps, want)
	}
}

func TestLinpackRejectsBadOrder(t *testing.T) {
	l := NewLinpack()
	task := Task{App: NameLinpack, Params: encodeParams(linpackParams{Seed: 1, N: 0})}
	if _, err := l.Execute(task); err == nil {
		t.Fatal("order 0 accepted")
	}
}

// --- virus scan ---

func TestVirusScanFindsExactlyPlanted(t *testing.T) {
	v := NewVirusScan()
	for _, planted := range []int{0, 1, 3, 6} {
		p := virusParams{Seed: int64(100 + planted), SizeKB: 128, Planted: planted}
		m, err := v.Execute(Task{App: NameVirusScan, Params: encodeParams(p)})
		if err != nil {
			t.Fatalf("planted=%d: %v", planted, err)
		}
		if planted == 0 && !strings.Contains(m.Output, "clean") {
			t.Errorf("clean target reported %q", m.Output)
		}
		if planted > 0 && !strings.Contains(m.Output, "INFECTED") {
			t.Errorf("infected target reported %q", m.Output)
		}
	}
}

func TestAhoCorasickAgainstNaive(t *testing.T) {
	pats := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	ac := newAhoCorasick(pats)
	text := []byte("ushers and his heroes; she sells hers")
	want := 0
	for _, p := range pats {
		for i := 0; i+len(p) <= len(text); i++ {
			if string(text[i:i+len(p)]) == string(p) {
				want++
			}
		}
	}
	if got := ac.scan(text); got != want {
		t.Fatalf("AC found %d, naive found %d", got, want)
	}
}

func TestAhoCorasickOverlappingPatterns(t *testing.T) {
	ac := newAhoCorasick([][]byte{[]byte("aa"), []byte("aaa")})
	// "aaaa" contains "aa" at 0,1,2 and "aaa" at 0,1 -> 5 matches.
	if got := ac.scan([]byte("aaaa")); got != 5 {
		t.Fatalf("scan = %d, want 5", got)
	}
}

// Property: Aho-Corasick matches the naive count on random inputs.
func TestPropertyAhoCorasickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		npat := 1 + rng.Intn(5)
		pats := make([][]byte, npat)
		for i := range pats {
			p := make([]byte, 1+rng.Intn(4))
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			pats[i] = p
		}
		// Dedup: duplicate patterns double-count in both implementations,
		// but keep the comparison honest by allowing them.
		text := make([]byte, rng.Intn(200))
		for i := range text {
			text[i] = byte('a' + rng.Intn(3))
		}
		want := 0
		for _, p := range pats {
			for i := 0; i+len(p) <= len(text); i++ {
				if string(text[i:i+len(p)]) == string(p) {
					want++
				}
			}
		}
		return newAhoCorasick(pats).scan(text) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- ocr ---

func TestOCRRoundTrip(t *testing.T) {
	o := NewOCR()
	rng := rand.New(rand.NewSource(8))
	m, err := o.Execute(o.NewTask(rng, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Output, "chars=") {
		t.Fatalf("output = %q", m.Output)
	}
}

func TestOCRRecognizesKnownText(t *testing.T) {
	o := NewOCR()
	text := "CLOUD ANDROID CONTAINER 42"
	img := o.render(text)
	got, ops := o.recognize(img)
	if got != text {
		t.Fatalf("recognized %q, want %q", got, text)
	}
	wantOps := int64(len(text)) * int64(len(ocrAlphabet)) * glyphPixels
	if ops != wantOps {
		t.Fatalf("ops = %d, want %d", ops, wantOps)
	}
}

func TestOCRFontGlyphsDistinct(t *testing.T) {
	o := NewOCR()
	letters := []byte(ocrAlphabet)
	for i := 0; i < len(letters); i++ {
		for j := i + 1; j < len(letters); j++ {
			if o.font[letters[i]] == o.font[letters[j]] {
				t.Fatalf("glyphs %q and %q identical", letters[i], letters[j])
			}
		}
	}
}

// Property: OCR round-trips any text over its alphabet.
func TestPropertyOCRRoundTripsAlphabet(t *testing.T) {
	o := NewOCR()
	f := func(idx []uint8) bool {
		if len(idx) == 0 || len(idx) > 200 {
			return true
		}
		var b strings.Builder
		for _, i := range idx {
			b.WriteByte(ocrAlphabet[int(i)%len(ocrAlphabet)])
		}
		text := b.String()
		got, _ := o.recognize(o.render(text))
		return got == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
