package workload

import (
	"fmt"
	"math/rand"

	"rattrap/internal/host"
)

// VirusScan is the anti-virus benchmark: it checks an uploaded target
// against a virus signature database, spawning more I/O requests than the
// other benchmarks (§III-A).
//
// The embedded scanner is a real Aho-Corasick multi-pattern automaton built
// once over a deterministic signature corpus; Execute scans a pseudorandom
// target buffer with a known number of planted signatures and verifies the
// match count. Modeled I/O covers staging the transferred file and
// streaming the (paper-scale) signature database.
type VirusScan struct {
	ac   *ahoCorasick
	sigs [][]byte
}

// Calibration constants: Table II gives a ≈1.73 MB APK and ≈4.5 MB of
// migrated data per request; DB reads make this the most I/O-bound
// workload. The per-byte scale models scanning the full device filesystem
// image rather than the embedded buffer.
const (
	virusCodeSize    = 1730 * host.KB
	virusParamBytes  = 30 * host.KB
	virusFileBytes   = 4480 * host.KB
	virusResultBytes = 80 * host.KB
	virusDBBytes     = 12 * host.MB // modeled signature DB streamed per scan
	virusOpsPerByte  = 11000        // modeled device ops per real scanned byte
	virusSigCount    = 1200
	virusSigSeed     = 0x5ca47a6 // fixed corpus seed: DB identical everywhere
)

type virusParams struct {
	Seed    int64
	SizeKB  int // real target buffer size
	Planted int // signatures planted in the target
}

// NewVirusScan builds the benchmark, constructing the signature automaton.
func NewVirusScan() *VirusScan {
	v := &VirusScan{}
	rng := rand.New(rand.NewSource(virusSigSeed))
	v.sigs = make([][]byte, virusSigCount)
	for i := range v.sigs {
		sig := make([]byte, 16+rng.Intn(33))
		for j := range sig {
			// Signatures avoid 0x00 so they cannot occur in the zero-free
			// target noise by accident... targets use the full byte range,
			// so instead give signatures a distinctive 0xEB prefix.
			sig[j] = byte(rng.Intn(256))
		}
		sig[0], sig[1] = 0xEB, 0xFE // marker prefix: never generated as noise
		v.sigs[i] = sig
	}
	v.ac = newAhoCorasick(v.sigs)
	return v
}

func (v *VirusScan) Name() string         { return NameVirusScan }
func (v *VirusScan) CodeSize() host.Bytes { return virusCodeSize }

// NewTask draws a request: a 64–256 KB real target with 0–6 planted
// signatures; modeled transfer sizes scale with the target.
func (v *VirusScan) NewTask(rng *rand.Rand, seq int) Task {
	p := virusParams{Seed: rng.Int63(), SizeKB: 64 + rng.Intn(193), Planted: rng.Intn(7)}
	scale := float64(p.SizeKB) / 160.0 // mean real size 160 KB -> mean modeled 4.48 MB
	return Task{
		App:        NameVirusScan,
		Method:     "scan",
		Seq:        seq,
		Params:     encodeParams(p),
		ParamBytes: virusParamBytes,
		FileBytes:  host.Bytes(float64(virusFileBytes) * scale),
	}
}

// Execute scans the target and verifies the planted-signature count.
func (v *VirusScan) Execute(t Task) (Metrics, error) {
	var p virusParams
	if err := decodeParams(t.Params, &p); err != nil {
		return Metrics{}, fmt.Errorf("virusscan: %w", err)
	}
	if p.SizeKB <= 0 || p.SizeKB > 4096 {
		return Metrics{}, fmt.Errorf("virusscan: target size %d KB out of range", p.SizeKB)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	target := make([]byte, p.SizeKB*1024)
	for i := range target {
		b := byte(rng.Intn(256))
		if b == 0xEB { // reserve the signature marker for planted content
			b = 0xEC
		}
		target[i] = b
	}
	// Plant signatures at non-overlapping random offsets.
	maxSig := 0
	for _, s := range v.sigs {
		if len(s) > maxSig {
			maxSig = len(s)
		}
	}
	step := len(target) / (p.Planted + 1)
	if step <= maxSig {
		return Metrics{}, fmt.Errorf("virusscan: target too small for %d signatures", p.Planted)
	}
	for i := 0; i < p.Planted; i++ {
		sig := v.sigs[rng.Intn(len(v.sigs))]
		off := i*step + rng.Intn(step-maxSig)
		copy(target[off:], sig)
	}
	matches := v.ac.scan(target)
	if matches != p.Planted {
		return Metrics{}, fmt.Errorf("virusscan: found %d signatures, planted %d", matches, p.Planted)
	}
	verdict := "clean"
	if matches > 0 {
		verdict = fmt.Sprintf("INFECTED(%d)", matches)
	}
	scale := float64(p.SizeKB) / 160.0
	fileBytes := host.Bytes(float64(virusFileBytes) * scale)
	return Metrics{
		Work:        host.Work(float64(len(target)) * virusOpsPerByte / 1e6),
		IOWrite:     fileBytes,                // stage the uploaded target
		IORead:      fileBytes + virusDBBytes, // re-read target + stream DB
		ResultBytes: virusResultBytes,
		RealOps:     int64(len(target)),
		Output:      fmt.Sprintf("scanned=%dKB verdict=%s", p.SizeKB, verdict),
	}, nil
}

// --- Aho-Corasick multi-pattern automaton ---

type acNode struct {
	next map[byte]int
	fail int
	hits int // patterns ending here (including via fail links)
}

type ahoCorasick struct {
	nodes []acNode
}

func newAhoCorasick(patterns [][]byte) *ahoCorasick {
	a := &ahoCorasick{nodes: []acNode{{next: make(map[byte]int)}}}
	// Build the trie.
	for _, pat := range patterns {
		cur := 0
		for _, b := range pat {
			nxt, ok := a.nodes[cur].next[b]
			if !ok {
				a.nodes = append(a.nodes, acNode{next: make(map[byte]int)})
				nxt = len(a.nodes) - 1
				a.nodes[cur].next[b] = nxt
			}
			cur = nxt
		}
		a.nodes[cur].hits++
	}
	// BFS to set failure links (standard construction: the failure target
	// of child v reached by byte b from u is the goto of fail(u) on b).
	queue := make([]int, 0, len(a.nodes))
	for _, n := range a.nodes[0].next {
		queue = append(queue, n) // root children fail to the root
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for b, v := range a.nodes[u].next {
			f := a.nodes[u].fail
			for {
				if n, ok := a.nodes[f].next[b]; ok && n != v {
					a.nodes[v].fail = n
					break
				}
				if f == 0 {
					a.nodes[v].fail = 0
					break
				}
				f = a.nodes[f].fail
			}
			a.nodes[v].hits += a.nodes[a.nodes[v].fail].hits
			queue = append(queue, v)
		}
	}
	return a
}

// scan returns the number of pattern occurrences in data.
func (a *ahoCorasick) scan(data []byte) int {
	matches, cur := 0, 0
	for _, b := range data {
		for {
			if n, ok := a.nodes[cur].next[b]; ok {
				cur = n
				break
			}
			if cur == 0 {
				break
			}
			cur = a.nodes[cur].fail
		}
		matches += a.nodes[cur].hits
	}
	return matches
}
