package workload

import (
	"fmt"
	"math/rand"

	"rattrap/internal/host"
)

// ChessGame is the games benchmark: an Android port of a chess engine
// (CuckooChess in the paper). Each offloading request carries a game
// position; the engine searches for the best move with iterative-deepening
// alpha-beta. Requests are frequent and small — the "intensive network
// communication" workload class.
//
// The embedded engine is real: 0x88 board, full legal move generation
// (promotions included; castling and en passant omitted for brevity),
// material+mobility evaluation, and alpha-beta with capture-first move
// ordering. The modeled work scales the searched node count by
// chessOpsPerNode, representing the deeper search a production engine runs.
type Chess struct{}

// NewChess returns the ChessGame benchmark.
func NewChess() *Chess { return &Chess{} }

// Calibration constants (see DESIGN.md): Table II gives a 2.3 MB APK and
// ≈124 KB of per-request migrated data; the per-node scale makes a typical
// search cost ≈600 device-mops (≈2 s locally on the phone).
const (
	chessCodeSize    = 2300 * host.KB
	chessParamBytes  = 119 * host.KB
	chessResultBytes = 5200 // + interaction replies ≈ Table II's 7.6 KB/request
	// Interactive exchanges per request (game-state streaming between the
	// client UI and the engine) and their per-direction payload.
	chessRoundTrips    = 6
	chessInteractBytes = 400
	// chessOpsPerNode converts real searched nodes to modeled device mops
	// (≈500k device ops per real node: the production engine searches far
	// deeper than the embedded depth-3 instance, whose alpha-beta visits
	// ~1.2k nodes per position).
	chessOpsPerNode = 0.5
)

type chessParams struct {
	Seed   int64
	Prefix int // random half-moves to reach the position
	Depth  int // search depth
}

func (c *Chess) Name() string         { return NameChess }
func (c *Chess) CodeSize() host.Bytes { return chessCodeSize }

// NewTask draws a request: a middlegame position (6–25 random plies from
// the initial position) searched at depth 3.
func (c *Chess) NewTask(rng *rand.Rand, seq int) Task {
	p := chessParams{Seed: rng.Int63(), Prefix: 6 + rng.Intn(20), Depth: 3}
	scale := 0.8 + rng.Float64()*0.4
	return Task{
		App:           NameChess,
		Method:        "bestMove",
		Seq:           seq,
		Params:        encodeParams(p),
		ParamBytes:    host.Bytes(float64(chessParamBytes) * scale),
		RoundTrips:    chessRoundTrips,
		InteractBytes: chessInteractBytes,
	}
}

// Execute searches the position and returns the best move.
func (c *Chess) Execute(t Task) (Metrics, error) {
	var p chessParams
	if err := decodeParams(t.Params, &p); err != nil {
		return Metrics{}, fmt.Errorf("chess: %w", err)
	}
	if p.Depth <= 0 || p.Depth > 6 {
		return Metrics{}, fmt.Errorf("chess: depth %d out of range", p.Depth)
	}
	b := newBoard()
	rng := rand.New(rand.NewSource(p.Seed))
	for i := 0; i < p.Prefix; i++ {
		moves := b.legalMoves()
		if len(moves) == 0 {
			break
		}
		b.make(moves[rng.Intn(len(moves))])
	}
	best, score, nodes := b.search(p.Depth)
	out := fmt.Sprintf("bestmove=%s score=%d nodes=%d", best, score, nodes)
	return Metrics{
		Work:        host.Work(float64(nodes) * chessOpsPerNode),
		ResultBytes: chessResultBytes,
		RealOps:     nodes,
		Output:      out,
	}, nil
}

// --- engine ---

// Piece codes; white positive, black negative.
const (
	empty int8 = 0
	wp    int8 = 1
	wn    int8 = 2
	wb    int8 = 3
	wr    int8 = 4
	wq    int8 = 5
	wk    int8 = 6
)

var pieceValue = [7]int{0, 100, 320, 330, 500, 900, 20000}

var knightOffsets = [8]int{33, 31, 18, 14, -33, -31, -18, -14}
var kingOffsets = [8]int{1, -1, 16, -16, 15, -15, 17, -17}
var bishopDirs = [4]int{15, -15, 17, -17}
var rookDirs = [4]int{1, -1, 16, -16}

type move struct {
	from, to int
	captured int8
	promo    int8
}

func sqName(i int) string {
	return fmt.Sprintf("%c%d", 'a'+i%16, i/16+1)
}

func (m move) String() string {
	s := sqName(m.from) + sqName(m.to)
	if m.promo != empty {
		s += "q"
	}
	return s
}

type board struct {
	sq    [128]int8
	white bool // side to move
	nodes int64
}

// newBoard sets up the initial position.
func newBoard() *board {
	b := &board{white: true}
	back := []int8{wr, wn, wb, wq, wk, wb, wn, wr}
	for f := 0; f < 8; f++ {
		b.sq[f] = back[f]
		b.sq[16+f] = wp
		b.sq[6*16+f] = -wp
		b.sq[7*16+f] = -back[f]
	}
	return b
}

func onBoard(i int) bool { return i&0x88 == 0 }

func (b *board) side(piece int8) int {
	switch {
	case piece > 0:
		return 1
	case piece < 0:
		return -1
	}
	return 0
}

func (b *board) mySign() int8 {
	if b.white {
		return 1
	}
	return -1
}

// attacked reports whether square i is attacked by the side with the given
// sign (+1 white, -1 black).
func (b *board) attacked(i int, bySign int8) bool {
	// Pawns.
	var pawnFrom [2]int
	if bySign > 0 {
		pawnFrom = [2]int{i - 15, i - 17}
	} else {
		pawnFrom = [2]int{i + 15, i + 17}
	}
	for _, f := range pawnFrom {
		if onBoard(f) && b.sq[f] == bySign*wp {
			return true
		}
	}
	// Knights.
	for _, o := range knightOffsets {
		f := i + o
		if onBoard(f) && b.sq[f] == bySign*wn {
			return true
		}
	}
	// Kings.
	for _, o := range kingOffsets {
		f := i + o
		if onBoard(f) && b.sq[f] == bySign*wk {
			return true
		}
	}
	// Sliders.
	for _, d := range bishopDirs {
		for f := i + d; onBoard(f); f += d {
			p := b.sq[f]
			if p == empty {
				continue
			}
			if p == bySign*wb || p == bySign*wq {
				return true
			}
			break
		}
	}
	for _, d := range rookDirs {
		for f := i + d; onBoard(f); f += d {
			p := b.sq[f]
			if p == empty {
				continue
			}
			if p == bySign*wr || p == bySign*wq {
				return true
			}
			break
		}
	}
	return false
}

func (b *board) kingSquare(sign int8) int {
	for i := 0; i < 128; i++ {
		if onBoard(i) && b.sq[i] == sign*wk {
			return i
		}
	}
	return -1
}

// inCheck reports whether the side with the given sign is in check.
func (b *board) inCheck(sign int8) bool {
	k := b.kingSquare(sign)
	if k < 0 {
		return true // king captured in a pseudo-legal line; treat as illegal
	}
	return b.attacked(k, -sign)
}

// pseudoMoves generates pseudo-legal moves for the side to move.
func (b *board) pseudoMoves() []move {
	sign := b.mySign()
	moves := make([]move, 0, 48)
	add := func(from, to int, promo int8) {
		moves = append(moves, move{from: from, to: to, captured: b.sq[to], promo: promo})
	}
	addPawn := func(from, to int) {
		lastRank := 7
		if sign < 0 {
			lastRank = 0
		}
		if to/16 == lastRank {
			add(from, to, sign*wq)
		} else {
			add(from, to, empty)
		}
	}
	for i := 0; i < 128; i++ {
		if !onBoard(i) {
			continue
		}
		p := b.sq[i]
		if p == empty || b.side(p) != int(sign) {
			continue
		}
		switch p * sign {
		case wp:
			fwd := i + 16*int(sign)
			if onBoard(fwd) && b.sq[fwd] == empty {
				addPawn(i, fwd)
				startRank := 1
				if sign < 0 {
					startRank = 6
				}
				fwd2 := i + 32*int(sign)
				if i/16 == startRank && b.sq[fwd2] == empty {
					add(i, fwd2, empty)
				}
			}
			for _, d := range [2]int{15, 17} {
				c := i + d*int(sign)
				if onBoard(c) && b.sq[c] != empty && b.side(b.sq[c]) == -int(sign) {
					addPawn(i, c)
				}
			}
		case wn:
			for _, o := range knightOffsets {
				to := i + o
				if onBoard(to) && b.side(b.sq[to]) != int(sign) {
					add(i, to, empty)
				}
			}
		case wk:
			for _, o := range kingOffsets {
				to := i + o
				if onBoard(to) && b.side(b.sq[to]) != int(sign) {
					add(i, to, empty)
				}
			}
		case wb, wr, wq:
			var dirs []int
			switch p * sign {
			case wb:
				dirs = bishopDirs[:]
			case wr:
				dirs = rookDirs[:]
			default:
				dirs = append(append([]int{}, bishopDirs[:]...), rookDirs[:]...)
			}
			for _, d := range dirs {
				for to := i + d; onBoard(to); to += d {
					target := b.sq[to]
					if b.side(target) == int(sign) {
						break
					}
					add(i, to, empty)
					if target != empty {
						break
					}
				}
			}
		}
	}
	return moves
}

// make applies a move.
func (b *board) make(m move) {
	p := b.sq[m.from]
	if m.promo != empty {
		p = m.promo
	}
	b.sq[m.to] = p
	b.sq[m.from] = empty
	b.white = !b.white
}

// unmake reverses a move made by make.
func (b *board) unmake(m move) {
	b.white = !b.white
	p := b.sq[m.to]
	if m.promo != empty {
		p = b.mySign() * wp
	}
	b.sq[m.from] = p
	b.sq[m.to] = m.captured
}

// legalMoves filters pseudo-legal moves that leave the mover in check.
func (b *board) legalMoves() []move {
	sign := b.mySign()
	var out []move
	for _, m := range b.pseudoMoves() {
		b.make(m)
		if !b.inCheck(sign) {
			out = append(out, m)
		}
		b.unmake(m)
	}
	return out
}

// eval scores the position from the side to move's perspective:
// material plus a small centrality bonus.
func (b *board) eval() int {
	score := 0
	for i := 0; i < 128; i++ {
		if !onBoard(i) {
			continue
		}
		p := b.sq[i]
		if p == empty {
			continue
		}
		v := pieceValue[p*int8(b.side(p))]
		// Centrality: distance from board center, worth a few centipawns.
		f, r := i%16, i/16
		center := 6 - abs(2*f-7)/2 - abs(2*r-7)/2
		v += center * 3
		score += v * b.side(p)
	}
	return score * int(b.mySign())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

const mateScore = 100000

// negamax is alpha-beta search counting visited nodes.
func (b *board) negamax(depth, alpha, beta int) int {
	b.nodes++
	if depth == 0 {
		return b.eval()
	}
	moves := b.legalMoves()
	if len(moves) == 0 {
		if b.inCheck(b.mySign()) {
			return -mateScore - depth // prefer faster mates
		}
		return 0 // stalemate
	}
	orderMoves(moves)
	for _, m := range moves {
		b.make(m)
		score := -b.negamax(depth-1, -beta, -alpha)
		b.unmake(m)
		if score >= beta {
			return beta
		}
		if score > alpha {
			alpha = score
		}
	}
	return alpha
}

// orderMoves puts captures first, most valuable victim first (MVV).
func orderMoves(moves []move) {
	// Insertion sort by capture value descending: move lists are short.
	for i := 1; i < len(moves); i++ {
		m := moves[i]
		v := captureValue(m)
		j := i - 1
		for j >= 0 && captureValue(moves[j]) < v {
			moves[j+1] = moves[j]
			j--
		}
		moves[j+1] = m
	}
}

func captureValue(m move) int {
	if m.captured == empty {
		return 0
	}
	c := m.captured
	if c < 0 {
		c = -c
	}
	return pieceValue[c]
}

// search returns the best move at the given depth, its score, and the
// number of nodes visited.
func (b *board) search(depth int) (move, int, int64) {
	b.nodes = 0
	moves := b.legalMoves()
	if len(moves) == 0 {
		return move{}, -mateScore, 1
	}
	orderMoves(moves)
	best := moves[0]
	alpha := -2 * mateScore
	for _, m := range moves {
		b.make(m)
		score := -b.negamax(depth-1, -2*mateScore, -alpha)
		b.unmake(m)
		if score > alpha {
			alpha = score
			best = m
		}
	}
	return best, alpha, b.nodes
}
