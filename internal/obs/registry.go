package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rattrap/internal/metrics"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (pool size, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a concurrent collection of named counters, gauges and
// latency histograms. Get-or-create lookups take a read lock in the
// common (already exists) case; hot paths are expected to resolve their
// instruments once and hold the pointers, so the registry itself is off
// the per-request path. A nil *Registry is inert: lookups return nil
// instruments whose methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]metrics.Snapshotter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]metrics.Snapshotter),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe
// (returns a nil counter whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named sharded histogram, creating it on first
// use. Nil-safe (returns nil; ShardedHistogram methods are not nil-safe,
// so callers that may hold a nil registry guard the Observe site).
func (r *Registry) Histogram(name string) *metrics.ShardedHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, _ := r.hists[name].(*metrics.ShardedHistogram)
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.hists[name].(*metrics.ShardedHistogram); ok {
		return existing
	}
	h = metrics.NewShardedHistogram()
	r.hists[name] = h
	return h
}

// RegisterHistogram attaches an externally owned histogram (e.g. the
// realtime server's wall-clock request histogram) under name, replacing
// any previous registration.
func (r *Registry) RegisterHistogram(name string, h metrics.Snapshotter) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// ObserveSpan folds a completed span into the registry: each stage record
// becomes one observation on the histogram named prefix + stage name.
// Nil-safe on both the registry and the span.
func (r *Registry) ObserveSpan(prefix string, sp *Span) {
	if r == nil || sp == nil {
		return
	}
	for _, rec := range sp.Stages() {
		r.Histogram(prefix + rec.Stage).Observe(rec.Dur)
	}
}

// HistStat is one histogram's scrape-time summary. Durations are reported
// in nanoseconds so JSON consumers get exact integers.
type HistStat struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Snapshot is a point-in-time view of the whole registry, ready for
// rendering as text or JSON.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot captures every instrument. Nil-safe (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]metrics.Snapshotter, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		snap := h.Snapshot()
		p50, p95, p99 := snap.Percentiles()
		s.Histograms[n] = HistStat{
			Count:  snap.Count(),
			MeanNs: snap.Mean().Nanoseconds(),
			P50Ns:  p50.Nanoseconds(),
			P95Ns:  p95.Nanoseconds(),
			P99Ns:  p99.Nanoseconds(),
			MaxNs:  snap.Max().Nanoseconds(),
		}
	}
	return s
}

// Text renders the snapshot as sorted plain text, one instrument per
// line — the format `curl /metrics` returns by default.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %d\n", n, s.Gauges[n])
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram %s count=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
			n, h.Count,
			time.Duration(h.MeanNs), time.Duration(h.P50Ns),
			time.Duration(h.P95Ns), time.Duration(h.P99Ns), time.Duration(h.MaxNs))
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
