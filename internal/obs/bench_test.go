package obs

import (
	"testing"
	"time"
)

// The disabled-observability contract: a nil span, counter or registry
// record site costs one nil check — no allocation, no atomics, no clock
// reads. These benchmarks are the guard; compare:
//
//	go test -bench 'BenchmarkSpan|BenchmarkCounter' ./internal/obs/
//
// BenchmarkSpanDisabledAdd must be ~1ns and 0 allocs/op; the core
// dispatcher's end-to-end disabled-path guard is BenchmarkDispatcherAcquire
// in internal/core (observability off there by construction).

func BenchmarkSpanDisabledAdd(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Add(StageRun, time.Microsecond)
	}
}

func BenchmarkSpanEnabledAdd(b *testing.B) {
	sp := NewSpan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Add(StageRun, time.Microsecond)
		if len(sp.stages) > 64 {
			sp.stages = sp.stages[:0] // keep the slice bounded; amortized reuse
		}
	}
}

func BenchmarkCounterDisabledInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabledInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkShardedHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Microsecond)
		}
	})
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.Counter(StageRun + string(rune('a'+i))).Add(int64(i))
		h := r.Histogram("h" + string(rune('a'+i)))
		for j := 0; j < 1000; j++ {
			h.Observe(time.Duration(j) * time.Microsecond)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
