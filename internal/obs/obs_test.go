package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rattrap/internal/metrics"
)

func TestSpanBasics(t *testing.T) {
	sp := NewSpan()
	if !sp.Enabled() {
		t.Fatal("new span not enabled")
	}
	sp.Add(StageConnect, 5*time.Millisecond)
	sp.Add(StageTransfer, 2*time.Millisecond)
	sp.Add(StagePrepare, 100*time.Millisecond)
	sp.Add(StageQueueWait, 40*time.Millisecond)
	sp.Add(StageBoot, 60*time.Millisecond)
	sp.Add(StageTransfer, 3*time.Millisecond) // transfer split around the push
	sp.Add(StageExecute, 90*time.Millisecond)

	if got := len(sp.Stages()); got != 7 {
		t.Fatalf("Stages() = %d records, want 7 (insertion order kept)", got)
	}
	agg := sp.ByStage()
	if agg[StageTransfer] != 5*time.Millisecond {
		t.Fatalf("transfer aggregate = %v, want 5ms", agg[StageTransfer])
	}
	// Top-level total excludes the '/'-qualified sub-stages: sub-stages
	// nest inside prepare/execute and must not double-count.
	want := (5 + 2 + 100 + 3 + 90) * time.Millisecond
	if got := sp.TopLevelTotal(); got != want {
		t.Fatalf("TopLevelTotal = %v, want %v", got, want)
	}
	if s := sp.String(); !strings.Contains(s, "connect=5ms") {
		t.Fatalf("String() = %q, want connect=5ms in it", s)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	if sp.Enabled() {
		t.Fatal("nil span reports enabled")
	}
	sp.Add(StageRun, time.Second) // must not panic
	if sp.Stages() != nil || sp.ByStage() != nil || sp.TopLevelTotal() != 0 {
		t.Fatal("nil span leaked state")
	}
	if sp.String() != "span(disabled)" {
		t.Fatalf("nil span String() = %q", sp.String())
	}
}

func TestSpanNegativeClamp(t *testing.T) {
	sp := NewSpan()
	sp.Add(StageRun, -time.Second)
	if d := sp.ByStage()[StageRun]; d != 0 {
		t.Fatalf("negative duration recorded as %v, want 0", d)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Inc()
	if c2 := r.Counter("a"); c2 != c1 {
		t.Fatal("Counter(a) returned a different instance on second lookup")
	}
	if r.Counter("a").Value() != 1 {
		t.Fatal("counter state lost across lookups")
	}
	g := r.Gauge("g")
	g.Set(7)
	if r.Gauge("g").Value() != 7 {
		t.Fatal("gauge state lost across lookups")
	}
	h := r.Histogram("h")
	h.Observe(time.Millisecond)
	if r.Histogram("h") != h {
		t.Fatal("Histogram(h) returned a different instance")
	}
	if r.Histogram("h").Count() != 1 {
		t.Fatal("histogram state lost across lookups")
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("y").Set(3)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil instruments leaked state")
	}
	if r.Histogram("z") != nil {
		t.Fatal("nil registry returned a histogram")
	}
	r.RegisterHistogram("w", metrics.NewLatencyHistogram())
	r.ObserveSpan("p.", NewSpan())
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestObserveSpan(t *testing.T) {
	r := NewRegistry()
	sp := NewSpan()
	sp.Add(StagePrepare, 10*time.Millisecond)
	sp.Add(StageBoot, 6*time.Millisecond)
	sp.Add(StagePrepare, 4*time.Millisecond)
	r.ObserveSpan("s.", sp)
	if n := r.Histogram("s." + StagePrepare).Count(); n != 2 {
		t.Fatalf("s.prepare count = %d, want 2 (one per record)", n)
	}
	if n := r.Histogram("s." + StageBoot).Count(); n != 1 {
		t.Fatalf("s.prepare/boot count = %d, want 1", n)
	}
	r.ObserveSpan("s.", nil) // nil span: no-op
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Gauge("pool").Set(5)
	r.Histogram("lat").Observe(2 * time.Millisecond)
	wall := metrics.NewLatencyHistogram()
	wall.Observe(time.Second)
	r.RegisterHistogram("wall", wall)

	snap := r.Snapshot()
	text := snap.Text()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	wantOrder := []string{
		"counter a.count 1",
		"counter z.count 3",
		"gauge pool 5",
	}
	for i, w := range wantOrder {
		if lines[i] != w {
			t.Fatalf("text line %d = %q, want %q (sorted output)", i, lines[i], w)
		}
	}
	if !strings.Contains(text, "histogram lat count=1") {
		t.Fatalf("text missing lat histogram:\n%s", text)
	}
	if !strings.Contains(text, "histogram wall count=1") {
		t.Fatalf("text missing registered external histogram:\n%s", text)
	}

	buf, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["z.count"] != 3 || back.Gauges["pool"] != 5 {
		t.Fatalf("JSON round-trip lost values: %+v", back)
	}
	if back.Histograms["wall"].Count != 1 || back.Histograms["wall"].MaxNs != time.Second.Nanoseconds() {
		t.Fatalf("JSON wall histogram = %+v", back.Histograms["wall"])
	}
}

func newTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("req").Add(42)
	r.Gauge("pool").Set(3)
	h := r.Histogram("stage.run")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	return r
}

func TestHandlerText(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()
	res, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	buf, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(buf)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if !strings.Contains(body, "counter req 42") {
		t.Fatalf("text body missing counter:\n%s", body)
	}
	if !strings.Contains(body, "histogram stage.run count=100") {
		t.Fatalf("text body missing histogram:\n%s", body)
	}
}

func TestHandlerJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()
	for _, mode := range []string{"?format=json", ""} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+mode, nil)
		if mode == "" {
			req.Header.Set("Accept", "application/json")
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		err = json.NewDecoder(res.Body).Decode(&snap)
		res.Body.Close()
		if err != nil {
			t.Fatalf("mode %q: bad JSON: %v", mode, err)
		}
		if snap.Counters["req"] != 42 || snap.Histograms["stage.run"].Count != 100 {
			t.Fatalf("mode %q: snapshot = %+v", mode, snap)
		}
	}
}

func TestHandlerQuantile(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	res, err := http.Get(srv.URL + "?hist=stage.run&q=0.99")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(string(buf), "stage.run q0.99 ") {
		t.Fatalf("quantile reply: status %d body %q", res.StatusCode, string(buf))
	}

	cases := []struct {
		url  string
		code int
	}{
		{"?hist=stage.run&q=1.5", http.StatusBadRequest}, // out of range → typed error → 400
		{"?hist=stage.run&q=zz", http.StatusBadRequest},  // unparseable
		{"?hist=nope", http.StatusNotFound},              // unknown histogram
	}
	for _, c := range cases {
		res, err := http.Get(srv.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != c.code {
			t.Fatalf("%s: status %d, want %d", c.url, res.StatusCode, c.code)
		}
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()
	res, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", res.StatusCode)
	}
}
