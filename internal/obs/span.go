package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageRecord is one recorded stage: its name and how long it took.
// Records keep insertion order; a stage recorded twice (e.g. transfer
// split around the code push) appears twice and aggregates in ByStage.
type StageRecord struct {
	Stage string
	Dur   time.Duration
}

// Span is one request's stage breakdown. A span is owned by a single
// request flow at a time: the device proc in simulations, the connection
// handler (and the engine procs it injects, which are strictly ordered
// with it) in the realtime server. It is not safe for concurrent writers.
//
// The nil span is the disabled span: every method on it is a no-op costing
// one pointer comparison, which is what makes instrumentation affordable
// to leave in hot paths unconditionally.
type Span struct {
	stages []StageRecord
}

// NewSpan returns an empty, enabled span.
func NewSpan() *Span { return &Span{} }

// Enabled reports whether recording into the span does anything.
func (s *Span) Enabled() bool { return s != nil }

// Add records one stage duration. Negative durations clamp to zero (a
// paced clock read race can produce them in realtime paths). Nil-safe.
func (s *Span) Add(stage string, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.stages = append(s.stages, StageRecord{Stage: stage, Dur: d})
}

// Stages returns the records in insertion order. The slice is the span's
// own backing store; callers must not mutate it. Nil-safe (returns nil).
func (s *Span) Stages() []StageRecord {
	if s == nil {
		return nil
	}
	return s.stages
}

// ByStage aggregates the records into per-stage totals. Nil-safe.
func (s *Span) ByStage() map[string]time.Duration {
	if s == nil {
		return nil
	}
	m := make(map[string]time.Duration, len(s.stages))
	for _, r := range s.stages {
		m[r.Stage] += r.Dur
	}
	return m
}

// TopLevelTotal sums the top-level stages (names without a '/'): the
// span's reconstruction of the end-to-end response time. Nil-safe.
func (s *Span) TopLevelTotal() time.Duration {
	var t time.Duration
	for _, r := range s.Stages() {
		if !strings.Contains(r.Stage, "/") {
			t += r.Dur
		}
	}
	return t
}

// String renders the aggregated breakdown, stages sorted by name.
func (s *Span) String() string {
	if s == nil {
		return "span(disabled)"
	}
	agg := s.ByStage()
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("span(")
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", n, agg[n])
	}
	b.WriteString(")")
	return b.String()
}
