package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rattrap/internal/metrics"
)

// TestRegistryConcurrentWritersAndScrape hammers the registry from many
// goroutines — get-or-create lookups, counter/gauge/histogram writes —
// while another set scrapes snapshots and renders them, then checks the
// totals. Run with -race; the point is that concurrent scrape observes a
// consistent registry without stalling writers.
func TestRegistryConcurrentWritersAndScrape(t *testing.T) {
	r := NewRegistry()
	const (
		writers  = 8
		scrapers = 4
		perG     = 2000
	)
	var wWG, sWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wWG.Add(1)
		go func() {
			defer wWG.Done()
			// Half the work shares instruments, half creates per-goroutine
			// ones: both the fast read-lock path and the create path run hot.
			own := fmt.Sprintf("own.%d", w)
			for i := 0; i < perG; i++ {
				r.Counter("shared.count").Inc()
				r.Counter(own).Inc()
				r.Gauge("shared.gauge").Set(int64(i))
				r.Histogram("shared.hist").Observe(time.Duration(i) * time.Microsecond)
				sp := NewSpan()
				sp.Add(StageRun, time.Duration(i)*time.Microsecond)
				r.ObserveSpan("span.", sp)
			}
		}()
	}
	stop := make(chan struct{})
	for s := 0; s < scrapers; s++ {
		sWG.Add(1)
		go func() {
			defer sWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				_ = snap.Text()
				if _, err := snap.JSON(); err != nil {
					t.Errorf("scrape JSON: %v", err)
					return
				}
				// A snapshot taken mid-write is internally consistent: the
				// merged count never exceeds the final total.
				if n := r.Histogram("shared.hist").Snapshot().Count(); n > writers*perG {
					t.Errorf("snapshot count %d exceeds total writes", n)
					return
				}
			}
		}()
	}
	wWG.Wait()
	close(stop)
	sWG.Wait()

	if got := r.Counter("shared.count").Value(); got != writers*perG {
		t.Fatalf("shared counter = %d, want %d", got, writers*perG)
	}
	for w := 0; w < writers; w++ {
		if got := r.Counter(fmt.Sprintf("own.%d", w)).Value(); got != perG {
			t.Fatalf("own.%d = %d, want %d", w, got, perG)
		}
	}
	if got := r.Histogram("shared.hist").Count(); got != int64(writers*perG) {
		t.Fatalf("shared histogram count = %d, want %d", got, writers*perG)
	}
	if got := r.Histogram("span." + StageRun).Count(); got != int64(writers*perG) {
		t.Fatalf("span fold count = %d, want %d", got, writers*perG)
	}
}

// TestShardedHistogramConcurrentMerge: concurrent Observe against
// concurrent Snapshot merges must never lose or invent observations.
func TestShardedHistogramConcurrentMerge(t *testing.T) {
	sh := metrics.NewShardedHistogram()
	const writers, perG = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sh.Observe(time.Duration(i+1) * time.Microsecond)
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := sh.Snapshot()
			if s.Count() > writers*perG {
				t.Errorf("snapshot count %d exceeds writes", s.Count())
				return
			}
			if s.Count() > 0 {
				s.Percentiles() // must not panic mid-merge
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := sh.Count(); got != int64(writers*perG) {
		t.Fatalf("final count = %d, want %d", got, writers*perG)
	}
	if got := sh.Snapshot().Max(); got != time.Duration(perG)*time.Microsecond {
		t.Fatalf("final max = %v, want %v", got, time.Duration(perG)*time.Microsecond)
	}
}
