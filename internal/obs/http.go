package obs

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"rattrap/internal/metrics"
)

// Handler serves the registry over HTTP as the /metrics endpoint.
//
//	GET /metrics                     plain-text snapshot
//	GET /metrics?format=json         JSON snapshot (also via Accept header)
//	GET /metrics?hist=NAME&q=0.99    one quantile of one histogram
//
// The q parameter is untrusted input: it goes through the non-panicking
// QuantileErr so a bad scrape query produces a 400, never a crashed
// server.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if name := req.URL.Query().Get("hist"); name != "" {
			serveQuantile(w, req, r, name)
			return
		}
		snap := r.Snapshot()
		if wantsJSON(req) {
			buf, err := snap.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.Text())
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// serveQuantile answers /metrics?hist=NAME&q=Q with one quantile reading.
func serveQuantile(w http.ResponseWriter, req *http.Request, r *Registry, name string) {
	if r == nil {
		http.Error(w, "no registry", http.StatusNotFound)
		return
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h == nil {
		http.Error(w, fmt.Sprintf("unknown histogram %q", name), http.StatusNotFound)
		return
	}
	qs := req.URL.Query().Get("q")
	if qs == "" {
		qs = "0.5"
	}
	q, err := strconv.ParseFloat(qs, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad q %q: %v", qs, err), http.StatusBadRequest)
		return
	}
	d, err := h.Snapshot().QuantileErr(q)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, metrics.ErrOutOfRange) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s q%s %d\n", name, qs, d.Nanoseconds())
}
