// Package obs is the request-scoped observability layer: spans that carry
// a per-request stage breakdown through device → realtime server → core
// dispatcher → warehouse → runtime, and a concurrent registry of named
// counters, gauges and latency histograms that aggregates them.
//
// The package is deliberately dependency-free (stdlib plus the repo's own
// metrics package) and clock-free: a Span never reads a clock itself.
// Whoever records a stage computes its duration from the clock that owns
// the code path — the discrete-event engine's virtual clock inside
// simulations, the wall clock in the realtime server's protocol loop — so
// the same instrumentation is bit-deterministic under virtual time and
// honest under real time.
//
// Everything is nil-safe: a nil *Span and a nil *Registry are the
// "observability disabled" states, and every method on them is a pointer
// check that compiles to nearly nothing. Hot paths therefore carry their
// instrumentation unconditionally and pay only when a caller opted in.
package obs

// Stage names: the taxonomy of one offloading request. Top-level stages
// tile the request end-to-end (their durations sum to the response time);
// sub-stages — names with a '/' — attribute time inside a parent stage
// and may leave a residual (e.g. access-control analysis inside prepare).
const (
	// StageConnect is the device↔cloud connection establishment.
	StageConnect = "connect"
	// StageTransfer is all data movement: params, files, code, results.
	StageTransfer = "transfer"
	// StagePrepare is runtime preparation as the device observes it:
	// dispatch, queueing, boot, code staging.
	StagePrepare = "prepare"
	// StageExecute is the computation-execution phase.
	StageExecute = "execute"

	// StageQueueWait is time spent parked in the dispatcher's FIFO wait
	// ring (inside prepare).
	StageQueueWait = "prepare/queue_wait"
	// StageBoot is a cold runtime boot on the request path (inside
	// prepare), including the dispatcher-registration handshake.
	StageBoot = "prepare/boot"
	// StageCodeStage is server-side staging of pushed code: the warehouse
	// write plus the ClassLoader load (inside prepare).
	StageCodeStage = "prepare/code_stage"
	// StageTemplateClone is a template-clone boot on the request path: the
	// COW fast path that replaces a cold StageBoot (inside prepare).
	StageTemplateClone = "prepare/template_clone"
	// StageChunkStage is content-addressed chunk staging during a delta
	// code push: writing only the missing chunks into the warehouse's
	// chunk store (inside prepare).
	StageChunkStage = "prepare/chunk_stage"
	// StageWarehouseLoad is a warehouse-sourced code load — the cache hit
	// that replaced a device transfer (inside execute).
	StageWarehouseLoad = "execute/warehouse_load"
	// StageRun is the pure workload execution inside the runtime (inside
	// execute).
	StageRun = "execute/run"
)
