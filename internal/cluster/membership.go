package cluster

// Versioned placement: the Membership is an epoch-numbered placement
// table over a stable set of shard ids. PR 5's static Ring answered
// "which of N frozen shards owns this AID"; the Membership answers the
// same question for a cluster whose capacity changes at runtime. Shard
// ids are append-only and never reused — a shard that leaves or fails
// keeps its id forever (Dead) — so routing decisions taken under an old
// epoch remain attributable, and per-shard CID/instrument prefixes stay
// unambiguous across the cluster's whole history.
//
// The epoch is the routing-table version: it advances exactly when the
// set of routable shards changes (a join commissioning, a leave
// completing its handoff, a failure). Marking a shard Joining or
// Draining does NOT advance the epoch — a joining shard is not routable
// until its chunk ranges have migrated in, and a draining shard keeps
// serving (read-your-writes) until its ranges have migrated out. That
// ordering is what lets in-flight requests keep their idempotency
// window: a request routed under epoch E holds its shard for the whole
// session, and the epoch only flips after the data it might read has a
// new home.

// ShardState is one shard's position in the membership lifecycle.
type ShardState uint8

const (
	// ShardLive shards are routable: they own vnode ranges on the ring.
	ShardLive ShardState = iota
	// ShardJoining shards are booted and receiving migrated chunk
	// ranges, but own no ring points yet; commissioning flips them Live.
	ShardJoining
	// ShardDraining shards are leaving gracefully: still routable (they
	// keep serving their ranges) while their entries migrate out.
	ShardDraining
	// ShardDead shards have left or failed; they own nothing and are
	// never routed to again. Ids are not reused.
	ShardDead
)

func (s ShardState) String() string {
	switch s {
	case ShardLive:
		return "live"
	case ShardJoining:
		return "joining"
	case ShardDraining:
		return "draining"
	case ShardDead:
		return "dead"
	}
	return "unknown"
}

// Membership is the epoch-numbered placement table: shard states plus a
// consistent-hash ring over the routable shards and the replica factor R.
// It is a passive table — the Cluster mutates it and drives migration;
// the realtime server holds a static one purely for routing.
type Membership struct {
	epoch    uint64
	vnodes   int
	replicas int
	states   []ShardState // by shard id; append-only
	ring     *Ring        // over routable (Live | Draining) shards
}

// NewMembership builds the epoch-0 table: n Live shards (ids 0..n-1),
// vnodes points each (<= 0 selects DefaultVnodes), replica factor r
// (< 1 selects 1). Epoch 0 with a frozen membership is exactly PR 5's
// static ring, which is what keeps the 1-shard goldens byte-identical.
func NewMembership(n, vnodes, r int) *Membership {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	m := &Membership{vnodes: vnodes, replicas: r, states: make([]ShardState, n)}
	m.rebuild()
	return m
}

// rebuild reconstructs the ring from the current routable set.
func (m *Membership) rebuild() {
	m.ring = NewRingMembers(m.routable(), m.vnodes)
}

func (m *Membership) routable() []int {
	ids := make([]int, 0, len(m.states))
	for id, st := range m.states {
		if st == ShardLive || st == ShardDraining {
			ids = append(ids, id)
		}
	}
	return ids
}

// Epoch returns the current routing-table version.
func (m *Membership) Epoch() uint64 { return m.epoch }

// Len returns the total number of shard slots ever created (including
// Dead ones — slot i's id is i forever).
func (m *Membership) Len() int { return len(m.states) }

// Replicas returns the configured replica factor R.
func (m *Membership) Replicas() int { return m.replicas }

// State returns shard id's lifecycle state.
func (m *Membership) State(id int) ShardState {
	if id < 0 || id >= len(m.states) {
		return ShardDead
	}
	return m.states[id]
}

// Routable reports whether shard id currently owns ring ranges.
func (m *Membership) Routable(id int) bool {
	st := m.State(id)
	return st == ShardLive || st == ShardDraining
}

// LiveCount returns how many shards are currently routable.
func (m *Membership) LiveCount() int { return m.ring.Shards() }

// Ring exposes the current routing ring (treat as read-only; it is
// replaced wholesale on every epoch advance).
func (m *Membership) Ring() *Ring { return m.ring }

// Primary returns the shard owning aid under the current epoch.
func (m *Membership) Primary(aid string) int { return m.ring.Owner(aid) }

// ReplicaSet returns aid's replica placement under the current epoch:
// the first R distinct routable shards clockwise of its hash, primary
// first (fewer if the cluster has fewer routable shards).
func (m *Membership) ReplicaSet(aid string) []int {
	return m.ring.Successors(aid, m.replicas)
}

// Route is the epoch-stamped routing call: the primary shard for aid and
// the epoch the answer is valid under. Callers that pin work to the
// returned shard (every session does) keep that binding even if the
// epoch advances underneath them — the handoff rule that preserves the
// idempotency window across migrations.
func (m *Membership) Route(aid string) (shard int, epoch uint64) {
	return m.ring.Owner(aid), m.epoch
}

// Add appends a new Joining shard slot and returns its id. The ring (and
// epoch) are untouched: the shard owns nothing until Commission.
func (m *Membership) Add() int {
	m.states = append(m.states, ShardJoining)
	return len(m.states) - 1
}

// RingWith returns the ring as it will look once id is routable — the
// placement migration copies toward before commissioning flips routing.
func (m *Membership) RingWith(id int) *Ring {
	ids := m.routable()
	present := false
	for _, s := range ids {
		if s == id {
			present = true
		}
	}
	if !present {
		ids = append(ids, id)
	}
	return NewRingMembers(ids, m.vnodes)
}

// RingWithout returns the ring as it will look once id has left.
func (m *Membership) RingWithout(id int) *Ring {
	ids := m.routable()
	out := ids[:0]
	for _, s := range ids {
		if s != id {
			out = append(out, s)
		}
	}
	return NewRingMembers(out, m.vnodes)
}

// Commission flips a Joining shard Live and advances the epoch: from this
// instant new routes may land on it.
func (m *Membership) Commission(id int) {
	if m.State(id) != ShardJoining {
		return
	}
	m.states[id] = ShardLive
	m.epoch++
	m.rebuild()
}

// BeginDrain marks a Live shard Draining. Routing (and the epoch) are
// unchanged — the shard keeps serving its ranges while they migrate out,
// which is the read-your-writes half of the handoff protocol.
func (m *Membership) BeginDrain(id int) bool {
	if m.State(id) != ShardLive {
		return false
	}
	m.states[id] = ShardDraining
	return true
}

// CompleteDrain retires a Draining shard: Dead, epoch advanced, ring
// rebuilt without it. Only called after its ranges have new homes.
func (m *Membership) CompleteDrain(id int) {
	if m.State(id) != ShardDraining {
		return
	}
	m.states[id] = ShardDead
	m.epoch++
	m.rebuild()
}

// Fail retires a shard abruptly (crash model): Dead immediately, epoch
// advanced, no handoff — its ranges fall to the surviving replicas.
// Joining and Draining shards can fail too.
func (m *Membership) Fail(id int) bool {
	st := m.State(id)
	if st == ShardDead || id < 0 || id >= len(m.states) {
		return false
	}
	m.states[id] = ShardDead
	m.epoch++
	m.rebuild()
	return true
}
