// Package cluster scales Rattrap horizontally: a Cluster is N core.Platform
// shards behind one offload.Gateway, with AIDs consistent-hashed across the
// shards. Routing by AID — not by device — preserves the paper's App
// Warehouse story at cluster scale: every request for an app lands on the
// one shard whose warehouse holds (or will hold) that app's code, so the
// cache-hit rate of a shard equals the cache-hit rate the paper measured
// for a single server. Nothing is shared between shards: each has its own
// server, kernel, runtime pool, warehouse, and admission bounds, which is
// what makes the design replicate — a shard is exactly the single-node
// platform of §IV, unmodified.
//
// Placement lives in a versioned Membership (membership.go): an
// epoch-numbered table that shards can join, leave, or fall out of at
// runtime. A membership change moves only the vnode ranges the ring
// reassigns, and what crosses between shards is the warehouse's 64 KiB
// content-addressed chunks under the MissingChunks negotiation — a joining
// shard pulls only blocks it does not already hold. With Replicas > 1
// every warehouse entry is fanned out to the R shards clockwise of its
// AID, so losing a shard loses no cached code.
//
// A Cluster runs all shards on one sim.Engine, so results in virtual time
// are bit-deterministic per seed, and a 1-shard Cluster is byte-identical
// to a bare Platform (pinned by the experiments goldens). The realtime
// serving layer shards differently — one engine and pacing driver per
// shard, for wall-clock parallelism — but routes with this package's
// Membership, so placement agrees between the two modes.
package cluster

import (
	"errors"
	"fmt"

	"rattrap/internal/core"
	"rattrap/internal/host"
	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// ErrShardDown reports an operation against a shard that crashed after the
// session was routed to it. It is retryable by design: the failure already
// advanced the membership epoch, so the caller's next Prepare routes to a
// surviving shard. Retry loops should treat it like a transient transport
// fault (alongside faults.IsTransient and offload.ErrOverloaded).
var ErrShardDown = errors.New("cluster: shard down")

// ShardError tags a platform error with the shard that produced it. It
// wraps rather than flattens: errors.As still finds the shard's
// offload.OverloadedError (whose RetryAfter hint reflects that shard's own
// queue and hold-time EWMA), and errors.Is still matches core.ErrBlocked
// and ErrShardDown.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the shard's error to errors.Is / errors.As.
func (e *ShardError) Unwrap() error { return e.Err }

// ShardPrefix is the per-shard instrument/CID label convention shared by
// the sim Cluster and the realtime serving layer.
func ShardPrefix(i int) string { return fmt.Sprintf("shard%d.", i) }

// CIDPrefix is the per-shard runtime-ID prefix ("s2-cac-1").
func CIDPrefix(i int) string { return fmt.Sprintf("s%d-", i) }

// MigrationStats accumulates what the membership machinery moved: joins,
// removals and failures applied; entries and bytes migrated (DeltaBytes is
// what the chunk negotiation actually transferred, FullBytes what copying
// whole blobs would have cost); entries dropped from shards that left a
// replica set; and the replica fan-out's background copies.
type MigrationStats struct {
	Joins    int
	Removals int
	Failures int

	EntriesMoved   int
	DeltaBytes     host.Bytes
	FullBytes      host.Bytes
	EntriesDropped int

	ReplicaCopies int
	ReplicaDelta  host.Bytes
	Repaired      int
}

// Cluster implements offload.Gateway over a versioned set of Platform
// shards on one engine. The shards slice is indexed by stable shard id and
// append-only: a dead shard keeps its slot (and its platform, for
// post-mortem inspection) forever.
type Cluster struct {
	e      *sim.Engine
	cfg    core.Config
	reg    *obs.Registry
	mem    *Membership
	shards []*core.Platform
	failed []bool // crash-model flag: failed shards reject in-flight ops

	// onShardAdded, when set, is invoked synchronously for every shard
	// booted after construction (fault-hook wiring, instrumentation).
	onShardAdded func(id int, pl *core.Platform)

	// Membership operations serialize through this queue: each op's
	// migration runs on its own spawned proc, and a finished proc starts
	// the next — never two rebalances in flight, and no perpetual procs
	// (the engine must drain when the cluster quiesces).
	queue []func(p *sim.Proc)
	busy  bool

	stats MigrationStats
}

// New builds an n-shard cluster on engine e with replica factor 1. Every
// shard gets an identical copy of cfg — including cfg.Autoscale, so an
// elastic cluster runs one independent control loop per shard, each sizing
// its own pool from its own queue; idle shards scale to MinRuntimes (or to
// zero). With n > 1 each shard's CIDs are prefixed "sN-" so runtime IDs
// are unique cluster-wide. With n == 1 the configuration is left untouched
// — a 1-shard Cluster must be indistinguishable from the bare Platform it
// wraps.
func New(e *sim.Engine, cfg core.Config, n int) *Cluster {
	return NewReplicated(e, cfg, n, 1)
}

// NewReplicated builds an n-shard cluster whose warehouse entries fan out
// to r replicas (r clamped to [1, n]). r == 1 is exactly New.
func NewReplicated(e *sim.Engine, cfg core.Config, n, r int) *Cluster {
	if n < 1 {
		n = 1
	}
	if r > n {
		r = n
	}
	c := &Cluster{e: e, cfg: cfg, mem: NewMembership(n, 0, r)}
	for i := 0; i < n; i++ {
		scfg := cfg
		if n > 1 {
			scfg.CIDPrefix = CIDPrefix(i)
		}
		c.shards = append(c.shards, core.New(e, scfg))
		c.failed = append(c.failed, false)
	}
	return c
}

// Shards returns the total shard-slot count, dead slots included (slot i
// is shard id i forever).
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i's platform (valid for dead shards too).
func (c *Cluster) Shard(i int) *core.Platform { return c.shards[i] }

// Membership exposes the placement table (epoch, states, replica sets).
func (c *Cluster) Membership() *Membership { return c.mem }

// Epoch returns the current routing-table version.
func (c *Cluster) Epoch() uint64 { return c.mem.Epoch() }

// Owner returns the shard id owning aid under the current epoch.
func (c *Cluster) Owner(aid string) int { return c.mem.Primary(aid) }

// MigrationStats returns a snapshot of the migration counters.
func (c *Cluster) MigrationStats() MigrationStats { return c.stats }

// OnShardAdded registers a hook run synchronously for every shard booted
// by AddShard — the scenario runner uses it to wire fault-injection hooks
// into late-joining shards exactly as Run wired the founding ones.
func (c *Cluster) OnShardAdded(fn func(id int, pl *core.Platform)) { c.onShardAdded = fn }

// SetObs installs one registry across all shards. With multiple shards,
// every instrument is prefixed "shardN." so one scrape separates them; a
// 1-shard cluster keeps the platform's plain instrument names. The
// registry is remembered so shards added later self-register.
func (c *Cluster) SetObs(reg *obs.Registry) {
	c.reg = reg
	for i, pl := range c.shards {
		if len(c.shards) > 1 {
			pl.SetObsPrefixed(reg, ShardPrefix(i))
		} else {
			pl.SetObs(reg)
		}
	}
}

// Prepare implements offload.Gateway: route the request to the shard
// owning its AID under the current epoch. Errors come back wrapped in
// *ShardError (unwrapped typed errors intact); the returned session wraps
// the shard's session the same way and stays pinned to its shard for its
// whole lifetime — routing changes never migrate an in-flight session, so
// the PR 2 idempotency window (device, seq) keeps pointing at the dedup
// state that saw the first attempt.
func (c *Cluster) Prepare(p *sim.Proc, req offload.ExecRequest) (offload.Session, error) {
	shard := c.mem.Primary(req.AID)
	if c.failed[shard] {
		// Every routable shard is gone (the ring routes to a dead shard
		// only when no live member remains).
		return nil, &ShardError{Shard: shard, Err: ErrShardDown}
	}
	sess, err := c.shards[shard].Prepare(p, req)
	if err != nil {
		return nil, &ShardError{Shard: shard, Err: err}
	}
	return &shardSession{Session: sess, shard: shard, c: c}, nil
}

// Runtimes merges every shard's Container DB listing, shard 0 first. The
// records are copies (ContainerDB.List semantics) and CIDs are unique
// cluster-wide thanks to the per-shard prefix.
func (c *Cluster) Runtimes() []*core.RuntimeInfo {
	var out []*core.RuntimeInfo
	for _, pl := range c.shards {
		out = append(out, pl.DB().List()...)
	}
	return out
}

// PoolSizes returns every shard's current runtime-pool size, in shard
// order — the per-shard view of the autoscalers' sizing decisions.
func (c *Cluster) PoolSizes() []int {
	out := make([]int, len(c.shards))
	for i, pl := range c.shards {
		out[i] = pl.RuntimeCount()
	}
	return out
}

// QueueLengths returns every shard's dispatcher wait-ring depth, in shard
// order.
func (c *Cluster) QueueLengths() []int {
	out := make([]int, len(c.shards))
	for i, pl := range c.shards {
		out[i] = pl.QueueLength()
	}
	return out
}

// WarehouseStats sums entries and hits across shards (Rattrap kinds only;
// zero for baselines).
func (c *Cluster) WarehouseStats() (entries, hits int) {
	for _, pl := range c.shards {
		if wh := pl.Warehouse(); wh != nil {
			e, h, _ := wh.Stats()
			entries += e
			hits += h
		}
	}
	return entries, hits
}

// shardSession pins a session to the shard that prepared it and tags
// session-level errors with that shard. If the shard crashes mid-session,
// further operations fail fast with ErrShardDown (wrapped, so errors.Is
// sees it); work already inside the platform completes — the crash model
// cuts the shard off from new operations, it does not unwind virtual time.
type shardSession struct {
	offload.Session
	shard int
	c     *Cluster
}

func (s *shardSession) PushCode(p *sim.Proc, push offload.CodePush) error {
	if s.c.failed[s.shard] {
		return &ShardError{Shard: s.shard, Err: ErrShardDown}
	}
	if err := s.Session.PushCode(p, push); err != nil {
		return &ShardError{Shard: s.shard, Err: err}
	}
	s.c.fanOut(s.shard, push.AID)
	return nil
}

func (s *shardSession) Execute(p *sim.Proc) (offload.Result, error) {
	if s.c.failed[s.shard] {
		return offload.Result{}, &ShardError{Shard: s.shard, Err: ErrShardDown}
	}
	res, err := s.Session.Execute(p)
	if err != nil {
		// ErrCodeNeeded is part of the Gateway protocol (callers test for
		// it with errors.Is); wrapping keeps that working while naming the
		// shard in the flattened message.
		return res, &ShardError{Shard: s.shard, Err: err}
	}
	return res, nil
}
