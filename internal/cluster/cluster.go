// Package cluster scales Rattrap horizontally: a Cluster is N core.Platform
// shards behind one offload.Gateway, with AIDs consistent-hashed across the
// shards. Routing by AID — not by device — preserves the paper's App
// Warehouse story at cluster scale: every request for an app lands on the
// one shard whose warehouse holds (or will hold) that app's code, so the
// cache-hit rate of a shard equals the cache-hit rate the paper measured
// for a single server. Nothing is shared between shards: each has its own
// server, kernel, runtime pool, warehouse, and admission bounds, which is
// what makes the design replicate — a shard is exactly the single-node
// platform of §IV, unmodified.
//
// A Cluster runs all shards on one sim.Engine, so results in virtual time
// are bit-deterministic per seed, and a 1-shard Cluster is byte-identical
// to a bare Platform (pinned by the experiments goldens). The realtime
// serving layer shards differently — one engine and pacing driver per
// shard, for wall-clock parallelism — but routes with this package's Ring,
// so placement agrees between the two modes.
package cluster

import (
	"fmt"

	"rattrap/internal/core"
	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// ShardError tags a platform error with the shard that produced it. It
// wraps rather than flattens: errors.As still finds the shard's
// offload.OverloadedError (whose RetryAfter hint reflects that shard's own
// queue and hold-time EWMA), and errors.Is still matches core.ErrBlocked.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the shard's error to errors.Is / errors.As.
func (e *ShardError) Unwrap() error { return e.Err }

// ShardPrefix is the per-shard instrument/CID label convention shared by
// the sim Cluster and the realtime serving layer.
func ShardPrefix(i int) string { return fmt.Sprintf("shard%d.", i) }

// CIDPrefix is the per-shard runtime-ID prefix ("s2-cac-1").
func CIDPrefix(i int) string { return fmt.Sprintf("s%d-", i) }

// Cluster implements offload.Gateway over N Platform shards on one engine.
type Cluster struct {
	shards []*core.Platform
	ring   *Ring
}

// New builds an n-shard cluster on engine e. Every shard gets an identical
// copy of cfg — including cfg.Autoscale, so an elastic cluster runs one
// independent control loop per shard, each sizing its own pool from its
// own queue; idle shards scale to MinRuntimes (or to zero). With n > 1
// each shard's CIDs are prefixed "sN-" so runtime IDs are unique
// cluster-wide. With n == 1 the configuration is left untouched — a
// 1-shard Cluster must be indistinguishable from the bare Platform it
// wraps.
func New(e *sim.Engine, cfg core.Config, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{ring: NewRing(n, 0)}
	for i := 0; i < n; i++ {
		scfg := cfg
		if n > 1 {
			scfg.CIDPrefix = CIDPrefix(i)
		}
		c.shards = append(c.shards, core.New(e, scfg))
	}
	return c
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i's platform.
func (c *Cluster) Shard(i int) *core.Platform { return c.shards[i] }

// Owner returns the shard index owning aid.
func (c *Cluster) Owner(aid string) int { return c.ring.Owner(aid) }

// SetObs installs one registry across all shards. With multiple shards,
// every instrument is prefixed "shardN." so one scrape separates them; a
// 1-shard cluster keeps the platform's plain instrument names.
func (c *Cluster) SetObs(reg *obs.Registry) {
	for i, pl := range c.shards {
		if len(c.shards) > 1 {
			pl.SetObsPrefixed(reg, ShardPrefix(i))
		} else {
			pl.SetObs(reg)
		}
	}
}

// Prepare implements offload.Gateway: route the request to the shard
// owning its AID. Errors come back wrapped in *ShardError (unwrapped
// typed errors intact); the returned session wraps the shard's session
// the same way.
func (c *Cluster) Prepare(p *sim.Proc, req offload.ExecRequest) (offload.Session, error) {
	shard := c.ring.Owner(req.AID)
	sess, err := c.shards[shard].Prepare(p, req)
	if err != nil {
		return nil, &ShardError{Shard: shard, Err: err}
	}
	return &shardSession{Session: sess, shard: shard}, nil
}

// Runtimes merges every shard's Container DB listing, shard 0 first. The
// records are copies (ContainerDB.List semantics) and CIDs are unique
// cluster-wide thanks to the per-shard prefix.
func (c *Cluster) Runtimes() []*core.RuntimeInfo {
	var out []*core.RuntimeInfo
	for _, pl := range c.shards {
		out = append(out, pl.DB().List()...)
	}
	return out
}

// PoolSizes returns every shard's current runtime-pool size, in shard
// order — the per-shard view of the autoscalers' sizing decisions.
func (c *Cluster) PoolSizes() []int {
	out := make([]int, len(c.shards))
	for i, pl := range c.shards {
		out[i] = pl.RuntimeCount()
	}
	return out
}

// QueueLengths returns every shard's dispatcher wait-ring depth, in shard
// order.
func (c *Cluster) QueueLengths() []int {
	out := make([]int, len(c.shards))
	for i, pl := range c.shards {
		out[i] = pl.QueueLength()
	}
	return out
}

// WarehouseStats sums entries and hits across shards (Rattrap kinds only;
// zero for baselines).
func (c *Cluster) WarehouseStats() (entries, hits int) {
	for _, pl := range c.shards {
		if wh := pl.Warehouse(); wh != nil {
			e, h, _ := wh.Stats()
			entries += e
			hits += h
		}
	}
	return entries, hits
}

// shardSession tags session-level errors with the owning shard.
type shardSession struct {
	offload.Session
	shard int
}

func (s *shardSession) PushCode(p *sim.Proc, push offload.CodePush) error {
	if err := s.Session.PushCode(p, push); err != nil {
		return &ShardError{Shard: s.shard, Err: err}
	}
	return nil
}

func (s *shardSession) Execute(p *sim.Proc) (offload.Result, error) {
	res, err := s.Session.Execute(p)
	if err != nil {
		// ErrCodeNeeded is part of the Gateway protocol (callers test for
		// it with errors.Is); wrapping keeps that working while naming the
		// shard in the flattened message.
		return res, &ShardError{Shard: s.shard, Err: err}
	}
	return res, nil
}
