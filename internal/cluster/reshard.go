package cluster

import (
	"sort"

	"rattrap/internal/core"
	"rattrap/internal/sim"
)

// Live resharding: AddShard / RemoveShard / FailShard mutate the
// Membership at runtime and drive the chunk-level warehouse migration
// that makes the new placement real. The protocol per operation:
//
//	join    boot platform (Joining, unroutable) → copy the vnode ranges
//	        the prospective ring assigns it (MissingChunks delta, so only
//	        absent blocks transfer) → Commission (epoch++, routable) →
//	        drop the moved ranges from shards that left their replica set
//	leave   BeginDrain (still routable: read-your-writes until handoff
//	        completes) → copy its entries to their next owners →
//	        CompleteDrain (epoch++, unroutable) → retire the pool
//	fail    Fail (epoch++ immediately, no handoff) → retire the pool →
//	        re-replicate under-replicated entries from survivors (R > 1;
//	        at R = 1 the cached code is simply lost and devices re-push
//	        on demand — the cold-start tax replicas exist to kill)
//
// Operations serialize through the cluster's work queue: membership state
// flips synchronously (routing changes take effect at the call), but the
// data motion runs one rebalance at a time on spawned procs, in
// submission order. Every proc terminates, so the engine still drains
// when the cluster quiesces.

// AddShard boots a new shard into the cluster and returns its id. The
// shard starts Joining — booted, receiving its vnode ranges, not yet
// routable — and is commissioned (epoch advance, traffic shifts) once the
// migration completes.
func (c *Cluster) AddShard() int {
	id := c.mem.Add()
	scfg := c.cfg
	scfg.CIDPrefix = CIDPrefix(id)
	pl := core.New(c.e, scfg)
	c.shards = append(c.shards, pl)
	c.failed = append(c.failed, false)
	if c.reg != nil {
		pl.SetObsPrefixed(c.reg, ShardPrefix(id))
	}
	if c.onShardAdded != nil {
		c.onShardAdded(id, pl)
	}
	c.enqueue(func(p *sim.Proc) { c.join(p, id) })
	return id
}

// RemoveShard begins a graceful leave: the shard keeps serving (Draining
// is routable) while its entries migrate to their next owners, then drops
// out of the ring and drains its pool. Returns false if the shard is not
// currently Live.
func (c *Cluster) RemoveShard(id int) bool {
	if id < 0 || id >= len(c.shards) || !c.mem.BeginDrain(id) {
		return false
	}
	c.enqueue(func(p *sim.Proc) { c.leave(p, id) })
	return true
}

// FailShard crashes a shard: immediately unroutable (epoch advance), new
// operations on in-flight sessions fail with ErrShardDown, its pool is
// retired, and — with replicas — surviving copies re-replicate to restore
// R. Returns false if the shard is already dead.
func (c *Cluster) FailShard(id int) bool {
	if id < 0 || id >= len(c.shards) || !c.mem.Fail(id) {
		return false
	}
	c.failed[id] = true
	c.stats.Failures++
	c.retire(id)
	if c.mem.Replicas() > 1 {
		c.enqueue(func(p *sim.Proc) { c.repair(p) })
	}
	return true
}

// enqueue appends one rebalance work item and starts the pump if idle.
func (c *Cluster) enqueue(work func(p *sim.Proc)) {
	c.queue = append(c.queue, work)
	c.pump()
}

// pump runs the next queued rebalance on its own proc; the proc chains to
// the next item when it finishes. busy guarantees one rebalance in flight.
func (c *Cluster) pump() {
	if c.busy || len(c.queue) == 0 {
		return
	}
	c.busy = true
	work := c.queue[0]
	c.queue = c.queue[1:]
	c.e.Spawn("cluster-rebalance", func(p *sim.Proc) {
		work(p)
		c.busy = false
		c.pump()
	})
}

// join migrates the prospective vnode ranges onto Joining shard id, then
// commissions it. Aborts quietly if the shard failed while queued.
func (c *Cluster) join(p *sim.Proc, id int) {
	if c.mem.State(id) != ShardJoining {
		return
	}
	next := c.mem.RingWith(id)
	r := c.mem.Replicas()
	target := c.shards[id].Warehouse()
	if target != nil {
		for s := range c.shards {
			if s == id || !c.mem.Routable(s) {
				continue
			}
			src := c.shards[s].Warehouse()
			if src == nil {
				continue
			}
			ents := src.ExportRange(func(aid string) bool {
				return containsShard(next.Successors(aid, r), id)
			})
			for _, ent := range ents {
				delta, full, err := target.ImportEntry(p, ent)
				if err != nil || full == 0 {
					continue // import error, or already held (idempotent)
				}
				c.stats.EntriesMoved++
				c.stats.DeltaBytes += delta
				c.stats.FullBytes += full
			}
		}
		target.EnforceCapacity()
	}
	if c.mem.State(id) != ShardJoining {
		return // failed during the copy; the imported entries die with it
	}
	c.mem.Commission(id)
	c.stats.Joins++
	c.dropOrphans()
}

// leave migrates a Draining shard's entries to their next owners, then
// completes the drain and retires the pool.
func (c *Cluster) leave(p *sim.Proc, id int) {
	if c.mem.State(id) != ShardDraining {
		return
	}
	next := c.mem.RingWithout(id)
	r := c.mem.Replicas()
	if src := c.shards[id].Warehouse(); src != nil {
		for _, ent := range src.ExportRange(func(string) bool { return true }) {
			for _, t := range next.Successors(ent.AID, r) {
				tw := c.shards[t].Warehouse()
				if tw == nil {
					continue
				}
				delta, full, err := tw.ImportEntry(p, ent)
				if err != nil || full == 0 {
					continue
				}
				c.stats.EntriesMoved++
				c.stats.DeltaBytes += delta
				c.stats.FullBytes += full
			}
		}
	}
	if c.mem.State(id) != ShardDraining {
		return
	}
	c.mem.CompleteDrain(id)
	c.stats.Removals++
	c.retire(id)
	c.dropOrphans()
}

// repair restores the replica factor after a failure: every AID held by
// fewer shards than its replica set asks for is re-copied from a
// surviving holder. Iteration is sorted so the transfer schedule is
// deterministic.
func (c *Cluster) repair(p *sim.Proc) {
	holders := make(map[string][]int)
	for s := range c.shards {
		if !c.mem.Routable(s) {
			continue
		}
		wh := c.shards[s].Warehouse()
		if wh == nil {
			continue
		}
		for _, aid := range wh.AIDs() {
			holders[aid] = append(holders[aid], s)
		}
	}
	aids := make([]string, 0, len(holders))
	for aid := range holders {
		aids = append(aids, aid)
	}
	sort.Strings(aids)
	for _, aid := range aids {
		have := holders[aid]
		src := c.shards[have[0]].Warehouse()
		for _, t := range c.mem.ReplicaSet(aid) {
			if containsShard(have, t) {
				continue
			}
			tw := c.shards[t].Warehouse()
			if tw == nil {
				continue
			}
			ents := src.ExportRange(func(a string) bool { return a == aid })
			if len(ents) != 1 {
				continue
			}
			delta, full, err := tw.ImportEntry(p, ents[0])
			if err != nil || full == 0 {
				continue
			}
			c.stats.Repaired++
			c.stats.DeltaBytes += delta
			c.stats.FullBytes += full
		}
	}
}

// dropOrphans removes, from every routable shard, entries whose replica
// set no longer includes it — the "only moved ranges transfer" guarantee's
// other half: moved ranges also leave their old home. An in-flight session
// whose entry is dropped underneath it degrades to ErrCodeNeeded and the
// device re-pushes; nothing breaks, one transfer is wasted.
func (c *Cluster) dropOrphans() {
	for s := range c.shards {
		if !c.mem.Routable(s) {
			continue
		}
		wh := c.shards[s].Warehouse()
		if wh == nil {
			continue
		}
		for _, aid := range wh.AIDs() {
			if !containsShard(c.mem.ReplicaSet(aid), s) && wh.DropEntry(aid) {
				c.stats.EntriesDropped++
			}
		}
	}
}

// retire winds a dead or drained shard's pool down: every runtime is
// cordoned (in-flight work finishes, then the slot drains through the
// lifecycle FSM), and the sizing floor drops to zero so an autoscaler
// stops re-warming capacity nothing routes to.
func (c *Cluster) retire(id int) {
	pl := c.shards[id]
	for _, ri := range pl.DB().List() {
		pl.CordonRuntime(ri.CID)
	}
	pl.SetPoolBounds(0, 1)
}

// fanOut replicates a freshly pushed entry from its primary to the rest
// of its replica set, asynchronously (the pushing device does not wait on
// intra-cluster copies). No-op at R = 1 — the engine sees no new procs,
// which is what keeps the replica-free goldens byte-identical.
func (c *Cluster) fanOut(shard int, aid string) {
	if c.mem.Replicas() < 2 {
		return
	}
	c.e.Spawn("replicate:"+aid, func(p *sim.Proc) {
		src := c.shards[shard].Warehouse()
		if src == nil || c.failed[shard] {
			return
		}
		ents := src.ExportRange(func(a string) bool { return a == aid })
		if len(ents) != 1 {
			return
		}
		for _, t := range c.mem.ReplicaSet(aid) {
			if t == shard || c.failed[t] {
				continue
			}
			tw := c.shards[t].Warehouse()
			if tw == nil {
				continue
			}
			delta, full, err := tw.ImportEntry(p, ents[0])
			if err != nil || full == 0 {
				continue
			}
			c.stats.ReplicaCopies++
			c.stats.ReplicaDelta += delta
			tw.EnforceCapacity()
		}
	})
}

func containsShard(set []int, id int) bool {
	for _, s := range set {
		if s == id {
			return true
		}
	}
	return false
}
