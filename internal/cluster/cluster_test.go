package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// TestRingDeterministic: placement is a pure function of (shards, vnodes,
// aid) — two rings built with the same parameters agree on every key, and
// a different shard count produces a different (but still deterministic)
// mapping for at least one key.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(4, 0), NewRing(4, 0)
	moved := false
	three := NewRing(3, 0)
	for i := 0; i < 256; i++ {
		aid := fmt.Sprintf("app-%d", i)
		if a.Owner(aid) != b.Owner(aid) {
			t.Fatalf("same ring parameters disagree on %q", aid)
		}
		if three.Owner(aid) != a.Owner(aid) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("3-shard and 4-shard rings agree on every key")
	}
}

// TestRingSpread: a family of AIDs sharing a long common prefix (the
// realistic shape — same app digest, different tenant suffix) must spread
// over all shards, with no shard starved and none holding more than twice
// its fair share. Raw FNV without the avalanche finalizer fails this badly
// (whole families collapse onto one shard).
func TestRingSpread(t *testing.T) {
	const keys = 256
	for _, shards := range []int{2, 4, 8} {
		r := NewRing(shards, 0)
		counts := make([]int, shards)
		for i := 0; i < keys; i++ {
			counts[r.Owner(fmt.Sprintf("9e107d9d372bb6826bd81d3542a419d6#d%d", i))]++
		}
		fair := keys / shards
		for s, n := range counts {
			if n == 0 {
				t.Fatalf("%d shards: shard %d owns no keys (%v)", shards, s, counts)
			}
			if n > 2*fair {
				t.Fatalf("%d shards: shard %d owns %d of %d keys, over 2x fair share (%v)",
					shards, s, n, keys, counts)
			}
		}
	}
}

// TestRingSingleShard: every AID maps to shard 0.
func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for i := 0; i < 64; i++ {
		if s := r.Owner(fmt.Sprintf("k%d", i)); s != 0 {
			t.Fatalf("1-shard ring sent %d to shard %d", i, s)
		}
	}
}

// TestShardErrorRoundTrip drives a 2-shard cluster into admission overload
// and checks the satellite contract end to end: the error a device sees is
// a *ShardError naming the shard, errors.As still digs out the shard's
// *offload.OverloadedError with its retry-after hint, and errors.Is still
// matches offload.ErrOverloaded.
func TestShardErrorRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := core.DefaultConfig(core.KindRattrap)
	cfg.MaxRuntimes = 1
	cfg.MaxQueueDepth = 1
	cl := New(e, cfg, 2)

	app, err := workload.ByName(workload.NameLinpack)
	if err != nil {
		t.Fatal(err)
	}
	aid := offload.AID(app.Name(), app.CodeSize())
	shard := cl.Owner(aid)

	// Three requests race for the owning shard's single booting runtime:
	// one boots, one queues (MaxQueueDepth 1), one must be rejected.
	errs := make([]error, 3)
	for i := range errs {
		i := i
		e.Spawn(fmt.Sprintf("dev-%d", i), func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			task := app.NewTask(e.Rand(), 0)
			_, errs[i] = cl.Prepare(p, offload.ExecRequest{
				DeviceID: fmt.Sprintf("dev-%d", i), AID: aid, App: task.App,
				Method: task.Method, Params: task.Params, ParamBytes: task.ParamBytes,
			})
		})
	}
	e.Run()

	var rejected error
	for _, err := range errs {
		if err != nil {
			rejected = err
			break
		}
	}
	if rejected == nil {
		t.Fatalf("no request was rejected: %v", errs)
	}
	var se *ShardError
	if !errors.As(rejected, &se) {
		t.Fatalf("rejection is not a *ShardError: %v", rejected)
	}
	if se.Shard != shard {
		t.Fatalf("ShardError names shard %d, ring owner is %d", se.Shard, shard)
	}
	if !strings.HasPrefix(rejected.Error(), fmt.Sprintf("shard %d: ", shard)) {
		t.Fatalf("flattened message does not name the shard: %q", rejected.Error())
	}
	var oe *offload.OverloadedError
	if !errors.As(rejected, &oe) {
		t.Fatalf("errors.As lost the OverloadedError through ShardError: %v", rejected)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after hint lost in transit: %+v", oe)
	}
	if !errors.Is(rejected, offload.ErrOverloaded) {
		t.Fatal("errors.Is(ErrOverloaded) failed through ShardError")
	}
}

// TestShardErrorIsBlocked: errors.Is must see core.ErrBlocked through the
// shard wrapper (the router surfaces access-controller rejections this
// way).
func TestShardErrorIsBlocked(t *testing.T) {
	wrapped := &ShardError{Shard: 3, Err: fmt.Errorf("%w: evil-app", core.ErrBlocked)}
	if !errors.Is(wrapped, core.ErrBlocked) {
		t.Fatal("errors.Is(ErrBlocked) failed through ShardError")
	}
	if got := wrapped.Error(); !strings.HasPrefix(got, "shard 3: ") {
		t.Fatalf("message: %q", got)
	}
}

// TestClusterRoutesByAID: with enough distinct AIDs, a 4-shard cluster
// boots runtimes on more than one shard, each shard's runtimes carry its
// CID prefix, and every app's warehouse entry lives on exactly the shard
// the ring names.
func TestClusterRoutesByAID(t *testing.T) {
	e := sim.NewEngine(7)
	cfg := core.DefaultConfig(core.KindRattrap)
	cl := New(e, cfg, 4)

	app, _ := workload.ByName(workload.NameLinpack)
	const devices = 12
	for i := 0; i < devices; i++ {
		i := i
		aid := fmt.Sprintf("%s#d%d", offload.AID(app.Name(), app.CodeSize()), i)
		e.Spawn(fmt.Sprintf("dev-%d", i), func(p *sim.Proc) {
			task := app.NewTask(e.Rand(), 0)
			sess, err := cl.Prepare(p, offload.ExecRequest{
				DeviceID: fmt.Sprintf("dev-%d", i), AID: aid, App: task.App,
				Method: task.Method, Params: task.Params, ParamBytes: task.ParamBytes,
			})
			if err != nil {
				t.Errorf("dev-%d prepare: %v", i, err)
				return
			}
			if sess.NeedCode() {
				if err := sess.PushCode(p, offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}); err != nil {
					t.Errorf("dev-%d push: %v", i, err)
					sess.Release()
					return
				}
			}
			if _, err := sess.Execute(p); err != nil {
				t.Errorf("dev-%d execute: %v", i, err)
			}
			sess.Release()
		})
	}
	e.Run()

	shardsUsed := 0
	for s := 0; s < cl.Shards(); s++ {
		rts := cl.Shard(s).DB().List()
		if len(rts) > 0 {
			shardsUsed++
		}
		for _, rt := range rts {
			if !strings.HasPrefix(rt.CID, CIDPrefix(s)) {
				t.Fatalf("shard %d runtime CID %q missing prefix %q", s, rt.CID, CIDPrefix(s))
			}
		}
	}
	if shardsUsed < 2 {
		t.Fatalf("only %d shard(s) booted runtimes for %d distinct AIDs", shardsUsed, devices)
	}
	entries, hits := cl.WarehouseStats()
	if entries != devices {
		t.Fatalf("warehouse entries = %d, want %d (one per AID, each on its owning shard)", entries, devices)
	}
	_ = hits
}
