package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring consistent-hashes AIDs onto shards. Each shard owns vnodes points
// on a 32-bit FNV-1a circle; an AID belongs to the shard owning the first
// point clockwise of its hash. Placement depends only on (members, vnodes,
// aid), never on request order, so routing is deterministic across runs
// and processes. Point hashes are keyed by (shard id, vnode) — adding a
// member only inserts that member's points and removing one only deletes
// its points, so a membership change remaps only the arcs those points
// cover: ~1/n of the keys on a join, and every remapped key lands on the
// new member (TestRingJoinMovesOnlyItsShare pins both halves of the
// doc-comment claim the static ring only asserted in prose).
type Ring struct {
	members []int       // sorted shard ids the ring is built over
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint32
	shard int
}

// DefaultVnodes spreads each shard over enough points that shard loads
// stay within a few percent of even for realistic AID counts.
const DefaultVnodes = 128

// NewRing builds a ring of n shards (n >= 1, ids 0..n-1) with vnodes
// points each. vnodes <= 0 selects DefaultVnodes.
func NewRing(n, vnodes int) *Ring {
	if n < 1 {
		n = 1
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return NewRingMembers(ids, vnodes)
}

// NewRingMembers builds a ring over an explicit member set — the form the
// versioned Membership layer uses, where shard ids are stable across
// joins and leaves and therefore not necessarily dense. An empty member
// list yields a ring that routes everything to shard 0 (callers guard
// against routing on an empty membership before this matters).
func NewRingMembers(ids []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	members := append([]int(nil), ids...)
	sort.Ints(members)
	r := &Ring{members: members, points: make([]ringPoint, 0, len(members)*vnodes)}
	var buf [16]byte
	for _, s := range members {
		for v := 0; v < vnodes; v++ {
			key := appendUint(appendUint(buf[:0], uint32(s)), uint32(v))
			r.points = append(r.points, ringPoint{hash: hash32(key), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // total order: ties can't flap between builds
	})
	return r
}

// Shards returns the member count.
func (r *Ring) Shards() int { return len(r.members) }

// Members returns the sorted member ids (a copy).
func (r *Ring) Members() []int { return append([]int(nil), r.members...) }

// Owner returns the shard owning aid.
func (r *Ring) Owner(aid string) int {
	if len(r.members) == 1 {
		return r.members[0]
	}
	if len(r.points) == 0 {
		return 0
	}
	h := hashString32(aid)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// Successors returns the first n distinct shards clockwise of aid's hash —
// the AID's replica set, primary first. Fewer than n members returns them
// all. The slice is freshly allocated (callers keep it).
func (r *Ring) Successors(aid string, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	if len(r.members) <= 1 || len(r.points) == 0 {
		out := make([]int, 0, 1)
		if len(r.members) == 1 {
			out = append(out, r.members[0])
		} else {
			out = append(out, 0)
		}
		return out
	}
	h := hashString32(aid)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := 0
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		dup := false
		for _, s := range out {
			if s == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p.shard)
		}
		seen++
	}
	return out
}

func hash32(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return fmix32(h.Sum32())
}

// FNV-1a 32-bit parameters (hash/fnv's, inlined so the string walk below
// stays allocation-free).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// hashString32 is the routing hot path: every Prepare on every gateway
// mode hashes its AID through here. The loop is FNV-1a inlined over the
// string — byte-identical to fnv.New32a on the same bytes, but without
// the []byte(s) conversion that escapes into the hash.Hash32 interface
// and allocated once per route. BenchmarkRingOwner pins it at 0 allocs/op.
func hashString32(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return fmix32(h)
}

// fmix32 is the murmur3 avalanche finalizer. Raw FNV-1a keeps
// similar keys correlated — AIDs sharing a prefix and differing in a
// trailing byte land within a few multiples of the FNV prime of each
// other, bunching a whole app family into one narrow arc of the circle
// (and one shard). The finalizer flips ~half the output bits per input
// bit, so such families spread evenly.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

func appendUint(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
