package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring consistent-hashes AIDs onto shards. Each shard owns vnodes points
// on a 32-bit FNV-1a circle; an AID belongs to the shard owning the first
// point clockwise of its hash. Placement depends only on (shards, vnodes,
// aid), never on request order, so routing is deterministic across runs
// and processes — and adding a shard moves only ~1/n of the AIDs, which is
// the property that lets a future rebalancer keep most warehouse entries
// where they are.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint32
	shard int
}

// DefaultVnodes spreads each shard over enough points that shard loads
// stay within a few percent of even for realistic AID counts.
const DefaultVnodes = 128

// NewRing builds a ring of n shards (n >= 1) with vnodes points each.
// vnodes <= 0 selects DefaultVnodes.
func NewRing(n, vnodes int) *Ring {
	if n < 1 {
		n = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*vnodes)}
	var buf [16]byte
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			key := appendUint(appendUint(buf[:0], uint32(s)), uint32(v))
			r.points = append(r.points, ringPoint{hash: hash32(key), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // total order: ties can't flap between builds
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning aid.
func (r *Ring) Owner(aid string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashString32(aid)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

func hash32(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return fmix32(h.Sum32())
}

func hashString32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmix32(h.Sum32())
}

// fmix32 is the murmur3 avalanche finalizer. Raw FNV-1a keeps
// similar keys correlated — AIDs sharing a prefix and differing in a
// trailing byte land within a few multiples of the FNV prime of each
// other, bunching a whole app family into one narrow arc of the circle
// (and one shard). The finalizer flips ~half the output bits per input
// bit, so such families spread evenly.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

func appendUint(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
