package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rattrap/internal/core"
	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// TestRingOwnerZeroAlloc gates the routing hot path: Owner must not touch
// the heap. The old hashString32 went through hash.Hash32, whose
// Write([]byte(s)) conversion escaped and allocated on every route.
func TestRingOwnerZeroAlloc(t *testing.T) {
	r := NewRing(4, 0)
	aids := make([]string, 64)
	for i := range aids {
		aids[i] = fmt.Sprintf("9e107d9d372bb6826bd81d3542a419d6#d%d", i)
	}
	var sink int
	i := 0
	if avg := testing.AllocsPerRun(500, func() {
		sink += r.Owner(aids[i%len(aids)])
		i++
	}); avg != 0 {
		t.Fatalf("Ring.Owner allocates %.2f times per route, want 0", avg)
	}
	_ = sink
}

// BenchmarkRingOwner is the perf half of the zero-alloc gate; run with
// -benchmem to see 0 allocs/op.
func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(8, 0)
	aids := make([]string, 256)
	for i := range aids {
		aids[i] = fmt.Sprintf("9e107d9d372bb6826bd81d3542a419d6#d%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Owner(aids[i%len(aids)])
	}
	_ = sink
}

// TestRingHashMatchesStdlib: the inlined FNV-1a string loop must produce
// exactly what hash/fnv produces on the same bytes — placement is part of
// the golden surface, so the zero-alloc rewrite may not move a single key.
func TestRingHashMatchesStdlib(t *testing.T) {
	for i := 0; i < 512; i++ {
		s := fmt.Sprintf("aid-%d#%d", i*7, i)
		if got, want := hashString32(s), hash32([]byte(s)); got != want {
			t.Fatalf("hashString32(%q) = %08x, hash32 = %08x", s, got, want)
		}
	}
	if hashString32("") != hash32(nil) {
		t.Fatal("empty-string hash diverges from stdlib")
	}
}

// TestRingJoinMovesOnlyItsShare pins the consistent-hashing contract the
// doc comment used to assert only in prose: growing an n-shard ring to
// n+1 remaps roughly 1/(n+1) of a 100k-AID sample (≤ 1.35x that share,
// covering vnode placement variance), and every remapped key lands on the
// new shard — no key moves between surviving shards.
func TestRingJoinMovesOnlyItsShare(t *testing.T) {
	const keys = 100_000
	for _, n := range []int{2, 4, 8} {
		before, after := NewRing(n, 0), NewRing(n+1, 0)
		moved := 0
		for i := 0; i < keys; i++ {
			aid := fmt.Sprintf("9e107d9d372bb6826bd81d3542a419d6#t%d", i)
			was, is := before.Owner(aid), after.Owner(aid)
			if was == is {
				continue
			}
			moved++
			if is != n {
				t.Fatalf("n=%d: key %q moved %d -> %d, not to the new shard %d",
					n, aid, was, is, n)
			}
		}
		share := float64(moved) / keys
		limit := (1.0 / float64(n+1)) * 1.35
		if share > limit {
			t.Fatalf("n=%d: join remapped %.4f of keys, limit %.4f", n, share, limit)
		}
		if moved == 0 {
			t.Fatalf("n=%d: join moved nothing — the new shard owns no keys", n)
		}
	}
}

// TestMembershipEpochProtocol: the epoch advances exactly when the
// routable set changes — Add and BeginDrain leave routing untouched,
// Commission / CompleteDrain / Fail flip it.
func TestMembershipEpochProtocol(t *testing.T) {
	m := NewMembership(2, 0, 2)
	if m.Epoch() != 0 || m.LiveCount() != 2 {
		t.Fatalf("fresh membership: epoch %d, live %d", m.Epoch(), m.LiveCount())
	}

	id := m.Add()
	if id != 2 || m.Epoch() != 0 || m.LiveCount() != 2 || m.State(id) != ShardJoining {
		t.Fatalf("after Add: id=%d epoch=%d live=%d state=%v", id, m.Epoch(), m.LiveCount(), m.State(id))
	}
	m.Commission(id)
	if m.Epoch() != 1 || m.LiveCount() != 3 || m.State(id) != ShardLive {
		t.Fatalf("after Commission: epoch=%d live=%d state=%v", m.Epoch(), m.LiveCount(), m.State(id))
	}

	if !m.BeginDrain(0) || m.Epoch() != 1 || !m.Routable(0) {
		t.Fatalf("BeginDrain must keep shard routable at the same epoch (epoch=%d routable=%v)",
			m.Epoch(), m.Routable(0))
	}
	m.CompleteDrain(0)
	if m.Epoch() != 2 || m.Routable(0) || m.State(0) != ShardDead {
		t.Fatalf("after CompleteDrain: epoch=%d state=%v", m.Epoch(), m.State(0))
	}

	if !m.Fail(1) || m.Epoch() != 3 || m.State(1) != ShardDead {
		t.Fatalf("after Fail: epoch=%d state=%v", m.Epoch(), m.State(1))
	}
	if m.Fail(1) {
		t.Fatal("failing a dead shard must be a no-op")
	}
	if m.LiveCount() != 1 || m.Primary("anything") != 2 {
		t.Fatalf("sole survivor must own everything: live=%d owner=%d", m.LiveCount(), m.Primary("anything"))
	}
	// Dead ids are never reused.
	if next := m.Add(); next != 3 {
		t.Fatalf("new shard reused id %d", next)
	}
}

// TestMembershipReplicaSet: the replica set is R distinct routable shards
// with the primary first, and shrinks gracefully when fewer remain.
func TestMembershipReplicaSet(t *testing.T) {
	m := NewMembership(3, 0, 2)
	for i := 0; i < 64; i++ {
		aid := fmt.Sprintf("app#%d", i)
		set := m.ReplicaSet(aid)
		if len(set) != 2 {
			t.Fatalf("replica set size %d, want 2", len(set))
		}
		if set[0] != m.Primary(aid) {
			t.Fatalf("replica set %v does not lead with primary %d", set, m.Primary(aid))
		}
		if set[0] == set[1] {
			t.Fatalf("replica set %v repeats a shard", set)
		}
	}
	m.Fail(0)
	m.Fail(1)
	if set := m.ReplicaSet("app#1"); len(set) != 1 || set[0] != 2 {
		t.Fatalf("1-survivor replica set = %v", set)
	}
}

// offloadOnce drives one full request (prepare, push if asked, execute,
// release) against the cluster from inside a proc.
func offloadOnce(t *testing.T, p *sim.Proc, cl *Cluster, dev, aid string, app workload.App, push offload.CodePush) error {
	t.Helper()
	task := app.NewTask(p.E.Rand(), 0)
	sess, err := cl.Prepare(p, offload.ExecRequest{
		DeviceID: dev, AID: aid, App: task.App,
		Method: task.Method, Params: task.Params, ParamBytes: task.ParamBytes,
	})
	if err != nil {
		return err
	}
	defer sess.Release()
	if sess.NeedCode() {
		if err := sess.PushCode(p, push); err != nil {
			return err
		}
	}
	for {
		_, err = sess.Execute(p)
		if errors.Is(err, offload.ErrCodeNeeded) {
			if perr := sess.PushCode(p, push); perr != nil {
				return perr
			}
			continue
		}
		return err
	}
}

// seedCluster pushes `variants` size-variant AIDs of one app into the
// cluster and returns them. Variant sizes differ by a few bytes, so their
// synthetic manifests share the app's library chunks — the dedup the
// chunk-level migration is supposed to exploit.
func seedCluster(t *testing.T, e *sim.Engine, cl *Cluster, app workload.App, variants int) []string {
	t.Helper()
	aids := make([]string, variants)
	for i := 0; i < variants; i++ {
		i := i
		size := app.CodeSize() + host.Bytes(i)
		aid := offload.AID(app.Name(), size)
		aids[i] = aid
		e.Spawn(fmt.Sprintf("seed-%d", i), func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * 10 * time.Millisecond)
			if err := offloadOnce(t, p, cl, fmt.Sprintf("seed-dev-%d", i), aid, app,
				offload.CodePush{AID: aid, App: app.Name(), Size: size}); err != nil {
				t.Errorf("seed %d: %v", i, err)
			}
		})
	}
	e.Run()
	return aids
}

// TestClusterAddShardMigratesOnlyMissingChunks: joining a shard moves the
// remapped AIDs onto it as chunk deltas — the accumulated DeltaBytes must
// undercut the full-blob volume (variant manifests share library chunks),
// the epoch advances, and after the join every AID's entry lives on
// exactly its replica-set shards (moved ranges left their old home).
func TestClusterAddShardMigratesOnlyMissingChunks(t *testing.T) {
	e := sim.NewEngine(11)
	cfg := core.DefaultConfig(core.KindRattrap)
	cl := New(e, cfg, 2)
	app, _ := workload.ByName(workload.NameLinpack)

	aids := seedCluster(t, e, cl, app, 10)
	if entries, _ := cl.WarehouseStats(); entries != len(aids) {
		t.Fatalf("seeded %d entries, want %d", entries, len(aids))
	}

	id := cl.AddShard()
	e.Run() // drain the migration

	if got := cl.Epoch(); got != 1 {
		t.Fatalf("epoch after join = %d, want 1", got)
	}
	if st := cl.Membership().State(id); st != ShardLive {
		t.Fatalf("joined shard state = %v, want live", st)
	}
	stats := cl.MigrationStats()
	if stats.Joins != 1 || stats.EntriesMoved == 0 {
		t.Fatalf("stats after join: %+v", stats)
	}
	if stats.DeltaBytes >= stats.FullBytes {
		t.Fatalf("chunk migration moved %d delta bytes for %d full bytes — no dedup",
			stats.DeltaBytes, stats.FullBytes)
	}
	if stats.EntriesDropped == 0 {
		t.Fatal("no entries left their old shard after the join")
	}
	// Placement invariant: each AID cached exactly on its replica set.
	movedToNew := 0
	for _, aid := range aids {
		owner := cl.Owner(aid)
		for s := 0; s < cl.Shards(); s++ {
			_, has := cl.Shard(s).Warehouse().Lookup(aid)
			if want := s == owner; has != want {
				t.Fatalf("aid %s: shard %d has=%v, want %v (owner %d)", aid, s, has, want, owner)
			}
		}
		if owner == id {
			movedToNew++
		}
	}
	if movedToNew == 0 {
		t.Fatal("new shard owns none of the seeded AIDs")
	}
}

// TestClusterFailShardReplicaFailover (R=2): after the primary for an AID
// crashes, the surviving replica already holds the code — a re-offload is
// a warehouse hit, with no device re-push. In-flight sessions pinned to
// the dead shard fail fast with ErrShardDown through the usual ShardError
// wrapper.
func TestClusterFailShardReplicaFailover(t *testing.T) {
	e := sim.NewEngine(13)
	cfg := core.DefaultConfig(core.KindRattrap)
	cl := NewReplicated(e, cfg, 3, 2)
	app, _ := workload.ByName(workload.NameLinpack)

	size := app.CodeSize()
	aid := offload.AID(app.Name(), size)
	e.Spawn("first", func(p *sim.Proc) {
		if err := offloadOnce(t, p, cl, "dev-1", aid, app,
			offload.CodePush{AID: aid, App: app.Name(), Size: size}); err != nil {
			t.Errorf("first offload: %v", err)
		}
	})
	e.Run() // request + replica fan-out drain

	primary := cl.Owner(aid)
	set := cl.Membership().ReplicaSet(aid)
	if len(set) != 2 {
		t.Fatalf("replica set %v, want 2 shards", set)
	}
	backup := set[1]
	if _, ok := cl.Shard(backup).Warehouse().Lookup(aid); !ok {
		t.Fatalf("replica fan-out left shard %d without %s", backup, aid)
	}
	if cl.MigrationStats().ReplicaCopies == 0 {
		t.Fatal("fan-out recorded no replica copies")
	}

	// Pin a session to the primary, crash it, and watch the session die
	// while a fresh request fails over warm.
	var inflightErr error
	var needAfter bool
	e.Spawn("crash-test", func(p *sim.Proc) {
		sess, err := cl.Prepare(p, offload.ExecRequest{DeviceID: "dev-2", AID: aid, App: app.Name()})
		if err != nil {
			t.Errorf("prepare before crash: %v", err)
			return
		}
		if !cl.FailShard(primary) {
			t.Error("FailShard refused a live shard")
		}
		_, inflightErr = sess.Execute(p)
		sess.Release()

		after, err := cl.Prepare(p, offload.ExecRequest{DeviceID: "dev-3", AID: aid, App: app.Name()})
		if err != nil {
			t.Errorf("prepare after crash: %v", err)
			return
		}
		needAfter = after.NeedCode()
		after.Release()
	})
	e.Run()

	if !errors.Is(inflightErr, ErrShardDown) {
		t.Fatalf("in-flight execute after crash: %v, want ErrShardDown", inflightErr)
	}
	var se *ShardError
	if !errors.As(inflightErr, &se) || se.Shard != primary {
		t.Fatalf("ErrShardDown not wrapped in ShardError naming shard %d: %v", primary, inflightErr)
	}
	if cl.Owner(aid) == primary {
		t.Fatal("routing still points at the dead shard")
	}
	if needAfter {
		t.Fatal("failover request needed a code re-push — the replica was cold")
	}
	if cl.Epoch() == 0 {
		t.Fatal("failure did not advance the epoch")
	}
}

// TestClusterRemoveShardHandsOff (R=1): a graceful leave moves every
// entry to its next owner before the shard goes dark, so nothing is lost
// and nobody re-pushes.
func TestClusterRemoveShardHandsOff(t *testing.T) {
	e := sim.NewEngine(17)
	cfg := core.DefaultConfig(core.KindRattrap)
	cl := New(e, cfg, 3)
	app, _ := workload.ByName(workload.NameLinpack)

	aids := seedCluster(t, e, cl, app, 9)

	// Pick a shard that owns at least one AID.
	victim := cl.Owner(aids[0])
	if !cl.RemoveShard(victim) {
		t.Fatal("RemoveShard refused a live shard")
	}
	if cl.RemoveShard(victim) {
		t.Fatal("RemoveShard accepted a draining shard twice")
	}
	e.Run()

	if st := cl.Membership().State(victim); st != ShardDead {
		t.Fatalf("removed shard state = %v, want dead", st)
	}
	if cl.MigrationStats().Removals != 1 {
		t.Fatalf("stats: %+v", cl.MigrationStats())
	}
	var missing []string
	for _, aid := range aids {
		owner := cl.Owner(aid)
		if owner == victim {
			t.Fatalf("aid %s still routed to the removed shard", aid)
		}
		if _, ok := cl.Shard(owner).Warehouse().Lookup(aid); !ok {
			missing = append(missing, aid)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("entries lost in the handoff: %v", missing)
	}
	// The cluster still serves everything without re-pushes.
	for i, aid := range aids {
		i, aid := i, aid
		e.Spawn(fmt.Sprintf("post-%d", i), func(p *sim.Proc) {
			sess, err := cl.Prepare(p, offload.ExecRequest{DeviceID: fmt.Sprintf("post-dev-%d", i), AID: aid, App: app.Name()})
			if err != nil {
				t.Errorf("post-remove prepare %s: %v", aid, err)
				return
			}
			if sess.NeedCode() {
				t.Errorf("post-remove request for %s needs a re-push", aid)
			}
			sess.Release()
		})
	}
	e.Run()
}
