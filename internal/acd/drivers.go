package acd

import (
	"errors"
	"fmt"
	"time"

	"rattrap/internal/sim"
)

// Alarm is the per-namespace state of the RTC-based alarm driver Android
// uses for timer messages. Alarms fire on the virtual clock.
type Alarm struct {
	e     *sim.Engine
	next  int
	armed map[int]*sim.Event
	fired int
}

// NewAlarm returns an alarm device bound to e.
func NewAlarm(e *sim.Engine) *Alarm {
	return &Alarm{e: e, armed: make(map[int]*sim.Event)}
}

// Set arms an alarm to fire fn after d; it returns an id for Cancel.
func (a *Alarm) Set(d time.Duration, fn func()) int {
	a.next++
	id := a.next
	a.armed[id] = a.e.After(d, func() {
		delete(a.armed, id)
		a.fired++
		fn()
	})
	return id
}

// Cancel disarms an alarm; it reports whether the alarm was still pending.
func (a *Alarm) Cancel(id int) bool {
	ev, ok := a.armed[id]
	if !ok {
		return false
	}
	ev.Cancel()
	delete(a.armed, id)
	return true
}

// Pending returns the number of armed alarms.
func (a *Alarm) Pending() int { return len(a.armed) }

// Fired returns how many alarms have fired.
func (a *Alarm) Fired() int { return a.fired }

// LogEntry is one record in a logger ring buffer.
type LogEntry struct {
	Tag string
	Msg string
}

// Logger is the lightweight RAM log driver: a fixed-capacity ring buffer,
// one instance per namespace per log stream (/dev/log/main, .../events).
type Logger struct {
	capBytes int
	used     int
	entries  []LogEntry
	dropped  int
}

// NewLogger returns a ring buffer holding up to capBytes of entries.
func NewLogger(capBytes int) *Logger {
	if capBytes <= 0 {
		panic("acd: logger capacity must be positive")
	}
	return &Logger{capBytes: capBytes}
}

func entrySize(e LogEntry) int { return len(e.Tag) + len(e.Msg) + 8 }

// Write appends an entry, evicting the oldest entries when full.
func (l *Logger) Write(e LogEntry) {
	sz := entrySize(e)
	for l.used+sz > l.capBytes && len(l.entries) > 0 {
		l.used -= entrySize(l.entries[0])
		l.entries = l.entries[1:]
		l.dropped++
	}
	if sz > l.capBytes {
		l.dropped++
		return // entry larger than the whole buffer: dropped, like the real driver truncating
	}
	l.entries = append(l.entries, e)
	l.used += sz
}

// Read returns the buffered entries, oldest first.
func (l *Logger) Read() []LogEntry {
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Dropped returns how many entries have been evicted or rejected.
func (l *Logger) Dropped() int { return l.dropped }

// Used returns buffered bytes.
func (l *Logger) Used() int { return l.used }

// Ashmem is the anonymous-shared-memory driver: named regions that
// processes map by fd. State is kernel-global (not namespaced).
type Ashmem struct {
	next    int
	regions map[int]*AshmemRegion
}

// AshmemRegion is one shared memory region.
type AshmemRegion struct {
	ID     int
	Name   string
	Size   int
	pinned bool
	freed  bool
}

// NewAshmem returns an empty region table.
func NewAshmem() *Ashmem { return &Ashmem{regions: make(map[int]*AshmemRegion)} }

// ErrRegionFreed is returned when touching an unpinned, reclaimed region.
var ErrRegionFreed = errors.New("acd: ashmem region was reclaimed")

// Create allocates a region of size bytes, initially pinned.
func (a *Ashmem) Create(name string, size int) (*AshmemRegion, error) {
	if size <= 0 {
		return nil, fmt.Errorf("acd: ashmem region %q: size %d", name, size)
	}
	a.next++
	r := &AshmemRegion{ID: a.next, Name: name, Size: size, pinned: true}
	a.regions[r.ID] = r
	return r, nil
}

// Unpin marks the region reclaimable under memory pressure.
func (a *Ashmem) Unpin(id int) error {
	r, ok := a.regions[id]
	if !ok {
		return fmt.Errorf("acd: ashmem: no region %d", id)
	}
	r.pinned = false
	return nil
}

// Pin re-pins a region; it fails with ErrRegionFreed if the kernel
// reclaimed it while unpinned.
func (a *Ashmem) Pin(id int) error {
	r, ok := a.regions[id]
	if !ok {
		return fmt.Errorf("acd: ashmem: no region %d", id)
	}
	if r.freed {
		return ErrRegionFreed
	}
	r.pinned = true
	return nil
}

// Shrink simulates memory pressure: every unpinned region is reclaimed.
// It returns the bytes freed.
func (a *Ashmem) Shrink() int {
	freed := 0
	for _, r := range a.regions {
		if !r.pinned && !r.freed {
			r.freed = true
			freed += r.Size
		}
	}
	return freed
}

// Destroy removes a region entirely.
func (a *Ashmem) Destroy(id int) {
	delete(a.regions, id)
}

// TotalBytes returns bytes held by live (non-reclaimed) regions.
func (a *Ashmem) TotalBytes() int {
	t := 0
	for _, r := range a.regions {
		if !r.freed {
			t += r.Size
		}
	}
	return t
}
