// Package acd implements the Android Container Driver (§IV-B1): the
// kernel-module package that dynamically extends the host kernel with the
// Android pseudo drivers a Cloud Android Container needs — Binder (IPC),
// Alarm (RTC-based timers), Logger (RAM log) and Ashmem (anonymous shared
// memory). All four are pseudo drivers with no physical device behind
// them, so the package works on any hardware platform; devices appear only
// while the modules are loaded, and Binder/Alarm/Logger are multiplexed
// per container through device namespaces.
package acd

import (
	"fmt"

	"rattrap/internal/binder"
	"rattrap/internal/kernel"
	"rattrap/internal/sim"
)

// Module names as they appear in lsmod.
const (
	ModBinder = "cac_binder"
	ModAlarm  = "cac_alarm"
	ModLogger = "cac_logger"
	ModAshmem = "cac_ashmem"
)

// Device paths provided by the driver package.
const (
	DevBinder    = "/dev/binder"
	DevAlarm     = "/dev/alarm"
	DevLogMain   = "/dev/log/main"
	DevLogEvents = "/dev/log/events"
	DevAshmem    = "/dev/ashmem"
)

// RequiredDevices lists every device an Android boot needs. A container
// whose namespace cannot open all of them fails to start Android.
func RequiredDevices() []string {
	return []string{DevBinder, DevAlarm, DevLogMain, DevLogEvents, DevAshmem}
}

// Modules returns the Android Container Driver built for the given kernel
// release (the paper targets Linux 3.18.0). The engine parameterizes the
// Alarm driver, whose timers fire in virtual time.
func Modules(e *sim.Engine, release string) []*kernel.Module {
	return []*kernel.Module{
		{
			Name:     ModBinder,
			VerMagic: release,
			SizeKB:   180,
			LoadCost: 4,
			Devices: []kernel.DeviceSpec{
				{Name: DevBinder, Namespaced: true, New: func() any { return binder.NewContext() }},
			},
		},
		{
			Name:     ModAlarm,
			VerMagic: release,
			SizeKB:   24,
			LoadCost: 1,
			Devices: []kernel.DeviceSpec{
				{Name: DevAlarm, Namespaced: true, New: func() any { return NewAlarm(e) }},
			},
		},
		{
			Name:     ModLogger,
			VerMagic: release,
			SizeKB:   32,
			LoadCost: 1,
			Devices: []kernel.DeviceSpec{
				{Name: DevLogMain, Namespaced: true, New: func() any { return NewLogger(256 * 1024) }},
				{Name: DevLogEvents, Namespaced: true, New: func() any { return NewLogger(256 * 1024) }},
			},
		},
		{
			Name:     ModAshmem,
			VerMagic: release,
			SizeKB:   28,
			LoadCost: 1,
			Devices: []kernel.DeviceSpec{
				// Ashmem regions are kernel-global; processes share them by fd.
				{Name: DevAshmem, Namespaced: false, New: func() any { return NewAshmem() }},
			},
		},
	}
}

// LoadAll inserts every Android Container Driver module, stopping at the
// first failure. It is idempotent across already-loaded modules.
func LoadAll(p *sim.Proc, k *kernel.Kernel, e *sim.Engine) error {
	for _, m := range Modules(e, k.Release()) {
		if k.Loaded(m.Name) {
			continue
		}
		if err := k.Load(p, m); err != nil {
			return fmt.Errorf("acd: loading %s: %w", m.Name, err)
		}
	}
	return nil
}

// UnloadAll removes every Android Container Driver module that is loaded
// and idle. Modules still referenced by open handles are left in place and
// reported via the error.
func UnloadAll(k *kernel.Kernel) error {
	var firstErr error
	for _, name := range []string{ModBinder, ModAlarm, ModLogger, ModAshmem} {
		if !k.Loaded(name) {
			continue
		}
		if err := k.Unload(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
