package acd

import (
	"errors"
	"testing"
	"time"

	"rattrap/internal/binder"
	"rattrap/internal/host"
	"rattrap/internal/kernel"
	"rattrap/internal/sim"
)

func newHarness() (*sim.Engine, *kernel.Kernel) {
	e := sim.NewEngine(1)
	h := host.New(e, host.CloudServer())
	return e, kernel.New(e, h, "3.18.0")
}

func TestLoadAllProvidesRequiredDevices(t *testing.T) {
	e, k := newHarness()
	e.Spawn("init", func(p *sim.Proc) {
		if err := LoadAll(p, k, e); err != nil {
			t.Fatal(err)
		}
		for _, dev := range RequiredDevices() {
			if !k.HasDevice(dev) {
				t.Errorf("device %s missing after LoadAll", dev)
			}
		}
		// Idempotent.
		if err := LoadAll(p, k, e); err != nil {
			t.Errorf("second LoadAll: %v", err)
		}
	})
	e.Run()
}

func TestNoRebuildNeeded(t *testing.T) {
	// Loading ACD must not require any prior kernel state: a stock kernel
	// plus LoadAll equals a Rattrap-capable kernel.
	e, k := newHarness()
	e.Spawn("init", func(p *sim.Proc) {
		if len(k.Lsmod()) != 0 {
			t.Fatal("kernel not stock")
		}
		if err := LoadAll(p, k, e); err != nil {
			t.Fatal(err)
		}
		if len(k.Lsmod()) != 4 {
			t.Fatalf("lsmod = %v, want 4 ACD modules", k.Lsmod())
		}
	})
	e.Run()
}

func TestBinderPerNamespace(t *testing.T) {
	e, k := newHarness()
	e.Spawn("init", func(p *sim.Proc) {
		LoadAll(p, k, e)
		ns1, ns2 := k.NewNamespace("c1"), k.NewNamespace("c2")
		h1, err := k.Open(ns1, DevBinder)
		if err != nil {
			t.Fatal(err)
		}
		h2, _ := k.Open(ns2, DevBinder)
		c1 := h1.State().(*binder.Context)
		c2 := h2.State().(*binder.Context)
		c1.Register("offloadcontroller", func(code uint32, d []byte) ([]byte, error) { return d, nil })
		if _, err := c2.Lookup("offloadcontroller"); err == nil {
			t.Error("binder service leaked across device namespaces")
		}
	})
	e.Run()
}

func TestUnloadAllBlockedByOpenHandles(t *testing.T) {
	e, k := newHarness()
	e.Spawn("init", func(p *sim.Proc) {
		LoadAll(p, k, e)
		ns := k.NewNamespace("c1")
		h, _ := k.Open(ns, DevBinder)
		if err := UnloadAll(k); !errors.Is(err, kernel.ErrModuleInUse) {
			t.Errorf("err = %v, want ErrModuleInUse", err)
		}
		h.Close()
		if err := UnloadAll(k); err != nil {
			t.Errorf("UnloadAll after close: %v", err)
		}
		if len(k.Lsmod()) != 0 {
			t.Errorf("modules remain: %v", k.Lsmod())
		}
	})
	e.Run()
}

func TestAlarmFiresOnVirtualClock(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewAlarm(e)
	var firedAt sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		a.Set(3*time.Second, func() { firedAt = e.Now() })
	})
	e.Run()
	if firedAt != sim.Time(3*time.Second) {
		t.Fatalf("alarm fired at %v, want 3s", firedAt)
	}
	if a.Fired() != 1 || a.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", a.Fired(), a.Pending())
	}
}

func TestAlarmCancel(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewAlarm(e)
	fired := false
	e.Spawn("x", func(p *sim.Proc) {
		id := a.Set(time.Second, func() { fired = true })
		if !a.Cancel(id) {
			t.Error("cancel of pending alarm failed")
		}
		if a.Cancel(id) {
			t.Error("second cancel succeeded")
		}
	})
	e.Run()
	if fired {
		t.Fatal("cancelled alarm fired")
	}
}

func TestLoggerRingBuffer(t *testing.T) {
	l := NewLogger(100)
	l.Write(LogEntry{Tag: "zygote", Msg: "preloading classes"})  // 8+6+18 = 32
	l.Write(LogEntry{Tag: "zygote", Msg: "preloading resource"}) // 33
	l.Write(LogEntry{Tag: "am", Msg: "start offloadproc0"})      // 28
	if got := len(l.Read()); got != 3 {
		t.Fatalf("entries = %d, want 3", got)
	}
	l.Write(LogEntry{Tag: "am", Msg: "another entry here"}) // forces eviction
	if l.Dropped() == 0 {
		t.Fatal("ring buffer never evicted")
	}
	if l.Used() > 100 {
		t.Fatalf("used %d exceeds capacity", l.Used())
	}
	got := l.Read()
	if got[len(got)-1].Msg != "another entry here" {
		t.Fatal("newest entry missing after eviction")
	}
}

func TestLoggerOversizeEntry(t *testing.T) {
	l := NewLogger(16)
	l.Write(LogEntry{Tag: "t", Msg: "this message is far larger than the buffer"})
	if len(l.Read()) != 0 || l.Dropped() != 1 {
		t.Fatalf("oversize entry handling: entries=%d dropped=%d", len(l.Read()), l.Dropped())
	}
}

func TestAshmemPinLifecycle(t *testing.T) {
	a := NewAshmem()
	r, err := a.Create("dalvik-heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes() != 1<<20 {
		t.Fatalf("total = %d", a.TotalBytes())
	}
	if freed := a.Shrink(); freed != 0 {
		t.Fatalf("shrink reclaimed pinned region: %d", freed)
	}
	a.Unpin(r.ID)
	if freed := a.Shrink(); freed != 1<<20 {
		t.Fatalf("shrink freed %d, want 1MiB", freed)
	}
	if err := a.Pin(r.ID); !errors.Is(err, ErrRegionFreed) {
		t.Fatalf("pin after reclaim: err = %v, want ErrRegionFreed", err)
	}
}

func TestAshmemValidation(t *testing.T) {
	a := NewAshmem()
	if _, err := a.Create("bad", 0); err == nil {
		t.Fatal("zero-size region created")
	}
	if err := a.Pin(42); err == nil {
		t.Fatal("pin of unknown region succeeded")
	}
}

func TestModuleVersionTargetsKernel(t *testing.T) {
	e := sim.NewEngine(1)
	h := host.New(e, host.CloudServer())
	wrongKernel := kernel.New(e, h, "4.9.0")
	e.Spawn("init", func(p *sim.Proc) {
		// ACD built for 3.18.0 must not insert into a 4.9.0 kernel.
		mods := Modules(e, "3.18.0")
		if err := wrongKernel.Load(p, mods[0]); !errors.Is(err, kernel.ErrVersionMagic) {
			t.Errorf("err = %v, want ErrVersionMagic", err)
		}
	})
	e.Run()
}
