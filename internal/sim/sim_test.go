package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("final time = %v, want 3s", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	e.After(500*time.Millisecond, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	e.After(1*time.Second, func() { fired = append(fired, 1) })
	e.After(2*time.Second, func() { fired = append(fired, 2) })
	e.After(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(Time(3 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 1s and 2s", fired)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Second)
		p.Sleep(2 * time.Second)
		wake = e.Now()
	})
	e.Run()
	if wake != Time(3*time.Second) {
		t.Fatalf("woke at %v, want 3s", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d after Run", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1 * time.Second)
		order = append(order, "a1")
		p.Sleep(2 * time.Second)
		order = append(order, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * time.Second)
		order = append(order, "b2")
	})
	e.Run()
	want := []string{"a1", "b2", "a3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignal(t *testing.T) {
	e := NewEngine(1)
	sig := NewSignal(e)
	var woke []string
	e.Spawn("waiter1", func(p *Proc) {
		p.Wait(sig)
		woke = append(woke, "w1@"+e.Now().String())
	})
	e.Spawn("waiter2", func(p *Proc) {
		p.Wait(sig)
		woke = append(woke, "w2@"+e.Now().String())
	})
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		sig.Fire()
	})
	e.Run()
	if len(woke) != 2 {
		t.Fatalf("woke = %v, want both waiters", woke)
	}
	if !sig.Fired() || sig.FiredAt() != Time(5*time.Second) {
		t.Fatalf("FiredAt = %v, want 5s", sig.FiredAt())
	}
	// Waiting on an already-fired signal returns immediately.
	late := false
	e2 := NewEngine(1)
	s2 := NewSignal(e2)
	e2.Spawn("x", func(p *Proc) {
		s2.Fire()
		p.Wait(s2)
		late = true
	})
	e2.Run()
	if !late {
		t.Fatal("Wait on fired signal did not return")
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	e.Spawn("x", func(p *Proc) {
		s.Fire()
		defer func() {
			if recover() == nil {
				t.Error("double Fire did not panic")
			}
		}()
		s.Fire()
	})
	e.Run()
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cores", 2)
	var order []string
	work := func(name string, hold time.Duration) {
		e.Spawn(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	work("a", 3*time.Second)
	work("b", 1*time.Second)
	work("c", 1*time.Second) // must wait for a or b
	e.Run()
	// a and b start immediately; c starts when b releases at t=1s.
	want := []string{"a+", "b+", "b-", "c+", "c-", "a-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceNoBarging(t *testing.T) {
	// A waiting 2-unit request must not be overtaken by later 1-unit ones.
	e := NewEngine(1)
	r := NewResource(e, "r", 2)
	var got []string
	e.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(2 * time.Second)
		r.Release(1)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 2) // needs both units; waits for hog
		got = append(got, "big")
		r.Release(2)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1) // arrives later; must queue behind big
		got = append(got, "small")
		r.Release(1)
	})
	e.Run()
	if len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Fatalf("got = %v, want [big small]", got)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	e.Spawn("x", func(p *Proc) {
		if !r.TryAcquire(1) {
			t.Error("TryAcquire on free resource failed")
		}
		if r.TryAcquire(1) {
			t.Error("TryAcquire on full resource succeeded")
		}
		r.Release(1)
		if !r.TryAcquire(1) {
			t.Error("TryAcquire after release failed")
		}
		r.Release(1)
	})
	e.Run()
}

func TestResourceOnChange(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 4)
	var seen []int
	r.OnChange(func(n int) { seen = append(seen, n) })
	e.Spawn("x", func(p *Proc) {
		r.Acquire(p, 2)
		r.Acquire(p, 1)
		r.Release(3)
	})
	e.Run()
	want := []int{2, 3, 0}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
}

func TestStepSeriesIntegralAndBuckets(t *testing.T) {
	e := NewEngine(1)
	s := NewStepSeries(e)
	e.After(1*time.Second, func() { s.Set(10) })
	e.After(3*time.Second, func() { s.Set(0) })
	e.After(4*time.Second, func() {})
	e.Run()
	if got := s.Integral(0, Time(4*time.Second)); got != 20 {
		t.Fatalf("integral = %v, want 20", got)
	}
	b := s.Buckets(0, Time(4*time.Second), time.Second)
	want := []float64{0, 10, 10, 0}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	if m := s.Mean(0, Time(4*time.Second)); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
}

func TestCountSeries(t *testing.T) {
	e := NewEngine(1)
	c := NewCountSeries(e)
	e.After(500*time.Millisecond, func() { c.Add(100) })
	e.After(1500*time.Millisecond, func() { c.Add(50) })
	e.After(1600*time.Millisecond, func() { c.Add(50) })
	e.Run()
	b := c.Buckets(0, Time(2*time.Second), time.Second)
	if b[0] != 100 || b[1] != 100 {
		t.Fatalf("buckets = %v, want [100 100]", b)
	}
	if tot := c.Total(0, Time(2*time.Second)); tot != 200 {
		t.Fatalf("total = %v, want 200", tot)
	}
}

func TestCountSeriesAddSpread(t *testing.T) {
	e := NewEngine(1)
	c := NewCountSeries(e)
	e.Spawn("x", func(p *Proc) {
		c.AddSpread(300, 3*time.Second)
	})
	e.Run()
	b := c.Buckets(0, Time(3*time.Second), time.Second)
	for i, v := range b {
		if v < 99 || v > 101 {
			t.Fatalf("bucket %d = %v, want ~100 (buckets %v)", i, v, b)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var log []string
		r := NewResource(e, "r", 3)
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			e.Spawn(name, func(p *Proc) {
				d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
				p.Sleep(d)
				r.Acquire(p, 1)
				p.Sleep(time.Duration(e.Rand().Intn(500)) * time.Millisecond)
				r.Release(1)
				log = append(log, name+e.Now().String())
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
