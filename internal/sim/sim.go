// Package sim provides a deterministic discrete-event simulation engine.
//
// Every evaluation run in this repository executes on a virtual clock owned
// by an Engine. The engine dispatches exactly one event at a time, so
// simulations are fully deterministic given a seed, regardless of host
// scheduling. Model code is written in one of two styles:
//
//   - event style: Engine.After / Engine.At schedule plain callbacks;
//   - process style: Engine.Spawn starts a coroutine-like Proc that may
//     block in virtual time (Sleep, Wait, Resource.Acquire) while other
//     events run.
//
// Procs are backed by goroutines, but the engine guarantees that at most one
// of them executes at any instant: a Proc runs only between Engine handing
// it control and the Proc parking again, so no locking is needed in model
// code and results are reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant on the virtual clock, measured as a duration since the
// start of the simulation (virtual time zero).
type Time time.Duration

// Duration converts the instant to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant as floating-point seconds since time zero.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending-event queue.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	running bool
	procs   int // live (started, unfinished) Procs, for leak detection
}

// NewEngine returns an engine at virtual time zero whose random source is
// seeded with seed. All model randomness must come from Rand() so that runs
// are reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+Time(d), fn)
}

// step pops and runs the next event. It reports false when no events remain.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.step() {
	}
}

// RunUntil dispatches events until the clock would pass t, then sets the
// clock to t. Events scheduled exactly at t do fire.
func (e *Engine) RunUntil(t Time) {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		if next := e.events[0].at; next > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports how many events are queued (including cancelled ones not
// yet discarded).
func (e *Engine) Pending() int { return len(e.events) }

// NextEventAt returns the virtual time of the earliest live (non-cancelled)
// pending event. It reports false when no live events remain. Cancelled
// events at the head of the queue are discarded as a side effect, so a
// pacing driver that sleeps until the returned instant never wakes for an
// event that will not fire.
func (e *Engine) NextEventAt() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// LiveProcs reports how many spawned Procs have started but not finished.
// A nonzero value after Run returns usually indicates a deadlocked model.
func (e *Engine) LiveProcs() int { return e.procs }

// Proc is a simulated process: a coroutine that can block in virtual time.
// All Proc methods must be called from the Proc's own goroutine (that is,
// from within the function passed to Spawn or functions it calls).
type Proc struct {
	E      *Engine
	Name   string
	resume chan struct{}
	parked chan struct{}
	dead   bool
}

// Spawn starts fn as a simulated process at the current virtual time.
// fn begins executing when the engine dispatches its start event.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{E: e, Name: name, resume: make(chan struct{}), parked: make(chan struct{})}
	e.procs++
	e.After(0, func() {
		go func() {
			// The deferred park runs even if fn panics or exits via
			// runtime.Goexit (e.g. t.Fatal in tests), so the engine is
			// never left waiting on a dead proc.
			defer func() {
				p.dead = true
				p.E.procs--
				p.parked <- struct{}{}
			}()
			<-p.resume
			fn(p)
		}()
		p.dispatch()
	})
	return p
}

// dispatch hands control to the proc's goroutine and blocks the engine until
// the proc parks (or finishes). It is the only place model goroutines run.
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.parked
}

// park suspends the calling proc, returning control to the engine, until
// some event calls dispatch again.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Sleep blocks the proc for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.Name, d))
	}
	p.E.After(d, p.dispatch)
	p.park()
}

// Done reports whether the proc's function has returned.
func (p *Proc) Done() bool { return p.dead }

// Wait blocks the proc until the signal fires. If the signal has already
// fired, Wait returns immediately.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p.dispatch)
	p.park()
}

// Signal is a one-shot broadcast condition: procs and callbacks can wait on
// it, and Fire releases all of them. Signals are the engine's analog of a
// closed channel.
type Signal struct {
	e       *Engine
	fired   bool
	firedAt Time
	waiters []func()
}

// NewSignal returns an unfired signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the virtual time Fire was called; zero if unfired.
func (s *Signal) FiredAt() Time { return s.firedAt }

// Fire releases all current waiters (as events at the current time) and
// makes future Wait/OnFire calls return/run immediately. Firing twice
// panics: one-shot semantics keep model bugs visible.
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	s.firedAt = s.e.now
	for _, w := range s.waiters {
		w := w
		s.e.After(0, w)
	}
	s.waiters = nil
}

// OnFire registers fn to run when the signal fires (immediately, as a
// zero-delay event, if it already fired).
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		s.e.After(0, fn)
		return
	}
	s.waiters = append(s.waiters, fn)
}
