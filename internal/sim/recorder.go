package sim

import "time"

// StepSeries records a piecewise-constant value over virtual time (e.g.
// "cores busy" or "bytes in flight") and can reduce it to per-bucket
// averages, which is how the per-second utilization timelines in Figure 2
// are produced.
type StepSeries struct {
	e     *Engine
	last  Time
	value float64
	steps []step
}

type step struct {
	at Time
	v  float64
}

// NewStepSeries returns a series starting at value 0 at the current time.
func NewStepSeries(e *Engine) *StepSeries {
	s := &StepSeries{e: e, last: e.now}
	s.steps = append(s.steps, step{at: e.now, v: 0})
	return s
}

// Set records that the value changed to v at the current virtual time.
func (s *StepSeries) Set(v float64) {
	now := s.e.now
	if n := len(s.steps); n > 0 && s.steps[n-1].at == now {
		s.steps[n-1].v = v
	} else {
		s.steps = append(s.steps, step{at: now, v: v})
	}
	s.value = v
}

// Add records a relative change of dv at the current virtual time.
func (s *StepSeries) Add(dv float64) { s.Set(s.value + dv) }

// Value returns the current value.
func (s *StepSeries) Value() float64 { return s.value }

// Integral returns the time-integral of the series between a and b,
// in value·seconds.
func (s *StepSeries) Integral(a, b Time) float64 {
	if b <= a {
		return 0
	}
	var total float64
	for i, st := range s.steps {
		segStart := st.at
		segEnd := b
		if i+1 < len(s.steps) {
			segEnd = s.steps[i+1].at
		}
		if segEnd <= a || segStart >= b {
			continue
		}
		if segStart < a {
			segStart = a
		}
		if segEnd > b {
			segEnd = b
		}
		total += st.v * (segEnd - segStart).Duration().Seconds()
	}
	return total
}

// Mean returns the time-weighted average value between a and b.
func (s *StepSeries) Mean(a, b Time) float64 {
	if b <= a {
		return 0
	}
	return s.Integral(a, b) / (b - a).Duration().Seconds()
}

// Buckets reduces the series to per-bucket time-weighted averages covering
// [from, to), with the given bucket width. It returns one value per bucket.
func (s *StepSeries) Buckets(from, to Time, width time.Duration) []float64 {
	if width <= 0 {
		panic("sim: StepSeries.Buckets: non-positive width")
	}
	var out []float64
	for t := from; t < to; t += Time(width) {
		end := t + Time(width)
		if end > to {
			end = to
		}
		out = append(out, s.Mean(t, end))
	}
	return out
}

// CountSeries accumulates discrete quantities (e.g. bytes read) into
// buckets of virtual time, producing rate timelines such as disk MB/s.
type CountSeries struct {
	e      *Engine
	events []countEvent
}

type countEvent struct {
	at Time
	v  float64
}

// NewCountSeries returns an empty count series.
func NewCountSeries(e *Engine) *CountSeries { return &CountSeries{e: e} }

// Add records that quantity v occurred at the current virtual time.
func (c *CountSeries) Add(v float64) {
	c.events = append(c.events, countEvent{at: c.e.now, v: v})
}

// AddSpread records quantity v spread uniformly over [now, now+d), so a
// long transfer contributes to every bucket it overlaps rather than
// spiking at its start instant.
func (c *CountSeries) AddSpread(v float64, d time.Duration) {
	if d <= 0 {
		c.Add(v)
		return
	}
	// Record as many evenly spaced samples as there are whole 100ms slices,
	// which is finer than the 1s buckets the harness uses.
	const slice = 100 * time.Millisecond
	n := int(d / slice)
	if n < 1 {
		n = 1
	}
	per := v / float64(n)
	for i := 0; i < n; i++ {
		at := c.e.now + Time(time.Duration(i)*d/time.Duration(n))
		c.events = append(c.events, countEvent{at: at, v: per})
	}
}

// Total returns the sum of all recorded quantities in [a, b).
func (c *CountSeries) Total(a, b Time) float64 {
	var total float64
	for _, ev := range c.events {
		if ev.at >= a && ev.at < b {
			total += ev.v
		}
	}
	return total
}

// Buckets sums quantities into buckets of the given width covering [from, to).
func (c *CountSeries) Buckets(from, to Time, width time.Duration) []float64 {
	if width <= 0 {
		panic("sim: CountSeries.Buckets: non-positive width")
	}
	n := int((to - from + Time(width) - 1) / Time(width))
	if n < 0 {
		n = 0
	}
	out := make([]float64, n)
	for _, ev := range c.events {
		if ev.at < from || ev.at >= to {
			continue
		}
		out[int((ev.at-from)/Time(width))] += ev.v
	}
	return out
}
