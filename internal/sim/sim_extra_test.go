package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResourceUseFor(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			r.UseFor(p, 1, Time(time.Second))
			ends = append(ends, e.Now())
		})
	}
	e.Run()
	want := []Time{Time(time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.InUse() != 0 {
		t.Fatalf("resource still held: %d", r.InUse())
	}
}

func TestResourceQueuedCount(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	e.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(2 * time.Second)
		r.Release(1)
	})
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Sleep(time.Millisecond)
			r.Acquire(p, 1)
			r.Release(1)
		})
	}
	e.After(time.Second, func() {
		if got := r.Queued(); got != 3 {
			t.Errorf("queued = %d, want 3", got)
		}
	})
	e.Run()
}

func TestSignalOnFire(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	var order []string
	s.OnFire(func() { order = append(order, "cb1") })
	e.Spawn("x", func(p *Proc) {
		p.Sleep(time.Second)
		s.Fire()
	})
	e.Run()
	// Registering on a fired signal still runs (as a fresh event).
	s.OnFire(func() { order = append(order, "cb2") })
	e.Run()
	if len(order) != 2 || order[0] != "cb1" || order[1] != "cb2" {
		t.Fatalf("order = %v", order)
	}
}

func TestProcDone(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("x", func(p *Proc) { p.Sleep(time.Second) })
	if p.Done() {
		t.Fatal("proc done before running")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("proc not done after Run")
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("x", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-time.Second)
	})
	e.Run()
}

func TestEngineSurvivesProcGoexit(t *testing.T) {
	// A proc whose function exits abnormally (the deferred park) must not
	// wedge the engine; remaining events still run.
	e := NewEngine(1)
	ran := false
	e.Spawn("dying", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panicSafeGoexit()
	})
	e.After(time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("engine stopped after abnormal proc exit")
	}
}

// panicSafeGoexit emulates t.Fatal's control flow (runtime.Goexit) without
// importing runtime in a way vet dislikes.
func panicSafeGoexit() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	// Use a recovered panic: the deferred park in Spawn must still fire.
	defer func() { recover() }()
	panic("simulated abnormal exit")
}

// Property: N procs each sleeping a random duration all finish, the final
// clock equals the maximum sleep, and no procs leak.
func TestPropertyAllProcsFinish(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 50 {
			return true
		}
		e := NewEngine(1)
		var max Time
		finished := 0
		for _, d := range durs {
			d := time.Duration(d) * time.Microsecond
			if Time(d) > max {
				max = Time(d)
			}
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				finished++
			})
		}
		e.Run()
		return finished == len(durs) && e.Now() == max && e.LiveProcs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource never exceeds capacity and serves everyone.
func TestPropertyResourceNeverOvercommits(t *testing.T) {
	f := func(holds []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		if len(holds) == 0 || len(holds) > 40 {
			return true
		}
		e := NewEngine(1)
		r := NewResource(e, "r", capacity)
		ok := true
		r.OnChange(func(n int) {
			if n < 0 || n > capacity {
				ok = false
			}
		})
		served := 0
		for _, h := range holds {
			n := int(h)%capacity + 1
			d := time.Duration(h) * time.Microsecond
			e.Spawn("w", func(p *Proc) {
				r.Acquire(p, n)
				p.Sleep(d)
				r.Release(n)
				served++
			})
		}
		e.Run()
		return ok && served == len(holds) && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reported a pending event")
	}
	late := e.At(Time(5*time.Second), func() {})
	early := e.At(Time(time.Second), func() {})
	if at, ok := e.NextEventAt(); !ok || at != Time(time.Second) {
		t.Fatalf("NextEventAt = %v, %v; want 1s, true", at, ok)
	}
	// Cancelling the head must expose the next live event, not the corpse.
	early.Cancel()
	if at, ok := e.NextEventAt(); !ok || at != Time(5*time.Second) {
		t.Fatalf("after cancel: NextEventAt = %v, %v; want 5s, true", at, ok)
	}
	late.Cancel()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("engine with only cancelled events reported a pending event")
	}
	// Discarding cancelled heads must not disturb dispatch order.
	e.At(Time(2*time.Second), func() {})
	e.RunUntil(Time(3 * time.Second))
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("now = %v, want 3s", e.Now())
	}
}
