package sim

import "fmt"

// Resource is a counting resource (e.g. CPU cores, disk channels) with a
// FIFO wait queue. Procs acquire units, possibly blocking in virtual time,
// and release them when done. Acquisition order is strictly first-come
// first-served to keep simulations deterministic and starvation-free.
type Resource struct {
	e        *Engine
	name     string
	capacity int
	inUse    int
	queue    []*resWaiter
	onChange func(inUse int) // optional utilization hook
}

type resWaiter struct {
	n      int
	wake   func()
	abort  bool
	doneCh bool
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{e: e, name: name, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of procs waiting to acquire.
func (r *Resource) Queued() int {
	n := 0
	for _, w := range r.queue {
		if !w.abort {
			n++
		}
	}
	return n
}

// OnChange registers fn to be called whenever the in-use count changes,
// with the new count. Used by utilization recorders.
func (r *Resource) OnChange(fn func(inUse int)) { r.onChange = fn }

func (r *Resource) setInUse(n int) {
	r.inUse = n
	if r.onChange != nil {
		r.onChange(n)
	}
}

// Acquire blocks p until n units are available, then holds them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of %d", r.name, n, r.capacity))
	}
	if len(r.queue) == 0 && r.inUse+n <= r.capacity {
		r.setInUse(r.inUse + n)
		return
	}
	w := &resWaiter{n: n, wake: p.dispatch}
	r.queue = append(r.queue, w)
	p.park()
}

// TryAcquire attempts to take n units without blocking and reports whether
// it succeeded.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of %d", r.name, n, r.capacity))
	}
	if len(r.queue) == 0 && r.inUse+n <= r.capacity {
		r.setInUse(r.inUse + n)
		return true
	}
	return false
}

// Release returns n units and wakes queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: resource %q: release %d with %d in use", r.name, n, r.inUse))
	}
	r.setInUse(r.inUse - n)
	r.pump()
}

// pump admits queue heads while they fit. FIFO: a large request at the head
// blocks smaller ones behind it (no barging), matching a fair scheduler.
func (r *Resource) pump() {
	for len(r.queue) > 0 {
		w := r.queue[0]
		if w.abort {
			r.queue = r.queue[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			return
		}
		r.queue = r.queue[1:]
		r.setInUse(r.inUse + w.n)
		w.doneCh = true
		// Wake as a zero-delay event so the releasing proc finishes its
		// current step before the waiter resumes.
		wake := w.wake
		r.e.After(0, wake)
	}
}

// UseFor acquires n units, sleeps for d, and releases them. It is the
// common "occupy a resource for a service time" idiom.
func (r *Resource) UseFor(p *Proc, n int, d Time) {
	r.Acquire(p, n)
	p.Sleep(d.Duration())
	r.Release(n)
}
