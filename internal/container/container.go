// Package container implements the LXC-style OS container runtime beneath
// Cloud Android Containers: create/start/stop lifecycle, a union-mounted
// root filesystem, a device namespace for the Android pseudo drivers, and
// cgroup-style memory/CPU limits. Containers share the host kernel, so
// there is no guest kernel to boot — Create is two orders of magnitude
// cheaper than a VM's bring-up — and their virtualization efficiencies are
// near-native.
package container

import (
	"errors"
	"fmt"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/kernel"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

// State is the container lifecycle state.
type State int

const (
	// StateCreated means namespaces and rootfs exist but nothing runs.
	StateCreated State = iota
	// StateRunning means the container has running processes.
	StateRunning
	// StateStopped means the container was shut down.
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config describes one container.
type Config struct {
	Name string
	// MemLimitMB is the cgroup memory limit (Table I: 128 MB for the
	// non-optimized Cloud Android Container, 96 MB optimized).
	MemLimitMB int
	// VCPUs is the CPU allocation (1 in Table I).
	VCPUs int
	// CPUEff / IOEff are steady-state efficiencies: containers run at
	// near-native speed (no binary translation, no emulated devices).
	CPUEff float64
	IOEff  float64
}

// DefaultConfig returns the Table I container configuration.
func DefaultConfig(name string, memLimitMB int) Config {
	return Config{Name: name, MemLimitMB: memLimitMB, VCPUs: 1, CPUEff: 0.99, IOEff: 0.93}
}

// Fixed lifecycle costs: clone(2) with new namespaces, cgroup setup and
// the union mount. Measured LXC starts are O(100 ms).
const (
	createDelay = 80 * time.Millisecond
	mountDelay  = 40 * time.Millisecond
	stopDelay   = 30 * time.Millisecond
)

// ErrMemLimit is returned when an allocation would exceed the cgroup limit.
var ErrMemLimit = errors.New("container: cgroup memory limit exceeded")

// Container is one OS container. It implements android.Env.
type Container struct {
	h   *host.Host
	k   *kernel.Kernel
	cfg Config

	ns    *kernel.Namespace
	fs    *unionfs.Mount
	state State

	memUsedMB  int
	memPeakMB  int
	createTime time.Duration
}

// Create builds a container on h: namespaces, cgroups, a device namespace
// in k, and a union rootfs of upper over lowers. It blocks p for the
// setup time.
func Create(p *sim.Proc, h *host.Host, k *kernel.Kernel, cfg Config, upper *unionfs.Layer, lowers ...*unionfs.Layer) (*Container, error) {
	if cfg.MemLimitMB <= 0 {
		return nil, fmt.Errorf("container %s: memory limit %d MB", cfg.Name, cfg.MemLimitMB)
	}
	if cfg.CPUEff <= 0 || cfg.CPUEff > 1 || cfg.IOEff <= 0 || cfg.IOEff > 1 {
		return nil, fmt.Errorf("container %s: bad efficiencies %v/%v", cfg.Name, cfg.CPUEff, cfg.IOEff)
	}
	start := p.E.Now()
	p.Sleep(createDelay)
	fs, err := unionfs.NewMount(h, cfg.Name, upper, lowers...)
	if err != nil {
		return nil, fmt.Errorf("container %s: %w", cfg.Name, err)
	}
	p.Sleep(mountDelay)
	c := &Container{
		h: h, k: k, cfg: cfg,
		ns:         k.NewNamespace(cfg.Name),
		fs:         fs,
		state:      StateRunning,
		createTime: (p.E.Now() - start).Duration(),
	}
	return c, nil
}

// Clone lifecycle costs: namespaces and cgroups are stamped from a
// prepared template instead of assembled from scratch, and the union
// mount splices the frozen template layer instead of re-building the
// image stack — an order of magnitude cheaper than Create.
const (
	cloneCreateDelay = 10 * time.Millisecond
	cloneMountDelay  = 5 * time.Millisecond
)

// Clone builds a container as a copy-on-write twin of src at template
// capture time: a fresh writable upper over tmpl (a unionfs Snapshot of
// src's upper) and src's shared lower stack. src may already be stopped —
// only its mount recipe and host/kernel bindings are read. It blocks p
// for the (cheap) clone setup time.
func Clone(p *sim.Proc, src *Container, cfg Config, upper, tmpl *unionfs.Layer) (*Container, error) {
	if cfg.MemLimitMB <= 0 {
		return nil, fmt.Errorf("container %s: memory limit %d MB", cfg.Name, cfg.MemLimitMB)
	}
	if cfg.CPUEff <= 0 || cfg.CPUEff > 1 || cfg.IOEff <= 0 || cfg.IOEff > 1 {
		return nil, fmt.Errorf("container %s: bad efficiencies %v/%v", cfg.Name, cfg.CPUEff, cfg.IOEff)
	}
	start := p.E.Now()
	p.Sleep(cloneCreateDelay)
	fs, err := src.fs.CloneFrom(cfg.Name, upper, tmpl)
	if err != nil {
		return nil, fmt.Errorf("container %s: %w", cfg.Name, err)
	}
	p.Sleep(cloneMountDelay)
	c := &Container{
		h: src.h, k: src.k, cfg: cfg,
		ns:         src.k.NewNamespace(cfg.Name),
		fs:         fs,
		state:      StateRunning,
		createTime: (p.E.Now() - start).Duration(),
	}
	return c, nil
}

// Name returns the container id.
func (c *Container) Name() string { return c.cfg.Name }

// Host returns the machine the container runs on.
func (c *Container) Host() *host.Host { return c.h }

// FS returns the container's root filesystem view.
func (c *Container) FS() *unionfs.Mount { return c.fs }

// OpenDevice opens a /dev node through the container's device namespace.
func (c *Container) OpenDevice(dev string) (*kernel.Handle, error) {
	if c.state != StateRunning {
		return nil, fmt.Errorf("container %s: not running", c.cfg.Name)
	}
	return c.k.Open(c.ns, dev)
}

// CPUEff returns the steady-state CPU efficiency.
func (c *Container) CPUEff() float64 { return c.cfg.CPUEff }

// IOEff returns the steady-state I/O efficiency.
func (c *Container) IOEff() float64 { return c.cfg.IOEff }

// NetOverhead is the per-exchange veth/bridge cost: near native.
func (c *Container) NetOverhead() time.Duration { return 2 * time.Millisecond }

// BootCPUEff equals CPUEff: container boots run the same near-native path.
func (c *Container) BootCPUEff() float64 { return c.cfg.CPUEff }

// BootIOEff equals IOEff.
func (c *Container) BootIOEff() float64 { return c.cfg.IOEff }

// AllocMem charges guest memory against the cgroup limit and the host.
func (c *Container) AllocMem(mb int) error {
	if c.memUsedMB+mb > c.cfg.MemLimitMB {
		return fmt.Errorf("%w: %s: %d+%d > %d MB", ErrMemLimit, c.cfg.Name, c.memUsedMB, mb, c.cfg.MemLimitMB)
	}
	if err := c.h.AllocMem(mb); err != nil {
		return fmt.Errorf("container %s: %w", c.cfg.Name, err)
	}
	c.memUsedMB += mb
	if c.memUsedMB > c.memPeakMB {
		c.memPeakMB = c.memUsedMB
	}
	return nil
}

// FreeMem releases guest memory back to the host.
func (c *Container) FreeMem(mb int) {
	if mb > c.memUsedMB {
		mb = c.memUsedMB
	}
	c.memUsedMB -= mb
	c.h.FreeMem(mb)
}

// MemUsedMB returns the container's resident memory.
func (c *Container) MemUsedMB() int { return c.memUsedMB }

// MemPeakMB returns the container's peak resident memory.
func (c *Container) MemPeakMB() int { return c.memPeakMB }

// MemLimitMB returns the configured cgroup limit.
func (c *Container) MemLimitMB() int { return c.cfg.MemLimitMB }

// State returns the lifecycle state.
func (c *Container) State() State { return c.state }

// CreateTime reports how long Create took.
func (c *Container) CreateTime() time.Duration { return c.createTime }

// DiskUsageBytes is the container's private disk footprint: its writable
// upper layer only. Shared lower layers are charged once, platform-wide.
func (c *Container) DiskUsageBytes() host.Bytes { return c.fs.Upper().Size() }

// Stop shuts the container down, releasing any memory still charged.
func (c *Container) Stop(p *sim.Proc) error {
	if c.state != StateRunning {
		return fmt.Errorf("container %s: stop in state %s", c.cfg.Name, c.state)
	}
	p.Sleep(stopDelay)
	if c.memUsedMB > 0 {
		c.h.FreeMem(c.memUsedMB)
		c.memUsedMB = 0
	}
	c.state = StateStopped
	return nil
}
