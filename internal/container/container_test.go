package container

import (
	"errors"
	"testing"

	"rattrap/internal/host"
	"rattrap/internal/kernel"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

func newHarness() (*sim.Engine, *host.Host, *kernel.Kernel) {
	e := sim.NewEngine(1)
	h := host.New(e, host.CloudServer())
	return e, h, kernel.New(e, h, "3.18.0")
}

func TestCreateFastAndRunning(t *testing.T) {
	e, h, k := newHarness()
	e.Spawn("t", func(p *sim.Proc) {
		c, err := Create(p, h, k, DefaultConfig("c1", 128), unionfs.NewLayer("d", false))
		if err != nil {
			t.Fatal(err)
		}
		if c.State() != StateRunning {
			t.Errorf("state = %v", c.State())
		}
		if c.CreateTime() <= 0 || c.CreateTime().Seconds() > 1 {
			t.Errorf("create time = %v, want O(100ms)", c.CreateTime())
		}
	})
	e.Run()
}

func TestConfigValidation(t *testing.T) {
	e, h, k := newHarness()
	e.Spawn("t", func(p *sim.Proc) {
		if _, err := Create(p, h, k, Config{Name: "x", MemLimitMB: 0, CPUEff: 0.9, IOEff: 0.9}, unionfs.NewLayer("d", false)); err == nil {
			t.Error("zero memory limit accepted")
		}
		if _, err := Create(p, h, k, Config{Name: "x", MemLimitMB: 64, CPUEff: 1.5, IOEff: 0.9}, unionfs.NewLayer("d", false)); err == nil {
			t.Error("efficiency > 1 accepted")
		}
		if _, err := Create(p, h, k, DefaultConfig("x", 64), unionfs.NewLayer("ro", true)); err == nil {
			t.Error("read-only upper accepted")
		}
	})
	e.Run()
}

func TestCgroupMemoryLimit(t *testing.T) {
	e, h, k := newHarness()
	e.Spawn("t", func(p *sim.Proc) {
		c, _ := Create(p, h, k, DefaultConfig("c1", 100), unionfs.NewLayer("d", false))
		if err := c.AllocMem(60); err != nil {
			t.Fatal(err)
		}
		if err := c.AllocMem(50); !errors.Is(err, ErrMemLimit) {
			t.Errorf("over-limit alloc: err = %v, want ErrMemLimit", err)
		}
		if h.MemUsedMB() != 60 {
			t.Errorf("host charged %d MB, want 60", h.MemUsedMB())
		}
		c.FreeMem(60)
		if h.MemUsedMB() != 0 {
			t.Errorf("host still charged %d MB", h.MemUsedMB())
		}
	})
	e.Run()
}

func TestStopReleasesMemory(t *testing.T) {
	e, h, k := newHarness()
	e.Spawn("t", func(p *sim.Proc) {
		c, _ := Create(p, h, k, DefaultConfig("c1", 100), unionfs.NewLayer("d", false))
		c.AllocMem(40)
		if err := c.Stop(p); err != nil {
			t.Fatal(err)
		}
		if c.State() != StateStopped {
			t.Errorf("state = %v", c.State())
		}
		if h.MemUsedMB() != 0 {
			t.Errorf("stop leaked %d MB", h.MemUsedMB())
		}
		if err := c.Stop(p); err == nil {
			t.Error("double stop succeeded")
		}
		if _, err := c.OpenDevice("/dev/binder"); err == nil {
			t.Error("device open on stopped container succeeded")
		}
	})
	e.Run()
}

func TestDiskUsageIsUpperLayerOnly(t *testing.T) {
	e, h, k := newHarness()
	shared := unionfs.NewLayer("shared", true)
	shared.AddFile("/system/framework/framework.jar", 300*host.MB, nil)
	e.Spawn("t", func(p *sim.Proc) {
		c, _ := Create(p, h, k, DefaultConfig("c1", 100), unionfs.NewLayer("c1-delta", false), shared)
		c.FS().Write(p, "/data/props", 5*host.MB, nil, 1.0)
		if got := c.DiskUsageBytes(); got != 5*host.MB {
			t.Errorf("disk usage = %d MB, want 5 (private delta only)", got/host.MB)
		}
	})
	e.Run()
}

func TestStateString(t *testing.T) {
	if StateCreated.String() != "created" || StateRunning.String() != "running" || StateStopped.String() != "stopped" {
		t.Fatal("State.String mismatch")
	}
}
