package core

import (
	"errors"
	"testing"
	"time"

	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// TestBoundedAdmissionRejectsWithRetryAfter pins the dispatcher's overload
// behavior: with the pool capped and the wait ring at MaxQueueDepth, a
// further Prepare is rejected with a typed OverloadedError carrying a
// positive retry-after hint, instead of queueing unboundedly.
func TestBoundedAdmissionRejectsWithRetryAfter(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	cfg.MaxQueueDepth = 1
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())
	req := offload.ExecRequest{DeviceID: "phone-a", AID: aid, App: app.Name(), Method: "run"}

	var holder offload.Session
	var queuedErr, rejectedErr error
	queuedDone := false
	e.Spawn("holder", func(p *sim.Proc) {
		s, err := pl.Prepare(p, req)
		if err != nil {
			t.Errorf("holder prepare: %v", err)
			return
		}
		holder = s
		p.Sleep(30 * time.Second) // pin the only slot
		s.Release()
	})
	e.Spawn("queued", func(p *sim.Proc) {
		p.Sleep(5 * time.Second) // after the holder owns the slot
		var s offload.Session
		s, queuedErr = pl.Prepare(p, req) // occupies the single queue seat
		queuedDone = true
		if s != nil {
			s.Release()
		}
	})
	e.Spawn("rejected", func(p *sim.Proc) {
		p.Sleep(10 * time.Second) // after the queue seat is taken
		if queuedDone {
			t.Error("queued request completed before the holder released")
		}
		_, rejectedErr = pl.Prepare(p, req)
	})
	e.Run()

	if holder == nil {
		t.Fatal("holder never acquired a slot")
	}
	if queuedErr != nil {
		t.Fatalf("queued request should eventually win the slot: %v", queuedErr)
	}
	if !queuedDone {
		t.Fatal("queued request never completed")
	}
	if rejectedErr == nil {
		t.Fatal("third request admitted past MaxQueueDepth")
	}
	if !errors.Is(rejectedErr, offload.ErrOverloaded) {
		t.Fatalf("rejection = %v, want ErrOverloaded", rejectedErr)
	}
	var over *offload.OverloadedError
	if !errors.As(rejectedErr, &over) {
		t.Fatalf("rejection %v does not unwrap to *OverloadedError", rejectedErr)
	}
	if over.QueueDepth != 1 {
		t.Errorf("QueueDepth = %d, want 1", over.QueueDepth)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want positive hint", over.RetryAfter)
	}
}

// TestUnboundedQueueWhenDepthUnset pins backward compatibility: with
// MaxQueueDepth zero the dispatcher queues without limit, as before.
func TestUnboundedQueueWhenDepthUnset(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameChess)
	completed := 0
	for i := 0; i < 5; i++ {
		d := mustDeviceIn(t, e, "phone-"+string(rune('a'+i)))
		e.Spawn("req", func(p *sim.Proc) {
			if _, _, err := d.Offload(p, d.NewTask(app), app.CodeSize(), pl); err != nil {
				t.Errorf("offload: %v", err)
				return
			}
			completed++
		})
	}
	e.Run()
	if completed != 5 {
		t.Fatalf("completed = %d, want all 5 queued and served", completed)
	}
}

// TestAbortedPushHandsClaimToExactlyOneWaiter pins the "warehouse lost"
// scenario: the device that claimed the first code push for an AID dies
// before delivering, while other sessions wait on the in-flight push.
// Exactly one waiter must re-claim (its Execute surfaces ErrCodeNeeded so
// its device transfers the code after all); the rest ride the re-claimed
// push through the warehouse. Nobody hangs, nobody double-pushes.
func TestAbortedPushHandsClaimToExactlyOneWaiter(t *testing.T) {
	e := sim.NewEngine(7)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 3
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())
	reqFor := func(dev string) offload.ExecRequest {
		d := mustDeviceIn(t, e, dev)
		task := d.NewTask(app)
		return offload.ExecRequest{DeviceID: dev, AID: aid, App: task.App, Method: task.Method,
			Params: task.Params, ParamBytes: task.ParamBytes}
	}

	var s1 offload.Session
	e.Spawn("aborter", func(p *sim.Proc) {
		s, err := pl.Prepare(p, reqFor("phone-dead"))
		if err != nil {
			t.Errorf("aborter prepare: %v", err)
			return
		}
		if !s.NeedCode() {
			t.Error("first session must be asked for code")
		}
		s1 = s
		// The device disconnects before pushing: hold the claim a while so
		// the waiters land in the in-flight wait, then abort.
		p.Sleep(10 * time.Second)
		s.Release()
	})

	reclaims, successes := 0, 0
	for i := 0; i < 2; i++ {
		dev := "phone-" + string(rune('b'+i))
		e.Spawn("waiter", func(p *sim.Proc) {
			p.Sleep(2 * time.Second) // after the aborter holds the claim
			s, err := pl.Prepare(p, reqFor(dev))
			if err != nil {
				t.Errorf("%s prepare: %v", dev, err)
				return
			}
			defer s.Release()
			if s.NeedCode() {
				t.Errorf("%s: push in flight, session must wait not transfer", dev)
			}
			res, err := s.Execute(p)
			if errors.Is(err, offload.ErrCodeNeeded) {
				reclaims++
				if err := s.PushCode(p, offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}); err != nil {
					t.Errorf("%s re-claim push: %v", dev, err)
					return
				}
				res, err = s.Execute(p)
			}
			if err != nil || res.Err != "" {
				t.Errorf("%s execute: %v / %q", dev, err, res.Err)
				return
			}
			successes++
		})
	}
	e.Run()

	if s1 == nil {
		t.Fatal("aborter never prepared")
	}
	if reclaims != 1 {
		t.Fatalf("re-claims = %d, want exactly one waiter to take over the push", reclaims)
	}
	if successes != 2 {
		t.Fatalf("successes = %d, want both waiters to finish", successes)
	}
	if entries, _, _ := pl.Warehouse().Stats(); entries != 1 {
		t.Fatalf("warehouse entries = %d, want the single re-claimed push", entries)
	}
}

// TestBootFaultFailsPrepare pins fault injection at the boot site: an
// injected boot failure must surface from Prepare and must not leak a
// half-registered runtime.
func TestBootFaultFailsPrepare(t *testing.T) {
	e := sim.NewEngine(1)
	pl := New(e, DefaultConfig(KindRattrap))
	bootErr := errors.New("injected boot failure")
	calls := 0
	pl.SetBootFault(func(p *sim.Proc, id string) error {
		calls++
		if calls == 1 {
			return bootErr
		}
		return nil
	})
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())
	req := offload.ExecRequest{DeviceID: "phone-a", AID: aid, App: app.Name(), Method: "bestMove"}
	e.Spawn("t", func(p *sim.Proc) {
		if _, err := pl.Prepare(p, req); !errors.Is(err, bootErr) {
			t.Errorf("first prepare error = %v, want the injected boot fault", err)
		}
		if pl.RuntimeCount() != 0 {
			t.Errorf("failed boot leaked a runtime: count = %d", pl.RuntimeCount())
		}
		s, err := pl.Prepare(p, req)
		if err != nil {
			t.Errorf("second prepare: %v", err)
			return
		}
		s.Release()
	})
	e.Run()
	if pl.RuntimeCount() != 1 {
		t.Fatalf("runtimes = %d, want the retried boot to stand", pl.RuntimeCount())
	}
}
