package core

import (
	"rattrap/internal/metrics"
	"rattrap/internal/obs"
)

// platformMetrics is the platform's pre-resolved instrument set. Every
// instrument is looked up once, at SetObs time, so the request hot path
// never touches the registry's maps — it dereferences cached pointers or,
// when observability is off (pl.om == nil), skips with one nil check.
type platformMetrics struct {
	reg *obs.Registry

	whHits      *obs.Counter // warehouse cache hits (code transfer skipped)
	whMisses    *obs.Counter // warehouse misses (device must push code)
	whCoalesced *obs.Counter // requests that waited on another's in-flight push
	whEvictions *obs.Counter // entries dropped by capacity enforcement
	whBytes     *obs.Gauge   // staged code volume (dedup'd chunk store counted once)

	boots           *obs.Counter // runtime boots (request path and pre-warm)
	tmplClones      *obs.Counter // boots satisfied by cloning the template
	bootFails       *obs.Counter // boots that failed (incl. injected faults)
	affinityHits    *obs.Counter // dispatches served by the AID-affinity index
	queued          *obs.Counter // requests that waited in the FIFO ring
	overloadRejects *obs.Counter // bounded-admission rejections
	executes        *obs.Counter // completed workload executions

	poolSize *obs.Gauge // current runtime pool size
	queueLen *obs.Gauge // current dispatcher wait-ring depth

	// Elastic-pool control loop (autoscaler.go) and health remediation
	// (failuretracker.go) instruments.
	asTicks     *obs.Counter                  // control ticks executed
	asBoots     *obs.Counter                  // loop-initiated boots that completed
	asStops     *obs.Counter                  // shrink stops that completed
	asLimit     *obs.Gauge                    // current elastic boot ceiling
	asQueueEWMA *obs.Gauge                    // smoothed wait-ring depth ×1000
	cordons     *obs.Counter                  // runtimes cordoned for repeated failures
	healthFails [numFailureKinds]*obs.Counter // failures by kind (boot/exec/teardown)

	// lifeEdges counts every lifecycle edge taken, indexed [from][to];
	// only legal edges are resolved (illegal ones panic in Transition
	// before reaching the hook). lifeStates gauges the live-runtime census
	// per state, refreshed from the ContainerDB on every edge.
	lifeEdges  [numLifecycleStates][numLifecycleStates]*obs.Counter
	lifeStates [numLifecycleStates]*obs.Gauge

	queueWait  *metrics.ShardedHistogram // virtual time parked in the wait ring
	bootTime   *metrics.ShardedHistogram // virtual boot duration
	tmplClone  *metrics.ShardedHistogram // virtual boot duration, template clones only
	codeStage  *metrics.ShardedHistogram // virtual code staging (push path)
	chunkStage *metrics.ShardedHistogram // virtual chunk staging (delta push path)
	whLoad     *metrics.ShardedHistogram // virtual warehouse-sourced code load
	runTime    *metrics.ShardedHistogram // virtual pure workload execution
}

// SetObs points the platform at an observability registry. All dispatcher,
// warehouse and runtime instruments are created (or re-resolved) in reg;
// a nil reg disables recording entirely. Durations recorded here are
// virtual time — the engine's clock, never the wall clock — so they are
// bit-deterministic per seed in simulations and correctly paced in the
// realtime server.
func (pl *Platform) SetObs(reg *obs.Registry) { pl.SetObsPrefixed(reg, "") }

// SetObsPrefixed is SetObs with every instrument name prefixed — the
// cluster gateway labels each shard's instruments "shardN." so one shared
// registry scrape separates the shards.
func (pl *Platform) SetObsPrefixed(reg *obs.Registry, prefix string) {
	if reg == nil {
		pl.om = nil
		pl.db.SetLifecycleHooks(nil, nil)
		return
	}
	om := &platformMetrics{
		reg:             reg,
		whHits:          reg.Counter(prefix + "warehouse.hits"),
		whMisses:        reg.Counter(prefix + "warehouse.misses"),
		whCoalesced:     reg.Counter(prefix + "warehouse.coalesced_pushes"),
		whEvictions:     reg.Counter(prefix + "warehouse.evictions"),
		whBytes:         reg.Gauge(prefix + "warehouse.bytes"),
		boots:           reg.Counter(prefix + "dispatch.boots"),
		tmplClones:      reg.Counter(prefix + "dispatch.template_clones"),
		bootFails:       reg.Counter(prefix + "dispatch.boot_failures"),
		affinityHits:    reg.Counter(prefix + "dispatch.affinity_hits"),
		queued:          reg.Counter(prefix + "dispatch.queued"),
		overloadRejects: reg.Counter(prefix + "dispatch.overload_rejects"),
		executes:        reg.Counter(prefix + "core.executes"),
		poolSize:        reg.Gauge(prefix + "core.pool_size"),
		queueLen:        reg.Gauge(prefix + "core.queue_len"),
		asTicks:         reg.Counter(prefix + "autoscale.ticks"),
		asBoots:         reg.Counter(prefix + "autoscale.boots"),
		asStops:         reg.Counter(prefix + "autoscale.stops"),
		asLimit:         reg.Gauge(prefix + "autoscale.limit"),
		asQueueEWMA:     reg.Gauge(prefix + "autoscale.queue_ewma_x1000"),
		cordons:         reg.Counter(prefix + "health.cordons"),
		queueWait:       reg.Histogram(prefix + "stage." + obs.StageQueueWait),
		bootTime:        reg.Histogram(prefix + "stage." + obs.StageBoot),
		tmplClone:       reg.Histogram(prefix + "stage." + obs.StageTemplateClone),
		codeStage:       reg.Histogram(prefix + "stage." + obs.StageCodeStage),
		chunkStage:      reg.Histogram(prefix + "stage." + obs.StageChunkStage),
		whLoad:          reg.Histogram(prefix + "stage." + obs.StageWarehouseLoad),
		runTime:         reg.Histogram(prefix + "stage." + obs.StageRun),
	}
	for k := FailureKind(0); k < numFailureKinds; k++ {
		om.healthFails[k] = reg.Counter(prefix + "health.fail." + k.String())
	}
	for from, tos := range lifecycleEdges {
		for _, to := range tos {
			om.lifeEdges[from][to] = reg.Counter(prefix + "lifecycle.edge." + from.String() + "_" + to.String())
		}
	}
	for _, s := range LifecycleStates() {
		om.lifeStates[s] = reg.Gauge(prefix + "lifecycle.state." + s.String())
	}
	pl.om = om
	pl.db.SetLifecycleHooks(pl.noteLifecycleEdge, pl.noteLifecycleGone)
}

// noteLifecycleEdge is the ContainerDB transition hook: count the edge and
// refresh the census gauges of the two states it touched.
func (pl *Platform) noteLifecycleEdge(from, to Lifecycle) {
	om := pl.om
	if om == nil {
		return
	}
	if c := om.lifeEdges[from][to]; c != nil {
		c.Inc()
	}
	om.lifeStates[from].Set(int64(pl.db.StateCount(from)))
	om.lifeStates[to].Set(int64(pl.db.StateCount(to)))
}

// noteLifecycleGone is the ContainerDB removal hook: a record left the DB
// in its final state, so that state's census gauge shrinks.
func (pl *Platform) noteLifecycleGone(last Lifecycle) {
	if pl.om == nil {
		return
	}
	pl.om.lifeStates[last].Set(int64(pl.db.StateCount(last)))
}

// Obs returns the registry installed with SetObs, nil when disabled.
func (pl *Platform) Obs() *obs.Registry {
	if pl.om == nil {
		return nil
	}
	return pl.om.reg
}
