package core

import (
	"rattrap/internal/metrics"
	"rattrap/internal/obs"
)

// platformMetrics is the platform's pre-resolved instrument set. Every
// instrument is looked up once, at SetObs time, so the request hot path
// never touches the registry's maps — it dereferences cached pointers or,
// when observability is off (pl.om == nil), skips with one nil check.
type platformMetrics struct {
	reg *obs.Registry

	whHits      *obs.Counter // warehouse cache hits (code transfer skipped)
	whMisses    *obs.Counter // warehouse misses (device must push code)
	whCoalesced *obs.Counter // requests that waited on another's in-flight push

	boots           *obs.Counter // runtime boots (request path and pre-warm)
	bootFails       *obs.Counter // boots that failed (incl. injected faults)
	affinityHits    *obs.Counter // dispatches served by the AID-affinity index
	queued          *obs.Counter // requests that waited in the FIFO ring
	overloadRejects *obs.Counter // bounded-admission rejections
	executes        *obs.Counter // completed workload executions

	poolSize *obs.Gauge // current runtime pool size
	queueLen *obs.Gauge // current dispatcher wait-ring depth

	queueWait *metrics.ShardedHistogram // virtual time parked in the wait ring
	bootTime  *metrics.ShardedHistogram // virtual boot duration
	codeStage *metrics.ShardedHistogram // virtual code staging (push path)
	whLoad    *metrics.ShardedHistogram // virtual warehouse-sourced code load
	runTime   *metrics.ShardedHistogram // virtual pure workload execution
}

// SetObs points the platform at an observability registry. All dispatcher,
// warehouse and runtime instruments are created (or re-resolved) in reg;
// a nil reg disables recording entirely. Durations recorded here are
// virtual time — the engine's clock, never the wall clock — so they are
// bit-deterministic per seed in simulations and correctly paced in the
// realtime server.
func (pl *Platform) SetObs(reg *obs.Registry) {
	if reg == nil {
		pl.om = nil
		return
	}
	pl.om = &platformMetrics{
		reg:             reg,
		whHits:          reg.Counter("warehouse.hits"),
		whMisses:        reg.Counter("warehouse.misses"),
		whCoalesced:     reg.Counter("warehouse.coalesced_pushes"),
		boots:           reg.Counter("dispatch.boots"),
		bootFails:       reg.Counter("dispatch.boot_failures"),
		affinityHits:    reg.Counter("dispatch.affinity_hits"),
		queued:          reg.Counter("dispatch.queued"),
		overloadRejects: reg.Counter("dispatch.overload_rejects"),
		executes:        reg.Counter("core.executes"),
		poolSize:        reg.Gauge("core.pool_size"),
		queueLen:        reg.Gauge("core.queue_len"),
		queueWait:       reg.Histogram("stage." + obs.StageQueueWait),
		bootTime:        reg.Histogram("stage." + obs.StageBoot),
		codeStage:       reg.Histogram("stage." + obs.StageCodeStage),
		whLoad:          reg.Histogram("stage." + obs.StageWarehouseLoad),
		runTime:         reg.Histogram("stage." + obs.StageRun),
	}
}

// Obs returns the registry installed with SetObs, nil when disabled.
func (pl *Platform) Obs() *obs.Registry {
	if pl.om == nil {
		return nil
	}
	return pl.om.reg
}
