package core

import (
	"fmt"
	"sort"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// Lifecycle is a runtime's position in the Monitor & Scheduler's state
// machine. Every runtime the platform ever creates walks a path through
//
//	cold → booting → idle ⇄ active
//	                  idle → draining → reclaimed
//
// with two extra legal edges: booting → active (a request-path boot hands
// the fresh runtime straight to the request that triggered it) and
// booting → reclaimed (a failed boot). The zero value is LifecycleCold so
// a freshly constructed RuntimeInfo is born in the right state without
// naming it.
type Lifecycle int

// The lifecycle states, in path order.
const (
	// LifecycleCold: the record exists, nothing is provisioned yet.
	LifecycleCold Lifecycle = iota
	// LifecycleBooting: image/container/VM provisioning plus Android boot
	// and the Dispatcher registration handshake.
	LifecycleBooting
	// LifecycleIdle: registered with the Dispatcher and waiting for work;
	// the only state a runtime may be claimed or reclaimed from.
	LifecycleIdle
	// LifecycleActive: claimed by exactly one request (or handed directly
	// to the next queued request on release).
	LifecycleActive
	// LifecycleDraining: teardown in progress; unschedulable.
	LifecycleDraining
	// LifecycleReclaimed: resources returned to the server; the record is
	// removed from the DB immediately after entering this state.
	LifecycleReclaimed

	numLifecycleStates = int(LifecycleReclaimed) + 1
)

func (s Lifecycle) String() string {
	switch s {
	case LifecycleCold:
		return "cold"
	case LifecycleBooting:
		return "booting"
	case LifecycleIdle:
		return "idle"
	case LifecycleActive:
		return "active"
	case LifecycleDraining:
		return "draining"
	case LifecycleReclaimed:
		return "reclaimed"
	}
	return fmt.Sprintf("Lifecycle(%d)", int(s))
}

// LifecycleStates lists the states in path order (iteration in tests and
// metric registration).
func LifecycleStates() []Lifecycle {
	return []Lifecycle{LifecycleCold, LifecycleBooting, LifecycleIdle,
		LifecycleActive, LifecycleDraining, LifecycleReclaimed}
}

// lifecycleEdges is the legal transition relation. Anything not listed
// here is a platform bug, and Transition panics on it rather than let the
// pool bookkeeping drift.
var lifecycleEdges = map[Lifecycle][]Lifecycle{
	LifecycleCold:     {LifecycleBooting},
	LifecycleBooting:  {LifecycleIdle, LifecycleActive, LifecycleReclaimed},
	LifecycleIdle:     {LifecycleActive, LifecycleDraining},
	LifecycleActive:   {LifecycleIdle},
	LifecycleDraining: {LifecycleReclaimed},
}

// LegalTransition reports whether from → to is a legal lifecycle edge.
func LegalTransition(from, to Lifecycle) bool {
	for _, t := range lifecycleEdges[from] {
		if t == to {
			return true
		}
	}
	return false
}

// RuntimeInfo is one Container DB record: the platform's bookkeeping for a
// code runtime environment, the basis of resource management and of the
// Monitor & Scheduler's process-level decisions.
type RuntimeInfo struct {
	CID       string
	Kind      Kind
	BootedAt  sim.Time
	BootTime  time.Duration
	MemMB     int
	DiskBytes host.Bytes
	Executed  int
	Busy      bool
	LastUsed  sim.Time
	Processes int
	// State is the runtime's lifecycle position. It is mutated exclusively
	// by ContainerDB.Transition (enforced by `make lint`); everything else
	// only reads it.
	State Lifecycle
	// Traffic is the migrated data this runtime received/sent, by kind —
	// the per-VM composition of Figure 3.
	Traffic offload.Traffic
}

// clone returns an independent copy of the record.
func (r *RuntimeInfo) clone() *RuntimeInfo {
	c := *r
	return &c
}

// ContainerDB stores information about live runtimes and owns their
// lifecycle state: every state change flows through Transition, the single
// choke point that validates edges and notifies the observability hook.
type ContainerDB struct {
	rows   map[string]*RuntimeInfo
	states [numLifecycleStates]int // live-record census by state
	// onTransition observes every edge taken (from, to); onRemove observes
	// a record leaving the DB in its final state. Set by the platform's
	// SetObs; nil when observability is off.
	onTransition func(from, to Lifecycle)
	onRemove     func(last Lifecycle)
}

// NewContainerDB returns an empty database.
func NewContainerDB() *ContainerDB {
	return &ContainerDB{rows: make(map[string]*RuntimeInfo)}
}

// SetLifecycleHooks installs the observability callbacks fired on every
// transition and on record removal. Either may be nil.
func (db *ContainerDB) SetLifecycleHooks(onTransition func(from, to Lifecycle), onRemove func(last Lifecycle)) {
	db.onTransition = onTransition
	db.onRemove = onRemove
}

// Put inserts or replaces a record. The record's current state joins the
// census; new records are expected to be born LifecycleCold.
func (db *ContainerDB) Put(info *RuntimeInfo) {
	if old, ok := db.rows[info.CID]; ok {
		db.states[old.State]--
	}
	db.rows[info.CID] = info
	db.states[info.State]++
}

// Transition moves the runtime to a new lifecycle state. It is the only
// place in the codebase that writes RuntimeInfo.State (or Busy, which is
// derived from it); an illegal edge is a platform bug and panics.
func (db *ContainerDB) Transition(cid string, to Lifecycle) {
	info, ok := db.rows[cid]
	if !ok {
		panic(fmt.Sprintf("core: lifecycle transition to %s for unknown runtime %s", to, cid))
	}
	from := info.State
	if !LegalTransition(from, to) {
		panic(fmt.Sprintf("core: illegal lifecycle transition %s -> %s for runtime %s", from, to, cid))
	}
	info.State = to
	info.Busy = to == LifecycleActive
	db.states[from]--
	db.states[to]++
	if db.onTransition != nil {
		db.onTransition(from, to)
	}
}

// Get returns a copy of the record by CID. The DB's own records are live
// platform state; handing out copies keeps callers from mutating pool
// bookkeeping (and from observing it mid-request).
func (db *ContainerDB) Get(cid string) (*RuntimeInfo, bool) {
	r, ok := db.rows[cid]
	if !ok {
		return nil, false
	}
	return r.clone(), true
}

// Remove deletes a record.
func (db *ContainerDB) Remove(cid string) {
	info, ok := db.rows[cid]
	if !ok {
		return
	}
	db.states[info.State]--
	delete(db.rows, cid)
	if db.onRemove != nil {
		db.onRemove(info.State)
	}
}

// List returns copies of all records sorted by CID for deterministic
// iteration. The copies do not alias live platform state: mutating them
// (or the platform executing more requests) leaves the returned slice
// untouched.
func (db *ContainerDB) List() []*RuntimeInfo {
	out := make([]*RuntimeInfo, 0, len(db.rows))
	for _, r := range db.rows {
		out = append(out, r.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CID < out[j].CID })
	return out
}

// Count returns the number of live runtimes.
func (db *ContainerDB) Count() int { return len(db.rows) }

// StateCount returns how many live records are in the given state.
func (db *ContainerDB) StateCount(s Lifecycle) int {
	if s < 0 || int(s) >= numLifecycleStates {
		return 0
	}
	return db.states[s]
}

// Snapshot is the Monitor's view of the platform for schedulers and the
// harness.
type Snapshot struct {
	Runtimes     []*RuntimeInfo
	TotalMemMB   int
	TotalDisk    host.Bytes
	TotalExec    int
	BusyRuntimes int
	// States is the lifecycle census of the live records at snapshot time.
	States map[Lifecycle]int
}

// Snapshot aggregates the database. Like List, the returned records are
// copies.
func (db *ContainerDB) Snapshot() Snapshot {
	s := Snapshot{Runtimes: db.List(), States: make(map[Lifecycle]int)}
	for _, r := range s.Runtimes {
		s.TotalMemMB += r.MemMB
		s.TotalDisk += r.DiskBytes
		s.TotalExec += r.Executed
		s.States[r.State]++
		if r.Busy {
			s.BusyRuntimes++
		}
	}
	return s
}
