package core

import (
	"sort"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// RuntimeInfo is one Container DB record: the platform's bookkeeping for a
// code runtime environment, the basis of resource management and of the
// Monitor & Scheduler's process-level decisions.
type RuntimeInfo struct {
	CID       string
	Kind      Kind
	BootedAt  sim.Time
	BootTime  time.Duration
	MemMB     int
	DiskBytes host.Bytes
	Executed  int
	Busy      bool
	LastUsed  sim.Time
	Processes int
	// Traffic is the migrated data this runtime received/sent, by kind —
	// the per-VM composition of Figure 3.
	Traffic offload.Traffic
}

// ContainerDB stores information about live runtimes.
type ContainerDB struct {
	rows map[string]*RuntimeInfo
}

// NewContainerDB returns an empty database.
func NewContainerDB() *ContainerDB {
	return &ContainerDB{rows: make(map[string]*RuntimeInfo)}
}

// Put inserts or replaces a record.
func (db *ContainerDB) Put(info *RuntimeInfo) { db.rows[info.CID] = info }

// Get returns a record by CID.
func (db *ContainerDB) Get(cid string) (*RuntimeInfo, bool) {
	r, ok := db.rows[cid]
	return r, ok
}

// Remove deletes a record.
func (db *ContainerDB) Remove(cid string) { delete(db.rows, cid) }

// List returns all records sorted by CID for deterministic iteration.
func (db *ContainerDB) List() []*RuntimeInfo {
	out := make([]*RuntimeInfo, 0, len(db.rows))
	for _, r := range db.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CID < out[j].CID })
	return out
}

// Count returns the number of live runtimes.
func (db *ContainerDB) Count() int { return len(db.rows) }

// Snapshot is the Monitor's view of the platform for schedulers and the
// harness.
type Snapshot struct {
	Runtimes     []*RuntimeInfo
	TotalMemMB   int
	TotalDisk    host.Bytes
	TotalExec    int
	BusyRuntimes int
}

// Snapshot aggregates the database.
func (db *ContainerDB) Snapshot() Snapshot {
	s := Snapshot{Runtimes: db.List()}
	for _, r := range s.Runtimes {
		s.TotalMemMB += r.MemMB
		s.TotalDisk += r.DiskBytes
		s.TotalExec += r.Executed
		if r.Busy {
			s.BusyRuntimes++
		}
	}
	return s
}
