package core

import (
	"testing"

	"rattrap/internal/obs"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

// TestObsCountersAndSpansConsistent runs real offloads through a platform
// with observability installed and cross-checks the three views of the
// same events: the registry counters, the stage histograms, and the
// request spans. They are recorded at different layers (dispatcher,
// warehouse, session, device) and must agree.
func TestObsCountersAndSpansConsistent(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	reg := obs.NewRegistry()
	pl.SetObs(reg)
	if pl.Obs() != reg {
		t.Fatal("Obs() does not return the installed registry")
	}
	d := mustDevice(t, e, "phone-1")
	d.EnableSpans(true)
	app, _ := workload.ByName(workload.NameChess)

	// Cold request: boot + code push + execute.
	offloadOnce(t, e, pl, d, app)
	sp := d.LastSpan()
	if sp == nil {
		t.Fatal("no span recorded with spans enabled")
	}
	agg := sp.ByStage()

	c := func(name string) int64 { return reg.Counter(name).Value() }
	if c("dispatch.boots") != 1 || c("warehouse.misses") != 1 || c("core.executes") != 1 {
		t.Fatalf("cold request counters: boots=%d misses=%d executes=%d",
			c("dispatch.boots"), c("warehouse.misses"), c("core.executes"))
	}
	// The span's boot record and the platform's boot histogram saw the
	// same single virtual-time interval.
	bh := reg.Histogram("stage." + obs.StageBoot)
	if bh.Count() != 1 || bh.Snapshot().Max() != agg[obs.StageBoot] {
		t.Fatalf("boot: histogram (n=%d, max=%v) vs span %v",
			bh.Count(), bh.Snapshot().Max(), agg[obs.StageBoot])
	}
	ch := reg.Histogram("stage." + obs.StageCodeStage)
	if ch.Count() != 1 || ch.Snapshot().Max() != agg[obs.StageCodeStage] {
		t.Fatalf("code stage: histogram (n=%d, max=%v) vs span %v",
			ch.Count(), ch.Snapshot().Max(), agg[obs.StageCodeStage])
	}
	if rh := reg.Histogram("stage." + obs.StageRun); rh.Snapshot().Max() != agg[obs.StageRun] {
		t.Fatalf("run: histogram max %v vs span %v", rh.Snapshot().Max(), agg[obs.StageRun])
	}

	// Warm request, same device+app: the loaded runtime is reused via the
	// affinity index, the warehouse already holds the code, nothing boots.
	offloadOnce(t, e, pl, d, app)
	if c("dispatch.boots") != 1 {
		t.Fatalf("warm request booted: boots=%d", c("dispatch.boots"))
	}
	if c("dispatch.affinity_hits") == 0 {
		t.Fatal("warm request missed the affinity index")
	}
	if c("core.executes") != 2 {
		t.Fatalf("executes=%d, want 2", c("core.executes"))
	}
	if warm := d.LastSpan().ByStage(); warm[obs.StageBoot] != 0 || warm[obs.StageQueueWait] != 0 {
		t.Fatalf("warm span carries boot=%v queue=%v", warm[obs.StageBoot], warm[obs.StageQueueWait])
	}

	// Histogram counts mirror their counters across the whole run.
	if got := reg.Histogram("stage." + obs.StageRun).Count(); got != c("core.executes") {
		t.Fatalf("run histogram n=%d, executes=%d", got, c("core.executes"))
	}
	if got := reg.Histogram("stage." + obs.StageBoot).Count(); got != c("dispatch.boots") {
		t.Fatalf("boot histogram n=%d, boots=%d", got, c("dispatch.boots"))
	}
	if reg.Gauge("core.pool_size").Value() != int64(pl.RuntimeCount()) {
		t.Fatalf("pool_size gauge %d, runtimes %d",
			reg.Gauge("core.pool_size").Value(), pl.RuntimeCount())
	}
}

// TestObsQueueInstrumentation forces the FIFO wait ring (pool capped at
// one) and checks the queue counter, the queue-wait histogram and the
// spans agree about who waited.
func TestObsQueueInstrumentation(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	reg := obs.NewRegistry()
	pl.SetObs(reg)

	apps := workload.Apps()
	var spans []*obs.Span
	for i := 0; i < 3; i++ {
		// Distinct apps so affinity cannot serve them and the single slot
		// must be handed over through the ring.
		app := apps[i%len(apps)]
		d := mustDeviceIn(t, e, "phone-"+string(rune('a'+i)))
		d.EnableSpans(true)
		e.Spawn("req", func(p *sim.Proc) {
			task := d.NewTask(app)
			if _, _, err := d.Offload(p, task, app.CodeSize(), pl); err != nil {
				t.Errorf("offload: %v", err)
			}
			spans = append(spans, d.LastSpan())
		})
	}
	e.Run()

	queued := reg.Counter("dispatch.queued").Value()
	if queued == 0 {
		t.Fatal("no request queued despite a one-slot pool")
	}
	qh := reg.Histogram("stage." + obs.StageQueueWait)
	if qh.Count() != queued {
		t.Fatalf("queue-wait histogram n=%d, queued counter %d", qh.Count(), queued)
	}
	withWait := 0
	for _, sp := range spans {
		if sp.ByStage()[obs.StageQueueWait] > 0 {
			withWait++
		}
	}
	if int64(withWait) != queued {
		t.Fatalf("%d spans carry queue wait, counter says %d", withWait, queued)
	}
	if reg.Gauge("core.queue_len").Value() != 0 {
		t.Fatalf("queue_len gauge %d after drain", reg.Gauge("core.queue_len").Value())
	}
}

// TestObsDisabled pins the off switch: SetObs(nil) must stop all
// recording, and a platform that never had a registry records nothing.
func TestObsDisabled(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	reg := obs.NewRegistry()
	pl.SetObs(reg)
	pl.SetObs(nil)
	if pl.Obs() != nil {
		t.Fatal("Obs() non-nil after SetObs(nil)")
	}
	d := mustDevice(t, e, "phone-1")
	app, _ := workload.ByName(workload.NameLinpack)
	offloadOnce(t, e, pl, d, app)
	if v := reg.Counter("core.executes").Value(); v != 0 {
		t.Fatalf("detached registry still incremented: executes=%d", v)
	}
	if d.LastSpan() != nil {
		t.Fatal("span recorded without EnableSpans")
	}
}
