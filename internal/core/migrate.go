package core

import (
	"sort"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// Warehouse export/import: the chunk-level migration primitive behind live
// resharding. A membership change moves vnode ranges between shards; the
// unit that actually crosses the wire is the 64 KiB content-addressed
// chunk, negotiated through the same MissingChunks dedup the device delta
// push uses — a joining shard pulls only blocks its store lacks, so an
// app family whose library chunks already replicated over costs a few
// size-salted tail blocks, not the whole blob.

// ExportedEntry is one warehouse row in transferable form: the manifest
// is always present (plain-blob entries get their synthetic manifest), so
// the importing side can run chunk negotiation uniformly.
type ExportedEntry struct {
	AID    string
	App    string
	Size   host.Bytes
	Hashes []uint64
}

// ExportRange lists the warehouse entries whose AID satisfies match, in
// insertion (seq) order so migration transfers are deterministic. Entries
// staged as plain blobs are exported with their synthetic manifest — the
// import side stores them chunked, which is lossless here because chunk
// content is synthetic everywhere in the simulation.
func (w *Warehouse) ExportRange(match func(aid string) bool) []ExportedEntry {
	var rows []*cacheEntry
	for _, e := range w.entries {
		if match(e.AID) {
			rows = append(rows, e)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	out := make([]ExportedEntry, 0, len(rows))
	for _, e := range rows {
		hashes := e.Hashes
		if !e.chunked {
			hashes = offload.SyntheticManifest(e.App, e.Size)
		}
		out = append(out, ExportedEntry{AID: e.AID, App: e.App, Size: e.Size, Hashes: hashes})
	}
	return out
}

// ImportEntry lands an exported entry in this warehouse, blocking p for
// the chunk writes. It is the server half of the anti-entropy exchange:
// MissingChunks decides what actually transfers, PutChunked stages it.
// Returns the delta bytes written and the full-blob size (what a naive
// whole-blob copy would have moved); an AID already present imports as
// (0, 0, nil) — idempotent, so overlapping rebalances converge.
func (w *Warehouse) ImportEntry(p *sim.Proc, ent ExportedEntry) (delta, full host.Bytes, err error) {
	if _, ok := w.entries[ent.AID]; ok {
		return 0, 0, nil
	}
	missing := w.MissingChunks(ent.Hashes)
	offer := offload.ChunkOffer{AID: ent.AID, App: ent.App, Size: ent.Size, Hashes: ent.Hashes}
	delta = offload.DeltaBytes(offer, missing)
	if err := w.PutChunked(p, ent.AID, ent.App, ent.Size, ent.Hashes, missing); err != nil {
		return 0, 0, err
	}
	return delta, ent.Size, nil
}

// DropEntry removes an AID after its range migrated away, releasing its
// chunk references (blocks at refs=0 leave the store — the same invariant
// eviction maintains). Reports whether the entry existed.
func (w *Warehouse) DropEntry(aid string) bool {
	e, ok := w.entries[aid]
	if !ok {
		return false
	}
	w.dropEntry(e)
	return true
}

// AIDs lists every cached AID, sorted (migration planning needs a stable
// iteration order).
func (w *Warehouse) AIDs() []string {
	out := make([]string, 0, len(w.entries))
	for aid := range w.entries {
		out = append(out, aid)
	}
	sort.Strings(out)
	return out
}
