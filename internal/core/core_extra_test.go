package core

import (
	"strings"
	"testing"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func TestStopRuntimeErrors(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	app, _ := workload.ByName(workload.NameLinpack)
	e.Spawn("t", func(p *sim.Proc) {
		if err := pl.StopRuntime(p, "ghost"); err == nil {
			t.Error("stopping unknown runtime succeeded")
		}
		d := mustDeviceIn(t, e, "phone-1")
		task := d.NewTask(app)
		req := offload.ExecRequest{AID: offload.AID(app.Name(), app.CodeSize()),
			App: task.App, Method: task.Method, Params: task.Params}
		s, err := pl.Prepare(p, req)
		if err != nil {
			t.Fatal(err)
		}
		cid := pl.DB().List()[0].CID
		if err := pl.StopRuntime(p, cid); err == nil || !strings.Contains(err.Error(), "is active") {
			t.Errorf("stopping a claimed runtime: err = %v", err)
		}
		s.Release()
		if err := pl.StopRuntime(p, cid); err != nil {
			t.Errorf("stopping idle runtime: %v", err)
		}
	})
	e.Run()
}

func TestTotalDiskBytesCountsSharedOnce(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	e.Spawn("t", func(p *sim.Proc) {
		if _, err := pl.BootRuntime(p); err != nil {
			t.Fatal(err)
		}
		one := pl.TotalDiskBytes()
		if _, err := pl.BootRuntime(p); err != nil {
			t.Fatal(err)
		}
		two := pl.TotalDiskBytes()
		// Adding a second container adds only its private delta (≈7 MB),
		// not another copy of the shared layer (≈230 MB).
		delta := two - one
		if delta <= 0 || delta > 10*host.MB {
			t.Fatalf("second container added %d MB of disk, want only its delta", delta/host.MB)
		}
		if one < pl.SharedLayer().Size() {
			t.Fatal("total disk does not include the shared layer")
		}
	})
	e.Run()
}

func TestAbandonedCodePushWakesWaiters(t *testing.T) {
	// Device A claims the in-flight push and then aborts without pushing;
	// device B, waiting on the warehouse, must fail fast rather than hang.
	e, pl := newPlatform(KindRattrap)
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())
	e.Spawn("t", func(p *sim.Proc) {
		d := mustDeviceIn(t, e, "phone-1")
		task := d.NewTask(app)
		req := offload.ExecRequest{AID: aid, App: task.App, Method: task.Method, Params: task.Params}
		sA, err := pl.Prepare(p, req)
		if err != nil {
			t.Fatal(err)
		}
		if !sA.NeedCode() {
			t.Fatal("A should own the push")
		}
		sB, err := pl.Prepare(p, req) // boots runtime 2, sees the claim
		if err != nil {
			t.Fatal(err)
		}
		if sB.NeedCode() {
			t.Fatal("B should wait on A's in-flight push")
		}
		sA.Release() // A aborts without pushing
		res, err := sB.Execute(p)
		if err == nil && res.Err == "" {
			t.Fatal("B executed without any code ever arriving")
		}
		sB.Release()
	})
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("%d procs hung on the abandoned push", e.LiveProcs())
	}
}

func TestPrepareAfterBlockedIsRejected(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	e.Spawn("t", func(p *sim.Proc) {
		tbl := pl.Access().Analyze(p, pl.Server, "Malware", nil)
		tbl.Blocked = true
		_, err := pl.Prepare(p, offload.ExecRequest{AID: "x", App: "Malware"})
		if err == nil {
			t.Error("blocked app prepared successfully")
		}
	})
	e.Run()
}

func TestSnapshotAggregates(t *testing.T) {
	db := NewContainerDB()
	db.Put(&RuntimeInfo{CID: "a", MemMB: 96, DiskBytes: 7 * host.MB, Executed: 3, Busy: true})
	db.Put(&RuntimeInfo{CID: "b", MemMB: 96, DiskBytes: 7 * host.MB, Executed: 2})
	s := db.Snapshot()
	if s.TotalMemMB != 192 || s.TotalExec != 5 || s.BusyRuntimes != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if _, ok := db.Get("a"); !ok {
		t.Fatal("Get(a) failed")
	}
	db.Remove("a")
	if db.Count() != 1 {
		t.Fatalf("count = %d", db.Count())
	}
}
