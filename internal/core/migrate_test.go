package core

import (
	"testing"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// TestExportImportRoundTrip: ExportRange hands back manifests (synthetic
// ones for plain-blob entries), ImportEntry lands them chunked with delta
// accounting, and a second import of the same AID is an idempotent no-op.
func TestExportImportRoundTrip(t *testing.T) {
	e := sim.NewEngine(21)
	src := newTestWarehouse(t, e, 0)
	dst := newTestWarehouse(t, e, 0)
	e.Spawn("test", func(p *sim.Proc) {
		size := 5*offload.ChunkSize + 101
		if err := src.Put(p, "aid-plain", "App", size); err != nil {
			t.Fatalf("put: %v", err)
		}
		ents := src.ExportRange(func(string) bool { return true })
		if len(ents) != 1 || ents[0].AID != "aid-plain" {
			t.Fatalf("export: %+v", ents)
		}
		if len(ents[0].Hashes) != offload.ChunkCount(size) {
			t.Fatalf("plain entry exported %d hashes, want %d", len(ents[0].Hashes), offload.ChunkCount(size))
		}
		delta, full, err := dst.ImportEntry(p, ents[0])
		if err != nil {
			t.Fatalf("import: %v", err)
		}
		if full != size || delta == 0 || delta > full {
			t.Fatalf("import accounting: delta=%d full=%d size=%d", delta, full, size)
		}
		if _, ok := dst.Lookup("aid-plain"); !ok {
			t.Fatal("imported entry missing")
		}
		if d2, f2, err := dst.ImportEntry(p, ents[0]); err != nil || d2 != 0 || f2 != 0 {
			t.Fatalf("re-import not idempotent: delta=%d full=%d err=%v", d2, f2, err)
		}
	})
	e.Run()
}

// TestEvictThenRemigrateKeepsRefcountsClean is the LRU-vs-replication
// interplay gate: an entry that is replicated in, evicted by capacity
// enforcement, and then re-migrated must behave like a fresh entry — its
// re-import re-transfers exactly the chunks eviction released (shared
// blocks still pinned by a surviving entry do not re-transfer), and one
// final drop of each entry empties the store completely. Stale refcounts
// in either direction would leave orphaned blocks (refs never reaching 0)
// or delete blocks still referenced (refs reaching 0 early).
func TestEvictThenRemigrateKeepsRefcountsClean(t *testing.T) {
	e := sim.NewEngine(22)
	src := newTestWarehouse(t, e, 0)
	dst := newTestWarehouse(t, e, 0)
	e.Spawn("test", func(p *sim.Proc) {
		// Two size variants of one app: synthetic manifests share the
		// app's library chunks and differ in the size-salted tail.
		sizeA := host.Bytes(8 * offload.ChunkSize)
		sizeB := sizeA + 7
		for aid, size := range map[string]host.Bytes{"aid-A": sizeA, "aid-B": sizeB} {
			hashes := offload.SyntheticManifest("App", size)
			if err := src.PutChunked(p, aid, "App", size, hashes, src.MissingChunks(hashes)); err != nil {
				t.Fatalf("seed %s: %v", aid, err)
			}
		}
		exp := src.ExportRange(func(string) bool { return true })
		if len(exp) != 2 {
			t.Fatalf("exported %d entries, want 2", len(exp))
		}
		byAID := map[string]ExportedEntry{}
		for _, ent := range exp {
			byAID[ent.AID] = ent
		}

		// Replicate both in; B lands second so A is least-recently-bound.
		if _, _, err := dst.ImportEntry(p, byAID["aid-A"]); err != nil {
			t.Fatalf("import A: %v", err)
		}
		p.Sleep(1) // order lastBound stamps
		deltaB1, _, err := dst.ImportEntry(p, byAID["aid-B"])
		if err != nil {
			t.Fatalf("import B: %v", err)
		}
		if deltaB1 >= sizeB {
			t.Fatalf("B's first import moved %d bytes — shared library chunks did not dedup", deltaB1)
		}

		// Shrink capacity until A is evicted (B is newer and survives).
		dst.capacity = dst.StoredBytes() - 1
		if n := dst.EnforceCapacity(); n != 1 {
			t.Fatalf("eviction dropped %d entries, want 1", n)
		}
		if _, ok := dst.Lookup("aid-A"); ok {
			t.Fatal("LRU evicted the wrong entry")
		}
		if _, ok := dst.Lookup("aid-B"); !ok {
			t.Fatal("eviction took the surviving entry too")
		}

		// Remigrate A. Only its exclusive tail chunks were released by the
		// eviction; the shared library chunks are still pinned by B and
		// must not re-transfer.
		dst.capacity = 0
		deltaA2, fullA2, err := dst.ImportEntry(p, byAID["aid-A"])
		if err != nil {
			t.Fatalf("re-import A: %v", err)
		}
		if fullA2 != sizeA {
			t.Fatalf("re-import full = %d, want %d", fullA2, sizeA)
		}
		if deltaA2 == 0 || deltaA2 >= sizeA {
			t.Fatalf("re-import delta = %d (full %d): eviction left refcounts stale", deltaA2, sizeA)
		}

		// The refs=0 delete invariant end to end: dropping each entry once
		// must empty the store — nothing orphaned, nothing double-freed.
		if !dst.DropEntry("aid-B") || !dst.DropEntry("aid-A") {
			t.Fatal("drop refused an existing entry")
		}
		if n := dst.ChunkCount(); n != 0 {
			t.Fatalf("%d chunks orphaned after dropping every entry", n)
		}
		if b := dst.StoredBytes(); b != 0 {
			t.Fatalf("%d bytes orphaned after dropping every entry", b)
		}
		if dst.DropEntry("aid-A") {
			t.Fatal("dropping a dropped entry succeeded")
		}
	})
	e.Run()
}
