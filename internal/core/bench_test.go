package core

import (
	"fmt"
	"testing"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

// BenchmarkDispatcherAcquire measures an acquire/release cycle against a
// warm pool: every acquire is an affinity-index hit (the hot path a
// warehouse-hit request takes), with no boot or code load in the loop.
func BenchmarkDispatcherAcquire(b *testing.B) {
	const pool = 8
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = pool
	cfg.IdleTimeout = 0 // no reap events; the loop stays pure dispatch
	pl := New(e, cfg)

	aids := make([]string, pool)
	for i := range aids {
		aids[i] = fmt.Sprintf("app-%d", i)
	}
	e.Spawn("warm", func(p *sim.Proc) {
		held := make([]*slot, pool)
		for i := 0; i < pool; i++ {
			sl, err := pl.acquireSlot(p, aids[i], nil, nil)
			if err != nil {
				b.Error(err)
				return
			}
			if err := sl.rt.LoadCode(p, aids[i], 4*host.MB, false); err != nil {
				b.Error(err)
				return
			}
			held[i] = sl
		}
		for _, sl := range held {
			pl.releaseSlot(sl)
		}
	})
	e.Run()
	if b.Failed() {
		b.FailNow()
	}

	b.ResetTimer()
	e.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sl, err := pl.acquireSlot(p, aids[i%pool], nil, nil)
			if err != nil {
				b.Error(err)
				return
			}
			pl.releaseSlot(sl)
		}
	})
	e.Run()
}
