package core

import (
	"fmt"
	"testing"
	"time"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func TestWaiterRingFIFO(t *testing.T) {
	var r waiterRing
	if r.pop() != nil || r.len() != 0 {
		t.Fatal("empty ring not empty")
	}
	// Push through several growth cycles with interleaved pops so the
	// head wraps.
	var pushed, popped []*waiter
	for i := 0; i < 50; i++ {
		w := &waiter{}
		r.push(w)
		pushed = append(pushed, w)
		if i%3 == 2 {
			popped = append(popped, r.pop())
		}
	}
	for r.len() > 0 {
		popped = append(popped, r.pop())
	}
	if len(popped) != len(pushed) {
		t.Fatalf("popped %d of %d", len(popped), len(pushed))
	}
	for i := range pushed {
		if popped[i] != pushed[i] {
			t.Fatalf("ring not FIFO at %d", i)
		}
	}
}

// TestDispatcherFIFOFairness: with one runtime and many contending
// requests, the queue must serve waiters strictly in arrival order.
func TestDispatcherFIFOFairness(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())

	const n = 9
	var order []int
	for i := 0; i < n; i++ {
		i := i
		// Distinct arrival instants, all during the first request's boot,
		// so requests 1..n-1 pile up in the wait queue.
		e.At(sim.Time(time.Duration(i)*time.Millisecond), func() {
			e.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
				sess, err := pl.Prepare(p, offload.ExecRequest{
					DeviceID: fmt.Sprintf("d%d", i), AID: aid, App: app.Name(),
				})
				if err != nil {
					t.Errorf("req %d: %v", i, err)
					return
				}
				order = append(order, i)
				p.Sleep(20 * time.Millisecond) // hold the runtime under contention
				sess.Release()
			})
		})
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("served %d of %d requests", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters served out of arrival order: %v", order)
		}
	}
	if pl.QueueLength() != 0 {
		t.Fatalf("queue not drained: %d", pl.QueueLength())
	}
}

// TestDispatcherAffinityIndexSkipsStoppedRuntime: stale affinity-index
// entries for a stopped runtime must be discarded, not handed out.
func TestDispatcherAffinityIndexSkipsStoppedRuntime(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	pl := New(e, cfg)
	codeSize := 4 * host.MB
	e.Spawn("t", func(p *sim.Proc) {
		slA, err := pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := slA.rt.LoadCode(p, "app-A", codeSize, false); err != nil {
			t.Error(err)
			return
		}
		slB, err := pl.acquireSlot(p, "app-B", nil, nil) // slA busy: boots a second slot
		if err != nil {
			t.Error(err)
			return
		}
		if slB == slA {
			t.Error("dispatcher reused a busy slot")
			return
		}
		if err := slB.rt.LoadCode(p, "app-B", codeSize, false); err != nil {
			t.Error(err)
			return
		}
		pl.releaseSlot(slA) // indexed under app-A
		pl.releaseSlot(slB) // indexed under app-B

		// Affinity routes app-A back to slA while it lives...
		got, err := pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil || got != slA {
			t.Errorf("affinity pick = %v, %v; want %s", got, err, slA.id)
			return
		}
		pl.releaseSlot(got)

		// ...but once slA is stopped, its index entries are corpses: the
		// next app-A request must fall through to the idle slot slB.
		if err := pl.StopRuntime(p, slA.id); err != nil {
			t.Error(err)
			return
		}
		got, err = pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if got != slB {
			t.Errorf("acquire after stop = %s, want %s", got.id, slB.id)
		}
		pl.releaseSlot(got)
	})
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestScheduleReapSlotClaimedBetweenCheckAndProc drives the handoff race
// the reap logic re-checks for: the idle check fires, spawns the reap
// proc, and the slot is acquired before that proc runs. The reap must
// stand down instead of stopping a busy runtime (or erroring).
func TestScheduleReapSlotClaimedBetweenCheckAndProc(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	cfg.IdleTimeout = time.Second
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())
	req := offload.ExecRequest{DeviceID: "d1", AID: aid, App: app.Name()}

	e.Spawn("flow", func(p *sim.Proc) {
		sess, err := pl.Prepare(p, req)
		if err != nil {
			t.Error(err)
			return
		}
		var cid string
		var booted sim.Time
		for _, r := range pl.DB().List() {
			cid, booted = r.CID, r.BootedAt
		}
		sess.Release() // arms the reap check (seq before our sleep's event)
		// Wake at exactly the reap instant. The check event (armed first)
		// dispatches before this wake, spawns the reap proc, and our
		// re-acquire then runs before that proc starts — the exact window
		// the reap's second look guards.
		p.Sleep(cfg.IdleTimeout)
		sess2, err := pl.Prepare(p, req)
		if err != nil {
			t.Errorf("prepare during reap window: %v", err)
			return
		}
		// The reap proc dispatched after our claim: it must have stood
		// down, leaving us the original runtime — not a fresh boot.
		if got := pl.RuntimeCount(); got != 1 {
			t.Errorf("runtime count during window = %d, want 1", got)
		}
		for _, r := range pl.DB().List() {
			if r.CID != cid || r.BootedAt != booted {
				t.Errorf("runtime rebooted under the claim: %s@%v, want %s@%v",
					r.CID, r.BootedAt, cid, booted)
			}
		}
		p.Sleep(10 * time.Millisecond)
		sess2.Release()
	})
	e.Run()
	// The second release armed its own reap; once the queue drains the
	// pool is legitimately empty again.
	if got := pl.RuntimeCount(); got != 0 {
		t.Fatalf("runtime count after drain = %d, want 0", got)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestScheduleReapReclaimsUntouchedIdle: the complementary case — an
// idle, untouched runtime is really reclaimed after IdleTimeout.
func TestScheduleReapReclaimsUntouchedIdle(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.IdleTimeout = time.Second
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())

	e.Spawn("flow", func(p *sim.Proc) {
		sess, err := pl.Prepare(p, offload.ExecRequest{DeviceID: "d1", AID: aid, App: app.Name()})
		if err != nil {
			t.Error(err)
			return
		}
		sess.Release()
	})
	e.Run() // runs the reap too: the event queue drains fully
	if got := pl.RuntimeCount(); got != 0 {
		t.Fatalf("runtime count = %d, want 0 after idle reclamation", got)
	}
	if pl.Kernel.Loaded("binder") {
		// StopRuntime unloads the ACD when the last container dies.
		t.Fatal("ACD still loaded after the pool emptied")
	}
}
