package core

import (
	"container/heap"
	"fmt"
)

// Scheduler is the Dispatcher's slot-selection seam: given the pool's idle
// runtimes, pick one for a request. The surrounding machinery — booting up
// to MaxRuntimes, bounded admission, the FIFO wait ring — stays in the
// Platform; a Scheduler only decides *which* idle runtime serves *which*
// app, which is exactly the policy axis the paper varies (§IV-B's
// warehouse-aware dispatching vs. a plain queue).
//
// Schedulers are indexes, not owners: a slot is offered once when it goes
// idle, and entries invalidate lazily — Pick must discard slots that are
// no longer LifecycleIdle (claimed, draining, or removed since they were
// offered). The slot's inIdle/inAff flags guarantee at most one live entry
// per slot per heap, keeping index sizes O(slots × loaded codes).
type Scheduler interface {
	// Name labels the policy in configs and documentation.
	Name() string
	// Offer indexes a slot that just became idle.
	Offer(sl *slot)
	// Pick removes and returns the best idle slot for a request on aid, or
	// nil when no idle slot exists. affinity reports whether the pick was a
	// code-affinity hit (the slot already holds aid's code).
	Pick(aid string) (sl *slot, affinity bool)
}

// SchedulerPolicy names a built-in Scheduler for Config.
type SchedulerPolicy int

const (
	// SchedAffinity is the paper's warehouse-aware policy and the default:
	// prefer an idle runtime whose ClassLoader already holds the requested
	// code ("saves the time for loading codes"), else the earliest-booted
	// idle runtime.
	SchedAffinity SchedulerPolicy = iota
	// SchedFIFO ignores code placement entirely: always the earliest-booted
	// idle runtime. The baseline policy for platforms where code affinity
	// buys nothing — or for measuring what affinity is worth.
	SchedFIFO
)

func (p SchedulerPolicy) String() string {
	switch p {
	case SchedAffinity:
		return "affinity"
	case SchedFIFO:
		return "fifo"
	}
	return fmt.Sprintf("SchedulerPolicy(%d)", int(p))
}

// newScheduler builds the Scheduler for a policy.
func newScheduler(p SchedulerPolicy) Scheduler {
	switch p {
	case SchedFIFO:
		return &FIFOScheduler{}
	default:
		return &AffinityScheduler{affinity: make(map[string]*slotHeap)}
	}
}

// AffinityScheduler implements the paper's warehouse-affinity dispatch:
// idle slots live in a free-list min-heap keyed by boot sequence, plus one
// min-heap per AID whose runtimes already hold that code (the cache
// table's AID→CID column, turned into a dispatch index). Picks are
// identical to a full in-order scan of the pool.
type AffinityScheduler struct {
	idle     slotHeap
	affinity map[string]*slotHeap
}

// Name implements Scheduler.
func (s *AffinityScheduler) Name() string { return "affinity" }

// Offer indexes an idle slot into the free-list and into the affinity heap
// of every code its runtime holds. Flags dedupe entries — a stale entry
// left by a lazy pop "revives" when the slot goes idle again, which is
// exactly the state it advertises.
func (s *AffinityScheduler) Offer(sl *slot) {
	if !sl.inIdle {
		sl.inIdle = true
		heap.Push(&s.idle, sl)
	}
	sl.rt.EachLoadedCode(func(aid string) {
		if !sl.inAff[aid] {
			sl.inAff[aid] = true
			h := s.affinity[aid]
			if h == nil {
				h = &slotHeap{}
				s.affinity[aid] = h
			}
			heap.Push(h, sl)
		}
	})
}

// Pick implements Scheduler: the earliest-booted idle slot already holding
// aid, else the earliest-booted idle slot.
func (s *AffinityScheduler) Pick(aid string) (*slot, bool) {
	if sl := s.popAffinity(aid); sl != nil {
		return sl, true
	}
	return popIdleHeap(&s.idle), false
}

// popAffinity claims the earliest-booted idle slot that already holds aid,
// or nil.
func (s *AffinityScheduler) popAffinity(aid string) *slot {
	h, ok := s.affinity[aid]
	if !ok {
		return nil
	}
	for h.Len() > 0 {
		sl := heap.Pop(h).(*slot)
		sl.inAff[aid] = false
		if !slotIdle(sl) || !sl.rt.CodeLoaded(aid) {
			continue // stale entry; discard
		}
		if h.Len() == 0 {
			delete(s.affinity, aid)
		}
		return sl
	}
	delete(s.affinity, aid)
	return nil
}

// FIFOScheduler hands out idle runtimes strictly in boot order, blind to
// code placement.
type FIFOScheduler struct {
	idle slotHeap
}

// Name implements Scheduler.
func (s *FIFOScheduler) Name() string { return "fifo" }

// Offer implements Scheduler.
func (s *FIFOScheduler) Offer(sl *slot) {
	if !sl.inIdle {
		sl.inIdle = true
		heap.Push(&s.idle, sl)
	}
}

// Pick implements Scheduler. A FIFO pick is never an affinity hit, even
// when the earliest idle slot happens to hold the code.
func (s *FIFOScheduler) Pick(aid string) (*slot, bool) {
	return popIdleHeap(&s.idle), false
}

// slotIdle reports whether a popped index entry is still claimable.
func slotIdle(sl *slot) bool {
	return !sl.removed && !sl.cordoned && sl.info.State == LifecycleIdle
}

// popIdleHeap pops the earliest-booted still-idle slot, discarding stale
// entries.
func popIdleHeap(h *slotHeap) *slot {
	for h.Len() > 0 {
		sl := heap.Pop(h).(*slot)
		sl.inIdle = false
		if slotIdle(sl) {
			return sl
		}
	}
	return nil
}
