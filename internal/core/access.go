package core

import (
	"errors"
	"fmt"

	"rattrap/internal/host"
	"rattrap/internal/sim"
)

// Permission is one capability an offloaded operation may require.
type Permission string

// Permissions checked by the Request-based Access Controller.
const (
	PermExec    Permission = "exec"
	PermFSRead  Permission = "fs-read"
	PermFSWrite Permission = "fs-write"
	PermNet     Permission = "net"
	PermBinder  Permission = "binder"
)

// Access-control errors.
var (
	ErrPermissionDenied = errors.New("core: permission denied")
	ErrAppBlocked       = errors.New("core: app blocked by access controller")
)

// PermTable is one app's permission table. Offloading requests from the
// same application share one table, so analysis happens only once per app
// (§IV-E).
type PermTable struct {
	App        string
	Allowed    map[Permission]bool
	Violations int
	Blocked    bool
}

// AccessController is the Request-based Access Controller: it analyzes
// each app's first request to generate a permission table, filters every
// workflow coming out of a Cloud Android Container, counts violations, and
// blocks the app once violations reach the threshold. It remedies the
// weaker isolation of OS-level virtualization and guards the shared
// architecture (Shared Resource Layer, App Warehouse).
type AccessController struct {
	threshold int
	tables    map[string]*PermTable
	analyses  int
}

// analysisWork is the CPU spent generating one permission table.
const analysisWork host.Work = 120

// NewAccessController returns a controller that blocks an app after
// threshold violations.
func NewAccessController(threshold int) *AccessController {
	if threshold <= 0 {
		threshold = 3
	}
	return &AccessController{threshold: threshold, tables: make(map[string]*PermTable)}
}

// Analyze returns the app's permission table, generating it on first sight
// (charging analysis CPU on h). granted lists the permissions the request
// analysis concludes the app may use.
func (ac *AccessController) Analyze(p *sim.Proc, h *host.Host, app string, granted []Permission) *PermTable {
	if t, ok := ac.tables[app]; ok {
		return t
	}
	h.Compute(p, analysisWork, 1.0)
	ac.analyses++
	t := &PermTable{App: app, Allowed: make(map[Permission]bool, len(granted))}
	for _, g := range granted {
		t.Allowed[g] = true
	}
	ac.tables[app] = t
	return t
}

// Table returns the app's table if it was analyzed.
func (ac *AccessController) Table(app string) (*PermTable, bool) {
	t, ok := ac.tables[app]
	return t, ok
}

// Analyses reports how many permission tables were generated.
func (ac *AccessController) Analyses() int { return ac.analyses }

// Check filters one operation flowing out of a container. A disallowed
// operation records a violation; reaching the threshold blocks the app's
// future requests entirely.
func (ac *AccessController) Check(app string, op Permission) error {
	t, ok := ac.tables[app]
	if !ok {
		return fmt.Errorf("core: app %s not analyzed", app)
	}
	if t.Blocked {
		return fmt.Errorf("%w: %s", ErrAppBlocked, app)
	}
	if t.Allowed[op] {
		return nil
	}
	t.Violations++
	if t.Violations >= ac.threshold {
		t.Blocked = true
		return fmt.Errorf("%w: %s (violation threshold reached)", ErrAppBlocked, app)
	}
	return fmt.Errorf("%w: %s needs %s", ErrPermissionDenied, app, op)
}

// grantedFor maps the benchmark apps to the permissions request analysis
// derives for them: file-carrying apps get filesystem access, interactive
// apps get network callbacks, everything gets execution.
func grantedFor(app string, fileBytes host.Bytes) []Permission {
	perms := []Permission{PermExec, PermBinder}
	if fileBytes > 0 {
		perms = append(perms, PermFSRead, PermFSWrite)
	}
	perms = append(perms, PermNet)
	return perms
}
