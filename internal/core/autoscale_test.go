package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func autoscaleTestConfig(minR, maxR int) Config {
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = maxR
	cfg.MinRuntimes = minR
	cfg.Autoscale = AutoscaleConfig{
		Enabled:     true,
		Interval:    100 * time.Millisecond,
		GrowPerTick: 2,
		ShrinkAfter: 2,
	}
	return cfg
}

func linpackReq(dev string) (offload.ExecRequest, offload.CodePush) {
	app, _ := workload.ByName(workload.NameLinpack)
	aid := offload.AID(app.Name(), app.CodeSize())
	req := offload.ExecRequest{DeviceID: dev, AID: aid, App: app.Name(), Method: "solve",
		Params: workload.EncodeLinpackParams(1, 64)}
	push := offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}
	return req, push
}

// asOffloadOnce drives one full request against pl, pushing code if asked.
func asOffloadOnce(t *testing.T, p *sim.Proc, pl *Platform, dev string) offload.Result {
	t.Helper()
	req, push := linpackReq(dev)
	sess, err := pl.Prepare(p, req)
	if err != nil {
		t.Errorf("%s: prepare: %v", dev, err)
		return offload.Result{Err: err.Error()}
	}
	defer sess.Release()
	if sess.NeedCode() {
		if err := sess.PushCode(p, push); err != nil {
			t.Errorf("%s: push: %v", dev, err)
			return offload.Result{Err: err.Error()}
		}
	}
	res, err := sess.Execute(p)
	if errors.Is(err, offload.ErrCodeNeeded) {
		if err = sess.PushCode(p, push); err == nil {
			res, err = sess.Execute(p)
		}
	}
	if err != nil {
		t.Errorf("%s: execute: %v", dev, err)
		return offload.Result{Err: err.Error()}
	}
	return res
}

// TestStopRuntimeTeardownFaultReclaimsSlot is the regression test for the
// draining-slot capacity leak: a failed Destroy/Stop used to leave the
// slot in LifecycleDraining forever — still on the slot list, counting
// against MaxRuntimes. The repaired path must surface the error AND fully
// reclaim the slot, so a MaxRuntimes=1 platform can boot a replacement.
func TestStopRuntimeTeardownFaultReclaimsSlot(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	faultErr := errors.New("destroy failed")
	pl.SetTeardownFault(func(p *sim.Proc, id string) error { return faultErr })

	e.Spawn("t", func(p *sim.Proc) {
		sl, err := pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		cid := sl.id
		pl.releaseSlot(sl)

		err = pl.StopRuntime(p, cid)
		if !errors.Is(err, faultErr) {
			t.Errorf("StopRuntime error = %v, want wrapped %v", err, faultErr)
		}
		// The slot must be gone despite the teardown failure.
		if n := pl.RuntimeCount(); n != 0 {
			t.Errorf("pool size after failed teardown = %d, want 0", n)
		}
		if n := pl.DB().StateCount(LifecycleDraining); n != 0 {
			t.Errorf("%d slot(s) stuck draining", n)
		}
		if got := pl.FailureCount(FailTeardown); got != 1 {
			t.Errorf("teardown failure count = %d, want 1", got)
		}

		// Capacity restored: the 1-slot pool can boot a fresh runtime.
		// Before the fix this booted nothing (slots.n was still 1) and the
		// request parked forever.
		sl2, err := pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil {
			t.Errorf("acquire after failed teardown: %v", err)
			return
		}
		if sl2.id == cid {
			t.Errorf("got the condemned slot %s back", cid)
		}
		pl.releaseSlot(sl2)
	})
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestRetryAfterHintUsesLiveCensus pins the hint against a half-grown
// pool: with MaxRuntimes 4 but only one live runtime, the drain-rate
// divisor must be 1 (the schedulable census), not 4 — dividing by the cap
// quartered the hint and clients retried into the same wall.
func TestRetryAfterHintUsesLiveCensus(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 4
	pl := New(e, cfg)

	e.Spawn("t", func(p *sim.Proc) {
		// Empty pool: floor the divisor at 1 rather than divide by zero.
		pl.holdEWMA = 400 * time.Millisecond
		if got, want := pl.retryAfterHint(), 400*time.Millisecond; got != want {
			t.Errorf("empty-pool hint = %v, want %v", got, want)
		}

		if _, err := pl.BootRuntime(p); err != nil {
			t.Fatal(err)
		}
		pl.holdEWMA = 400 * time.Millisecond // boot path may have touched nothing, but pin it
		// One live runtime, empty queue: one hold-time, not a quarter.
		if got, want := pl.retryAfterHint(), 400*time.Millisecond; got != want {
			t.Errorf("half-grown-pool hint = %v, want %v (cap-divided would be %v)",
				got, want, 100*time.Millisecond)
		}
	})
	e.Run()
}

// TestAbortQueuedWaiter: a queued request whose abort signal fires must
// return ErrAborted, and the eventual release must skip its corpse and
// leave the runtime idle for live requests.
func TestAbortQueuedWaiter(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	abort := sim.NewSignal(e)

	var holder *slot
	e.Spawn("holder", func(p *sim.Proc) {
		sl, err := pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		holder = sl
	})
	var aborted error
	e.At(sim.Time(3*time.Second), func() {
		e.Spawn("victim", func(p *sim.Proc) {
			_, aborted = pl.acquireSlot(p, "app-A", nil, abort)
		})
	})
	e.At(sim.Time(4*time.Second), func() {
		if pl.QueueLength() != 1 {
			t.Errorf("victim not queued: queue %d", pl.QueueLength())
		}
		abort.Fire()
	})
	e.At(sim.Time(5*time.Second), func() {
		e.Spawn("release", func(p *sim.Proc) {
			pl.releaseSlot(holder)
			// The aborted waiter must not have been handed the slot.
			if st := holder.info.State; st != LifecycleIdle {
				t.Errorf("slot after release = %s, want idle", st)
			}
			sl, err := pl.acquireSlot(p, "app-A", nil, nil)
			if err != nil || sl != holder {
				t.Errorf("live acquire after abort = %v, %v; want the idle slot", sl, err)
				return
			}
			pl.releaseSlot(sl)
		})
	})
	e.Run()
	if !errors.Is(aborted, ErrAborted) {
		t.Errorf("aborted waiter error = %v, want ErrAborted", aborted)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestAbortAfterHandoffReReleases drives the narrow ordering where a
// release hands the slot to a waiter in the same instant its abort fires,
// with the abort callback running before the waiter resumes. The waiter
// must hand the slot back instead of stranding it LifecycleActive.
func TestAbortAfterHandoffReReleases(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	abort := sim.NewSignal(e)

	var holder *slot
	e.Spawn("holder", func(p *sim.Proc) {
		sl, err := pl.acquireSlot(p, "app-A", nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		holder = sl
	})
	var aborted error
	e.At(sim.Time(3*time.Second), func() {
		e.Spawn("victim", func(p *sim.Proc) {
			_, aborted = pl.acquireSlot(p, "app-A", nil, abort)
		})
	})
	// Same virtual instant, in event order: the abort fires (queueing its
	// callback), then the release pops the still-live waiter and fires its
	// signal, then the abort callback marks it aborted, and only then does
	// the waiter resume — finding w.aborted set AND w.sl assigned.
	e.At(sim.Time(4*time.Second), func() { abort.Fire() })
	e.At(sim.Time(4*time.Second), func() { pl.releaseSlot(holder) })
	e.Run()

	if !errors.Is(aborted, ErrAborted) {
		t.Errorf("waiter error = %v, want ErrAborted", aborted)
	}
	// The re-release must have parked the slot idle, not stranded it
	// active with no owner.
	if st := holder.info.State; st != LifecycleIdle {
		t.Errorf("slot state = %s, want idle", st)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestAutoscalerGrowsAndScalesToZero: a burst against an empty elastic
// pool must grow it past one runtime, serve everything, then shrink all
// the way back to zero — and the engine's event queue must drain (the
// control loop goes silent instead of ticking forever).
func TestAutoscalerGrowsAndScalesToZero(t *testing.T) {
	e := sim.NewEngine(1)
	pl := New(e, autoscaleTestConfig(0, 6))

	const n = 12
	served := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * 10 * time.Millisecond)
			if res := asOffloadOnce(t, p, pl, fmt.Sprintf("d%d", i)); res.Err == "" {
				served++
			}
		})
	}
	peak := 0
	e.Spawn("watch", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			p.Sleep(50 * time.Millisecond)
			if n := pl.RuntimeCount(); n > peak {
				peak = n
			}
		}
	})
	e.Run()
	if served != n {
		t.Fatalf("served %d of %d", served, n)
	}
	if peak < 2 {
		t.Errorf("pool never grew: peak %d", peak)
	}
	if peak > 6 {
		t.Errorf("pool exceeded MaxRuntimes: peak %d", peak)
	}
	if got := pl.RuntimeCount(); got != 0 {
		t.Errorf("pool after idle = %d, want 0 (scale-to-zero)", got)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestAutoscalerMaintainsFloor: MinRuntimes pre-warms without any
// traffic, and the pool settles exactly at the floor.
func TestAutoscalerMaintainsFloor(t *testing.T) {
	e := sim.NewEngine(1)
	pl := New(e, autoscaleTestConfig(2, 5))
	e.Run() // no traffic at all: the loop must still pre-warm the floor
	if got := pl.RuntimeCount(); got != 2 {
		t.Fatalf("idle pool = %d, want the MinRuntimes floor 2", got)
	}
	if got := pl.DB().StateCount(LifecycleIdle); got != 2 {
		t.Fatalf("idle census = %d, want 2", got)
	}
}

// TestExecFailuresCordonAndReplace: three consecutive exec failures on
// one runtime must cordon it, drain it out of the pool, and leave the
// platform serving from replacement capacity.
func TestExecFailuresCordonAndReplace(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := autoscaleTestConfig(1, 3)
	cfg.Autoscale.CordonThreshold = 3
	pl := New(e, cfg)

	var sickCID string
	pl.SetExecFault(func(p *sim.Proc, id, aid string) error {
		if id == sickCID {
			return errors.New("sick runtime")
		}
		return nil
	})

	failed, ok := 0, 0
	e.Spawn("driver", func(p *sim.Proc) {
		// First request boots the runtime that will get sick; identify it.
		req, push := linpackReq("d0")
		sess, err := pl.Prepare(p, req)
		if err != nil {
			t.Fatal(err)
		}
		sickCID = pl.slots.head.id
		if sess.NeedCode() {
			if err := sess.PushCode(p, push); err != nil {
				t.Fatal(err)
			}
		}
		if res, err := sess.Execute(p); err != nil || res.Err == "" {
			t.Fatalf("expected injected exec failure, got %v / %+v", err, res)
		}
		sess.Release()
		failed++

		// Two more strikes; the third cordons.
		for i := 1; i < 3; i++ {
			if res := asOffloadOnce(t, p, pl, fmt.Sprintf("d%d", i)); res.Err != "" {
				failed++
			}
		}
		if got := pl.Cordoned(); got != 1 {
			t.Errorf("cordons after 3 strikes = %d, want 1", got)
		}
		// Give the drain and replacement a moment, then requests must
		// succeed on a fresh runtime.
		p.Sleep(5 * time.Second)
		for i := 3; i < 6; i++ {
			if res := asOffloadOnce(t, p, pl, fmt.Sprintf("d%d", i)); res.Err == "" {
				ok++
			}
		}
	})
	e.Run()
	if failed != 3 {
		t.Fatalf("injected failures = %d, want 3", failed)
	}
	if ok != 3 {
		t.Fatalf("post-remediation successes = %d, want 3", ok)
	}
	if pl.byID[sickCID] != nil {
		t.Errorf("sick runtime %s still in the pool", sickCID)
	}
	if got := pl.FailureCount(FailExec); got != 3 {
		t.Errorf("exec failure total = %d, want 3", got)
	}
	if got := pl.DB().StateCount(LifecycleDraining); got != 0 {
		t.Errorf("%d slot(s) stuck draining", got)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}

// TestLifecycleCensusInvariant is the property test: under autoscaler
// churn with injected boot, exec, and teardown faults, every lifecycle
// edge taken must be in the legal matrix, and between events the live
// census must always sum to the slot-list length. SetLifecycleHooks is
// how we observe every single edge (so the test must not also SetObs,
// which would overwrite the hooks). The template subtest runs the same
// storm with TemplateBoot on, so clone boots walk the identical FSM.
func TestLifecycleCensusInvariant(t *testing.T) {
	t.Run("cold", func(t *testing.T) { lifecycleCensusStorm(t, false) })
	t.Run("template", func(t *testing.T) { lifecycleCensusStorm(t, true) })
}

func lifecycleCensusStorm(t *testing.T, templateBoot bool) {
	e := sim.NewEngine(7)
	cfg := autoscaleTestConfig(0, 4)
	cfg.Autoscale.CordonThreshold = 2
	cfg.TemplateBoot = templateBoot
	pl := New(e, cfg)

	edges := 0
	pl.DB().SetLifecycleHooks(func(from, to Lifecycle) {
		edges++
		if !LegalTransition(from, to) {
			t.Errorf("illegal edge %s -> %s", from, to)
		}
	}, nil)

	// Deterministic fault mix: every 5th boot, every 7th exec, every 3rd
	// teardown fails.
	boots, execs, stops := 0, 0, 0
	pl.SetBootFault(func(p *sim.Proc, id string) error {
		boots++
		if boots%5 == 0 {
			return errors.New("boot fault")
		}
		return nil
	})
	pl.SetExecFault(func(p *sim.Proc, id, aid string) error {
		execs++
		if execs%7 == 0 {
			return errors.New("exec fault")
		}
		return nil
	})
	pl.SetTeardownFault(func(p *sim.Proc, id string) error {
		stops++
		if stops%3 == 0 {
			return errors.New("teardown fault")
		}
		return nil
	})

	for i := 0; i < 24; i++ {
		i := i
		e.Spawn(fmt.Sprintf("req-%d", i), func(p *sim.Proc) {
			// Three waves with idle gaps between them, so the pool grows,
			// shrinks toward zero, and grows again.
			p.Sleep(time.Duration(i/8)*20*time.Second + time.Duration(i%8)*30*time.Millisecond)
			req, push := linpackReq(fmt.Sprintf("d%d", i))
			sess, err := pl.Prepare(p, req)
			if err != nil {
				return // boot fault surfaced; acceptable
			}
			defer sess.Release()
			if sess.NeedCode() {
				if err := sess.PushCode(p, push); err != nil {
					return
				}
			}
			res, err := sess.Execute(p)
			if errors.Is(err, offload.ErrCodeNeeded) {
				if err = sess.PushCode(p, push); err == nil {
					_, _ = sess.Execute(p)
				}
			}
			_ = res
		})
	}
	// The census check runs between events, where the platform's
	// bookkeeping must be consistent.
	e.Spawn("census", func(p *sim.Proc) {
		for i := 0; i < 1500; i++ {
			p.Sleep(50 * time.Millisecond)
			db := pl.DB()
			sum := db.StateCount(LifecycleBooting) + db.StateCount(LifecycleIdle) +
				db.StateCount(LifecycleActive) + db.StateCount(LifecycleDraining)
			if sum != pl.RuntimeCount() || db.Count() != pl.RuntimeCount() {
				t.Errorf("census drift at %v: states %d, db %d, slots %d",
					e.Now().Duration(), sum, db.Count(), pl.RuntimeCount())
				return
			}
		}
	})
	e.Run()
	if edges == 0 {
		t.Fatal("no lifecycle edges observed; the property test proved nothing")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked procs: %d", e.LiveProcs())
	}
}
