package core

import (
	"fmt"
	"sort"

	"rattrap/internal/host"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

// cacheEntry is one row of the warehouse's cache table (Figure 8): the
// code's AID, its reference (app name), where the blob is staged, and the
// containers that already loaded it (CIDs) so the Dispatcher can route
// same-app requests to a runtime that skips code loading.
type cacheEntry struct {
	AID  string
	App  string
	Size host.Bytes
	Path string
	CIDs map[string]bool
	Hits int
}

// Warehouse is the App Warehouse (§IV-D): the mobile code cache that
// eliminates duplicate code transfer. Code arrives once — with an app's
// first offloading request, "once and for all" — and later requests
// reference it by AID instead of re-uploading.
type Warehouse struct {
	store   *unionfs.Mount
	entries map[string]*cacheEntry
	pending map[string]*sim.Signal // in-flight first pushes, by AID
	misses  int
}

// NewWarehouse creates a warehouse staging blobs on store (the shared
// in-memory offloading layer in Rattrap).
func NewWarehouse(store *unionfs.Mount) *Warehouse {
	return &Warehouse{
		store:   store,
		entries: make(map[string]*cacheEntry),
		pending: make(map[string]*sim.Signal),
	}
}

// Inflight reports whether another session is already transferring this
// code, returning the signal that fires when the push lands. Concurrent
// first requests from several devices would otherwise all push the same
// code; the paper's "once and for all" admits exactly one transfer.
func (w *Warehouse) Inflight(aid string) (*sim.Signal, bool) {
	sig, ok := w.pending[aid]
	return sig, ok
}

// Claim marks this session as the one pushing aid; later sessions see it
// via Inflight and wait instead of re-uploading.
func (w *Warehouse) Claim(e *sim.Engine, aid string) {
	if _, ok := w.pending[aid]; !ok {
		w.pending[aid] = sim.NewSignal(e)
	}
}

// settle fires and clears a pending claim (after Put, or on abort).
func (w *Warehouse) settle(aid string) {
	if sig, ok := w.pending[aid]; ok {
		delete(w.pending, aid)
		sig.Fire()
	}
}

// Has reports whether the AID is cached, recording a hit or miss.
func (w *Warehouse) Has(aid string) bool {
	if e, ok := w.entries[aid]; ok {
		e.Hits++
		return true
	}
	w.misses++
	return false
}

// Lookup returns the cache entry without touching hit statistics.
func (w *Warehouse) Lookup(aid string) (*cacheEntry, bool) {
	e, ok := w.entries[aid]
	return e, ok
}

// Put stages newly received code, blocking p for the store write.
func (w *Warehouse) Put(p *sim.Proc, aid, app string, size host.Bytes) error {
	if _, ok := w.entries[aid]; ok {
		return nil // concurrent push of the same code: keep the first
	}
	path := "/warehouse/" + aid + ".apk"
	if err := w.store.Write(p, path, size, nil, 1.0); err != nil {
		return fmt.Errorf("core: warehouse put %s: %w", aid, err)
	}
	w.entries[aid] = &cacheEntry{AID: aid, App: app, Size: size, Path: path, CIDs: make(map[string]bool)}
	return nil
}

// BindCID records that a container loaded the code (the AID→CID mapping
// the Dispatcher uses for affinity).
func (w *Warehouse) BindCID(aid, cid string) {
	if e, ok := w.entries[aid]; ok {
		e.CIDs[cid] = true
	}
}

// UnbindCID removes a stopped container from all entries.
func (w *Warehouse) UnbindCID(cid string) {
	for _, e := range w.entries {
		delete(e.CIDs, cid)
	}
}

// CIDsFor returns containers holding the code, sorted for determinism.
func (w *Warehouse) CIDsFor(aid string) []string {
	e, ok := w.entries[aid]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(e.CIDs))
	for cid := range e.CIDs {
		out = append(out, cid)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes cache behaviour.
func (w *Warehouse) Stats() (entries, hits, misses int) {
	for _, e := range w.entries {
		hits += e.Hits
	}
	return len(w.entries), hits, w.misses
}

// StoredBytes is the total staged code volume.
func (w *Warehouse) StoredBytes() host.Bytes {
	var t host.Bytes
	for _, e := range w.entries {
		t += e.Size
	}
	return t
}
