package core

import (
	"fmt"
	"sort"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

// cacheEntry is one row of the warehouse's cache table (Figure 8): the
// code's AID, its reference (app name), where the blob is staged, and the
// containers that already loaded it (CIDs) so the Dispatcher can route
// same-app requests to a runtime that skips code loading.
type cacheEntry struct {
	AID  string
	App  string
	Size host.Bytes
	Path string
	CIDs map[string]bool
	Hits int

	// Hashes is the entry's chunk manifest when it arrived via a delta
	// push; such entries own references into the shared chunk store
	// instead of a private blob (chunked=true).
	Hashes  []uint64
	chunked bool

	// lastBound/seq order entries for least-recently-bound eviction: the
	// virtual time a container last loaded the code, with the insertion
	// sequence breaking same-instant ties deterministically.
	lastBound sim.Time
	seq       int
}

// chunkInfo is one content-addressed block of the chunk store: its size
// and how many cache entries reference it.
type chunkInfo struct {
	size host.Bytes
	refs int
}

// Warehouse is the App Warehouse (§IV-D): the mobile code cache that
// eliminates duplicate code transfer. Code arrives once — with an app's
// first offloading request, "once and for all" — and later requests
// reference it by AID instead of re-uploading. Chunked entries go
// further: their blocks are content-addressed, so app families sharing
// libraries store (and transfer) each common block exactly once across
// AIDs.
type Warehouse struct {
	e       *sim.Engine
	store   *unionfs.Mount
	entries map[string]*cacheEntry
	pending map[string]*sim.Signal // in-flight first pushes, by AID
	chunks  map[uint64]*chunkInfo  // content-addressed block store
	misses  int

	// capacity bounds StoredBytes; 0 means unbounded (the pre-eviction
	// behaviour). evictions counts entries dropped to stay under it.
	capacity  host.Bytes
	evictions int
	seq       int
}

// NewWarehouse creates a warehouse staging blobs on store (the shared
// in-memory offloading layer in Rattrap). capacity bounds the staged
// volume (0 = unbounded); e supplies the clock that orders entries for
// least-recently-bound eviction.
func NewWarehouse(e *sim.Engine, store *unionfs.Mount, capacity host.Bytes) *Warehouse {
	return &Warehouse{
		e:        e,
		store:    store,
		entries:  make(map[string]*cacheEntry),
		pending:  make(map[string]*sim.Signal),
		chunks:   make(map[uint64]*chunkInfo),
		capacity: capacity,
	}
}

// Inflight reports whether another session is already transferring this
// code, returning the signal that fires when the push lands. Concurrent
// first requests from several devices would otherwise all push the same
// code; the paper's "once and for all" admits exactly one transfer.
func (w *Warehouse) Inflight(aid string) (*sim.Signal, bool) {
	sig, ok := w.pending[aid]
	return sig, ok
}

// Claim marks this session as the one pushing aid; later sessions see it
// via Inflight and wait instead of re-uploading.
func (w *Warehouse) Claim(e *sim.Engine, aid string) {
	if _, ok := w.pending[aid]; !ok {
		w.pending[aid] = sim.NewSignal(e)
	}
}

// settle fires and clears a pending claim (after Put, or on abort).
func (w *Warehouse) settle(aid string) {
	if sig, ok := w.pending[aid]; ok {
		delete(w.pending, aid)
		sig.Fire()
	}
}

// Has reports whether the AID is cached, recording a hit or miss.
func (w *Warehouse) Has(aid string) bool {
	if e, ok := w.entries[aid]; ok {
		e.Hits++
		return true
	}
	w.misses++
	return false
}

// Lookup returns the cache entry without touching hit statistics.
func (w *Warehouse) Lookup(aid string) (*cacheEntry, bool) {
	e, ok := w.entries[aid]
	return e, ok
}

// newEntry records a staged blob in the cache table.
func (w *Warehouse) newEntry(aid, app string, size host.Bytes, path string, hashes []uint64, chunked bool) {
	w.seq++
	w.entries[aid] = &cacheEntry{
		AID: aid, App: app, Size: size, Path: path,
		CIDs:      make(map[string]bool),
		Hashes:    hashes,
		chunked:   chunked,
		lastBound: w.e.Now(),
		seq:       w.seq,
	}
}

// Put stages newly received code as one plain blob, blocking p for the
// store write.
func (w *Warehouse) Put(p *sim.Proc, aid, app string, size host.Bytes) error {
	if _, ok := w.entries[aid]; ok {
		return nil // concurrent push of the same code: keep the first
	}
	path := "/warehouse/" + aid + ".apk"
	if err := w.store.Write(p, path, size, nil, 1.0); err != nil {
		return fmt.Errorf("core: warehouse put %s: %w", aid, err)
	}
	w.newEntry(aid, app, size, path, nil, false)
	return nil
}

func chunkPath(h uint64) string { return fmt.Sprintf("/warehouse/chunks/%016x", h) }

// MissingChunks returns, in offer order, the offered hashes the chunk
// store does not hold yet (each reported once).
func (w *Warehouse) MissingChunks(hashes []uint64) []uint64 {
	var missing []uint64
	seen := make(map[uint64]bool, len(hashes))
	for _, h := range hashes {
		if seen[h] {
			continue
		}
		seen[h] = true
		if _, ok := w.chunks[h]; !ok {
			missing = append(missing, h)
		}
	}
	return missing
}

// PutChunked stages a delta push: the chunks in missing are written into
// the content-addressed store in parallel (each is an independent block;
// staging them concurrently is what makes a wide delta land in one
// chunk-write's time), every offered hash gains a reference, and the
// entry is recorded as chunked. size/hashes describe the whole blob;
// missing must be a subset of hashes (fresh hashes from MissingChunks).
// The whole offer is validated before anything is staged, so a rejected
// push leaves no orphaned blocks in the store.
func (w *Warehouse) PutChunked(p *sim.Proc, aid, app string, size host.Bytes, hashes, missing []uint64) error {
	if _, ok := w.entries[aid]; ok {
		return nil // concurrent push of the same code: keep the first
	}
	if len(hashes) == 0 || len(hashes) != offload.ChunkCount(size) {
		return fmt.Errorf("core: warehouse put %s: manifest of %d chunks does not describe a %d-byte blob",
			aid, len(hashes), size)
	}
	span := make(map[uint64]host.Bytes, len(hashes))
	for i, h := range hashes {
		sz := offload.ChunkSpan(size, i)
		if prev, ok := span[h]; ok {
			// A hash repeated within the manifest must always name the
			// same-size block; disagreement means a hash collision.
			if prev != sz {
				return fmt.Errorf("core: warehouse put %s: chunk %016x spans both %d and %d bytes (hash collision)",
					aid, h, prev, sz)
			}
			continue
		}
		if c, ok := w.chunks[h]; ok && c.size != sz {
			return fmt.Errorf("core: warehouse put %s: chunk %016x is %d bytes but store holds %d (hash collision)",
				aid, h, sz, c.size)
		}
		span[h] = sz
	}
	for _, h := range missing {
		if _, ok := span[h]; !ok {
			return fmt.Errorf("core: warehouse put %s: missing chunk %016x not in offer", aid, h)
		}
	}
	var firstErr error
	if len(missing) > 0 {
		done := sim.NewSignal(p.E)
		remaining := len(missing)
		for _, h := range missing {
			h := h
			sz := span[h]
			p.E.Spawn("chunk-stage-"+aid, func(cp *sim.Proc) {
				if err := w.store.Write(cp, chunkPath(h), sz, nil, 1.0); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("core: warehouse chunk %016x: %w", h, err)
				}
				remaining--
				if remaining == 0 {
					done.Fire()
				}
			})
		}
		p.Wait(done)
	}
	if firstErr != nil {
		return firstErr
	}
	seen := make(map[uint64]bool, len(hashes))
	for _, h := range hashes {
		if seen[h] {
			continue
		}
		seen[h] = true
		if c, ok := w.chunks[h]; ok {
			c.refs++
		} else {
			w.chunks[h] = &chunkInfo{size: span[h], refs: 1}
		}
	}
	w.newEntry(aid, app, size, chunkPath(hashes[0]), hashes, true)
	return nil
}

// BindCID records that a container loaded the code (the AID→CID mapping
// the Dispatcher uses for affinity) and refreshes the entry's
// least-recently-bound stamp.
func (w *Warehouse) BindCID(aid, cid string) {
	if e, ok := w.entries[aid]; ok {
		e.CIDs[cid] = true
		e.lastBound = w.e.Now()
	}
}

// UnbindCID removes a stopped container from all entries.
func (w *Warehouse) UnbindCID(cid string) {
	for _, e := range w.entries {
		delete(e.CIDs, cid)
	}
}

// CIDsFor returns containers holding the code, sorted for determinism.
func (w *Warehouse) CIDsFor(aid string) []string {
	e, ok := w.entries[aid]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(e.CIDs))
	for cid := range e.CIDs {
		out = append(out, cid)
	}
	sort.Strings(out)
	return out
}

// dropEntry removes an entry and releases its chunk references; blocks
// with no remaining referents leave the store with it.
func (w *Warehouse) dropEntry(e *cacheEntry) {
	delete(w.entries, e.AID)
	if !e.chunked {
		_ = w.store.Remove(e.Path)
		return
	}
	seen := make(map[uint64]bool, len(e.Hashes))
	for _, h := range e.Hashes {
		if seen[h] {
			continue
		}
		seen[h] = true
		c, ok := w.chunks[h]
		if !ok {
			continue
		}
		c.refs--
		if c.refs <= 0 {
			delete(w.chunks, h)
			_ = w.store.Remove(chunkPath(h))
		}
	}
}

// EnforceCapacity evicts least-recently-bound entries until StoredBytes
// fits the configured capacity again, returning how many entries were
// dropped. With no capacity configured (0) it never evicts; a single
// oversize entry is kept — the warehouse always admits the blob that was
// just pushed.
func (w *Warehouse) EnforceCapacity() int {
	if w.capacity <= 0 {
		return 0
	}
	dropped := 0
	for w.StoredBytes() > w.capacity && len(w.entries) > 1 {
		var victim *cacheEntry
		for _, e := range w.entries {
			if victim == nil || e.lastBound < victim.lastBound ||
				(e.lastBound == victim.lastBound && e.seq < victim.seq) {
				victim = e
			}
		}
		w.dropEntry(victim)
		dropped++
	}
	w.evictions += dropped
	return dropped
}

// Evictions reports how many entries capacity enforcement has dropped.
func (w *Warehouse) Evictions() int { return w.evictions }

// Stats summarizes cache behaviour.
func (w *Warehouse) Stats() (entries, hits, misses int) {
	for _, e := range w.entries {
		hits += e.Hits
	}
	return len(w.entries), hits, w.misses
}

// StoredBytes is the total staged code volume: plain blobs plus the
// deduplicated chunk store — a block shared by many AIDs is counted once.
func (w *Warehouse) StoredBytes() host.Bytes {
	var t host.Bytes
	for _, e := range w.entries {
		if !e.chunked {
			t += e.Size
		}
	}
	for _, c := range w.chunks {
		t += c.size
	}
	return t
}

// ChunkCount reports how many content-addressed blocks the store holds.
func (w *Warehouse) ChunkCount() int { return len(w.chunks) }
