package core

import (
	"time"

	"rattrap/internal/sim"
)

// This file is the capacity half of the elastic-pool subsystem: a
// control loop, driven by the platform's own sim engine so it is
// virtual-time deterministic, that grows and shrinks the runtime pool
// between MinRuntimes and MaxRuntimes from two signals the dispatcher
// already maintains — the FIFO wait-ring depth (smoothed by an EWMA)
// and the slot-hold-time EWMA behind the overload retry-after hint.
//
// The loop is edge-triggered, not free-running: a tick is scheduled
// only when some event created work for it (a request queued, a slot
// went idle, a cordon fired, the pool dropped below its floor), and a
// tick reschedules itself only while there is still work to converge
// on. When the platform quiesces the loop goes silent. That matters
// beyond efficiency: sim.Engine.Run terminates when the event queue
// drains, so a permanently re-arming timer would hang every
// virtual-time experiment.
//
// Capacity moves through two mechanisms:
//
//   - the elastic boot ceiling (limit): the request path boots a new
//     runtime synchronously while the pool is under it, so fresh
//     arrivals during a burst are served without waiting for the next
//     tick. The ceiling rises toward the demand target by at most
//     GrowPerTick per tick and decays by one once demand passes, so a
//     burst must re-earn its capacity.
//   - loop boots: requests already parked in the wait ring cannot
//     re-enter the request path, so the tick spawns boots for the
//     backlog directly and hands the fresh runtimes to the oldest live
//     waiters.
//
// Shrinking is hysteretic: only after ShrinkAfter consecutive ticks of
// surplus does the loop stop one idle runtime per tick (longest-idle
// first), down to MinRuntimes — with MinRuntimes zero an idle platform
// scales to nothing and the next request pays one cold boot.

// AutoscaleConfig tunes the elastic pool control loop. The zero value
// (Enabled false) keeps the paper's static pool semantics: boot on
// demand up to MaxRuntimes, optionally reap after IdleTimeout.
type AutoscaleConfig struct {
	// Enabled turns the control loop on. When on, the loop owns idle
	// reclamation and Config.IdleTimeout is ignored.
	Enabled bool
	// Interval is the virtual-time spacing between control ticks
	// (default 250ms).
	Interval time.Duration
	// GrowPerTick caps how many runtimes one tick may add, bounding
	// boot storms on a demand spike (default 2).
	GrowPerTick int
	// ShrinkAfter is the hysteresis: consecutive surplus ticks before
	// the loop starts stopping idle runtimes (default 4).
	ShrinkAfter int
	// CordonThreshold is how many consecutive failures (boot, exec, or
	// teardown) cordon a runtime for drain-and-replace. Default 3 when
	// Enabled; 0 leaves cordoning off (failures are still counted).
	CordonThreshold int
	// QueueAlpha is the EWMA weight on the wait-ring depth signal, in
	// (0, 1]; higher reacts faster (default 0.5).
	QueueAlpha float64
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.GrowPerTick <= 0 {
		c.GrowPerTick = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 4
	}
	if c.CordonThreshold <= 0 {
		c.CordonThreshold = 3
	}
	if c.QueueAlpha <= 0 || c.QueueAlpha > 1 {
		c.QueueAlpha = 0.5
	}
	return c
}

// backlog-drain sizing: the loop aims to clear the smoothed backlog
// within this many control intervals, assuming each runtime retires one
// request per hold-time.
const drainWindowTicks = 4

// bootGiveUp is how many consecutive failed loop boots park the grow
// path. Without it a platform whose boots always fail (persistent
// injected fault, broken image) would retry every tick forever — and in
// virtual time that means Engine.Run never terminates. A later kick
// (new queue pressure) resets the count and tries again.
const bootGiveUp = 8

type autoscaler struct {
	pl  *Platform
	cfg AutoscaleConfig

	limit   int     // elastic boot ceiling for the request path
	qEWMA   float64 // smoothed wait-ring depth
	surplus int     // consecutive ticks with capacity above target
	backoff int     // ticks the grow path still sits out after a failed boot
	strikes int     // consecutive failed loop boots (bootGiveUp)
	pending bool    // a tick event is scheduled
	ticks   int     // lifetime tick count (tests, debugging)
}

func newAutoscaler(pl *Platform, cfg AutoscaleConfig) *autoscaler {
	a := &autoscaler{pl: pl, cfg: cfg.withDefaults()}
	a.limit = a.floorLimit()
	return a
}

// floorLimit is the boot ceiling's resting value: at least one, so a
// scaled-to-zero pool can still serve a cold request synchronously.
func (a *autoscaler) floorLimit() int {
	if a.pl.cfg.MinRuntimes > 1 {
		return a.pl.cfg.MinRuntimes
	}
	return 1
}

// kickScaler schedules a control tick if none is pending. Every event
// that can create work for the loop calls it; with the autoscaler off it
// is one nil check.
func (pl *Platform) kickScaler() {
	a := pl.scaler
	if a == nil || a.pending {
		return
	}
	a.pending = true
	pl.E.After(a.cfg.Interval, a.tick)
}

// poolCap is the dispatcher's current boot ceiling: the static
// MaxRuntimes, or the autoscaler's elastic limit when one is running.
func (pl *Platform) poolCap() int {
	if pl.scaler != nil {
		return pl.scaler.limit
	}
	return pl.cfg.MaxRuntimes
}

// schedulable counts the runtimes that can serve (or will shortly serve)
// requests: idle, active, and booting, minus cordoned slots awaiting
// drain. Draining slots are already gone for scheduling purposes.
func (pl *Platform) schedulable() int {
	n := pl.db.StateCount(LifecycleIdle) + pl.db.StateCount(LifecycleActive) +
		pl.db.StateCount(LifecycleBooting) - pl.cordonedLive
	if n < 0 {
		n = 0
	}
	return n
}

// target is the schedulable capacity the current signals ask for:
// enough runtimes for everything running now, plus enough to clear the
// smoothed backlog within drainWindowTicks intervals at one request per
// hold-time per runtime, clamped to [MinRuntimes, MaxRuntimes].
func (a *autoscaler) target() int {
	pl := a.pl
	t := pl.db.StateCount(LifecycleActive)
	if a.qEWMA > 0 {
		hold := pl.holdEWMA
		if hold <= 0 {
			hold = 250 * time.Millisecond // no completed holds yet
		}
		window := time.Duration(drainWindowTicks) * a.cfg.Interval
		backlog := int((a.qEWMA*float64(hold) + float64(window) - 1) / float64(window))
		if backlog < 1 {
			backlog = 1 // a non-empty queue always asks for something
		}
		t += backlog
	}
	if t < pl.cfg.MinRuntimes {
		t = pl.cfg.MinRuntimes
	}
	if t > pl.cfg.MaxRuntimes {
		t = pl.cfg.MaxRuntimes
	}
	return t
}

// tick is one control-loop step.
func (a *autoscaler) tick() {
	a.pending = false
	pl := a.pl
	a.ticks++

	qlen := pl.waitQ.len()
	a.qEWMA += a.cfg.QueueAlpha * (float64(qlen) - a.qEWMA)
	if a.qEWMA < 1e-3 {
		a.qEWMA = 0
	}
	if a.backoff > 0 {
		a.backoff--
	}

	have := pl.schedulable()
	want := a.target()

	switch {
	case want > have:
		// Grow. Open the request path's ceiling boundedly, and boot for
		// the parked backlog the request path cannot see.
		a.surplus = 0
		if a.limit < want {
			a.limit = min(a.limit+a.cfg.GrowPerTick, want)
		}
		if a.backoff == 0 && a.strikes < bootGiveUp {
			n := min(want-have, a.cfg.GrowPerTick, a.limit-have)
			for i := 0; i < n; i++ {
				a.spawnBoot()
			}
		}
	case have > want:
		// Surplus. After the hysteresis window, retire one idle runtime
		// per tick, longest-idle first.
		a.surplus++
		if a.surplus >= a.cfg.ShrinkAfter {
			a.stopOneIdle()
		}
	default:
		a.surplus = 0
	}
	if want <= have && a.limit > a.floorLimit() && a.limit > want {
		a.limit--
	}

	if pl.om != nil {
		pl.om.asTicks.Inc()
		pl.om.asLimit.Set(int64(a.limit))
		pl.om.asQueueEWMA.Set(int64(a.qEWMA * 1000))
	}

	// Re-arm while there is still work to converge on; otherwise go
	// silent until the next kick. A permanent boot-failure streak stops
	// counting as convergable work (bootGiveUp).
	deficit := have < want && a.strikes < bootGiveUp
	busy := qlen > 0 || a.qEWMA > 0 || deficit || have > want ||
		pl.db.StateCount(LifecycleBooting) > 0 ||
		(a.limit > a.floorLimit() && a.limit > want)
	if busy {
		a.pending = true
		pl.E.After(a.cfg.Interval, a.tick)
	}
}

// spawnBoot starts one loop-initiated boot on its own proc. The fresh
// runtime goes to the oldest live waiter, or to the idle pool.
func (a *autoscaler) spawnBoot() {
	pl := a.pl
	pl.E.Spawn("autoscale-boot", func(p *sim.Proc) {
		if pl.slots.n >= pl.cfg.MaxRuntimes {
			return // request-path boots got there first
		}
		sl, err := pl.bootSlot(p)
		if err != nil {
			// bootSlot already recorded the failure and removed the
			// provisional slot; back the grow path off linearly and make
			// sure a tick comes around to retry.
			a.strikes++
			a.backoff = min(a.strikes, bootGiveUp)
			pl.kickScaler()
			return
		}
		a.strikes = 0
		if pl.om != nil {
			pl.om.asBoots.Inc()
		}
		pl.offerBooted(sl)
	})
}

// stopOneIdle retires the longest-idle schedulable runtime, if the pool
// is above its floor. The stop runs on its own proc; the re-check there
// mirrors scheduleReap — the slot may have been claimed between the
// decision and the proc running.
func (a *autoscaler) stopOneIdle() {
	pl := a.pl
	if pl.schedulable() <= pl.cfg.MinRuntimes {
		return
	}
	var victim *slot
	pl.slots.each(func(sl *slot) {
		if !slotIdle(sl) {
			return
		}
		if victim == nil || sl.info.LastUsed < victim.info.LastUsed {
			victim = sl
		}
	})
	if victim == nil {
		return
	}
	asOf := victim.info.LastUsed
	pl.E.Spawn("autoscale-stop:"+victim.id, func(p *sim.Proc) {
		if !slotIdle(victim) || victim.info.LastUsed != asOf {
			return
		}
		if pl.StopRuntime(p, victim.id) == nil && pl.om != nil {
			pl.om.asStops.Inc()
		}
	})
}

// offerBooted places a freshly booted (LifecycleActive) runtime: the
// oldest live waiter gets it directly — it stays active through the
// handoff, exactly like a release-to-waiter — otherwise it parks idle.
// Unlike releaseSlot this records no hold time: boot duration is not a
// request hold and must not poison the retry-after EWMA.
func (pl *Platform) offerBooted(sl *slot) {
	sl.info.LastUsed = pl.E.Now()
	if w := pl.popLiveWaiter(); w != nil {
		w.sl = sl
		sl.acquiredAt = pl.E.Now()
		if pl.om != nil {
			pl.om.queueLen.Set(int64(pl.waitQ.len()))
		}
		w.sig.Fire()
		return
	}
	pl.db.Transition(sl.id, LifecycleIdle)
	pl.sched.Offer(sl)
}

// SetPoolBounds retunes the pool's sizing bounds at runtime — the
// operator's floor/ceiling knob (a scenario's set-floor event, a capacity
// reservation ahead of an anticipated burst). Values are clamped sane
// (maxR at least 1, 0 <= minR <= maxR) and a control tick is kicked so an
// enlarged floor starts pre-warming immediately rather than waiting for
// the next demand edge. Without the autoscaler the new MaxRuntimes still
// bounds the request path's boot ceiling; MinRuntimes stays inert, as
// documented on Config.
func (pl *Platform) SetPoolBounds(minR, maxR int) {
	if maxR < 1 {
		maxR = 1
	}
	if minR < 0 {
		minR = 0
	}
	if minR > maxR {
		minR = maxR
	}
	pl.cfg.MinRuntimes = minR
	pl.cfg.MaxRuntimes = maxR
	pl.kickScaler()
}
