package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rattrap/internal/acd"
	"rattrap/internal/device"
	"rattrap/internal/host"
	"rattrap/internal/netsim"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/workload"
)

func newPlatform(kind Kind) (*sim.Engine, *Platform) {
	e := sim.NewEngine(1)
	return e, New(e, DefaultConfig(kind))
}

func mustDevice(t *testing.T, e *sim.Engine, name string) *device.Device {
	t.Helper()
	d, err := device.New(e, name, netsim.LANWiFi())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTableISetupMemoryDisk(t *testing.T) {
	type row struct {
		boot time.Duration
		mem  int
		disk host.Bytes
	}
	got := make(map[Kind]row)
	for _, kind := range []Kind{KindVM, KindRattrapWO, KindRattrap} {
		e, pl := newPlatform(kind)
		e.Spawn("t", func(p *sim.Proc) {
			info, err := pl.BootRuntime(p)
			if err != nil {
				t.Errorf("%v: %v", kind, err)
				return
			}
			got[kind] = row{boot: info.BootTime, mem: info.MemMB, disk: info.DiskBytes}
		})
		e.Run()
	}
	vm, wo, opt := got[KindVM], got[KindRattrapWO], got[KindRattrap]
	// Setup time bands around Table I's 28.72 s / 6.80 s / 1.75 s.
	if vm.boot < 25*time.Second || vm.boot > 33*time.Second {
		t.Errorf("VM setup = %v, want ≈28.72s", vm.boot)
	}
	if wo.boot < 5500*time.Millisecond || wo.boot > 8500*time.Millisecond {
		t.Errorf("CAC(W/O) setup = %v, want ≈6.80s", wo.boot)
	}
	if opt.boot < 1300*time.Millisecond || opt.boot > 2200*time.Millisecond {
		t.Errorf("CAC setup = %v, want ≈1.75s", opt.boot)
	}
	// Memory: 512 / 128-limited (≈110 used) / 96-limited (≈96 used).
	if vm.mem != 512 {
		t.Errorf("VM memory = %d, want 512", vm.mem)
	}
	if wo.mem < 100 || wo.mem > memLimitWO {
		t.Errorf("CAC(W/O) memory = %d, want ≈110 under the 128 limit", wo.mem)
	}
	if opt.mem < 90 || opt.mem > memLimitOpt {
		t.Errorf("CAC memory = %d, want ≈96", opt.mem)
	}
	// Disk: ≈1.1 GB / ≈1.02 GB / <7.1 MB.
	if gb := float64(vm.disk) / float64(host.GB); gb < 1.08 || gb > 1.12 {
		t.Errorf("VM disk = %.3f GB, want ≈1.1", gb)
	}
	if gb := float64(wo.disk) / float64(host.GB); gb < 1.0 || gb > 1.05 {
		t.Errorf("CAC(W/O) disk = %.3f GB, want ≈1.02", gb)
	}
	if mb := float64(opt.disk) / float64(host.MB); mb <= 0 || mb > 7.1 {
		t.Errorf("CAC disk = %.2f MB, want under 7.1", mb)
	}
	// Headline ratios.
	if sp := float64(vm.boot) / float64(opt.boot); sp < 13 || sp > 21 {
		t.Errorf("setup speedup = %.1fx, paper reports 16.41x", sp)
	}
	if sav := 1 - float64(opt.mem)/float64(vm.mem); sav < 0.75 {
		t.Errorf("memory saving = %.0f%%, paper reports ≥75%%", sav*100)
	}
	if sav := 1 - float64(opt.disk)/float64(vm.disk); sav < 0.79 {
		t.Errorf("disk saving = %.0f%%, paper reports ≥79%%", sav*100)
	}
}

// offloadOnce drives a full device->cloud offload of one task.
func offloadOnce(t *testing.T, e *sim.Engine, pl *Platform, d *device.Device, app workload.App) (offload.Phases, offload.Result) {
	t.Helper()
	var ph offload.Phases
	var res offload.Result
	e.Spawn("req", func(p *sim.Proc) {
		task := d.NewTask(app)
		var err error
		ph, res, err = d.Offload(p, task, app.CodeSize(), pl)
		if err != nil {
			t.Errorf("offload: %v", err)
		}
	})
	e.Run()
	return ph, res
}

func TestEndToEndOffloadAllWorkloads(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	d := mustDevice(t, e, "phone-1")
	for _, app := range workload.Apps() {
		_, res := offloadOnce(t, e, pl, d, app)
		if res.Err != "" || res.Output == "" {
			t.Errorf("%s: result %+v", app.Name(), res)
		}
	}
	if pl.RuntimeCount() != 1 {
		t.Errorf("pool grew to %d for serial requests", pl.RuntimeCount())
	}
	snap := pl.DB().Snapshot()
	if snap.TotalExec != 4 {
		t.Errorf("executed = %d, want 4", snap.TotalExec)
	}
}

func TestFirstRequestPaysBootLaterOnesDoNot(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	d := mustDevice(t, e, "phone-1")
	app, _ := workload.ByName(workload.NameChess)
	ph1, _ := offloadOnce(t, e, pl, d, app)
	ph2, _ := offloadOnce(t, e, pl, d, app)
	if ph1.RuntimePreparation < time.Second {
		t.Errorf("first request prep = %v, want ≥1s (cold boot)", ph1.RuntimePreparation)
	}
	if ph2.RuntimePreparation > 200*time.Millisecond {
		t.Errorf("second request prep = %v, want warm runtime", ph2.RuntimePreparation)
	}
	if ph2.DataTransfer >= ph1.DataTransfer {
		t.Errorf("code re-transferred: %v vs %v", ph2.DataTransfer, ph1.DataTransfer)
	}
}

func TestWarehouseEliminatesDuplicateCodeTransfer(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())
	e.Spawn("t", func(p *sim.Proc) {
		d := mustDeviceIn(t, e, "phone-1")
		// First request: cold, pushes code.
		task := d.NewTask(app)
		req := offload.ExecRequest{DeviceID: "phone-1", AID: aid, App: task.App, Method: task.Method,
			Params: task.Params, ParamBytes: task.ParamBytes}
		s1, err := pl.Prepare(p, req)
		if err != nil {
			t.Fatal(err)
		}
		if !s1.NeedCode() {
			t.Fatal("first request should need code")
		}
		if err := s1.PushCode(p, offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()}); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Execute(p); err != nil {
			t.Fatal(err)
		}
		// Keep runtime 1 occupied so the next request lands on a fresh
		// runtime that has never seen the code.
		s2, err := pl.Prepare(p, req) // s1 not yet released -> boots #2
		if err != nil {
			t.Fatal(err)
		}
		if s2.NeedCode() {
			t.Error("warehouse should satisfy the second runtime's code")
		}
		if res, err := s2.Execute(p); err != nil || res.Err != "" {
			t.Fatalf("execute on second runtime: %v %v", res, err)
		}
		s1.Release()
		s2.Release()
		if pl.RuntimeCount() != 2 {
			t.Errorf("runtimes = %d, want 2", pl.RuntimeCount())
		}
		entries, hits, _ := pl.Warehouse().Stats()
		if entries != 1 || hits < 1 {
			t.Errorf("warehouse entries=%d hits=%d", entries, hits)
		}
		if cids := pl.Warehouse().CIDsFor(aid); len(cids) != 2 {
			t.Errorf("CIDs for %s = %v, want both runtimes", aid, cids)
		}
	})
	e.Run()
}

func mustDeviceIn(t *testing.T, e *sim.Engine, name string) *device.Device {
	t.Helper()
	d, err := device.New(e, name, netsim.LANWiFi())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestVMCloudRetransfersCodePerRuntime(t *testing.T) {
	e, pl := newPlatform(KindVM)
	app, _ := workload.ByName(workload.NameChess)
	aid := offload.AID(app.Name(), app.CodeSize())
	e.Spawn("t", func(p *sim.Proc) {
		d := mustDeviceIn(t, e, "phone-1")
		task := d.NewTask(app)
		req := offload.ExecRequest{DeviceID: "phone-1", AID: aid, App: task.App, Method: task.Method,
			Params: task.Params, ParamBytes: task.ParamBytes}
		s1, err := pl.Prepare(p, req)
		if err != nil {
			t.Fatal(err)
		}
		if !s1.NeedCode() {
			t.Fatal("first VM should need code")
		}
		s1.PushCode(p, offload.CodePush{AID: aid, App: app.Name(), Size: app.CodeSize()})
		s1.Execute(p)
		s2, err := pl.Prepare(p, req) // second VM while the first is held
		if err != nil {
			t.Fatal(err)
		}
		if !s2.NeedCode() {
			t.Error("VM cloud has no warehouse: second VM must ask for code again")
		}
		s1.Release()
		s2.Release()
	})
	e.Run()
}

func TestDispatcherAffinityRoutesToLoadedRuntime(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	chess, _ := workload.ByName(workload.NameChess)
	linpack, _ := workload.ByName(workload.NameLinpack)
	e.Spawn("t", func(p *sim.Proc) {
		d := mustDeviceIn(t, e, "phone-1")
		// Boot two runtimes: chess code on #1, linpack on #2.
		run := func(app workload.App, hold offload.Session) offload.Session {
			task := d.NewTask(app)
			req := offload.ExecRequest{AID: offload.AID(app.Name(), app.CodeSize()),
				App: task.App, Method: task.Method, Params: task.Params, ParamBytes: task.ParamBytes}
			s, err := pl.Prepare(p, req)
			if err != nil {
				t.Fatal(err)
			}
			if s.NeedCode() {
				s.PushCode(p, offload.CodePush{AID: req.AID, App: app.Name(), Size: app.CodeSize()})
			}
			if _, err := s.Execute(p); err != nil {
				t.Fatal(err)
			}
			return s
		}
		s1 := run(chess, nil)
		s2 := run(linpack, nil) // while s1 held -> second runtime
		s1.Release()
		s2.Release()
		// Both idle now; a chess request must go to runtime #1.
		before := map[string]int{}
		for _, r := range pl.DB().List() {
			before[r.CID] = r.Executed
		}
		s3 := run(chess, nil)
		s3.Release()
		for _, r := range pl.DB().List() {
			if r.Executed != before[r.CID] {
				if !strings.HasSuffix(r.CID, "-1") {
					t.Errorf("chess landed on %s, want the runtime that loaded it", r.CID)
				}
			}
		}
	})
	e.Run()
}

func TestPoolCapAndFIFOQueue(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.MaxRuntimes = 1
	pl := New(e, cfg)
	app, _ := workload.ByName(workload.NameLinpack)
	done := make([]sim.Time, 0, 3)
	for i := 0; i < 3; i++ {
		d := mustDeviceIn(t, e, "phone-"+string(rune('a'+i)))
		e.Spawn("req", func(p *sim.Proc) {
			task := d.NewTask(app)
			if _, _, err := d.Offload(p, task, app.CodeSize(), pl); err != nil {
				t.Errorf("offload: %v", err)
			}
			done = append(done, e.Now())
		})
	}
	e.Run()
	if pl.RuntimeCount() != 1 {
		t.Fatalf("pool = %d, want 1", pl.RuntimeCount())
	}
	if len(done) != 3 {
		t.Fatalf("completed = %d", len(done))
	}
	for i := 1; i < len(done); i++ {
		if done[i] <= done[i-1] {
			t.Fatalf("queued requests completed out of order: %v", done)
		}
	}
	if pl.QueueLength() != 0 {
		t.Fatalf("queue not drained: %d", pl.QueueLength())
	}
}

func TestAccessControllerViolationsBlockApp(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	app, _ := workload.ByName(workload.NameOCR)
	e.Spawn("t", func(p *sim.Proc) {
		// Seed a hostile permission table: analysis concluded this app may
		// execute nothing.
		pl.Access().Analyze(p, pl.Server, app.Name(), nil)
		d := mustDeviceIn(t, e, "phone-1")
		var lastErr string
		for i := 0; i < 4; i++ {
			task := d.NewTask(app)
			req := offload.ExecRequest{AID: offload.AID(app.Name(), app.CodeSize()),
				App: task.App, Method: task.Method, Params: task.Params,
				ParamBytes: task.ParamBytes, FileBytes: task.FileBytes}
			s, err := pl.Prepare(p, req)
			if err != nil {
				if !errors.Is(err, ErrAppBlocked) {
					t.Fatalf("prepare error = %v, want ErrAppBlocked", err)
				}
				if i < 2 {
					t.Fatalf("blocked after only %d requests (threshold 3)", i)
				}
				return // blocked as designed
			}
			if s.NeedCode() {
				s.PushCode(p, offload.CodePush{AID: req.AID, App: app.Name(), Size: app.CodeSize()})
			}
			res, err := s.Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			lastErr = res.Err
			s.Release()
		}
		t.Fatalf("app never blocked; last result error: %s", lastErr)
	})
	e.Run()
}

func TestStopAllUnloadsACD(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	d := mustDevice(t, e, "phone-1")
	app, _ := workload.ByName(workload.NameChess)
	offloadOnce(t, e, pl, d, app)
	if !pl.Kernel.Loaded(acd.ModBinder) {
		t.Fatal("ACD not loaded while container runs")
	}
	e.Spawn("stop", func(p *sim.Proc) {
		if err := pl.StopAll(p); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if pl.RuntimeCount() != 0 {
		t.Fatalf("runtimes remain: %d", pl.RuntimeCount())
	}
	if pl.Kernel.Loaded(acd.ModBinder) {
		t.Fatal("ACD still loaded after last container stopped")
	}
	if pl.Server.MemUsedMB() != 0 {
		t.Fatalf("server memory leaked: %d MB", pl.Server.MemUsedMB())
	}
}

func TestRattrapRuntimesShareOffloadIO(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	e.Spawn("t", func(p *sim.Proc) {
		i1, err := pl.BootRuntime(p)
		if err != nil {
			t.Fatal(err)
		}
		i2, err := pl.BootRuntime(p)
		if err != nil {
			t.Fatal(err)
		}
		_ = i1
		_ = i2
	})
	e.Run()
	pl.slots.each(func(sl *slot) {
		if sl.rt.OffloadFS() != pl.OffloadIO() {
			t.Fatal("runtime not wired to the shared offloading I/O layer")
		}
	})
}

func TestSecondOptimizedBootIsWarm(t *testing.T) {
	e, pl := newPlatform(KindRattrap)
	var b1, b2 time.Duration
	e.Spawn("t", func(p *sim.Proc) {
		i1, _ := pl.BootRuntime(p)
		i2, _ := pl.BootRuntime(p)
		b1, b2 = i1.BootTime, i2.BootTime
	})
	e.Run()
	// Both boots read /system from the pre-warmed shared layer: both fast
	// and nearly identical.
	if b1 > 2200*time.Millisecond || b2 > 2200*time.Millisecond {
		t.Fatalf("boots %v / %v exceed the optimized band", b1, b2)
	}
	diff := float64(b1-b2) / float64(b1)
	if diff < -0.2 || diff > 0.2 {
		t.Fatalf("warm boots differ too much: %v vs %v", b1, b2)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() []time.Duration {
		e := sim.NewEngine(99)
		pl := New(e, DefaultConfig(KindRattrap))
		d, _ := device.New(e, "phone-1", netsim.LANWiFi())
		var out []time.Duration
		for _, app := range workload.Apps() {
			app := app
			e.Spawn("req", func(p *sim.Proc) {
				task := d.NewTask(app)
				ph, _, err := d.Offload(p, task, app.CodeSize(), pl)
				if err == nil {
					out = append(out, ph.Response())
				}
			})
			e.Run()
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic response at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindVM.String() != "VM" || KindRattrapWO.String() != "Rattrap(W/O)" || KindRattrap.String() != "Rattrap" {
		t.Fatal("Kind.String mismatch")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds() should list all three platforms")
	}
}

func TestIdleReclamation(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.IdleTimeout = 5 * time.Second
	pl := New(e, cfg)
	d := mustDevice(t, e, "phone-1")
	app, _ := workload.ByName(workload.NameChess)
	var prep1, prep2, prep3 time.Duration
	e.Spawn("flow", func(p *sim.Proc) {
		task := d.NewTask(app)
		ph, _, err := d.Offload(p, task, app.CodeSize(), pl)
		if err != nil {
			t.Error(err)
			return
		}
		prep1 = ph.RuntimePreparation
		// Second request within the idle window: the runtime is warm.
		p.Sleep(2 * time.Second)
		ph, _, err = d.Offload(p, d.NewTask(app), app.CodeSize(), pl)
		if err != nil {
			t.Error(err)
			return
		}
		prep2 = ph.RuntimePreparation
		// Wait far past the idle timeout: the runtime must be reclaimed
		// and the third request boots a fresh container.
		p.Sleep(30 * time.Second)
		if pl.RuntimeCount() != 0 {
			t.Errorf("runtimes = %d after idle timeout, want 0", pl.RuntimeCount())
		}
		if pl.Kernel.Loaded(acd.ModBinder) {
			t.Error("ACD still loaded after reclaim")
		}
		ph, _, err = d.Offload(p, d.NewTask(app), app.CodeSize(), pl)
		if err != nil {
			t.Error(err)
			return
		}
		prep3 = ph.RuntimePreparation
	})
	e.Run()
	if prep1 < time.Second {
		t.Errorf("first prep = %v, want a cold boot", prep1)
	}
	if prep2 > 200*time.Millisecond {
		t.Errorf("second prep = %v, want warm", prep2)
	}
	if prep3 < time.Second {
		t.Errorf("third prep = %v, want cold again after reclamation", prep3)
	}
	// The code survives in the warehouse across reclamation: no third
	// transfer happened (check warehouse, not the runtime).
	if entries, _, _ := pl.Warehouse().Stats(); entries != 1 {
		t.Errorf("warehouse entries = %d", entries)
	}
}

func TestIdleReclamationSparesBusyRuntimes(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(KindRattrap)
	cfg.IdleTimeout = 3 * time.Second
	pl := New(e, cfg)
	d := mustDevice(t, e, "phone-1")
	app, _ := workload.ByName(workload.NameLinpack)
	e.Spawn("flow", func(p *sim.Proc) {
		// Keep the runtime active with requests spaced inside the window:
		// it must never be reclaimed between them.
		for i := 0; i < 4; i++ {
			if _, _, err := d.Offload(p, d.NewTask(app), app.CodeSize(), pl); err != nil {
				t.Error(err)
				return
			}
			if pl.RuntimeCount() != 1 {
				t.Errorf("request %d: runtimes = %d, want the same warm one", i, pl.RuntimeCount())
			}
			p.Sleep(2 * time.Second)
		}
	})
	e.Run()
}
