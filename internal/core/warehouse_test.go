package core

import (
	"testing"

	"rattrap/internal/host"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
)

func newTestWarehouse(t *testing.T, e *sim.Engine, capacity host.Bytes) *Warehouse {
	t.Helper()
	h := host.New(e, host.CloudServer())
	m, err := unionfs.NewMount(h, "wh-test", unionfs.NewTmpfs("wh-io"))
	if err != nil {
		t.Fatal(err)
	}
	return NewWarehouse(e, m, capacity)
}

// PutChunked must reject degenerate offers up front — an empty manifest
// used to panic on hashes[0], and a missing hash outside the offer used
// to abort mid-staging, leaking refcount-less blocks into the store.
// Every rejection must leave the store untouched.
func TestPutChunkedRejectsDegenerateOffers(t *testing.T) {
	e := sim.NewEngine(1)
	w := newTestWarehouse(t, e, 0)
	e.Spawn("test", func(p *sim.Proc) {
		if err := w.PutChunked(p, "aid-empty", "App", 0, nil, nil); err == nil {
			t.Error("empty manifest accepted")
		}
		size := 3 * offload.ChunkSize
		hashes := offload.SyntheticManifest("App", size)
		if err := w.PutChunked(p, "aid-short", "App", size, hashes[:1], nil); err == nil {
			t.Error("truncated manifest accepted")
		}
		if err := w.PutChunked(p, "aid-alien", "App", size, hashes, []uint64{0xabad1dea}); err == nil {
			t.Error("missing hash outside the offer accepted")
		}
		if n := w.ChunkCount(); n != 0 {
			t.Errorf("rejected pushes staged %d chunks", n)
		}
		if b := w.StoredBytes(); b != 0 {
			t.Errorf("rejected pushes stored %d bytes", b)
		}
		for _, aid := range []string{"aid-empty", "aid-short", "aid-alien"} {
			if _, ok := w.Lookup(aid); ok {
				t.Errorf("rejected push created entry %s", aid)
			}
		}
	})
	e.Run()
}

// A hash already in the store naming a block of a different size is a
// collision: re-referencing it would silently alias two distinct chunks,
// so PutChunked must refuse before mutating anything.
func TestPutChunkedDetectsSizeCollisions(t *testing.T) {
	e := sim.NewEngine(2)
	w := newTestWarehouse(t, e, 0)
	e.Spawn("test", func(p *sim.Proc) {
		size1 := 2*offload.ChunkSize + 17 // short final chunk
		hashes := offload.SyntheticManifest("App", size1)
		if err := w.PutChunked(p, "aid-1", "App", size1, hashes, w.MissingChunks(hashes)); err != nil {
			t.Errorf("first push: %v", err)
			return
		}
		staged := w.ChunkCount()
		// The same hash list offered for a chunk-aligned blob claims the
		// final hash at ChunkSize where the store holds 17 bytes.
		size2 := 3 * offload.ChunkSize
		if err := w.PutChunked(p, "aid-2", "App", size2, hashes, nil); err == nil {
			t.Error("size-conflicting chunk accepted")
		}
		if w.ChunkCount() != staged {
			t.Errorf("rejected push changed the store: %d -> %d chunks", staged, w.ChunkCount())
		}
		if _, ok := w.Lookup("aid-2"); ok {
			t.Error("rejected push created an entry")
		}
	})
	e.Run()
}
