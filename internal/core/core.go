// Package core implements Rattrap, the lightweight container-based cloud
// platform for mobile computation offloading (§IV), plus the two baseline
// platforms the paper compares against. A Platform owns the cloud server,
// its kernel, and a pool of code runtime environments, and serves devices
// through the offload.Gateway interface:
//
//   - KindVM: the traditional cloud — Android-x86 VMs under a hypervisor;
//   - KindRattrapWO: Rattrap without optimizations — plain Cloud Android
//     Containers, full Android, exclusive offloading I/O, no code cache;
//   - KindRattrap: the full design — customized OS, Shared Resource Layer
//     (shared /system + shared in-memory offloading I/O), App Warehouse
//     code cache, warehouse-aware dispatching, request-based access
//     control.
//
// The Dispatcher allocates runtimes with warehouse affinity (requests from
// an app go where its code is already loaded), boots new runtimes on
// demand up to MaxRuntimes, and queues requests FIFO beyond that. The
// Monitor & Scheduler's view lives in the Container DB.
package core

import (
	"errors"
	"fmt"
	"time"

	"rattrap/internal/acd"
	"rattrap/internal/android"
	"rattrap/internal/container"
	"rattrap/internal/host"
	"rattrap/internal/image"
	"rattrap/internal/kernel"
	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
	"rattrap/internal/unionfs"
	"rattrap/internal/vm"
	"rattrap/internal/workload"
)

// Kind selects the platform flavor.
type Kind int

// The three evaluated platforms.
const (
	KindVM Kind = iota
	KindRattrapWO
	KindRattrap
)

func (k Kind) String() string {
	switch k {
	case KindVM:
		return "VM"
	case KindRattrapWO:
		return "Rattrap(W/O)"
	case KindRattrap:
		return "Rattrap"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns the three platforms in the paper's comparison order.
func Kinds() []Kind { return []Kind{KindRattrap, KindRattrapWO, KindVM} }

// Config shapes a platform.
type Config struct {
	Kind Kind
	// MaxRuntimes caps the runtime pool (5 in the paper's experiments).
	MaxRuntimes int
	// ViolationThreshold is the access controller's blocking threshold.
	ViolationThreshold int
	// KernelRelease is the host kernel version (ACD targets it).
	KernelRelease string
	// IdleTimeout, when positive, makes the Monitor & Scheduler reclaim
	// runtimes idle for that long (freeing their memory and, for
	// containers, unloading idle ACD modules). Pre-starting/keeping VMs
	// "inevitably reduces server resource utilization" (§III-B);
	// reclamation is what makes Rattrap's 2 s boot a just-in-time story.
	IdleTimeout time.Duration
	// MaxQueueDepth, when positive, bounds the Dispatcher's FIFO wait
	// ring: once that many requests queue for a runtime, further requests
	// are rejected with offload.OverloadedError (carrying a retry-after
	// hint) instead of queueing unboundedly. 0 keeps the historical
	// unbounded behaviour.
	MaxQueueDepth int
	// Scheduler selects the Dispatcher's slot-selection policy. The zero
	// value is SchedAffinity, the paper's warehouse-aware dispatch, for
	// every platform kind.
	Scheduler SchedulerPolicy
	// MinRuntimes floors the pool when the autoscaler runs: the control
	// loop pre-warms and maintains this many runtimes, and shrinking
	// stops there. 0 allows scale-to-zero. Ignored without Autoscale.
	MinRuntimes int
	// Autoscale configures the elastic pool control loop (autoscaler.go).
	// Disabled (the zero value), pool sizing keeps the paper's static
	// boot-up-to-MaxRuntimes semantics.
	Autoscale AutoscaleConfig
	// CIDPrefix, when set, prefixes every runtime CID this platform mints
	// (cluster shards use "sN-" so runtime IDs stay unique cluster-wide).
	CIDPrefix string
	// TemplateBoot enables zygote-style template cloning (KindRattrap
	// only): the first full boot is snapshotted at its post-driver-load,
	// post-zygote point — a frozen union upper layer plus the booted
	// process image — and every later boot COW-clones that template
	// instead of re-running the Figure 6 sequence. Off (the default),
	// every boot takes the cold path and existing goldens are untouched.
	TemplateBoot bool
	// ChunkedPush enables the content-addressed delta code push: devices
	// offer their blob's chunk-hash manifest and transfer only the chunks
	// the warehouse is missing. Off, every first push moves the full blob.
	ChunkedPush bool
	// WarehouseCapacity bounds the warehouse's staged code volume; once
	// StoredBytes exceeds it, least-recently-bound entries are evicted.
	// 0 (the default) keeps the historical unbounded behaviour.
	WarehouseCapacity host.Bytes
}

// DefaultConfig mirrors the paper's experimental setup. The baselines
// dispatch FIFO: without an App Warehouse there is no cache-hit story, so
// warehouse-aware dispatch buys them nothing (each runtime still remembers
// codes its own ClassLoader loaded, but the paper's baselines do not
// route on that).
func DefaultConfig(kind Kind) Config {
	cfg := Config{Kind: kind, MaxRuntimes: 5, ViolationThreshold: 3, KernelRelease: "3.18.0"}
	if kind != KindRattrap {
		cfg.Scheduler = SchedFIFO
	}
	return cfg
}

// Memory limits from Table I.
const (
	memLimitWO  = 128 // CAC (non-optimized)
	memLimitOpt = 96  // CAC
)

// dispatcherConnect is the runtime→Dispatcher registration handshake after
// boot; Table I's setup time includes it.
const dispatcherConnect = 80 * time.Millisecond

// ErrBlocked wraps access-controller rejections surfaced through Prepare.
var ErrBlocked = errors.New("core: request rejected")

// Platform is one cloud platform instance.
type Platform struct {
	E      *sim.Engine
	Server *host.Host
	Kernel *kernel.Kernel

	cfg Config
	reg *workload.Registry

	db        *ContainerDB
	access    *AccessController
	warehouse *Warehouse // Rattrap only

	fullManifest image.Manifest // VM disk
	contManifest image.Manifest // container rootfs, full Android
	custManifest image.Manifest // customized OS

	sharedLayer *unionfs.Layer // Rattrap: Shared Resource Layer (/system)
	offloadIO   *unionfs.Mount // Rattrap: shared in-memory offloading I/O

	// Template-boot state (cfg.TemplateBoot): the first full boot leaves
	// behind a frozen upper-layer snapshot, the source mount to clone the
	// union recipe from, and the captured process image. All nil until
	// that first boot completes.
	tmplLayer *unionfs.Layer
	tmplSrc   *container.Container
	tmpl      *android.Template

	// bootSamples records completed boot durations in boot order, bounded
	// to the most recent maxBootSamples so platforms that churn runtimes
	// for days don't accumulate memory; scenario boot-latency assertions
	// aggregate it across shards. bootNext is the ring's overwrite cursor
	// once the window is full.
	bootSamples []time.Duration
	bootNext    int

	// Dispatcher state (see dispatch.go): the pool in boot order, a CID
	// index, the slot-selection policy, and the FIFO wait queue.
	slots  slotList
	byID   map[string]*slot
	sched  Scheduler
	waitQ  waiterRing
	nextID int

	// holdEWMA tracks how long slots stay claimed (acquire → release); it
	// feeds the overload rejection's retry-after hint.
	holdEWMA time.Duration

	// bootFault, when set, is consulted at the start of every runtime
	// boot (fault injection; see internal/faults).
	bootFault func(p *sim.Proc, id string) error
	// teardownFault, when set, is consulted before a runtime's guest
	// teardown in StopRuntime (fault injection).
	teardownFault func(p *sim.Proc, id string) error
	// execFault, when set, is consulted before every workload execution
	// (fault injection); a non-nil return fails the execution.
	execFault func(p *sim.Proc, id, aid string) error

	// scaler is the elastic pool control loop, nil unless
	// cfg.Autoscale.Enabled (see autoscaler.go).
	scaler *autoscaler
	// ft tracks per-runtime consecutive failures and drives cordoning
	// (see failuretracker.go). Always non-nil; with CordonThreshold 0 it
	// only keeps aggregate totals.
	ft *failureTracker
	// cordonedLive counts cordoned slots still on the slot list — they
	// are census-visible but unschedulable, and the autoscaler must not
	// count them as capacity.
	cordonedLive int

	// om holds the pre-resolved observability instruments (see obs.go);
	// nil means observability is off and every record site is one nil
	// check.
	om *platformMetrics
}

// slot is the Dispatcher's handle on one runtime. Its lifecycle position
// lives in info.State, owned by the ContainerDB; the slot carries only
// scheduling bookkeeping.
type slot struct {
	id    string
	seq   int // boot order; dispatch ties break toward the oldest runtime
	env   android.Env
	rt    *android.Runtime
	ctr   *container.Container
	vmach *vm.VM
	info  *RuntimeInfo

	acquiredAt sim.Time // when the current claim started (hold-time EWMA)

	prev, next  *slot           // pl.slots linkage
	removed     bool            // unlinked from the pool; index entries are stale
	cordoned    bool            // unschedulable; drains once idle (failuretracker.go)
	viaTemplate bool            // booted by cloning the runtime template
	inIdle      bool            // has a live entry in the scheduler's idle heap
	inAff       map[string]bool // AIDs with a live entry in the affinity index
}

type waiter struct {
	sig *sim.Signal
	sl  *slot
	// aborted is set by the request's abort signal firing while queued;
	// an aborted waiter is skipped by popLiveWaiter, and if a release won
	// the race and handed it a slot anyway, the waiter re-releases it.
	aborted bool
	// taken marks the handoff complete: the waiter's proc resumed and
	// accepted the slot, so a late abort no longer concerns the queue.
	taken bool
}

// New assembles a platform on a fresh cloud server.
func New(e *sim.Engine, cfg Config) *Platform {
	if cfg.MaxRuntimes <= 0 {
		cfg.MaxRuntimes = 1
	}
	if cfg.MinRuntimes < 0 {
		cfg.MinRuntimes = 0
	}
	if cfg.MinRuntimes > cfg.MaxRuntimes {
		cfg.MinRuntimes = cfg.MaxRuntimes
	}
	if cfg.KernelRelease == "" {
		cfg.KernelRelease = "3.18.0"
	}
	srv := host.New(e, host.CloudServer())
	pl := &Platform{
		E:            e,
		Server:       srv,
		Kernel:       kernel.New(e, srv, cfg.KernelRelease),
		cfg:          cfg,
		reg:          workload.NewRegistry(),
		db:           NewContainerDB(),
		access:       NewAccessController(cfg.ViolationThreshold),
		fullManifest: image.AndroidX86(),
		byID:         make(map[string]*slot),
		sched:        newScheduler(cfg.Scheduler),
	}
	// The failure tracker always runs (aggregate totals are cheap);
	// cordoning needs an explicit threshold, or the autoscaler's default.
	threshold := cfg.Autoscale.CordonThreshold
	if threshold <= 0 && cfg.Autoscale.Enabled {
		threshold = cfg.Autoscale.withDefaults().CordonThreshold
	}
	pl.ft = newFailureTracker(threshold)
	if cfg.Autoscale.Enabled {
		pl.scaler = newAutoscaler(pl, cfg.Autoscale)
		if cfg.MinRuntimes > 0 {
			pl.kickScaler() // pre-warm the floor
		}
	}
	pl.contManifest = pl.fullManifest.ForContainer()
	pl.custManifest = pl.fullManifest.Customized()
	if cfg.Kind == KindRattrap {
		// Shared Resource Layer: the customized /system, stored once and
		// mounted read-only under every container. Building it just wrote
		// these files, so they start page-cached.
		pl.sharedLayer = pl.custManifest.BuildLayer("shared-android", true)
		pl.sharedLayer.WarmCacheOn(srv)
		// Sharing Offloading I/O: one tmpfs layer for all containers.
		tmp := unionfs.NewTmpfs("offload-io")
		m, err := unionfs.NewMount(srv, "offload-io", tmp)
		if err != nil {
			panic(err) // static construction; cannot fail
		}
		pl.offloadIO = m
		pl.warehouse = NewWarehouse(e, m, cfg.WarehouseCapacity)
	}
	return pl
}

// Config returns the platform configuration.
func (pl *Platform) Config() Config { return pl.cfg }

// DB exposes the Container DB (Monitor's view).
func (pl *Platform) DB() *ContainerDB { return pl.db }

// Warehouse returns the App Warehouse (nil for baselines).
func (pl *Platform) Warehouse() *Warehouse { return pl.warehouse }

// Access returns the access controller.
func (pl *Platform) Access() *AccessController { return pl.access }

// SharedLayer returns the Shared Resource Layer (nil for baselines).
func (pl *Platform) SharedLayer() *unionfs.Layer { return pl.sharedLayer }

// OffloadIO returns the shared in-memory offloading mount (nil for
// baselines).
func (pl *Platform) OffloadIO() *unionfs.Mount { return pl.offloadIO }

// Registry returns the platform's workload registry (its "reflection"
// dispatch table).
func (pl *Platform) Registry() *workload.Registry { return pl.reg }

// SetBootFault installs a hook consulted at the start of every runtime
// boot; a non-nil return fails the boot (nil removes the hook). Typically
// wired to a faults.Injector via its BootHook adapter.
func (pl *Platform) SetBootFault(fn func(p *sim.Proc, id string) error) { pl.bootFault = fn }

// SetTeardownFault installs a hook consulted before a runtime's guest
// teardown in StopRuntime; a non-nil return fails the teardown (the slot
// is still reclaimed — teardown is best-effort). Typically wired to a
// faults.Injector via its TeardownHook adapter.
func (pl *Platform) SetTeardownFault(fn func(p *sim.Proc, id string) error) {
	pl.teardownFault = fn
}

// SetExecFault installs a hook consulted before every workload
// execution; a non-nil return fails that execution (and counts against
// the runtime's failure strikes). Typically wired to a faults.Injector
// via its ExecHook adapter.
func (pl *Platform) SetExecFault(fn func(p *sim.Proc, id, aid string) error) {
	pl.execFault = fn
}

// BootRuntime boots one runtime outside the request path (pool pre-warm
// and Table I measurements). The fresh runtime goes straight to the idle
// pool; the returned record is a copy (the live one belongs to the DB).
func (pl *Platform) BootRuntime(p *sim.Proc) (*RuntimeInfo, error) {
	sl, err := pl.bootSlot(p)
	if err != nil {
		return nil, err
	}
	pl.db.Transition(sl.id, LifecycleIdle)
	pl.sched.Offer(sl)
	return sl.info.clone(), nil
}

// bootSlot creates, boots, and registers a new runtime; the slot is
// returned LifecycleActive (reserved for the caller). The DB record is
// created provisionally before provisioning starts — cold, then booting —
// so the lifecycle census covers in-flight boots; a failed boot walks
// booting → reclaimed and leaves the DB.
func (pl *Platform) bootSlot(p *sim.Proc) (*slot, error) {
	pl.nextID++
	id := fmt.Sprintf("%s%s-%d", pl.cfg.CIDPrefix, kindSlug(pl.cfg.Kind), pl.nextID)
	sl := &slot{id: id, seq: pl.nextID, inAff: make(map[string]bool), acquiredAt: pl.E.Now()}
	sl.info = &RuntimeInfo{CID: id, Kind: pl.cfg.Kind} // born LifecycleCold
	pl.slots.pushBack(sl)
	pl.byID[id] = sl
	pl.db.Put(sl.info)
	pl.db.Transition(id, LifecycleBooting)
	start := pl.E.Now()

	fail := func(err error) (*slot, error) {
		pl.db.Transition(id, LifecycleReclaimed)
		pl.removeSlot(sl)
		if pl.om != nil {
			pl.om.bootFails.Inc()
		}
		pl.noteFailure(id, FailBoot)
		return nil, fmt.Errorf("core: booting %s: %w", id, err)
	}

	if pl.bootFault != nil {
		if err := pl.bootFault(p, id); err != nil {
			return fail(err)
		}
	}

	switch pl.cfg.Kind {
	case KindVM:
		v, err := vm.Create(p, pl.Server, pl.E, vm.DefaultConfig(id), pl.fullManifest)
		if err != nil {
			return fail(err)
		}
		rt, err := android.Boot(p, v, v.BootConfig(pl.fullManifest))
		if err != nil {
			v.Destroy(p)
			return fail(err)
		}
		sl.env, sl.rt, sl.vmach = v, rt, v

	case KindRattrapWO, KindRattrap:
		// Extend the host kernel on demand — no rebuild, no reboot.
		if err := acd.LoadAll(p, pl.Kernel, pl.E); err != nil {
			return fail(err)
		}
		var (
			c   *container.Container
			err error
			bc  android.BootConfig
		)
		switch {
		case pl.cfg.Kind == KindRattrapWO:
			// Private full-Android rootfs, provisioned by copying the base
			// image. The fresh copy's pages are page-cache resident, so —
			// exactly like the measured 6.80 s — startup is CPU-bound; the
			// 1.02 GB of disk is still charged per container.
			rootfs := pl.contManifest.BuildLayer("rootfs:"+id, true)
			rootfs.WarmCacheOn(pl.Server)
			c, err = container.Create(p, pl.Server, pl.Kernel,
				container.DefaultConfig(id, memLimitWO),
				unionfs.NewLayer(id+"-delta", false), rootfs)
			bc = android.BootConfig{Manifest: pl.contManifest}
		case pl.cfg.TemplateBoot && pl.tmpl != nil:
			// Template fast path: COW-clone the captured boot instead of
			// re-running it. The clone's union mount stacks a fresh empty
			// delta over the frozen template upper, so its disk charge is
			// only what it writes from here on.
			c, err = container.Clone(p, pl.tmplSrc,
				container.DefaultConfig(id, memLimitOpt),
				unionfs.NewLayer(id+"-delta", false), pl.tmplLayer)
			sl.viaTemplate = true
		default:
			c, err = container.Create(p, pl.Server, pl.Kernel,
				container.DefaultConfig(id, memLimitOpt),
				unionfs.NewLayer(id+"-delta", false), pl.sharedLayer)
			bc = android.BootConfig{Manifest: pl.custManifest, Customized: true}
		}
		if err != nil {
			return fail(err)
		}
		var rt *android.Runtime
		if sl.viaTemplate {
			rt, err = android.CloneBoot(p, c, pl.tmpl)
		} else {
			rt, err = android.Boot(p, c, bc)
		}
		if err != nil {
			c.Stop(p)
			return fail(err)
		}
		if pl.cfg.Kind == KindRattrap {
			rt.SetOffloadFS(pl.offloadIO)
			if pl.cfg.TemplateBoot && pl.tmpl == nil {
				// First full boot under template mode: freeze it. The
				// snapshot deep-copies the upper layer's metadata (sharing
				// only file payloads), so later writes by this runtime never
				// leak into its clones.
				pl.tmplLayer = c.FS().Upper().Snapshot(id + "-template")
				pl.tmplSrc = c
				pl.tmpl = rt.CaptureTemplate()
			}
		}
		sl.env, sl.rt, sl.ctr = c, rt, c
	default:
		return fail(fmt.Errorf("unknown platform kind %v", pl.cfg.Kind))
	}

	// Register with the Dispatcher.
	p.Sleep(dispatcherConnect)

	sl.info.BootedAt = pl.E.Now()
	sl.info.BootTime = (pl.E.Now() - start).Duration()
	sl.info.MemMB = pl.slotMemMB(sl)
	sl.info.DiskBytes = pl.slotDiskBytes(sl)
	sl.info.Processes = len(sl.rt.Processes())
	sl.info.LastUsed = pl.E.Now()
	pl.db.Transition(sl.id, LifecycleActive) // reserved for the caller
	if len(pl.bootSamples) < maxBootSamples {
		pl.bootSamples = append(pl.bootSamples, sl.info.BootTime)
	} else {
		pl.bootSamples[pl.bootNext] = sl.info.BootTime
		pl.bootNext = (pl.bootNext + 1) % maxBootSamples
	}
	if pl.om != nil {
		pl.om.boots.Inc()
		pl.om.bootTime.Observe(sl.info.BootTime)
		if sl.viaTemplate {
			pl.om.tmplClones.Inc()
			pl.om.tmplClone.Observe(sl.info.BootTime)
		}
		pl.om.poolSize.Set(int64(pl.slots.n))
	}
	return sl, nil
}

// maxBootSamples bounds the boot-duration window BootDurations reports:
// enough for any bench cell or scenario assertion, small enough that a
// platform churning runtimes for days holds steady memory.
const maxBootSamples = 4096

// BootDurations returns a copy of the most recent completed boot
// durations (up to maxBootSamples), in boot order. Scenario boot-latency
// assertions aggregate these across cluster shards.
func (pl *Platform) BootDurations() []time.Duration {
	out := make([]time.Duration, 0, len(pl.bootSamples))
	out = append(out, pl.bootSamples[pl.bootNext:]...)
	out = append(out, pl.bootSamples[:pl.bootNext]...)
	return out
}

func kindSlug(k Kind) string {
	switch k {
	case KindVM:
		return "vm"
	case KindRattrapWO:
		return "cac-wo"
	default:
		return "cac"
	}
}

func (pl *Platform) slotMemMB(sl *slot) int {
	if sl.vmach != nil {
		return sl.vmach.MemReservedMB()
	}
	return sl.rt.MemMB()
}

func (pl *Platform) slotDiskBytes(sl *slot) host.Bytes {
	switch {
	case sl.vmach != nil:
		return sl.vmach.DiskUsageBytes()
	case pl.cfg.Kind == KindRattrapWO:
		// Private rootfs copy plus the writable delta.
		var rootfs host.Bytes
		for _, l := range sl.ctr.FS().Layers()[1:] {
			rootfs += l.Size()
		}
		return rootfs + sl.ctr.DiskUsageBytes()
	default:
		// Optimized CAC: only the private delta; the Shared Resource
		// Layer is charged once, platform-wide.
		return sl.ctr.DiskUsageBytes()
	}
}

func (pl *Platform) removeSlot(sl *slot) {
	if sl.removed {
		return
	}
	sl.removed = true
	pl.slots.remove(sl)
	delete(pl.byID, sl.id)
	pl.db.Remove(sl.id)
	pl.ft.clear(sl.id)
	if sl.cordoned {
		pl.cordonedLive--
	}
	if pl.om != nil {
		pl.om.poolSize.Set(int64(pl.slots.n))
	}
	if pl.scaler != nil && pl.schedulable() < pl.cfg.MinRuntimes {
		pl.kickScaler() // the pool fell through its floor; re-warm
	}
}

// Prepare implements offload.Gateway: access-control analysis, then
// Dispatcher allocation (booting a runtime if needed — the runtime-
// preparation phase the device observes).
func (pl *Platform) Prepare(p *sim.Proc, req offload.ExecRequest) (offload.Session, error) {
	tbl := pl.access.Analyze(p, pl.Server, req.App, grantedFor(req.App, req.FileBytes))
	if tbl.Blocked {
		return nil, fmt.Errorf("%w: %s: %w", ErrBlocked, req.App, ErrAppBlocked)
	}
	sl, err := pl.acquireSlot(p, req.AID, req.Span(), req.Abort())
	if err != nil {
		return nil, err
	}
	s := &session{pl: pl, sl: sl, req: req}
	s.needCode = !sl.rt.CodeLoaded(req.AID)
	if s.needCode && pl.warehouse != nil {
		switch {
		case pl.warehouse.Has(req.AID):
			s.needCode = false // warehouse hit: load locally, no transfer
			if pl.om != nil {
				pl.om.whHits.Inc()
			}
		default:
			if sig, inflight := pl.warehouse.Inflight(req.AID); inflight {
				// Another device is pushing this code right now; wait for
				// it instead of transferring a duplicate.
				s.needCode = false
				s.waitPush = sig
				if pl.om != nil {
					pl.om.whCoalesced.Inc()
				}
			} else {
				pl.warehouse.Claim(pl.E, req.AID) // this session pushes
				s.claimed = true
				if pl.om != nil {
					pl.om.whMisses.Inc()
				}
			}
		}
	}
	return s, nil
}

// session binds one request to a prepared runtime.
type session struct {
	pl       *Platform
	sl       *slot
	req      offload.ExecRequest
	needCode bool
	released bool
	pushed   bool
	claimed  bool        // this session owns the in-flight push for its AID
	waitPush *sim.Signal // fires when another session's push lands
}

// NeedCode reports whether the device must transfer the mobile code.
func (s *session) NeedCode() bool { return s.needCode }

// stageStart stamps the virtual clock when any stage instrument is active
// for this session — a span attached to the request or a registry
// installed on the platform. It returns -1 (and stageEnd reports off)
// otherwise, so a request with observability disabled performs no clock
// reads at all.
func (s *session) stageStart(sp *obs.Span) sim.Time {
	if sp == nil && s.pl.om == nil {
		return -1
	}
	return s.pl.E.Now()
}

// stageEnd closes a stageStart measurement.
func (s *session) stageEnd(start sim.Time) (time.Duration, bool) {
	if start < 0 {
		return 0, false
	}
	return (s.pl.E.Now() - start).Duration(), true
}

// PushCode receives the code blob: Rattrap stages it in the App Warehouse
// ("once and for all"), everyone loads it into the runtime's ClassLoader.
func (s *session) PushCode(p *sim.Proc, push offload.CodePush) error {
	if push.AID != s.req.AID {
		return fmt.Errorf("core: code push AID %s does not match request %s", push.AID, s.req.AID)
	}
	sp := s.req.Span()
	stageStart := s.stageStart(sp)
	if s.pl.warehouse != nil {
		if err := s.pl.warehouse.Put(p, push.AID, push.App, push.Size); err != nil {
			return err
		}
		s.pl.warehouse.settle(push.AID)
	}
	if err := s.sl.rt.LoadCode(p, push.AID, push.Size, false); err != nil {
		return err
	}
	if d, on := s.stageEnd(stageStart); on {
		sp.Add(obs.StageCodeStage, d)
		if s.pl.om != nil {
			s.pl.om.codeStage.Observe(d)
		}
	}
	if s.pl.warehouse != nil {
		s.pl.warehouse.BindCID(push.AID, s.sl.id)
		s.pl.noteWarehouse()
	}
	s.sl.info.Traffic.CodeUp += push.Size
	s.pushed = true
	return nil
}

// NegotiateChunks implements offload.ChunkedSession: answer a device's
// chunk-hash offer with the subset the warehouse is missing. A
// Supported=false reply (chunked push disabled, or no warehouse) tells
// the device to fall back to the full PushCode transfer.
func (s *session) NegotiateChunks(p *sim.Proc, offer offload.ChunkOffer) (offload.ChunkNeed, error) {
	need := offload.ChunkNeed{Seq: offer.Seq, AID: offer.AID}
	if offer.AID != s.req.AID {
		return need, fmt.Errorf("core: chunk offer AID %s does not match request %s", offer.AID, s.req.AID)
	}
	if !s.pl.cfg.ChunkedPush || s.pl.warehouse == nil {
		return need, nil
	}
	// A degenerate or malformed offer (zero-size blob, empty or truncated
	// hash list — the wire codec accepts an empty Params) never enters the
	// delta path: answering Supported=false sends the device down the full
	// PushCode fallback instead of letting a crafted frame reach the
	// warehouse's chunk staging.
	if offer.Size <= 0 || len(offer.Hashes) != offload.ChunkCount(offer.Size) {
		return need, nil
	}
	need.Supported = true
	need.Missing = s.pl.warehouse.MissingChunks(offer.Hashes)
	return need, nil
}

// PushChunks completes a negotiated delta push: only the missing chunks
// crossed the network; the warehouse stages them (in parallel) into the
// content-addressed store, and the runtime loads the reassembled blob
// from the warehouse.
func (s *session) PushChunks(p *sim.Proc, offer offload.ChunkOffer, missing []uint64) error {
	if offer.AID != s.req.AID {
		return fmt.Errorf("core: chunk push AID %s does not match request %s", offer.AID, s.req.AID)
	}
	if !s.pl.cfg.ChunkedPush || s.pl.warehouse == nil {
		return fmt.Errorf("core: %s: chunked push not negotiated", offer.AID)
	}
	sp := s.req.Span()
	stageStart := s.stageStart(sp)
	if err := s.pl.warehouse.PutChunked(p, offer.AID, offer.App, offer.Size, offer.Hashes, missing); err != nil {
		return err
	}
	s.pl.warehouse.settle(offer.AID)
	if err := s.sl.rt.LoadCode(p, offer.AID, offer.Size, true); err != nil {
		return err
	}
	if d, on := s.stageEnd(stageStart); on {
		sp.Add(obs.StageChunkStage, d)
		if s.pl.om != nil {
			s.pl.om.chunkStage.Observe(d)
		}
	}
	s.pl.warehouse.BindCID(offer.AID, s.sl.id)
	s.pl.noteWarehouse()
	s.sl.info.Traffic.CodeUp += offload.DeltaBytes(offer, missing)
	s.pushed = true
	return nil
}

// noteWarehouse runs capacity enforcement after a staging event and
// refreshes the warehouse volume instruments.
func (pl *Platform) noteWarehouse() {
	if pl.warehouse == nil {
		return
	}
	dropped := pl.warehouse.EnforceCapacity()
	if pl.om == nil {
		return
	}
	if dropped > 0 {
		pl.om.whEvictions.Add(int64(dropped))
	}
	pl.om.whBytes.Set(int64(pl.warehouse.StoredBytes()))
}

// Execute runs the task, enforcing the permission table on each workflow
// that leaves the container.
func (s *session) Execute(p *sim.Proc) (offload.Result, error) {
	pl, sl, req := s.pl, s.sl, s.req
	sp := req.Span()
	// Warehouse-sourced code load (no device transfer happened).
	for !sl.rt.CodeLoaded(req.AID) {
		if pl.warehouse == nil {
			return offload.Result{}, fmt.Errorf("core: %s: code %s missing and no warehouse", sl.id, req.AID)
		}
		if s.waitPush != nil && !s.waitPush.Fired() {
			p.Wait(s.waitPush) // the in-flight first push, or a re-claim's
		}
		s.waitPush = nil
		if entry, ok := pl.warehouse.Lookup(req.AID); ok {
			loadStart := s.stageStart(sp)
			if err := sl.rt.LoadCode(p, req.AID, entry.Size, true); err != nil {
				return offload.Result{}, err
			}
			if d, on := s.stageEnd(loadStart); on {
				sp.Add(obs.StageWarehouseLoad, d)
				if pl.om != nil {
					pl.om.whLoad.Observe(d)
				}
			}
			pl.warehouse.BindCID(req.AID, sl.id)
			break
		}
		// The claiming device aborted before delivering the code. If some
		// other waiter already re-claimed the push, wait for it; otherwise
		// exactly this session re-claims, and its device must transfer the
		// code after all — surfaced as ErrCodeNeeded so the caller runs
		// the code-push exchange and calls Execute again.
		if sig, inflight := pl.warehouse.Inflight(req.AID); inflight {
			s.waitPush = sig
			continue
		}
		pl.warehouse.Claim(pl.E, req.AID)
		s.claimed = true
		s.needCode = true
		return offload.Result{}, offload.ErrCodeNeeded
	}

	// Request-based access control on the workflows this task performs.
	checks := []Permission{PermExec, PermBinder}
	if req.FileBytes > 0 {
		checks = append(checks, PermFSWrite, PermFSRead)
	}
	for _, op := range checks {
		if err := pl.access.Check(req.App, op); err != nil {
			return offload.Result{Err: err.Error()}, nil
		}
	}

	task := workload.Task{
		App: req.App, Method: req.Method, Seq: req.Seq, Params: req.Params,
		ParamBytes: req.ParamBytes, FileBytes: req.FileBytes,
		RoundTrips: req.RoundTrips, InteractBytes: req.InteractBytes,
	}
	if pre := req.Precomputed(); pre != nil {
		// The realtime server already ran the computation on the request's
		// own goroutine; the runtime charges the modeled work without
		// redoing it under the serialized engine.
		task.SetPrecomputed(pre)
	}
	if pl.execFault != nil {
		if ferr := pl.execFault(p, sl.id, req.AID); ferr != nil {
			pl.noteFailure(sl.id, FailExec)
			return offload.Result{Err: ferr.Error()}, nil
		}
	}
	runStart := s.stageStart(sp)
	res, err := sl.rt.Execute(p, req.AID, task, pl.reg)
	if d, on := s.stageEnd(runStart); on && err == nil {
		sp.Add(obs.StageRun, d)
		if pl.om != nil {
			pl.om.runTime.Observe(d)
			pl.om.executes.Inc()
		}
	}
	if err != nil {
		pl.noteFailure(sl.id, FailExec)
		return offload.Result{Err: err.Error()}, nil
	}
	pl.ft.clear(sl.id) // a success breaks the runtime's failure streak

	sl.info.Executed++
	sl.info.MemMB = pl.slotMemMB(sl)
	sl.info.DiskBytes = pl.slotDiskBytes(sl)
	sl.info.Traffic.FileParamUp += req.ParamBytes + req.FileBytes
	sl.info.Traffic.ControlUp += offload.ControlBytes
	sl.info.Traffic.Down += res.Metrics.ResultBytes + offload.ControlBytes
	return offload.Result{Output: res.Metrics.Output, ResultBytes: res.Metrics.ResultBytes}, nil
}

// Release returns the runtime to the pool (or hands it to a queued
// request).
func (s *session) Release() {
	if s.released {
		return
	}
	s.released = true
	if s.claimed && !s.pushed && s.pl.warehouse != nil {
		// The owning device never delivered the code (error/abort): wake
		// any waiters so they fail fast instead of hanging on the signal.
		s.pl.warehouse.settle(s.req.AID)
	}
	s.pl.releaseSlot(s.sl)
}

// StopRuntime shuts one runtime down and reclaims its resources; when the
// last container stops, the Android Container Driver modules are unloaded
// ("to avoid wasting memory").
func (pl *Platform) StopRuntime(p *sim.Proc, cid string) error {
	sl := pl.byID[cid]
	if sl == nil {
		return fmt.Errorf("core: no runtime %s", cid)
	}
	if st := sl.info.State; st != LifecycleIdle {
		return fmt.Errorf("core: runtime %s is %s", cid, st)
	}
	pl.db.Transition(cid, LifecycleDraining)
	sl.rt.Shutdown()
	var terr error
	if pl.teardownFault != nil {
		terr = pl.teardownFault(p, cid)
	}
	if terr == nil {
		switch {
		case sl.vmach != nil:
			terr = sl.vmach.Destroy(p)
		case sl.ctr != nil:
			terr = sl.ctr.Stop(p)
		}
	}
	// Teardown is best-effort: whatever happened to the guest, the slot
	// leaves the pool. Returning early on terr here used to strand the
	// slot in LifecycleDraining forever — still on the slot list, counting
	// against MaxRuntimes, its warehouse CID binding never released — so a
	// single failed Destroy permanently leaked a unit of pool capacity.
	if pl.warehouse != nil {
		pl.warehouse.UnbindCID(sl.id)
	}
	pl.db.Transition(cid, LifecycleReclaimed)
	if terr != nil {
		pl.noteFailure(cid, FailTeardown)
	}
	pl.removeSlot(sl)
	if pl.cfg.Kind != KindVM && pl.slots.n == 0 {
		_ = acd.UnloadAll(pl.Kernel) // best effort; fails only if still referenced
	}
	if terr != nil {
		return fmt.Errorf("core: stopping %s: %w", cid, terr)
	}
	return nil
}

// StopAll stops every idle runtime.
func (pl *Platform) StopAll(p *sim.Proc) error {
	ids := make([]string, 0, pl.slots.n)
	pl.slots.each(func(sl *slot) { ids = append(ids, sl.id) })
	for _, id := range ids {
		if err := pl.StopRuntime(p, id); err != nil {
			return err
		}
	}
	return nil
}

// RuntimeFS returns a runtime's filesystem view (access-profile
// measurements like Observation 4 inspect its layers).
func (pl *Platform) RuntimeFS(cid string) (*unionfs.Mount, bool) {
	if sl := pl.byID[cid]; sl != nil && sl.env != nil {
		return sl.env.FS(), true
	}
	return nil, false
}

// RuntimeCount returns the pool size.
func (pl *Platform) RuntimeCount() int { return pl.slots.n }

// QueueLength returns how many requests wait for a runtime.
func (pl *Platform) QueueLength() int { return pl.waitQ.len() }

// TotalDiskBytes is the platform's storage bill: every runtime's private
// data plus shared structures charged once.
func (pl *Platform) TotalDiskBytes() host.Bytes {
	var t host.Bytes
	pl.slots.each(func(sl *slot) { t += pl.slotDiskBytes(sl) })
	if pl.sharedLayer != nil {
		t += pl.sharedLayer.Size()
	}
	if pl.tmplLayer != nil {
		t += pl.tmplLayer.Size() // the frozen template upper, charged once
	}
	return t
}
