package core

import (
	"strings"
	"testing"
)

// TestLifecycleLegalEdges walks every legal edge through a fresh
// ContainerDB row and checks the census, the hook stream, and the derived
// Busy flag after each step.
func TestLifecycleLegalEdges(t *testing.T) {
	paths := [][]Lifecycle{
		// The normal pooled life: boot, serve, idle, serve again, drain out.
		{LifecycleBooting, LifecycleIdle, LifecycleActive, LifecycleIdle, LifecycleDraining, LifecycleReclaimed},
		// Request-path boot handed straight to the requester.
		{LifecycleBooting, LifecycleActive, LifecycleIdle, LifecycleDraining, LifecycleReclaimed},
		// Boot failure.
		{LifecycleBooting, LifecycleReclaimed},
	}
	for _, path := range paths {
		db := NewContainerDB()
		var edges []string
		db.SetLifecycleHooks(func(from, to Lifecycle) {
			edges = append(edges, from.String()+">"+to.String())
		}, nil)
		db.Put(&RuntimeInfo{CID: "rt-1"})
		if got := db.StateCount(LifecycleCold); got != 1 {
			t.Fatalf("fresh row not counted cold: %d", got)
		}
		prev := LifecycleCold
		for _, to := range path {
			db.Transition("rt-1", to)
			info, ok := db.Get("rt-1")
			if !ok {
				t.Fatalf("row vanished at %s", to)
			}
			if info.State != to {
				t.Fatalf("state after Transition(%s) = %s", to, info.State)
			}
			if info.Busy != (to == LifecycleActive) {
				t.Fatalf("Busy=%v in state %s", info.Busy, to)
			}
			if db.StateCount(to) != 1 || db.StateCount(prev) != 0 {
				t.Fatalf("census off after %s->%s: %+v", prev, to, db.Snapshot().States)
			}
			prev = to
		}
		if len(edges) != len(path) {
			t.Fatalf("hook saw %d edges for path %v: %v", len(edges), path, edges)
		}
	}
}

// TestLifecycleIllegalEdges enumerates the full state-pair matrix: every
// pair not in the legal-edge table must make Transition panic, and
// LegalTransition must agree with the table.
func TestLifecycleIllegalEdges(t *testing.T) {
	legal := map[[2]Lifecycle]bool{
		{LifecycleCold, LifecycleBooting}:       true,
		{LifecycleBooting, LifecycleIdle}:       true,
		{LifecycleBooting, LifecycleActive}:     true,
		{LifecycleBooting, LifecycleReclaimed}:  true,
		{LifecycleIdle, LifecycleActive}:        true,
		{LifecycleIdle, LifecycleDraining}:      true,
		{LifecycleActive, LifecycleIdle}:        true,
		{LifecycleDraining, LifecycleReclaimed}: true,
	}
	mustPanic := func(from, to Lifecycle) (panicked bool, msg string) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				msg, _ = r.(string)
			}
		}()
		db := NewContainerDB()
		info := &RuntimeInfo{CID: "rt-x"}
		db.Put(info)
		// Drive the row to `from` along legal edges, then attempt the edge
		// under test.
		route := map[Lifecycle][]Lifecycle{
			LifecycleCold:      nil,
			LifecycleBooting:   {LifecycleBooting},
			LifecycleIdle:      {LifecycleBooting, LifecycleIdle},
			LifecycleActive:    {LifecycleBooting, LifecycleActive},
			LifecycleDraining:  {LifecycleBooting, LifecycleIdle, LifecycleDraining},
			LifecycleReclaimed: {LifecycleBooting, LifecycleReclaimed},
		}
		for _, step := range route[from] {
			db.Transition("rt-x", step)
		}
		db.Transition("rt-x", to)
		return false, ""
	}
	for _, from := range LifecycleStates() {
		for _, to := range LifecycleStates() {
			want := legal[[2]Lifecycle{from, to}]
			if got := LegalTransition(from, to); got != want {
				t.Errorf("LegalTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
			panicked, msg := mustPanic(from, to)
			if want && panicked {
				t.Errorf("legal edge %s -> %s panicked: %s", from, to, msg)
			}
			if !want {
				if !panicked {
					t.Errorf("illegal edge %s -> %s did not panic", from, to)
				} else if !strings.Contains(msg, "illegal lifecycle transition") {
					t.Errorf("illegal edge %s -> %s: unexpected panic %q", from, to, msg)
				}
			}
		}
	}
}

// TestTransitionUnknownCIDPanics: the choke point must refuse rows it does
// not own.
func TestTransitionUnknownCIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transition on unknown CID did not panic")
		}
	}()
	NewContainerDB().Transition("nope", LifecycleBooting)
}

// TestListReturnsCopies pins the aliasing fix: mutating a List, Get or
// Runtimes result must not write through to the DB's internal rows.
func TestListReturnsCopies(t *testing.T) {
	db := NewContainerDB()
	db.Put(&RuntimeInfo{CID: "rt-1", MemMB: 96})
	db.Transition("rt-1", LifecycleBooting)

	got := db.List()[0]
	got.State = LifecycleReclaimed
	got.Busy = true
	got.MemMB = 1

	fresh, _ := db.Get("rt-1")
	if fresh.State != LifecycleBooting || fresh.Busy || fresh.MemMB != 96 {
		t.Fatalf("List leaked internal row: %+v", fresh)
	}
	fresh.State = LifecycleReclaimed
	again, _ := db.Get("rt-1")
	if again.State != LifecycleBooting {
		t.Fatal("Get leaked internal row")
	}
}

// TestSnapshotStates: the snapshot census maps states to live-row counts
// and stays consistent through removals.
func TestSnapshotStates(t *testing.T) {
	db := NewContainerDB()
	var gone []Lifecycle
	db.SetLifecycleHooks(nil, func(last Lifecycle) { gone = append(gone, last) })
	for _, cid := range []string{"a", "b", "c"} {
		db.Put(&RuntimeInfo{CID: cid})
		db.Transition(cid, LifecycleBooting)
	}
	db.Transition("a", LifecycleIdle)
	db.Transition("b", LifecycleActive)
	snap := db.Snapshot()
	if snap.States[LifecycleBooting] != 1 || snap.States[LifecycleIdle] != 1 || snap.States[LifecycleActive] != 1 {
		t.Fatalf("census: %+v", snap.States)
	}
	db.Remove("b")
	if n := db.StateCount(LifecycleActive); n != 0 {
		t.Fatalf("removed row still counted: %d", n)
	}
	if len(gone) != 1 || gone[0] != LifecycleActive {
		t.Fatalf("onRemove saw %v", gone)
	}
}
