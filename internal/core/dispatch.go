package core

import (
	"errors"
	"time"

	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// This file holds the Dispatcher's allocation machinery. The policy is
// unchanged from the paper (§IV-B): warehouse-affinity first, then any
// idle runtime, then boot up to MaxRuntimes, then FIFO queueing. The
// *selection* half (which idle runtime serves which app) lives behind the
// Scheduler interface (scheduler.go); this file keeps the capacity half:
//
//   - pl.waitQ is a ring buffer, FIFO without the O(n) re-slicing;
//   - pl.slots is an intrusive doubly-linked list in boot order plus a
//     CID map, making removeSlot and StopRuntime lookups O(1);
//   - bounded admission and the hold-time EWMA feeding retry-after hints.
//
// Virtual-time behaviour is bit-identical to the original scanning
// dispatcher: both pick the minimum-boot-order eligible slot, and the
// experiment harness is the oracle for that.

// slotList is the platform's runtime pool in boot order.
type slotList struct {
	head, tail *slot
	n          int
}

func (l *slotList) pushBack(sl *slot) {
	sl.prev, sl.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = sl
	} else {
		l.head = sl
	}
	l.tail = sl
	l.n++
}

func (l *slotList) remove(sl *slot) {
	if sl.prev != nil {
		sl.prev.next = sl.next
	} else {
		l.head = sl.next
	}
	if sl.next != nil {
		sl.next.prev = sl.prev
	} else {
		l.tail = sl.prev
	}
	sl.prev, sl.next = nil, nil
	l.n--
}

// each visits every slot in boot order. The callback must not mutate the
// list; callers that stop runtimes snapshot the IDs first.
func (l *slotList) each(fn func(*slot)) {
	for sl := l.head; sl != nil; sl = sl.next {
		fn(sl)
	}
}

// slotHeap is a min-heap of slots keyed by boot sequence.
type slotHeap []*slot

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(*slot)) }
func (h *slotHeap) Pop() any {
	old := *h
	n := len(old)
	sl := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return sl
}

// waiterRing is the Dispatcher's FIFO request queue as a growable ring
// buffer: push and pop are O(1) with no per-operation allocation.
type waiterRing struct {
	buf  []*waiter
	head int
	n    int
}

func (r *waiterRing) push(w *waiter) {
	if r.n == len(r.buf) {
		grown := make([]*waiter, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = w
	r.n++
}

func (r *waiterRing) pop() *waiter {
	if r.n == 0 {
		return nil
	}
	w := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return w
}

func (r *waiterRing) len() int { return r.n }

// ErrAborted reports that a request's abort signal fired before the
// dispatcher could (usefully) serve it.
var ErrAborted = errors.New("core: request aborted while queued")

// acquireSlot implements the Dispatcher's allocation policy. sp, when
// non-nil, receives the boot / queue-wait sub-stage durations of this
// allocation (virtual time). abort, when non-nil, is the request's
// cancellation signal: if it fires while the request is parked in the
// wait ring, the wait ends with ErrAborted instead of occupying a queue
// seat (and eventually a slot) for a caller that is gone.
func (pl *Platform) acquireSlot(p *sim.Proc, aid string, sp *obs.Span, abort *sim.Signal) (*slot, error) {
	if abort != nil && abort.Fired() {
		return nil, ErrAborted
	}
	// 1.–2. Idle runtime, best one first: the Scheduler prefers a runtime
	//    that already loaded this code (cache-table CID affinity: "saves
	//    the time for loading codes"), then any idle runtime.
	if sl, affinity := pl.sched.Pick(aid); sl != nil {
		pl.claim(sl)
		if affinity && pl.om != nil {
			pl.om.affinityHits.Inc()
		}
		return sl, nil
	}
	// 3. Grow the pool — up to the static MaxRuntimes, or up to the
	//    autoscaler's elastic boot ceiling when the control loop runs.
	if pl.slots.n < pl.poolCap() {
		var start sim.Time = -1
		if sp != nil {
			start = pl.E.Now()
		}
		sl, err := pl.bootSlot(p)
		if sp != nil && err == nil {
			d := (pl.E.Now() - start).Duration()
			sp.Add(obs.StageBoot, d)
			if sl.viaTemplate {
				sp.Add(obs.StageTemplateClone, d) // sub-stage view of the boot
			}
		}
		return sl, err
	}
	// 4. Bounded admission: with the wait ring at its configured depth,
	//    reject with a typed overload error and a retry-after hint rather
	//    than queueing unboundedly — a flood of flaky clients must not pin
	//    unbounded memory on the cloud side.
	if pl.cfg.MaxQueueDepth > 0 && pl.waitQ.len() >= pl.cfg.MaxQueueDepth {
		if pl.om != nil {
			pl.om.overloadRejects.Inc()
		}
		return nil, &offload.OverloadedError{QueueDepth: pl.waitQ.len(), RetryAfter: pl.retryAfterHint()}
	}
	// 5. Queue FIFO for the next release.
	w := &waiter{sig: sim.NewSignal(pl.E)}
	if abort != nil {
		// The callback stays registered on the abort signal for its
		// lifetime (a few dozen bytes per queued request on the slow
		// path); it goes inert once the waiter takes its slot.
		abort.OnFire(func() {
			if w.taken || w.aborted {
				return
			}
			w.aborted = true
			if !w.sig.Fired() {
				w.sig.Fire()
			}
		})
	}
	pl.waitQ.push(w)
	pl.kickScaler() // queue pressure is the autoscaler's grow signal
	var start sim.Time = -1
	if sp != nil || pl.om != nil {
		start = pl.E.Now()
	}
	if pl.om != nil {
		pl.om.queued.Inc()
		pl.om.queueLen.Set(int64(pl.waitQ.len()))
	}
	p.Wait(w.sig)
	if start >= 0 {
		d := (pl.E.Now() - start).Duration()
		sp.Add(obs.StageQueueWait, d)
		if pl.om != nil {
			pl.om.queueWait.Observe(d)
		}
	}
	if w.aborted {
		if w.sl != nil {
			// A release handed this waiter the slot in the same instant
			// the abort fired (release popped the still-live waiter, then
			// the abort event ran before the waiter's resume event). Put
			// the slot back rather than strand it LifecycleActive.
			pl.releaseSlot(w.sl)
		}
		return nil, ErrAborted
	}
	if w.sl == nil {
		return nil, errors.New("core: dispatcher queue aborted")
	}
	w.taken = true
	return w.sl, nil
}

// claim marks an idle slot active and stamps the hold start.
func (pl *Platform) claim(sl *slot) {
	pl.db.Transition(sl.id, LifecycleActive)
	sl.acquiredAt = pl.E.Now()
}

// noteHold folds one completed claim into the hold-time EWMA (weight 1/4:
// responsive to load shifts, stable against single outliers).
func (pl *Platform) noteHold(d time.Duration) {
	if d <= 0 {
		return
	}
	if pl.holdEWMA == 0 {
		pl.holdEWMA = d
		return
	}
	pl.holdEWMA += (d - pl.holdEWMA) / 4
}

// retryAfterHint estimates how long an overload-rejected client should
// back off: the queue ahead of it, drained at one slot-hold per runtime.
// The drain rate comes from the schedulable census (idle + active), not
// cfg.MaxRuntimes: whenever the live pool is smaller — cold start, boots
// still in flight, post-shrink, cordoned runtimes — dividing by the cap
// overstated the drain rate and clients retried too early, re-tripping
// admission.
func (pl *Platform) retryAfterHint() time.Duration {
	ewma := pl.holdEWMA
	if ewma <= 0 {
		ewma = 250 * time.Millisecond // no completed holds yet; nominal guess
	}
	runtimes := pl.db.StateCount(LifecycleIdle) + pl.db.StateCount(LifecycleActive)
	if runtimes < 1 {
		runtimes = 1
	}
	hint := ewma * time.Duration(pl.waitQ.len()+1) / time.Duration(runtimes)
	if hint < 10*time.Millisecond {
		hint = 10 * time.Millisecond
	}
	return hint
}

// popLiveWaiter pops the oldest waiter whose request has not aborted.
// Aborted waiters' signals already fired (the abort did it); dropping
// them here is how they leave the ring.
func (pl *Platform) popLiveWaiter() *waiter {
	for {
		w := pl.waitQ.pop()
		if w == nil {
			return nil
		}
		if w.aborted {
			if pl.om != nil {
				pl.om.queueLen.Set(int64(pl.waitQ.len()))
			}
			continue
		}
		return w
	}
}

func (pl *Platform) releaseSlot(sl *slot) {
	sl.info.LastUsed = pl.E.Now()
	pl.noteHold((pl.E.Now() - sl.acquiredAt).Duration())
	if sl.cordoned {
		// A cordoned runtime takes no further work: no waiter handoff, no
		// Offer back to the scheduler — park it idle and drain it.
		pl.db.Transition(sl.id, LifecycleIdle)
		pl.drainSlot(sl)
		pl.kickScaler() // replacement capacity may be needed
		return
	}
	if w := pl.popLiveWaiter(); w != nil {
		// Hand the slot straight to the queued request: it stays
		// LifecycleActive through the handoff (no idle edge).
		w.sl = sl
		sl.acquiredAt = pl.E.Now()
		if pl.om != nil {
			pl.om.queueLen.Set(int64(pl.waitQ.len()))
		}
		w.sig.Fire()
		return
	}
	pl.db.Transition(sl.id, LifecycleIdle)
	pl.sched.Offer(sl)
	// Idle reclamation: the autoscaler owns it when running (hysteretic
	// shrink toward MinRuntimes); otherwise the legacy per-slot reap.
	if pl.scaler != nil {
		pl.kickScaler()
	} else if pl.cfg.IdleTimeout > 0 {
		pl.scheduleReap(sl, sl.info.LastUsed)
	}
}

// scheduleReap arms a reclamation check for a slot that just went idle.
// The check fires IdleTimeout later and stops the runtime only if it is
// still registered, still idle, and untouched since.
func (pl *Platform) scheduleReap(sl *slot, asOf sim.Time) {
	pl.E.After(pl.cfg.IdleTimeout, func() {
		if !slotIdle(sl) || sl.info.LastUsed != asOf {
			return
		}
		pl.E.Spawn("reap:"+sl.id, func(p *sim.Proc) {
			// Re-check: the slot may have been claimed between the event
			// firing and the proc starting.
			if !slotIdle(sl) || sl.info.LastUsed != asOf {
				return
			}
			_ = pl.StopRuntime(p, sl.id)
		})
	})
}
