package core

import (
	"container/heap"
	"errors"
	"time"

	"rattrap/internal/obs"
	"rattrap/internal/offload"
	"rattrap/internal/sim"
)

// This file holds the Dispatcher's allocation machinery. The policy is
// unchanged from the paper (§IV-B): warehouse-affinity first, then any
// idle runtime, then boot up to MaxRuntimes, then FIFO queueing — but the
// implementation is indexed instead of scanned:
//
//   - pl.idle is a free-list of idle slots, a min-heap keyed by boot
//     sequence so the pick is identical to the old in-order scan;
//   - pl.affinity maps AID → min-heap of idle slots whose ClassLoader
//     already holds that code (the cache table's AID→CID column, turned
//     into a dispatch index);
//   - pl.waitQ is a ring buffer, FIFO without the O(n) re-slicing;
//   - pl.slots is an intrusive doubly-linked list in boot order plus a
//     CID map, making removeSlot and StopRuntime lookups O(1).
//
// Heap entries are invalidated lazily: claiming a slot leaves its entries
// in the other heaps, and pops discard entries whose slot is busy,
// removed, or (for affinity) no longer holds the code. The inIdle/inAff
// flags guarantee at most one live entry per slot per heap, so heap sizes
// stay O(slots × loaded codes). Virtual-time behaviour is bit-identical
// to the scanning dispatcher: both pick the minimum-boot-order eligible
// slot, and the experiment harness is the oracle for that.

// slotList is the platform's runtime pool in boot order.
type slotList struct {
	head, tail *slot
	n          int
}

func (l *slotList) pushBack(sl *slot) {
	sl.prev, sl.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = sl
	} else {
		l.head = sl
	}
	l.tail = sl
	l.n++
}

func (l *slotList) remove(sl *slot) {
	if sl.prev != nil {
		sl.prev.next = sl.next
	} else {
		l.head = sl.next
	}
	if sl.next != nil {
		sl.next.prev = sl.prev
	} else {
		l.tail = sl.prev
	}
	sl.prev, sl.next = nil, nil
	l.n--
}

// each visits every slot in boot order. The callback must not mutate the
// list; callers that stop runtimes snapshot the IDs first.
func (l *slotList) each(fn func(*slot)) {
	for sl := l.head; sl != nil; sl = sl.next {
		fn(sl)
	}
}

// slotHeap is a min-heap of slots keyed by boot sequence.
type slotHeap []*slot

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(*slot)) }
func (h *slotHeap) Pop() any {
	old := *h
	n := len(old)
	sl := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return sl
}

// waiterRing is the Dispatcher's FIFO request queue as a growable ring
// buffer: push and pop are O(1) with no per-operation allocation.
type waiterRing struct {
	buf  []*waiter
	head int
	n    int
}

func (r *waiterRing) push(w *waiter) {
	if r.n == len(r.buf) {
		grown := make([]*waiter, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = w
	r.n++
}

func (r *waiterRing) pop() *waiter {
	if r.n == 0 {
		return nil
	}
	w := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return w
}

func (r *waiterRing) len() int { return r.n }

// enqueueIdle indexes an idle slot: into the free-list and into the
// affinity heap of every code its runtime holds. Flags dedupe entries —
// a stale entry left by a lazy pop "revives" when the slot goes idle
// again, which is exactly the state it advertises.
func (pl *Platform) enqueueIdle(sl *slot) {
	if !sl.inIdle {
		sl.inIdle = true
		heap.Push(&pl.idle, sl)
	}
	for _, aid := range sl.rt.LoadedCodes() {
		if !sl.inAff[aid] {
			sl.inAff[aid] = true
			h := pl.affinity[aid]
			if h == nil {
				h = &slotHeap{}
				pl.affinity[aid] = h
			}
			heap.Push(h, sl)
		}
	}
}

// popAffinity claims the earliest-booted idle slot that already holds
// aid, or nil.
func (pl *Platform) popAffinity(aid string) *slot {
	h, ok := pl.affinity[aid]
	if !ok {
		return nil
	}
	for h.Len() > 0 {
		sl := heap.Pop(h).(*slot)
		sl.inAff[aid] = false
		if sl.removed || sl.busy || !sl.rt.CodeLoaded(aid) {
			continue // stale entry; discard
		}
		if h.Len() == 0 {
			delete(pl.affinity, aid)
		}
		return sl
	}
	delete(pl.affinity, aid)
	return nil
}

// popIdle claims the earliest-booted idle slot, or nil.
func (pl *Platform) popIdle() *slot {
	for pl.idle.Len() > 0 {
		sl := heap.Pop(&pl.idle).(*slot)
		sl.inIdle = false
		if sl.removed || sl.busy {
			continue
		}
		return sl
	}
	return nil
}

// acquireSlot implements the Dispatcher's allocation policy. sp, when
// non-nil, receives the boot / queue-wait sub-stage durations of this
// allocation (virtual time).
func (pl *Platform) acquireSlot(p *sim.Proc, aid string, sp *obs.Span) (*slot, error) {
	// 1. Idle runtime that already loaded this code (cache-table CID
	//    affinity: "saves the time for loading codes").
	if sl := pl.popAffinity(aid); sl != nil {
		pl.claim(sl)
		if pl.om != nil {
			pl.om.affinityHits.Inc()
		}
		return sl, nil
	}
	// 2. Any idle runtime.
	if sl := pl.popIdle(); sl != nil {
		pl.claim(sl)
		return sl, nil
	}
	// 3. Grow the pool.
	if pl.slots.n < pl.cfg.MaxRuntimes {
		var start sim.Time = -1
		if sp != nil {
			start = pl.E.Now()
		}
		sl, err := pl.bootSlot(p)
		if sp != nil && err == nil {
			sp.Add(obs.StageBoot, (pl.E.Now() - start).Duration())
		}
		return sl, err
	}
	// 4. Bounded admission: with the wait ring at its configured depth,
	//    reject with a typed overload error and a retry-after hint rather
	//    than queueing unboundedly — a flood of flaky clients must not pin
	//    unbounded memory on the cloud side.
	if pl.cfg.MaxQueueDepth > 0 && pl.waitQ.len() >= pl.cfg.MaxQueueDepth {
		if pl.om != nil {
			pl.om.overloadRejects.Inc()
		}
		return nil, &offload.OverloadedError{QueueDepth: pl.waitQ.len(), RetryAfter: pl.retryAfterHint()}
	}
	// 5. Queue FIFO for the next release.
	w := &waiter{sig: sim.NewSignal(pl.E)}
	pl.waitQ.push(w)
	var start sim.Time = -1
	if sp != nil || pl.om != nil {
		start = pl.E.Now()
	}
	if pl.om != nil {
		pl.om.queued.Inc()
		pl.om.queueLen.Set(int64(pl.waitQ.len()))
	}
	p.Wait(w.sig)
	if start >= 0 {
		d := (pl.E.Now() - start).Duration()
		sp.Add(obs.StageQueueWait, d)
		if pl.om != nil {
			pl.om.queueWait.Observe(d)
		}
	}
	if w.sl == nil {
		return nil, errors.New("core: dispatcher queue aborted")
	}
	return w.sl, nil
}

// claim marks an idle slot busy and stamps the hold start.
func (pl *Platform) claim(sl *slot) {
	sl.busy = true
	sl.info.Busy = true
	sl.acquiredAt = pl.E.Now()
}

// noteHold folds one completed claim into the hold-time EWMA (weight 1/4:
// responsive to load shifts, stable against single outliers).
func (pl *Platform) noteHold(d time.Duration) {
	if d <= 0 {
		return
	}
	if pl.holdEWMA == 0 {
		pl.holdEWMA = d
		return
	}
	pl.holdEWMA += (d - pl.holdEWMA) / 4
}

// retryAfterHint estimates how long an overload-rejected client should
// back off: the queue ahead of it, drained at one slot-hold per runtime.
func (pl *Platform) retryAfterHint() time.Duration {
	ewma := pl.holdEWMA
	if ewma <= 0 {
		ewma = 250 * time.Millisecond // no completed holds yet; nominal guess
	}
	runtimes := pl.cfg.MaxRuntimes
	if runtimes < 1 {
		runtimes = 1
	}
	hint := ewma * time.Duration(pl.waitQ.len()+1) / time.Duration(runtimes)
	if hint < 10*time.Millisecond {
		hint = 10 * time.Millisecond
	}
	return hint
}

func (pl *Platform) releaseSlot(sl *slot) {
	sl.info.LastUsed = pl.E.Now()
	pl.noteHold((pl.E.Now() - sl.acquiredAt).Duration())
	if w := pl.waitQ.pop(); w != nil {
		w.sl = sl // hand the slot over while still busy
		sl.acquiredAt = pl.E.Now()
		if pl.om != nil {
			pl.om.queueLen.Set(int64(pl.waitQ.len()))
		}
		w.sig.Fire()
		return
	}
	sl.busy = false
	sl.info.Busy = false
	pl.enqueueIdle(sl)
	if pl.cfg.IdleTimeout > 0 {
		pl.scheduleReap(sl, sl.info.LastUsed)
	}
}

// scheduleReap arms a reclamation check for a slot that just went idle.
// The check fires IdleTimeout later and stops the runtime only if it is
// still registered, still idle, and untouched since.
func (pl *Platform) scheduleReap(sl *slot, asOf sim.Time) {
	pl.E.After(pl.cfg.IdleTimeout, func() {
		if sl.removed || sl.busy || sl.info.LastUsed != asOf {
			return
		}
		pl.E.Spawn("reap:"+sl.id, func(p *sim.Proc) {
			// Re-check: the slot may have been claimed between the event
			// firing and the proc starting.
			if sl.busy || sl.info.LastUsed != asOf {
				return
			}
			_ = pl.StopRuntime(p, sl.id)
		})
	})
}
